(** Canonical netlist IR — the single source of truth between the
    streaming SPICE reader, MNA stamping, the synthesis writer and the
    content-addressed model store.

    A value is the flat element-card array (subcircuit instances already
    flattened, [.model] references already resolved) plus the port list.
    {!canonical} renumbers nodes in first-appearance order, after which
    {!render} is an exact fixpoint of the parser: the canonical text
    parses back to the identical IR and re-renders byte-for-byte — the
    stability contract the store keys and the netlist roundtrip tests pin
    down.  Values render with [%.17g], so floats survive the text form
    bit-exactly. *)

type card =
  | Res of { n1 : int; n2 : int; ohms : float }
  | Cap of { n1 : int; n2 : int; farads : float }
  | Ind of { n1 : int; n2 : int; henries : float }
  | Mut of { l1 : int; l2 : int; k : float }
      (** [l1]/[l2] index the [Ind] cards in order of appearance *)

type t = {
  cards : card array;
  ports : int array;  (** port nodes, in declaration order *)
  nodes : int;  (** largest node index (internal nodes are 1..nodes) *)
}

val stats : t -> int * int * int * int
(** Counts of (resistors, capacitors, inductors, mutual couplings). *)

val canonical : t -> t
(** Renumber nodes 1.. in order of first appearance (cards, then ports).
    Idempotent; the parser assigns exactly this numbering when reading
    {!render} output back. *)

val render : t -> string
(** Canonical text form.  [render (canonical ir)] re-parses to
    [canonical ir] exactly. *)

val to_netlist : t -> Netlist.t
(** Build the stamp-ready netlist. *)

val of_netlist : Netlist.t -> t
(** The inverse embedding (element and port order preserved). *)
