(* Netlist synthesis: realise a reduced descriptor model (E, A, B, C)
   back into an R/C netlist by inverting the MNA stamp.

   The stamp is invertible only for RC-structured models: E and A
   symmetric, C = B^T (the shape the passivity-preserving truncation
   produces by congruence).  Synthesis has two steps:

   1. Port-normalising congruence.  An MNA system's B is a 0/1 node-port
      incidence matrix; a reduced B_r is dense.  Take T = [T1 T2] with
      T1 = Q R^{-T} from the thin QR  B_r = Q R  (so T1^T B_r = I) and T2
      an orthonormal basis of range(B_r)'s complement (so T2^T B_r = 0).
      The congruence (T^T E T, T^T A T, T^T B = [I; 0], C T = [I 0])
      leaves the transfer function EXACTLY invariant (T is invertible and
      the two T's cancel), keeps symmetry/semidefiniteness (passivity),
      and puts the model in stampable form: state i is node i, port j is
      node j.

   2. Unstamping.  With E~ = T^T E T and A~ = T^T A T symmetric, read the
      branch elements straight off the stamp pattern:

        cap   i-j (i<j):  c_ij = -E~_ij        cap   i-gnd: c_i0 = sum_j E~_ij
        res   i-j (i<j):  g_ij =  A~_ij        res   i-gnd: g_i0 = -sum_j A~_ij

      (row sums recover the grounded branches because each off-diagonal
      branch contributes to the diagonal too).  Re-stamping the emitted
      netlist reproduces E~ and A~ exactly, modulo elements below the
      drop tolerance.  Branch values may well be negative — standard for
      unstamping synthesis, and harmless: the assembled matrices are the
      semidefinite ones the model came with. *)

open Pmtbr_la

exception Unrealizable of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Unrealizable msg)) fmt

let asym m =
  (* max |M - M^T| *)
  let worst = ref 0.0 in
  for i = 0 to m.Mat.rows - 1 do
    for j = i + 1 to m.Mat.cols - 1 do
      worst := Float.max !worst (Float.abs (Mat.get m i j -. Mat.get m j i))
    done
  done;
  !worst

let realize ?(drop_tol = 1e-14) ?(sym_tol = 1e-8) ?workers ~e ~a ~b ~c () =
  let q = b.Mat.rows and p = b.Mat.cols in
  if p < 1 then fail "model has no ports";
  if q < p then fail "model order %d is below the port count %d" q p;
  if e.Mat.rows <> q || e.Mat.cols <> q || a.Mat.rows <> q || a.Mat.cols <> q then
    fail "E/A must be %dx%d" q q;
  if c.Mat.rows <> p || c.Mat.cols <> q then fail "C must be %dx%d (reciprocal model)" p q;
  (* reciprocity / symmetry preconditions *)
  let bscale = Float.max (Mat.max_abs b) 1e-300 in
  if Mat.max_abs (Mat.sub c (Mat.transpose b)) > sym_tol *. bscale then
    fail "C <> B^T: model is not reciprocal, not realizable as an RC net";
  let escale = Float.max (Mat.max_abs e) 1e-300 in
  let ascale = Float.max (Mat.max_abs a) 1e-300 in
  if asym e > sym_tol *. escale then fail "E is not symmetric";
  if asym a > sym_tol *. ascale then fail "A is not symmetric";
  (* port-normalising congruence *)
  let qf, r = Qr.thin ?workers b in
  let rdiag = Array.init p (fun i -> Float.abs (Mat.get r i i)) in
  let rmax = Array.fold_left Float.max 0.0 rdiag in
  if rmax <= 0.0 || Array.exists (fun d -> d < 1e-12 *. rmax) rdiag then
    fail "B is (numerically) rank-deficient: ports are not independent";
  (* T1 = Q R^{-T}, i.e. T1^T = R^{-1} Q^T *)
  let t1 = Mat.transpose (Mat.solve r (Mat.transpose qf)) in
  let t =
    if q = p then t1
    else begin
      (* complement of range(B): orthonormalise (I - Q Q^T) *)
      let proj = Mat.sub (Mat.identity q) (Par_kernel.mul ?workers qf (Mat.transpose qf)) in
      let t2 = Qr.orth ?workers proj in
      if t2.Mat.cols <> q - p then
        fail "complement basis has rank %d, expected %d" t2.Mat.cols (q - p);
      Mat.hcat t1 t2
    end
  in
  let congr m = Mat.symmetrize (Par_kernel.mul ?workers (Mat.transpose t) (Par_kernel.mul ?workers m t)) in
  let et = congr e and at = congr a in
  (* Equilibrate the internal states (a second, diagonal congruence; the
     port states must keep unit current injection so their scale is
     pinned).  Balanced coordinates leave internal rows of A~ at the
     physical 1/tau scale while the port rows sit at the port-admittance
     scale — a dynamic range that costs digits in the re-stamped solve.
     Scaling internal state i by 1/sqrt(max_j |A~_ij|) brings the
     conductance spread down to the physics (the time constants are
     invariant, the range moves into the capacitors). *)
  let d =
    Array.init q (fun i ->
        if i < p then 1.0
        else
          let s = ref 0.0 in
          for j = 0 to q - 1 do
            s := Float.max !s (Float.abs (Mat.get at i j))
          done;
          if !s > 0.0 then 1.0 /. sqrt !s else 1.0)
  in
  let scale m = Mat.init q q (fun i j -> Mat.get m i j *. d.(i) *. d.(j)) in
  let et = scale et and at = scale at in
  (* Unstamp: branches above the drop tolerance become cards.  The drop
     test is ROW-scaled, not global: after port normalisation the port
     block of the matrices can sit many orders of magnitude below the
     internal block (ports are unit current injections, internal states
     keep the physical 1/tau scale), and a branch is only negligible if
     it is negligible in the KCL equations of BOTH its nodes.  A global
     cutoff would delete the entire port block and disconnect the
     ports. *)
  let cards = ref [] in
  let emit card = cards := card :: !cards in
  let row_scale m =
    Array.init q (fun i ->
        let s = ref 0.0 in
        for j = 0 to q - 1 do
          s := Float.max !s (Float.abs (Mat.get m i j))
        done;
        Float.max !s 1e-300)
  in
  let es = row_scale et and as_ = row_scale at in
  let keep scale i j v = Float.abs v > drop_tol *. sqrt (scale.(i) *. scale.(j)) in
  for i = 0 to q - 1 do
    (* grounded branches from the row sums *)
    let gsum = ref 0.0 and csum = ref 0.0 in
    for j = 0 to q - 1 do
      gsum := !gsum +. Mat.get at i j;
      csum := !csum +. Mat.get et i j
    done;
    let g0 = -. !gsum and c0 = !csum in
    if keep as_ i i g0 then emit (Spice_ir.Res { n1 = i + 1; n2 = 0; ohms = 1.0 /. g0 });
    if keep es i i c0 then emit (Spice_ir.Cap { n1 = i + 1; n2 = 0; farads = c0 });
    for j = i + 1 to q - 1 do
      let g = Mat.get at i j and cv = -.Mat.get et i j in
      if keep as_ i j g then
        emit (Spice_ir.Res { n1 = i + 1; n2 = j + 1; ohms = 1.0 /. g });
      if keep es i j cv then
        emit (Spice_ir.Cap { n1 = i + 1; n2 = j + 1; farads = cv })
    done
  done;
  Spice_ir.canonical
    {
      Spice_ir.cards = Array.of_list (List.rev !cards);
      ports = Array.init p (fun j -> j + 1);
      nodes = q;
    }
