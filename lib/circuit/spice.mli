(** Streaming reader/writer for a SPICE-like netlist dialect, so that
    externally extracted parasitic networks can be fed to the reduction
    algorithms.

    The reader runs line-at-a-time on a {!Spice_lex} token stream (['+']
    continuations, ['*']/[';']/['$'] comments, blank lines, case-insensitive
    directives) and parses into the canonical {!Spice_ir} form — the
    single source of truth for MNA stamping, re-rendering and the
    content-addressed model store.  Million-element extractions stream
    through without materialising a line list.

    Supported cards: [Rname n1 n2 value], [Cname n1 n2 value],
    [Lname n1 n2 value], [Kname Lname1 Lname2 k],
    [Xname n1 .. nN subname] (instances flattened on the fly),
    [.subckt]/[.ends] definitions, [.model name type value]
    (type [r]/[res], [c]/[cap], [l]/[ind]), [.port node] and [.end].
    Node ["0"] or ["gnd"] is ground; any other token is a named node.
    Values accept the usual SI suffixes (f p n u m k meg g t) and may be
    negative (synthesised ROM netlists need negative branch elements);
    zero and non-finite values are rejected with their line number. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse_value : line:int -> string -> float
(** Parse one numeric field with optional SI suffix.
    @raise Parse_error on malformed input. *)

type t
(** A parsed netlist together with its node-name table. *)

val parse_string : string -> t
(** Parse a netlist from text (streamed by index, no line list).
    @raise Parse_error on the first malformed card. *)

val parse_channel : in_channel -> t
(** Parse a netlist from a channel, one line at a time. *)

val parse_file : string -> t
(** Parse a netlist file through {!parse_channel}. *)

val netlist : t -> Netlist.t
(** The stamped-ready netlist (built from the IR on first use). *)

val ir : t -> Spice_ir.t
(** The parsed canonical IR (node ids in first-use order). *)

val node_name : t -> int -> string
(** Original name of an internal node number (ground is ["0"]).  Instance
    nodes carry their scoped name ([inst.node]). *)

val to_string : Netlist.t -> string
(** Render a netlist in the canonical dialect: first-use node numbering
    and [%.17g] values, so [to_string] output re-parses to an identical
    netlist and re-renders byte-for-byte ({!Spice_ir.canonical}). *)

val write_file : string -> Netlist.t -> unit
(** [to_string] to a file. *)
