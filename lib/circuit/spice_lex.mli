(** Streaming logical-line lexer for the SPICE dialect.

    Pulls physical lines one at a time from a producer thunk, strips
    comments (['*'], [';'] and ['$'], anywhere in the line) and
    blank/whitespace-only lines, folds ['+'] continuation lines into the
    card they extend, and delivers each logical line as a token list
    tagged with the 1-based physical line number where it started.  The
    full text is never materialised as a line list, so million-element
    extractions stream through in constant memory. *)

exception Error of int * string
(** Physical line number (1-based) and message — raised on a ['+']
    continuation with no preceding card. *)

type line = { num : int; tokens : string list }
(** One logical card: [num] is the physical line its first token sits on
    (continuation tokens report the card's first line). *)

val fold : next:(unit -> string option) -> init:'a -> f:('a -> line -> 'a) -> 'a
(** Fold over the logical lines of the producer [next] (one physical line
    per call, [None] at end of input). *)

val iter : next:(unit -> string option) -> f:(line -> unit) -> unit

val next_of_channel : in_channel -> unit -> string option
(** Physical-line producer over a channel ([In_channel.input_line]). *)

val next_of_string : string -> unit -> string option
(** Physical-line producer walking a string by index — no line list is
    built. *)
