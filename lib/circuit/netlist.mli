(** Circuit netlists.  Nodes are non-negative integers with [0] = ground.
    Ports are current-injection sources whose observed output is the port
    node voltage, so an MNA realisation of the netlist is the
    impedance-parameter state-space model of the parasitic network (the
    setting of all the paper's examples). *)

type element =
  | Resistor of { n1 : int; n2 : int; ohms : float }
  | Capacitor of { n1 : int; n2 : int; farads : float }
  | Inductor of { n1 : int; n2 : int; henries : float }
      (** current flows [n1 -> n2] through the inductor's state variable *)
  | Mutual of { l1 : int; l2 : int; coupling : float }
      (** coupling coefficient between the [l1]-th and [l2]-th inductors *)

type t
(** A mutable netlist under construction. *)

val create : unit -> t
(** Empty netlist. *)

val add_r : t -> int -> int -> float -> unit
(** [add_r t n1 n2 ohms] adds a resistor; self-loops are ignored.  Values
    must be nonzero and finite; negative values are legal (unstamping
    synthesis of reduced models produces them). *)

val add_c : t -> int -> int -> float -> unit
(** [add_c t n1 n2 farads] adds a capacitor (nonzero finite value). *)

val add_l : t -> int -> int -> float -> int
(** [add_l t n1 n2 henries] adds an inductor (nonzero finite value) and
    returns its index, for use with {!add_mutual}. *)

val add_mutual : t -> int -> int -> float -> unit
(** [add_mutual t l1 l2 k] couples two previously added inductors with
    coefficient [k], [|k| < 1]. *)

val add_port : t -> int -> int
(** [add_port t n] declares node [n] (which must not be ground) a
    current-injection port and returns the port index. *)

val elements : t -> element list
(** Elements in order of addition. *)

val ports : t -> int list
(** Port nodes in order of declaration. *)

val node_count : t -> int
(** Largest node index seen (internal nodes are 1..node_count). *)

val inductor_count : t -> int
(** Number of inductors (= extra MNA states). *)

val port_count : t -> int
(** Number of declared ports. *)

val stats : t -> int * int * int * int
(** Counts of (resistors, capacitors, inductors, mutual couplings). *)
