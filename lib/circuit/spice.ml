(* Reader/writer for a SPICE-like netlist dialect, so that externally
   extracted parasitic networks can be fed to the reduction algorithms.

   Supported card subset (case-insensitive, '*' comments, blank lines
   ignored):

     Rname n1 n2 value      resistor
     Cname n1 n2 value      capacitor
     Lname n1 n2 value      inductor
     Kname Lname1 Lname2 k  mutual coupling
     .port node             current-injection port (voltage observed)
     .end                   optional terminator

   Node "0" (or "gnd") is ground; any other token is a named node.  Values
   accept the usual SI suffixes (f p n u m k meg g t). *)

exception Parse_error of int * string
(* line number (1-based) and message *)

let parse_value ~line s =
  let s = String.lowercase_ascii s in
  let len = String.length s in
  let split i = (String.sub s 0 i, String.sub s i (len - i)) in
  let rec digits_end i =
    if i < len && (match s.[i] with '0' .. '9' | '.' | '-' | '+' | 'e' -> true | _ -> false)
    then
      (* treat 'e' as part of the number only when followed by a digit/sign *)
      if s.[i] = 'e'
         && not (i + 1 < len && (match s.[i + 1] with '0' .. '9' | '-' | '+' -> true | _ -> false))
      then i
      else digits_end (i + 1)
    else i
  in
  let stop = digits_end 0 in
  let num, suffix = split stop in
  let base =
    try float_of_string num
    with Failure _ -> raise (Parse_error (line, "bad numeric value: " ^ s))
  in
  (* SPICE value semantics: the scale factor is the longest recognized
     prefix of the suffix ("meg" before "m"), and any trailing alphabetic
     unit text is ignored — "10kohm" is 10e3, "1pF" is 1e-12, "100MEGHz"
     is 100e6, and a bare unit like "5ohm" scales by 1.  Non-alphabetic
     trailing garbage is still a parse error. *)
  let scale =
    if suffix = "" then 1.0
    else if not (String.for_all (fun c -> c >= 'a' && c <= 'z') suffix) then
      raise (Parse_error (line, "unknown unit suffix: " ^ suffix))
    else if String.length suffix >= 3 && String.sub suffix 0 3 = "meg" then 1e6
    else
      match suffix.[0] with
      | 'f' -> 1e-15
      | 'p' -> 1e-12
      | 'n' -> 1e-9
      | 'u' -> 1e-6
      | 'm' -> 1e-3
      | 'k' -> 1e3
      | 'g' -> 1e9
      | 't' -> 1e12
      | _ -> 1.0
  in
  base *. scale

type t = { netlist : Netlist.t; node_names : (string, int) Hashtbl.t }

let lookup_node t name =
  let key = String.lowercase_ascii name in
  if key = "0" || key = "gnd" then 0
  else
    match Hashtbl.find_opt t.node_names key with
    | Some n -> n
    | None ->
        let n = Hashtbl.length t.node_names + 1 in
        Hashtbl.add t.node_names key n;
        n

let tokens_of_line line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_string text =
  let t = { netlist = Netlist.create (); node_names = Hashtbl.create 64 } in
  let inductors = Hashtbl.create 16 in
  (* name -> inductor id *)
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let body =
        match String.index_opt raw '*' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let body = String.trim body in
      if body <> "" then begin
        match tokens_of_line body with
        | [] -> ()
        | card :: rest -> (
            let kind = Char.lowercase_ascii card.[0] in
            match (kind, rest) with
            | '.', args -> (
                match (String.lowercase_ascii card, args) with
                | ".end", _ -> ()
                | ".port", [ node ] -> ignore (Netlist.add_port t.netlist (lookup_node t node))
                | ".port", _ -> raise (Parse_error (lineno, ".port expects one node"))
                | other, _ -> raise (Parse_error (lineno, "unknown directive " ^ other)))
            | 'r', [ n1; n2; v ] ->
                Netlist.add_r t.netlist (lookup_node t n1) (lookup_node t n2)
                  (parse_value ~line:lineno v)
            | 'c', [ n1; n2; v ] ->
                Netlist.add_c t.netlist (lookup_node t n1) (lookup_node t n2)
                  (parse_value ~line:lineno v)
            | 'l', [ n1; n2; v ] ->
                let id =
                  Netlist.add_l t.netlist (lookup_node t n1) (lookup_node t n2)
                    (parse_value ~line:lineno v)
                in
                Hashtbl.replace inductors (String.lowercase_ascii card) id
            | 'k', [ l1; l2; v ] ->
                let find name =
                  match Hashtbl.find_opt inductors (String.lowercase_ascii name) with
                  | Some id -> id
                  | None -> raise (Parse_error (lineno, "unknown inductor " ^ name))
                in
                Netlist.add_mutual t.netlist (find l1) (find l2) (parse_value ~line:lineno v)
            | ('r' | 'c' | 'l' | 'k'), _ ->
                raise (Parse_error (lineno, "wrong number of fields: " ^ body))
            | _, _ -> raise (Parse_error (lineno, "unknown card: " ^ body)))
      end)
    lines;
  t

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

let netlist t = t.netlist

let node_name t n =
  if n = 0 then "0"
  else
    let found = ref None in
    Hashtbl.iter (fun name id -> if id = n then found := Some name) t.node_names;
    match !found with Some name -> name | None -> string_of_int n

(* Render a netlist back to the dialect above.  Integer node numbers are
   used directly as node names. *)
let to_string (nl : Netlist.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "* exported by pmtbr\n";
  let r = ref 0 and c = ref 0 and l = ref 0 and k = ref 0 in
  let l_names = Hashtbl.create 16 in
  List.iter
    (fun element ->
      (match element with
      | Netlist.Resistor { n1; n2; ohms } ->
          incr r;
          Buffer.add_string buf (Printf.sprintf "R%d %d %d %.12g\n" !r n1 n2 ohms)
      | Netlist.Capacitor { n1; n2; farads } ->
          incr c;
          Buffer.add_string buf (Printf.sprintf "C%d %d %d %.12g\n" !c n1 n2 farads)
      | Netlist.Inductor { n1; n2; henries } ->
          Hashtbl.replace l_names !l (Printf.sprintf "L%d" (!l + 1));
          incr l;
          Buffer.add_string buf (Printf.sprintf "L%d %d %d %.12g\n" !l n1 n2 henries)
      | Netlist.Mutual { l1; l2; coupling } ->
          incr k;
          let name id = try Hashtbl.find l_names id with Not_found -> Printf.sprintf "L%d" (id + 1) in
          Buffer.add_string buf
            (Printf.sprintf "K%d %s %s %.12g\n" !k (name l1) (name l2) coupling));
      ())
    (Netlist.elements nl);
  List.iter (fun node -> Buffer.add_string buf (Printf.sprintf ".port %d\n" node)) (Netlist.ports nl);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file path nl =
  let oc = open_out path in
  output_string oc (to_string nl);
  close_out oc
