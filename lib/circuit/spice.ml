(* Streaming reader/writer for a SPICE-like netlist dialect, so that
   externally extracted parasitic networks can be fed to the reduction
   algorithms.  The reader runs line-at-a-time on top of Spice_lex (so
   million-element extractions never materialise a line list) and parses
   into the canonical Spice_ir form, which is the single source of truth
   for MNA stamping, re-rendering and content addressing.

   Supported cards (case-insensitive; '*', ';' and '$' comments; '+'
   continuation lines; blank lines ignored):

     Rname n1 n2 value        resistor
     Cname n1 n2 value        capacitor
     Lname n1 n2 value        inductor
     Kname Lname1 Lname2 k    mutual coupling (|k| < 1)
     Xname n1 .. nN subname   subcircuit instance (flattened on the fly)
     .subckt name f1 .. fN    subcircuit definition, closed by .ends
     .model name type value   named value (type r/res, c/cap, l/ind)
     .port node               current-injection port (voltage observed)
     .end                     terminator: the rest of the input is ignored

   Node "0" (or "gnd") is ground; any other token is a named node.  Values
   accept the usual SI suffixes (f p n u m k meg g t) and may be negative
   (synthesised ROM netlists need negative branch elements); zero or
   non-finite values are rejected with the offending line number.
   Element cards whose two nodes coincide are dropped (they cannot stamp). *)

exception Parse_error of int * string
(* line number (1-based) and message *)

let parse_value ~line s =
  let s = String.lowercase_ascii s in
  let len = String.length s in
  let split i = (String.sub s 0 i, String.sub s i (len - i)) in
  let rec digits_end i =
    if i < len && (match s.[i] with '0' .. '9' | '.' | '-' | '+' | 'e' -> true | _ -> false)
    then
      (* treat 'e' as part of the number only when followed by a digit/sign *)
      if s.[i] = 'e'
         && not (i + 1 < len && (match s.[i + 1] with '0' .. '9' | '-' | '+' -> true | _ -> false))
      then i
      else digits_end (i + 1)
    else i
  in
  let stop = digits_end 0 in
  let num, suffix = split stop in
  let base =
    try float_of_string num
    with Failure _ -> raise (Parse_error (line, "bad numeric value: " ^ s))
  in
  (* SPICE value semantics: the scale factor is the longest recognized
     prefix of the suffix ("meg" before "m"), and any trailing alphabetic
     unit text is ignored — "10kohm" is 10e3, "1pF" is 1e-12, "100MEGHz"
     is 100e6, and a bare unit like "5ohm" scales by 1.  Non-alphabetic
     trailing garbage is still a parse error. *)
  let scale =
    if suffix = "" then 1.0
    else if not (String.for_all (fun c -> c >= 'a' && c <= 'z') suffix) then
      raise (Parse_error (line, "unknown unit suffix: " ^ suffix))
    else if String.length suffix >= 3 && String.sub suffix 0 3 = "meg" then 1e6
    else
      match suffix.[0] with
      | 'f' -> 1e-15
      | 'p' -> 1e-12
      | 'n' -> 1e-9
      | 'u' -> 1e-6
      | 'm' -> 1e-3
      | 'k' -> 1e3
      | 'g' -> 1e9
      | 't' -> 1e12
      | _ -> 1.0
  in
  base *. scale

type t = {
  ir : Spice_ir.t;
  names : string array; (* node id -> original name; names.(0) = "0" *)
  nl : Netlist.t Lazy.t;
}

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)
(* ------------------------------------------------------------------ *)

type subckt = { formals : string list; body : Spice_lex.line list (* reversed *) }

type state = {
  node_ids : (string, int) Hashtbl.t;
  mutable node_names : string list; (* reverse order of id assignment *)
  mutable cards : Spice_ir.card list; (* reversed *)
  mutable ports : int list; (* reversed *)
  inductors : (string, int) Hashtbl.t; (* scoped name -> inductor index *)
  mutable ind_count : int;
  models : (string, char * float) Hashtbl.t; (* name -> (kind, value) *)
  subckts : (string, subckt) Hashtbl.t;
  (* definition being collected: name, start line, formals, body (rev) *)
  mutable defining : (string * int * string list * Spice_lex.line list) option;
  mutable finished : bool; (* .end seen *)
}

let fresh_state () =
  {
    node_ids = Hashtbl.create 64;
    node_names = [];
    cards = [];
    ports = [];
    inductors = Hashtbl.create 16;
    ind_count = 0;
    models = Hashtbl.create 8;
    subckts = Hashtbl.create 8;
    defining = None;
    finished = false;
  }

(* Instance scope: node-name prefix plus formal -> resolved-node bindings. *)
type scope = { prefix : string; bindings : (string * int) list }

let top_scope = { prefix = ""; bindings = [] }

let lookup_node st name =
  match Hashtbl.find_opt st.node_ids name with
  | Some n -> n
  | None ->
      let n = Hashtbl.length st.node_ids + 1 in
      Hashtbl.add st.node_ids name n;
      st.node_names <- name :: st.node_names;
      n

let resolve_node st scope name =
  let key = String.lowercase_ascii name in
  if key = "0" || key = "gnd" then 0
  else
    match List.assoc_opt key scope.bindings with
    | Some n -> n
    | None -> lookup_node st (scope.prefix ^ key)

let check_value ~line v =
  if not (Float.is_finite v) then
    raise (Parse_error (line, Printf.sprintf "element value must be finite (got %g)" v))
  else if v = 0.0 then raise (Parse_error (line, "element value must be nonzero"))
  else v

(* The value field of an element card: a .model reference or a literal. *)
let element_value st ~line ~kind tok =
  match Hashtbl.find_opt st.models (String.lowercase_ascii tok) with
  | Some (mk, v) ->
      if mk = kind then v
      else
        raise
          (Parse_error
             (line, Printf.sprintf "model %s has type %c, card needs %c" tok mk kind))
  | None -> check_value ~line (parse_value ~line tok)

let model_kind ~line s =
  match String.lowercase_ascii s with
  | "r" | "res" -> 'r'
  | "c" | "cap" -> 'c'
  | "l" | "ind" -> 'l'
  | other -> raise (Parse_error (line, "unknown model type: " ^ other))

let max_instance_depth = 64

(* One element/instance card, in a given scope.  [depth] bounds recursive
   subcircuit instantiation. *)
let rec process_card st scope depth { Spice_lex.num = line; tokens } =
  match tokens with
  | [] -> ()
  | card :: rest -> (
      let kind = Char.lowercase_ascii card.[0] in
      match (kind, rest) with
      | '.', _ -> (
          match (String.lowercase_ascii card, rest) with
          | ".end", _ ->
              if scope == top_scope then st.finished <- true
              else raise (Parse_error (line, ".end inside a subcircuit body"))
          | ".port", [ node ] ->
              if scope != top_scope then
                raise (Parse_error (line, ".port is not allowed inside a subcircuit"))
              else begin
                let n = resolve_node st scope node in
                if n = 0 then raise (Parse_error (line, ".port cannot sit on ground"));
                st.ports <- n :: st.ports
              end
          | ".port", _ -> raise (Parse_error (line, ".port expects one node"))
          | ".model", [ name; mtype; value ] ->
              if scope != top_scope then
                raise (Parse_error (line, ".model is not allowed inside a subcircuit"))
              else
                let k = model_kind ~line mtype in
                let v = check_value ~line (parse_value ~line value) in
                Hashtbl.replace st.models (String.lowercase_ascii name) (k, v)
          | ".model", _ -> raise (Parse_error (line, ".model expects NAME TYPE VALUE"))
          | (".subckt" | ".ends"), _ ->
              (* handled by the definition collector; reaching here means a
                 definition directive inside an instance body *)
              raise (Parse_error (line, card ^ " is not allowed inside a subcircuit body"))
          | other, _ -> raise (Parse_error (line, "unknown directive " ^ other)))
      | 'r', [ n1; n2; v ] ->
          let value = element_value st ~line ~kind:'r' v in
          let n1 = resolve_node st scope n1 in
          let n2 = resolve_node st scope n2 in
          if n1 <> n2 then st.cards <- Spice_ir.Res { n1; n2; ohms = value } :: st.cards
      | 'c', [ n1; n2; v ] ->
          let value = element_value st ~line ~kind:'c' v in
          let n1 = resolve_node st scope n1 in
          let n2 = resolve_node st scope n2 in
          if n1 <> n2 then st.cards <- Spice_ir.Cap { n1; n2; farads = value } :: st.cards
      | 'l', [ n1; n2; v ] ->
          let value = element_value st ~line ~kind:'l' v in
          let n1 = resolve_node st scope n1 in
          let n2 = resolve_node st scope n2 in
          if n1 <> n2 then begin
            let id = st.ind_count in
            st.ind_count <- id + 1;
            Hashtbl.replace st.inductors (scope.prefix ^ String.lowercase_ascii card) id;
            st.cards <- Spice_ir.Ind { n1; n2; henries = value } :: st.cards
          end
      | 'k', [ l1; l2; v ] ->
          let find name =
            match Hashtbl.find_opt st.inductors (scope.prefix ^ String.lowercase_ascii name) with
            | Some id -> id
            | None -> raise (Parse_error (line, "unknown inductor " ^ name))
          in
          let l1 = find l1 and l2 = find l2 in
          if l1 = l2 then
            raise (Parse_error (line, "mutual coupling needs two distinct inductors"));
          let k = parse_value ~line v in
          if not (Float.is_finite k && Float.abs k < 1.0) then
            raise
              (Parse_error (line, Printf.sprintf "coupling must satisfy |k| < 1 (got %g)" k));
          st.cards <- Spice_ir.Mut { l1; l2; k } :: st.cards
      | 'x', _ -> (
          if depth >= max_instance_depth then
            raise (Parse_error (line, "subcircuit instances nested too deeply"));
          match List.rev rest with
          | [] -> raise (Parse_error (line, "instance card needs nodes and a subckt name"))
          | subname :: rev_actuals -> (
              let key = String.lowercase_ascii subname in
              match Hashtbl.find_opt st.subckts key with
              | None -> raise (Parse_error (line, "unknown subcircuit " ^ subname))
              | Some def ->
                  let actuals = List.rev rev_actuals in
                  if List.length actuals <> List.length def.formals then
                    raise
                      (Parse_error
                         ( line,
                           Printf.sprintf "instance of %s expects %d nodes (got %d)" subname
                             (List.length def.formals) (List.length actuals) ));
                  (* bind formals to nodes resolved in the CALLER's scope *)
                  let bindings =
                    List.map2
                      (fun formal actual -> (formal, resolve_node st scope actual))
                      def.formals actuals
                  in
                  let inner =
                    {
                      prefix = scope.prefix ^ String.lowercase_ascii card ^ ".";
                      bindings;
                    }
                  in
                  List.iter
                    (fun body_line -> process_card st inner (depth + 1) body_line)
                    (List.rev def.body)))
      | ('r' | 'c' | 'l' | 'k'), _ ->
          raise
            (Parse_error (line, "wrong number of fields: " ^ String.concat " " tokens))
      | _, _ ->
          raise (Parse_error (line, "unknown card: " ^ String.concat " " tokens)))

(* Top-level dispatch: subckt definition collection wraps process_card. *)
let process_line st (ln : Spice_lex.line) =
  if not st.finished then
    match (st.defining, ln.tokens) with
    | Some (name, start, formals, body), first :: _
      when String.lowercase_ascii first = ".ends" ->
        ignore start;
        Hashtbl.replace st.subckts name { formals; body };
        st.defining <- None
    | Some (_, _, _, _), first :: _ when String.lowercase_ascii first = ".subckt" ->
        raise (Parse_error (ln.num, "nested .subckt definitions are not supported"))
    | Some (name, start, formals, body), _ ->
        st.defining <- Some (name, start, formals, ln :: body)
    | None, first :: rest when String.lowercase_ascii first = ".subckt" -> (
        match rest with
        | name :: formals when formals <> [] ->
            let formals = List.map String.lowercase_ascii formals in
            st.defining <- Some (String.lowercase_ascii name, ln.num, formals, [])
        | _ -> raise (Parse_error (ln.num, ".subckt expects a name and at least one node")))
    | None, first :: _ when String.lowercase_ascii first = ".ends" ->
        raise (Parse_error (ln.num, ".ends without a matching .subckt"))
    | None, _ -> process_card st top_scope 0 ln

let finish st =
  (match st.defining with
  | Some (name, start, _, _) ->
      raise (Parse_error (start, ".subckt " ^ name ^ " is never closed by .ends"))
  | None -> ());
  let nodes = Hashtbl.length st.node_ids in
  let ir =
    {
      Spice_ir.cards = Array.of_list (List.rev st.cards);
      ports = Array.of_list (List.rev st.ports);
      nodes;
    }
  in
  let names = Array.make (nodes + 1) "0" in
  List.iteri (fun i name -> names.(nodes - i) <- name) st.node_names;
  { ir; names; nl = lazy (Spice_ir.to_netlist ir) }

let parse ~next =
  let st = fresh_state () in
  (try Spice_lex.iter ~next ~f:(process_line st)
   with Spice_lex.Error (line, msg) -> raise (Parse_error (line, msg)));
  finish st

let parse_string text = parse ~next:(Spice_lex.next_of_string text)
let parse_channel ic = parse ~next:(Spice_lex.next_of_channel ic)

let parse_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> parse_channel ic)

let netlist t = Lazy.force t.nl
let ir t = t.ir

let node_name t n =
  if n >= 0 && n < Array.length t.names then t.names.(n) else string_of_int n

(* Render a netlist in the canonical dialect (first-use node numbering,
   %.17g values). *)
let to_string (nl : Netlist.t) = Spice_ir.render (Spice_ir.canonical (Spice_ir.of_netlist nl))

let write_file path nl =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string nl))
