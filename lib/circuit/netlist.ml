(* Circuit netlists.  Nodes are non-negative integers with 0 = ground.
   Ports are current-injection sources whose observed output is the port
   node voltage, so an MNA realisation of the netlist is the impedance-
   parameter state-space model of the parasitic network (the setting of all
   the paper's examples). *)

type element =
  | Resistor of { n1 : int; n2 : int; ohms : float }
  | Capacitor of { n1 : int; n2 : int; farads : float }
  | Inductor of { n1 : int; n2 : int; henries : float }
      (* current flows n1 -> n2 through the inductor state *)
  | Mutual of { l1 : int; l2 : int; coupling : float }
      (* coupling coefficient between the [l1]-th and [l2]-th inductors *)

type t = {
  mutable elements : element list; (* reverse order of addition *)
  mutable max_node : int;
  mutable inductor_count : int;
  mutable ports : int list; (* reverse order: port node per port *)
}

let create () = { elements = []; max_node = 0; inductor_count = 0; ports = [] }

let see_node t n =
  assert (n >= 0);
  if n > t.max_node then t.max_node <- n

(* Values must be nonzero and finite; negative branch elements are legal —
   unstamping synthesis of a reduced model routinely produces them (the
   assembled MNA matrices stay semidefinite even when individual branches
   are negative). *)
let valid_value v = Float.is_finite v && v <> 0.0

let add_r t n1 n2 ohms =
  assert (valid_value ohms);
  see_node t n1;
  see_node t n2;
  if n1 <> n2 then t.elements <- Resistor { n1; n2; ohms } :: t.elements

let add_c t n1 n2 farads =
  assert (valid_value farads);
  see_node t n1;
  see_node t n2;
  if n1 <> n2 then t.elements <- Capacitor { n1; n2; farads } :: t.elements

(* Returns the inductor index, for later mutual coupling. *)
let add_l t n1 n2 henries =
  assert (valid_value henries);
  see_node t n1;
  see_node t n2;
  let id = t.inductor_count in
  t.elements <- Inductor { n1; n2; henries } :: t.elements;
  t.inductor_count <- id + 1;
  id

let add_mutual t l1 l2 coupling =
  assert (l1 <> l2 && Float.abs coupling < 1.0);
  assert (l1 < t.inductor_count && l2 < t.inductor_count);
  t.elements <- Mutual { l1; l2; coupling } :: t.elements

(* Declares node [n] a port; returns the port index. *)
let add_port t n =
  assert (n > 0);
  see_node t n;
  let id = List.length t.ports in
  t.ports <- n :: t.ports;
  id

let elements t = List.rev t.elements
let ports t = List.rev t.ports
let node_count t = t.max_node (* internal nodes 1..max_node; 0 is ground *)
let inductor_count t = t.inductor_count
let port_count t = List.length t.ports

let stats t =
  let r = ref 0 and c = ref 0 and l = ref 0 and k = ref 0 in
  List.iter
    (function
      | Resistor _ -> incr r
      | Capacitor _ -> incr c
      | Inductor _ -> incr l
      | Mutual _ -> incr k)
    t.elements;
  (!r, !c, !l, !k)
