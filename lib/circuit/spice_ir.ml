(* Canonical netlist IR: the single in-memory form every reader dialect
   parses into and every writer renders from.  A value of [t] is a flat
   card array (subcircuits already flattened, models already resolved)
   plus the port list — exactly the information MNA stamping needs, in a
   shape whose canonical rendering is deterministic and idempotent:

     render (canonical ir)  parses back to  canonical ir

   byte-for-byte, which is what makes it usable as a content address
   (lib/serve/store.ml) and as the CedarSim-style roundtrip contract
   (parse -> generate -> parse -> generate is stable). *)

type card =
  | Res of { n1 : int; n2 : int; ohms : float }
  | Cap of { n1 : int; n2 : int; farads : float }
  | Ind of { n1 : int; n2 : int; henries : float }
  | Mut of { l1 : int; l2 : int; k : float }
      (* l1/l2 index the inductor cards in order of appearance *)

type t = {
  cards : card array;
  ports : int array; (* port nodes, in declaration order *)
  nodes : int; (* largest node index (internal nodes are 1..nodes) *)
}

let stats t =
  let r = ref 0 and c = ref 0 and l = ref 0 and k = ref 0 in
  Array.iter
    (function
      | Res _ -> incr r
      | Cap _ -> incr c
      | Ind _ -> incr l
      | Mut _ -> incr k)
    t.cards;
  (!r, !c, !l, !k)

(* Canonical node numbering: nodes renumbered 1.. in order of first
   appearance scanning the cards, then the ports (ground 0 is fixed).
   Idempotent, and exactly the numbering the parser assigns when it reads
   the canonical rendering back — that is the fixpoint argument. *)
let canonical t =
  let map = Hashtbl.create (2 * t.nodes) in
  let fresh = ref 0 in
  let renum n =
    if n = 0 then 0
    else
      match Hashtbl.find_opt map n with
      | Some m -> m
      | None ->
          incr fresh;
          Hashtbl.add map n !fresh;
          !fresh
  in
  let cards =
    Array.map
      (function
        | Res { n1; n2; ohms } ->
            let n1 = renum n1 in
            Res { n1; n2 = renum n2; ohms }
        | Cap { n1; n2; farads } ->
            let n1 = renum n1 in
            Cap { n1; n2 = renum n2; farads }
        | Ind { n1; n2; henries } ->
            let n1 = renum n1 in
            Ind { n1; n2 = renum n2; henries }
        | Mut _ as m -> m)
      t.cards
  in
  let ports = Array.map renum t.ports in
  { cards; ports; nodes = !fresh }

(* Canonical text.  Values render with %.17g so every float roundtrips
   bit-exactly through the text form — the synthesis writer depends on
   this for the re-parsed-ROM == in-memory-ROM contract. *)
let render t =
  let buf = Buffer.create (64 * (Array.length t.cards + Array.length t.ports) + 64) in
  Buffer.add_string buf "* exported by pmtbr\n";
  let r = ref 0 and c = ref 0 and l = ref 0 and k = ref 0 in
  Array.iter
    (function
      | Res { n1; n2; ohms } ->
          incr r;
          Buffer.add_string buf (Printf.sprintf "R%d %d %d %.17g\n" !r n1 n2 ohms)
      | Cap { n1; n2; farads } ->
          incr c;
          Buffer.add_string buf (Printf.sprintf "C%d %d %d %.17g\n" !c n1 n2 farads)
      | Ind { n1; n2; henries } ->
          incr l;
          Buffer.add_string buf (Printf.sprintf "L%d %d %d %.17g\n" !l n1 n2 henries)
      | Mut { l1; l2; k = coupling } ->
          incr k;
          Buffer.add_string buf
            (Printf.sprintf "K%d L%d L%d %.17g\n" !k (l1 + 1) (l2 + 1) coupling))
    t.cards;
  Array.iter (fun node -> Buffer.add_string buf (Printf.sprintf ".port %d\n" node)) t.ports;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let to_netlist t =
  let nl = Netlist.create () in
  let nind = ref 0 in
  let ind_ids =
    Array.make
      (Array.fold_left (fun n -> function Ind _ -> n + 1 | _ -> n) 0 t.cards |> max 1)
      0
  in
  Array.iter
    (function
      | Res { n1; n2; ohms } -> Netlist.add_r nl n1 n2 ohms
      | Cap { n1; n2; farads } -> Netlist.add_c nl n1 n2 farads
      | Ind { n1; n2; henries } ->
          ind_ids.(!nind) <- Netlist.add_l nl n1 n2 henries;
          incr nind
      | Mut { l1; l2; k } -> Netlist.add_mutual nl ind_ids.(l1) ind_ids.(l2) k)
    t.cards;
  Array.iter (fun node -> ignore (Netlist.add_port nl node)) t.ports;
  nl

let of_netlist nl =
  (* Netlist inductor ids are assigned in element order, so the positional
     indices here coincide with them. *)
  let cards =
    List.map
      (function
        | Netlist.Resistor { n1; n2; ohms } -> Res { n1; n2; ohms }
        | Netlist.Capacitor { n1; n2; farads } -> Cap { n1; n2; farads }
        | Netlist.Inductor { n1; n2; henries } -> Ind { n1; n2; henries }
        | Netlist.Mutual { l1; l2; coupling } -> Mut { l1; l2; k = coupling })
      (Netlist.elements nl)
    |> Array.of_list
  in
  {
    cards;
    ports = Array.of_list (Netlist.ports nl);
    nodes = Netlist.node_count nl;
  }
