(* Streaming logical-line lexer for the SPICE dialect.

   The reader above it never sees the raw text: physical lines are pulled
   one at a time from a producer thunk (a channel, a string walker, ...),
   comments and blanks are dropped here, '+' continuations are folded into
   the logical line they extend, and each logical line is delivered as a
   token list tagged with the physical line number where it started.  A
   million-element extraction therefore costs one small token list at a
   time — the full text is never split into a line list. *)

exception Error of int * string
(* physical line number (1-based) and message *)

type line = { num : int; tokens : string list }

(* Comment handling matches the historical reader plus the inline forms:
   '*' anywhere starts a comment (the legacy rule), and so do ';' and '$'
   (the inline-comment forms of extracted-netlist dialects). *)
let strip_comment s =
  let cut = ref (String.length s) in
  String.iteri
    (fun i c -> if i < !cut && (c = '*' || c = ';' || c = '$') then cut := i)
    s;
  if !cut = String.length s then s else String.sub s 0 !cut

let is_space c = c = ' ' || c = '\t' || c = '\r'

(* Tokenise on spaces/tabs without going through String.split_on_char so
   a long card costs exactly its token substrings. *)
let tokens_of s =
  let len = String.length s in
  let rec skip i = if i < len && is_space s.[i] then skip (i + 1) else i in
  let rec word i = if i < len && not (is_space s.[i]) then word (i + 1) else i in
  let rec go i acc =
    let i = skip i in
    if i >= len then List.rev acc
    else
      let j = word i in
      go j (String.sub s i (j - i) :: acc)
  in
  go 0 []

(* Fold [f] over the logical lines produced by [next].  [next] returns one
   physical line (without its newline) per call and [None] at end of
   input; '+' continuation lines extend the pending logical line. *)
let fold ~next ~init ~f =
  let acc = ref init in
  (* pending logical line being assembled, in reverse token order *)
  let pending = ref None in
  let flush () =
    match !pending with
    | None -> ()
    | Some (num, rev_tokens) ->
        pending := None;
        acc := f !acc { num; tokens = List.rev rev_tokens }
  in
  let lineno = ref 0 in
  let rec loop () =
    match next () with
    | None -> flush ()
    | Some raw ->
        incr lineno;
        (match tokens_of (strip_comment raw) with
        | [] -> () (* blank / comment-only: does not break a continuation *)
        | first :: rest when String.length first > 0 && first.[0] = '+' -> (
            (* continuation: '+' may be glued to its first token *)
            let extra =
              if String.length first > 1 then
                String.sub first 1 (String.length first - 1) :: rest
              else rest
            in
            match !pending with
            | None -> raise (Error (!lineno, "continuation line ('+') with no card to continue"))
            | Some (num, rev_tokens) ->
                pending := Some (num, List.rev_append extra rev_tokens))
        | tokens ->
            flush ();
            pending := Some (!lineno, List.rev tokens));
        loop ()
  in
  loop ();
  !acc

let iter ~next ~f = fold ~next ~init:() ~f:(fun () line -> f line)

(* Physical-line producers ------------------------------------------- *)

let next_of_channel ic () = In_channel.input_line ic

(* Walk a string by index: each call carves out one line, never the whole
   line list. *)
let next_of_string text =
  let pos = ref 0 in
  let len = String.length text in
  fun () ->
    (* pos = len only after consuming a final newline (or on empty input):
       the line before it was already delivered, so the input is done *)
    if !pos >= len then None
    else
      match String.index_from_opt text !pos '\n' with
      | Some i ->
          let line = String.sub text !pos (i - !pos) in
          pos := i + 1;
          Some line
      | None ->
          let line = String.sub text !pos (len - !pos) in
          pos := len + 1;
          Some line
