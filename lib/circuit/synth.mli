(** Netlist synthesis: realise a reduced descriptor model back into an
    R/C netlist by inverting the MNA stamp.

    Only RC-structured reciprocal models are realizable this way —
    [E], [A] symmetric and [C = B]{^ T}, the shape produced by the
    passivity-preserving truncation ({!Pmtbr_lti.Tbr_passive}).  The
    model is first brought to stampable form by the port-normalising
    congruence [T = [Q R]{^ -T}[ | complement]] (which leaves the
    transfer function exactly invariant), then each matrix entry is read
    back as a branch element.  Branch values may be negative; the
    re-stamped matrices are identical to the congruence-transformed ones
    up to the drop tolerance. *)

open Pmtbr_la

exception Unrealizable of string
(** The model is not RC-structured (asymmetric [E]/[A], [C <> B]{^ T},
    rank-deficient [B], or fewer states than ports). *)

val realize :
  ?drop_tol:float ->
  ?sym_tol:float ->
  ?workers:int ->
  e:Mat.t ->
  a:Mat.t ->
  b:Mat.t ->
  c:Mat.t ->
  unit ->
  Spice_ir.t
(** [realize ~e ~a ~b ~c ()] synthesises a [q]-node netlist whose MNA
    stamp has the same transfer function as [(e, a, b, c)].  Ports come
    out as nodes [1..p] in order.  Branches with magnitude below
    [drop_tol] (default [1e-14]) relative to the largest entry of their
    matrix are dropped; symmetry is checked to relative [sym_tol]
    (default [1e-8]).
    @raise Unrealizable if the model is not RC-structured. *)
