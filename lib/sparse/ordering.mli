(** Fill-reducing column orderings computed on the symmetrised nonzero
    pattern of a square sparse matrix.  A permutation [p] means "eliminate
    original index [p.(k)] at step [k]". *)

type scheme =
  | Natural  (** identity ordering *)
  | Rcm  (** reverse Cuthill-McKee: bandwidth reduction *)
  | Min_degree  (** greedy minimum degree: fill reduction *)
  | Given of int array
      (** a precomputed permutation, reused verbatim — this is how a
          symbolic analysis done once per system is replayed across the
          many shifted factorisations of a multi-point sweep *)

val natural : int -> int array
(** Identity permutation. *)

val rcm : int array -> int array -> int -> int array
(** [rcm colptr rowind n] is the reverse Cuthill-McKee order of the pattern
    given in CSC arrays.  Handles disconnected graphs. *)

val min_degree : int array -> int array -> int -> int array
(** Greedy minimum-degree order.  Quadratic worst case; fine at circuit
    sizes (up to a few thousand nodes). *)

val compute : scheme -> int array -> int array -> int -> int array
(** Dispatch on the scheme. *)
