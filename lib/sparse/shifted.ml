(* Factorisation of the shifted pencil (s E - A) for complex s, assembled
   from real triplet accumulators.  This is the inner kernel of PMTBR: one
   complex sparse factorisation per frequency sample. *)

type pencil = { e : Triplet.t; a : Triplet.t; n : int }

let pencil ~e ~a =
  let re, ce = Triplet.dims e and ra, ca = Triplet.dims a in
  let n = max (max re ce) (max ra ca) in
  assert (re <= n && ce <= n && ra <= n && ca <= n);
  { e; a; n }

type factor = Sparse_lu.C.factor

(* Factor (s E - A). *)
let factorize ?(ordering = Ordering.Rcm) (p : pencil) (s : Complex.t) : factor =
  let m = Csc.complex_combination ~alpha:s p.e ~beta:{ Complex.re = -1.0; im = 0.0 } p.a in
  (* pad to n x n in case trailing rows/cols carry no entries *)
  let m =
    if m.Csc.C.rows = p.n && m.Csc.C.cols = p.n then m
    else Csc.C.of_entries p.n p.n (Csc.C.to_entries m)
  in
  Sparse_lu.C.factorize ~ordering m

(* ------------------------------------------------------------------ *)
(* Multi-shift handle: symbolic work shared across all shifts           *)
(* ------------------------------------------------------------------ *)

(* The nonzero pattern of (sE - A) is the same for every s, so a sweep over
   many shifts should pay for the pattern assembly (triplet sort + merge),
   the fill-reducing ordering and the elimination analysis exactly once.
   [multi] stores the union pattern with separate E and A coefficient
   planes — the numeric matrix at shift s is just values[k] = s*e[k] - a[k]
   — plus a template factorisation whose structure every other shift reuses
   through [Sparse_lu.C.refactorize]. *)
(* Unboxed complex factor.  A [Complex.t array] is an array of pointers to
   two-float records, so a replay loop over one pays an allocation per
   multiply and a cache miss per load; storing the values as parallel
   re/im float arrays (which OCaml unboxes) makes the per-shift numeric
   refactorisation allocation-free.  Structure arrays are shared with the
   template factor. *)
type zfactor = {
  zn : int;
  zl_colptr : int array;
  zl_rowind : int array;
  zl_re : float array;
  zl_im : float array;
  zu_colptr : int array;
  zu_rowind : int array;
  zu_re : float array;
  zu_im : float array;
  zd_re : float array; (* U diagonal (the pivots) *)
  zd_im : float array;
  zpinv : int array;
  zq : int array;
}

let split_complex (a : Complex.t array) =
  ( Array.map (fun z -> z.Complex.re) a,
    Array.map (fun z -> z.Complex.im) a )

let zfactor_of_factor (f : factor) : zfactor =
  let r = Sparse_lu.C.raw f in
  let l_re, l_im = split_complex r.Sparse_lu.C.raw_l_values in
  let u_re, u_im = split_complex r.Sparse_lu.C.raw_u_values in
  let d_re, d_im = split_complex r.Sparse_lu.C.raw_u_diag in
  {
    zn = r.Sparse_lu.C.raw_n;
    zl_colptr = r.Sparse_lu.C.raw_l_colptr;
    zl_rowind = r.Sparse_lu.C.raw_l_rowind;
    zl_re = l_re;
    zl_im = l_im;
    zu_colptr = r.Sparse_lu.C.raw_u_colptr;
    zu_rowind = r.Sparse_lu.C.raw_u_rowind;
    zu_re = u_re;
    zu_im = u_im;
    zd_re = d_re;
    zd_im = d_im;
    zpinv = r.Sparse_lu.C.raw_pinv;
    zq = r.Sparse_lu.C.raw_q;
  }

type multi = {
  n : int;
  colptr : int array;
  rowind : int array;
  e_coef : float array;
  a_coef : float array;
  q : int array; (* column elimination order, computed once *)
  template : factor;
  tz : zfactor; (* unboxed view of the template, replayed per shift *)
}

(* Union pattern of E and A as parallel coefficient arrays (duplicates
   summed componentwise), mirroring Csc.of_entries assembly. *)
let assemble_pattern (p : pencil) =
  let entries =
    List.rev_append
      (List.rev_map (fun (i, j, v) -> (i, j, v, 0.0)) (Triplet.entries p.e))
      (List.map (fun (i, j, v) -> (i, j, 0.0, v)) (Triplet.entries p.a))
  in
  let arr = Array.of_list entries in
  Array.iter (fun (i, j, _, _) -> assert (i >= 0 && i < p.n && j >= 0 && j < p.n)) arr;
  Array.sort
    (fun (i1, j1, _, _) (i2, j2, _, _) -> if j1 <> j2 then compare j1 j2 else compare i1 i2)
    arr;
  let merged = ref [] and count = ref 0 in
  Array.iter
    (fun (i, j, ev, av) ->
      match !merged with
      | (i', j', ev', av') :: rest when i = i' && j = j' ->
          merged := (i, j, ev +. ev', av +. av') :: rest
      | _ ->
          merged := (i, j, ev, av) :: !merged;
          incr count)
    arr;
  let merged = Array.of_list (List.rev !merged) in
  let nnz = Array.length merged in
  let colptr = Array.make (p.n + 1) 0 in
  Array.iter (fun (_, j, _, _) -> colptr.(j + 1) <- colptr.(j + 1) + 1) merged;
  for j = 0 to p.n - 1 do
    colptr.(j + 1) <- colptr.(j + 1) + colptr.(j)
  done;
  let rowind = Array.make nnz 0 in
  let e_coef = Array.make nnz 0.0 and a_coef = Array.make nnz 0.0 in
  Array.iteri
    (fun k (i, _, ev, av) ->
      rowind.(k) <- i;
      e_coef.(k) <- ev;
      a_coef.(k) <- av)
    merged;
  (colptr, rowind, e_coef, a_coef)

(* The numeric matrix at one shift, on the shared pattern: O(nnz), no
   sorting, no allocation beyond the values array. *)
let matrix_at ~n ~colptr ~rowind ~e_coef ~a_coef (s : Complex.t) : Csc.C.t =
  let nnz = Array.length rowind in
  let values =
    Array.init nnz (fun k ->
        let e = e_coef.(k) and a = a_coef.(k) in
        { Complex.re = (s.Complex.re *. e) -. a; im = s.Complex.im *. e })
  in
  { Csc.C.rows = n; cols = n; colptr; rowind; values }

let prepare ?(ordering = Ordering.Rcm) (p : pencil) ~(template : Complex.t) =
  let colptr, rowind, e_coef, a_coef = assemble_pattern p in
  let q = Ordering.compute ordering colptr rowind p.n in
  let m0 = matrix_at ~n:p.n ~colptr ~rowind ~e_coef ~a_coef template in
  let template = Sparse_lu.C.factorize ~ordering:(Ordering.Given q) m0 in
  let tz = zfactor_of_factor template in
  { n = p.n; colptr; rowind; e_coef; a_coef; q; template; tz }

(* Reused pivots are declared stale below this magnitude relative to their
   eliminated column; the shift then pays for a fresh pivoting
   factorisation instead of losing accuracy silently. *)
let refactor_pivot_tol = 1e-10

let refactor (m : multi) (s : Complex.t) : factor =
  let a =
    matrix_at ~n:m.n ~colptr:m.colptr ~rowind:m.rowind ~e_coef:m.e_coef ~a_coef:m.a_coef s
  in
  try Sparse_lu.C.refactorize ~pivot_tol:refactor_pivot_tol m.template a
  with Sparse_lu.C.Singular _ ->
    (* fresh pivot search at this shift; still raises Singular if (sE - A)
       is genuinely singular *)
    Sparse_lu.C.factorize ~ordering:(Ordering.Given m.q) a

(* ------------------------------------------------------------------ *)
(* Unboxed per-shift replay and solves                                   *)
(* ------------------------------------------------------------------ *)

exception Stale_pivot

(* Numeric-only replay of the template elimination at shift s, entirely on
   float arrays: the per-shift values s*e - a are scattered straight from
   the coefficient planes (the complex CSC matrix is never materialised)
   and the Gilbert-Peierls update loop runs without boxing a single
   complex.  Division is Smith's algorithm, matching Complex.div. *)
let zreplay (m : multi) (s : Complex.t) : zfactor =
  let t = m.tz in
  let n = t.zn in
  let sre = s.Complex.re and sim = s.Complex.im in
  let l_re = Array.make (Array.length t.zl_re) 0.0 in
  let l_im = Array.make (Array.length t.zl_im) 0.0 in
  let u_re = Array.make (Array.length t.zu_re) 0.0 in
  let u_im = Array.make (Array.length t.zu_im) 0.0 in
  let d_re = Array.make n 0.0 and d_im = Array.make n 0.0 in
  let xre = Array.make n 0.0 and xim = Array.make n 0.0 in
  let mark = Array.make n (-1) in
  for k = 0 to n - 1 do
    (* the column's pattern in pivot coordinates: U rows, k, L rows *)
    for p = t.zu_colptr.(k) to t.zu_colptr.(k + 1) - 1 do
      let i = t.zu_rowind.(p) in
      xre.(i) <- 0.0;
      xim.(i) <- 0.0;
      mark.(i) <- k
    done;
    xre.(k) <- 0.0;
    xim.(k) <- 0.0;
    mark.(k) <- k;
    for p = t.zl_colptr.(k) to t.zl_colptr.(k + 1) - 1 do
      let i = t.zl_rowind.(p) in
      xre.(i) <- 0.0;
      xim.(i) <- 0.0;
      mark.(i) <- k
    done;
    (* scatter the shifted column s*e - a *)
    let jcol = t.zq.(k) in
    for p = m.colptr.(jcol) to m.colptr.(jcol + 1) - 1 do
      let i = t.zpinv.(m.rowind.(p)) in
      if mark.(i) <> k then
        invalid_arg "Shifted.zreplay: matrix pattern differs from the template";
      xre.(i) <- (sre *. m.e_coef.(p)) -. m.a_coef.(p);
      xim.(i) <- sim *. m.e_coef.(p)
    done;
    (* eliminate with the already-final L columns, ascending pivot order *)
    for p = t.zu_colptr.(k) to t.zu_colptr.(k + 1) - 1 do
      let j = t.zu_rowind.(p) in
      let xjre = xre.(j) and xjim = xim.(j) in
      u_re.(p) <- xjre;
      u_im.(p) <- xjim;
      if xjre <> 0.0 || xjim <> 0.0 then
        for lp = t.zl_colptr.(j) to t.zl_colptr.(j + 1) - 1 do
          let r = t.zl_rowind.(lp) in
          let lre = l_re.(lp) and lim = l_im.(lp) in
          xre.(r) <- xre.(r) -. ((lre *. xjre) -. (lim *. xjim));
          xim.(r) <- xim.(r) -. ((lre *. xjim) +. (lim *. xjre))
        done
    done;
    (* reused pivot: check it has not gone stale relative to its column *)
    let pre = xre.(k) and pim = xim.(k) in
    let pmag = Float.hypot pre pim in
    let colmax = ref pmag in
    for p = t.zl_colptr.(k) to t.zl_colptr.(k + 1) - 1 do
      let i = t.zl_rowind.(p) in
      let mag = Float.hypot xre.(i) xim.(i) in
      if mag > !colmax then colmax := mag
    done;
    if pmag <= refactor_pivot_tol *. !colmax || pmag = 0.0 then raise Stale_pivot;
    d_re.(k) <- pre;
    d_im.(k) <- pim;
    (* L column entries divided by the pivot (Smith's division, inline) *)
    if Float.abs pre >= Float.abs pim then begin
      let r = pim /. pre in
      let d = pre +. (r *. pim) in
      for p = t.zl_colptr.(k) to t.zl_colptr.(k + 1) - 1 do
        let i = t.zl_rowind.(p) in
        let nre = xre.(i) and nim = xim.(i) in
        l_re.(p) <- (nre +. (r *. nim)) /. d;
        l_im.(p) <- (nim -. (r *. nre)) /. d
      done
    end
    else begin
      let r = pre /. pim in
      let d = pim +. (r *. pre) in
      for p = t.zl_colptr.(k) to t.zl_colptr.(k + 1) - 1 do
        let i = t.zl_rowind.(p) in
        let nre = xre.(i) and nim = xim.(i) in
        l_re.(p) <- ((r *. nre) +. nim) /. d;
        l_im.(p) <- ((r *. nim) -. nre) /. d
      done
    end
  done;
  { t with zl_re = l_re; zl_im = l_im; zu_re = u_re; zu_im = u_im; zd_re = d_re; zd_im = d_im }

let refactor_z (m : multi) (s : Complex.t) : zfactor =
  try zreplay m s
  with Stale_pivot ->
    (* fresh pivot search at this shift, then back to the unboxed form;
       still raises Sparse_lu.C.Singular if (sE - A) is genuinely
       singular *)
    let a =
      matrix_at ~n:m.n ~colptr:m.colptr ~rowind:m.rowind ~e_coef:m.e_coef ~a_coef:m.a_coef s
    in
    zfactor_of_factor (Sparse_lu.C.factorize ~ordering:(Ordering.Given m.q) a)

(* Forward/backward substitution on the unboxed factor for one real
   right-hand-side column, into the caller's float workspaces. *)
let zsolve_col (f : zfactor) (b : Pmtbr_la.Mat.t) jcol (wre : float array) (wim : float array)
    =
  let n = f.zn in
  (* w = P b *)
  for i = 0 to n - 1 do
    wre.(f.zpinv.(i)) <- Pmtbr_la.Mat.get b i jcol;
    wim.(f.zpinv.(i)) <- 0.0
  done;
  (* L w = w (unit diagonal) *)
  for k = 0 to n - 1 do
    let ykre = wre.(k) and ykim = wim.(k) in
    if ykre <> 0.0 || ykim <> 0.0 then
      for p = f.zl_colptr.(k) to f.zl_colptr.(k + 1) - 1 do
        let r = f.zl_rowind.(p) in
        let lre = f.zl_re.(p) and lim = f.zl_im.(p) in
        wre.(r) <- wre.(r) -. ((lre *. ykre) -. (lim *. ykim));
        wim.(r) <- wim.(r) -. ((lre *. ykim) +. (lim *. ykre))
      done
  done;
  (* U w = w *)
  for k = n - 1 downto 0 do
    let nre = wre.(k) and nim = wim.(k) in
    let dre = f.zd_re.(k) and dim = f.zd_im.(k) in
    let ykre, ykim =
      if Float.abs dre >= Float.abs dim then begin
        let r = dim /. dre in
        let d = dre +. (r *. dim) in
        ((nre +. (r *. nim)) /. d, (nim -. (r *. nre)) /. d)
      end
      else begin
        let r = dre /. dim in
        let d = dim +. (r *. dre) in
        (((r *. nre) +. nim) /. d, ((r *. nim) -. nre) /. d)
      end
    in
    wre.(k) <- ykre;
    wim.(k) <- ykim;
    if ykre <> 0.0 || ykim <> 0.0 then
      for p = f.zu_colptr.(k) to f.zu_colptr.(k + 1) - 1 do
        let r = f.zu_rowind.(p) in
        let ure = f.zu_re.(p) and uim = f.zu_im.(p) in
        wre.(r) <- wre.(r) -. ((ure *. ykre) -. (uim *. ykim));
        wim.(r) <- wim.(r) -. ((ure *. ykim) +. (uim *. ykre))
      done
  done

let zsolve_dense (f : zfactor) (b : Pmtbr_la.Mat.t) : Complex.t array array =
  let n = f.zn in
  let wre = Array.make n 0.0 and wim = Array.make n 0.0 in
  Array.init b.Pmtbr_la.Mat.cols (fun jcol ->
      zsolve_col f b jcol wre wim;
      (* x = Q w: undo the column permutation while boxing the output *)
      let x = Array.make n Complex.zero in
      for k = 0 to n - 1 do
        x.(f.zq.(k)) <- { Complex.re = wre.(k); im = wim.(k) }
      done;
      x)

(* (sE - A)^H x = b for real b: conj ((sE - A)^T conj x) = b, so run the
   transposed solve on the (real) rhs and conjugate the result. *)
let zsolve_hermitian_col (f : zfactor) (b : Pmtbr_la.Mat.t) jcol (wre : float array)
    (wim : float array) =
  let n = f.zn in
  (* w = Q^T b *)
  for k = 0 to n - 1 do
    wre.(k) <- Pmtbr_la.Mat.get b f.zq.(k) jcol;
    wim.(k) <- 0.0
  done;
  (* U^T w = w, ascending *)
  for k = 0 to n - 1 do
    let accre = ref wre.(k) and accim = ref wim.(k) in
    for p = f.zu_colptr.(k) to f.zu_colptr.(k + 1) - 1 do
      let r = f.zu_rowind.(p) in
      let ure = f.zu_re.(p) and uim = f.zu_im.(p) in
      accre := !accre -. ((ure *. wre.(r)) -. (uim *. wim.(r)));
      accim := !accim -. ((ure *. wim.(r)) +. (uim *. wre.(r)))
    done;
    let nre = !accre and nim = !accim in
    let dre = f.zd_re.(k) and dim = f.zd_im.(k) in
    if Float.abs dre >= Float.abs dim then begin
      let r = dim /. dre in
      let d = dre +. (r *. dim) in
      wre.(k) <- (nre +. (r *. nim)) /. d;
      wim.(k) <- (nim -. (r *. nre)) /. d
    end
    else begin
      let r = dre /. dim in
      let d = dim +. (r *. dre) in
      wre.(k) <- ((r *. nre) +. nim) /. d;
      wim.(k) <- ((r *. nim) -. nre) /. d
    end
  done;
  (* L^T w = w (unit diagonal), descending *)
  for k = n - 1 downto 0 do
    let accre = ref wre.(k) and accim = ref wim.(k) in
    for p = f.zl_colptr.(k) to f.zl_colptr.(k + 1) - 1 do
      let r = f.zl_rowind.(p) in
      let lre = f.zl_re.(p) and lim = f.zl_im.(p) in
      accre := !accre -. ((lre *. wre.(r)) -. (lim *. wim.(r)));
      accim := !accim -. ((lre *. wim.(r)) +. (lim *. wre.(r)))
    done;
    wre.(k) <- !accre;
    wim.(k) <- !accim
  done

let zsolve_hermitian_dense (f : zfactor) (b : Pmtbr_la.Mat.t) : Complex.t array array =
  let n = f.zn in
  let wre = Array.make n 0.0 and wim = Array.make n 0.0 in
  Array.init b.Pmtbr_la.Mat.cols (fun jcol ->
      zsolve_hermitian_col f b jcol wre wim;
      (* x_i = conj w_{pinv i}: undo the row permutation of the transposed
         system and apply the outer conjugation in one pass *)
      let x = Array.make n Complex.zero in
      for i = 0 to n - 1 do
        x.(i) <- { Complex.re = wre.(f.zpinv.(i)); im = -.wim.(f.zpinv.(i)) }
      done;
      x)

(* Solve (sE - A) X = B for a dense real B; returns the complex columns. *)
let solve_dense (f : factor) (b : Pmtbr_la.Mat.t) =
  let n = b.Pmtbr_la.Mat.rows in
  Array.init b.Pmtbr_la.Mat.cols (fun j ->
      let rhs = Array.init n (fun i -> { Complex.re = Pmtbr_la.Mat.get b i j; im = 0.0 }) in
      Sparse_lu.C.solve_vec f rhs)

(* Solve (sE - A)^H X = B, used for the observability samples of the
   cross-Gramian method: (sE - A)^H = conj(s) E^T - A^T for real E, A. *)
let solve_hermitian_dense (f : factor) (b : Pmtbr_la.Mat.t) =
  let n = b.Pmtbr_la.Mat.rows in
  Array.init b.Pmtbr_la.Mat.cols (fun j ->
      let rhs = Array.init n (fun i -> { Complex.re = Pmtbr_la.Mat.get b i j; im = 0.0 }) in
      (* (sE-A)^H x = b  <=>  conj((sE-A)^T conj(x)) = b *)
      let rhs_conj = Array.map Complex.conj rhs in
      let y = Sparse_lu.C.solve_transposed_vec f rhs_conj in
      Array.map Complex.conj y)
