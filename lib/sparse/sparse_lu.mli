(** Left-looking sparse LU with partial pivoting (Gilbert-Peierls), generic
    over the scalar — the workhorse behind every [(sE - A)] solve in PMTBR.
    The nonzero pattern of each column's triangular solve is found by
    depth-first search on the graph of the computed L columns, so the
    numeric work is proportional to the arithmetic performed. *)

open Pmtbr_la

module type S = sig
  type elt

  module M : Csc.S with type elt = elt

  exception Singular of int
  (** Raised with the failing column when no nonzero pivot exists. *)

  type factor
  (** A computed factorisation [P A Q = L U]. *)

  val factorize : ?ordering:Ordering.scheme -> M.t -> factor
  (** Factor a square CSC matrix with the given column pre-ordering
      (default {!Ordering.Natural}) and partial row pivoting. *)

  val refactorize : ?pivot_tol:float -> factor -> M.t -> factor
  (** [refactorize tpl a] replays the elimination of the template factor on
      a matrix with the {e same sparsity pattern} but new values: same
      column ordering, same pivot sequence, same L/U structure, numeric
      work only.  This is the per-shift fast path of a multi-shift sweep —
      the symbolic analysis (ordering, reachability, fill) is paid once by
      the template.

      Reused pivots are not re-chosen, so [Singular k] is raised when a
      reused pivot magnitude drops to [pivot_tol] (default [0.]) relative
      to the largest entry of its eliminated column (exact zeros always
      raise); callers should then fall back to {!factorize}.
      @raise Invalid_argument when the pattern of [a] differs from the
      template's. *)

  val col_ordering : factor -> int array
  (** The column elimination order used by the factor (a copy). *)

  type raw = {
    raw_n : int;
    raw_l_colptr : int array;
    raw_l_rowind : int array;
    raw_l_values : elt array;
    raw_u_colptr : int array;
    raw_u_rowind : int array;
    raw_u_values : elt array;
    raw_u_diag : elt array;
    raw_pinv : int array;
    raw_q : int array;
  }
  (** The factor laid bare: [P A Q = L U] with L unit-lower (diagonal
      implicit) and U split into its strict upper part plus [raw_u_diag],
      both in pivot coordinates; [raw_pinv] maps original rows to pivot
      positions and [raw_q] lists the original column eliminated at each
      step.  U columns are stored in ascending pivot order. *)

  val raw : factor -> raw
  (** Read-only structural view sharing the factor's arrays (no copies) —
      the entry point for specialised kernels such as the unboxed complex
      refactorisation in {!Shifted}.  Mutating the arrays corrupts the
      factor. *)

  val nnz : factor -> int
  (** Nonzeros in L + U (including the unit diagonal), a fill measure. *)

  val solve_vec : factor -> elt array -> elt array
  (** Solve [A x = b]. *)

  val solve_transposed_vec : factor -> elt array -> elt array
  (** Solve [A^T x = b] with the same factorisation. *)

  val solve_dense : factor -> M.t -> elt array array
  (** Solve for each column of a sparse right-hand side. *)
end

module Make (K : Scalar.S) : S with type elt = K.t

module R : S with type elt = float and module M = Csc.R
module C : S with type elt = Complex.t and module M = Csc.C
