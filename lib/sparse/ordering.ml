(* Fill-reducing column orderings computed on the symmetrised nonzero
   pattern of a square sparse matrix.  A permutation [p] means "eliminate
   original index p.(k) at step k". *)

module Int_set = Set.Make (Int)

(* Symmetrised adjacency (pattern of A + A^T, no self loops). *)
let adjacency (colptr : int array) (rowind : int array) n =
  let adj = Array.make n Int_set.empty in
  for j = 0 to n - 1 do
    for k = colptr.(j) to colptr.(j + 1) - 1 do
      let i = rowind.(k) in
      if i <> j then begin
        adj.(i) <- Int_set.add j adj.(i);
        adj.(j) <- Int_set.add i adj.(j)
      end
    done
  done;
  adj

let natural n = Array.init n (fun i -> i)

(* Reverse Cuthill-McKee: BFS from a minimum-degree start node, neighbours
   visited in increasing degree, final order reversed.  Reduces bandwidth,
   which bounds fill for the banded-ish circuit matrices. *)
let rcm (colptr : int array) (rowind : int array) n =
  let adj = adjacency colptr rowind n in
  let degree i = Int_set.cardinal adj.(i) in
  let visited = Array.make n false in
  let order = ref [] in
  let count = ref 0 in
  while !count < n do
    (* start a new component at its min-degree node *)
    let start = ref (-1) in
    for i = n - 1 downto 0 do
      if (not visited.(i)) && (!start < 0 || degree i < degree !start) then start := i
    done;
    let queue = Queue.create () in
    Queue.add !start queue;
    visited.(!start) <- true;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      order := u :: !order;
      incr count;
      let nbrs =
        Int_set.elements adj.(u)
        |> List.filter (fun v -> not visited.(v))
        |> List.sort (fun a b -> compare (degree a) (degree b))
      in
      List.iter
        (fun v ->
          visited.(v) <- true;
          Queue.add v queue)
        nbrs
    done
  done;
  (* !order is already the reversed BFS order *)
  Array.of_list !order

(* Greedy minimum-degree on the quotient-free elimination graph: repeatedly
   eliminate a lowest-degree node and clique its neighbourhood.  Quadratic
   worst case but fine at circuit sizes (<= a few thousand nodes). *)
let min_degree (colptr : int array) (rowind : int array) n =
  let adj = adjacency colptr rowind n in
  let eliminated = Array.make n false in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    let best = ref (-1) and best_deg = ref max_int in
    for i = 0 to n - 1 do
      if not eliminated.(i) then begin
        let d = Int_set.cardinal adj.(i) in
        if d < !best_deg then begin
          best := i;
          best_deg := d
        end
      end
    done;
    let u = !best in
    order.(k) <- u;
    eliminated.(u) <- true;
    let nbrs = Int_set.filter (fun v -> not eliminated.(v)) adj.(u) in
    Int_set.iter
      (fun v ->
        adj.(v) <- Int_set.remove u adj.(v);
        adj.(v) <- Int_set.union adj.(v) (Int_set.remove v nbrs))
      nbrs
  done;
  order

type scheme = Natural | Rcm | Min_degree | Given of int array

let compute scheme colptr rowind n =
  match scheme with
  | Natural -> natural n
  | Rcm -> rcm colptr rowind n
  | Min_degree -> min_degree colptr rowind n
  | Given p ->
      if Array.length p <> n then invalid_arg "Ordering.compute: Given permutation has wrong length";
      Array.copy p
