(** Factorisation of the shifted pencil [(sE - A)] for complex [s],
    assembled from real triplet accumulators.  This is the inner kernel of
    PMTBR: one complex sparse factorisation per frequency sample. *)

type pencil
(** The pair (E, A) with an agreed square dimension. *)

val pencil : e:Triplet.t -> a:Triplet.t -> pencil
(** Bundle the two stamped matrices; the pencil dimension is the largest of
    their dimensions. *)

type factor = Sparse_lu.C.factor
(** A complex sparse LU of [(sE - A)] at one shift. *)

val factorize : ?ordering:Ordering.scheme -> pencil -> Complex.t -> factor
(** [factorize p s] factors [(sE - A)] with the given fill-reducing
    ordering (default {!Ordering.Rcm}). *)

type multi
(** A multi-shift handle: the union nonzero pattern of [(sE - A)] with
    separate E/A coefficient planes, the fill-reducing ordering, and a
    template factorisation — everything whose cost is independent of the
    particular shift, paid once per system. *)

val prepare : ?ordering:Ordering.scheme -> pencil -> template:Complex.t -> multi
(** [prepare p ~template] assembles the shared pattern, computes the
    ordering (default {!Ordering.Rcm}), and factors [(template*E - A)] as
    the structural template for all later shifts.
    @raise Sparse_lu.C.Singular if the pencil is singular at [template]. *)

val refactor : multi -> Complex.t -> factor
(** [refactor m s] factors [(sE - A)] by numeric-only refactorisation
    against the template — per-shift cost proportional to the arithmetic,
    with no symbolic analysis.  Falls back to a fresh pivoting
    factorisation when a reused pivot degrades past [1e-10] relative to
    its column; raises [Sparse_lu.C.Singular] only when the shifted pencil
    is genuinely singular. *)

type zfactor
(** An unboxed complex factor: the same [P A Q = L U] data as {!factor}
    but with values held in parallel re/im float arrays instead of boxed
    [Complex.t] records.  This is the production representation of the
    multi-shift sweep — the numeric replay and the triangular solves run
    allocation-free on flat float arrays. *)

val refactor_z : multi -> Complex.t -> zfactor
(** Like {!refactor} but producing the unboxed factor via a float-only
    replay of the template elimination (the complex matrix is never
    materialised).  Same stale-pivot fallback semantics as {!refactor}. *)

val zsolve_dense : zfactor -> Pmtbr_la.Mat.t -> Complex.t array array
(** [zsolve_dense f b] solves [(sE - A) X = B] for a dense real [B] on the
    unboxed factor; one complex column per column of [B]. *)

val zsolve_hermitian_dense : zfactor -> Pmtbr_la.Mat.t -> Complex.t array array
(** [zsolve_hermitian_dense f b] solves [(sE - A)^H X = B] on the unboxed
    factor. *)

val solve_dense : factor -> Pmtbr_la.Mat.t -> Complex.t array array
(** [solve_dense f b] solves [(sE - A) X = B] for a dense real [B]; one
    complex column per column of [B]. *)

val solve_hermitian_dense : factor -> Pmtbr_la.Mat.t -> Complex.t array array
(** [solve_hermitian_dense f b] solves [(sE - A)^H X = B], reusing the same
    factorisation; used for the observability samples of the cross-Gramian
    method. *)
