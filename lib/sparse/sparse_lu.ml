(* Left-looking sparse LU with partial pivoting (Gilbert-Peierls), generic
   over the scalar.  This is the workhorse behind every (sE - A) solve in
   PMTBR, so both a real and a complex instance are exposed.

   For each column, the nonzero pattern of the triangular solve L x = a_k is
   found by depth-first search on the graph of the already-computed columns
   of L, giving a topological order in which the numeric elimination is
   performed in time proportional to flops. *)

open Pmtbr_la

module type S = sig
  type elt

  module M : Csc.S with type elt = elt

  exception Singular of int

  type factor

  val factorize : ?ordering:Ordering.scheme -> M.t -> factor
  val refactorize : ?pivot_tol:float -> factor -> M.t -> factor
  val col_ordering : factor -> int array

  type raw = {
    raw_n : int;
    raw_l_colptr : int array;
    raw_l_rowind : int array;
    raw_l_values : elt array;
    raw_u_colptr : int array;
    raw_u_rowind : int array;
    raw_u_values : elt array;
    raw_u_diag : elt array;
    raw_pinv : int array;
    raw_q : int array;
  }

  val raw : factor -> raw
  val nnz : factor -> int
  val solve_vec : factor -> elt array -> elt array
  val solve_transposed_vec : factor -> elt array -> elt array
  val solve_dense : factor -> M.t -> elt array array
end

module Make (K : Scalar.S) = struct
  type elt = K.t

  module M = Csc.Make (K)

  exception Singular of int

  type factor = {
    n : int;
    (* L in pivot coordinates, unit diagonal implicit *)
    l_colptr : int array;
    l_rowind : int array;
    l_values : K.t array;
    (* strictly-upper part of U, plus the diagonal separately *)
    u_colptr : int array;
    u_rowind : int array;
    u_values : K.t array;
    u_diag : K.t array;
    pinv : int array; (* original row -> pivot position *)
    q : int array; (* pivot column k came from original column q.(k) *)
  }

  type buf = { mutable data : (int * K.t) array; mutable len : int }

  let buf_create () = { data = Array.make 16 (0, K.zero); len = 0 }

  let buf_push b v =
    if b.len = Array.length b.data then begin
      let bigger = Array.make (2 * b.len) (0, K.zero) in
      Array.blit b.data 0 bigger 0 b.len;
      b.data <- bigger
    end;
    b.data.(b.len) <- v;
    b.len <- b.len + 1

  (* DFS from [start] over the column graph of L (node i has children = the
     row indices of L's column pinv.(i), when i is already pivotal).  Pushes
     nodes onto [topo] in reverse topological order. *)
  let dfs ~start ~pinv ~l_cols ~(mark : int array) ~stamp ~(topo : int array) ~topo_len
      ~(stack : int array) ~(child_pos : int array) =
    let sp = ref 0 in
    stack.(0) <- start;
    mark.(start) <- stamp;
    child_pos.(start) <- 0;
    let tl = ref topo_len in
    while !sp >= 0 do
      let u = stack.(!sp) in
      let children : buf option = if pinv.(u) >= 0 then Some l_cols.(pinv.(u)) else None in
      let advanced = ref false in
      (match children with
      | None -> ()
      | Some b ->
          let k = ref child_pos.(u) in
          let n = b.len in
          let found = ref (-1) in
          while !found < 0 && !k < n do
            let r, _ = b.data.(!k) in
            incr k;
            if mark.(r) <> stamp then found := r
          done;
          child_pos.(u) <- !k;
          if !found >= 0 then begin
            advanced := true;
            incr sp;
            stack.(!sp) <- !found;
            mark.(!found) <- stamp;
            child_pos.(!found) <- 0
          end);
      if not !advanced then begin
        (* all children visited: emit u *)
        topo.(!tl) <- u;
        incr tl;
        decr sp
      end
    done;
    !tl

  let factorize ?(ordering = Ordering.Natural) (a : M.t) =
    assert (a.M.rows = a.M.cols);
    let n = a.M.rows in
    let q = Ordering.compute ordering a.M.colptr a.M.rowind n in
    let pinv = Array.make n (-1) in
    let l_cols = Array.init n (fun _ -> buf_create ()) in
    let u_cols = Array.init n (fun _ -> buf_create ()) in
    let u_diag = Array.make n K.zero in
    let x = Array.make n K.zero in
    let mark = Array.make n (-1) in
    let topo = Array.make n 0 in
    let stack = Array.make n 0 in
    let child_pos = Array.make n 0 in
    for k = 0 to n - 1 do
      let jcol = q.(k) in
      (* symbolic: union of reaches of the rows of A(:, jcol) *)
      let topo_len = ref 0 in
      for p = a.M.colptr.(jcol) to a.M.colptr.(jcol + 1) - 1 do
        let i = a.M.rowind.(p) in
        if mark.(i) <> k then topo_len := dfs ~start:i ~pinv ~l_cols ~mark ~stamp:k ~topo ~topo_len:!topo_len ~stack ~child_pos
      done;
      let nz = !topo_len in
      (* scatter the numeric column *)
      for t = 0 to nz - 1 do
        x.(topo.(t)) <- K.zero
      done;
      for p = a.M.colptr.(jcol) to a.M.colptr.(jcol + 1) - 1 do
        x.(a.M.rowind.(p)) <- a.M.values.(p)
      done;
      (* numeric sparse triangular solve, in topological order (topo holds
         reverse-topological, so walk backwards) *)
      for t = nz - 1 downto 0 do
        let i = topo.(t) in
        let piv = pinv.(i) in
        if piv >= 0 then begin
          let xi = x.(i) in
          if not (K.is_zero xi) then begin
            let b = l_cols.(piv) in
            for c = 0 to b.len - 1 do
              let r, lv = b.data.(c) in
              x.(r) <- K.sub x.(r) (K.mul lv xi)
            done
          end
        end
      done;
      (* partial pivoting among non-pivotal rows *)
      let pivrow = ref (-1) and pivmag = ref 0.0 in
      for t = 0 to nz - 1 do
        let i = topo.(t) in
        if pinv.(i) < 0 then begin
          let m = K.abs x.(i) in
          if m > !pivmag then begin
            pivmag := m;
            pivrow := i
          end
        end
      done;
      if !pivrow < 0 || !pivmag = 0.0 then raise (Singular k);
      let pivot = x.(!pivrow) in
      pinv.(!pivrow) <- k;
      u_diag.(k) <- pivot;
      (* distribute entries into U (pivotal rows) and L (non-pivotal) *)
      for t = 0 to nz - 1 do
        let i = topo.(t) in
        let piv = pinv.(i) in
        if piv >= 0 && piv < k then buf_push u_cols.(k) (piv, x.(i))
        else if i <> !pivrow then buf_push l_cols.(k) (i, K.div x.(i) pivot)
      done
    done;
    (* finalise: renumber L's rows into pivot coordinates *)
    let count_l = Array.fold_left (fun acc b -> acc + b.len) 0 l_cols in
    let count_u = Array.fold_left (fun acc b -> acc + b.len) 0 u_cols in
    let l_colptr = Array.make (n + 1) 0 in
    let u_colptr = Array.make (n + 1) 0 in
    let l_rowind = Array.make (max 1 count_l) 0 in
    let l_values = Array.make (max 1 count_l) K.zero in
    let u_rowind = Array.make (max 1 count_u) 0 in
    let u_values = Array.make (max 1 count_u) K.zero in
    let lp = ref 0 and up = ref 0 in
    for k = 0 to n - 1 do
      l_colptr.(k) <- !lp;
      let b = l_cols.(k) in
      for c = 0 to b.len - 1 do
        let i, v = b.data.(c) in
        l_rowind.(!lp) <- pinv.(i);
        l_values.(!lp) <- v;
        incr lp
      done;
      u_colptr.(k) <- !up;
      let b = u_cols.(k) in
      (* ascending pivot order within each U column: refactorisation replays
         the eliminations of column k in exactly this storage order, which is
         only a valid (left-looking) schedule when the contributing pivots
         come in increasing order *)
      let col = Array.sub b.data 0 b.len in
      Array.sort (fun (i1, _) (i2, _) -> compare i1 i2) col;
      Array.iter
        (fun (i, v) ->
          u_rowind.(!up) <- i;
          u_values.(!up) <- v;
          incr up)
        col
    done;
    l_colptr.(n) <- !lp;
    u_colptr.(n) <- !up;
    { n; l_colptr; l_rowind; l_values; u_colptr; u_rowind; u_values; u_diag; pinv; q }

  let nnz f = Array.length f.l_rowind + Array.length f.u_rowind + f.n
  let col_ordering f = Array.copy f.q

  type raw = {
    raw_n : int;
    raw_l_colptr : int array;
    raw_l_rowind : int array;
    raw_l_values : elt array;
    raw_u_colptr : int array;
    raw_u_rowind : int array;
    raw_u_values : elt array;
    raw_u_diag : elt array;
    raw_pinv : int array;
    raw_q : int array;
  }

  (* Read-only structural view for specialised kernels (the arrays are
     shared with the factor, not copied — do not mutate them). *)
  let raw f =
    {
      raw_n = f.n;
      raw_l_colptr = f.l_colptr;
      raw_l_rowind = f.l_rowind;
      raw_l_values = f.l_values;
      raw_u_colptr = f.u_colptr;
      raw_u_rowind = f.u_rowind;
      raw_u_values = f.u_values;
      raw_u_diag = f.u_diag;
      raw_pinv = f.pinv;
      raw_q = f.q;
    }

  (* Numeric-only refactorisation: replay the elimination of [tpl] — same
     column ordering, same pivot sequence, same L/U nonzero pattern — on a
     matrix with the identical sparsity structure but new values.  This is
     the per-shift cost of a multi-shift sweep once a template factorisation
     of one (s0 E - A) has paid for the symbolic analysis.

     Correctness: for pivot column k, the template's U rows (stored in
     ascending pivot order) list exactly the pivotal columns j < k whose L
     columns update column k, and the template's L rows give the fill
     pattern of the update target; replaying those updates in ascending j
     order is a valid left-looking schedule.  Entries of [a] outside the
     template pattern would be silently mislocated, so membership is checked
     as each column is scattered.

     Pivots are reused, not re-chosen, so a value change can drive a reused
     pivot towards zero: [Singular k] is raised when |u_kk| fails the
     [pivot_tol]-relative test against the largest entry of the eliminated
     column (exact zeros always fail), and callers fall back to a fresh
     pivoting factorisation. *)
  let refactorize ?(pivot_tol = 0.0) (tpl : factor) (a : M.t) =
    let n = tpl.n in
    if a.M.rows <> n || a.M.cols <> n then invalid_arg "Sparse_lu.refactorize: dimension mismatch";
    let l_values = Array.make (Array.length tpl.l_values) K.zero in
    let u_values = Array.make (Array.length tpl.u_values) K.zero in
    let u_diag = Array.make n K.zero in
    let x = Array.make n K.zero in
    let mark = Array.make n (-1) in
    for k = 0 to n - 1 do
      let jcol = tpl.q.(k) in
      (* clear (and mark) the pattern of pivot column k, then scatter
         A(:, jcol) into pivot coordinates *)
      for p = tpl.u_colptr.(k) to tpl.u_colptr.(k + 1) - 1 do
        x.(tpl.u_rowind.(p)) <- K.zero;
        mark.(tpl.u_rowind.(p)) <- k
      done;
      x.(k) <- K.zero;
      mark.(k) <- k;
      for p = tpl.l_colptr.(k) to tpl.l_colptr.(k + 1) - 1 do
        x.(tpl.l_rowind.(p)) <- K.zero;
        mark.(tpl.l_rowind.(p)) <- k
      done;
      for p = a.M.colptr.(jcol) to a.M.colptr.(jcol + 1) - 1 do
        let i = tpl.pinv.(a.M.rowind.(p)) in
        if mark.(i) <> k then
          invalid_arg "Sparse_lu.refactorize: matrix pattern differs from the template";
        x.(i) <- a.M.values.(p)
      done;
      (* eliminate with the already-computed columns, ascending pivot order *)
      for p = tpl.u_colptr.(k) to tpl.u_colptr.(k + 1) - 1 do
        let j = tpl.u_rowind.(p) in
        let xj = x.(j) in
        u_values.(p) <- xj;
        if not (K.is_zero xj) then
          for lp = tpl.l_colptr.(j) to tpl.l_colptr.(j + 1) - 1 do
            let r = tpl.l_rowind.(lp) in
            x.(r) <- K.sub x.(r) (K.mul l_values.(lp) xj)
          done
      done;
      let pivot = x.(k) in
      let colmax = ref (K.abs pivot) in
      for p = tpl.l_colptr.(k) to tpl.l_colptr.(k + 1) - 1 do
        colmax := Float.max !colmax (K.abs x.(tpl.l_rowind.(p)))
      done;
      if K.abs pivot <= pivot_tol *. !colmax || K.is_zero pivot then raise (Singular k);
      u_diag.(k) <- pivot;
      for p = tpl.l_colptr.(k) to tpl.l_colptr.(k + 1) - 1 do
        l_values.(p) <- K.div x.(tpl.l_rowind.(p)) pivot
      done
    done;
    (* structure arrays are immutable from here on: share them with the
       template instead of copying *)
    { tpl with l_values; u_values; u_diag }

  let solve_vec f b =
    let n = f.n in
    assert (Array.length b = n);
    (* y = P b *)
    let y = Array.make n K.zero in
    for i = 0 to n - 1 do
      y.(f.pinv.(i)) <- b.(i)
    done;
    (* forward: L y' = y, column-oriented, unit diagonal *)
    for k = 0 to n - 1 do
      let yk = y.(k) in
      if not (K.is_zero yk) then
        for p = f.l_colptr.(k) to f.l_colptr.(k + 1) - 1 do
          let r = f.l_rowind.(p) in
          y.(r) <- K.sub y.(r) (K.mul f.l_values.(p) yk)
        done
    done;
    (* backward: U z = y', column-oriented *)
    for k = n - 1 downto 0 do
      y.(k) <- K.div y.(k) f.u_diag.(k);
      let yk = y.(k) in
      if not (K.is_zero yk) then
        for p = f.u_colptr.(k) to f.u_colptr.(k + 1) - 1 do
          let r = f.u_rowind.(p) in
          y.(r) <- K.sub y.(r) (K.mul f.u_values.(p) yk)
        done
    done;
    (* undo the column permutation *)
    let x = Array.make n K.zero in
    for k = 0 to n - 1 do
      x.(f.q.(k)) <- y.(k)
    done;
    x

  (* Solve A^T x = b using the same factorisation: (LU)^T x' = ... *)
  let solve_transposed_vec f b =
    let n = f.n in
    assert (Array.length b = n);
    (* A = P^T L U Q^T  =>  A^T = Q U^T L^T P.  Solve U^T w = Q^T b, then
       L^T z = w, then x = P^T z. *)
    let w = Array.make n K.zero in
    for k = 0 to n - 1 do
      w.(k) <- b.(f.q.(k))
    done;
    (* U^T w' = w: row-oriented over U's columns ascending *)
    for k = 0 to n - 1 do
      let acc = ref w.(k) in
      for p = f.u_colptr.(k) to f.u_colptr.(k + 1) - 1 do
        let r = f.u_rowind.(p) in
        acc := K.sub !acc (K.mul f.u_values.(p) w.(r))
      done;
      w.(k) <- K.div !acc f.u_diag.(k)
    done;
    (* L^T z = w: descending, unit diagonal *)
    for k = n - 1 downto 0 do
      let acc = ref w.(k) in
      for p = f.l_colptr.(k) to f.l_colptr.(k + 1) - 1 do
        let r = f.l_rowind.(p) in
        acc := K.sub !acc (K.mul f.l_values.(p) w.(r))
      done;
      w.(k) <- !acc
    done;
    let x = Array.make n K.zero in
    for i = 0 to n - 1 do
      x.(i) <- w.(f.pinv.(i))
    done;
    x

  let solve_dense f (b : M.t) =
    (* solve for each column of a CSC right-hand side, returning columns *)
    Array.init b.M.cols (fun j ->
        let col = Array.make f.n K.zero in
        M.iter_col b j (fun i v -> col.(i) <- v);
        solve_vec f col)
end

module R = Make (Scalar.Float)
module C = Make (Scalar.Cx)
