(* Householder QR factorisations of dense real matrices.

   [thin a] returns Q (m×n, orthonormal columns) and R (n×n upper triangular)
   with a = Q R, for m >= n; it runs on the panel-blocked factorisation in
   [Par_kernel], which is bitwise-identical to the classic unblocked sweep
   (kept here as [thin_reference]) for any worker count.  [factorize]
   exposes the packed reflectors directly: [apply_q]/[apply_qt] multiply by
   Q or Q^T without ever materialising the m×n factor, which is cheaper
   whenever the product is consumed once.  [orth] drops columns whose R
   diagonal is negligible, returning an orthonormal basis of the column
   space.  [pivoted] is the rank-revealing column-pivoted variant used for
   cheap rank estimates (RRQR in the paper's Section V-C discussion); its
   elimination is inherently sequential (each pivot choice depends on the
   previous downdates), so it stays serial — it also serves as the dense
   baseline the variant benchmarks gate against.  [pivoted_factor] runs
   the same elimination but returns the packed factor, for callers that
   only ever apply Q. *)

type pivoted = { q : Mat.t; r : Mat.t; jpvt : int array; rank : int }
type packed = Par_kernel.qr

(* In-place Householder on a copy; returns packed reflectors + R.  The
   unblocked serial reference the blocked [Par_kernel.qr_factor] is
   property-tested against. *)
let householder_factor (a : Mat.t) =
  let m = a.Mat.rows and n = a.Mat.cols in
  let w = Mat.copy a in
  let betas = Array.make (min m n) 0.0 in
  for k = 0 to min m n - 1 do
    (* Build the reflector annihilating w.(k+1..m-1, k). *)
    let normx = ref 0.0 in
    for i = k to m - 1 do
      let v = Mat.get w i k in
      normx := !normx +. (v *. v)
    done;
    let normx = sqrt !normx in
    if normx > 0.0 then begin
      let alpha = if Mat.get w k k >= 0.0 then -.normx else normx in
      let v0 = Mat.get w k k -. alpha in
      (* v = [v0; w(k+1..,k)], beta = 2/(v^T v) *)
      let vtv = ref (v0 *. v0) in
      for i = k + 1 to m - 1 do
        let v = Mat.get w i k in
        vtv := !vtv +. (v *. v)
      done;
      let beta = if !vtv = 0.0 then 0.0 else 2.0 /. !vtv in
      betas.(k) <- beta;
      (* Apply to trailing columns: w_j -= beta * v * (v^T w_j). *)
      for j = k + 1 to n - 1 do
        let dot = ref (v0 *. Mat.get w k j) in
        for i = k + 1 to m - 1 do
          dot := !dot +. (Mat.get w i k *. Mat.get w i j)
        done;
        let s = beta *. !dot in
        Mat.set w k j (Mat.get w k j -. (s *. v0));
        for i = k + 1 to m - 1 do
          Mat.set w i j (Mat.get w i j -. (s *. Mat.get w i k))
        done
      done;
      (* Store reflector below diagonal (v0 overwrites diag slot later). *)
      Mat.set w k k alpha;
      if v0 <> 0.0 then
        for i = k + 1 to m - 1 do
          Mat.set w i k (Mat.get w i k /. v0)
        done;
      (* Rescale beta for the normalised reflector v' = v / v0:
         beta' = beta * v0^2. *)
      betas.(k) <- beta *. v0 *. v0
    end
  done;
  (w, betas)

(* Form the thin Q (m×n) by applying reflectors to the first n columns of I. *)
let form_thin_q w betas n =
  let m = w.Mat.rows in
  let q = Mat.init m n (fun i j -> if i = j then 1.0 else 0.0) in
  for k = min m n - 1 downto 0 do
    let beta = betas.(k) in
    if beta <> 0.0 then
      for j = 0 to n - 1 do
        (* v = [1; w(k+1..,k)] *)
        let dot = ref (Mat.get q k j) in
        for i = k + 1 to m - 1 do
          dot := !dot +. (Mat.get w i k *. Mat.get q i j)
        done;
        let s = beta *. !dot in
        Mat.set q k j (Mat.get q k j -. s);
        for i = k + 1 to m - 1 do
          Mat.set q i j (Mat.get q i j -. (s *. Mat.get w i k))
        done
      done
  done;
  q

let thin_reference (a : Mat.t) =
  let m = a.Mat.rows and n = a.Mat.cols in
  assert (m >= n);
  let w, betas = householder_factor a in
  let r = Mat.init n n (fun i j -> if i <= j then Mat.get w i j else 0.0) in
  let q = form_thin_q w betas n in
  (q, r)

(* ------------------------------------------------------------------ *)
(* Packed-factor interface (blocked kernels)                           *)
(* ------------------------------------------------------------------ *)

let factorize ?workers a = Par_kernel.qr_factor ?workers a
let r_factor (f : packed) = Par_kernel.qr_r f
let thin_q ?workers ?cols (f : packed) = Par_kernel.qr_thin_q ?workers ?cols f
let apply_q ?workers (f : packed) x = Par_kernel.qr_apply_q ?workers f x
let apply_qt ?workers (f : packed) x = Par_kernel.qr_apply_qt ?workers f x
let apply_qt_vec (f : packed) x = Par_kernel.qr_apply_qt_vec f x

let thin ?workers (a : Mat.t) =
  let m = a.Mat.rows and n = a.Mat.cols in
  assert (m >= n);
  let f = factorize ?workers a in
  (thin_q ?workers f, r_factor f)

(* ------------------------------------------------------------------ *)
(* Column-pivoted (rank-revealing) elimination                         *)
(* ------------------------------------------------------------------ *)

(* Shared elimination core: packed reflectors of the permuted matrix, the
   permutation, and the detected rank. *)
let pivoted_elim ~tol (a : Mat.t) =
  let m = a.Mat.rows and n = a.Mat.cols in
  let w = Mat.copy a in
  let jpvt = Array.init n (fun j -> j) in
  let colnorm = Array.init n (fun j -> Vec.dot (Mat.col w j) (Mat.col w j)) in
  let swap_cols j1 j2 =
    if j1 <> j2 then begin
      for i = 0 to m - 1 do
        let t = Mat.get w i j1 in
        Mat.set w i j1 (Mat.get w i j2);
        Mat.set w i j2 t
      done;
      let t = jpvt.(j1) in
      jpvt.(j1) <- jpvt.(j2);
      jpvt.(j2) <- t;
      let t = colnorm.(j1) in
      colnorm.(j1) <- colnorm.(j2);
      colnorm.(j2) <- t
    end
  in
  let kmax = min m n in
  let betas = Array.make kmax 0.0 in
  let rank = ref 0 in
  (* rank threshold is relative to the largest original column *)
  let norm_scale =
    let biggest = Array.fold_left Float.max 0.0 colnorm in
    Float.max 1e-300 (sqrt biggest)
  in
  (try
     for k = 0 to kmax - 1 do
       (* pick the remaining column of largest norm *)
       let jbest = ref k in
       for j = k + 1 to n - 1 do
         if colnorm.(j) > colnorm.(!jbest) then jbest := j
       done;
       swap_cols k !jbest;
       let normx = ref 0.0 in
       for i = k to m - 1 do
         let v = Mat.get w i k in
         normx := !normx +. (v *. v)
       done;
       let normx = sqrt !normx in
       if normx <= tol *. norm_scale then raise Exit;
       incr rank;
       let alpha = if Mat.get w k k >= 0.0 then -.normx else normx in
       let v0 = Mat.get w k k -. alpha in
       let vtv = ref (v0 *. v0) in
       for i = k + 1 to m - 1 do
         let v = Mat.get w i k in
         vtv := !vtv +. (v *. v)
       done;
       let beta = if !vtv = 0.0 then 0.0 else 2.0 /. !vtv in
       for j = k + 1 to n - 1 do
         let dot = ref (v0 *. Mat.get w k j) in
         for i = k + 1 to m - 1 do
           dot := !dot +. (Mat.get w i k *. Mat.get w i j)
         done;
         let s = beta *. !dot in
         Mat.set w k j (Mat.get w k j -. (s *. v0));
         for i = k + 1 to m - 1 do
           Mat.set w i j (Mat.get w i j -. (s *. Mat.get w i k))
         done
       done;
       Mat.set w k k alpha;
       if v0 <> 0.0 then
         for i = k + 1 to m - 1 do
           Mat.set w i k (Mat.get w i k /. v0)
         done;
       betas.(k) <- beta *. v0 *. v0;
       (* downdate column norms *)
       for j = k + 1 to n - 1 do
         let v = Mat.get w k j in
         colnorm.(j) <- Float.max 0.0 (colnorm.(j) -. (v *. v))
       done
     done
   with Exit -> ());
  (w, betas, jpvt, !rank)

let pivoted ?(tol = 1e-12) (a : Mat.t) =
  let m = a.Mat.rows and n = a.Mat.cols in
  let w, betas, jpvt, rank = pivoted_elim ~tol a in
  let kmax = min m n in
  let r = Mat.init n n (fun i j -> if i <= j && i < kmax then Mat.get w i j else 0.0) in
  let q = form_thin_q w betas kmax in
  { q; r; jpvt; rank }

let pivoted_factor ?(tol = 1e-12) (a : Mat.t) =
  let w, betas, jpvt, rank = pivoted_elim ~tol a in
  ({ Par_kernel.wf = w; betas }, jpvt, rank)

(* Orthonormal basis of the column space via column-pivoted QR; handles
   rank-deficient and wide matrices.  A numerically zero input yields a
   basis with zero columns.  Only the [rank] retained columns of Q are
   ever formed — each is the same backward reflector accumulation the
   full [pivoted] would produce, bit for bit. *)
let orth ?(tol = 1e-12) ?workers (a : Mat.t) =
  let f, _, rank = pivoted_factor ~tol a in
  Par_kernel.qr_thin_q ?workers ~cols:(min rank (min a.Mat.rows a.Mat.cols)) f
