(* Thin singular value decomposition of dense real matrices by one-sided
   Jacobi rotations (Hestenes).  Chosen for robustness and simplicity: it
   computes small singular values to high relative accuracy, which matters
   here because PMTBR order control reads 10-15 decades of singular value
   decay (paper Fig. 5).

   The working matrix lives as one unboxed float array per column: every
   Jacobi rotation touches exactly two columns, so the column layout turns
   the inner loops into contiguous unsafe array walks.

   Two rotation orders are implemented:

   - the serial cyclic sweep ([decompose_cyclic] / [values_cyclic]), kept
     as the reference implementation;

   - the round-robin (tournament) schedule in [Par_kernel.jacobi_rounds],
     whose rounds rotate disjoint column pairs and therefore parallelise
     with bitwise worker-invariance.  [decompose] / [values] run on it.
     The two orders apply the identical rotation arithmetic to the same
     pairs, only in a different sequence, so their singular values agree
     to the sweep threshold's relative accuracy (tests pin 1e-12).

   On very tall blocks — the PMTBR sample shape, n states x tens-to-
   hundreds of columns — [decompose]/[values] first shrink the problem
   with a blocked QR and run the rotations on the small triangular factor
   (the xGESVJ-style QR preconditioning step): sweeps then cost O(c^3)
   instead of O(n c^2), which is where most of the reduction-stage
   speedup over the cyclic reference comes from.  The preconditioning
   only engages when rows > 2 * cols; moderately tall blocks keep the
   direct rotations and their full high relative accuracy.

   [decompose a] returns (u, sigma, v) with a = u * diag(sigma) * v^T,
   u : m×r, v : n×r orthonormal columns, sigma descending, r = min m n. *)

type t = { u : Mat.t; sigma : float array; v : Mat.t }

let max_sweeps = 60

(* One cyclic-Jacobi run over columns [w] (each length [m]), optionally
   accumulating the right-hand rotations into [v] (each length [n]).
   Rotations stop when every column pair is orthogonal to [threshold]
   relative accuracy; Hestenes' method then has each singular value to
   roughly that same *relative* accuracy, large and tiny alike. *)
let jacobi_core ~threshold ~(w : float array array) ~(v : float array array option) m n =
  let converged = ref false in
  let sweeps = ref 0 in
  while (not !converged) && !sweeps < max_sweeps do
    incr sweeps;
    converged := true;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let wp = w.(p) and wq = w.(q) in
        (* alpha = w_p . w_p, beta = w_q . w_q, gamma = w_p . w_q *)
        let alpha = ref 0.0 and beta = ref 0.0 and gamma = ref 0.0 in
        for i = 0 to m - 1 do
          let a = Array.unsafe_get wp i and b = Array.unsafe_get wq i in
          alpha := !alpha +. (a *. a);
          beta := !beta +. (b *. b);
          gamma := !gamma +. (a *. b)
        done;
        let alpha = !alpha and beta = !beta and gamma = !gamma in
        if Float.abs gamma > threshold *. sqrt (alpha *. beta) && gamma <> 0.0 then begin
          converged := false;
          let zeta = (beta -. alpha) /. (2.0 *. gamma) in
          let t =
            (* tan of the rotation angle, the root of smaller magnitude *)
            let s = if zeta >= 0.0 then 1.0 else -1.0 in
            s /. (Float.abs zeta +. sqrt (1.0 +. (zeta *. zeta)))
          in
          let c = 1.0 /. sqrt (1.0 +. (t *. t)) in
          let s = c *. t in
          for i = 0 to m - 1 do
            let a = Array.unsafe_get wp i and b = Array.unsafe_get wq i in
            Array.unsafe_set wp i ((c *. a) -. (s *. b));
            Array.unsafe_set wq i ((s *. a) +. (c *. b))
          done;
          match v with
          | None -> ()
          | Some v ->
              let vp = v.(p) and vq = v.(q) in
              for i = 0 to n - 1 do
                let a = Array.unsafe_get vp i and b = Array.unsafe_get vq i in
                Array.unsafe_set vp i ((c *. a) -. (s *. b));
                Array.unsafe_set vq i ((s *. a) +. (c *. b))
              done
        end
      done
    done
  done

let columns_of (a : Mat.t) = Array.init a.Mat.cols (fun j -> Mat.col a j)
let identity_cols n = Array.init n (fun j -> Array.init n (fun i -> if i = j then 1.0 else 0.0))

(* Descending order of the column norms. *)
let sort_order (sigma : float array) =
  let order = Array.init (Array.length sigma) (fun j -> j) in
  Array.sort (fun i j -> compare sigma.(j) sigma.(i)) order;
  order

(* Sort the rotated columns by norm and assemble the factors: sigma are
   the column norms of [w], U their normalisations, V the accumulated
   rotations.  Shared by the cyclic and round-robin paths. *)
let assemble ~(w : float array array) ~(v : float array array) m n =
  let sigma = Array.map Vec.norm2 w in
  let order = sort_order sigma in
  let s_sorted = Array.map (fun j -> sigma.(j)) order in
  let u = Mat.create m n in
  let vs = Mat.create n n in
  Array.iteri
    (fun jnew jold ->
      let s = sigma.(jold) in
      let colw = w.(jold) in
      let ucol = if s > 0.0 then Vec.scale (1.0 /. s) colw else colw in
      Mat.set_col u jnew ucol;
      Mat.set_col vs jnew v.(jold))
    order;
  { u; sigma = s_sorted; v = vs }

(* Core routine for m >= n, serial cyclic order. *)
let jacobi_tall (a : Mat.t) =
  let m = a.Mat.rows and n = a.Mat.cols in
  let w = columns_of a in
  let v = identity_cols n in
  jacobi_core ~threshold:1e-15 ~w ~v:(Some v) m n;
  assemble ~w ~v m n

let decompose_cyclic (a : Mat.t) =
  if a.Mat.rows >= a.Mat.cols then jacobi_tall a
  else begin
    let { u; sigma; v } = jacobi_tall (Mat.transpose a) in
    { u = v; sigma; v = u }
  end

let values_cyclic ?(threshold = 1e-15) (a : Mat.t) =
  let a = if a.Mat.rows >= a.Mat.cols then a else Mat.transpose a in
  let m = a.Mat.rows and n = a.Mat.cols in
  let w = columns_of a in
  jacobi_core ~threshold ~w ~v:None m n;
  let sigma = Array.map Vec.norm2 w in
  let order = sort_order sigma in
  Array.map (fun j -> sigma.(j)) order

(* ------------------------------------------------------------------ *)
(* Round-robin path with tall-block QR preconditioning                 *)
(* ------------------------------------------------------------------ *)

(* QR preconditioning is backward stable at eps * sigma_max, which is
   plenty for order control but would cost the tiniest values their
   relative accuracy; only clearly tall blocks — where the O(n c^2)
   sweeps dominate and the flop savings are real — take the shortcut. *)
let preconditionable m n = n > 0 && m > 2 * n

(* Core routine for m >= n, round-robin order. *)
let jacobi_tall_par ?workers (a : Mat.t) =
  let m = a.Mat.rows and n = a.Mat.cols in
  if preconditionable m n then begin
    let f = Par_kernel.qr_factor ?workers a in
    let w = columns_of (Par_kernel.qr_r f) in
    let v = identity_cols n in
    Par_kernel.jacobi_rounds ?workers ~v ~threshold:1e-15 ~max_sweeps ~rows:n w;
    let small = assemble ~w ~v n n in
    (* lift the n x n left factor back to state dimension: U = Q U_r *)
    { small with u = Par_kernel.qr_apply_q ?workers f small.u }
  end
  else begin
    let w = columns_of a in
    let v = identity_cols n in
    Par_kernel.jacobi_rounds ?workers ~v ~threshold:1e-15 ~max_sweeps ~rows:m w;
    assemble ~w ~v m n
  end

let decompose ?workers (a : Mat.t) =
  if a.Mat.rows >= a.Mat.cols then jacobi_tall_par ?workers a
  else begin
    let { u; sigma; v } = jacobi_tall_par ?workers (Mat.transpose a) in
    { u = v; sigma; v = u }
  end

(* Singular values only: same schedule on the same columns, but the
   right-hand rotations are never accumulated and no U/V is assembled —
   the working columns evolve identically, so the values match
   [decompose]'s bit for bit at the default threshold.  A looser
   [threshold] trades (relative) accuracy for fewer sweeps; adaptive
   order-control monitors use that, final decompositions must not. *)
let values ?workers ?(threshold = 1e-15) (a : Mat.t) =
  let a = if a.Mat.rows >= a.Mat.cols then a else Mat.transpose a in
  let m = a.Mat.rows and n = a.Mat.cols in
  let w, rows =
    if preconditionable m n then
      (columns_of (Par_kernel.qr_r (Par_kernel.qr_factor ?workers a)), n)
    else (columns_of a, m)
  in
  Par_kernel.jacobi_rounds ?workers ~threshold ~max_sweeps ~rows w;
  let sigma = Array.map Vec.norm2 w in
  let order = sort_order sigma in
  Array.map (fun j -> sigma.(j)) order

(* Numerical rank at relative tolerance [tol]. *)
let rank ?(tol = 1e-12) ?workers a =
  let s = values ?workers a in
  if Array.length s = 0 || s.(0) = 0.0 then 0
  else begin
    let r = ref 0 in
    Array.iter (fun si -> if si > tol *. s.(0) then incr r) s;
    !r
  end

(* Leading [k] left singular vectors. *)
let left_vectors t k = Mat.sub_cols t.u 0 k
