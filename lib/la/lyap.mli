(** Lyapunov and Sylvester matrix equations via the (complex) Schur form
    (Bartels-Stewart).

    The decomposition of [A] is a first-class value so that sweeps solving
    many equations with the same [A] and different right-hand sides (the
    paper's Fig. 3 varies only [B]) factor [A] once. *)

exception Unstable_pencil
(** Raised when an eigenvalue pairing [lambda_i + lambda_j] is numerically
    zero: the equation has no (unique) solution, e.g. for a marginally
    stable [A]. *)

type factor
(** A reusable spectral factorisation of [A]: a symmetric eigendecomposition
    when [A] is symmetric, a complex Schur form otherwise. *)

val factor : Mat.t -> factor
(** Factor [A], automatically using the fast symmetric path when [A] is
    symmetric. *)

val factor_general : Mat.t -> factor
(** Force the general (Schur) path, needed for {!solve_cross_with} when the
    cross equation will be solved with a right-hand side that is not
    symmetric. *)

val solve_with : factor -> Mat.t -> Mat.t
(** [solve_with f q] solves [A X + X A^T + Q = 0] for symmetric [Q] and
    returns the symmetric solution [X]. *)

val solve : Mat.t -> Mat.t -> Mat.t
(** [solve a q] is [solve_with (factor a) q]. *)

val gramian_with : factor -> Mat.t -> Mat.t
(** [gramian_with f b] solves [A X + X A^T + B B^T = 0]. *)

val solve_cross_with : factor -> Mat.t -> Mat.t
(** [solve_cross_with f q] solves the cross-Gramian Sylvester equation
    [A X + X A + Q = 0] (paper Section V-D); the solution is generally not
    symmetric. *)

val solve_cross : Mat.t -> Mat.t -> Mat.t
(** One-shot variant of {!solve_cross_with}. *)

val lyapunov_residual : Mat.t -> Mat.t -> Mat.t -> float
(** Frobenius norm of [A X + X A^T + Q]; used by the tests. *)

val descriptor_residual : e:Mat.t -> a:Mat.t -> Mat.t -> Mat.t -> float
(** [descriptor_residual ~e ~a x q] is the Frobenius norm of the
    generalised residual [A X E^T + E X A^T + Q] — what the low-rank
    Gramian solvers drive to zero. *)

val sylvester_cross_residual : Mat.t -> Mat.t -> Mat.t -> float
(** Frobenius norm of [A X + X A + Q]. *)
