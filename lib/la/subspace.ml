(* Principal angles between column subspaces (Bjorck-Golub): the cosines are
   the singular values of Q1^T Q2 for orthonormal bases Q1, Q2.  Used to
   measure convergence of PMTBR projection subspaces to the exact dominant
   eigenspaces (paper Fig. 6).

   Only one of the two bases is ever materialised: the other stays a packed
   Householder factor ([Qr.pivoted_factor]) and the cross product Q1^T Q2
   comes from [Qr.apply_qt] on the reflectors — multiplying by Q^T once is
   cheaper than forming the thin Q just to transpose-multiply it away. *)

let clamp x = Float.min 1.0 (Float.max (-1.0) x)

(* Principal angles (radians, ascending) between col spaces of a and b. *)
let principal_angles (a : Mat.t) (b : Mat.t) =
  let fa, _, rank_a = Qr.pivoted_factor a in
  let qb = Qr.orth b in
  let rank_b = qb.Mat.cols in
  (* rows 0 .. rank_a - 1 of Q_a^T Q_b, without forming Q_a *)
  let m = Mat.sub_matrix (Qr.apply_qt fa qb) ~row:0 ~col:0 ~rows:rank_a ~cols:rank_b in
  let s = Svd.values m in
  let k = min (Array.length s) (min m.Mat.rows rank_b) in
  Array.init k (fun i -> Float.acos (clamp s.(i)))

(* Largest principal angle: 0 when one space contains the other. *)
let max_angle a b =
  let angles = principal_angles a b in
  Array.fold_left Float.max 0.0 angles

(* Angle between a single vector and a subspace: the angle between the
   vector and its orthogonal projection onto the subspace.  The projection
   coefficients are the leading [rank] entries of Q^T x on the packed
   factor — no thin Q is ever formed. *)
let vector_to_subspace_angle (x : float array) (basis : Mat.t) =
  let f, _, rank = Qr.pivoted_factor basis in
  let xn = Vec.normalize x in
  let coeffs = Array.sub (Qr.apply_qt_vec f xn) 0 rank in
  let proj_norm = Vec.norm2 coeffs in
  Float.acos (clamp proj_norm)
