(* Domain-parallel, cache-blocked dense kernels for the reduction stage.
   See the interface for the determinism contract; the short version is
   that every kernel here decomposes its iteration space into tiles that
   depend only on the operand shapes, each output slot is owned by exactly
   one task, and per-slot accumulation replays the serial order — so the
   results are bitwise-identical for any worker count, and [mul]/[gram]/
   [mv] are bitwise-identical to the naive [Mat] kernels they replace on
   the hot path. *)

let installed_workers : int option ref = ref None

let default_workers () =
  match !installed_workers with
  | Some w -> w
  | None -> Domain.recommended_domain_count ()

(* A requested multi-worker pool that silently runs on one domain is how
   benchmark numbers lie (every BENCH_* reporting actual_workers: 1 on a
   one-core host).  Two distinct failure shapes: the pool collapses to one
   domain at creation (host caps it), or the pool exists but the queue
   drains onto a single worker (jobs too coarse / submitted serially).
   Warn once per process per kind, on stderr, without changing any
   result. *)
let creation_warned = Atomic.make false
let serialized_warned = Atomic.make false

let warn_worker_collapse ?(kind = `Creation) ~context ~requested () =
  match kind with
  | `Creation ->
      if requested > 1 && not (Atomic.exchange creation_warned true) then
        Printf.eprintf
          "pmtbr: warning: %s requested %d workers but this host recommends only %d domain(s); \
           the pool collapses to 1 and timings are effectively serial (results are unchanged)\n%!"
          context requested
          (Domain.recommended_domain_count ())
  | `Serialized ->
      if requested > 1 && not (Atomic.exchange serialized_warned true) then
        Printf.eprintf
          "pmtbr: warning: %s spawned %d workers but every job drained onto one domain; \
           the queue serialized and timings are effectively serial (results are unchanged)\n%!"
          context requested

let set_default_workers w =
  (match w with
  | Some r when r > 1 && Domain.recommended_domain_count () = 1 ->
      warn_worker_collapse ~context:"the dense-kernel pool" ~requested:r ()
  | Some _ | None -> ());
  installed_workers := w

(* Minimum scalar-op count before a kernel spawns domains at all: below
   this the spawn/join overhead dwarfs the loop.  A shape-only cutover —
   never a measurement — so it cannot break worker-invariance. *)
let grain = 1 lsl 16

let parallel_ranges ?workers ~work n f =
  if n > 0 then begin
    let requested = match workers with Some w -> w | None -> default_workers () in
    let nw = min (max 1 requested) n in
    if nw <= 1 || work < grain then f 0 n
    else begin
      (* contiguous chunks: the first [n mod nw] get one extra element *)
      let base = n / nw and rem = n mod nw in
      let bound t = (t * base) + min t rem in
      let doms =
        Array.init (nw - 1) (fun t ->
            let t = t + 1 in
            Domain.spawn (fun () -> f (bound t) (bound (t + 1))))
      in
      f (bound 0) (bound 1);
      Array.iter Domain.join doms
    end
  end

(* ------------------------------------------------------------------ *)
(* Level-1/2/3 kernels                                                 *)
(* ------------------------------------------------------------------ *)

let dot_block = 4096

let dot (x : float array) (y : float array) =
  assert (Array.length x = Array.length y);
  let n = Array.length x in
  if n <= dot_block then begin
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (Array.unsafe_get x i *. Array.unsafe_get y i)
    done;
    !acc
  end
  else begin
    let total = ref 0.0 in
    let lo = ref 0 in
    while !lo < n do
      let hi = min n (!lo + dot_block) in
      let acc = ref 0.0 in
      for i = !lo to hi - 1 do
        acc := !acc +. (Array.unsafe_get x i *. Array.unsafe_get y i)
      done;
      total := !total +. !acc;
      lo := hi
    done;
    !total
  end

let mul ?workers (a : Mat.t) (b : Mat.t) =
  assert (a.Mat.cols = b.Mat.rows);
  let c = Mat.create a.Mat.rows b.Mat.cols in
  let n = b.Mat.cols and kc = a.Mat.cols in
  let ad = a.Mat.data and bd = b.Mat.data and cd = c.Mat.data in
  parallel_ranges ?workers ~work:(2 * a.Mat.rows * kc * n) a.Mat.rows (fun lo hi ->
      (* the exact ikj loop of [Mat.mul], restricted to a row panel *)
      for i = lo to hi - 1 do
        for k = 0 to kc - 1 do
          let aik = ad.((i * kc) + k) in
          if aik <> 0.0 then begin
            let brow = k * n and crow = i * n in
            for j = 0 to n - 1 do
              cd.(crow + j) <- cd.(crow + j) +. (aik *. bd.(brow + j))
            done
          end
        done
      done);
  c

let gram ?workers (m : Mat.t) =
  let rows = m.Mat.rows and cols = m.Mat.cols in
  let g = Mat.create cols cols in
  let md = m.Mat.data and gd = g.Mat.data in
  parallel_ranges ?workers ~work:(rows * cols * cols) cols (fun lo hi ->
      (* [Mat.gram]'s k-outer sweep restricted to output rows [lo, hi):
         every g(i, j) still accumulates over k in ascending order *)
      for k = 0 to rows - 1 do
        let base = k * cols in
        for i = lo to hi - 1 do
          let aki = md.(base + i) in
          if aki <> 0.0 then begin
            let grow = i * cols in
            for j = i to cols - 1 do
              gd.(grow + j) <- gd.(grow + j) +. (aki *. md.(base + j))
            done
          end
        done
      done);
  for i = 0 to cols - 1 do
    for j = 0 to i - 1 do
      Mat.set g i j (Mat.get g j i)
    done
  done;
  g

let mv ?workers (m : Mat.t) (x : float array) =
  assert (Array.length x = m.Mat.cols);
  let rows = m.Mat.rows and cols = m.Mat.cols in
  let y = Array.make rows 0.0 in
  let md = m.Mat.data in
  parallel_ranges ?workers ~work:(2 * rows * cols) rows (fun lo hi ->
      for i = lo to hi - 1 do
        let base = i * cols in
        let acc = ref 0.0 in
        for j = 0 to cols - 1 do
          acc := !acc +. (md.(base + j) *. x.(j))
        done;
        y.(i) <- !acc
      done);
  y

(* ------------------------------------------------------------------ *)
(* Blocked Householder QR                                              *)
(* ------------------------------------------------------------------ *)

type qr = { wf : Mat.t; betas : float array }

let panel_width = 32

(* The QR kernels work on column-major scratch (one contiguous float
   array per column) rather than on the row-major [Mat] directly: every
   reflector dot/axpy then streams sequential memory with direct
   (monomorphic, allocation-free) array access, instead of strided
   bounds-checked [Mat.get] calls through the [Gen_mat] functor — which
   both cost a call per element and box every float they return, and the
   resulting allocation pressure forces constant minor-GC synchronisation
   across worker domains.  The arithmetic sequence per element is
   unchanged, so results stay bitwise-identical to the row-major code. *)
let cols_of_mat (a : Mat.t) =
  let m = a.Mat.rows and n = a.Mat.cols in
  let data = a.Mat.data in
  Array.init n (fun j ->
      let c = Array.make m 0.0 in
      for i = 0 to m - 1 do
        Array.unsafe_set c i (Array.unsafe_get data ((i * n) + j))
      done;
      c)

let mat_of_cols m n (cols : float array array) =
  let out = Mat.create m n in
  let data = out.Mat.data in
  for j = 0 to n - 1 do
    let c = cols.(j) in
    for i = 0 to m - 1 do
      Array.unsafe_set data ((i * n) + j) (Array.unsafe_get c i)
    done
  done;
  out

(* Apply the *raw* (unnormalised) reflector of column [k] — v = [v0;
   colk(k+1..)] with scaling [beta] = 2/(v^T v) — to column [colj].
   This is verbatim the trailing-update arithmetic of the unblocked
   sweep, so a column that receives its reflectors one by one through
   this function ends up bitwise-identical to the unblocked
   factorisation. *)
let apply_raw ~m ~k ~v0 ~beta (colk : float array) (colj : float array) =
  let dot = ref (v0 *. Array.unsafe_get colj k) in
  for i = k + 1 to m - 1 do
    dot := !dot +. (Array.unsafe_get colk i *. Array.unsafe_get colj i)
  done;
  let s = beta *. !dot in
  Array.unsafe_set colj k (Array.unsafe_get colj k -. (s *. v0));
  for i = k + 1 to m - 1 do
    Array.unsafe_set colj i (Array.unsafe_get colj i -. (s *. Array.unsafe_get colk i))
  done

let qr_factor ?workers (a : Mat.t) =
  let m = a.Mat.rows and n = a.Mat.cols in
  let w = cols_of_mat a in
  let kmax = min m n in
  let betas = Array.make kmax 0.0 in
  let k0 = ref 0 in
  while !k0 < kmax do
    let k1 = min kmax (!k0 + panel_width) in
    let width = k1 - !k0 in
    (* per panel column: raw v0, raw beta, and whether a reflector exists *)
    let v0s = Array.make width 0.0 in
    let raw_betas = Array.make width 0.0 in
    let active = Array.make width false in
    for k = !k0 to k1 - 1 do
      let kk = k - !k0 in
      let colk = w.(k) in
      let normx = ref 0.0 in
      for i = k to m - 1 do
        let v = Array.unsafe_get colk i in
        normx := !normx +. (v *. v)
      done;
      let normx = sqrt !normx in
      if normx > 0.0 then begin
        let alpha = if colk.(k) >= 0.0 then -.normx else normx in
        let v0 = colk.(k) -. alpha in
        let vtv = ref (v0 *. v0) in
        for i = k + 1 to m - 1 do
          let v = Array.unsafe_get colk i in
          vtv := !vtv +. (v *. v)
        done;
        let beta = if !vtv = 0.0 then 0.0 else 2.0 /. !vtv in
        v0s.(kk) <- v0;
        raw_betas.(kk) <- beta;
        active.(kk) <- true;
        (* immediate update of the rest of the panel, so the next panel
           column is current when its reflector is built *)
        for j = k + 1 to k1 - 1 do
          apply_raw ~m ~k ~v0 ~beta colk w.(j)
        done;
        colk.(k) <- alpha
      end
    done;
    (* deferred update of the trailing columns: each column receives the
       panel's reflectors in ascending k — the same per-column operation
       sequence as the unblocked sweep — and columns are independent, so
       the panels parallelise with bitwise invariance *)
    if k1 < n then begin
      let ntrail = n - k1 in
      parallel_ranges ?workers
        ~work:(4 * width * (m - !k0) * ntrail)
        ntrail
        (fun lo hi ->
          for jj = lo to hi - 1 do
            let colj = w.(k1 + jj) in
            for k = !k0 to k1 - 1 do
              let kk = k - !k0 in
              if active.(kk) then
                apply_raw ~m ~k ~v0:(v0s.(kk)) ~beta:(raw_betas.(kk)) w.(k) colj
            done
          done)
    end;
    (* normalise the panel reflectors (v' = v / v0) and rescale betas,
       exactly as the unblocked sweep does after its trailing update *)
    for k = !k0 to k1 - 1 do
      let kk = k - !k0 in
      if active.(kk) then begin
        let v0 = v0s.(kk) in
        let colk = w.(k) in
        if v0 <> 0.0 then
          for i = k + 1 to m - 1 do
            Array.unsafe_set colk i (Array.unsafe_get colk i /. v0)
          done;
        betas.(k) <- raw_betas.(kk) *. v0 *. v0
      end
    done;
    k0 := k1
  done;
  { wf = mat_of_cols m n w; betas }

let qr_r { wf; _ } =
  let kmax = min wf.Mat.rows wf.Mat.cols in
  Mat.init kmax wf.Mat.cols (fun i j -> if i <= j then Mat.get wf i j else 0.0)

(* Apply the *normalised* packed reflector [k] — v = [1; wcol(k+1..)] —
   to the contiguous column [y]; verbatim the arithmetic of the classic
   [form_thin_q] body. *)
let apply_packed ~m ~k ~beta (wcol : float array) (y : float array) =
  if beta <> 0.0 then begin
    let dot = ref (Array.unsafe_get y k) in
    for i = k + 1 to m - 1 do
      dot := !dot +. (Array.unsafe_get wcol i *. Array.unsafe_get y i)
    done;
    let s = beta *. !dot in
    Array.unsafe_set y k (Array.unsafe_get y k -. s);
    for i = k + 1 to m - 1 do
      Array.unsafe_set y i (Array.unsafe_get y i -. (s *. Array.unsafe_get wcol i))
    done
  end

let qr_thin_q ?workers ?cols { wf; betas } =
  let m = wf.Mat.rows in
  let kmax = min m wf.Mat.cols in
  let n = match cols with Some c -> c | None -> kmax in
  assert (n >= 0 && n <= m);
  let wcols = cols_of_mat wf in
  let q =
    Array.init n (fun j ->
        let c = Array.make m 0.0 in
        c.(j) <- 1.0;
        c)
  in
  parallel_ranges ?workers ~work:(2 * n * kmax * m) n (fun lo hi ->
      for j = lo to hi - 1 do
        let y = q.(j) in
        for k = kmax - 1 downto 0 do
          apply_packed ~m ~k ~beta:(betas.(k)) wcols.(k) y
        done
      done);
  mat_of_cols m n q

let qr_apply_q ?workers { wf; betas } (x : Mat.t) =
  let m = wf.Mat.rows in
  let kmax = min m wf.Mat.cols in
  assert (x.Mat.rows = m || x.Mat.rows = kmax);
  let p = x.Mat.cols in
  let wcols = cols_of_mat wf in
  let xd = x.Mat.data in
  let y =
    Array.init p (fun j ->
        let c = Array.make m 0.0 in
        for i = 0 to x.Mat.rows - 1 do
          Array.unsafe_set c i (Array.unsafe_get xd ((i * p) + j))
        done;
        c)
  in
  parallel_ranges ?workers ~work:(2 * p * kmax * m) p (fun lo hi ->
      for j = lo to hi - 1 do
        let c = y.(j) in
        for k = kmax - 1 downto 0 do
          apply_packed ~m ~k ~beta:(betas.(k)) wcols.(k) c
        done
      done);
  mat_of_cols m p y

let qr_apply_qt ?workers { wf; betas } (x : Mat.t) =
  let m = wf.Mat.rows in
  let kmax = min m wf.Mat.cols in
  assert (x.Mat.rows = m);
  let p = x.Mat.cols in
  let wcols = cols_of_mat wf in
  let y = cols_of_mat x in
  parallel_ranges ?workers ~work:(2 * p * kmax * m) p (fun lo hi ->
      for j = lo to hi - 1 do
        let c = y.(j) in
        for k = 0 to kmax - 1 do
          apply_packed ~m ~k ~beta:(betas.(k)) wcols.(k) c
        done
      done);
  mat_of_cols m p y

let qr_apply_qt_vec { wf; betas } (x : float array) =
  let m = wf.Mat.rows in
  let kmax = min m wf.Mat.cols in
  assert (Array.length x = m);
  let wcols = cols_of_mat wf in
  let y = Array.copy x in
  for k = 0 to kmax - 1 do
    apply_packed ~m ~k ~beta:(betas.(k)) wcols.(k) y
  done;
  y

(* ------------------------------------------------------------------ *)
(* Round-robin one-sided Jacobi                                        *)
(* ------------------------------------------------------------------ *)

let jacobi_rounds ?workers ?(v : float array array option) ~threshold ~max_sweeps ~rows
    (w : float array array) =
  let n = Array.length w in
  if n >= 2 then begin
    let m = rows in
    let vlen = match v with Some v -> Array.length v.(0) | None -> 0 in
    (* verbatim rotation arithmetic of the serial cyclic sweep; returns
       whether a rotation was applied *)
    let rotate_pair p q =
      let wp = w.(p) and wq = w.(q) in
      let alpha = ref 0.0 and beta = ref 0.0 and gamma = ref 0.0 in
      for i = 0 to m - 1 do
        let a = Array.unsafe_get wp i and b = Array.unsafe_get wq i in
        alpha := !alpha +. (a *. a);
        beta := !beta +. (b *. b);
        gamma := !gamma +. (a *. b)
      done;
      let alpha = !alpha and beta = !beta and gamma = !gamma in
      if Float.abs gamma > threshold *. sqrt (alpha *. beta) && gamma <> 0.0 then begin
        let zeta = (beta -. alpha) /. (2.0 *. gamma) in
        let t =
          let s = if zeta >= 0.0 then 1.0 else -1.0 in
          s /. (Float.abs zeta +. sqrt (1.0 +. (zeta *. zeta)))
        in
        let c = 1.0 /. sqrt (1.0 +. (t *. t)) in
        let s = c *. t in
        for i = 0 to m - 1 do
          let a = Array.unsafe_get wp i and b = Array.unsafe_get wq i in
          Array.unsafe_set wp i ((c *. a) -. (s *. b));
          Array.unsafe_set wq i ((s *. a) +. (c *. b))
        done;
        (match v with
        | None -> ()
        | Some v ->
            let vp = v.(p) and vq = v.(q) in
            for i = 0 to vlen - 1 do
              let a = Array.unsafe_get vp i and b = Array.unsafe_get vq i in
              Array.unsafe_set vp i ((c *. a) -. (s *. b));
              Array.unsafe_set vq i ((s *. a) +. (c *. b))
            done);
        true
      end
      else false
    in
    (* Tournament (circle-method) schedule on [padded] players: player
       [padded - 1] is fixed, the rest rotate; round [r] pairs it with
       [r], and pairs ((r + i) mod (padded - 1), (r - i) mod (padded - 1))
       for i = 1 .. padded/2 - 1.  Every column pair meets exactly once
       per sweep, and the pairs of one round are disjoint — so one round
       is a parallel map over column pairs, each owned by one task. *)
    let padded = if n land 1 = 1 then n + 1 else n in
    let nrounds = padded - 1 in
    let npairs = padded / 2 in
    let rotated = Array.make npairs false in
    let converged = ref false in
    let sweeps = ref 0 in
    while (not !converged) && !sweeps < max_sweeps do
      incr sweeps;
      converged := true;
      for r = 0 to nrounds - 1 do
        parallel_ranges ?workers ~work:(6 * npairs * m) npairs (fun lo hi ->
            for idx = lo to hi - 1 do
              let a, b =
                if idx = 0 then (padded - 1, r)
                else ((r + idx) mod nrounds, (r - idx + nrounds) mod nrounds)
              in
              if a < n && b < n then rotated.(idx) <- rotate_pair (min a b) (max a b)
              else rotated.(idx) <- false
            done);
        for idx = 0 to npairs - 1 do
          if rotated.(idx) then converged := false
        done
      done
    done
  end
