(** Low-rank solvers for large-scale Lyapunov equations.

    The dense Bartels-Stewart solver in {!Lyap} is O(n^3) and caps the
    exact-TBR baseline at a few hundred states.  This module computes a
    low-rank Cholesky-like factor [Z] with [X ~= Z Z^T] of the descriptor
    Lyapunov equation

    {[ A X E^T + E X A^T + B B^T = 0 ]}

    from shifted solves only — the operation the sparse multi-shift
    machinery already does fast — so exact balanced truncation scales to
    the same sizes as PMTBR (ROADMAP item 2; Giamouzis et al.,
    arXiv 2411.13571 / 2311.08478).

    Two engines share one operator interface {!ops}:

    - {!lr_adi}: the low-rank ADI iteration with real/complex-pair shift
      handling (Benner-Kuerschner-Saak double step, so all stored columns
      are real), Penzl-style heuristic shift selection from Ritz values
      ({!penzl_shifts}), and low-rank residual-norm stopping — the
      residual Gramian stays in factored form [W W^T], so its norm is a
      small Gram computation per step.

    - {!extended_krylov}: the extended (two-sided) Krylov subspace method
      — blocks [F^k B~] and [F^{-k} B~] for [F = E^{-1} A] — holding raw
      orthonormal columns plus cached operator images, the same
      column-cache shape {!Pmtbr_core.Sample_cache} uses, with the small
      projected equation solved by the dense {!Lyap} core.

    The module is operator-abstract (no sparse or system dependency):
    callers supply {!ops}; {!ops_of_dense} covers dense [(E, A)] pairs
    and the LTI layer wires the sparse multi-shift handle in.

    {b Determinism}: both engines are serial fixed-order iterations over
    deterministic kernels, so results are bitwise-reproducible and
    independent of any worker-pool size used by the caller around them. *)

type ops = {
  n : int;  (** state dimension *)
  mul_e : Mat.t -> Mat.t;  (** [E * V] for dense [V] *)
  mul_a : Mat.t -> Mat.t;  (** [A * V] *)
  solve_shift : Complex.t -> Mat.t -> Complex.t array array;
      (** [solve_shift p r] solves [(A + p E) X = R] for a dense real
          right-hand side; one complex column per column of [R].  ADI
          calls it with [Re p < 0]; shift selection and the extended
          Krylov engine also use [p = 0] (plain [A^{-1}]). *)
  solve_e : Mat.t -> Mat.t;  (** [E^{-1} R]; requires invertible [E] *)
}
(** The operator interface both engines consume.  Implementations are
    expected to be pure in their arguments (any caching must be
    value-transparent) so that runs are reproducible. *)

val ops_of_dense : e:Mat.t -> a:Mat.t -> ops
(** Dense implementation: one complex LU per distinct shift (cached), a
    lazily factored real LU for [E].
    @raise Invalid_argument on shape mismatch or singular [E] (when
    [solve_e] is first used). *)

type stop =
  | Residual_fro
      (** stop when [||W W^T||_F <= tol * ||B B^T||_F] — the classic
          low-rank residual criterion, checked after every step *)
  | Band_residual of (Complex.t * float) array
      (** frequency-aware criterion (arXiv 2411.13571): weighted sample
          points [(s_k, w_k)] on the imaginary axis — built from the same
          [Sampling.Bands] machinery PMTBR uses — and the band-limited
          residual [sqrt (sum_k w_k ||(s_k E - A)^{-1} W||_F^2)] must
          fall below [tol] times the same functional of [B].  Checked
          once per shift cycle (each check costs one extra solve per
          point, through the same factor cache). *)

type stats = {
  steps : int;  (** ADI steps taken (a conjugate pair counts as 2), or
                    extended-Krylov iterations *)
  solves : int;  (** [solve_shift] calls (Ritz/band solves included) *)
  columns : int;  (** columns of the returned factor [Z] *)
  residuals : float array;
      (** relative Frobenius residual-norm history, one entry per
          appended block (ADI) or per iteration (extended Krylov) *)
  converged : bool;  (** whether the stopping criterion was met *)
}

val penzl_shifts : ?num:int -> ?ritz:int -> ops -> Mat.t -> Complex.t array
(** Penzl's heuristic ADI shifts: Ritz values of [E^{-1} A] (Arnoldi,
    [ritz] steps, default 12) approximate the outer spectrum, reciprocal
    Ritz values of [A^{-1} E] the inner one; the union is the candidate
    set over which shifts are chosen greedily to minimise the maximum of
    the ADI rational function.  At most [num] (default 16) shifts come
    back, counting a conjugate pair as two; complex shifts are returned
    once per pair.  Unstable Ritz values are discarded; the fallback when
    nothing survives is the single shift [-1]. *)

val band_residual : ops -> (Complex.t * float) array -> Mat.t -> float
(** [band_residual ops pts w] is the band-limited residual functional of
    {!Band_residual} evaluated on a factor [W] (unnormalised).
    @raise Invalid_argument on a negative or NaN weight. *)

val lr_adi :
  ?shifts:Complex.t array ->
  ?num_shifts:int ->
  ?ritz:int ->
  ?tol:float ->
  ?max_steps:int ->
  ?stop:stop ->
  ?compress:float ->
  ops ->
  Mat.t ->
  Mat.t * stats
(** [lr_adi ops b] runs the low-rank ADI iteration and returns [(z, st)]
    with [Z Z^T ~= X].  Shifts are cycled until the stopping criterion
    ([stop], default {!Residual_fro} at [tol], default [1e-10]) is met or
    [max_steps] (default 200) ADI steps have run; [shifts] overrides the
    Penzl selection ({!penzl_shifts} with [num_shifts]/[ritz]).  Complex
    shifts are processed as conjugate double steps in real arithmetic
    (one complex solve per pair), so [z] is always real.

    [compress] is a relative cutoff on the singular values of [Z]: the
    accumulating factor is periodically recompressed to the rank above
    the cutoff, which keeps the column count near the Gramian's numerical
    rank on many-input systems instead of growing by [inputs] columns per
    step.  The default [max 1e-8 (0.01 * tol)] truncates only at the Gram
    round-off floor (a ~1e-16 relative perturbation of [Z Z^T]); pass
    [0.] to disable compression entirely.
    @raise Invalid_argument on a shift with [Re p >= 0], an empty shift
    array, or a right-hand side with the wrong row count. *)

val extended_krylov :
  ?tol:float -> ?max_steps:int -> ops -> Mat.t -> Mat.t * stats
(** [extended_krylov ops b] builds the extended Krylov subspace
    [span {B~, F B~, F^{-1} B~, F^2 B~, ...}] for [F = E^{-1} A] and
    [B~ = E^{-1} B], solves the projected small Lyapunov equation with
    the dense {!Lyap} core each iteration, and stops when the true
    residual (evaluated exactly through a small Gram identity, no
    [n x n] matrix formed) is below [tol] (default [1e-10]) relative —
    or after [max_steps] (default 40) iterations.  Returns [(z, st)]
    with [Z Z^T ~= X].  Only the Frobenius criterion is supported; use
    {!lr_adi} for band-limited stopping. *)
