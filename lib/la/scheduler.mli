(** Fixed pool of worker domains draining a shared job queue — the unit
    of coarse-grained concurrency shared by the reduction service (one
    job per connection) and the hierarchical reducer (one job per
    subdomain).  Each job keeps the bitwise worker-invariance contract:
    the result of a job never depends on which worker ran it, or when.

    Lives in the linear-algebra layer (it only needs [Domain] and the
    stdlib sync primitives) so every layer above can fan work across it
    without a dependency cycle. *)

type 'a t

val create : workers:int -> ('a -> unit) -> 'a t
(** Spawn [max 1 workers] domains running the handler on submitted jobs.
    A handler exception is logged and the worker keeps going. *)

val submit : 'a t -> 'a -> bool
(** Enqueue a job; [false] if the pool is already stopping (the job is
    dropped). *)

val stop : 'a t -> unit
(** Drain outstanding jobs, then join every worker.  Idempotent in effect;
    must be called from the domain that owns the pool.  If the pool had
    more than one worker but every job drained onto a single domain, this
    reports the serialization through
    {!Par_kernel.warn_worker_collapse}[ ~kind:`Serialized] — the
    pool-exists-but-ran-serial case that creation-time checks miss. *)

val busiest_share : 'a t -> int * int
(** [(jobs_on_busiest_worker, total_jobs)] processed so far — the
    serialization diagnostic {!stop} reads.  A healthy multi-worker run
    has [busiest < total]. *)
