(** Thin singular value decomposition of dense real matrices by one-sided
    Jacobi rotations (Hestenes).

    Chosen over bidiagonalisation for robustness and simplicity: it
    computes small singular values to high relative accuracy, which matters
    because PMTBR order control reads 10-15 decades of singular-value decay
    (paper Fig. 5).

    [decompose] and [values] run the round-robin rotation schedule of
    {!Par_kernel.jacobi_rounds} — parallel across the disjoint column
    pairs of each round, bitwise-identical for any [workers] — and
    shortcut clearly tall blocks (rows > 2 * cols) through a blocked QR,
    rotating only the small triangular factor.  [decompose_cyclic] and
    [values_cyclic] keep the original serial cyclic sweep as the
    reference implementation; the two schedules agree on every singular
    value to the sweep threshold's relative accuracy (tests pin
    [1e-12 * sigma_max]). *)

type t = {
  u : Mat.t;  (** left singular vectors, [m x min m n], orthonormal columns *)
  sigma : float array;  (** singular values, descending *)
  v : Mat.t;  (** right singular vectors, [n x min m n] *)
}

val decompose : ?workers:int -> Mat.t -> t
(** [decompose a] satisfies [a = u * diag sigma * v^T].  [workers] sizes
    the kernel pool (default {!Par_kernel.default_workers}); the result is
    bitwise-identical for any value. *)

val values : ?workers:int -> ?threshold:float -> Mat.t -> float array
(** Singular values only, descending.  Skips the U/V accumulation of
    [decompose] but runs the identical rotation sweeps, so at the default
    [threshold] ([1e-15]) the values match [decompose]'s bit for bit.  A
    looser [threshold] stops the sweeps earlier, computing every value to
    roughly that relative accuracy — meant for convergence monitors that
    only compare values between iterations, not for final answers. *)

val decompose_cyclic : Mat.t -> t
(** Serial reference: the fixed cyclic rotation order, no QR
    preconditioning.  Same contract as {!decompose}; kept for tests and
    benchmarks to pin the round-robin path against. *)

val values_cyclic : ?threshold:float -> Mat.t -> float array
(** Serial reference for {!values}; matches {!decompose_cyclic} bit for
    bit at the default threshold. *)

val rank : ?tol:float -> ?workers:int -> Mat.t -> int
(** Number of singular values above [tol] (default [1e-12]) relative to the
    largest. *)

val left_vectors : t -> int -> Mat.t
(** [left_vectors t k] is the matrix of the [k] leading left singular
    vectors. *)
