(** Thin singular value decomposition of dense real matrices by one-sided
    Jacobi rotations (Hestenes).

    Chosen over bidiagonalisation for robustness and simplicity: it
    computes small singular values to high relative accuracy, which matters
    because PMTBR order control reads 10-15 decades of singular-value decay
    (paper Fig. 5). *)

type t = {
  u : Mat.t;  (** left singular vectors, [m x min m n], orthonormal columns *)
  sigma : float array;  (** singular values, descending *)
  v : Mat.t;  (** right singular vectors, [n x min m n] *)
}

val decompose : Mat.t -> t
(** [decompose a] satisfies [a = u * diag sigma * v^T]. *)

val values : ?threshold:float -> Mat.t -> float array
(** Singular values only, descending.  Skips the U/V accumulation of
    [decompose] but runs the identical rotation sweeps, so at the default
    [threshold] ([1e-15]) the values match [decompose]'s bit for bit.  A
    looser [threshold] stops the sweeps earlier, computing every value to
    roughly that relative accuracy — meant for convergence monitors that
    only compare values between iterations, not for final answers. *)

val rank : ?tol:float -> Mat.t -> int
(** Number of singular values above [tol] (default [1e-12]) relative to the
    largest. *)

val left_vectors : t -> int -> Mat.t
(** [left_vectors t k] is the matrix of the [k] leading left singular
    vectors. *)
