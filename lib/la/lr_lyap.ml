(* Low-rank Lyapunov solvers: LR-ADI with real/complex-pair shift handling
   and Penzl-style heuristic shifts, plus an extended Krylov alternative.

   Everything works through the abstract [ops] record so the same code runs
   on dense (E, A) pairs (tests) and on the sparse multi-shift machinery
   (the LTI layer).  All iterations are serial and fixed-order: results are
   bitwise-reproducible and worker-count independent by construction. *)

type ops = {
  n : int;
  mul_e : Mat.t -> Mat.t;
  mul_a : Mat.t -> Mat.t;
  solve_shift : Complex.t -> Mat.t -> Complex.t array array;
  solve_e : Mat.t -> Mat.t;
}

type stop = Residual_fro | Band_residual of (Complex.t * float) array

type stats = {
  steps : int;
  solves : int;
  columns : int;
  residuals : float array;
  converged : bool;
}

(* ---------------------------------------------------------------- helpers *)

let mat_of_cols n (cols : float array array) =
  Mat.init n (Array.length cols) (fun i j -> cols.(j).(i))

let re_block n (cols : Complex.t array array) =
  Mat.init n (Array.length cols) (fun i j -> cols.(j).(i).Complex.re)

let im_block n (cols : Complex.t array array) =
  Mat.init n (Array.length cols) (fun i j -> cols.(j).(i).Complex.im)

(* A shift is treated as real when its imaginary part is negligible against
   its (strictly negative) real part. *)
let is_effectively_real (p : Complex.t) =
  Float.abs p.Complex.im <= 1e-300 +. (1e-12 *. Float.abs p.Complex.re)

(* ||W W^T||_F computed as ||W^T W||_F: the Gram matrix is m x m for an
   n x m factor, so the residual norm costs O(n m^2) per step. *)
let low_rank_fro (w : Mat.t) = Mat.frobenius (Mat.gram w)

let check_weights pts =
  Array.iter
    (fun (_, w) ->
      if not (w >= 0.0) then
        invalid_arg "Lr_lyap.band_residual: weights must be non-negative")
    pts

(* Band-limited residual functional of arXiv 2411.13571: sample the residual
   factor through the resolvent on the frequency band of interest.  The
   solves go through [ops.solve_shift] at p = -s, i.e. (A - s E)^{-1}, which
   spans the same factor cache the ADI shifts use. *)
let band_residual_counted ops ~solves pts (w : Mat.t) =
  check_weights pts;
  if w.Mat.cols = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun ((s : Complex.t), weight) ->
        let cols = ops.solve_shift (Complex.neg s) w in
        incr solves;
        let sq = ref 0.0 in
        Array.iter
          (fun col ->
            Array.iter (fun z -> sq := !sq +. Complex.norm2 z) col)
          cols;
        acc := !acc +. (weight *. !sq))
      pts;
    sqrt !acc
  end

let band_residual ops pts w = band_residual_counted ops ~solves:(ref 0) pts w

(* ------------------------------------------------------- shift selection *)

(* Arnoldi with twice-applied modified Gram-Schmidt; returns the square
   Hessenberg section whose eigenvalues are the Ritz values.  [apply] maps a
   vector to a vector. *)
let arnoldi ~apply ~steps (v0 : float array) =
  let nrm0 = Vec.norm2 v0 in
  if nrm0 <= 1e-300 then Mat.create 0 0
  else begin
    let basis = Array.make (steps + 1) [||] in
    basis.(0) <- Vec.scale (1.0 /. nrm0) v0;
    let h = Array.make_matrix (steps + 1) steps 0.0 in
    let completed = ref 0 and stop = ref false in
    let j = ref 0 in
    while (not !stop) && !j < steps do
      let w = apply basis.(!j) in
      for _pass = 1 to 2 do
        for i = 0 to !j do
          let c = Vec.dot basis.(i) w in
          h.(i).(!j) <- h.(i).(!j) +. c;
          Vec.axpy (-.c) basis.(i) w
        done
      done;
      let nrm = Vec.norm2 w in
      h.(!j + 1).(!j) <- nrm;
      completed := !j + 1;
      if nrm <= 1e-12 *. Float.max 1.0 nrm0 then stop := true
      else begin
        basis.(!j + 1) <- Vec.scale (1.0 /. nrm) w;
        incr j
      end
    done;
    let k = !completed in
    Mat.init k k (fun i j -> h.(i).(j))
  end

let ritz_values ~apply ~steps v0 =
  let h = arnoldi ~apply ~steps v0 in
  if h.Mat.rows = 0 then [||] else Cschur.eigenvalues (Cschur.of_real h)

(* The ADI rational function factor contributed by shift p at a spectral
   point t: |t - conj p| / |t + p|, doubled with the conjugate twin when p
   is complex (shifts are applied in conjugate pairs). *)
let adi_factor (p : Complex.t) (t : Complex.t) =
  let quot num den = Complex.norm num /. Float.max 1e-300 (Complex.norm den) in
  let f = quot (Complex.sub t (Complex.conj p)) (Complex.add t p) in
  if is_effectively_real p then f
  else f *. quot (Complex.sub t p) (Complex.add t (Complex.conj p))

let penzl_shifts_counted ?(num = 16) ?(ritz = 12) ~solves ops (b : Mat.t) =
  if num < 1 then invalid_arg "Lr_lyap.penzl_shifts: num must be positive";
  let n = ops.n in
  (* A deterministic, B-independent start vector keeps the selection stable
     across right-hand sides; fall back to e_1 when B is all zeros. *)
  let v0 =
    let v = Vec.zeros n in
    for j = 0 to b.Mat.cols - 1 do
      for i = 0 to n - 1 do
        v.(i) <- v.(i) +. Mat.get b i j
      done
    done;
    if Vec.norm2 v <= 1e-300 && n > 0 then v.(0) <- 1.0;
    v
  in
  let as_mat v = Mat.init n 1 (fun i _ -> v.(i)) in
  let col0 (m : Mat.t) = Array.init n (fun i -> Mat.get m i 0) in
  (* Large-magnitude end of the spectrum: Ritz values of F = E^{-1} A. *)
  let apply_f v = col0 (ops.solve_e (ops.mul_a (as_mat v))) in
  (* Small-magnitude end: reciprocals of Ritz values of F^{-1} = A^{-1} E;
     p = 0 turns the shifted solve into a plain A^{-1}. *)
  let apply_finv v =
    let cols = ops.solve_shift Complex.zero (ops.mul_e (as_mat v)) in
    incr solves;
    Array.init n (fun i -> cols.(0).(i).Complex.re)
  in
  let steps = min ritz (max 1 n) in
  let outer = ritz_values ~apply:apply_f ~steps v0 in
  let inner =
    Array.to_list (ritz_values ~apply:apply_finv ~steps v0)
    |> List.filter_map (fun mu ->
           if Complex.norm mu <= 1e-300 then None else Some (Complex.inv mu))
    |> Array.of_list
  in
  (* Stable candidates only, one representative per conjugate pair. *)
  let candidates =
    Array.to_list (Array.append outer inner)
    |> List.filter_map (fun (l : Complex.t) ->
           if not (l.Complex.re < 0.0) then None
           else if is_effectively_real l then Some { l with Complex.im = 0.0 }
           else Some { l with Complex.im = Float.abs l.Complex.im })
    |> List.sort_uniq (fun (a : Complex.t) (b : Complex.t) ->
           compare (a.Complex.re, a.Complex.im) (b.Complex.re, b.Complex.im))
  in
  (* Near-duplicates (same Ritz value seen by both Arnoldi runs) would waste
     shift slots; merge them at a relative tolerance. *)
  let candidates =
    List.fold_left
      (fun acc (l : Complex.t) ->
        let dup =
          List.exists
            (fun (m : Complex.t) ->
              Complex.norm (Complex.sub l m) <= 1e-8 *. Complex.norm l)
            acc
        in
        if dup then acc else l :: acc)
      [] candidates
    |> List.rev |> Array.of_list
  in
  if Array.length candidates = 0 then [| { Complex.re = -1.0; im = 0.0 } |]
  else begin
    (* Penzl's greedy sweep: repeatedly add the candidate where the current
       ADI rational function is worst. *)
    let chosen = ref [] and weight = ref 0 in
    let value_at t =
      List.fold_left (fun acc p -> acc *. adi_factor p t) 1.0 !chosen
    in
    (* Seed with the candidate of largest magnitude (Penzl's choice). *)
    let first =
      Array.fold_left
        (fun best l ->
          match best with
          | None -> Some l
          | Some b -> if Complex.norm l > Complex.norm b then Some l else best)
        None candidates
    in
    (match first with
    | Some p ->
        chosen := [ p ];
        weight := if is_effectively_real p then 1 else 2
    | None -> ());
    let continue_ = ref true in
    while !continue_ && !weight < num do
      let worst = ref None and worst_v = ref neg_infinity in
      Array.iter
        (fun t ->
          if not (List.mem t !chosen) then begin
            let v = value_at t in
            if v > !worst_v then begin
              worst_v := v;
              worst := Some t
            end
          end)
        candidates;
      match !worst with
      | None -> continue_ := false
      | Some p ->
          chosen := p :: !chosen;
          weight := !weight + (if is_effectively_real p then 1 else 2)
    done;
    Array.of_list (List.rev !chosen)
  end

let penzl_shifts ?num ?ritz ops b =
  penzl_shifts_counted ?num ?ritz ~solves:(ref 0) ops b

(* ----------------------------------------------------------------- LR-ADI *)

(* Rank-truncating recompression of an accumulating low-rank factor.  With
   G = Z^T Z = U diag(lam) U^T, the columns of Z U are orthogonal with norms
   sqrt(lam_i), so dropping the columns with sqrt(lam_i) below a relative
   cutoff is the optimal truncation of Z Z^T at that tolerance.  This is
   what keeps the factor near the Gramian's numerical rank on many-input
   systems, where raw ADI appends [inputs] columns per step. *)
let compress_factor ~cutoff (z : Mat.t) =
  if z.Mat.cols <= 1 then z
  else begin
    let lam, u = Eig_sym.decompose (Mat.gram z) in
    let lmax = if Array.length lam = 0 then 0.0 else Float.max 0.0 lam.(0) in
    let keep = ref 0 in
    Array.iter
      (fun l -> if l > cutoff *. cutoff *. lmax && l > 0.0 then incr keep)
      lam;
    let r = max 1 !keep in
    if r >= z.Mat.cols then z else Mat.mul z (Mat.sub_cols u 0 r)
  end

(* Assemble Z from the accumulated blocks in one pass. *)
let assemble n blocks_rev =
  let blocks = List.rev blocks_rev in
  let total = List.fold_left (fun acc (b : Mat.t) -> acc + b.Mat.cols) 0 blocks in
  let z = Mat.create n total in
  let off = ref 0 in
  List.iter
    (fun (b : Mat.t) ->
      for i = 0 to n - 1 do
        Array.blit b.Mat.data (i * b.Mat.cols) z.Mat.data ((i * total) + !off)
          b.Mat.cols
      done;
      off := !off + b.Mat.cols)
    blocks;
  z

let lr_adi ?shifts ?num_shifts ?ritz ?(tol = 1e-10) ?(max_steps = 200)
    ?(stop = Residual_fro) ?compress ops (b : Mat.t) =
  if b.Mat.rows <> ops.n then
    invalid_arg "Lr_lyap.lr_adi: right-hand side row count does not match n";
  let solves = ref 0 in
  let finish ~steps ~columns ~residuals ~converged z =
    ( z,
      {
        steps;
        solves = !solves;
        columns;
        residuals = Array.of_list (List.rev residuals);
        converged;
      } )
  in
  if ops.n = 0 || b.Mat.cols = 0 then
    finish ~steps:0 ~columns:0 ~residuals:[] ~converged:true
      (Mat.create ops.n 0)
  else begin
    let shifts =
      match shifts with
      | Some s ->
          if Array.length s = 0 then
            invalid_arg "Lr_lyap.lr_adi: empty shift array";
          Array.iter
            (fun (p : Complex.t) ->
              if not (p.Complex.re < 0.0) then
                invalid_arg "Lr_lyap.lr_adi: shifts must have Re p < 0")
            s;
          Array.copy s
      | None -> penzl_shifts_counted ?num:num_shifts ?ritz ~solves ops b
    in
    let ns = Array.length shifts in
    let den_fro = Float.max 1e-300 (low_rank_fro b) in
    let den_stop =
      match stop with
      | Residual_fro -> den_fro
      | Band_residual pts ->
          Float.max 1e-300 (band_residual_counted ops ~solves pts b)
    in
    (* Compression cutoff on the singular values of Z, relative to the
       largest: the default drops only what sits at the Gram matrix's own
       round-off floor, so the returned Gramian is unchanged to ~1e-16
       while the factor stays near the numerical rank.  0 disables. *)
    let ctol =
      match compress with
      | Some c -> c
      | None -> Float.max 1e-8 (0.01 *. tol)
    in
    let flush_at = max 16 (2 * b.Mat.cols) in
    let w = ref (Mat.copy b) in
    let z_acc = ref (Mat.create ops.n 0) in
    let pending = ref [] and pending_cols = ref 0 in
    let flush ~final () =
      if !pending_cols > 0 then begin
        let fresh = assemble ops.n !pending in
        z_acc :=
          if (!z_acc).Mat.cols = 0 then fresh else Mat.hcat !z_acc fresh;
        pending := [];
        pending_cols := 0;
        if ctol > 0.0 then z_acc := compress_factor ~cutoff:ctol !z_acc
      end
      else if final && ctol > 0.0 && (!z_acc).Mat.cols > 0 then
        z_acc := compress_factor ~cutoff:ctol !z_acc
    in
    let residuals = ref [] in
    let steps = ref 0 and converged = ref false and cursor = ref 0 in
    while (not !converged) && !steps < max_steps do
      let p = shifts.(!cursor mod ns) in
      incr cursor;
      let vc = ops.solve_shift p !w in
      incr solves;
      let alpha = p.Complex.re in
      if is_effectively_real p then begin
        (* V = (A + pE)^{-1} W;  Z += sqrt(-2p) V;  W -= 2p E V. *)
        let v = re_block ops.n vc in
        pending := Mat.scale (sqrt (-2.0 *. alpha)) v :: !pending;
        pending_cols := !pending_cols + v.Mat.cols;
        w := Mat.sub !w (Mat.scale (2.0 *. alpha) (ops.mul_e v));
        incr steps
      end
      else begin
        (* Conjugate double step in real arithmetic (Benner-Kuerschner-Saak):
           with delta = Re p / Im p,
             V'  = Re V + delta Im V,
             V'' = sqrt (delta^2 + 1) Im V,
           the pair {p, conj p} contributes 2 sqrt(-Re p) [V', V''] to Z and
           updates W -= 4 Re p * E V' — W stays real. *)
        let vr = re_block ops.n vc and vi = im_block ops.n vc in
        let delta = alpha /. p.Complex.im in
        let v1 = Mat.add vr (Mat.scale delta vi) in
        let v2 = Mat.scale (sqrt ((delta *. delta) +. 1.0)) vi in
        pending :=
          Mat.scale (2.0 *. sqrt (-.alpha)) (Mat.hcat v1 v2) :: !pending;
        pending_cols := !pending_cols + v1.Mat.cols + v2.Mat.cols;
        w := Mat.sub !w (Mat.scale (4.0 *. alpha) (ops.mul_e v1));
        steps := !steps + 2
      end;
      if ctol > 0.0 && !pending_cols >= flush_at then flush ~final:false ();
      let rel_fro = low_rank_fro !w /. den_fro in
      residuals := rel_fro :: !residuals;
      (match stop with
      | Residual_fro -> if rel_fro <= tol then converged := true
      | Band_residual pts ->
          (* the band check costs a solve per sample point; run it at shift
             cycle boundaries only *)
          if !cursor mod ns = 0 || rel_fro <= tol then begin
            let rel = band_residual_counted ops ~solves pts !w /. den_stop in
            if rel <= tol then converged := true
          end)
    done;
    flush ~final:true ();
    finish ~steps:!steps ~columns:(!z_acc).Mat.cols ~residuals:!residuals
      ~converged:!converged !z_acc
  end

(* ------------------------------------------------------- extended Krylov *)

(* The extended Krylov engine mirrors the Sample_cache column-store shape:
   raw orthonormal columns are appended incrementally, and the operator
   image F q of each accepted column is cached alongside so the projected
   matrix T = Q^T F Q never recomputes a product. *)
let extended_krylov ?(tol = 1e-10) ?(max_steps = 40) ops (b : Mat.t) =
  if b.Mat.rows <> ops.n then
    invalid_arg
      "Lr_lyap.extended_krylov: right-hand side row count does not match n";
  let n = ops.n in
  let solves = ref 0 in
  let stats ~steps ~columns ~residuals ~converged =
    {
      steps;
      solves = !solves;
      columns;
      residuals = Array.of_list (List.rev residuals);
      converged;
    }
  in
  if n = 0 || b.Mat.cols = 0 then
    ( Mat.create n 0,
      stats ~steps:0 ~columns:0 ~residuals:[] ~converged:true )
  else begin
    let apply_f (m : Mat.t) = ops.solve_e (ops.mul_a m) in
    let apply_finv (m : Mat.t) =
      let cols = ops.solve_shift Complex.zero (ops.mul_e m) in
      incr solves;
      re_block n cols
    in
    let btil = ops.solve_e b in
    let den = Float.max 1e-300 (low_rank_fro btil) in
    (* Growing column stores: orthonormal basis and cached F-images. *)
    let q_cols = ref [||] and fq_cols = ref [||] in
    let append_orth (block : Mat.t) =
      (* Twice-applied MGS of each column against everything accepted so
         far; returns the indices of the newly accepted columns. *)
      let fresh = ref [] in
      for j = 0 to block.Mat.cols - 1 do
        let v = Array.init n (fun i -> Mat.get block i j) in
        let nrm0 = Vec.norm2 v in
        for _pass = 1 to 2 do
          Array.iter (fun q -> Vec.axpy (-.Vec.dot q v) q v) !q_cols
        done;
        let nrm = Vec.norm2 v in
        if nrm > 1e-10 *. Float.max nrm0 1e-300 then begin
          q_cols := Array.append !q_cols [| Vec.scale (1.0 /. nrm) v |];
          fresh := (Array.length !q_cols - 1) :: !fresh
        end
      done;
      List.rev !fresh
    in
    let cols_at idxs =
      mat_of_cols n (Array.of_list (List.map (fun i -> !q_cols.(i)) idxs))
    in
    let cache_images idxs =
      if idxs <> [] then begin
        let imgs = apply_f (cols_at idxs) in
        List.iteri
          (fun j _ ->
            fq_cols :=
              Array.append !fq_cols
                [| Array.init n (fun i -> Mat.get imgs i j) |])
          idxs
      end
    in
    let plus = ref (append_orth btil) in
    cache_images !plus;
    let minus = ref (append_orth (apply_finv btil)) in
    cache_images !minus;
    let residuals = ref [] in
    let last_y = ref None and last_k = ref 0 in
    let converged = ref false and it = ref 0 in
    while (not !converged) && !it < max_steps && (!plus <> [] || !minus <> [])
    do
      incr it;
      let k = Array.length !q_cols in
      let qmat = mat_of_cols n !q_cols and fqmat = mat_of_cols n !fq_cols in
      let t = Mat.mul (Mat.transpose qmat) fqmat in
      let bhat = Mat.mul (Mat.transpose qmat) btil in
      (match
         Lyap.solve t (Mat.symmetrize (Mat.mul bhat (Mat.transpose bhat)))
       with
      | y ->
          last_y := Some y;
          last_k := k;
          (* Exact residual via the Gram identity: with S = [Q, FQ, Btil]
             and M the block matrix pairing Y against the off-diagonal,
             ||R||_F^2 = tr((M G)^2) for G = S^T S — no n x n matrix. *)
          let s = Mat.hcat qmat (Mat.hcat fqmat btil) in
          let g = Mat.gram s in
          let m = b.Mat.cols in
          let mm = Mat.create ((2 * k) + m) ((2 * k) + m) in
          for i = 0 to k - 1 do
            for j = 0 to k - 1 do
              Mat.set mm i (k + j) (Mat.get y i j);
              Mat.set mm (k + i) j (Mat.get y i j)
            done
          done;
          for i = 0 to m - 1 do
            Mat.set mm ((2 * k) + i) ((2 * k) + i) 1.0
          done;
          let mg = Mat.mul mm g in
          let tr = ref 0.0 in
          let d = (2 * k) + m in
          for i = 0 to d - 1 do
            for j = 0 to d - 1 do
              tr := !tr +. (Mat.get mg i j *. Mat.get mg j i)
            done
          done;
          let rel = sqrt (Float.max 0.0 !tr) /. den in
          residuals := rel :: !residuals;
          if rel <= tol then converged := true
      | exception Lyap.Unstable_pencil ->
          (* the projected pencil can be marginally stable early on; keep
             enlarging the space *)
          residuals := infinity :: !residuals);
      if not !converged then begin
        let np = if !plus = [] then [] else append_orth (apply_f (cols_at !plus)) in
        cache_images np;
        let nm =
          if !minus = [] then [] else append_orth (apply_finv (cols_at !minus))
        in
        cache_images nm;
        plus := np;
        minus := nm
      end
    done;
    match !last_y with
    | None ->
        ( Mat.create n 0,
          stats ~steps:!it ~columns:0 ~residuals:!residuals ~converged:false )
    | Some y ->
        let l = Eig_sym.psd_factor (Mat.symmetrize y) in
        let qmat =
          mat_of_cols n (Array.sub !q_cols 0 !last_k)
        in
        let z = Mat.mul qmat l in
        ( z,
          stats ~steps:!it ~columns:z.Mat.cols ~residuals:!residuals
            ~converged:!converged )
  end

(* -------------------------------------------------------------- dense ops *)

let ops_of_dense ~(e : Mat.t) ~(a : Mat.t) =
  let n = a.Mat.rows in
  if a.Mat.cols <> n || e.Mat.rows <> n || e.Mat.cols <> n then
    invalid_arg "Lr_lyap.ops_of_dense: E and A must be square and same size";
  let e_lu =
    lazy
      (try Mat.lu e
       with Mat.Singular _ -> invalid_arg "Lr_lyap.ops_of_dense: singular E")
  in
  let cache : (Complex.t, Cmat.lu) Hashtbl.t = Hashtbl.create 8 in
  let solve_shift p r =
    (* normalise -0. so p and -(-p) share a cache slot *)
    let p = { Complex.re = p.Complex.re +. 0.0; im = p.Complex.im +. 0.0 } in
    let lu =
      match Hashtbl.find_opt cache p with
      | Some lu -> lu
      | None ->
          let m = Cmat.axpby_real ~alpha:p e ~beta:Complex.one a in
          let lu = Cmat.lu m in
          Hashtbl.add cache p lu;
          lu
    in
    Array.init r.Mat.cols (fun j ->
        Cmat.lu_solve_vec lu
          (Array.init n (fun i -> { Complex.re = Mat.get r i j; im = 0.0 })))
  in
  {
    n;
    mul_e = Mat.mul e;
    mul_a = Mat.mul a;
    solve_shift;
    solve_e = (fun r -> Mat.lu_solve (Lazy.force e_lu) r);
  }
