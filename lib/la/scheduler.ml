(* Fixed pool of worker domains draining a shared queue.  Jobs are opaque
   thunk arguments; a handler that raises logs the exception and the
   worker moves on, so one bad job cannot take the pool down.

   Each worker counts the jobs it processed.  [stop] inspects the counts:
   a pool that spawned >1 workers but funnelled every job through one
   domain ran serially in disguise, and that is exactly the collapse the
   benchmarks must not silently report as parallel — so it fires
   [Par_kernel.warn_worker_collapse ~kind:`Serialized].  The counts are
   diagnostic only; results never depend on them. *)

type 'a t = {
  queue : 'a option Queue.t; (* [None] is the per-worker stop sentinel *)
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable domains : unit Domain.t array;
  mutable stopped : bool;
  processed : int Atomic.t array; (* jobs completed, per worker slot *)
}

let worker t slot handler =
  let rec loop () =
    let job =
      Mutex.lock t.lock;
      while Queue.is_empty t.queue do
        Condition.wait t.nonempty t.lock
      done;
      let j = Queue.pop t.queue in
      Mutex.unlock t.lock;
      j
    in
    match job with
    | None -> ()
    | Some j ->
        (try handler j
         with e ->
           Printf.eprintf "[pmtbr-pool] worker error: %s\n%!" (Printexc.to_string e));
        Atomic.incr t.processed.(slot);
        loop ()
  in
  loop ()

let create ~workers handler =
  let workers = max 1 workers in
  let t =
    {
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      domains = [||];
      stopped = false;
      processed = Array.init workers (fun _ -> Atomic.make 0);
    }
  in
  t.domains <- Array.init workers (fun slot -> Domain.spawn (fun () -> worker t slot handler));
  t

let submit t job =
  Mutex.lock t.lock;
  let accepted = not t.stopped in
  if accepted then begin
    Queue.push (Some job) t.queue;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.lock;
  accepted

let busiest_share t =
  Array.fold_left
    (fun (busiest, total) c ->
      let n = Atomic.get c in
      (max busiest n, total + n))
    (0, 0) t.processed

let stop t =
  let spawned = Array.length t.domains in
  Mutex.lock t.lock;
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter (fun _ -> Queue.push None t.queue) t.domains;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.domains;
  t.domains <- [||];
  let busiest, total = busiest_share t in
  if spawned > 1 && total > 1 && busiest = total then
    Par_kernel.warn_worker_collapse ~kind:`Serialized ~context:"a scheduler pool"
      ~requested:spawned ()
