(** Domain-parallel, cache-blocked dense kernels for the reduction stage.

    PRs 1-3 parallelised the shifted-solve side of PMTBR over an OCaml 5
    domain pool; this layer does the same for the dense reduction stage
    (GEMM/gram/mv panels, blocked Householder QR, round-robin one-sided
    Jacobi SVD) so the SVD/QR of the tall-skinny sample factors no longer
    caps the end-to-end speedup.

    {b Determinism contract} (the same one {!Pmtbr_core.Shift_engine}
    advertises): every kernel uses a fixed tile/panel/round decomposition
    that depends only on the operand shapes — never on the worker count or
    on scheduling — and each output element is accumulated in a fixed
    order by exactly one task.  Serial and parallel runs therefore produce
    bitwise-identical results for any [workers], which CI enforces.

    Moreover [mul], [gram] and [mv] replay the exact accumulation order of
    the naive {!Mat} kernels, so they are bitwise-equal to [Mat.mul],
    [Mat.gram] and [Mat.mv], and the blocked QR replays the exact
    reflector arithmetic of the classic unblocked Householder sweep.

    Kernels fall back to the plain serial loop when the operand is too
    small to amortise a domain spawn; the cutover depends only on the
    operand shape, so it cannot break worker-invariance. *)

val default_workers : unit -> int
(** The pool size used when [?workers] is omitted: the value installed by
    {!set_default_workers}, else [Domain.recommended_domain_count ()]. *)

val set_default_workers : int option -> unit
(** Install a process-wide default worker count for all kernels ([None]
    restores the hardware default).  The CLI [--workers] flag routes
    through here so one flag covers both the solve and reduction stages.
    Results are bitwise-identical for any setting.  Installing a
    multi-worker default on a host whose
    [Domain.recommended_domain_count] is 1 triggers
    {!warn_worker_collapse}. *)

val warn_worker_collapse :
  ?kind:[ `Creation | `Serialized ] -> context:string -> requested:int -> unit -> unit
(** Emit a one-line [stderr] warning (once per process {e per kind}) that
    a pool [requested > 1] workers but effectively ran on a single domain.
    [`Creation] (default): the pool collapsed to one domain when it was
    built — the host caps it.  [`Serialized]: the pool really spawned its
    workers, but every job drained onto one of them (jobs too coarse, or
    submitted one at a time) — {!Scheduler.stop} detects and reports this
    case from its per-worker job counts.  Results are never affected;
    callers invoke this only after deciding the pool really did run
    serially. *)

val parallel_ranges : ?workers:int -> work:int -> int -> (int -> int -> unit) -> unit
(** [parallel_ranges ~work n f] partitions [0..n-1] into at most [workers]
    contiguous ranges and runs [f lo hi] on each, in parallel when the
    estimated scalar-op count [work] is large enough to pay for domain
    spawns.  [f] must write only to range-private slots.  The partition
    depends only on [n] and the resolved worker count; correctness (and
    bitwise output, provided [f]'s writes are disjoint and per-index
    deterministic) does not. *)

val dot : float array -> float array -> float
(** Cache-blocked dot product: per-block partial sums in index order,
    combined in block order — a pure function of the operand values and
    length.  Vectors that fit one block (length <= 4096) reduce to the
    plain sequential dot, bit for bit. *)

val mul : ?workers:int -> Mat.t -> Mat.t -> Mat.t
(** Tiled GEMM, parallel over row panels.  Bitwise-equal to {!Mat.mul}
    for any worker count (each output element accumulates over [k] in
    ascending order with the same zero-skip). *)

val gram : ?workers:int -> Mat.t -> Mat.t
(** [A^T A] without forming the transpose, parallel over column panels.
    Bitwise-equal to {!Mat.gram}. *)

val mv : ?workers:int -> Mat.t -> float array -> float array
(** Matrix-vector product, parallel over row panels.  Bitwise-equal to
    {!Mat.mv}. *)

(** {1 Blocked Householder QR} *)

type qr = {
  wf : Mat.t;
      (** packed factor: R on and above the diagonal, normalised reflector
          tails below it *)
  betas : float array;  (** reflector scalings, length [min m n] *)
}

val qr_factor : ?workers:int -> Mat.t -> qr
(** Panel-blocked Householder factorisation: reflectors are built serially
    within a panel, then applied to the trailing columns in parallel.
    Each trailing column receives every reflector in index order with the
    classic unblocked arithmetic, so the packed factor is bitwise-equal to
    the unblocked serial sweep for any worker count. *)

val qr_r : qr -> Mat.t
(** The [n x n] upper-triangular factor. *)

val qr_thin_q : ?workers:int -> ?cols:int -> qr -> Mat.t
(** Thin orthonormal factor: the first [cols] (default [min m n]) columns
    of Q, formed by applying the packed reflectors to columns of the
    identity — parallel over columns, each column bitwise-equal to the
    serial backward accumulation. *)

val qr_apply_q : ?workers:int -> qr -> Mat.t -> Mat.t
(** [qr_apply_q f x] is [Q * x] for [x] with [m] rows, or [Q_thin * x]
    (zero-padded implicitly) for [x] with [min m n] rows; parallel over
    columns of [x].  Cheaper than materialising the thin Q when [x] is
    consumed once. *)

val qr_apply_qt : ?workers:int -> qr -> Mat.t -> Mat.t
(** [qr_apply_qt f x] is [Q^T * x] for [x] with [m] rows ([m x p]
    result; rows [0 .. min m n - 1] are [Q_thin^T x]); parallel over
    columns of [x]. *)

val qr_apply_qt_vec : qr -> float array -> float array
(** {!qr_apply_qt} on a single vector. *)

(** {1 Round-robin one-sided Jacobi} *)

val jacobi_rounds :
  ?workers:int ->
  ?v:float array array ->
  threshold:float ->
  max_sweeps:int ->
  rows:int ->
  float array array ->
  unit
(** [jacobi_rounds ~threshold ~max_sweeps ~rows w] runs one-sided Jacobi
    (Hestenes) on the columns [w] (each of length [rows]), optionally
    accumulating right-hand rotations into the columns [v], using
    the fixed round-robin (tournament) rotation schedule: each round
    rotates disjoint column pairs, so the pairs of a round are processed
    in parallel with bitwise worker-invariance; rounds and sweeps are
    sequential.  Stops when a full sweep applies no rotation (every pair
    orthogonal to [threshold] relative accuracy) or after [max_sweeps]
    sweeps.  The rotation arithmetic is exactly that of the serial cyclic
    sweep in {!Svd}; only the pair order differs. *)
