(** Householder QR factorisations of dense real matrices.

    [thin], [orth] and the packed-factor operations run on the
    panel-blocked kernels of {!Par_kernel} and accept a [?workers] pool
    size; results are bitwise-identical for any worker count, and
    bitwise-identical to the classic unblocked serial sweep (retained as
    {!thin_reference}). *)

type pivoted = {
  q : Mat.t;  (** thin orthonormal factor, [m x min m n] *)
  r : Mat.t;  (** upper-triangular factor of the permuted matrix *)
  jpvt : int array;  (** column permutation: column [k] of [q*r] is column [jpvt.(k)] of the input *)
  rank : int;  (** numerical rank detected during pivoting *)
}
(** Result of a column-pivoted (rank-revealing) factorisation. *)

type packed = Par_kernel.qr
(** Packed Householder factor: R in the upper triangle, normalised
    reflector tails below it, plus the reflector scalings.  Lets callers
    multiply by Q or Q^T without materialising the [m x n] orthonormal
    factor — cheaper whenever the product is consumed once. *)

val thin : ?workers:int -> Mat.t -> Mat.t * Mat.t
(** [thin a] for [a] of shape [m x n] with [m >= n] returns [(q, r)] with
    [a = q * r], [q] of shape [m x n] with orthonormal columns and [r]
    upper triangular. *)

val thin_reference : Mat.t -> Mat.t * Mat.t
(** The unblocked serial sweep: same contract as {!thin}, kept as the
    bitwise reference the blocked path is property-tested against. *)

val factorize : ?workers:int -> Mat.t -> packed
(** Panel-blocked Householder factorisation of a matrix of any shape. *)

val r_factor : packed -> Mat.t
(** The [min m n x n] upper-triangular (trapezoidal when wide) factor. *)

val thin_q : ?workers:int -> ?cols:int -> packed -> Mat.t
(** The first [cols] (default [min m n]) columns of Q, materialised. *)

val apply_q : ?workers:int -> packed -> Mat.t -> Mat.t
(** [apply_q f x] is [Q * x]: [x] may have [m] rows, or [min m n] rows
    (implicitly zero-padded, i.e. [Q_thin * x]); the result has [m]
    rows. *)

val apply_qt : ?workers:int -> packed -> Mat.t -> Mat.t
(** [apply_qt f x] is [Q^T * x] for [x] with [m] rows; rows
    [0 .. min m n - 1] of the result are [Q_thin^T * x]. *)

val apply_qt_vec : packed -> float array -> float array
(** {!apply_qt} on a single vector. *)

val pivoted : ?tol:float -> Mat.t -> pivoted
(** Column-pivoted Householder QR of a matrix of any shape.  Elimination
    stops when the largest remaining column norm falls below [tol] (default
    [1e-12]) relative to the largest original column norm; the number of
    completed steps is the [rank] estimate (the RRQR of the paper's Section
    V-C discussion).  The elimination is inherently sequential (each pivot
    depends on the previous downdates) and stays serial. *)

val pivoted_factor : ?tol:float -> Mat.t -> packed * int array * int
(** Same elimination as {!pivoted}, returning the packed factor, the
    column permutation and the rank without forming Q — pair with
    {!apply_q}/{!apply_qt} when the orthonormal factor itself is never
    needed. *)

val orth : ?tol:float -> ?workers:int -> Mat.t -> Mat.t
(** Orthonormal basis of the column space, via the pivoted elimination.
    Handles rank-deficient and wide inputs; a numerically zero input
    yields a basis with zero columns. *)
