(* Lyapunov and Sylvester matrix equations via the (complex) Schur form,
   i.e. the Bartels-Stewart algorithm.

   The decomposition of A is exposed as a reusable value so that sweeps that
   solve many equations with the same A and different right-hand sides (the
   paper's Fig. 3 varies only B) factor A once. *)

exception Unstable_pencil

type factor =
  | Sym of float array * Mat.t (* eigenvalues, eigenvectors: A = V diag V^T *)
  | Gen of Cschur.t

(* Decide the fast symmetric path automatically.  The n = 0 pencil is
   trivially (and vacuously) stable: route it through the symmetric branch
   with an empty spectrum rather than asking the eigensolvers about it. *)
let factor (a : Mat.t) =
  if a.Mat.rows = 0 then Sym ([||], Mat.create 0 0)
  else if Mat.is_symmetric ~tol:1e-12 a then begin
    let values, vectors = Eig_sym.decompose a in
    Sym (values, vectors)
  end
  else Gen (Cschur.of_real a)

let factor_general (a : Mat.t) =
  if a.Mat.rows = 0 then Sym ([||], Mat.create 0 0) else Gen (Cschur.of_real a)

(* Triangular solve: (t + sigma I) x = b for upper-triangular t. *)
let tri_shifted_solve (t : Cmat.t) (sigma : Complex.t) (b : Complex.t array) =
  let n = t.Cmat.rows in
  let x = Array.copy b in
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := Complex.sub !acc (Complex.mul (Cmat.get t i j) x.(j))
    done;
    let d = Complex.add (Cmat.get t i i) sigma in
    if Complex.norm d < 1e-300 then raise Unstable_pencil;
    x.(i) <- Complex.div !acc d
  done;
  x

(* Solve A X + X A^T + Q = 0 (Q symmetric) for symmetric X. *)
let solve_with fact (q : Mat.t) =
  match fact with
  | Sym (values, v) ->
      let n = Array.length values in
      let qh = Mat.mul (Mat.transpose v) (Mat.mul q v) in
      let y =
        Mat.init n n (fun i j ->
            let d = values.(i) +. values.(j) in
            if Float.abs d < 1e-300 then raise Unstable_pencil;
            -.Mat.get qh i j /. d)
      in
      Mat.symmetrize (Mat.mul v (Mat.mul y (Mat.transpose v)))
  | Gen { Cschur.q = u; tm = t } ->
      let n = t.Cmat.rows in
      let qc = Cmat.of_mat q in
      let qh = Cmat.mul (Cmat.conj_transpose u) (Cmat.mul qc u) in
      (* T Y + Y T^H = -Qh, solved column-by-column from the last. *)
      let y = Cmat.create n n in
      for k = n - 1 downto 0 do
        let rhs =
          Array.init n (fun i ->
              let acc = ref (Complex.neg (Cmat.get qh i k)) in
              for j = k + 1 to n - 1 do
                acc :=
                  Complex.sub !acc
                    (Complex.mul (Complex.conj (Cmat.get t k j)) (Cmat.get y i j))
              done;
              !acc)
        in
        let sigma = Complex.conj (Cmat.get t k k) in
        Cmat.set_col y k (tri_shifted_solve t sigma rhs)
      done;
      let x = Cmat.mul u (Cmat.mul y (Cmat.conj_transpose u)) in
      Mat.symmetrize (Cmat.re x)

let solve (a : Mat.t) (q : Mat.t) = solve_with (factor a) q

(* Controllability-style Gramian: A X + X A^T + B B^T = 0. *)
let gramian_with fact (b : Mat.t) = solve_with fact (Mat.mul b (Mat.transpose b))

(* Cross-Gramian Sylvester equation A X + X A + Q = 0 (Q = B C).  For
   symmetric A this coincides with the Lyapunov recurrence in the eigenbasis
   (A = A^T), except that the solution need not be symmetric. *)
let rec solve_cross_with fact (qm : Mat.t) =
  match fact with
  | Sym (values, v) ->
      let n = Array.length values in
      let qh = Mat.mul (Mat.transpose v) (Mat.mul qm v) in
      let y =
        Mat.init n n (fun i j ->
            let d = values.(i) +. values.(j) in
            if Float.abs d < 1e-300 then raise Unstable_pencil;
            -.Mat.get qh i j /. d)
      in
      Mat.mul v (Mat.mul y (Mat.transpose v))
  | Gen schur -> solve_cross_schur schur qm

and solve_cross_schur ({ Cschur.q = u; tm = t } : Cschur.t) (qm : Mat.t) =
  let n = t.Cmat.rows in
  let qh = Cmat.mul (Cmat.conj_transpose u) (Cmat.mul (Cmat.of_mat qm) u) in
  (* T Y + Y T = -Qh, ascending columns since T is upper triangular. *)
  let y = Cmat.create n n in
  for k = 0 to n - 1 do
    let rhs =
      Array.init n (fun i ->
          let acc = ref (Complex.neg (Cmat.get qh i k)) in
          for j = 0 to k - 1 do
            acc := Complex.sub !acc (Complex.mul (Cmat.get t j k) (Cmat.get y i j))
          done;
          !acc)
    in
    Cmat.set_col y k (tri_shifted_solve t (Cmat.get t k k) rhs)
  done;
  Cmat.re (Cmat.mul u (Cmat.mul y (Cmat.conj_transpose u)))

let solve_cross (a : Mat.t) (qm : Mat.t) = solve_cross_with (factor_general a) qm

(* Residual norms, used by the tests. *)
let lyapunov_residual a x q =
  Mat.frobenius (Mat.add (Mat.add (Mat.mul a x) (Mat.mul x (Mat.transpose a))) q)

let descriptor_residual ~e ~a x q =
  Mat.frobenius
    (Mat.add
       (Mat.add
          (Mat.mul a (Mat.mul x (Mat.transpose e)))
          (Mat.mul e (Mat.mul x (Mat.transpose a))))
       q)

let sylvester_cross_residual a x q =
  Mat.frobenius (Mat.add (Mat.add (Mat.mul a x) (Mat.mul x a)) q)
