(** Frequency responses and response-error metrics.

    [eval] is the naive per-point reference (fresh factorisation, boxed
    complex fold); [sweep] and the streaming comparison helpers route
    through {!Sweep_engine}, so grids cost one symbolic analysis (or one
    Hessenberg reduction) plus a cheap per-point replay, fanned across a
    domain pool. *)

open Pmtbr_la

val eval : Dss.t -> Complex.t -> Cmat.t
(** [eval sys s] is the transfer matrix [H(s) = C (sE - A)^{-1} B]
    (outputs x inputs).  One-shot: factors [(sE - A)] from scratch. *)

val eval_jw : Dss.t -> float -> Cmat.t
(** [eval_jw sys omega] is [eval sys (j omega)]. *)

val sweep : ?workers:int -> Dss.t -> float array -> Cmat.t array
(** Responses over a grid of frequencies (rad/s), through the two-tier
    {!Sweep_engine} (plan prepared against the first grid point).  The
    result is a pure function of [(sys, omegas)] — bitwise-identical for
    every worker count. *)

val sweep_naive : Dss.t -> float array -> Cmat.t array
(** The pre-engine path: [Array.map (eval_jw sys)].  Kept as the
    accuracy reference for the engine's property tests and benches. *)

val entry_series : Cmat.t array -> int -> int -> Complex.t array
(** Entry (i, j) of each response in a sweep. *)

(** {1 Streaming error metrics}

    One {!error_stream} accumulates every metric below over a sequence of
    (reference, approximation) response pairs, so verification loops can
    compare sweeps point by point without materialising either array.
    The readouts are exactly equal to the array-based metrics fed the
    same pairs in the same order. *)

type error_stream

val error_stream : ?i:int -> ?j:int -> unit -> error_stream
(** Fresh accumulator; [(i, j)] (default [(0, 0)]) selects the entry for
    the real-part metrics. *)

val stream_add : error_stream -> ref_:Cmat.t -> apx:Cmat.t -> unit
(** Fold one response pair into the accumulator.  Raises
    [Invalid_argument] when the shapes differ. *)

val stream_max_abs_error : error_stream -> float
val stream_max_rel_error : error_stream -> float
val stream_rms_error : error_stream -> float
val stream_max_real_part_error : error_stream -> float
val stream_max_real_part_rel_error : error_stream -> float

val compare_sweep :
  ?workers:int -> ?i:int -> ?j:int -> Dss.t -> float array -> ref_:Cmat.t array -> error_stream
(** [compare_sweep sys omegas ~ref_] sweeps [sys] over [omegas] through
    the engine, streaming each response against [ref_] — the model's
    responses are never held as an array.  Raises [Invalid_argument] when
    the grid and reference lengths differ. *)

(** {1 Array-based metrics}

    Folds of the stream above over materialised sweeps.  All raise
    [Invalid_argument] (not an [assert], which vanishes in release
    builds) when the sweep lengths differ. *)

val max_abs_error : Cmat.t array -> Cmat.t array -> float
(** Worst-case absolute entrywise difference between two sweeps on the
    same grid. *)

val max_rel_error : Cmat.t array -> Cmat.t array -> float
(** {!max_abs_error} normalised by the largest reference magnitude. *)

val rms_error : Cmat.t array -> Cmat.t array -> float
(** Root-mean-square entrywise error over the sweep. *)

val max_real_part_error : ?i:int -> ?j:int -> Cmat.t array -> Cmat.t array -> float
(** Error restricted to the real part of entry (i, j) — the
    spiral-inductor resistance metric of paper Fig. 7. *)

val max_real_part_rel_error : ?i:int -> ?j:int -> Cmat.t array -> Cmat.t array -> float
(** {!max_real_part_error} normalised by the largest reference real
    part. *)
