(** Two-tier parallel frequency-sweep engine.

    Every accuracy number in the repo flows through a sweep — evaluating
    [H(s) = C (sE - A)^{-1} B] over a frequency grid — so this is the
    inference path of the codebase.  A sweep {!prepare}s a plan once per
    system and then evaluates grid points through it:

    - {b Sparse full models} keep one {!Pmtbr_sparse.Shifted} pencil with
      the symbolic analysis (pattern assembly, fill-reducing ordering,
      elimination structure) done once; each grid point pays only a
      numeric refactorisation replay, exactly as the sampling stage does
      in [Shift_engine].  [C * z] is folded through {!Pmtbr_la.Par_kernel}
      on a realified column block instead of the boxed [Mat.get] inner
      loop of the naive [Freq.eval].

    - {b Dense reduced models} are reduced once to Hessenberg-triangular
      form [Q^T (sE - A) Z = s T - H] by real orthogonal transforms; each
      grid point then costs one O(q^2) Hessenberg elimination and back
      substitution instead of an O(q^3) dense LU.

    Grid points fan out across an OCaml 5 domain pool under the same
    shape-only bitwise worker-invariance contract as [Shift_engine] and
    [Par_kernel]: each response is a pure function of (plan, s) — never of
    the worker count, chunk size or scheduling — and results are
    assembled in grid order.  CI enforces serial == parallel bitwise. *)

open Pmtbr_la

type t
(** An evaluation plan: the reusable per-system state (shared pencil
    handle, or Hessenberg-triangular factors).  Immutable after
    {!prepare} — safe to share across domains and sweeps. *)

type tier = Replay | Hessenberg

type stats = {
  points : int;  (** grid points evaluated *)
  workers : int;  (** pool size actually used *)
  factor_s : float;  (** summed per-point factorisation time *)
  solve_s : float;  (** summed solve + output-fold time *)
  wall_s : float;  (** wall clock of the whole sweep *)
  busy_s : float array;  (** per-worker busy time *)
}

val prepare : ?template:Complex.t -> Dss.t -> t
(** Build the plan.  For sparse systems [template] (default [j1]) picks
    the shift whose factorisation serves as the structural template for
    the replays; for dense systems it is ignored and the one-time
    Hessenberg-triangular reduction runs instead. *)

val tier : t -> tier
(** Which tier {!prepare} chose ([Replay] for sparse systems,
    [Hessenberg] for dense ones). *)

val eval : t -> Complex.t -> Cmat.t
(** [eval plan s] is [H(s)] through the plan (outputs x inputs).  A
    serial map of [eval] over the grid is the bitwise reference for
    {!sweep} at any worker count. *)

val eval_jw : t -> float -> Cmat.t
(** [eval_jw plan omega] is [eval plan (j omega)]. *)

val sweep :
  ?workers:int -> ?oversubscribe:bool -> ?chunk:int -> t -> float array -> Cmat.t array
(** Responses over a grid of frequencies (rad/s), evaluated in parallel.
    Bitwise-identical to [Array.map (eval_jw plan) omegas] for every
    worker count.  [oversubscribe] lifts the hardware cap on the pool
    (tests use it to force real multi-domain runs anywhere); [chunk] is
    the queue grab size. *)

val sweep_stats :
  ?workers:int ->
  ?oversubscribe:bool ->
  ?chunk:int ->
  t ->
  float array ->
  Cmat.t array * stats
(** {!sweep} plus pool timing. *)

val fold :
  ?workers:int ->
  ?oversubscribe:bool ->
  ?chunk:int ->
  t ->
  float array ->
  init:'a ->
  f:('a -> int -> Cmat.t -> 'a) ->
  'a
(** Streaming sweep: evaluates the grid in bounded windows (points still
    fan out across the pool inside each window) and folds [f acc k h_k]
    serially in grid order, so the full [Cmat.t array] is never
    materialised.  The fold order — and therefore the result — is
    worker-invariant. *)

val iteri :
  ?workers:int ->
  ?oversubscribe:bool ->
  ?chunk:int ->
  t ->
  float array ->
  f:(int -> Cmat.t -> unit) ->
  unit
(** {!fold} specialised to side effects. *)

val utilisation : stats -> float
(** Mean busy fraction of the pool, in [0, 1]. *)

val default_workers : unit -> int
(** The hardware pool cap, [Domain.recommended_domain_count ()]. *)
