(* Descriptor state-space systems E dx/dt = A x + B u, y = C x.

   Two concrete representations share one interface: full models straight
   out of MNA keep E and A sparse; reduced models are small and dense.  All
   reduction algorithms only need the operations below (shifted solves,
   multiplication by E/A, and the port matrices). *)

open Pmtbr_la
open Pmtbr_sparse

type t =
  | Sparse of {
      e : Triplet.t;
      a : Triplet.t;
      pencil : Shifted.pencil;
      b : Mat.t;
      c : Mat.t;
      n : int;
    }
  | Dense of { e : Mat.t; a : Mat.t; b : Mat.t; c : Mat.t }

let of_mna (m : Pmtbr_circuit.Mna.system) =
  Sparse
    {
      e = m.Pmtbr_circuit.Mna.e;
      a = m.Pmtbr_circuit.Mna.a;
      pencil = Shifted.pencil ~e:m.Pmtbr_circuit.Mna.e ~a:m.Pmtbr_circuit.Mna.a;
      b = m.Pmtbr_circuit.Mna.b;
      c = m.Pmtbr_circuit.Mna.c;
      n = m.Pmtbr_circuit.Mna.n;
    }

let of_netlist nl = of_mna (Pmtbr_circuit.Mna.stamp nl)
let of_dense ~e ~a ~b ~c = Dense { e; a; b; c }

(* Standard (E = I) dense system. *)
let of_standard ~a ~b ~c = Dense { e = Mat.identity a.Mat.rows; a; b; c }

let order = function Sparse { n; _ } -> n | Dense { a; _ } -> a.Mat.rows
let inputs = function Sparse { b; _ } | Dense { b; _ } -> b.Mat.cols
let outputs = function Sparse { c; _ } | Dense { c; _ } -> c.Mat.rows
let b_matrix = function Sparse { b; _ } | Dense { b; _ } -> b
let c_matrix = function Sparse { c; _ } | Dense { c; _ } -> c

(* Dense copies of E and A (used by the exact-TBR baseline; full models are
   at most a couple of thousand states in the experiments). *)
let e_dense = function Sparse { e; _ } -> Triplet.to_dense e | Dense { e; _ } -> e
let a_dense = function Sparse { a; _ } -> Triplet.to_dense a | Dense { a; _ } -> a

(* E * V and A * V for dense V: congruence projection ingredients. *)
let apply_e sys (v : Mat.t) =
  match sys with
  | Sparse { e; _ } -> Triplet.mul_dense e v
  | Dense { e; _ } -> Mat.mul e v

let apply_a sys (v : Mat.t) =
  match sys with
  | Sparse { a; _ } -> Triplet.mul_dense a v
  | Dense { a; _ } -> Mat.mul a v

(* A reusable factorisation of (sE - A).  Fz is the unboxed complex factor
   produced by the multi-shift replay — the production path of the
   sampling engine. *)
type shifted_factor =
  | Fs of Shifted.factor * int
  | Fz of Shifted.zfactor * int
  | Fd of Cmat.lu * int

let factor_shifted sys (s : Complex.t) =
  match sys with
  | Sparse { pencil; n; _ } -> Fs (Shifted.factorize pencil s, n)
  | Dense { e; a; _ } ->
      let m = Cmat.axpby_real ~alpha:s e ~beta:{ Complex.re = -1.0; im = 0.0 } a in
      Fd (Cmat.lu m, a.Mat.rows)

(* Solve (sE - A) X = R for a dense real right-hand side; result is complex,
   one column per column of R. *)
let solve_factored f (r : Mat.t) : Complex.t array array =
  match f with
  | Fs (fact, n) ->
      assert (r.Mat.rows = n);
      Shifted.solve_dense fact r
  | Fz (fact, n) ->
      assert (r.Mat.rows = n);
      Shifted.zsolve_dense fact r
  | Fd (lu, n) ->
      assert (r.Mat.rows = n);
      Array.init r.Mat.cols (fun j ->
          let rhs = Array.init n (fun i -> { Complex.re = Mat.get r i j; im = 0.0 }) in
          Cmat.lu_solve_vec lu rhs)

(* Solve (sE - A)^H X = R. *)
let solve_factored_hermitian f (r : Mat.t) : Complex.t array array =
  match f with
  | Fs (fact, n) ->
      assert (r.Mat.rows = n);
      Shifted.solve_hermitian_dense fact r
  | Fz (fact, n) ->
      assert (r.Mat.rows = n);
      Shifted.zsolve_hermitian_dense fact r
  | Fd (lu, n) ->
      (* (sE-A)^H x = r  <=>  (sE-A)^T conj(x) = conj(r); r real here.  We
         lack a transposed dense LU solve, so refactor the conjugate
         transpose: cheap at reduced-model sizes. *)
      ignore lu;
      ignore n;
      invalid_arg "solve_factored_hermitian: use solve_hermitian on the system"

(* ------------------------------------------------------------------ *)
(* Multi-shift solver: symbolic work shared across all sample shifts    *)
(* ------------------------------------------------------------------ *)

(* For sparse systems this wraps [Shifted.prepare]: pattern assembly,
   fill-reducing ordering and elimination analysis happen once, and every
   shift pays only a numeric refactorisation.  Dense (reduced) systems are
   small enough that a fresh LU per shift is the whole cost.  The handle is
   immutable after creation, so concurrent [multi_factor] calls from
   different domains are safe. *)
type multi_shift =
  | Ms of Shifted.multi * int
  | Md of { e : Mat.t; a : Mat.t }

let multi_shift ?(template = { Complex.re = 0.0; im = 1.0 }) sys =
  match sys with
  | Sparse { pencil; n; _ } -> Ms (Shifted.prepare pencil ~template, n)
  | Dense { e; a; _ } -> Md { e; a }

(* [hermitian] asks for a factor prepared for [(sE - A)^H x = r] solves:
   sparse factors serve both sides (the LU of M solves M^H via conjugated
   transposed solves), while the dense LU must factor the conjugate
   transpose itself. *)
let multi_factor ms ~hermitian (s : Complex.t) =
  match ms with
  | Ms (m, n) -> Fz (Shifted.refactor_z m s, n)
  | Md { e; a } ->
      let m = Cmat.axpby_real ~alpha:s e ~beta:{ Complex.re = -1.0; im = 0.0 } a in
      let m = if hermitian then Cmat.conj_transpose m else m in
      Fd (Cmat.lu m, a.Mat.rows)

let multi_solve_factored f ~hermitian (r : Mat.t) : Complex.t array array =
  match f with
  | Fs (fact, n) ->
      assert (r.Mat.rows = n);
      if hermitian then Shifted.solve_hermitian_dense fact r else Shifted.solve_dense fact r
  | Fz (fact, n) ->
      assert (r.Mat.rows = n);
      if hermitian then Shifted.zsolve_hermitian_dense fact r else Shifted.zsolve_dense fact r
  | Fd (lu, n) ->
      (* a hermitian factor already holds the LU of (sE - A)^H *)
      assert (r.Mat.rows = n);
      Array.init r.Mat.cols (fun j ->
          let rhs = Array.init n (fun i -> { Complex.re = Mat.get r i j; im = 0.0 }) in
          Cmat.lu_solve_vec lu rhs)

(* One-shot solves. *)
let shifted_solve sys s = solve_factored (factor_shifted sys s) (b_matrix sys)

let shifted_solve_rhs sys s r = solve_factored (factor_shifted sys s) r

(* Solve (sE - A)^H X = R directly from the system. *)
let shifted_solve_hermitian sys s (r : Mat.t) =
  match sys with
  | Sparse _ -> solve_factored_hermitian (factor_shifted sys s) r
  | Dense { e; a; _ } ->
      let m = Cmat.axpby_real ~alpha:s e ~beta:{ Complex.re = -1.0; im = 0.0 } a in
      let mh = Cmat.conj_transpose m in
      let lu = Cmat.lu mh in
      Array.init r.Mat.cols (fun j ->
          let rhs = Array.init r.Mat.rows (fun i -> { Complex.re = Mat.get r i j; im = 0.0 }) in
          Cmat.lu_solve_vec lu rhs)

(* Convert to standard form (A' = E^{-1} A etc.); requires invertible E.
   Only used by the exact-TBR baseline. *)
let to_standard sys =
  let e = e_dense sys and a = a_dense sys in
  let lu =
    try Mat.lu e
    with Mat.Singular _ -> invalid_arg "Dss.to_standard: singular E"
  in
  let a' = Mat.lu_solve lu a in
  let b' = Mat.lu_solve lu (b_matrix sys) in
  (a', b', c_matrix sys)

exception Not_rc_like

(* Symmetrised standard form for RC-structured systems (diagonal SPD E,
   symmetric A): with x~ = E^{1/2} x,

     A~ = E^{-1/2} A E^{-1/2} (symmetric),  B~ = E^{-1/2} B,  C~ = C E^{-1/2}

   so that a current-driven RC network has C~ = B~^T: the paper's symmetric
   case, in which both Gramians coincide and the singular values of the
   PMTBR sample matrix estimate the Hankel singular values directly.
   Raises [Not_rc_like] when E is not diagonal positive. *)
let symmetrize_rc sys =
  match sys with
  | Dense _ -> raise Not_rc_like
  | Sparse { e; a; b; c; n; _ } ->
      let d = Array.make n 0.0 in
      List.iter
        (fun (i, j, v) ->
          if i <> j && v <> 0.0 then raise Not_rc_like;
          if i = j then d.(i) <- d.(i) +. v)
        (Triplet.entries e);
      Array.iter (fun v -> if v <= 0.0 then raise Not_rc_like) d;
      let dinv_sqrt = Array.map (fun v -> 1.0 /. sqrt v) d in
      let a' = Triplet.create n n in
      List.iter
        (fun (i, j, v) -> Triplet.add a' i j (v *. dinv_sqrt.(i) *. dinv_sqrt.(j)))
        (Triplet.entries a);
      (* keep the frame square even if the last row/col is empty *)
      Triplet.add a' (n - 1) (n - 1) 0.0;
      let e' = Triplet.create n n in
      for i = 0 to n - 1 do
        Triplet.add e' i i 1.0
      done;
      let b' = Mat.init n b.Mat.cols (fun i j -> dinv_sqrt.(i) *. Mat.get b i j) in
      let c' = Mat.init c.Mat.rows n (fun i j -> Mat.get c i j *. dinv_sqrt.(j)) in
      Sparse { e = e'; a = a'; pencil = Shifted.pencil ~e:e' ~a:a'; b = b'; c = c'; n }

(* Congruence (Galerkin) projection with a single orthonormal basis V:
   reduced system (V^T E V, V^T A V, V^T B, C V). *)
let project_congruence sys (v : Mat.t) =
  let vt = Mat.transpose v in
  Dense
    {
      e = Mat.mul vt (apply_e sys v);
      a = Mat.mul vt (apply_a sys v);
      b = Mat.mul vt (b_matrix sys);
      c = Mat.mul (c_matrix sys) v;
    }

(* Oblique (Petrov-Galerkin) projection with distinct left/right bases. *)
let project_oblique sys ~(w : Mat.t) ~(v : Mat.t) =
  let wt = Mat.transpose w in
  Dense
    {
      e = Mat.mul wt (apply_e sys v);
      a = Mat.mul wt (apply_a sys v);
      b = Mat.mul wt (b_matrix sys);
      c = Mat.mul (c_matrix sys) v;
    }
