(** Passivity-preserving balanced truncation for reciprocal RC/RLCk
    descriptor systems — the one-Gramian symmetric scheme (Tanji,
    arXiv 1811.04630).

    A current-driven MNA system satisfies [J E J = E], [J A J = A]{^ T},
    [J B = B] for the signature [J = diag(I_nodes, -I_ind)], which makes
    the observability Gramian the J-reflection of the controllability
    one: [Y = J Xc J].  One low-rank Lyapunov solve therefore delivers
    both factors ([Zo = J Zc]), {b halving the shifted-solve columns}
    versus the two-sided {!Tbr_lr} run — compare [col_solves], the honest
    unit (the Ritz solves for shift selection are shared overhead both
    methods pay).  Balancing reduces to a symmetric eigendecomposition of
    [Zc]{^ T}[ (J E) Zc] (no SVD), and for RC systems the projection is a
    pure congruence, so the reduced model is {b provably passive} and
    {!synthesize} can realise it back into an R/C netlist.

    Determinism: the same worker-invariance contract as {!Tbr_lr} — the
    ADI/Krylov iterations are serial and the parallel kernels are bitwise
    worker-invariant. *)

open Pmtbr_la

type t = {
  rom : Dss.t;  (** reduced model *)
  hsv : float array;  (** singular values [|l_i|] of the Hankel core, descending *)
  order : int;  (** reduced order actually used *)
}

type stats = {
  gramian : Lr_lyap.stats;  (** the single Gramian solve *)
  shifts : Complex.t array;  (** ADI shifts used (empty for Krylov) *)
  symbolic : int;  (** symbolic analyses (1 by contract; 0 when [?ms] reused) *)
  refactorizations : int;  (** numeric refactorisations, one per distinct shift *)
  solves : int;  (** shifted-solve calls through the shared handle *)
  col_solves : int;
      (** right-hand-side columns across those solves — roughly half of
          the {!Tbr_lr} figure on the same system *)
  wall_s : float;
}

val reduce_stats :
  ?order:int ->
  ?tol:float ->
  ?shifts:Complex.t array ->
  ?num_shifts:int ->
  ?adi_tol:float ->
  ?max_steps:int ->
  ?stop:Lr_lyap.stop ->
  ?meth:Tbr_lr.meth ->
  ?inductors:int ->
  ?ms:Dss.multi_shift ->
  ?workers:int ->
  Dss.t ->
  t * stats
(** One-Gramian balanced truncation.  [inductors] (default [0]) is the
    number of trailing inductor-current states (the
    {!Pmtbr_circuit.Netlist.inductor_count} of the stamped netlist);
    [0] is the RC case.  Order selection mirrors {!Tbr_lr.reduce_stats}:
    one of [order] or [tol], neither truncates at numerical rank.
    [?ms] reuses an already prepared multi-shift handle (the serve layer
    keeps one per cached network).
    @raise Invalid_argument if [C <> B]{^ T} (the system is not
    reciprocal), if the Hankel core comes out non-symmetric (wrong
    [inductors] or non-symmetric [E]), if both [order] and [tol] are
    given, or if the Gramian factor is empty. *)

val reduce :
  ?order:int ->
  ?tol:float ->
  ?shifts:Complex.t array ->
  ?num_shifts:int ->
  ?adi_tol:float ->
  ?max_steps:int ->
  ?stop:Lr_lyap.stop ->
  ?meth:Tbr_lr.meth ->
  ?inductors:int ->
  ?ms:Dss.multi_shift ->
  ?workers:int ->
  Dss.t ->
  t
(** {!reduce_stats} without the counters. *)

val synthesize : ?drop_tol:float -> ?workers:int -> t -> Pmtbr_circuit.Spice_ir.t
(** Realise the reduced model as an R/C netlist through
    {!Pmtbr_circuit.Synth.realize}.  Succeeds for RC-structured
    reductions ([inductors = 0]); RLCk reductions keep inductor states
    and are not synthesisable as R/C nets.
    @raise Pmtbr_circuit.Synth.Unrealizable otherwise. *)

val positive_real_residual : Dss.t -> Complex.t array -> float
(** Worst passivity violation over the sample points: the most negative
    eigenvalue of the hermitian part [(H(s) + H(s)]{^ H}[)/2], clamped at
    zero — [0.] means the response is positive-real on every sampled
    point.  Points typically come from
    {!Pmtbr_core.Sampling.points} on the band of interest. *)
