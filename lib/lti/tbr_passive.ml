(* Passivity-preserving balanced truncation for reciprocal RC/RLCk
   descriptor systems — the one-Gramian scheme of Tanji
   (arXiv 1811.04630).

   A current-driven MNA system with states [node voltages; inductor
   currents] has E symmetric block-diagonal, A with the skew incidence
   blocks, C = B^T, and the signature J = diag(I_nodes, -I_ind)
   satisfies

       J E J = E,   J A J = A^T,   J B = B.

   Substituting into the observability Lyapunov equation shows
   Y = J Xc J: the observability Gramian IS the (J-reflected)
   controllability Gramian, so one low-rank solve delivers both factors —
   Zo = J Zc — halving the shifted-solve columns of the two-sided
   Tbr_lr run on the same system (the Ritz solves for shift selection
   are shared and cost both methods the same; compare col_solves, not
   call counts).

   Balancing then needs no SVD: the Hankel core
   M = Zo^T E Zc = Zc^T (J E) Zc is symmetric ((JE)^T = E J = J E since
   E is block-diagonal with respect to the signature), so an eigen-
   decomposition M = V L V^T gives the singular values |l_i| and the
   projection bases

       t_r = Zc V_q |L_q|^{-1/2},   t_l = (J Zc) V_q S_q |L_q|^{-1/2}

   with S = diag(sign l_i); t_l^T E t_r = I by construction.  For RC
   systems (no inductors, J = I) M is positive semidefinite, t_l = t_r,
   and the projection is a pure congruence — E_r stays PSD, A_r stays
   NSD, C_r = B_r^T, so the reduced model is provably passive and
   {!synthesize} can realise it as an R/C netlist.  For RLCk the
   projection preserves the J-structure instead (W = J V S), keeping the
   reduced model reciprocal; passivity is checked a posteriori with
   {!positive_real_residual}. *)

open Pmtbr_la

type t = { rom : Dss.t; hsv : float array; order : int }

type stats = {
  gramian : Lr_lyap.stats;
  shifts : Complex.t array;
  symbolic : int;
  refactorizations : int;
  solves : int;
  col_solves : int;
  wall_s : float;
}

let now () = Unix.gettimeofday ()

(* J V: negate the trailing [inductors] rows (states are nodes first,
   then inductor currents — the Mna stamp order). *)
let apply_j ~inductors (v : Mat.t) =
  if inductors = 0 then v
  else
    Mat.init v.Mat.rows v.Mat.cols (fun i j ->
        let x = Mat.get v i j in
        if i >= v.Mat.rows - inductors then -.x else x)

let check_reciprocal sys =
  let b = Dss.b_matrix sys and c = Dss.c_matrix sys in
  let scale = Float.max (Mat.max_abs b) 1e-300 in
  if
    b.Mat.rows <> c.Mat.cols
    || b.Mat.cols <> c.Mat.rows
    || Mat.max_abs (Mat.sub c (Mat.transpose b)) > 1e-12 *. scale
  then
    invalid_arg
      "Tbr_passive: C <> B^T — the one-Gramian scheme needs a reciprocal \
       (current-driven MNA) system"

let asym m =
  let worst = ref 0.0 in
  for i = 0 to m.Mat.rows - 1 do
    for j = i + 1 to m.Mat.cols - 1 do
      worst := Float.max !worst (Float.abs (Mat.get m i j -. Mat.get m j i))
    done
  done;
  !worst

let reduce_stats ?order ?tol ?shifts ?num_shifts ?(adi_tol = 1e-10) ?max_steps
    ?stop ?(meth = Tbr_lr.Adi) ?(inductors = 0) ?ms ?workers sys =
  let t0 = now () in
  let n = Dss.order sys in
  if inductors < 0 || inductors > n then
    invalid_arg "Tbr_passive: inductors out of range";
  check_reciprocal sys;
  let solve, counters = Lyap_ops.shared_solver ?ms sys in
  let ctrl_ops, obs_ops = Lyap_ops.ops_of_dss solve sys in
  (* structural probe on one deterministic vector: the scheme is only
     valid when J E J = E and J A J = A^T — a wrong [inductors] split
     breaks both even when E is diagonal (where the Hankel-core symmetry
     check below cannot fire) *)
  let v = Mat.of_fun n 1 (fun i _ -> 1.0 +. (float_of_int (i mod 17) /. 17.0)) in
  let jv = apply_j ~inductors v in
  let jaj = apply_j ~inductors (Dss.apply_a sys jv) in
  let at_v = obs_ops.Lr_lyap.mul_a v in
  let jej = apply_j ~inductors (Dss.apply_e sys jv) in
  let e_v = Dss.apply_e sys v in
  let bad m1 m2 =
    Mat.max_abs (Mat.sub m1 m2)
    > 1e-8 *. Float.max (Mat.max_abs m2) 1e-300
  in
  if bad jaj at_v || bad jej e_v then
    invalid_arg
      "Tbr_passive: system is not J-symmetric (check ~inductors and the \
       E/A structure)";
  let b = Dss.b_matrix sys in
  let shifts_used =
    match meth with
    | Tbr_lr.Extended_krylov -> [||]
    | Tbr_lr.Adi -> (
        match shifts with
        | Some s -> Array.copy s
        | None -> Lr_lyap.penzl_shifts ?num:num_shifts ctrl_ops b)
  in
  let zc, st =
    match meth with
    | Tbr_lr.Adi ->
        Lr_lyap.lr_adi ~shifts:shifts_used ~tol:adi_tol ?max_steps ?stop
          ctrl_ops b
    | Tbr_lr.Extended_krylov -> (
        match stop with
        | Some (Lr_lyap.Band_residual _) ->
            invalid_arg
              "Tbr_passive: band-limited stopping requires the ADI engine"
        | _ -> Lr_lyap.extended_krylov ~tol:adi_tol ?max_steps ctrl_ops b)
  in
  if zc.Mat.cols = 0 then invalid_arg "Tbr_passive: empty Gramian factor";
  (* one Gramian, both factors: Zo = J Zc *)
  let jz = apply_j ~inductors zc in
  let m_raw =
    Par_kernel.mul ?workers (Mat.transpose jz) (Dss.apply_e sys zc)
  in
  (* exact symmetry of M is structural ((JE)^T = JE), independent of the
     solver tolerance — a large asymmetry means the system is not
     J-symmetric (wrong [inductors], or E not symmetric) *)
  if asym m_raw > 1e-8 *. Float.max (Mat.max_abs m_raw) 1e-300 then
    invalid_arg
      "Tbr_passive: Zc^T (J E) Zc is not symmetric — system is not \
       J-symmetric (check ~inductors and the E/A structure)";
  let m = Mat.symmetrize m_raw in
  let values, vectors = Eig_sym.decompose m in
  (* balance by |l|: indices sorted by magnitude, descending *)
  let idx = Array.init (Array.length values) Fun.id in
  Array.sort
    (fun i j -> compare (Float.abs values.(j)) (Float.abs values.(i)))
    idx;
  let hsv = Array.map (fun i -> Float.abs values.(i)) idx in
  let max_rank =
    let smax = if Array.length hsv = 0 then 0.0 else hsv.(0) in
    let r = ref 0 in
    Array.iter (fun s -> if s > 1e-13 *. smax && s > 0.0 then incr r) hsv;
    !r
  in
  let q =
    match (order, tol) with
    | Some q, None -> min q max_rank
    | None, Some t -> min (Tbr.order_for_tolerance hsv t) max_rank
    | None, None -> max_rank
    | Some _, Some _ ->
        invalid_arg "Tbr_passive.reduce: give either ~order or ~tol"
  in
  let q = max q 1 in
  (* t_r = Zc V_q |L_q|^{-1/2}, t_l = (J Zc) V_q S_q |L_q|^{-1/2} *)
  let vq = Mat.init vectors.Mat.rows q (fun i j -> Mat.get vectors i idx.(j)) in
  let scale_cols mat cols =
    Mat.init mat.Mat.rows q (fun i j -> Mat.get mat i j *. cols.(j))
  in
  let inv_sqrt = Array.init q (fun j -> 1.0 /. sqrt hsv.(j)) in
  let signed =
    Array.init q (fun j ->
        (if values.(idx.(j)) < 0.0 then -1.0 else 1.0) *. inv_sqrt.(j))
  in
  let t_r = scale_cols (Par_kernel.mul ?workers zc vq) inv_sqrt in
  let t_l = scale_cols (Par_kernel.mul ?workers jz vq) signed in
  let rom = Dss.project_oblique sys ~w:t_l ~v:t_r in
  ( { rom; hsv; order = q },
    {
      gramian = st;
      shifts = shifts_used;
      symbolic = counters.Lyap_ops.symbolic;
      refactorizations = counters.Lyap_ops.numeric;
      solves = counters.Lyap_ops.solve_count;
      col_solves = counters.Lyap_ops.col_solves;
      wall_s = now () -. t0;
    } )

let reduce ?order ?tol ?shifts ?num_shifts ?adi_tol ?max_steps ?stop ?meth
    ?inductors ?ms ?workers sys =
  fst
    (reduce_stats ?order ?tol ?shifts ?num_shifts ?adi_tol ?max_steps ?stop
       ?meth ?inductors ?ms ?workers sys)

let synthesize ?drop_tol ?workers t =
  let rom = t.rom in
  Pmtbr_circuit.Synth.realize ?drop_tol ?workers ~e:(Dss.e_dense rom)
    ~a:(Dss.a_dense rom) ~b:(Dss.b_matrix rom) ~c:(Dss.c_matrix rom) ()

(* Worst positive-real violation of the hermitian part of H(s) over the
   sample points: the most negative eigenvalue of H + H^H, clamped at 0.
   The 2p x 2p real embedding [[Re K, -Im K]; [Im K, Re K]] of the
   hermitian K has K's eigenvalues (each twice), so the symmetric real
   eigensolver suffices. *)
let positive_real_residual sys points =
  let worst = ref 0.0 in
  Array.iter
    (fun s ->
      let h = Freq.eval sys s in
      let p = h.Cmat.rows in
      let re = Cmat.re h and im = Cmat.im h in
      (* K = (H + H^H)/2: Re K = sym(Re H), Im K = skew(Im H) *)
      let embed =
        Mat.of_fun (2 * p) (2 * p) (fun i j ->
            let kre i j = 0.5 *. (Mat.get re i j +. Mat.get re j i) in
            let kim i j = 0.5 *. (Mat.get im i j -. Mat.get im j i) in
            match (i < p, j < p) with
            | true, true -> kre i j
            | true, false -> -.kim i (j - p)
            | false, true -> kim (i - p) j
            | false, false -> kre (i - p) (j - p))
      in
      let ev = Eig_sym.eigenvalues embed in
      let lmin = ev.(Array.length ev - 1) in
      if -.lmin > !worst then worst := -.lmin)
    points;
  !worst
