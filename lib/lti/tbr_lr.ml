(* Low-rank square-root balanced truncation on top of Lr_lyap.

   The load-bearing piece is the shared solver: both Gramian sides are
   driven through ONE prepared Dss.multi_shift handle, so the symbolic
   analysis of the sparse pencil is paid once and every distinct ADI shift
   costs exactly one numeric refactorisation.  The trick that makes the
   sharing work is on the observability side: its equation needs
   (A^T + p E^T)^{-1}, i.e. a hermitian solve of (s E - A) at s = -conj p —
   so by handing the observability solver the CONJUGATED shift list, both
   sides request factors at the identical keys s = -p and the cache hits. *)

open Pmtbr_la
open Pmtbr_sparse

type t = { rom : Dss.t; hsv : float array; order : int }

type meth = Adi | Extended_krylov

type stats = {
  ctrl : Lr_lyap.stats;
  obs : Lr_lyap.stats;
  shifts : Complex.t array;
  symbolic : int;
  refactorizations : int;
  solves : int;
  wall_s : float;
}

let now () = Unix.gettimeofday ()

type counters = {
  mutable symbolic : int;
  mutable numeric : int;
  mutable solve_count : int;
}

(* Shifted solves for both sides through one multi-shift handle.

   Factor cache key: the shift s of (sE - A), plus the hermitian flag only
   where the factor itself depends on it.  Sparse zfactors are
   side-agnostic (the hermitian dispatch happens at solve time), so both
   sides share one factor per shift; the dense fallback bakes the
   conjugate-transpose into the LU, so dense keys carry the flag. *)
let shared_solver sys =
  let counters = { symbolic = 0; numeric = 0; solve_count = 0 } in
  let handle = ref None in
  let get_handle s =
    match !handle with
    | Some h -> h
    | None ->
        counters.symbolic <- counters.symbolic + 1;
        let h = Dss.multi_shift ~template:s sys in
        handle := Some h;
        h
  in
  let sparse = match sys with Dss.Sparse _ -> true | Dss.Dense _ -> false in
  let cache : (Complex.t * bool, Dss.shifted_factor) Hashtbl.t =
    Hashtbl.create 16
  in
  let solve ~hermitian s r =
    (* normalise -0. components so equal shifts hash equally *)
    let s = { Complex.re = s.Complex.re +. 0.0; im = s.Complex.im +. 0.0 } in
    let key = (s, (not sparse) && hermitian) in
    let f =
      match Hashtbl.find_opt cache key with
      | Some f -> f
      | None ->
          let h = get_handle s in
          counters.numeric <- counters.numeric + 1;
          let f = Dss.multi_factor h ~hermitian:(snd key) s in
          Hashtbl.add cache key f;
          f
    in
    counters.solve_count <- counters.solve_count + 1;
    Dss.multi_solve_factored f ~hermitian r
  in
  (solve, counters)

let neg_cols = Array.map (Array.map Complex.neg)

let mat_of_cols n (cols : float array array) =
  Mat.init n (Array.length cols) (fun i j -> cols.(j).(i))

(* E and E^T solves: one real factorisation serves both directions (the
   sparse LU exposes transposed solves on the same factor). *)
let e_solvers sys =
  match sys with
  | Dss.Dense { e; _ } ->
      let lu_of m =
        lazy
          (try Mat.lu m
           with Mat.Singular _ -> invalid_arg "Tbr_lr: singular E")
      in
      let lu = lu_of e and lut = lu_of (Mat.transpose e) in
      ( (fun r -> Mat.lu_solve (Lazy.force lu) r),
        fun r -> Mat.lu_solve (Lazy.force lut) r )
  | Dss.Sparse { e; n; _ } ->
      let fact =
        lazy
          (try Sparse_lu.R.factorize (Csc.of_triplet e)
           with Sparse_lu.R.Singular _ -> invalid_arg "Tbr_lr: singular E")
      in
      let with_cols solve1 (r : Mat.t) =
        mat_of_cols n
          (Array.init r.Mat.cols (fun j ->
               solve1 (Lazy.force fact) (Mat.col r j)))
      in
      ( with_cols Sparse_lu.R.solve_vec,
        with_cols Sparse_lu.R.solve_transposed_vec )

(* The two Lr_lyap operator views of one descriptor system.

   Controllability:  (A + pE)^{-1} R = -(sE - A)^{-1} R        at s = -p.
   Observability:    (A^T + pE^T)^{-1} R = -(sE - A)^{-H} R    at s = -conj p.
   Both map onto the same factor key when the observability side is given
   conjugated shifts — which the callers below always do. *)
let ops_of_dss solve sys =
  let n = Dss.order sys in
  let solve_e, solve_et = e_solvers sys in
  let mul_et, mul_at =
    match sys with
    | Dss.Sparse { e; a; _ } ->
        let et = Triplet.transpose e and at = Triplet.transpose a in
        ((fun v -> Triplet.mul_dense et v), fun v -> Triplet.mul_dense at v)
    | Dss.Dense { e; a; _ } ->
        let et = Mat.transpose e and at = Mat.transpose a in
        (Mat.mul et, Mat.mul at)
  in
  let ctrl =
    {
      Lr_lyap.n;
      mul_e = Dss.apply_e sys;
      mul_a = Dss.apply_a sys;
      solve_shift =
        (fun p r -> neg_cols (solve ~hermitian:false (Complex.neg p) r));
      solve_e;
    }
  in
  let obs =
    {
      Lr_lyap.n;
      mul_e = mul_et;
      mul_a = mul_at;
      solve_shift =
        (fun p r ->
          neg_cols
            (solve ~hermitian:true (Complex.neg (Complex.conj p)) r));
      solve_e = solve_et;
    }
  in
  (ctrl, obs)

let run_side ?shifts ?num_shifts ?(tol = 1e-10) ?max_steps ?stop ~meth ops rhs
    =
  match meth with
  | Adi -> Lr_lyap.lr_adi ?shifts ?num_shifts ~tol ?max_steps ?stop ops rhs
  | Extended_krylov -> (
      match stop with
      | Some (Lr_lyap.Band_residual _) ->
          invalid_arg "Tbr_lr: band-limited stopping requires the ADI engine"
      | _ -> Lr_lyap.extended_krylov ~tol ?max_steps ops rhs)

let controllability_factor ?shifts ?num_shifts ?tol ?max_steps ?stop
    ?(meth = Adi) sys =
  let solve, _ = shared_solver sys in
  let ctrl, _ = ops_of_dss solve sys in
  run_side ?shifts ?num_shifts ?tol ?max_steps ?stop ~meth ctrl
    (Dss.b_matrix sys)

let observability_factor ?shifts ?num_shifts ?tol ?max_steps ?stop
    ?(meth = Adi) sys =
  let solve, _ = shared_solver sys in
  let ctrl, obs = ops_of_dss solve sys in
  let shifts =
    match (meth, shifts) with
    | Adi, None ->
        (* same selection the paired run would use, then conjugated *)
        Some
          (Array.map Complex.conj
             (Lr_lyap.penzl_shifts ?num:num_shifts ctrl (Dss.b_matrix sys)))
    | _, s -> Option.map (Array.map Complex.conj) s
  in
  run_side ?shifts ?num_shifts ?tol ?max_steps ?stop ~meth obs
    (Mat.transpose (Dss.c_matrix sys))

(* Both Gramian factors through one shared handle; the core of every public
   entry point. *)
let gramian_factors ?shifts ?num_shifts ?(adi_tol = 1e-10) ?max_steps ?stop
    ~meth sys =
  let solve, counters = shared_solver sys in
  let ctrl_ops, obs_ops = ops_of_dss solve sys in
  let b = Dss.b_matrix sys and ct = Mat.transpose (Dss.c_matrix sys) in
  let shifts_used =
    match meth with
    | Extended_krylov -> [||]
    | Adi -> (
        match shifts with
        | Some s -> Array.copy s
        | None -> Lr_lyap.penzl_shifts ?num:num_shifts ctrl_ops b)
  in
  let side ops rhs conj_shifts =
    let shifts =
      match meth with
      | Extended_krylov -> None
      | Adi ->
          Some
            (if conj_shifts then Array.map Complex.conj shifts_used
             else shifts_used)
    in
    run_side ?shifts ~tol:adi_tol ?max_steps ?stop ~meth ops rhs
  in
  let zc, st_c = side ctrl_ops b false in
  let zo, st_o = side obs_ops ct true in
  (zc, zo, st_c, st_o, shifts_used, counters)

let hankel_core ?workers sys zc zo =
  Par_kernel.mul ?workers (Mat.transpose zo) (Dss.apply_e sys zc)

let hankel_singular_values ?shifts ?num_shifts ?adi_tol ?max_steps ?stop
    ?(meth = Adi) ?workers sys =
  let zc, zo, _, _, _, _ =
    gramian_factors ?shifts ?num_shifts ?adi_tol ?max_steps ?stop ~meth sys
  in
  Svd.values ?workers (hankel_core ?workers sys zc zo)

let reduce_stats ?order ?tol ?shifts ?num_shifts ?adi_tol ?max_steps ?stop
    ?(meth = Adi) ?workers sys =
  let t0 = now () in
  let zc, zo, st_c, st_o, shifts_used, counters =
    gramian_factors ?shifts ?num_shifts ?adi_tol ?max_steps ?stop ~meth sys
  in
  if zc.Mat.cols = 0 || zo.Mat.cols = 0 then
    invalid_arg "Tbr_lr.reduce: empty Gramian factor";
  let { Svd.u; sigma; v } = Svd.decompose ?workers (hankel_core ?workers sys zc zo) in
  (* order selection mirrors Tbr.reduce *)
  let max_rank =
    let smax = if Array.length sigma = 0 then 0.0 else sigma.(0) in
    let r = ref 0 in
    Array.iter (fun s -> if s > 1e-13 *. smax && s > 0.0 then incr r) sigma;
    !r
  in
  let q =
    match (order, tol) with
    | Some q, None -> min q max_rank
    | None, Some t -> min (Tbr.order_for_tolerance sigma t) max_rank
    | None, None -> max_rank
    | Some _, Some _ -> invalid_arg "Tbr_lr.reduce: give either ~order or ~tol"
  in
  let q = max q 1 in
  (* T_r = Zc V_q S_q^{-1/2}, T_l = Zo U_q S_q^{-1/2}: the square-root
     projection, with the Gramian factors standing in for the dense
     Cholesky-like factors of Tbr.reduce. *)
  let scale_cols mat cols =
    Mat.init mat.Mat.rows q (fun i j -> Mat.get mat i j *. cols.(j))
  in
  let inv_sqrt = Array.init q (fun i -> 1.0 /. sqrt sigma.(i)) in
  let t_r = scale_cols (Par_kernel.mul ?workers zc (Mat.sub_cols v 0 q)) inv_sqrt in
  let t_l = scale_cols (Par_kernel.mul ?workers zo (Mat.sub_cols u 0 q)) inv_sqrt in
  let rom = Dss.project_oblique sys ~w:t_l ~v:t_r in
  ( { rom; hsv = sigma; order = q },
    {
      ctrl = st_c;
      obs = st_o;
      shifts = shifts_used;
      symbolic = counters.symbolic;
      refactorizations = counters.numeric;
      solves = counters.solve_count;
      wall_s = now () -. t0;
    } )

let reduce ?order ?tol ?shifts ?num_shifts ?adi_tol ?max_steps ?stop ?meth
    ?workers sys =
  fst
    (reduce_stats ?order ?tol ?shifts ?num_shifts ?adi_tol ?max_steps ?stop
       ?meth ?workers sys)
