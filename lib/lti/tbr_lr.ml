(* Low-rank square-root balanced truncation on top of Lr_lyap.

   Both Gramian sides run through the shared multi-shift solver in
   Lyap_ops: one symbolic analysis, one numeric refactorisation per
   distinct ADI shift, observability factors reused from the
   controllability side via hermitian solves (see Lyap_ops). *)

open Pmtbr_la

type t = { rom : Dss.t; hsv : float array; order : int }

type meth = Adi | Extended_krylov

type stats = {
  ctrl : Lr_lyap.stats;
  obs : Lr_lyap.stats;
  shifts : Complex.t array;
  symbolic : int;
  refactorizations : int;
  solves : int;
  col_solves : int;
  wall_s : float;
}

let now () = Unix.gettimeofday ()

let run_side ?shifts ?num_shifts ?(tol = 1e-10) ?max_steps ?stop ~meth ops rhs
    =
  match meth with
  | Adi -> Lr_lyap.lr_adi ?shifts ?num_shifts ~tol ?max_steps ?stop ops rhs
  | Extended_krylov -> (
      match stop with
      | Some (Lr_lyap.Band_residual _) ->
          invalid_arg "Tbr_lr: band-limited stopping requires the ADI engine"
      | _ -> Lr_lyap.extended_krylov ~tol ?max_steps ops rhs)

let controllability_factor ?shifts ?num_shifts ?tol ?max_steps ?stop
    ?(meth = Adi) sys =
  let solve, _ = Lyap_ops.shared_solver sys in
  let ctrl, _ = Lyap_ops.ops_of_dss solve sys in
  run_side ?shifts ?num_shifts ?tol ?max_steps ?stop ~meth ctrl
    (Dss.b_matrix sys)

let observability_factor ?shifts ?num_shifts ?tol ?max_steps ?stop
    ?(meth = Adi) sys =
  let solve, _ = Lyap_ops.shared_solver sys in
  let ctrl, obs = Lyap_ops.ops_of_dss solve sys in
  let shifts =
    match (meth, shifts) with
    | Adi, None ->
        (* same selection the paired run would use, then conjugated *)
        Some
          (Array.map Complex.conj
             (Lr_lyap.penzl_shifts ?num:num_shifts ctrl (Dss.b_matrix sys)))
    | _, s -> Option.map (Array.map Complex.conj) s
  in
  run_side ?shifts ?num_shifts ?tol ?max_steps ?stop ~meth obs
    (Mat.transpose (Dss.c_matrix sys))

(* Both Gramian factors through one shared handle; the core of every public
   entry point. *)
let gramian_factors ?shifts ?num_shifts ?(adi_tol = 1e-10) ?max_steps ?stop
    ~meth sys =
  let solve, counters = Lyap_ops.shared_solver sys in
  let ctrl_ops, obs_ops = Lyap_ops.ops_of_dss solve sys in
  let b = Dss.b_matrix sys and ct = Mat.transpose (Dss.c_matrix sys) in
  let shifts_used =
    match meth with
    | Extended_krylov -> [||]
    | Adi -> (
        match shifts with
        | Some s -> Array.copy s
        | None -> Lr_lyap.penzl_shifts ?num:num_shifts ctrl_ops b)
  in
  let side ops rhs conj_shifts =
    let shifts =
      match meth with
      | Extended_krylov -> None
      | Adi ->
          Some
            (if conj_shifts then Array.map Complex.conj shifts_used
             else shifts_used)
    in
    run_side ?shifts ~tol:adi_tol ?max_steps ?stop ~meth ops rhs
  in
  let zc, st_c = side ctrl_ops b false in
  let zo, st_o = side obs_ops ct true in
  (zc, zo, st_c, st_o, shifts_used, counters)

let hankel_core ?workers sys zc zo =
  Par_kernel.mul ?workers (Mat.transpose zo) (Dss.apply_e sys zc)

let hankel_singular_values ?shifts ?num_shifts ?adi_tol ?max_steps ?stop
    ?(meth = Adi) ?workers sys =
  let zc, zo, _, _, _, _ =
    gramian_factors ?shifts ?num_shifts ?adi_tol ?max_steps ?stop ~meth sys
  in
  Svd.values ?workers (hankel_core ?workers sys zc zo)

let reduce_stats ?order ?tol ?shifts ?num_shifts ?adi_tol ?max_steps ?stop
    ?(meth = Adi) ?workers sys =
  let t0 = now () in
  let zc, zo, st_c, st_o, shifts_used, counters =
    gramian_factors ?shifts ?num_shifts ?adi_tol ?max_steps ?stop ~meth sys
  in
  if zc.Mat.cols = 0 || zo.Mat.cols = 0 then
    invalid_arg "Tbr_lr.reduce: empty Gramian factor";
  let { Svd.u; sigma; v } = Svd.decompose ?workers (hankel_core ?workers sys zc zo) in
  (* order selection mirrors Tbr.reduce *)
  let max_rank =
    let smax = if Array.length sigma = 0 then 0.0 else sigma.(0) in
    let r = ref 0 in
    Array.iter (fun s -> if s > 1e-13 *. smax && s > 0.0 then incr r) sigma;
    !r
  in
  let q =
    match (order, tol) with
    | Some q, None -> min q max_rank
    | None, Some t -> min (Tbr.order_for_tolerance sigma t) max_rank
    | None, None -> max_rank
    | Some _, Some _ -> invalid_arg "Tbr_lr.reduce: give either ~order or ~tol"
  in
  let q = max q 1 in
  (* T_r = Zc V_q S_q^{-1/2}, T_l = Zo U_q S_q^{-1/2}: the square-root
     projection, with the Gramian factors standing in for the dense
     Cholesky-like factors of Tbr.reduce. *)
  let scale_cols mat cols =
    Mat.init mat.Mat.rows q (fun i j -> Mat.get mat i j *. cols.(j))
  in
  let inv_sqrt = Array.init q (fun i -> 1.0 /. sqrt sigma.(i)) in
  let t_r = scale_cols (Par_kernel.mul ?workers zc (Mat.sub_cols v 0 q)) inv_sqrt in
  let t_l = scale_cols (Par_kernel.mul ?workers zo (Mat.sub_cols u 0 q)) inv_sqrt in
  let rom = Dss.project_oblique sys ~w:t_l ~v:t_r in
  ( { rom; hsv = sigma; order = q },
    {
      ctrl = st_c;
      obs = st_o;
      shifts = shifts_used;
      symbolic = counters.Lyap_ops.symbolic;
      refactorizations = counters.Lyap_ops.numeric;
      solves = counters.Lyap_ops.solve_count;
      col_solves = counters.Lyap_ops.col_solves;
      wall_s = now () -. t0;
    } )

let reduce ?order ?tol ?shifts ?num_shifts ?adi_tol ?max_steps ?stop ?meth
    ?workers sys =
  fst
    (reduce_stats ?order ?tol ?shifts ?num_shifts ?adi_tol ?max_steps ?stop
       ?meth ?workers sys)
