(** Descriptor state-space systems [E dx/dt = A x + B u, y = C x].

    Two concrete representations share one interface: full models straight
    out of MNA keep E and A sparse; reduced models are small and dense.
    All reduction algorithms only need the operations below (shifted
    solves, multiplication by E/A, and the port matrices). *)

open Pmtbr_la
open Pmtbr_sparse

type t =
  | Sparse of {
      e : Triplet.t;
      a : Triplet.t;
      pencil : Shifted.pencil;
      b : Mat.t;
      c : Mat.t;
      n : int;
    }
  | Dense of { e : Mat.t; a : Mat.t; b : Mat.t; c : Mat.t }

val of_mna : Pmtbr_circuit.Mna.system -> t
(** Wrap a stamped MNA system (sparse representation). *)

val of_netlist : Pmtbr_circuit.Netlist.t -> t
(** [of_mna] composed with {!Pmtbr_circuit.Mna.stamp}. *)

val of_dense : e:Mat.t -> a:Mat.t -> b:Mat.t -> c:Mat.t -> t
(** Dense descriptor system. *)

val of_standard : a:Mat.t -> b:Mat.t -> c:Mat.t -> t
(** Dense standard-form system ([E = I]). *)

val order : t -> int
(** Number of states. *)

val inputs : t -> int
(** Number of inputs (ports). *)

val outputs : t -> int
(** Number of outputs. *)

val b_matrix : t -> Mat.t
val c_matrix : t -> Mat.t

val e_dense : t -> Mat.t
(** Dense copy of E (cheap for reduced models; O(n^2) memory for full
    ones — used only by the exact-TBR baseline). *)

val a_dense : t -> Mat.t
(** Dense copy of A. *)

val apply_e : t -> Mat.t -> Mat.t
(** [apply_e sys v] is [E * v] for dense [v]. *)

val apply_a : t -> Mat.t -> Mat.t
(** [apply_a sys v] is [A * v]. *)

type shifted_factor
(** A reusable factorisation of [(sE - A)] at one shift: sparse LU for
    sparse systems, dense LU for dense ones. *)

val factor_shifted : t -> Complex.t -> shifted_factor

val solve_factored : shifted_factor -> Mat.t -> Complex.t array array
(** [solve_factored f r] solves [(sE - A) X = R] for a dense real
    right-hand side; one complex column per column of [R]. *)

type multi_shift
(** A reusable multi-shift solver handle.  For sparse systems the pattern
    assembly, fill-reducing ordering and elimination analysis of
    [(sE - A)] are computed once at creation (against a template shift);
    each subsequent shift pays only a numeric refactorisation.  Immutable
    after creation — safe to share across domains. *)

val multi_shift : ?template:Complex.t -> t -> multi_shift
(** Build the handle; [template] (default [j1]) picks the shift whose
    factorisation serves as the structural template. *)

val multi_factor : multi_shift -> hermitian:bool -> Complex.t -> shifted_factor
(** Factor [(sE - A)] at one shift through the handle.  With
    [~hermitian:true] the factor is prepared for [(sE - A)^H x = r]
    solves. *)

val multi_solve_factored : shifted_factor -> hermitian:bool -> Mat.t -> Complex.t array array
(** Solve with a factor from {!multi_factor}, on the same side it was
    prepared for. *)

val shifted_solve : t -> Complex.t -> Complex.t array array
(** One-shot [(sE - A)^{-1} B]. *)

val shifted_solve_rhs : t -> Complex.t -> Mat.t -> Complex.t array array
(** One-shot [(sE - A)^{-1} R] for an arbitrary right-hand side. *)

val shifted_solve_hermitian : t -> Complex.t -> Mat.t -> Complex.t array array
(** One-shot [(sE - A)^{-H} R], for observability-side samples. *)

val to_standard : t -> Mat.t * Mat.t * Mat.t
(** [(E^{-1}A, E^{-1}B, C)]; requires invertible E.  Only used by the
    exact-TBR baselines — PMTBR never needs it (paper Section V-A).
    @raise Invalid_argument when E is exactly singular. *)

exception Not_rc_like
(** Raised by {!symmetrize_rc} when E is not diagonal positive or A is not
    symmetric-stampable. *)

val symmetrize_rc : t -> t
(** Symmetrised standard form for RC-structured systems (diagonal SPD E):
    with [x~ = E^{1/2} x], [A~ = E^{-1/2} A E^{-1/2}] is symmetric and a
    current-driven RC network has [C~ = B~^T] — the paper's symmetric case,
    in which the singular values of the PMTBR sample matrix estimate the
    Hankel singular values directly.
    @raise Not_rc_like on non-RC systems. *)

val project_congruence : t -> Mat.t -> t
(** [project_congruence sys v] is the (dense) reduced system
    [(V^T E V, V^T A V, V^T B, C V)] — the Galerkin projection used by
    PMTBR and PRIMA, which preserves passivity for RLC-structured
    systems. *)

val project_oblique : t -> w:Mat.t -> v:Mat.t -> t
(** Petrov-Galerkin projection with distinct left/right bases
    [(W^T E V, W^T A V, W^T B, C V)]. *)
