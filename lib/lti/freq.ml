(* Frequency responses and response-error metrics.

   [eval] is the naive per-point reference: fresh factorisation, boxed
   complex inner loop.  [sweep] routes grids through {!Sweep_engine} —
   one prepared plan (symbolic analysis or Hessenberg reduction done
   once), points fanned across a domain pool — and the error metrics are
   folds over a streaming accumulator, so verification never needs the
   full response array in memory. *)

open Pmtbr_la

(* H(s) = C (sE - A)^{-1} B : outputs x inputs, complex. *)
let eval sys (s : Complex.t) =
  let z = Dss.shifted_solve sys s in
  let c = Dss.c_matrix sys in
  let p_out = c.Mat.rows and p_in = Array.length z in
  Cmat.init p_out p_in (fun i j ->
      let acc = ref Complex.zero in
      for k = 0 to c.Mat.cols - 1 do
        acc := Complex.add !acc (Scalar.Cx.scale (Mat.get c i k) z.(j).(k))
      done;
      !acc)

let eval_jw sys (omega : float) = eval sys { Complex.re = 0.0; im = omega }

(* The pre-engine sweep: a fresh factorisation at every point.  Kept as
   the accuracy reference the engine is property-tested (and benched)
   against. *)
let sweep_naive sys (omegas : float array) = Array.map (eval_jw sys) omegas

(* Responses over a frequency grid (rad/s), through the two-tier engine.
   The template shift is the first grid point, so the plan is a pure
   function of (sys, omegas) and the sweep is worker-invariant. *)
let sweep ?workers sys (omegas : float array) =
  if Array.length omegas = 0 then [||]
  else
    let plan = Sweep_engine.prepare ~template:{ Complex.re = 0.0; im = omegas.(0) } sys in
    Sweep_engine.sweep ?workers plan omegas

(* Entry (i, j) of each response in a sweep. *)
let entry_series responses i j = Array.map (fun h -> Cmat.get h i j) responses

(* ------------------------------------------------------------------ *)
(* Streaming error metrics                                             *)
(* ------------------------------------------------------------------ *)

(* One accumulator carries every metric the repo reports, so a single
   streamed comparison pass can answer for all of them.  The folds visit
   entries in the same order as the old array-based metrics (point by
   point, row-major within each response): max is order-insensitive and
   the rms sum reproduces the old summation order, so the readouts equal
   the array implementations bitwise. *)
type error_stream = {
  ri : int;
  rj : int;
  mutable points : int;
  mutable entries : int;
  mutable worst_abs : float;
  mutable ref_scale : float;
  mutable sum_sq : float;
  mutable worst_real : float;
  mutable real_scale : float;
}

let error_stream ?(i = 0) ?(j = 0) () =
  {
    ri = i;
    rj = j;
    points = 0;
    entries = 0;
    worst_abs = 0.0;
    ref_scale = 0.0;
    sum_sq = 0.0;
    worst_real = 0.0;
    real_scale = 0.0;
  }

let stream_add st ~ref_:(href : Cmat.t) ~apx:(hapx : Cmat.t) =
  if href.Cmat.rows <> hapx.Cmat.rows || href.Cmat.cols <> hapx.Cmat.cols then
    invalid_arg "Freq.stream_add: response shapes differ";
  st.points <- st.points + 1;
  let nd = Array.length href.Cmat.data in
  for k = 0 to nd - 1 do
    let r = href.Cmat.data.(k) in
    let m = Complex.norm (Complex.sub r hapx.Cmat.data.(k)) in
    st.worst_abs <- Float.max st.worst_abs m;
    st.sum_sq <- st.sum_sq +. (m *. m);
    st.entries <- st.entries + 1;
    st.ref_scale <- Float.max st.ref_scale (Complex.norm r)
  done;
  if st.ri < href.Cmat.rows && st.rj < href.Cmat.cols then begin
    let r1 = (Cmat.get href st.ri st.rj).Complex.re
    and r2 = (Cmat.get hapx st.ri st.rj).Complex.re in
    st.worst_real <- Float.max st.worst_real (Float.abs (r1 -. r2));
    st.real_scale <- Float.max st.real_scale (Float.abs r1)
  end

let stream_max_abs_error st = st.worst_abs

let stream_max_rel_error st =
  if st.ref_scale = 0.0 then st.worst_abs else st.worst_abs /. st.ref_scale

let stream_rms_error st =
  if st.entries = 0 then 0.0 else sqrt (st.sum_sq /. float_of_int st.entries)

let stream_max_real_part_error st = st.worst_real

let stream_max_real_part_rel_error st =
  if st.real_scale = 0.0 then st.worst_real else st.worst_real /. st.real_scale

(* Stream a system's sweep against a materialised reference: one engine
   plan, responses folded into the accumulator as they arrive, never an
   array of them. *)
let compare_sweep ?workers ?i ?j sys (omegas : float array) ~ref_ =
  if Array.length ref_ <> Array.length omegas then
    invalid_arg "Freq.compare_sweep: grid and reference lengths differ";
  let st = error_stream ?i ?j () in
  if Array.length omegas > 0 then begin
    let plan = Sweep_engine.prepare ~template:{ Complex.re = 0.0; im = omegas.(0) } sys in
    Sweep_engine.iteri ?workers plan omegas ~f:(fun k h -> stream_add st ~ref_:ref_.(k) ~apx:h)
  end;
  st

(* ------------------------------------------------------------------ *)
(* Array-based metrics (folds over the stream)                         *)
(* ------------------------------------------------------------------ *)

let check_lengths name (h_ref : Cmat.t array) (h_apx : Cmat.t array) =
  if Array.length h_ref <> Array.length h_apx then
    invalid_arg (name ^ ": sweep lengths differ")

let stream_of_arrays ?i ?j name h_ref h_apx =
  check_lengths name h_ref h_apx;
  let st = error_stream ?i ?j () in
  Array.iteri (fun k href -> stream_add st ~ref_:href ~apx:h_apx.(k)) h_ref;
  st

(* Worst-case absolute entrywise error between two sweeps. *)
let max_abs_error h_ref h_apx =
  stream_max_abs_error (stream_of_arrays "Freq.max_abs_error" h_ref h_apx)

(* Worst-case error normalised by the largest reference magnitude. *)
let max_rel_error h_ref h_apx =
  stream_max_rel_error (stream_of_arrays "Freq.max_rel_error" h_ref h_apx)

(* RMS entrywise error over the sweep. *)
let rms_error h_ref h_apx = stream_rms_error (stream_of_arrays "Freq.rms_error" h_ref h_apx)

(* Error restricted to the real part of entry (i, j): the spiral-inductor
   resistance metric of Fig. 7. *)
let max_real_part_error ?(i = 0) ?(j = 0) h_ref h_apx =
  stream_max_real_part_error (stream_of_arrays ~i ~j "Freq.max_real_part_error" h_ref h_apx)

let max_real_part_rel_error ?(i = 0) ?(j = 0) h_ref h_apx =
  stream_max_real_part_rel_error
    (stream_of_arrays ~i ~j "Freq.max_real_part_rel_error" h_ref h_apx)
