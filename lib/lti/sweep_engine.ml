(* Two-tier parallel frequency-sweep engine.

   Tier 1 (sparse full models): one Shifted pencil handle per plan, the
   symbolic analysis done once; every grid point is a numeric
   refactorisation replay plus a triangular solve, and the output fold
   C * z runs through Par_kernel on a realified column block.

   Tier 2 (dense reduced models): a one-time real orthogonal
   Hessenberg-triangular reduction Q^T (sE - A) Z = s T - H (Moler-Stewart
   / QZ step 1), after which every grid point is an O(q^2) Hessenberg
   elimination instead of an O(q^3) dense LU:

     H(s) = C (sE - A)^{-1} B = (C Z) (s T - H)^{-1} (Q^T B)

   with s T - H upper Hessenberg for every s.

   Grid points fan out across a domain pool with the same chunked
   atomic-counter queue as Shift_engine, under the same contract: each
   response is a pure function of (plan, s), results are assembled in
   grid order, and a worker failure is re-raised deterministically (the
   one at the lowest grid index wins).  Serial and parallel sweeps are
   bitwise identical. *)

open Pmtbr_la

type sparse_plan = { ms : Dss.multi_shift; b : Mat.t; c : Mat.t; n : int }

type hess_plan = {
  hh : Mat.t;  (* upper Hessenberg Q^T A Z *)
  tt : Mat.t;  (* upper triangular Q^T E Z *)
  qtb : Mat.t;  (* Q^T B *)
  cz : Mat.t;  (* C Z *)
  n : int;
}

type t = Sparse_plan of sparse_plan | Hess_plan of hess_plan
type tier = Replay | Hessenberg

type stats = {
  points : int;
  workers : int;
  factor_s : float;
  solve_s : float;
  wall_s : float;
  busy_s : float array;
}

let default_workers () = Domain.recommended_domain_count ()

let utilisation st =
  if st.wall_s <= 0.0 || Array.length st.busy_s = 0 then 0.0
  else
    Array.fold_left ( +. ) 0.0 st.busy_s /. (st.wall_s *. float_of_int (Array.length st.busy_s))

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Hessenberg-triangular reduction (dense tier, prepare time)          *)
(* ------------------------------------------------------------------ *)

(* Givens rotation (c, s) with c*y - s*x = 0 for the pair (x, y), i.e.
   the rotation that zeroes the second component. *)
let givens x y =
  if y = 0.0 then (1.0, 0.0)
  else
    let r = Float.hypot x y in
    (x /. r, y /. r)

(* Apply [c s; -s c] to rows (i1, i2) of m, from column j0 on. *)
let row_rot (m : Mat.t) i1 i2 c s j0 =
  for j = j0 to m.Mat.cols - 1 do
    let x = Mat.get m i1 j and y = Mat.get m i2 j in
    Mat.set m i1 j ((c *. x) +. (s *. y));
    Mat.set m i2 j ((c *. y) -. (s *. x))
  done

(* Post-multiply m by the rotation on columns (j1, j2), rows 0 .. i_hi. *)
let col_rot (m : Mat.t) j1 j2 c s i_hi =
  for i = 0 to i_hi do
    let x = Mat.get m i j1 and y = Mat.get m i j2 in
    Mat.set m i j1 ((c *. x) +. (s *. y));
    Mat.set m i j2 ((c *. y) -. (s *. x))
  done

(* Golub & Van Loan Alg. 7.7.1: QR-factor E, then chase A down to upper
   Hessenberg with row rotations while keeping T triangular with column
   rotations.  Q is never materialised (it only ever hits B); Z is
   accumulated because both C and the states need it. *)
let hess_prepare ~(e : Mat.t) ~(a : Mat.t) ~(b : Mat.t) ~(c : Mat.t) =
  let n = a.Mat.rows in
  if n = 0 then { hh = a; tt = e; qtb = Mat.create 0 b.Mat.cols; cz = c; n }
  else begin
    let f = Qr.factorize e in
    let tt = Qr.r_factor f in
    let hh = Qr.apply_qt f a in
    let qtb = Qr.apply_qt f b in
    let zacc = Mat.identity n in
    for j = 0 to n - 3 do
      for i = n - 1 downto j + 2 do
        (* zero hh(i, j) with a rotation of rows (i-1, i) *)
        let x = Mat.get hh (i - 1) j and y = Mat.get hh i j in
        if y <> 0.0 then begin
          let cr, sr = givens x y in
          row_rot hh (i - 1) i cr sr j;
          Mat.set hh i j 0.0;
          row_rot tt (i - 1) i cr sr (i - 1);
          row_rot qtb (i - 1) i cr sr 0;
          (* the row rotation filled tt(i, i-1); restore triangularity
             with a rotation of columns (i-1, i) *)
          let fill = Mat.get tt i (i - 1) in
          if fill <> 0.0 then begin
            let cc, sc = givens (Mat.get tt i i) (-.fill) in
            col_rot tt (i - 1) i cc sc i;
            Mat.set tt i (i - 1) 0.0;
            col_rot hh (i - 1) i cc sc (n - 1);
            col_rot zacc (i - 1) i cc sc (n - 1)
          end
        end
      done
    done;
    { hh; tt; qtb; cz = Mat.mul c zacc; n }
  end

(* ------------------------------------------------------------------ *)
(* Hessenberg per-point solve (dense tier, O(q^2) per grid point)      *)
(* ------------------------------------------------------------------ *)

(* Smith's componentwise-robust complex division a / b on float pairs. *)
let cdiv are aim bre bim =
  if Float.abs bre >= Float.abs bim then begin
    let r = bim /. bre in
    let d = bre +. (bim *. r) in
    ((are +. (aim *. r)) /. d, (aim -. (are *. r)) /. d)
  end
  else begin
    let r = bre /. bim in
    let d = (bre *. r) +. bim in
    (((are *. r) +. aim) /. d, ((aim *. r) -. are) /. d)
  end

let hess_eval (p : hess_plan) (s : Complex.t) =
  let n = p.n in
  let p_in = p.qtb.Mat.cols and p_out = p.cz.Mat.rows in
  if n = 0 then Cmat.create p_out p_in
  else begin
    (* M = s T - H on the Hessenberg band, unboxed re/im planes *)
    let mre = Array.make (n * n) 0.0 and mim = Array.make (n * n) 0.0 in
    for i = 0 to n - 1 do
      for j = max 0 (i - 1) to n - 1 do
        let k = (i * n) + j in
        let tv = Mat.get p.tt i j in
        mre.(k) <- (s.Complex.re *. tv) -. Mat.get p.hh i j;
        mim.(k) <- s.Complex.im *. tv
      done
    done;
    let yre = Array.init p_in (fun jc -> Array.init n (fun i -> Mat.get p.qtb i jc)) in
    let yim = Array.init p_in (fun _ -> Array.make n 0.0) in
    (* eliminate the single subdiagonal with partial pivoting: at step k
       only rows k and k+1 can pivot, so a swap keeps the profile *)
    for k = 0 to n - 2 do
      let dk = (k * n) + k and sk = ((k + 1) * n) + k in
      if Float.hypot mre.(sk) mim.(sk) > Float.hypot mre.(dk) mim.(dk) then begin
        for j = k to n - 1 do
          let a = (k * n) + j and b = ((k + 1) * n) + j in
          let tr = mre.(a) and ti = mim.(a) in
          mre.(a) <- mre.(b);
          mim.(a) <- mim.(b);
          mre.(b) <- tr;
          mim.(b) <- ti
        done;
        for jc = 0 to p_in - 1 do
          let yr = yre.(jc) and yi = yim.(jc) in
          let tr = yr.(k) and ti = yi.(k) in
          yr.(k) <- yr.(k + 1);
          yi.(k) <- yi.(k + 1);
          yr.(k + 1) <- tr;
          yi.(k + 1) <- ti
        done
      end;
      let dre = mre.(dk) and dim = mim.(dk) in
      if dre = 0.0 && dim = 0.0 then raise (Cmat.Singular k);
      let sre = mre.(sk) and sim = mim.(sk) in
      if sre <> 0.0 || sim <> 0.0 then begin
        let lre, lim = cdiv sre sim dre dim in
        mre.(sk) <- 0.0;
        mim.(sk) <- 0.0;
        for j = k + 1 to n - 1 do
          let a = (k * n) + j and b = ((k + 1) * n) + j in
          mre.(b) <- mre.(b) -. ((lre *. mre.(a)) -. (lim *. mim.(a)));
          mim.(b) <- mim.(b) -. ((lre *. mim.(a)) +. (lim *. mre.(a)))
        done;
        for jc = 0 to p_in - 1 do
          let yr = yre.(jc) and yi = yim.(jc) in
          let br = yr.(k) and bi = yi.(k) in
          yr.(k + 1) <- yr.(k + 1) -. ((lre *. br) -. (lim *. bi));
          yi.(k + 1) <- yi.(k + 1) -. ((lre *. bi) +. (lim *. br))
        done
      end
    done;
    if mre.(((n - 1) * n) + n - 1) = 0.0 && mim.(((n - 1) * n) + n - 1) = 0.0 then
      raise (Cmat.Singular (n - 1));
    (* back substitution, per input column *)
    for jc = 0 to p_in - 1 do
      let yr = yre.(jc) and yi = yim.(jc) in
      for i = n - 1 downto 0 do
        let sr = ref yr.(i) and si = ref yi.(i) in
        for j = i + 1 to n - 1 do
          let k = (i * n) + j in
          sr := !sr -. ((mre.(k) *. yr.(j)) -. (mim.(k) *. yi.(j)));
          si := !si -. ((mre.(k) *. yi.(j)) +. (mim.(k) *. yr.(j)))
        done;
        let xr, xi = cdiv !sr !si mre.((i * n) + i) mim.((i * n) + i) in
        yr.(i) <- xr;
        yi.(i) <- xi
      done
    done;
    (* H(s) = (C Z) * y : small real-by-complex product *)
    Cmat.init p_out p_in (fun i jc ->
        let yr = yre.(jc) and yi = yim.(jc) in
        let ar = ref 0.0 and ai = ref 0.0 in
        for k = 0 to n - 1 do
          let cv = Mat.get p.cz i k in
          ar := !ar +. (cv *. yr.(k));
          ai := !ai +. (cv *. yi.(k))
        done;
        { Complex.re = !ar; im = !ai })
  end

(* ------------------------------------------------------------------ *)
(* Sparse per-point solve (replay tier)                                *)
(* ------------------------------------------------------------------ *)

(* Fold C through the solution block with the Par_kernel GEMM on a
   realified n x 2p column block [Re z_0, Im z_0, Re z_1, ...].  The real
   accumulation over a column of interleaved parts visits the same
   addends in the same (ascending-k) order as the naive complex loop in
   [Freq.eval], and partial sums starting from +0.0 can never produce
   -0.0 on finite data, so the result is bitwise-identical to the boxed
   reference.  The pool workers each hold one grid point, so the GEMM
   itself stays on this domain. *)
let sparse_output (p : sparse_plan) (z : Complex.t array array) =
  let p_in = Array.length z in
  let zr =
    Mat.init p.n (2 * p_in) (fun i j ->
        let zc = z.(j / 2).(i) in
        if j land 1 = 0 then zc.Complex.re else zc.Complex.im)
  in
  let g = Par_kernel.mul ~workers:1 p.c zr in
  Cmat.init p.c.Mat.rows p_in (fun i j ->
      { Complex.re = Mat.get g i (2 * j); im = Mat.get g i ((2 * j) + 1) })

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

let prepare ?template (sys : Dss.t) =
  match sys with
  | Dss.Sparse _ ->
      Sparse_plan
        {
          ms = Dss.multi_shift ?template sys;
          b = Dss.b_matrix sys;
          c = Dss.c_matrix sys;
          n = Dss.order sys;
        }
  | Dss.Dense { e; a; b; c } -> Hess_plan (hess_prepare ~e ~a ~b ~c)

let tier = function Sparse_plan _ -> Replay | Hess_plan _ -> Hessenberg

(* One grid point.  Pure in (plan, s); timings are observational only. *)
let eval_timed plan (s : Complex.t) ~factor_acc ~solve_acc =
  match plan with
  | Sparse_plan p ->
      let t0 = now () in
      let f = Dss.multi_factor p.ms ~hermitian:false s in
      let t1 = now () in
      let z = Dss.multi_solve_factored f ~hermitian:false p.b in
      let h = sparse_output p z in
      let t2 = now () in
      factor_acc := !factor_acc +. (t1 -. t0);
      solve_acc := !solve_acc +. (t2 -. t1);
      h
  | Hess_plan p ->
      let t0 = now () in
      let h = hess_eval p s in
      solve_acc := !solve_acc +. (now () -. t0);
      h

let eval plan s =
  let dead = ref 0.0 in
  eval_timed plan s ~factor_acc:dead ~solve_acc:dead

let eval_jw plan omega = eval plan { Complex.re = 0.0; im = omega }

(* ------------------------------------------------------------------ *)
(* The worker pool                                                     *)
(* ------------------------------------------------------------------ *)

(* Replay points cost a sparse refactorisation each (ms scale) — chunk 1
   keeps the queue balanced; Hessenberg points are microseconds, so a
   larger default grab amortises the atomic traffic.  Both defaults are
   shape-only, so they cannot perturb results. *)
let default_chunk = function Sparse_plan _ -> 1 | Hess_plan _ -> 16

(* Evaluate grid indices [lo, hi) into a fresh array (slot [k] holds
   point [lo + k]), fanning across the pool. *)
let run_block ?workers ?(oversubscribe = false) ?chunk plan (omegas : float array) lo hi =
  let nt = hi - lo in
  let chunk = match chunk with Some c -> c | None -> default_chunk plan in
  if chunk < 1 then invalid_arg "Sweep_engine: chunk must be >= 1";
  let requested =
    match workers with Some w when w >= 1 -> w | Some _ | None -> default_workers ()
  in
  let cap = if oversubscribe then requested else min requested (default_workers ()) in
  let nw = max 1 (min cap nt) in
  let out : Cmat.t array = Array.make nt (Cmat.create 0 0) in
  let failures : (int * exn) option array = Array.make nw None in
  let factor_t = Array.make nw 0.0
  and solve_t = Array.make nw 0.0
  and busy_t = Array.make nw 0.0
  and n_done = Array.make nw 0 in
  let next = Atomic.make 0 in
  let work wid =
    let factor_acc = ref 0.0 and solve_acc = ref 0.0 in
    let solved = ref 0 in
    let t_in = now () in
    let running = ref true in
    while !running do
      let start = Atomic.fetch_and_add next chunk in
      if start >= nt || failures.(wid) <> None then running := false
      else
        for k = start to min nt (start + chunk) - 1 do
          if failures.(wid) = None then
            match
              eval_timed plan
                { Complex.re = 0.0; im = omegas.(lo + k) }
                ~factor_acc ~solve_acc
            with
            | h ->
                out.(k) <- h;
                incr solved
            | exception e -> failures.(wid) <- Some (k, e)
        done
    done;
    factor_t.(wid) <- !factor_acc;
    solve_t.(wid) <- !solve_acc;
    n_done.(wid) <- !solved;
    busy_t.(wid) <- now () -. t_in
  in
  let t_start = now () in
  if nw = 1 then work 0
  else begin
    let domains = Array.init nw (fun wid -> Domain.spawn (fun () -> work wid)) in
    Array.iter Domain.join domains
  end;
  let wall = now () -. t_start in
  let first_failure =
    Array.fold_left
      (fun acc f ->
        match (acc, f) with
        | None, f -> f
        | Some _, None -> acc
        | Some (i, _), Some (j, _) -> if j < i then f else acc)
      None failures
  in
  (match first_failure with Some (_, e) -> raise e | None -> ());
  ( out,
    {
      points = Array.fold_left ( + ) 0 n_done;
      workers = nw;
      factor_s = Array.fold_left ( +. ) 0.0 factor_t;
      solve_s = Array.fold_left ( +. ) 0.0 solve_t;
      wall_s = wall;
      busy_s = busy_t;
    } )

let empty_stats = { points = 0; workers = 0; factor_s = 0.0; solve_s = 0.0; wall_s = 0.0; busy_s = [||] }

let sweep_stats ?workers ?oversubscribe ?chunk plan omegas =
  let n = Array.length omegas in
  if n = 0 then ([||], empty_stats)
  else run_block ?workers ?oversubscribe ?chunk plan omegas 0 n

let sweep ?workers ?oversubscribe ?chunk plan omegas =
  fst (sweep_stats ?workers ?oversubscribe ?chunk plan omegas)

(* Window size for the streaming drivers: enough points to keep every
   pool worker fed through several chunks, small enough that a window of
   responses stays cheap next to the plan itself. *)
let stream_window = 64

let fold ?workers ?oversubscribe ?chunk plan omegas ~init ~f =
  let n = Array.length omegas in
  let acc = ref init and lo = ref 0 in
  while !lo < n do
    let hi = min n (!lo + stream_window) in
    let block, _ = run_block ?workers ?oversubscribe ?chunk plan omegas !lo hi in
    for k = 0 to hi - !lo - 1 do
      acc := f !acc (!lo + k) block.(k)
    done;
    lo := hi
  done;
  !acc

let iteri ?workers ?oversubscribe ?chunk plan omegas ~f =
  fold ?workers ?oversubscribe ?chunk plan omegas ~init:() ~f:(fun () k h -> f k h)
