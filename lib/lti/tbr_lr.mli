(** Low-rank square-root balanced truncation: exact TBR at PMTBR scale.

    The dense baseline {!Tbr} is O(n^3) in the dense Gramian solves; this
    backend computes both Gramians in low-rank factored form with
    {!Pmtbr_la.Lr_lyap} (LR-ADI by default, extended Krylov as the
    alternative) and balances from the factors: the SVD core is
    [Zo^T E Zc] — a (cols x cols) matrix — so the reduction stage costs
    O(n k^2) for factor rank k.

    All shifted solves of both Gramian sides go through {b one} prepared
    {!Dss.multi_shift} handle: the symbolic analysis of the pencil is paid
    once, each distinct ADI shift triggers exactly one numeric
    refactorisation, and the observability side reuses the controllability
    factors through hermitian solves (its shifts are conjugated so the two
    sides land on identical factorisation keys).  {!stats} exposes the
    counters that make this contract testable.

    Determinism: the ADI/Krylov iterations are serial; the only
    worker-parallel pieces are the {!Pmtbr_la.Par_kernel} products and the
    {!Pmtbr_la.Svd} core, both bitwise worker-invariant — so the reduced
    model is identical for every [?workers] value (PR-4 contract). *)

open Pmtbr_la

type t = {
  rom : Dss.t;  (** reduced model (same descriptor flavour as the input) *)
  hsv : float array;  (** approximate Hankel singular values, descending *)
  order : int;  (** reduced order actually used *)
}

type meth = Adi | Extended_krylov  (** Gramian engine selector *)

type stats = {
  ctrl : Lr_lyap.stats;  (** controllability-side solver statistics *)
  obs : Lr_lyap.stats;  (** observability-side solver statistics *)
  shifts : Complex.t array;  (** ADI shifts used (empty for Krylov) *)
  symbolic : int;  (** symbolic analyses of the sparse pencil (1 by contract) *)
  refactorizations : int;
      (** numeric refactorisations — one per distinct shift by contract *)
  solves : int;  (** shifted solves through the shared handle, both sides *)
  col_solves : int;
      (** total right-hand-side columns across those solves — the honest
          cost unit when comparing against the one-Gramian symmetric
          path ({!Tbr_passive}), since the Ritz-value solves for shift
          selection cost both methods the same *)
  wall_s : float;  (** wall-clock of the whole reduction *)
}

val controllability_factor :
  ?shifts:Complex.t array ->
  ?num_shifts:int ->
  ?tol:float ->
  ?max_steps:int ->
  ?stop:Lr_lyap.stop ->
  ?meth:meth ->
  Dss.t ->
  Mat.t * Lr_lyap.stats
(** Low-rank factor [Zc] with [Zc Zc^T ~= X] of the controllability
    Gramian [A X E^T + E X A^T + B B^T = 0].  [tol] (default [1e-10]) is
    the solver's relative residual tolerance; [stop] switches to the
    band-limited criterion (ADI only). *)

val observability_factor :
  ?shifts:Complex.t array ->
  ?num_shifts:int ->
  ?tol:float ->
  ?max_steps:int ->
  ?stop:Lr_lyap.stop ->
  ?meth:meth ->
  Dss.t ->
  Mat.t * Lr_lyap.stats
(** Low-rank factor [Zo] of the observability Gramian
    [A^T Y E + E^T Y A + C^T C = 0]. *)

val hankel_singular_values :
  ?shifts:Complex.t array ->
  ?num_shifts:int ->
  ?adi_tol:float ->
  ?max_steps:int ->
  ?stop:Lr_lyap.stop ->
  ?meth:meth ->
  ?workers:int ->
  Dss.t ->
  float array
(** Approximate Hankel singular values: [svd (Zo^T E Zc)], computed with
    the worker-parallel product and SVD kernels.  Agrees with the dense
    {!Tbr} values to the Gramian solver tolerance. *)

val reduce :
  ?order:int ->
  ?tol:float ->
  ?shifts:Complex.t array ->
  ?num_shifts:int ->
  ?adi_tol:float ->
  ?max_steps:int ->
  ?stop:Lr_lyap.stop ->
  ?meth:meth ->
  ?workers:int ->
  Dss.t ->
  t
(** Square-root balanced truncation from the low-rank factors.  Order
    selection mirrors {!Tbr.reduce}: give one of [order] (target size) or
    [tol] (Glover-bound tolerance on the approximate Hankel values); with
    neither the model is truncated at numerical rank.  [adi_tol] is the
    Gramian solver tolerance (default [1e-10]).
    @raise Invalid_argument if both [order] and [tol] are given, or if a
    Gramian factor comes back empty (unstable/empty system). *)

val reduce_stats :
  ?order:int ->
  ?tol:float ->
  ?shifts:Complex.t array ->
  ?num_shifts:int ->
  ?adi_tol:float ->
  ?max_steps:int ->
  ?stop:Lr_lyap.stop ->
  ?meth:meth ->
  ?workers:int ->
  Dss.t ->
  t * stats
(** {!reduce} plus the solver/handle counters, in the house [_stats]
    style. *)
