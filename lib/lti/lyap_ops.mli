(** Shared shifted-solve machinery between descriptor systems and the
    operator-abstract {!Pmtbr_la.Lr_lyap} engines.

    Both Gramian sides of a balanced-truncation run (and the one-Gramian
    symmetric run of {!Tbr_passive}) are driven through {b one} prepared
    {!Dss.multi_shift} handle: the symbolic analysis of the sparse pencil
    is paid once, each distinct ADI shift triggers exactly one numeric
    refactorisation, and the observability side reuses the
    controllability factors through hermitian solves (its shifts are
    conjugated so the two sides land on identical factorisation keys).
    {!counters} makes the contract testable — including [col_solves], the
    number of right-hand-side {e columns} pushed through shifted factors,
    which is the honest unit for comparing one-Gramian against two-Gramian
    methods (the shared Ritz-value solves cost both the same). *)

open Pmtbr_la

type counters = {
  mutable symbolic : int;  (** symbolic analyses (1 by contract, 0 with [?ms]) *)
  mutable numeric : int;  (** numeric refactorisations — one per distinct shift *)
  mutable solve_count : int;  (** shifted-solve calls through the handle *)
  mutable col_solves : int;  (** total RHS columns across those calls *)
}

val shared_solver :
  ?ms:Dss.multi_shift ->
  Dss.t ->
  (hermitian:bool -> Complex.t -> Mat.t -> Complex.t array array) * counters
(** [shared_solver sys] is a cached shifted solver [(sE - A)^{-1}] /
    [(sE - A)^{-H}] (by [~hermitian]) plus its live counters.  Factors
    are cached per shift; [?ms] reuses an existing multi-shift handle
    (its symbolic analysis is then not re-counted). *)

val neg_cols : Complex.t array array -> Complex.t array array
(** Negate every entry of a column set. *)

val mat_of_cols : int -> float array array -> Mat.t
(** Assemble an [n x k] matrix from [k] length-[n] columns. *)

val e_solvers : Dss.t -> (Mat.t -> Mat.t) * (Mat.t -> Mat.t)
(** [(solve_e, solve_et)]: [E^{-1} R] and [E^{-T} R] off one real
    factorisation.
    @raise Invalid_argument when [E] is singular (on first use). *)

val ops_of_dss :
  (hermitian:bool -> Complex.t -> Mat.t -> Complex.t array array) ->
  Dss.t ->
  Lr_lyap.ops * Lr_lyap.ops
(** [(ctrl, obs)] operator views of one system over a shared solver.
    The observability side must be given {e conjugated} shifts so both
    sides hit identical factor keys — every caller in this library does. *)
