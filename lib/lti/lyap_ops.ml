(* Shared shifted-solve machinery wiring descriptor systems into the
   operator-abstract Lr_lyap engines.

   The load-bearing piece is the shared solver: every Gramian side is
   driven through ONE prepared Dss.multi_shift handle, so the symbolic
   analysis of the sparse pencil is paid once and every distinct ADI
   shift costs exactly one numeric refactorisation.  The trick that makes
   the sharing work across the controllability/observability pair is on
   the observability side: its equation needs (A^T + p E^T)^{-1}, i.e. a
   hermitian solve of (sE - A) at s = -conj p — so by handing the
   observability solver the CONJUGATED shift list, both sides request
   factors at the identical keys s = -p and the cache hits. *)

open Pmtbr_la
open Pmtbr_sparse

type counters = {
  mutable symbolic : int;
  mutable numeric : int;
  mutable solve_count : int;
  mutable col_solves : int;
}

(* Shifted solves through one multi-shift handle.

   Factor cache key: the shift s of (sE - A), plus the hermitian flag only
   where the factor itself depends on it.  Sparse zfactors are
   side-agnostic (the hermitian dispatch happens at solve time), so both
   sides share one factor per shift; the dense fallback bakes the
   conjugate-transpose into the LU, so dense keys carry the flag.

   [?ms] reuses an already prepared handle (the serve layer keeps one per
   cached network); the symbolic counter then stays 0 because the analysis
   was paid before this reduction started. *)
let shared_solver ?ms sys =
  let counters = { symbolic = 0; numeric = 0; solve_count = 0; col_solves = 0 } in
  let handle = ref ms in
  let get_handle s =
    match !handle with
    | Some h -> h
    | None ->
        counters.symbolic <- counters.symbolic + 1;
        let h = Dss.multi_shift ~template:s sys in
        handle := Some h;
        h
  in
  let sparse = match sys with Dss.Sparse _ -> true | Dss.Dense _ -> false in
  let cache : (Complex.t * bool, Dss.shifted_factor) Hashtbl.t =
    Hashtbl.create 16
  in
  let solve ~hermitian s r =
    (* normalise -0. components so equal shifts hash equally *)
    let s = { Complex.re = s.Complex.re +. 0.0; im = s.Complex.im +. 0.0 } in
    let key = (s, (not sparse) && hermitian) in
    let f =
      match Hashtbl.find_opt cache key with
      | Some f -> f
      | None ->
          let h = get_handle s in
          counters.numeric <- counters.numeric + 1;
          let f = Dss.multi_factor h ~hermitian:(snd key) s in
          Hashtbl.add cache key f;
          f
    in
    counters.solve_count <- counters.solve_count + 1;
    counters.col_solves <- counters.col_solves + r.Mat.cols;
    Dss.multi_solve_factored f ~hermitian r
  in
  (solve, counters)

let neg_cols = Array.map (Array.map Complex.neg)

let mat_of_cols n (cols : float array array) =
  Mat.init n (Array.length cols) (fun i j -> cols.(j).(i))

(* E and E^T solves: one real factorisation serves both directions (the
   sparse LU exposes transposed solves on the same factor). *)
let e_solvers sys =
  match sys with
  | Dss.Dense { e; _ } ->
      let lu_of m =
        lazy
          (try Mat.lu m
           with Mat.Singular _ -> invalid_arg "Lyap_ops: singular E")
      in
      let lu = lu_of e and lut = lu_of (Mat.transpose e) in
      ( (fun r -> Mat.lu_solve (Lazy.force lu) r),
        fun r -> Mat.lu_solve (Lazy.force lut) r )
  | Dss.Sparse { e; n; _ } ->
      let fact =
        lazy
          (try Sparse_lu.R.factorize (Csc.of_triplet e)
           with Sparse_lu.R.Singular _ -> invalid_arg "Lyap_ops: singular E")
      in
      let with_cols solve1 (r : Mat.t) =
        mat_of_cols n
          (Array.init r.Mat.cols (fun j ->
               solve1 (Lazy.force fact) (Mat.col r j)))
      in
      ( with_cols Sparse_lu.R.solve_vec,
        with_cols Sparse_lu.R.solve_transposed_vec )

(* The two Lr_lyap operator views of one descriptor system.

   Controllability:  (A + pE)^{-1} R = -(sE - A)^{-1} R        at s = -p.
   Observability:    (A^T + pE^T)^{-1} R = -(sE - A)^{-H} R    at s = -conj p.
   Both map onto the same factor key when the observability side is given
   conjugated shifts — which the callers always do. *)
let ops_of_dss solve sys =
  let n = Dss.order sys in
  let solve_e, solve_et = e_solvers sys in
  let mul_et, mul_at =
    match sys with
    | Dss.Sparse { e; a; _ } ->
        let et = Triplet.transpose e and at = Triplet.transpose a in
        ((fun v -> Triplet.mul_dense et v), fun v -> Triplet.mul_dense at v)
    | Dss.Dense { e; a; _ } ->
        let et = Mat.transpose e and at = Mat.transpose a in
        (Mat.mul et, Mat.mul at)
  in
  let ctrl =
    {
      Lr_lyap.n;
      mul_e = Dss.apply_e sys;
      mul_a = Dss.apply_a sys;
      solve_shift =
        (fun p r -> neg_cols (solve ~hermitian:false (Complex.neg p) r));
      solve_e;
    }
  in
  let obs =
    {
      Lr_lyap.n;
      mul_e = mul_et;
      mul_a = mul_at;
      solve_shift =
        (fun p r ->
          neg_cols
            (solve ~hermitian:true (Complex.neg (Complex.conj p)) r));
      solve_e = solve_et;
    }
  in
  (ctrl, obs)
