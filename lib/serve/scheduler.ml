(* The service's connection pool is the shared domain-pool scheduler from
   the linear-algebra layer (moved there so the hierarchical reducer can
   fan subdomains across the same machinery without a dependency cycle).
   Re-exported here so serve-layer callers keep their module path. *)

include Pmtbr_la.Scheduler
