(* Fixed pool of worker domains draining a shared queue — the service's
   unit of concurrency.  Jobs are opaque thunk arguments; a handler that
   raises logs the exception and the worker moves on, so one bad
   connection cannot take the pool down. *)

type 'a t = {
  queue : 'a option Queue.t; (* [None] is the per-worker stop sentinel *)
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable domains : unit Domain.t array;
  mutable stopped : bool;
}

let worker t handler =
  let rec loop () =
    let job =
      Mutex.lock t.lock;
      while Queue.is_empty t.queue do
        Condition.wait t.nonempty t.lock
      done;
      let j = Queue.pop t.queue in
      Mutex.unlock t.lock;
      j
    in
    match job with
    | None -> ()
    | Some j ->
        (try handler j
         with e ->
           Printf.eprintf "[pmtbr-serve] worker error: %s\n%!" (Printexc.to_string e));
        loop ()
  in
  loop ()

let create ~workers handler =
  let workers = max 1 workers in
  let t =
    {
      queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      domains = [||];
      stopped = false;
    }
  in
  t.domains <- Array.init workers (fun _ -> Domain.spawn (fun () -> worker t handler));
  t

let submit t job =
  Mutex.lock t.lock;
  let accepted = not t.stopped in
  if accepted then begin
    Queue.push (Some job) t.queue;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.lock;
  accepted

let stop t =
  Mutex.lock t.lock;
  if not t.stopped then begin
    t.stopped <- true;
    Array.iter (fun _ -> Queue.push None t.queue) t.domains;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.domains;
  t.domains <- [||]
