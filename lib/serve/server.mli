(** The reduction daemon: a Unix-domain stream socket speaking
    {!Protocol} frames, answering jobs from a {!Store} shared by a
    {!Scheduler} pool of connection workers.

    Lifecycle: {!run} binds the socket (replacing a stale socket file left
    by a killed process), accepts until a [shutdown] job arrives, then
    drains outstanding connections, joins the pool and unlinks the socket
    — a clean shutdown leaves nothing on disk. *)

type config = {
  socket_path : string;
  workers : int;  (** connection-handling domains (default 2) *)
  job_workers : int;  (** solver/kernel pool per job (default 1) *)
  max_cost : int;  (** store budget in approximate bytes *)
  max_frame : int;  (** per-frame payload cap in bytes *)
}

val default_config : socket_path:string -> config

val run : ?on_ready:(Store.t -> unit) -> config -> unit
(** Serve until shutdown.  [on_ready] fires once the socket is listening
    (in-process tests and benches use it to start their clients).
    @raise Failure if [socket_path] exists and is not a socket. *)
