(* Blocking client connection: one request frame out, one response frame
   back, over buffered channels on the connected socket. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let request t req =
  match
    Protocol.write_frame t.oc (Protocol.encode_request req);
    Protocol.read_frame t.ic
  with
  | Ok payload -> Protocol.parse_response payload
  | Error e -> Error (Protocol.frame_error_message e)
  | exception (Sys_error msg | Failure msg) -> Error ("transport failure: " ^ msg)
  | exception Unix.Unix_error (err, _, _) ->
      Error ("transport failure: " ^ Unix.error_message err)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection path f =
  let t = connect path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
