(** Fixed pool of worker domains draining a shared job queue — how the
    server fans concurrent connections across the machine while each job
    keeps the bitwise worker-invariance contract (the result of a job
    never depends on which worker ran it, or when).

    This is {!Pmtbr_la.Scheduler}, re-exported: the pool moved down to
    the linear-algebra layer so {!Pmtbr_core.Hier_reduce} can fan
    subdomains across the same machinery.  [stop] additionally reports
    queue serialization (pool spawned, jobs all on one domain) through
    [Par_kernel.warn_worker_collapse ~kind:`Serialized]. *)

type 'a t = 'a Pmtbr_la.Scheduler.t

val create : workers:int -> ('a -> unit) -> 'a t
(** Spawn [max 1 workers] domains running the handler on submitted jobs.
    A handler exception is logged and the worker keeps going. *)

val submit : 'a t -> 'a -> bool
(** Enqueue a job; [false] if the pool is already stopping (the job is
    dropped). *)

val stop : 'a t -> unit
(** Drain outstanding jobs, then join every worker.  Idempotent in effect;
    must be called from the domain that owns the pool. *)

val busiest_share : 'a t -> int * int
(** [(jobs_on_busiest_worker, total_jobs)] — see {!Pmtbr_la.Scheduler}. *)
