(* The reduction daemon.  One domain accepts; a Scheduler pool handles
   connections; the Store serialises what must be serialised.  The accept
   loop polls with a short select timeout so a shutdown job (handled on a
   worker) is noticed without a self-pipe. *)

type config = {
  socket_path : string;
  workers : int;
  job_workers : int;
  max_cost : int;
  max_frame : int;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 2;
    job_workers = 1;
    max_cost = 256 * 1024 * 1024;
    max_frame = Protocol.default_max_frame;
  }

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let fields_of_outcome (o : Store.outcome) =
  let sigma_head =
    Array.to_list (Array.sub o.Store.singular_values 0 (min 8 (Array.length o.Store.singular_values)))
    |> List.map (Printf.sprintf "%.17g")
    |> String.concat ","
  in
  [
    ("tier", Store.tier_name o.Store.tier);
    ("hash", o.Store.hash);
    ("states", string_of_int o.Store.states);
    ("order", string_of_int o.Store.order);
    ("solves", string_of_int o.Store.job_solves);
    ("digest", o.Store.digest);
    ("wall_us", string_of_int (int_of_float (o.Store.wall_s *. 1e6)));
    ("sigma", sigma_head);
  ]

let fields_of_counters (c : Store.counters) =
  [
    ("jobs", string_of_int c.Store.jobs);
    ("rom_hits", string_of_int c.Store.rom_hits);
    ("samples_hits", string_of_int c.Store.samples_hits);
    ("network_hits", string_of_int c.Store.network_hits);
    ("misses", string_of_int c.Store.misses);
    ("parses", string_of_int c.Store.parses);
    ("symbolic", string_of_int c.Store.symbolic);
    ("solves", string_of_int c.Store.solves);
    ("evictions", string_of_int c.Store.evictions);
  ]

(* One field per hierarchically-served network: its partition count and
   the per-subdomain warm/cold sample-tier counters, slot-aligned. *)
let fields_of_hier hs =
  List.map
    (fun (hash, (hn : Store.hier_net)) ->
      let ints a = String.concat "," (Array.to_list (Array.map string_of_int a)) in
      ( "hier_" ^ hash,
        Printf.sprintf "partitions=%d sub_hits=%s sub_misses=%s" hn.Store.partitions
          (ints hn.Store.sub_hits) (ints hn.Store.sub_misses) ))
    hs

let respond store ~shutdown request =
  match (request : Protocol.request) with
  | Ping -> Protocol.ok ~fields:[ ("pong", "1") ] ()
  | Stats ->
      Protocol.ok
        ~fields:
          (fields_of_counters (Store.counters store) @ fields_of_hier (Store.hier_stats store))
        ()
  | Shutdown ->
      Atomic.set shutdown true;
      Protocol.ok ~fields:[ ("stopping", "1") ] ()
  | Reduce j -> (
      match
        Store.reduce store ~netlist:j.Protocol.netlist ~meth:j.Protocol.meth
          ~band:j.Protocol.band ?tol:j.Protocol.tol ?order:j.Protocol.order
          ?partition:j.Protocol.partition ?max_part_states:j.Protocol.max_part_states
          ?interface_tol:j.Protocol.interface_tol ~export:j.Protocol.export
          ~samples:j.Protocol.samples ()
      with
      | Ok outcome ->
          let fields = fields_of_outcome outcome in
          let fields, body =
            match outcome.Store.netlist with
            | Some text -> (fields @ [ ("export", "1") ], text)
            | None -> (fields, "")
          in
          Protocol.ok ~fields ~body ()
      | Error msg -> Protocol.error msg)

(* One connection: serve frames until EOF, a framing error, or shutdown.
   After a framing error the stream offset is unknown, so an error
   response is sent and the connection closed. *)
let handle_connection store ~max_frame ~shutdown fd =
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  let send r = Protocol.write_frame oc (Protocol.encode_response r) in
  let rec loop () =
    match Protocol.read_frame ~max_bytes:max_frame ic with
    | Error Protocol.Eof -> ()
    | Error e ->
        (try send (Protocol.error (Protocol.frame_error_message e)) with _ -> ())
    | Ok payload -> (
        let response =
          match Protocol.parse_request payload with
          | Error msg -> Protocol.error msg
          | Ok request -> respond store ~shutdown request
        in
        match send response with
        | () -> if not (Atomic.get shutdown) then loop ()
        | exception (Sys_error _ | Unix.Unix_error _) -> ())
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> try loop () with Sys_error _ | Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Socket lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

(* A previous daemon killed without cleanup leaves a stale socket file
   that would make bind fail; replace it only when it really is a socket
   (never delete a user's regular file). *)
let remove_stale_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> failwith (Printf.sprintf "socket path %s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let run ?(on_ready = fun _ -> ()) config =
  (if Sys.os_type = "Unix" then
     try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let store = Store.create ~max_cost:config.max_cost ~job_workers:config.job_workers () in
  let shutdown = Atomic.make false in
  remove_stale_socket config.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink config.socket_path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
      Unix.listen listen_fd 64;
      let pool =
        Scheduler.create ~workers:config.workers
          (handle_connection store ~max_frame:config.max_frame ~shutdown)
      in
      on_ready store;
      (* poll-accept so the shutdown flag set by a worker is noticed *)
      while not (Atomic.get shutdown) do
        match Unix.select [ listen_fd ] [] [] 0.2 with
        | [], _, _ -> ()
        | _ :: _, _, _ -> (
            match Unix.accept listen_fd with
            | fd, _ -> if not (Scheduler.submit pool fd) then Unix.close fd
            | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      Scheduler.stop pool)
