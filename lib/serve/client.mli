(** Client side of the reduction service: a connection to the daemon's
    Unix socket carrying {!Protocol} frames.  Used by the [pmtbr batch]
    CLI, the serve bench and the end-to-end tests. *)

type t

val connect : string -> t
(** Connect to the daemon at the given socket path.
    @raise Unix.Unix_error when the daemon is not there. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** One round trip: send the request frame, read the response frame.
    [Error] carries a transport- or framing-level failure (a server-side
    job failure comes back as [Ok r] with [r.status = Error _]). *)

val close : t -> unit

val with_connection : string -> (t -> 'a) -> 'a
(** Connect, run, close (also on exception). *)
