(* Content-addressed model store.  See the interface for the tier layout
   and the determinism argument; the load-bearing choices are:

   - The canonical address is the hash of the *re-rendered* parse, so two
     texts that stamp the same network share every tier.

   - The network tier's multi-shift handle is built with the canonical
     default template shift, never a job's first sample point: the handle
     (and hence every solved column downstream) is a function of the
     network alone, which is what makes a warm-path ROM bitwise-identical
     to the cold-path one for any job history.

   - Sample caches are always extended with the whole point set in one
     batch, so a cache built on a warm network holds exactly the columns a
     cold run would have produced.

   - Locking: [t.lock] (innermost) guards the LRU and counters only;
     [network.lock] (outermost) serialises cache construction and use per
     network.  Nothing acquires [network.lock] while holding [t.lock], so
     the order is acyclic. *)

open Pmtbr_core
open Pmtbr_lti

(* The multi-shift handle is lazy: flat methods force it (paying the
   global symbolic analysis once per network), while hierarchical jobs
   never do — their factorizations live per subdomain, which is the whole
   point of serving networks beyond one global sparse LU. *)
type network = { sys : Dss.t; ms : Dss.multi_shift Lazy.t; lock : Mutex.t }

type samples_entry = { cache : Sample_cache.t }

type rom_entry = {
  r_rom : Dss.t;
  r_order : int;
  r_sigma : float array;
  r_digest : string;
}

type entry =
  | Network of network
  | Samples of samples_entry
  | Rom of rom_entry
  | Part of Partition.t

(* Per-network hierarchical counters (satellite of the stats response):
   how the network was last partitioned and, per subdomain slot, how
   often its sample columns were already warm.  Guarded by [t.lock]. *)
type hier_net = {
  partitions : int;
  sub_hits : int array;
  sub_misses : int array;
}

type mutable_counters = {
  mutable c_jobs : int;
  mutable c_rom_hits : int;
  mutable c_samples_hits : int;
  mutable c_network_hits : int;
  mutable c_misses : int;
  mutable c_parses : int;
  mutable c_symbolic : int;
  mutable c_solves : int;
  mutable c_evictions : int;
}

type t = {
  lru : entry Lru.t;
  lock : Mutex.t;
  ctr : mutable_counters;
  hier : (string, hier_net) Hashtbl.t;  (* network hash -> counters *)
  job_workers : int;
}

let create ?(max_cost = 256 * 1024 * 1024) ?(job_workers = 1) () =
  let ctr =
    {
      c_jobs = 0;
      c_rom_hits = 0;
      c_samples_hits = 0;
      c_network_hits = 0;
      c_misses = 0;
      c_parses = 0;
      c_symbolic = 0;
      c_solves = 0;
      c_evictions = 0;
    }
  in
  (* on_evict runs inside Lru.add, which the store only calls under
     [t.lock] — the counter bump is already serialised *)
  let lru = Lru.create ~on_evict:(fun _ _ -> ctr.c_evictions <- ctr.c_evictions + 1) ~max_cost ()
  in
  { lru; lock = Mutex.create (); ctr; hier = Hashtbl.create 16; job_workers = max 1 job_workers }

type tier = Rom_hit | Samples_hit | Network_hit | Miss

let tier_name = function
  | Rom_hit -> "rom-hit"
  | Samples_hit -> "samples-hit"
  | Network_hit -> "network-hit"
  | Miss -> "miss"

type outcome = {
  rom : Dss.t;
  states : int;
  order : int;
  singular_values : float array;
  tier : tier;
  hash : string;
  digest : string;
  job_solves : int;
  wall_s : float;
  netlist : string option;
}

type counters = {
  jobs : int;
  rom_hits : int;
  samples_hits : int;
  network_hits : int;
  misses : int;
  parses : int;
  symbolic : int;
  solves : int;
  evictions : int;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let counters t =
  with_lock t.lock (fun () ->
      {
        jobs = t.ctr.c_jobs;
        rom_hits = t.ctr.c_rom_hits;
        samples_hits = t.ctr.c_samples_hits;
        network_hits = t.ctr.c_network_hits;
        misses = t.ctr.c_misses;
        parses = t.ctr.c_parses;
        symbolic = t.ctr.c_symbolic;
        solves = t.ctr.c_solves;
        evictions = t.ctr.c_evictions;
      })

let hier_stats t =
  with_lock t.lock (fun () ->
      Hashtbl.fold
        (fun hash hn acc ->
          (hash, { hn with sub_hits = Array.copy hn.sub_hits; sub_misses = Array.copy hn.sub_misses })
          :: acc)
        t.hier []
      |> List.sort compare)

(* ------------------------------------------------------------------ *)
(* Content addressing                                                  *)
(* ------------------------------------------------------------------ *)

(* The netlist that gets STAMPED is rebuilt from the canonical IR, not
   from the submitted text's own node numbering: the network tier (and
   every ROM derived from it) must be a pure function of the canonical
   hash, so two reformatted texts of the same circuit produce
   bitwise-identical ROMs no matter which of them built the tier first. *)
let canonicalize text =
  match Pmtbr_circuit.Spice.parse_string text with
  | parsed ->
      let ir = Pmtbr_circuit.Spice_ir.canonical (Pmtbr_circuit.Spice.ir parsed) in
      let nl = Pmtbr_circuit.Spice_ir.to_netlist ir in
      if Pmtbr_circuit.Netlist.port_count nl < 1 then
        Error "netlist declares no .port — a reduction job needs at least one"
      else if Pmtbr_circuit.Netlist.node_count nl < 1 then
        Error "netlist has no internal nodes"
      else Ok (nl, Pmtbr_circuit.Spice_ir.render ir)
  | exception Pmtbr_circuit.Spice.Parse_error (line, msg) ->
      Error (Printf.sprintf "netlist parse error at line %d: %s" line msg)

let hash_of_canonical canonical = Digest.to_hex (Digest.string canonical)

let canonical_hash text =
  Result.map (fun (_, canonical) -> hash_of_canonical canonical) (canonicalize text)

let rom_digest rom =
  let e = Dss.e_dense rom
  and a = Dss.a_dense rom
  and b = Dss.b_matrix rom
  and c = Dss.c_matrix rom in
  Digest.to_hex (Digest.string (Marshal.to_string (e, a, b, c) []))

(* ------------------------------------------------------------------ *)
(* Keys, points and costs                                              *)
(* ------------------------------------------------------------------ *)

(* The sampling scheme is what the solved columns depend on; both methods
   over an in-band request draw the same Bands points, so they share the
   samples tier.  (The CLI convention is preserved: a pmtbr band starting
   at 0 means uniform sampling of [0, hi].) *)
let scheme_of ~meth ~band:(lo, hi) =
  match (meth : Protocol.meth) with
  | (Pmtbr | Hier) when lo <= 0.0 -> Sampling.Uniform { w_max = hi }
  | Pmtbr | Fs_pmtbr | Tbr_passive | Hier -> Sampling.Bands [ (lo, hi) ]

let scheme_descriptor ~meth ~band:(lo, hi) ~samples =
  let kind =
    match scheme_of ~meth ~band:(lo, hi) with Sampling.Uniform _ -> "uniform" | _ -> "bands"
  in
  Printf.sprintf "%s|%.17g:%.17g|%d" kind lo hi samples

let network_key hash = "net|" ^ hash

let samples_key hash ~meth ~band ~samples =
  Printf.sprintf "smp|%s|%s" hash (scheme_descriptor ~meth ~band ~samples)

(* The dissection goal, as a key fragment: fixed leaf count or the
   budget-driven recursive mode.  Everything the partition tree is a
   function of (beyond the network hash) must appear here. *)
let partition_descriptor ~spec ~max_part_states =
  match (spec : Protocol.partition_spec) with
  | Protocol.Parts k -> Printf.sprintf "k=%d" k
  | Protocol.Auto -> Printf.sprintf "auto|budget=%d" max_part_states

let rom_key hash ~meth ~band ~tol ~order ~samples ~hier =
  Printf.sprintf "rom|%s|%s|%s|tol=%s|order=%s%s" hash (Protocol.meth_name meth)
    (scheme_descriptor ~meth ~band ~samples)
    (match tol with Some t -> Printf.sprintf "%.17g" t | None -> "default")
    (match order with Some q -> string_of_int q | None -> "auto")
    (match hier with Some d -> "|" ^ d | None -> "")

let part_key hash ~mode = Printf.sprintf "part|%s|%s" hash mode

(* Subdomain sample columns are addressed by what they are a pure
   function of: the interior's canonical sub-netlist render, the sampling
   right-hand side, and the point scheme — so two networks sharing an
   identical subdomain share its solved columns, and a re-partitioned
   network re-finds any subdomain that came out the same. *)
let sub_hash (part : Partition.part) =
  let ir = Pmtbr_circuit.Spice_ir.of_netlist part.Partition.sub_netlist in
  Digest.to_hex (Digest.string (Pmtbr_circuit.Spice_ir.render (Pmtbr_circuit.Spice_ir.canonical ir)))

let hier_samples_key part ~meth ~band ~samples =
  Printf.sprintf "hsmp|%s|%s|%s" (sub_hash part)
    (Digest.to_hex (Digest.string (Marshal.to_string part.Partition.rhs [])))
    (scheme_descriptor ~meth ~band ~samples)

(* Approximate byte footprints driving the LRU budget. *)
let network_cost ~canonical sys = String.length canonical + (64 * Dss.order sys) + 1024

let samples_cost sys cache =
  (* raw columns + incremental Q + small R, all [n x columns]-dominated *)
  (24 * Dss.order sys * Sample_cache.columns cache) + 4096

let rom_cost (r : rom_entry) =
  (32 * r.r_order * r.r_order) + (8 * Array.length r.r_sigma) + 1024

let part_cost (pt : Partition.t) =
  Array.fold_left
    (fun acc (p : Partition.part) ->
      acc
      + (8 * p.Partition.rhs.Pmtbr_la.Mat.rows * p.Partition.rhs.Pmtbr_la.Mat.cols)
      + 48
        * (Array.length p.Partition.e_ig + Array.length p.Partition.a_ig
          + Array.length p.Partition.e_gi + Array.length p.Partition.a_gi))
    ((64 * pt.Partition.n) + 4096)
    pt.Partition.parts

(* ------------------------------------------------------------------ *)
(* Job execution                                                       *)
(* ------------------------------------------------------------------ *)

let find_network t key =
  match Lru.find t.lru key with Some (Network n) -> Some n | Some _ | None -> None

let find_samples t key =
  match Lru.find t.lru key with Some (Samples s) -> Some s | Some _ | None -> None

let find_rom t key =
  match Lru.find t.lru key with Some (Rom r) -> Some r | Some _ | None -> None

let find_part t key =
  match Lru.find t.lru key with Some (Part p) -> Some p | Some _ | None -> None

let outcome_of_rom ~tier ~hash ~solves ~wall ~netlist sys (r : rom_entry) =
  {
    rom = r.r_rom;
    states = Dss.order sys;
    order = r.r_order;
    singular_values = r.r_sigma;
    tier;
    hash;
    digest = r.r_digest;
    job_solves = solves;
    wall_s = wall;
    netlist;
  }

(* Export synthesis runs on demand from the cached ROM (deterministic, so
   a warm-tier export is byte-identical to a cold one) and is never part
   of the cached entry. *)
let export_of_rom ~export rom =
  if not export then Ok None
  else
    match
      Pmtbr_circuit.Synth.realize ~e:(Dss.e_dense rom) ~a:(Dss.a_dense rom)
        ~b:(Dss.b_matrix rom) ~c:(Dss.c_matrix rom) ()
    with
    | ir -> Ok (Some (Pmtbr_circuit.Spice_ir.render ir))
    | exception Pmtbr_circuit.Synth.Unrealizable msg ->
        Error ("export failed: ROM is not realizable: " ^ msg)

let default_partition = 4
let default_max_part_states = 20_000

let reduce t ~netlist ~meth ~band ?tol ?order ?partition ?max_part_states ?interface_tol
    ?(export = false) ~samples () =
  let t0 = Unix.gettimeofday () in
  let ( let* ) = Result.bind in
  let* band = Protocol.validate_band band in
  if samples < 1 then Error (Printf.sprintf "samples must be >= 1 (got %d)" samples)
  else
    let partition =
      match (meth, partition) with
      | Protocol.Hier, None -> Some (Protocol.Parts default_partition)
      | Protocol.Hier, some -> some
      | _, _ -> None
    in
    let budget = Option.value max_part_states ~default:default_max_part_states in
    (* the ROM key carries the full hierarchical mode: dissection goal
       (and budget when auto) plus the interface-compression tolerance *)
    let hier_desc =
      Option.map
        (fun spec ->
          partition_descriptor ~spec ~max_part_states:budget
          ^ match interface_tol with
            | Some it -> Printf.sprintf "|itol=%.17g" it
            | None -> "")
        partition
    in
    let* nl, canonical = canonicalize netlist in
    let hash = hash_of_canonical canonical in
    let rkey = rom_key hash ~meth ~band ~tol ~order ~samples ~hier:hier_desc in
    let nkey = network_key hash in
    let skey = samples_key hash ~meth ~band ~samples in
    (* fast path: exact repeat *)
    let fast =
      with_lock t.lock (fun () ->
          t.ctr.c_jobs <- t.ctr.c_jobs + 1;
          match (find_rom t rkey, find_network t nkey) with
          | Some r, Some n ->
              t.ctr.c_rom_hits <- t.ctr.c_rom_hits + 1;
              Some (n, r)
          | _ -> None)
    in
    match fast with
    | Some (n, r) ->
        let* netlist = export_of_rom ~export r.r_rom in
        Ok
          (outcome_of_rom ~tier:Rom_hit ~hash ~solves:0
             ~wall:(Unix.gettimeofday () -. t0)
             ~netlist n.sys r)
    | None -> (
        (* find-or-build the network entry.  The build (MNA stamp +
           symbolic analysis) runs under the store lock: it is quick next
           to the solves, and holding the lock makes the build unique. *)
        let* network, net_was_warm =
          with_lock t.lock (fun () ->
              match find_network t nkey with
              | Some n -> Ok (n, true)
              | None -> (
                  match Dss.of_netlist nl with
                  | sys ->
                      t.ctr.c_parses <- t.ctr.c_parses + 1;
                      (* the global symbolic analysis is deferred until a
                         flat method forces it; the counter bump happens
                         at force time, under [t.lock] only (we are never
                         forced while holding it) *)
                      let ms =
                        lazy
                          (let handle = Dss.multi_shift sys in
                           with_lock t.lock (fun () ->
                               t.ctr.c_symbolic <- t.ctr.c_symbolic + 1);
                           handle)
                      in
                      let n = { sys; ms; lock = Mutex.create () } in
                      Lru.add t.lru nkey ~cost:(network_cost ~canonical sys) (Network n);
                      Ok (n, false)
                  | exception e ->
                      Error (Printf.sprintf "MNA stamping failed: %s" (Printexc.to_string e))))
        in
        (* all sample-cache work for one network is serialised *)
        with_lock network.lock (fun () ->
            (* a racing job may have finished the same ROM while we
               waited; answer from it so the hit counters stay honest *)
            match with_lock t.lock (fun () -> find_rom t rkey) with
            | Some r ->
                with_lock t.lock (fun () -> t.ctr.c_rom_hits <- t.ctr.c_rom_hits + 1);
                let* netlist = export_of_rom ~export r.r_rom in
                Ok
                  (outcome_of_rom ~tier:Rom_hit ~hash ~solves:0
                     ~wall:(Unix.gettimeofday () -. t0)
                     ~netlist network.sys r)
            | None when meth = Protocol.Hier -> (
                (* hierarchical path: partition tier (keyed by the
                   dissection mode), then per-subdomain sample tiers keyed
                   by the sub-netlist hash — never the global samples
                   tier, never the global multi-shift.  The partition
                   tree is shared across interface tolerances: compression
                   happens after recombination, on the assembled pencil *)
                let spec = Option.value partition ~default:(Protocol.Parts default_partition) in
                match
                  let pkey =
                    part_key hash ~mode:(partition_descriptor ~spec ~max_part_states:budget)
                  in
                  let pt =
                    match with_lock t.lock (fun () -> find_part t pkey) with
                    | Some pt -> pt
                    | None ->
                        let pt =
                          match spec with
                          | Protocol.Parts k -> Partition.split ~parts:k nl
                          | Protocol.Auto -> Partition.split_auto ~max_states:budget nl
                        in
                        with_lock t.lock (fun () ->
                            Lru.add t.lru pkey ~cost:(part_cost pt) (Part pt));
                        pt
                  in
                  let pts = Sampling.points (scheme_of ~meth ~band) ~count:samples in
                  let k = Partition.part_count pt in
                  let hits = Array.make k 0 and misses = Array.make k 0 in
                  let job_solves = ref 0 in
                  let all_warm = ref true in
                  let sampled = ref false in
                  let subs =
                    Array.mapi
                      (fun i (part : Partition.part) ->
                        if part.Partition.rhs.Pmtbr_la.Mat.cols = 0 then
                          Hier_reduce.reduce_part ?order ?tol part pts
                        else begin
                          sampled := true;
                          let hkey = hier_samples_key part ~meth ~band ~samples in
                          let cache =
                            match with_lock t.lock (fun () -> find_samples t hkey) with
                            | Some s ->
                                hits.(i) <- 1;
                                s.cache
                            | None ->
                                all_warm := false;
                                misses.(i) <- 1;
                                let cache =
                                  Hier_reduce.sample_part ~workers:t.job_workers part pts
                                in
                                job_solves :=
                                  !job_solves + (Sample_cache.stats cache).Sample_cache.solves;
                                with_lock t.lock (fun () ->
                                    Lru.add t.lru hkey
                                      ~cost:(samples_cost part.Partition.sys cache)
                                      (Samples { cache }));
                                cache
                          in
                          Hier_reduce.basis_of_part ?order ?tol ~workers:t.job_workers part
                            cache ~samples ()
                        end)
                      pt.Partition.parts
                  in
                  let rom =
                    Hier_reduce.recombine ~workers:t.job_workers pt
                      (Array.map (fun (s : Hier_reduce.sub) -> s.Hier_reduce.basis) subs)
                  in
                  let rom =
                    match interface_tol with
                    | None -> rom
                    | Some itol ->
                        fst
                          (Hier_reduce.compress_interface ~workers:t.job_workers ~tol:itol pt
                             rom pts)
                  in
                  let sigma =
                    Array.concat
                      (Array.to_list
                         (Array.map
                            (fun (s : Hier_reduce.sub) -> s.Hier_reduce.singular_values)
                            subs))
                  in
                  let tier =
                    if !sampled && !all_warm then Samples_hit
                    else if net_was_warm then Network_hit
                    else Miss
                  in
                  (rom, sigma, hits, misses, !job_solves, tier, k)
                with
                | rom, sigma, hits, misses, job_solves, tier, k ->
                    let r =
                      {
                        r_rom = rom;
                        r_order = Dss.order rom;
                        r_sigma = sigma;
                        r_digest = rom_digest rom;
                      }
                    in
                    with_lock t.lock (fun () ->
                        (match tier with
                        | Samples_hit -> t.ctr.c_samples_hits <- t.ctr.c_samples_hits + 1
                        | Network_hit -> t.ctr.c_network_hits <- t.ctr.c_network_hits + 1
                        | _ -> t.ctr.c_misses <- t.ctr.c_misses + 1);
                        t.ctr.c_solves <- t.ctr.c_solves + job_solves;
                        let hn =
                          match Hashtbl.find_opt t.hier hash with
                          | Some hn when hn.partitions = k -> hn
                          | _ ->
                              let hn =
                                {
                                  partitions = k;
                                  sub_hits = Array.make k 0;
                                  sub_misses = Array.make k 0;
                                }
                              in
                              Hashtbl.replace t.hier hash hn;
                              hn
                        in
                        Array.iteri (fun i h -> hn.sub_hits.(i) <- hn.sub_hits.(i) + h) hits;
                        Array.iteri
                          (fun i m -> hn.sub_misses.(i) <- hn.sub_misses.(i) + m)
                          misses;
                        Lru.add t.lru rkey ~cost:(rom_cost r) (Rom r));
                    let* netlist = export_of_rom ~export r.r_rom in
                    Ok
                      (outcome_of_rom ~tier ~hash ~solves:job_solves
                         ~wall:(Unix.gettimeofday () -. t0)
                         ~netlist network.sys r)
                | exception e ->
                    Error
                      (Printf.sprintf "hierarchical reduction failed: %s"
                         (Printexc.to_string e)))
            | None when meth = Protocol.Tbr_passive -> (
                (* one-Gramian symmetric path: no samples tier — the ADI
                   columns are method-specific and cheap next to the ROM;
                   the shared multi-shift handle is still reused *)
                let stop =
                  let lo, _ = band in
                  if lo > 0.0 then
                    let pts = Sampling.points (Sampling.Bands [ band ]) ~count:8 in
                    Some
                      (Pmtbr_la.Lr_lyap.Band_residual
                         (Array.map (fun p -> (p.Sampling.s, p.Sampling.weight)) pts))
                  else None
                in
                let inductors = Pmtbr_circuit.Netlist.inductor_count nl in
                match
                  Tbr_passive.reduce_stats ?order ?tol ?stop ~inductors
                    ~ms:(Lazy.force network.ms) ~workers:t.job_workers network.sys
                with
                | red, stats ->
                    let tier = if net_was_warm then Network_hit else Miss in
                    let r =
                      {
                        r_rom = red.Tbr_passive.rom;
                        r_order = red.Tbr_passive.order;
                        r_sigma = red.Tbr_passive.hsv;
                        r_digest = rom_digest red.Tbr_passive.rom;
                      }
                    in
                    with_lock t.lock (fun () ->
                        (match tier with
                        | Network_hit -> t.ctr.c_network_hits <- t.ctr.c_network_hits + 1
                        | _ -> t.ctr.c_misses <- t.ctr.c_misses + 1);
                        t.ctr.c_solves <- t.ctr.c_solves + stats.Tbr_passive.solves;
                        Lru.add t.lru rkey ~cost:(rom_cost r) (Rom r));
                    let* netlist = export_of_rom ~export r.r_rom in
                    Ok
                      (outcome_of_rom ~tier ~hash ~solves:stats.Tbr_passive.solves
                         ~wall:(Unix.gettimeofday () -. t0)
                         ~netlist network.sys r)
                | exception e ->
                    Error
                      (Printf.sprintf "passive reduction failed: %s"
                         (Printexc.to_string e)))
            | None -> (
                let cached = with_lock t.lock (fun () -> find_samples t skey) in
                let* cache, tier, job_solves =
                  match cached with
                  | Some s ->
                      with_lock t.lock (fun () ->
                          t.ctr.c_samples_hits <- t.ctr.c_samples_hits + 1);
                      Ok (s.cache, Samples_hit, 0)
                  | None -> (
                      let pts = Sampling.points (scheme_of ~meth ~band) ~count:samples in
                      match
                        let cache =
                          Sample_cache.create ~workers:t.job_workers
                            ~ms:(Lazy.force network.ms) network.sys
                        in
                        Sample_cache.extend cache pts;
                        cache
                      with
                      | cache ->
                          let st = Sample_cache.stats cache in
                          let tier = if net_was_warm then Network_hit else Miss in
                          with_lock t.lock (fun () ->
                              (match tier with
                              | Network_hit ->
                                  t.ctr.c_network_hits <- t.ctr.c_network_hits + 1
                              | _ -> t.ctr.c_misses <- t.ctr.c_misses + 1);
                              t.ctr.c_solves <- t.ctr.c_solves + st.Sample_cache.solves;
                              Lru.add t.lru skey
                                ~cost:(samples_cost network.sys cache)
                                (Samples { cache }));
                          Ok (cache, tier, st.Sample_cache.solves)
                      | exception e ->
                          Error
                            (Printf.sprintf "shifted solves failed: %s" (Printexc.to_string e)))
                in
                match
                  Pmtbr.of_cache network.sys cache ~scale:1.0 ?order ?tol
                    ~workers:t.job_workers ~samples ()
                with
                | result ->
                    let r =
                      {
                        r_rom = result.Pmtbr.rom;
                        r_order = Dss.order result.Pmtbr.rom;
                        r_sigma = result.Pmtbr.singular_values;
                        r_digest = rom_digest result.Pmtbr.rom;
                      }
                    in
                    with_lock t.lock (fun () -> Lru.add t.lru rkey ~cost:(rom_cost r) (Rom r));
                    let* netlist = export_of_rom ~export r.r_rom in
                    Ok
                      (outcome_of_rom ~tier ~hash ~solves:job_solves
                         ~wall:(Unix.gettimeofday () -. t0)
                         ~netlist network.sys r)
                | exception e ->
                    Error (Printf.sprintf "reduction failed: %s" (Printexc.to_string e)))))
