(** Content-addressed model store: the three persistent tiers that make
    repeat and incremental reduction queries cheap, in one size-bounded
    {!Lru}.

    - {b Network tier} (keyed by netlist hash): the parsed netlist stamped
      to a sparse {!Pmtbr_lti.Dss.t}, plus one prepared
      [Dss.multi_shift] handle — the symbolic sparse-LU analysis is paid
      once per network, ever.
    - {b Samples tier} (keyed by hash + sampling scheme): the
      {!Pmtbr_core.Sample_cache} of solved shift columns, so a repeat
      query with a {e tighter tolerance or different order} re-finishes
      through [Pmtbr.of_cache] with zero new solves.
    - {b ROM tier} (keyed by hash + method + band + tol + order +
      samples + partition): the finished reduced model, returned outright
      on exact repeats.

    Hierarchical jobs ([meth = Hier]) add two more tiers: a {b partition
    tier} (hash + part count: the {!Pmtbr_core.Partition.t}) and
    {b per-subdomain sample tiers} keyed by the subdomain's canonical
    sub-netlist hash + its sampling right-hand side + the point scheme —
    so a warm job reuses every subdomain's solved columns, and two
    networks sharing an identical subdomain share its columns too.  The
    network tier's global symbolic analysis is {e lazy}: hierarchical
    jobs never pay it (their factorizations live per subdomain), flat
    methods force it once per network.

    {b Determinism.}  Every tier is a pure function of the job key: the
    multi-shift handle always uses the canonical template shift, sample
    caches are always extended with the full point set in one batch, and
    the reduction finishes through the worker-invariant dense kernels.  A
    job therefore produces a bitwise-identical ROM whether it misses every
    tier, lands on a warm network, or re-finishes a cached sample set —
    and regardless of which jobs ran before it (asserted in the test
    suite and the serve bench).

    Domain-safe: a global lock guards the LRU and counters, a per-network
    lock serialises sample-cache construction and use, so concurrent jobs
    on different networks overlap while same-network jobs queue. *)

open Pmtbr_lti

type t

val create : ?max_cost:int -> ?job_workers:int -> unit -> t
(** [max_cost] is the LRU budget in approximate bytes across all three
    tiers (default 256 MiB); [job_workers] sizes the per-job solver and
    dense-kernel pools (default 1 — service concurrency comes from
    scheduling jobs, results are bitwise-identical either way). *)

type tier = Rom_hit | Samples_hit | Network_hit | Miss

val tier_name : tier -> string
(** ["rom-hit" | "samples-hit" | "network-hit" | "miss"]. *)

type outcome = {
  rom : Dss.t;
  states : int;  (** full-model order *)
  order : int;  (** reduced order *)
  singular_values : float array;
  tier : tier;  (** deepest tier that was already warm *)
  hash : string;  (** content hash of the canonical netlist *)
  digest : string;  (** hex digest of the ROM matrices (bitwise identity) *)
  job_solves : int;  (** shifted solves this job performed *)
  wall_s : float;
  netlist : string option;
      (** canonical synthesized ROM netlist, when the job asked for
          [export] (realizable ROMs only) *)
}

type counters = {
  jobs : int;
  rom_hits : int;
  samples_hits : int;
  network_hits : int;
  misses : int;
  parses : int;  (** network-tier builds (parse + MNA stamp) *)
  symbolic : int;  (** multi-shift handles prepared (symbolic analyses) *)
  solves : int;  (** shifted solves across the store lifetime *)
  evictions : int;
}

val counters : t -> counters
(** Snapshot of the lifetime counters. *)

(** Per-network hierarchical counters: the part count of the network's
    last partition and, per subdomain slot, how many jobs found that
    subdomain's sample columns warm ([sub_hits]) vs. had to solve them
    ([sub_misses]).  Reset when a job re-partitions the network with a
    different part count. *)
type hier_net = {
  partitions : int;
  sub_hits : int array;
  sub_misses : int array;
}

val hier_stats : t -> (string * hier_net) list
(** Snapshot of the hierarchical counters, sorted by network hash
    (deterministic order for the stats response). *)

val canonical_hash : string -> (string, string) result
(** Content hash of a netlist text: parse, re-render canonically, digest —
    so formatting, comments and node names do not perturb the address.
    [Error] carries the parse failure. *)

val rom_digest : Dss.t -> string
(** Hex digest of a model's dense (E, A, B, C) — equal digests certify
    bitwise-identical ROMs. *)

val reduce :
  t ->
  netlist:string ->
  meth:Protocol.meth ->
  band:float * float ->
  ?tol:float ->
  ?order:int ->
  ?partition:Protocol.partition_spec ->
  ?max_part_states:int ->
  ?interface_tol:float ->
  ?export:bool ->
  samples:int ->
  unit ->
  (outcome, string) result
(** Run (or answer from cache) one reduction job.  The band must already
    satisfy {!Protocol.validate_band}; netlist parse errors, port-less
    netlists and singular pencils come back as [Error].

    [meth = Tbr_passive] runs the one-Gramian passivity-preserving
    truncation through the network tier's shared multi-shift handle (no
    samples tier — the ADI columns are method-specific); a band with
    [lo > 0] switches the Gramian solver to the band-limited residual
    criterion.  [meth = Hier] dissects per [partition] ([Parts k], default
    [Parts 4], or [Auto] recursing to [max_part_states] states per part,
    default 20000; ignored by other methods) and runs the
    domain-decomposed pipeline through the per-subdomain sample tiers;
    its tier is [Samples_hit] when every sampled subdomain was warm.
    The partition tier is keyed by the dissection mode, and the
    per-subdomain sample tiers by each leaf's canonical sub-netlist hash
    — re-partitioning that leaves a subtree's leaves unchanged re-finds
    their columns warm.  [interface_tol] compresses the assembled
    interface block through the second-pass PMTBR (the partition and
    sample tiers are shared across tolerances; only the ROM key carries
    it).  [export] synthesizes the ROM back into a canonical netlist
    ({!outcome.netlist}) — an error if the ROM is not RC-realizable. *)
