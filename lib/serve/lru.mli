(** Size-bounded LRU map with string keys — the one eviction structure
    shared by every tier of the {!Store} (parsed networks, sample caches,
    finished ROMs all live in a single budget).

    Each entry carries a caller-supplied {e cost} (an approximate byte
    count); inserting past the budget evicts least-recently-used entries
    until the total fits again.  {!find} counts as a use.  The entry being
    inserted is never evicted by its own insertion, so a single oversized
    entry still lands (and simply has the cache to itself). *)

type 'a t

val create : ?on_evict:(string -> 'a -> unit) -> max_cost:int -> unit -> 'a t
(** Empty cache with the given budget (arbitrary cost units, [>= 0]).
    [on_evict] is called on every evicted or replaced binding, after it
    has been removed. *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit moves the entry to most-recently-used. *)

val mem : 'a t -> string -> bool
(** Membership without touching recency. *)

val add : 'a t -> string -> cost:int -> 'a -> unit
(** Insert or replace (replacement fires [on_evict] for the old binding),
    mark most-recently-used, then evict LRU entries until the total cost
    fits the budget (the new entry itself is exempt). *)

val remove : 'a t -> string -> unit
(** Drop a binding if present (fires [on_evict]). *)

val length : 'a t -> int
val total_cost : 'a t -> int

val keys : 'a t -> string list
(** Keys from most- to least-recently used. *)
