(* Wire protocol: decimal length prefix + newline + payload; payloads are
   header lines, a blank line, then an opaque body.  Everything here is
   pure string transformation apart from the two channel helpers, so the
   tests exercise framing and parsing without a socket. *)

let default_max_frame = 8 * 1024 * 1024
let length_digits = 12

type frame_error = Eof | Malformed of string | Oversized of int

let frame_error_message = function
  | Eof -> "end of stream"
  | Malformed msg -> "malformed frame: " ^ msg
  | Oversized n -> Printf.sprintf "oversized frame: %d bytes" n

let write_frame oc payload =
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  flush oc

let read_frame ?(max_bytes = default_max_frame) ic =
  (* length line: bare digits, newline-terminated, bounded *)
  let buf = Buffer.create 16 in
  let rec length_line first =
    match input_char ic with
    | '\n' ->
        if Buffer.length buf = 0 then Error (Malformed "empty length line")
        else Ok (Buffer.contents buf)
    | '0' .. '9' as c ->
        if Buffer.length buf >= length_digits then
          Error (Malformed "length prefix too long")
        else begin
          Buffer.add_char buf c;
          length_line false
        end
    | c -> Error (Malformed (Printf.sprintf "unexpected byte %C in length prefix" c))
    | exception End_of_file ->
        if first then Error Eof else Error (Malformed "stream ended inside length prefix")
  in
  match length_line true with
  | Error _ as e -> e
  | Ok digits -> (
      match int_of_string_opt digits with
      | None -> Error (Malformed "unparsable length prefix")
      | Some len when len > max_bytes -> Error (Oversized len)
      | Some len -> (
          try Ok (really_input_string ic len)
          with End_of_file -> Error (Malformed "stream ended inside payload")))

(* ------------------------------------------------------------------ *)
(* Band validation (shared with the CLI --band converter)              *)
(* ------------------------------------------------------------------ *)

let validate_band (lo, hi) =
  if not (Float.is_finite lo && Float.is_finite hi) then
    Error (Printf.sprintf "band endpoints must be finite (got %g:%g)" lo hi)
  else if lo < 0.0 then Error (Printf.sprintf "band low edge must be >= 0 (got %g)" lo)
  else if not (lo < hi) then
    Error (Printf.sprintf "band must satisfy LO < HI (got %g:%g)" lo hi)
  else Ok (lo, hi)

let parse_band s =
  match String.split_on_char ':' s with
  | [ lo; hi ] -> (
      match (float_of_string_opt (String.trim lo), float_of_string_opt (String.trim hi)) with
      | Some lo, Some hi -> validate_band (lo, hi)
      | _ -> Error (Printf.sprintf "expected LO:HI in rad/s (got %S)" s))
  | _ -> Error (Printf.sprintf "expected LO:HI in rad/s (got %S)" s)

(* ------------------------------------------------------------------ *)
(* Payload structure: header lines, blank line, body                   *)
(* ------------------------------------------------------------------ *)

let split_payload payload =
  match String.index_opt payload '\n' with
  | None -> (payload, "")
  | Some _ -> (
      (* headers end at the first empty line *)
      let rec find_break from =
        match String.index_from_opt payload from '\n' with
        | None -> None
        | Some i ->
            if i + 1 < String.length payload && payload.[i + 1] = '\n' then Some (i + 1)
            else if i = from then Some i (* payload starts with a blank line *)
            else find_break (i + 1)
      in
      match find_break 0 with
      | None -> (payload, "")
      | Some i ->
          ( String.sub payload 0 (max 0 (i - 1)),
            String.sub payload (i + 1) (String.length payload - i - 1) ))

let header_lines headers =
  String.split_on_char '\n' headers
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None
         else
           match String.index_opt line ' ' with
           | None -> Some (line, "")
           | Some i ->
               Some
                 ( String.sub line 0 i,
                   String.trim (String.sub line (i + 1) (String.length line - i - 1)) ))

let render lines body =
  let buf = Buffer.create 256 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf k;
      if v <> "" then begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf v
      end;
      Buffer.add_char buf '\n')
    lines;
  Buffer.add_char buf '\n';
  Buffer.add_string buf body;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

type meth = Pmtbr | Fs_pmtbr | Tbr_passive | Hier

let meth_names =
  [ ("pmtbr", Pmtbr); ("fs-pmtbr", Fs_pmtbr); ("tbr-passive", Tbr_passive); ("hier", Hier) ]

let meth_name m = fst (List.find (fun (_, m') -> m' = m) meth_names)

type partition_spec = Parts of int | Auto

type job = {
  meth : meth;
  band : float * float;
  tol : float option;
  order : int option;
  samples : int;
  partition : partition_spec option;
  max_part_states : int option;
  interface_tol : float option;
  export : bool;
  netlist : string;
}

let default_samples = 30

type request = Reduce of job | Ping | Stats | Shutdown

let encode_request = function
  | Ping -> render [ ("job", "ping") ] ""
  | Stats -> render [ ("job", "stats") ] ""
  | Shutdown -> render [ ("job", "shutdown") ] ""
  | Reduce j ->
      let lo, hi = j.band in
      let lines =
        [ ("job", "reduce"); ("method", meth_name j.meth);
          ("band", Printf.sprintf "%.17g:%.17g" lo hi) ]
        @ (match j.tol with Some t -> [ ("tol", Printf.sprintf "%.17g" t) ] | None -> [])
        @ (match j.order with Some q -> [ ("order", string_of_int q) ] | None -> [])
        @ [ ("samples", string_of_int j.samples) ]
        @ (match j.partition with
          | Some (Parts k) -> [ ("partition", string_of_int k) ]
          | Some Auto -> [ ("partition", "auto") ]
          | None -> [])
        @ (match j.max_part_states with
          | Some b -> [ ("max-part-states", string_of_int b) ]
          | None -> [])
        @ (match j.interface_tol with
          | Some t -> [ ("interface-tol", Printf.sprintf "%.17g" t) ]
          | None -> [])
        @ (if j.export then [ ("export", "1") ] else [])
      in
      render lines j.netlist

let parse_reduce kvs body =
  let lookup k = List.assoc_opt k kvs in
  let ( let* ) = Result.bind in
  let* meth =
    match lookup "method" with
    | None -> Ok Pmtbr
    | Some name -> (
        match List.assoc_opt name meth_names with
        | Some m -> Ok m
        | None ->
            Error
              (Printf.sprintf "unknown method %S (expected %s)" name
                 (String.concat ", " (List.map fst meth_names))))
  in
  let* band =
    match lookup "band" with
    | None -> Error "reduce job is missing the band field"
    | Some s -> parse_band s
  in
  let* tol =
    match lookup "tol" with
    | None -> Ok None
    | Some s -> (
        match float_of_string_opt s with
        | Some t when Float.is_finite t && t > 0.0 -> Ok (Some t)
        | Some t -> Error (Printf.sprintf "tol must be finite and > 0 (got %g)" t)
        | None -> Error (Printf.sprintf "unparsable tol %S" s))
  in
  let* order =
    match lookup "order" with
    | None -> Ok None
    | Some s -> (
        match int_of_string_opt s with
        | Some q when q >= 1 -> Ok (Some q)
        | Some q -> Error (Printf.sprintf "order must be >= 1 (got %d)" q)
        | None -> Error (Printf.sprintf "unparsable order %S" s))
  in
  let* samples =
    match lookup "samples" with
    | None -> Ok default_samples
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n >= 1 && n <= 100_000 -> Ok n
        | Some n -> Error (Printf.sprintf "samples must be in [1, 100000] (got %d)" n)
        | None -> Error (Printf.sprintf "unparsable samples %S" s))
  in
  let* partition =
    match lookup "partition" with
    | None -> Ok None
    | Some "auto" -> Ok (Some Auto)
    | Some s -> (
        match int_of_string_opt s with
        | Some k when k >= 1 && k <= 4096 -> Ok (Some (Parts k))
        | Some k -> Error (Printf.sprintf "partition must be in [1, 4096] or auto (got %d)" k)
        | None -> Error (Printf.sprintf "unparsable partition %S (expected a count or auto)" s))
  in
  let* max_part_states =
    match lookup "max-part-states" with
    | None -> Ok None
    | Some s -> (
        match int_of_string_opt s with
        | Some b when b >= 1 && b <= 100_000_000 ->
            if partition = Some Auto then Ok (Some b)
            else Error "max-part-states requires partition auto"
        | Some b -> Error (Printf.sprintf "max-part-states must be in [1, 1e8] (got %d)" b)
        | None -> Error (Printf.sprintf "unparsable max-part-states %S" s))
  in
  let* interface_tol =
    match lookup "interface-tol" with
    | None -> Ok None
    | Some s -> (
        match float_of_string_opt s with
        | Some t when Float.is_finite t && t > 0.0 -> Ok (Some t)
        | Some t -> Error (Printf.sprintf "interface-tol must be finite and > 0 (got %g)" t)
        | None -> Error (Printf.sprintf "unparsable interface-tol %S" s))
  in
  let* export =
    match lookup "export" with
    | None -> Ok false
    | Some ("1" | "true") -> Ok true
    | Some ("0" | "false") -> Ok false
    | Some s -> Error (Printf.sprintf "export must be 0 or 1 (got %S)" s)
  in
  let* () =
    match (meth, partition) with
    | Hier, _ | _, None -> Ok ()
    | _, Some _ -> Error "partition only applies to method hier"
  in
  let* () =
    match (meth, interface_tol) with
    | Hier, _ | _, None -> Ok ()
    | _, Some _ -> Error "interface-tol only applies to method hier"
  in
  if String.trim body = "" then Error "reduce job is missing the netlist body"
  else
    Ok
      (Reduce
         {
           meth;
           band;
           tol;
           order;
           samples;
           partition;
           max_part_states;
           interface_tol;
           export;
           netlist = body;
         })

let parse_request payload =
  let headers, body = split_payload payload in
  let kvs = header_lines headers in
  match List.assoc_opt "job" kvs with
  | None -> Error "first header must be a job line"
  | Some "ping" -> Ok Ping
  | Some "stats" -> Ok Stats
  | Some "shutdown" -> Ok Shutdown
  | Some "reduce" -> parse_reduce kvs body
  | Some other -> Error (Printf.sprintf "unknown job kind %S" other)

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

type response = {
  status : (unit, string) result;
  fields : (string * string) list;
  body : string;
}

let ok ?(fields = []) ?(body = "") () = { status = Ok (); fields; body }
let error msg = { status = Error msg; fields = []; body = "" }

(* error text rides in its own header; newlines would break the line
   structure, so they are flattened *)
let one_line s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let encode_response r =
  match r.status with
  | Ok () -> render (("status", "ok") :: r.fields) r.body
  | Error msg -> render [ ("status", "error"); ("error", one_line msg) ] r.body

let parse_response payload =
  let headers, body = split_payload payload in
  match header_lines headers with
  | ("status", "ok") :: fields -> Ok { status = Ok (); fields; body }
  | ("status", "error") :: fields ->
      let msg = Option.value (List.assoc_opt "error" fields) ~default:"unknown error" in
      Ok { status = Error msg; fields; body }
  | _ -> Error "response must start with a status line"

let field r k = List.assoc_opt k r.fields
