(** Wire protocol of the reduction service: length-prefixed frames over a
    Unix-domain stream socket, each frame a line-oriented payload.

    {b Framing.}  A frame is the ASCII decimal byte length of the payload,
    a newline, then exactly that many payload bytes.  The length line is
    capped at {!length_digits} digits and payloads at a caller-chosen
    [max_bytes], so a malformed or hostile peer fails fast with a protocol
    error instead of a blown buffer.

    {b Payload.}  Headers are lines of [key SP value]; an empty line
    terminates them and everything after it is the opaque body (a request
    carries the inline netlist text there).  The first header line names
    the frame kind ([job reduce], [job ping], ...; [status ok] /
    [status error] for responses). *)

val default_max_frame : int
(** Default payload cap: 8 MiB. *)

val length_digits : int
(** Maximum digits accepted in the length prefix (12). *)

type frame_error =
  | Eof  (** clean end of stream before a length byte *)
  | Malformed of string  (** bad length line or truncated payload *)
  | Oversized of int  (** declared payload length beyond [max_bytes] *)

val frame_error_message : frame_error -> string

val write_frame : out_channel -> string -> unit
(** Write one frame (length prefix + payload) and flush. *)

val read_frame : ?max_bytes:int -> in_channel -> (string, frame_error) result
(** Read one frame; never reads past it. *)

(** {1 Band validation}

    Shared by the CLI [--band] converter and the serve protocol: both
    reject reversed, negative, zero-width and non-finite bands at the edge
    instead of failing deep inside [Sampling.Bands]. *)

val validate_band : float * float -> (float * float, string) result
(** Require finite [0 <= lo < hi]. *)

val parse_band : string -> (float * float, string) result
(** Parse ["LO:HI"] (rad/s) and validate. *)

(** {1 Requests} *)

type meth = Pmtbr | Fs_pmtbr | Tbr_passive | Hier

val meth_names : (string * meth) list
val meth_name : meth -> string

type partition_spec =
  | Parts of int  (** fixed leaf-count dissection goal *)
  | Auto  (** recurse to the per-part state budget ([max_part_states]) *)

type job = {
  meth : meth;
  band : float * float;  (** validated: finite [0 <= lo < hi] *)
  tol : float option;  (** singular-value tail tolerance, finite [> 0] *)
  order : int option;  (** explicit reduced order, [>= 1] *)
  samples : int;  (** frequency points, [>= 1] (default {!default_samples}) *)
  partition : partition_spec option;
      (** dissection goal for [Hier]: a subdomain count in [1, 4096]
          (wire value: the integer) or [Auto] (wire value: ["auto"]);
          rejected on other methods *)
  max_part_states : int option;
      (** per-part state budget driving [Auto] recursion, in [1, 1e8]
          (wire key: [max-part-states]); rejected without
          [partition auto] *)
  interface_tol : float option;
      (** second-pass interface-compression tolerance, finite [> 0]
          (wire key: [interface-tol]); [Hier] only — absent means the
          interface is kept exact *)
  export : bool;  (** synthesize the ROM back to a netlist in the response body *)
  netlist : string;  (** inline SPICE-dialect netlist text *)
}

val default_samples : int

type request =
  | Reduce of job
  | Ping
  | Stats  (** store counters snapshot *)
  | Shutdown

val encode_request : request -> string
val parse_request : string -> (request, string) result
(** Parsing validates every field (unknown job kind or method, bad band,
    non-positive tolerance/order/samples, missing netlist) and returns a
    human-readable error for the error response. *)

(** {1 Responses} *)

type response = {
  status : (unit, string) result;  (** [Error msg] carries the failure *)
  fields : (string * string) list;  (** informational key/value pairs *)
  body : string;
      (** opaque payload: the synthesized ROM netlist for an [export]
          reduce job, empty otherwise *)
}

val ok : ?fields:(string * string) list -> ?body:string -> unit -> response
val error : string -> response

val encode_response : response -> string
val parse_response : string -> (response, string) result

val field : response -> string -> string option
(** First value bound to a key, if any. *)
