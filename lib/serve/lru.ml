(* Size-bounded LRU map: hash table for lookup, intrusive doubly-linked
   list for recency.  All operations are O(1) except the eviction sweep,
   which removes one tail node per step.  Not domain-safe by itself — the
   store serialises access under its own lock. *)

type 'a node = {
  key : string;
  value : 'a;
  cost : int;
  mutable prev : 'a node option; (* towards MRU *)
  mutable next : 'a node option; (* towards LRU *)
}

type 'a t = {
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option; (* most recently used *)
  mutable tail : 'a node option; (* least recently used *)
  mutable total : int;
  max_cost : int;
  on_evict : string -> 'a -> unit;
}

let create ?(on_evict = fun _ _ -> ()) ~max_cost () =
  if max_cost < 0 then invalid_arg "Lru.create: max_cost must be >= 0";
  { tbl = Hashtbl.create 64; head = None; tail = None; total = 0; max_cost; on_evict }

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let drop ?(notify = true) t node =
  unlink t node;
  Hashtbl.remove t.tbl node.key;
  t.total <- t.total - node.cost;
  if notify then t.on_evict node.key node.value

let remove t key = match Hashtbl.find_opt t.tbl key with Some n -> drop t n | None -> ()

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some node ->
      unlink t node;
      push_front t node;
      Some node.value

let mem t key = Hashtbl.mem t.tbl key

(* Evict from the tail until the budget fits, never touching [keep]: the
   entry just inserted must land even when it alone exceeds the budget. *)
let rec enforce t ~keep =
  if t.total > t.max_cost then
    match t.tail with
    | Some node when node != keep ->
        drop t node;
        enforce t ~keep
    | Some _ | None -> ()

let add t key ~cost v =
  if cost < 0 then invalid_arg "Lru.add: cost must be >= 0";
  remove t key;
  let node = { key; value = v; cost; prev = None; next = None } in
  Hashtbl.replace t.tbl key node;
  push_front t node;
  t.total <- t.total + cost;
  enforce t ~keep:node

let length t = Hashtbl.length t.tbl
let total_cost t = t.total

let keys t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk (node.key :: acc) node.next
  in
  walk [] t.head
