(** Hierarchical domain-decomposed PMTBR: {!Partition.split} the netlist,
    run the ordinary sampling pipeline per subdomain (each interior gets
    its own [Dss.multi_shift] handle inside a {!Sample_cache} with the
    part's ports-plus-couplings [Fixed_rhs]), and recombine with the
    interface-preserving block basis blkdiag(V_1 .. V_K, I) — interface
    states are kept exactly, so with untruncated subdomain bases the
    result is an exact congruence transform of the full model, and with
    truncated bases port behavior matches flat reduction to the
    truncation tolerance.

    No step ever pays a global factorization: the largest sparse LU is a
    subdomain interior, which is what lets networks beyond the flat
    path's reach complete.

    {b Determinism.}  Subdomains fan across the shared
    {!Pmtbr_la.Scheduler} pool but each job runs its solves and dense
    kernels serially and computes a pure function of (partition, points,
    order/tol) — the recombined ROM is bitwise-identical for any
    [workers] (or [oversubscribe]) setting, the contract Shift_engine
    established and CI enforces for this layer too. *)

open Pmtbr_la
open Pmtbr_lti

type sub = {
  basis : Mat.t;  (** interior projection basis V_k, orthonormal columns *)
  singular_values : float array;  (** subdomain sample singular values *)
  sub_order : int;  (** columns kept *)
  solves : int;  (** shifted solves this subdomain performed *)
}

type stats = {
  parts : int;
  interface : int;  (** interface state count (kept exactly) *)
  states : int;  (** full-model state count *)
  order : int;  (** recombined ROM order = sum sub_orders + interface *)
  sub_orders : int array;
  solves : int;  (** total shifted solves across subdomains *)
  sub_wall_s : float array;  (** per-subdomain wall seconds, partition order *)
}

val sample_part :
  ?workers:int -> ?oversubscribe:bool -> Partition.part -> Sampling.point array -> Sample_cache.t
(** Solve the part's sampling right-hand side at every point through a
    fresh subdomain cache (its own multi-shift handle; [workers] defaults
    to 1 — fan-out parallelism lives across subdomains, not inside one).
    The store keeps these caches warm across jobs, keyed by the part's
    sub-netlist hash. *)

val basis_of_part :
  ?order:int -> ?tol:float -> ?workers:int -> Partition.part -> Sample_cache.t ->
  samples:int -> unit -> sub
(** Finish one subdomain through {!Pmtbr.of_cache}: SVD of the cache's
    small factor, basis lifted from its thin Q.  [order]/[tol] bound each
    subdomain's kept columns (same semantics as {!Pmtbr.choose_order}). *)

val reduce_part : ?order:int -> ?tol:float -> Partition.part -> Sampling.point array -> sub
(** {!sample_part} then {!basis_of_part}; a part with an empty sampling
    right-hand side (floating fragment) yields an empty basis. *)

val recombine : Partition.t -> Mat.t array -> Dss.t
(** Project the partitioned model through blkdiag(bases, I_interface):
    dense (order x order) reduced system with the interface block exact.
    Raises [Invalid_argument] unless given one basis per part. *)

val reduce_partitioned :
  ?order:int -> ?tol:float -> ?workers:int -> ?oversubscribe:bool ->
  Partition.t -> Sampling.point array -> Dss.t * stats
(** Fan {!reduce_part} over the subdomains on a [Scheduler] pool of
    [min workers (recommended cap) parts] domains ([oversubscribe] lifts
    the hardware cap, as in {!Shift_engine}), then {!recombine}.  A
    subdomain failure re-raises the lowest-index exception after the pool
    drains.  Bitwise worker-invariant. *)

val reduce_stats :
  ?order:int -> ?tol:float -> ?workers:int -> ?oversubscribe:bool -> ?sketch:int ->
  parts:int -> Pmtbr_circuit.Netlist.t -> Sampling.point array -> Dss.t * stats
(** {!Partition.split} then {!reduce_partitioned}. *)

val reduce :
  ?order:int -> ?tol:float -> ?workers:int -> ?oversubscribe:bool -> ?sketch:int ->
  parts:int -> Pmtbr_circuit.Netlist.t -> Sampling.point array -> Dss.t
(** {!reduce_stats} without the counters. *)
