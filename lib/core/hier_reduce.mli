(** Hierarchical domain-decomposed PMTBR: {!Partition.split} (or
    {!Partition.split_auto}) the netlist by nested dissection, run the
    ordinary sampling pipeline per subdomain (each interior gets its own
    [Dss.multi_shift] handle inside a {!Sample_cache} with the part's
    ports-plus-couplings [Fixed_rhs]), and recombine with the
    interface-preserving block basis blkdiag(V_1 .. V_K, I) — interface
    states are kept exactly at this stage, so with untruncated subdomain
    bases the result is an exact congruence transform of the full model,
    and with truncated bases port behavior matches flat reduction to the
    truncation tolerance.

    Recombination is two-phase: {!project_part} computes one part's
    congruence blocks (all the O(interior) work) inside that part's
    scheduler job, and the serial {!assemble} scatters the small dense
    blocks into the reduced pencil — an O(q^2) epilogue that never
    touches the mesh, so the recombination stage stays trivial even with
    one worker.

    {!compress_interface} optionally runs a second PMTBR pass over the
    assembled pencil's interface states so the reduced order stops
    paying |interface| verbatim per cut: couplings are contracted
    through the dominant interface subspace but never sketched, and the
    exact-interface model is the fallback when the tolerance keeps full
    rank.

    No step ever pays a global factorization: the largest sparse LU is a
    subdomain interior, which is what lets networks beyond the flat
    path's reach complete.

    {b Determinism.}  Subdomains fan across the shared
    {!Pmtbr_la.Scheduler} pool but each job runs its solves and dense
    kernels serially and computes a pure function of (partition, points,
    order/tol) — the recombined ROM is bitwise-identical for any
    [workers] (or [oversubscribe]) setting, the contract Shift_engine
    established and CI enforces for this layer too.  The compression SVD
    inherits the tournament-Jacobi bitwise worker invariance. *)

open Pmtbr_la
open Pmtbr_lti

type sub = {
  basis : Mat.t;  (** interior projection basis V_k, orthonormal columns *)
  singular_values : float array;  (** subdomain sample singular values *)
  sub_order : int;  (** columns kept *)
  solves : int;  (** shifted solves this subdomain performed *)
}

type blocks = {
  eh : Mat.t;  (** V^T E V (qi x qi) *)
  ah : Mat.t;  (** V^T A V *)
  e_igr : Mat.t;  (** V^T E_ig (qi x interface) *)
  a_igr : Mat.t;  (** V^T A_ig *)
  e_gir : Mat.t;  (** E_gi V (interface x qi) *)
  a_gir : Mat.t;  (** A_gi V *)
  bh : Mat.t;  (** V^T B_interior (qi x p) *)
  ch : Mat.t;  (** C_interior V (p x qi) *)
}
(** One part's congruence-projected blocks — the parallel half of
    recombination. *)

type stats = {
  parts : int;
  depth : int;  (** dissection tree depth *)
  interface : int;  (** interface state count before compression *)
  interface_kept : int;  (** after compression (= [interface] without) *)
  states : int;  (** full-model state count *)
  order : int;  (** final ROM order = sum sub_orders + interface_kept *)
  sub_orders : int array;
  solves : int;  (** total shifted solves across subdomains *)
  sub_wall_s : float array;  (** per-subdomain wall seconds, partition order *)
  partition_wall_s : float;  (** dissection wall (0 in {!reduce_partitioned}) *)
  sample_wall_s : float;  (** fan-out stage wall: sampling + per-part blocks *)
  recombine_wall_s : float;  (** serial assembly wall *)
  compress_wall_s : float;  (** interface-compression wall (0 when off) *)
}

val sample_part :
  ?workers:int -> ?oversubscribe:bool -> Partition.part -> Sampling.point array -> Sample_cache.t
(** Solve the part's sampling right-hand side at every point through a
    fresh subdomain cache (its own multi-shift handle; [workers] defaults
    to 1 — fan-out parallelism lives across subdomains, not inside one).
    The store keeps these caches warm across jobs, keyed by the part's
    sub-netlist hash. *)

val basis_of_part :
  ?order:int -> ?tol:float -> ?workers:int -> Partition.part -> Sample_cache.t ->
  samples:int -> unit -> sub
(** Finish one subdomain through {!Pmtbr.of_cache}: SVD of the cache's
    small factor, basis lifted from its thin Q.  [order]/[tol] bound each
    subdomain's kept columns (same semantics as {!Pmtbr.choose_order}). *)

val reduce_part : ?order:int -> ?tol:float -> Partition.part -> Sampling.point array -> sub
(** {!sample_part} then {!basis_of_part}; a part with an empty sampling
    right-hand side (floating fragment) yields an empty basis. *)

val project_part : Partition.t -> int -> Mat.t -> blocks
(** Congruence blocks of part [i] under basis [v]: the projected
    diagonal blocks, the couplings contracted with [v] on the interior
    side (interface side exact), and the restricted port maps.  Pure in
    (partition, basis) — safe to run inside any scheduler job. *)

val assemble : Partition.t -> blocks array -> Dss.t
(** Scatter per-part blocks plus the verbatim interface block into the
    dense reduced pencil for blkdiag(V_1..V_K, I_interface).  O(q^2);
    raises [Invalid_argument] unless given one block set per part. *)

val recombine : ?workers:int -> Partition.t -> Mat.t array -> Dss.t
(** {!project_part} for every part (fanned over a [Scheduler] pool when
    [workers > 1]) then {!assemble}.  Bitwise worker-invariant.  Raises
    [Invalid_argument] unless given one basis per part. *)

val compress_interface :
  ?workers:int -> tol:float -> Partition.t -> Dss.t -> Sampling.point array -> Dss.t * int
(** Second-pass PMTBR over the interface states of an assembled
    exact-interface model: sample the interface rows of
    X(s) = (sE - A)^{-1} B at the quadrature points (sqrt-weight
    realified, like the flat sampler), SVD, keep the
    {!Pmtbr.choose_order}[ ~tol] dominant left vectors W, and project by
    the congruence blkdiag(I, W).  Couplings contract through W — the
    interior side stays exact and nothing is sketched.  Full rank (or an
    empty interface / point set) returns the model unchanged — the exact
    fallback.  Returns (model, interface states kept). *)

val reduce_partitioned :
  ?order:int -> ?tol:float -> ?interface_tol:float -> ?workers:int -> ?oversubscribe:bool ->
  Partition.t -> Sampling.point array -> Dss.t * stats
(** Fan sample+basis+{!project_part} jobs over the subdomains on a
    [Scheduler] pool of [min workers (recommended cap) parts] domains
    ([oversubscribe] lifts the hardware cap, as in {!Shift_engine}),
    {!assemble}, then {!compress_interface} when [interface_tol] is
    given.  A subdomain failure re-raises the lowest-index exception
    after the pool drains.  Bitwise worker-invariant. *)

val reduce_stats :
  ?order:int -> ?tol:float -> ?interface_tol:float -> ?workers:int -> ?oversubscribe:bool ->
  ?sketch:int -> parts:int -> Pmtbr_circuit.Netlist.t -> Sampling.point array -> Dss.t * stats
(** {!Partition.split} then {!reduce_partitioned} (with the dissection
    wall filled in). *)

val reduce_auto_stats :
  ?order:int -> ?tol:float -> ?interface_tol:float -> ?workers:int -> ?oversubscribe:bool ->
  ?sketch:int -> ?depth_cap:int -> max_states:int ->
  Pmtbr_circuit.Netlist.t -> Sampling.point array -> Dss.t * stats
(** {!Partition.split_auto} then {!reduce_partitioned}: the recursive
    budget-driven path — parts multiply until every interior fits
    [max_states]. *)

val reduce :
  ?order:int -> ?tol:float -> ?interface_tol:float -> ?workers:int -> ?oversubscribe:bool ->
  ?sketch:int -> parts:int -> Pmtbr_circuit.Netlist.t -> Sampling.point array -> Dss.t
(** {!reduce_stats} without the counters. *)
