(** Input-correlated TBR (Algorithm 3).  When the port inputs are
    correlated, the effective Gramian solves
    [A X + X A^T + B K B^T = 0] with [K] the input correlation matrix.
    Instead of forming [K], the input sample matrix is SVD'd and each
    frequency sample is taken against an input direction drawn from the
    estimated input distribution, so the sampled Gramian converges to the
    K-weighted one and the model order tracks the {e correlated} — much
    smaller — controllable subspace.

    Both variants run through the shared {!Sample_cache} pipeline (a
    {!Sample_cache.Per_point} source for the random draws, a
    {!Sample_cache.Fixed_rhs} source for the deterministic directions):
    every shift is solved exactly once per run through one symbolic
    analysis, [_stats] entry points surface the counters, and
    {!reduce_adaptive} controls the Monte Carlo draw count on the fly. *)

open Pmtbr_la
open Pmtbr_lti

type result = {
  rom : Dss.t;
  basis : Mat.t;
  singular_values : float array;
  input_rank : int;  (** retained input directions *)
  samples : int;
}

val reduce : ?order:int -> ?tol:float -> ?input_tol:float -> ?seed:int -> ?workers:int ->
  Dss.t -> inputs:Mat.t -> points:Sampling.point array -> draws:int -> result
(** Run Algorithm 3.  [inputs] is the [p x N] matrix of sampled input
    waveforms; [points] the frequency points to cycle through; [draws] the
    number of sample vectors (each pairing one frequency point with one
    random input direction).  [input_tol] truncates the input SVD (default
    [1e-6] relative); [seed] makes the direction draws reproducible.  The
    assembled sample matrix is bitwise-identical to the
    {!Zmat.build_per_point} reference over the same draws. *)

val reduce_stats : ?order:int -> ?tol:float -> ?input_tol:float -> ?seed:int -> ?workers:int ->
  Dss.t -> inputs:Mat.t -> points:Sampling.point array -> draws:int ->
  result * Sample_cache.stats
(** {!reduce} plus the cache counters; [stats.solves = stats.points = draws]
    certifies one solve per draw. *)

val reduce_adaptive : ?order:int -> ?tol:float -> ?input_tol:float -> ?seed:int -> ?batch:int ->
  ?converge_tol:float -> ?workers:int -> Dss.t -> inputs:Mat.t ->
  points:Sampling.point array -> max_draws:int -> result
(** Adaptive draws-loop: consume up to [max_draws] random draws in batches
    of [batch] (default 8) through the cache, rescaling the held prefix at
    assembly so every batch estimates the same K-weighted Gramian, and
    stop when the leading singular values have converged to [converge_tol]
    relative change (default 2%), the tail is below [tol], and the sample
    block holds at least twice the model order in columns.
    [result.samples] reports the draws consumed.  Results are
    bitwise-independent of [batch] boundaries and worker count (the rng
    stream is consumed strictly in draw order). *)

val reduce_adaptive_stats : ?order:int -> ?tol:float -> ?input_tol:float -> ?seed:int ->
  ?batch:int -> ?converge_tol:float -> ?workers:int -> Dss.t -> inputs:Mat.t ->
  points:Sampling.point array -> max_draws:int -> result * Sample_cache.stats
(** {!reduce_adaptive} with the run's counters ([solves = points] — no
    draw's shift is ever re-solved across batches). *)

val reduce_deterministic : ?order:int -> ?tol:float -> ?input_tol:float -> ?directions:int ->
  ?workers:int -> Dss.t -> inputs:Mat.t -> points:Sampling.point array -> result
(** Deterministic variant: use the leading input directions themselves,
    scaled by their singular values, at every frequency point.  Cheaper and
    reproducible; used for the large substrate experiments.  [directions]
    caps the retained input rank (0 = keep all above [input_tol]).  The
    assembled sample matrix is bitwise-identical to the {!Zmat.build_rhs}
    reference. *)

val reduce_deterministic_stats : ?order:int -> ?tol:float -> ?input_tol:float ->
  ?directions:int -> ?workers:int -> Dss.t -> inputs:Mat.t -> points:Sampling.point array ->
  result * Sample_cache.stats
(** {!reduce_deterministic} plus the cache counters. *)
