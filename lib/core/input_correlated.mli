(** Input-correlated TBR (Algorithm 3).  When the port inputs are
    correlated, the effective Gramian solves
    [A X + X A^T + B K B^T = 0] with [K] the input correlation matrix.
    Instead of forming [K], the input sample matrix is SVD'd and each
    frequency sample is taken against an input direction drawn from the
    estimated input distribution, so the sampled Gramian converges to the
    K-weighted one and the model order tracks the {e correlated} — much
    smaller — controllable subspace. *)

open Pmtbr_la
open Pmtbr_lti

type result = {
  rom : Dss.t;
  basis : Mat.t;
  singular_values : float array;
  input_rank : int;  (** retained input directions *)
  samples : int;
}

val reduce : ?order:int -> ?tol:float -> ?input_tol:float -> ?seed:int -> ?workers:int ->
  Dss.t -> inputs:Mat.t -> points:Sampling.point array -> draws:int -> result
(** Run Algorithm 3.  [inputs] is the [p x N] matrix of sampled input
    waveforms; [points] the frequency points to cycle through; [draws] the
    number of sample vectors (each pairing one frequency point with one
    random input direction).  [input_tol] truncates the input SVD (default
    [1e-6] relative); [seed] makes the direction draws reproducible. *)

val reduce_deterministic : ?order:int -> ?tol:float -> ?input_tol:float -> ?directions:int ->
  ?workers:int -> Dss.t -> inputs:Mat.t -> points:Sampling.point array -> result
(** Deterministic variant: use the leading input directions themselves,
    scaled by their singular values, at every frequency point.  Cheaper and
    reproducible; used for the large substrate experiments.  [directions]
    caps the retained input rank (0 = keep all above [input_tol]). *)
