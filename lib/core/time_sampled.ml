(* Time-domain sampled Gramian reduction (proper orthogonal decomposition,
   POD).  The paper's statistical interpretation (Section IV-A) views the
   Gramian as the covariance of the state under the assumed input process;
   here the covariance is estimated from state snapshots of an actual
   training simulation instead of from frequency samples.  This is the
   time-domain twin of PMTBR: the same SVD-and-project machinery, with the
   sample matrix drawn from x(t_k) rather than (s_k E - A)^{-1} B, and the
   input correlation captured implicitly by simulating the training
   inputs. *)

open Pmtbr_la
open Pmtbr_lti

type result = {
  rom : Dss.t;
  basis : Mat.t;
  singular_values : float array; (* of the weighted snapshot matrix *)
  snapshots : int;
}

(* [reduce sys ~u ~t1 ~dt ~snapshots] simulates from rest with the training
   input [u] over [0, t1], keeps [snapshots] equispaced state snapshots —
   always including the initial and final states — and projects onto their
   dominant left singular subspace. *)
let reduce ?order ?tol sys ~(u : float -> float array) ~t1 ~dt ~snapshots =
  if snapshots < 2 then invalid_arg "Time_sampled.reduce: snapshots must be >= 2";
  if not (t1 > 0.0 && dt > 0.0 && dt <= t1) then
    invalid_arg "Time_sampled.reduce: need 0 < dt <= t1";
  let res = Tdsim.simulate ~keep_states:true sys ~t0:0.0 ~t1 ~dt ~u in
  let states =
    match res.Tdsim.states with
    | Some s -> s
    | None -> assert false (* keep_states:true always yields states *)
  in
  let steps = Array.length res.Tdsim.times in
  (* exactly [snapshots] strictly increasing step indices over [0, steps-1]
     (the old backwards stride walk could keep more or fewer than requested
     and skip the t=0 state), clamped when the run has fewer steps.  The
     indices follow a quadratic ramp clustered towards t=0: a training
     simulation from rest spends its fast modes in the first few steps, and
     an equispaced grid at typical snapshot counts skips straight over
     them, losing the very directions that dominate the transient. *)
  let m = min snapshots steps in
  let idx = Array.make m 0 in
  for j = 1 to m - 1 do
    let frac = float_of_int j /. float_of_int (m - 1) in
    let raw = int_of_float (Float.round (frac *. frac *. float_of_int (steps - 1))) in
    idx.(j) <- max (idx.(j - 1) + 1) (min raw (steps - 1))
  done;
  let n = Dss.order sys in
  (* columns weighted by sqrt of the local time interval (trapezoid rule),
     so X X^T is a quadrature estimate of the covariance integral
     \int x x^T dt with the non-uniform spacing accounted for *)
  let w =
    Array.init m (fun j ->
        let lo = if j = 0 then float_of_int idx.(0) else float_of_int (idx.(j - 1) + idx.(j)) /. 2.0 in
        let hi =
          if j = m - 1 then float_of_int idx.(m - 1)
          else float_of_int (idx.(j) + idx.(j + 1)) /. 2.0
        in
        sqrt (dt *. (hi -. lo)))
  in
  let x = Mat.init n m (fun i j -> w.(j) *. Mat.get states i idx.(j)) in
  let { Svd.u = uu; sigma; _ } = Svd.decompose x in
  let q = Pmtbr.choose_order ~sigma ?order ?tol () in
  let q =
    let smax = Float.max sigma.(0) 1e-300 in
    let rec cap k = if k <= 1 then 1 else if sigma.(k - 1) > 1e-14 *. smax then k else cap (k - 1) in
    cap q
  in
  let basis = Mat.sub_cols uu 0 q in
  { rom = Dss.project_congruence sys basis; basis; singular_values = sigma; snapshots = m }
