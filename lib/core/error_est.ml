(* Singular-value-based error estimation (paper Section V-B): the trailing
   singular values of ZW estimate the error of the order-q reduced model the
   way truncated Hankel singular values bound the TBR error. *)

(* TBR-style estimate for truncation at order q: 2 * sum of the tail. *)
let tail_bound (sigma : float array) q =
  let acc = ref 0.0 in
  Array.iteri (fun i s -> if i >= q then acc := !acc +. s) sigma;
  2.0 *. !acc

(* Estimates for all orders 0..n: one reverse cumulative sum instead of a
   tail re-summation per order (O(n) instead of O(n^2)). *)
let curve (sigma : float array) =
  let n = Array.length sigma in
  let out = Array.make (n + 1) 0.0 in
  let tail = ref 0.0 in
  for q = n - 1 downto 0 do
    tail := !tail +. sigma.(q);
    out.(q) <- 2.0 *. !tail
  done;
  out

(* Normalised estimate: tail relative to sigma_0 (the "normalized error
   estimate" plotted in Fig. 16). *)
let normalized_curve (sigma : float array) =
  let smax = if Array.length sigma = 0 then 1.0 else Float.max sigma.(0) 1e-300 in
  Array.map (fun e -> e /. (2.0 *. smax)) (curve sigma)

(* Order needed to push the normalised estimate below [tol].  [met]
   distinguishes a real hit from the fallback: the old signature returned
   n - 1 silently when no order satisfied [tol] (possible whenever tol is
   negative/NaN, e.g. a mis-parsed CLI flag) and callers reported it as
   satisfied. *)
let order_for (sigma : float array) ~tol =
  let curve = normalized_curve sigma in
  let n = Array.length curve in
  let rec search q =
    if q >= n then (max 0 (n - 1), false)
    else if curve.(q) <= tol then (q, true)
    else search (q + 1)
  in
  search 0
