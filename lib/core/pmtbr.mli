(** PMTBR — Algorithm 1 of the paper.

    Sample [z_i = (s_i E - A)^{-1} B] at weighted frequency points, SVD the
    realified sample matrix [ZW], keep the dominant left singular vectors,
    and reduce by congruence projection.  The singular values of [ZW]
    approximate the Hankel singular values (Section III-B) and drive order
    and error control (Sections V-B/C). *)

open Pmtbr_la
open Pmtbr_lti

type result = {
  rom : Dss.t;  (** reduced model *)
  basis : Mat.t;  (** projection basis V, [n x q], orthonormal columns *)
  singular_values : float array;  (** all singular values of ZW, descending *)
  samples : int;  (** number of frequency points consumed *)
}

val choose_order : sigma:float array -> ?order:int -> ?tol:float -> unit -> int
(** Truncation order from singular values: the smallest [q] whose tail sum
    [sum_{i >= q} sigma_i] is at most [tol * sigma_0] (default [1e-10]),
    capped by [order] when given. *)

val of_basis : Dss.t -> zw:Mat.t -> ?order:int -> ?tol:float -> samples:int -> unit -> result
(** Reduce with an externally assembled sample matrix (used by the variant
    algorithms). *)

val reduce : ?order:int -> ?tol:float -> ?workers:int -> Dss.t -> Sampling.point array -> result
(** One-shot PMTBR with a fixed point set.  [workers] sizes the
    shifted-solve domain pool of {!Shift_engine} (default: all recommended
    domains); the result is bitwise-independent of the worker count. *)

val reduce_uniform : ?order:int -> ?tol:float -> ?workers:int -> Dss.t -> w_max:float ->
  count:int -> result
(** Convenience: uniform sampling of [0, w_max]. *)

val reduce_adaptive : ?order:int -> ?tol:float -> ?batch:int -> ?converge_tol:float ->
  ?workers:int -> Dss.t -> Sampling.point array -> result
(** On-the-fly order control (Section V-C): consume the points in
    bit-reversed batches of [batch] (default 8) with prefix weights
    rescaled to keep the implied integral fixed; stop when the leading
    singular values have converged to [converge_tol] relative change
    (default 2%) and the tail is below [tol].  [result.samples] reports how
    many points were actually used. *)

val reduce_adaptive_rrqr : ?order:int -> ?tol:float -> ?batch:int -> ?converge_tol:float ->
  ?workers:int -> Dss.t -> Sampling.point array -> result
(** Like {!reduce_adaptive}, but monitoring convergence with a
    rank-revealing (column-pivoted) QR per batch instead of a full SVD —
    the cheaper order-control machinery Section V-C recommends; one SVD at
    the end builds the final basis. *)

val sample_singular_values : ?workers:int -> Dss.t -> Sampling.point array -> float array
(** Singular values of the sample matrix only (paper Figs. 5 and 8). *)

val hankel_estimates : ?workers:int -> Dss.t -> Sampling.point array -> float array
(** Hankel-singular-value estimates [sigma(ZW)^2 / pi]: the eigenvalues of
    the sampled Gramian [(1/pi)(ZW)(ZW)^T], which in the paper's symmetric
    case are exactly the Hankel singular values.  Converges as the
    quadrature does. *)
