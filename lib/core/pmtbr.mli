(** PMTBR — Algorithm 1 of the paper.

    Sample [z_i = (s_i E - A)^{-1} B] at weighted frequency points, SVD the
    realified sample matrix [ZW], keep the dominant left singular vectors,
    and reduce by congruence projection.  The singular values of [ZW]
    approximate the Hankel singular values (Section III-B) and drive order
    and error control (Sections V-B/C). *)

open Pmtbr_la
open Pmtbr_lti

type result = {
  rom : Dss.t;  (** reduced model *)
  basis : Mat.t;  (** projection basis V, [n x q], orthonormal columns *)
  singular_values : float array;  (** all singular values of ZW, descending *)
  samples : int;  (** number of frequency points consumed *)
}

val choose_order : sigma:float array -> ?order:int -> ?tol:float -> unit -> int
(** Truncation order from singular values: the smallest [q] whose tail sum
    [sum_{i >= q} sigma_i] is at most [tol * sigma_0] (default [1e-10]).
    An explicit [order] wins outright (clamped to the number of values);
    only when [tol] is {e also} given does the tail criterion cap it — the
    default tolerance never shrinks an explicitly requested order. *)

val of_basis :
  Dss.t -> zw:Mat.t -> ?order:int -> ?tol:float -> ?workers:int -> samples:int -> unit -> result
(** Reduce with an externally assembled sample matrix (used by the variant
    algorithms).  [workers] sizes the dense-kernel pool of the reduction
    stage ({!Pmtbr_la.Par_kernel}); results are bitwise-identical for any
    value. *)

val of_cache :
  Dss.t -> Sample_cache.t -> scale:float -> ?order:int -> ?tol:float -> ?workers:int ->
  samples:int -> unit -> result
(** Reduce from a {!Sample_cache}'s thin factorisation: the SVD of the
    small [R D] supplies the singular values and [Q U_small] the basis —
    no state-dimension SVD.  [scale] is the prefix rescaling passed to
    {!Sample_cache.small_factor}.  Cache-based variants (adaptive loops,
    input-correlated) finish through here. *)

val reduce : ?order:int -> ?tol:float -> ?workers:int -> Dss.t -> Sampling.point array -> result
(** One-shot PMTBR with a fixed point set.  [workers] sizes both the
    shifted-solve domain pool of {!Shift_engine} and the dense-kernel pool
    of the reduction stage (default: all recommended domains); the result
    is bitwise-independent of the worker count. *)

val reduce_uniform : ?order:int -> ?tol:float -> ?workers:int -> Dss.t -> w_max:float ->
  count:int -> result
(** Convenience: uniform sampling of [0, w_max]. *)

val reduce_stats : ?order:int -> ?tol:float -> ?workers:int -> Dss.t -> Sampling.point array ->
  result * Sample_cache.stats
(** One-shot PMTBR through the {!Sample_cache} pipeline, surfacing the
    solve counters ([stats.solves = stats.points]).  Same subspace and
    singular values as {!reduce}; the basis is formed from the cache's
    thin factorisation instead of a state-dimension SVD. *)

val reduce_adaptive : ?order:int -> ?tol:float -> ?batch:int -> ?converge_tol:float ->
  ?workers:int -> Dss.t -> Sampling.point array -> result
(** On-the-fly order control (Section V-C): consume the points in
    bit-reversed batches of [batch] (default 8) through an incremental
    {!Sample_cache} — each shift is solved exactly once for the whole run,
    prefix-weight rescaling is a diagonal applied at assembly time, and
    order is monitored per batch from the cache's small factor instead of
    a state-dimension SVD of a rebuilt matrix.  Stops when the leading
    singular values have converged to [converge_tol] relative change
    (default 2%), the tail is below [tol], and the sample matrix holds at
    least twice the model order in realified columns (Section V-B); with
    an explicit [order] and no [tol], leading convergence alone decides.
    [result.samples] reports how many points were actually used. *)

val reduce_adaptive_stats : ?rebuild:bool -> ?order:int -> ?tol:float -> ?batch:int ->
  ?converge_tol:float -> ?workers:int -> Dss.t -> Sampling.point array ->
  result * Sample_cache.stats
(** {!reduce_adaptive} plus the run's observability counters (shifted
    solves performed, columns held, per-batch wall time).
    [stats.solves = stats.points] certifies that no shift was re-solved
    across batches.  [rebuild] (default [false]) switches to the reference
    from-scratch loop — a fresh cache per batch, re-solving every consumed
    shift, O(total^2) solves — kept as the benchmark baseline; its results
    are bitwise-identical to the incremental path's. *)

val reduce_adaptive_rrqr : ?order:int -> ?tol:float -> ?batch:int -> ?converge_tol:float ->
  ?workers:int -> Dss.t -> Sampling.point array -> result
(** Like {!reduce_adaptive}, but monitoring convergence with a
    rank-revealing (column-pivoted) QR of the cache's small factor per
    batch — the cheaper order-control machinery Section V-C recommends;
    one small SVD at the end builds the final basis.  The stopping
    criterion mirrors {!reduce_adaptive}'s tail check on the normalised
    R-diagonal profile, so a run cannot stop on leading-value convergence
    alone with an under-resolved truncation tail. *)

val reduce_adaptive_rrqr_stats : ?rebuild:bool -> ?order:int -> ?tol:float -> ?batch:int ->
  ?converge_tol:float -> ?workers:int -> Dss.t -> Sampling.point array ->
  result * Sample_cache.stats
(** {!reduce_adaptive_rrqr} with counters and the reference rebuild
    switch, as in {!reduce_adaptive_stats}. *)

val sample_singular_values : ?workers:int -> Dss.t -> Sampling.point array -> float array
(** Singular values of the sample matrix only (paper Figs. 5 and 8). *)

val hankel_estimates : ?workers:int -> Dss.t -> Sampling.point array -> float array
(** Hankel-singular-value estimates [sigma(ZW)^2 / pi]: the eigenvalues of
    the sampled Gramian [(1/pi)(ZW)(ZW)^T], which in the paper's symmetric
    case are exactly the Hankel singular values.  Converges as the
    quadrature does. *)
