(* Sampled cross-Gramian reduction (paper Section V-D).  Two sample sets are
   taken: controllability samples Z^R = (s_k E - A)^{-1} B and observability
   samples Z^L = (s_k E - A)^{-H} C^T.  The dominant eigenvectors of
   Z^R (Z^L)^T approximate the dominant eigenspace of the cross-Gramian.

   Two routes to the compressed eigenproblem:

   - [reduce] (the retained dense reference): a state-dimension QR of the
     joint sample block [zr zl] = Q [R^R R^L] and the pencil
     R^R (R^L)^T at the joint column dimension.

   - [reduce_cached] / [reduce_adaptive]: both sides held in
     [Sample_cache]s (sharing one multi-shift handle, so the adjoint
     solves reuse the same symbolic sparse-LU analysis), with
     Z^R = Q_R S_R and Z^L = Q_L S_L maintained as incremental thin QRs.
     An eigenvector v = Q_R y of Z^R (Z^L)^T then satisfies

         S_R S_L^T (Q_L^T Q_R) y = lambda y,

     a pencil built from the two small factors and the small Gram matrix
     [Sample_cache.cross_q], truncated to the right side's numerical rank
     (see [pencil] below) — no state-dimension QR, no dense product
     against an n x cols matrix, and a Schur solve at the numerical-rank
     dimension rather than the joint column dimension.  The adaptive
     variant extends both caches batch by batch (each shift solved once
     per side for the whole run) and stops when the leading pencil
     eigenvalue magnitudes converge. *)

open Pmtbr_la
open Pmtbr_lti

type result = {
  rom : Dss.t;
  basis : Mat.t;
  eigenvalues : Complex.t array; (* of the compressed pencil, |.| descending *)
  samples : int;
}

(* Rank the pencil eigenvalues by magnitude and pick the model order:
   explicit [order], or count of eigenvalues above [tol] relative to the
   largest magnitude. *)
let select ?order ~tol (evs : Complex.t array) =
  let k = Array.length evs in
  let order_idx = Array.init k (fun i -> i) in
  Array.sort (fun i j -> compare (Complex.norm evs.(j)) (Complex.norm evs.(i))) order_idx;
  let magmax = Float.max 1e-300 (Complex.norm evs.(order_idx.(0))) in
  let q_model =
    match order with
    | Some q -> min q k
    | None ->
        let r = ref 0 in
        Array.iter (fun i -> if Complex.norm evs.(i) > tol *. magmax then incr r) order_idx;
        max 1 !r
  in
  (order_idx, q_model)

(* Real coefficient columns spanning the dominant eigenvectors: Re and Im
   parts of each retained eigenvector, at the pencil dimension [k]. *)
let eigen_coeff schur (order_idx : int array) q_model k =
  let vec_cols = ref [] in
  for rank = q_model - 1 downto 0 do
    let i = order_idx.(rank) in
    let v = Cschur.eigenvector schur i in
    let re = Cvec.re v and im = Cvec.im v in
    if Vec.norm2 im > 1e-12 *. Vec.norm2 re then vec_cols := im :: !vec_cols;
    vec_cols := re :: !vec_cols
  done;
  let cols = Array.of_list !vec_cols in
  Mat.init k (Array.length cols) (fun i j -> cols.(j).(i))

(* ------------------------------------------------------------------ *)
(* Dense reference path (state-dimension QR)                           *)
(* ------------------------------------------------------------------ *)

(* The original one-shot pipeline from pre-built sample blocks — the
   bitwise reference the cached path is property-tested against, and the
   baseline bench/variants_bench.ml gates the compressed pencil on. *)
let of_samples ?(order : int option) ?(tol = 1e-8) sys ~(zr : Mat.t) ~(zl : Mat.t) ~samples =
  let q = Qr.orth (Mat.hcat zr zl) in
  let rr = Mat.mul (Mat.transpose q) zr in
  let rl = Mat.mul (Mat.transpose q) zl in
  let m = Mat.mul rr (Mat.transpose rl) in
  let schur = Cschur.of_real m in
  let evs = Cschur.eigenvalues schur in
  let order_idx, q_model = select ?order ~tol evs in
  let small = eigen_coeff schur order_idx q_model (Array.length evs) in
  let small_orth = Qr.orth small in
  let basis = Mat.mul q small_orth in
  let evs_sorted = Array.map (fun i -> evs.(i)) order_idx in
  { rom = Dss.project_congruence sys basis; basis; eigenvalues = evs_sorted; samples }

let reduce ?order ?tol ?workers sys (pts : Sampling.point array) =
  let zr = Zmat.build ?workers sys pts in
  let zl = Zmat.build_left ?workers sys pts in
  of_samples ?order ?tol sys ~zr ~zl ~samples:(Array.length pts)

(* ------------------------------------------------------------------ *)
(* Compressed-pencil path (column dimension)                           *)
(* ------------------------------------------------------------------ *)

(* S_R S_L^T (Q_L^T Q_R), truncated to the right side's numerical rank.

   Once the sample count exceeds the reachable rank, the thin factors span
   many numerically dead directions, and a Schur solve on the full
   column-dimension pencil grinds through the resulting cluster of
   near-zero eigenvalues (the dense reference never sees them: its
   state-dimension [Qr.orth] truncates rank up front).  [S_R = R D] is
   upper triangular, so one column-pivoted QR — [S_R = W T P^T], [W]'s
   first [r] columns an orthonormal basis of [range S_R] — exposes the
   rank cheaply.  Since [range (Z^R (Z^L)^T) = Q_R (range S_R)], an
   eigenvector [v = Q_R W y] of the full product satisfies

       W^T S_R S_L^T (Q_L^T Q_R) W y = lambda y

   at dimension [r], with no spectrum truncated beyond the rank cut.
   Returns the small pencil and the lift [W]. *)
let pencil ?workers ~right ~left ~scale () =
  let sr = Sample_cache.small_factor right ~scale in
  let sl = Sample_cache.small_factor left ~scale in
  if sr.Mat.cols <> sl.Mat.cols then
    invalid_arg
      (Printf.sprintf
         "Cross_gramian: %d right columns vs %d left columns (system has inputs <> outputs?)"
         sr.Mat.cols sl.Mat.cols);
  let w = Qr.orth ?workers sr in
  let gw = Par_kernel.mul ?workers (Sample_cache.cross_q left right) w in
  let p =
    Par_kernel.mul ?workers (Mat.transpose w)
      (Par_kernel.mul ?workers sr (Par_kernel.mul ?workers (Mat.transpose sl) gw))
  in
  (p, w)

let of_caches ?order ?(tol = 1e-8) ?workers sys ~right ~left ~scale ~samples =
  let p, w = pencil ?workers ~right ~left ~scale () in
  let schur = Cschur.of_real p in
  let evs = Cschur.eigenvalues schur in
  let order_idx, q_model = select ?order ~tol evs in
  let coeff = eigen_coeff schur order_idx q_model (Array.length evs) in
  (* Q_R W is orthonormal up to roundoff, so one thin QR of the lifted
     n x q block — q the model order, not the sample column count —
     restores orthonormality cheaply. *)
  let basis = Qr.orth ?workers (Sample_cache.apply_q right (Par_kernel.mul ?workers w coeff)) in
  let evs_sorted = Array.map (fun i -> evs.(i)) order_idx in
  { rom = Dss.project_congruence sys basis; basis; eigenvalues = evs_sorted; samples }

(* Both sides' caches over one shared multi-shift handle. *)
let make_caches ?workers sys (template : Sampling.point) =
  let ms = Dss.multi_shift ~template:template.Sampling.s sys in
  let right = Sample_cache.create ?workers ~ms sys in
  let left = Sample_cache.create ?workers ~ms ~source:Sample_cache.Observability sys in
  (right, left)

let merged_stats right left =
  Sample_cache.merge_stats (Sample_cache.stats right) (Sample_cache.stats left)

let reduce_cached_stats ?order ?tol ?workers sys (pts : Sampling.point array) =
  if Array.length pts = 0 then invalid_arg "Cross_gramian.reduce_cached: no sample points";
  let right, left = make_caches ?workers sys pts.(0) in
  Sample_cache.extend right pts;
  Sample_cache.extend left pts;
  let result =
    of_caches ?order ?tol ?workers sys ~right ~left ~scale:1.0 ~samples:(Array.length pts)
  in
  (result, merged_stats right left)

let reduce_cached ?order ?tol ?workers sys pts =
  fst (reduce_cached_stats ?order ?tol ?workers sys pts)

(* ------------------------------------------------------------------ *)
(* Adaptive sampling with per-batch eigenvalue convergence             *)
(* ------------------------------------------------------------------ *)

let reduce_adaptive_stats ?order ?(tol = 1e-8) ?(batch = 8) ?(converge_tol = 0.02) ?workers sys
    (pts : Sampling.point array) =
  if Array.length pts = 0 then invalid_arg "Cross_gramian.reduce_adaptive: no sample points";
  if batch < 1 then invalid_arg "Cross_gramian.reduce_adaptive: batch must be >= 1";
  (* prefixes must cover the whole band: consume in bit-reversed order *)
  let pts = Sampling.spread_order pts in
  let n_pts = Array.length pts in
  let right, left = make_caches ?workers sys pts.(0) in
  let finish upto =
    let scale = float_of_int n_pts /. float_of_int upto in
    let result = of_caches ?order ~tol ?workers sys ~right ~left ~scale ~samples:upto in
    (result, merged_stats right left)
  in
  let rec loop consumed prev =
    let upto = min n_pts (consumed + batch) in
    let chunk = Array.sub pts consumed (upto - consumed) in
    Sample_cache.extend right chunk;
    Sample_cache.extend left chunk;
    (* prefix rescaling keeps every batch approximating the same Gramian
       integral, so the pencil eigenvalues converge instead of growing
       with the sample count; it is a diagonal at assembly, no re-solve *)
    let scale = float_of_int n_pts /. float_of_int upto in
    let mags =
      let p, _ = pencil ?workers ~right ~left ~scale () in
      let m = Array.map Complex.norm (Cschur.eigenvalues (Cschur.of_real p)) in
      Array.sort (fun a b -> compare b a) m;
      m
    in
    let magmax = Float.max 1e-300 mags.(0) in
    let q =
      match order with
      | Some q -> min q (Array.length mags)
      | None ->
          max 1 (Array.fold_left (fun acc m -> if m > tol *. magmax then acc + 1 else acc) 0 mags)
    in
    let converged =
      match prev with
      | None -> false
      | Some prev ->
          let k = min q (min (Array.length prev) (Array.length mags)) in
          let ok = ref (k > 0) in
          for i = 0 to k - 1 do
            let denom = Float.max mags.(i) 1e-300 in
            if Float.abs (mags.(i) -. prev.(i)) /. denom > converge_tol then ok := false
          done;
          !ok
    in
    (* Section V-B's sample-budget guard, in columns (per side) *)
    let enough_columns = Sample_cache.columns right >= 2 * q in
    if upto >= n_pts || (converged && enough_columns) then finish upto
    else loop upto (Some mags)
  in
  loop 0 None

let reduce_adaptive ?order ?tol ?batch ?converge_tol ?workers sys pts =
  fst (reduce_adaptive_stats ?order ?tol ?batch ?converge_tol ?workers sys pts)
