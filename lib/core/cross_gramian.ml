(* Sampled cross-Gramian reduction (paper Section V-D).  Two sample sets are
   taken: controllability samples Z^R = (s_k E - A)^{-1} B and observability
   samples Z^L = (s_k E - A)^{-H} C^T.  The dominant eigenvectors of
   Z^R (Z^L)^T approximate the dominant eigenspace of the cross-Gramian;
   they are found through the compressed eigenproblem

       R^R (R^L)^T y = lambda y,   Z^R = Q R^R,  Z^L = Q R^L

   with Q an orthonormal basis of the joint column space. *)

open Pmtbr_la
open Pmtbr_lti

type result = {
  rom : Dss.t;
  basis : Mat.t;
  eigenvalues : Complex.t array; (* of the compressed pencil, |.| descending *)
  samples : int;
}

let reduce ?(order : int option) ?(tol = 1e-8) ?workers sys (pts : Sampling.point array) =
  let zr = Zmat.build ?workers sys pts in
  let zl = Zmat.build_left ?workers sys pts in
  let q = Qr.orth (Mat.hcat zr zl) in
  let rr = Mat.mul (Mat.transpose q) zr in
  let rl = Mat.mul (Mat.transpose q) zl in
  let m = Mat.mul rr (Mat.transpose rl) in
  let schur = Cschur.of_real m in
  let evs = Cschur.eigenvalues schur in
  let k = Array.length evs in
  let order_idx = Array.init k (fun i -> i) in
  Array.sort (fun i j -> compare (Complex.norm evs.(j)) (Complex.norm evs.(i))) order_idx;
  let magmax = Float.max 1e-300 (Complex.norm evs.(order_idx.(0))) in
  let q_model =
    match order with
    | Some q -> min q k
    | None ->
        let r = ref 0 in
        Array.iter (fun i -> if Complex.norm evs.(i) > tol *. magmax then incr r) order_idx;
        max 1 !r
  in
  (* real basis spanning the dominant eigenvectors: take Re and Im parts,
     then orthonormalise *)
  let vec_cols = ref [] in
  for rank = q_model - 1 downto 0 do
    let i = order_idx.(rank) in
    let v = Cschur.eigenvector schur i in
    let re = Cvec.re v and im = Cvec.im v in
    if Vec.norm2 im > 1e-12 *. Vec.norm2 re then vec_cols := im :: !vec_cols;
    vec_cols := re :: !vec_cols
  done;
  let cols = Array.of_list !vec_cols in
  let small = Mat.init k (Array.length cols) (fun i j -> cols.(j).(i)) in
  let small_orth = Qr.orth small in
  let basis = Mat.mul q small_orth in
  let evs_sorted = Array.map (fun i -> evs.(i)) order_idx in
  {
    rom = Dss.project_congruence sys basis;
    basis;
    eigenvalues = evs_sorted;
    samples = Array.length pts;
  }
