(* Assembly of the weighted, realified sample matrix Z W.

   Each frequency point s_k contributes the columns of
   sqrt(w_k) * (s_k E - A)^{-1} B.  Complex samples at +j w also stand for
   their conjugates at -j w (step 5 of Algorithm 1); since
   span{z, z*} = span{Re z, Im z} over the reals, we store the real and
   imaginary parts as two real columns instead.  Points with (numerically)
   zero imaginary part contribute only their real columns.

   The heavy lifting — shifted solves with one shared symbolic analysis,
   optionally over a domain pool — lives in [Shift_engine]; this module
   keeps the historical entry points (plus [?workers]) and the legacy
   one-shot per-point path used as the benchmark baseline.  The reduction
   pipelines themselves no longer build through here: every variant runs
   its source through a [Sample_cache] ([build] = Controllability,
   [build_left] = Observability, [build_rhs] = Fixed_rhs,
   [build_per_point] = Per_point), each shift solved once with weights
   applied at assembly.  The builders below are retained as the one-shot
   reference paths the cache sources are property-tested
   bitwise-identical against. *)

open Pmtbr_la
open Pmtbr_lti

let realify_block = Shift_engine.realify_block
let is_effectively_real = Shift_engine.is_effectively_real

(* Legacy one-shot block: full symbolic + numeric factorisation at this
   single point, nothing shared.  Kept as the serial baseline that
   bench/shift_bench.ml measures the engine against. *)
let point_block sys ~(rhs : Mat.t) (p : Sampling.point) =
  let cols = Dss.shifted_solve_rhs sys p.Sampling.s rhs in
  realify_block ~weight:p.Sampling.weight cols ~is_real:(is_effectively_real p.Sampling.s)

(* Full ZW matrix for a point set, with B as the right-hand side. *)
let build ?workers sys (pts : Sampling.point array) =
  if Array.length pts = 0 then invalid_arg "Zmat.build: no sample points";
  Shift_engine.build ?workers sys pts

(* Same, but with one fixed arbitrary right-hand side. *)
let build_rhs ?workers sys ~(rhs : Mat.t) (pts : Sampling.point array) =
  if Array.length pts = 0 then invalid_arg "Zmat.build_rhs: no sample points";
  Shift_engine.build_rhs ?workers sys ~rhs pts

(* Same, but with an arbitrary right-hand side per point (used by the
   input-correlated variant where each point gets its own input draw). *)
let build_per_point ?workers sys (pts_rhs : (Sampling.point * Mat.t) list) =
  if pts_rhs = [] then invalid_arg "Zmat.build_per_point: no sample points";
  Shift_engine.build_per_point ?workers sys (Array.of_list pts_rhs)

(* Observability-side samples (sE - A)^{-H} C^T for the cross-Gramian
   method. *)
let point_block_hermitian sys ~(rhs : Mat.t) (p : Sampling.point) =
  let cols = Dss.shifted_solve_hermitian sys p.Sampling.s rhs in
  realify_block ~weight:p.Sampling.weight cols ~is_real:(is_effectively_real p.Sampling.s)

let build_left ?workers sys (pts : Sampling.point array) =
  if Array.length pts = 0 then invalid_arg "Zmat.build_left: no sample points";
  Shift_engine.build_left ?workers sys pts
