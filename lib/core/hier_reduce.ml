(* Hierarchical (domain-decomposed) PMTBR: the back half of the
   partition -> per-subdomain sampling -> interface-preserving
   recombination pipeline.

   Each subdomain runs the ordinary PMTBR sampling pipeline on its
   interior block — its own [Dss.multi_shift] handle inside a
   [Sample_cache] with the part's [Fixed_rhs] (ports + coupling
   directions) — yielding an orthonormal interior basis V_k.  The
   recombination basis is blkdiag(V_1 .. V_K, I_interface): interface
   states are kept exactly at this stage, so port behavior converges to
   the flat reduction as the subdomain bases do, and with untruncated
   bases the projection is an exact congruence transform of the full
   model.

   Recombination is split into a parallel and a trivial-serial half: the
   per-part congruence blocks (V^T E V, the contracted couplings, and
   the restricted port maps — all the O(interior) work) are computed by
   [project_part] inside each subdomain's job, and the serial [assemble]
   only scatters those already-small dense blocks into the (q x q)
   reduced pencil, an O(q^2) epilogue that never touches the mesh.

   [compress_interface] then optionally runs a second PMTBR pass over
   the assembled pencil's interface states: it samples the interface
   rows of X(s) = (sE - A)^{-1} B at the same quadrature points, SVDs
   the weight-scaled realified columns, and projects the trailing
   interface block through the dominant left subspace W with the
   congruence blkdiag(I, W).  Couplings are contracted *through* W but
   never sketched (PR 9 measured that cliff); interior blocks are
   untouched; with [tol] at zero rank selection keeps everything and the
   result is the exact-interface model again.

   Subdomains are fanned across the shared [Scheduler] domain pool.  Each
   subdomain job runs its solver and dense kernels with [workers:1] and
   everything it computes is a pure function of (partition, points,
   order/tol) — never of the pool size or the completion order — so the
   recombined ROM is bitwise-identical for any worker count, the same
   contract Shift_engine established (the compression SVD inherits the
   tournament-Jacobi bitwise worker-invariance from Par_kernel). *)

open Pmtbr_la
open Pmtbr_lti

type sub = {
  basis : Mat.t;
  singular_values : float array;
  sub_order : int;
  solves : int;
}

type blocks = {
  eh : Mat.t;
  ah : Mat.t;
  e_igr : Mat.t;
  a_igr : Mat.t;
  e_gir : Mat.t;
  a_gir : Mat.t;
  bh : Mat.t;
  ch : Mat.t;
}

type stats = {
  parts : int;
  depth : int;
  interface : int;
  interface_kept : int;
  states : int;
  order : int;
  sub_orders : int array;
  solves : int;
  sub_wall_s : float array;
  partition_wall_s : float;
  sample_wall_s : float;
  recombine_wall_s : float;
  compress_wall_s : float;
}

(* ------------------------------------------------------------------ *)
(* Per-subdomain sampling                                               *)
(* ------------------------------------------------------------------ *)

let sample_part ?(workers = 1) ?(oversubscribe = false) (part : Partition.part) points =
  let cache =
    Sample_cache.create ~workers ~oversubscribe ~source:(Sample_cache.Fixed_rhs part.Partition.rhs)
      part.Partition.sys
  in
  Sample_cache.extend cache points;
  cache

let basis_of_part ?order ?tol ?(workers = 1) (part : Partition.part) cache ~samples () =
  let r =
    Pmtbr.of_cache part.Partition.sys cache ~scale:1.0 ?order ?tol ~workers ~samples ()
  in
  {
    basis = r.Pmtbr.basis;
    singular_values = r.Pmtbr.singular_values;
    sub_order = r.Pmtbr.basis.Mat.cols;
    solves = (Sample_cache.stats cache).Sample_cache.solves;
  }

(* A part whose rhs has no columns (no ports, no couplings: a floating
   fragment) contributes nothing observable; its basis is empty. *)
let empty_sub (part : Partition.part) =
  {
    basis = Mat.create (Pmtbr_lti.Dss.order part.Partition.sys) 0;
    singular_values = [||];
    sub_order = 0;
    solves = 0;
  }

let reduce_part ?order ?tol (part : Partition.part) points =
  if part.Partition.rhs.Mat.cols = 0 then empty_sub part
  else
    let cache = sample_part part points in
    basis_of_part ?order ?tol part cache ~samples:(Array.length points) ()

(* ------------------------------------------------------------------ *)
(* Per-part congruence blocks (the parallel half of recombination)      *)
(* ------------------------------------------------------------------ *)

(* Everything O(interior) for one part: the projected diagonal blocks
   V^T E V / V^T A V, the couplings contracted with V on the interior
   side (interface side exact), and the port maps restricted to the
   interior and contracted.  Pure in (partition, basis); runs inside the
   part's scheduler job so the serial assembly never touches the mesh. *)
let project_part (pt : Partition.t) i (v : Mat.t) =
  let part = pt.Partition.parts.(i) in
  let m = Array.length pt.Partition.interface in
  let p = pt.Partition.p in
  let qi = v.Mat.cols in
  let vt = Mat.transpose v in
  let eh = Mat.mul vt (Dss.apply_e part.Partition.sys v) in
  let ah = Mat.mul vt (Dss.apply_a part.Partition.sys v) in
  (* interior -> interface coupling: rows contract with V *)
  let contract_ig entries =
    let dst = Mat.create qi m in
    Array.iter
      (fun (l, g, x) ->
        for r = 0 to qi - 1 do
          Mat.update dst r g (fun acc -> acc +. (x *. Mat.get v l r))
        done)
      entries;
    dst
  in
  (* interface -> interior coupling: columns contract with V *)
  let contract_gi entries =
    let dst = Mat.create m qi in
    Array.iter
      (fun (g, l, x) ->
        for c = 0 to qi - 1 do
          Mat.update dst g c (fun acc -> acc +. (x *. Mat.get v l c))
        done)
      entries;
    dst
  in
  let bh = Mat.create qi p and ch = Mat.create p qi in
  Array.iteri
    (fun l gstate ->
      for j = 0 to p - 1 do
        let bval = Mat.get pt.Partition.b gstate j in
        if bval <> 0.0 then
          for r = 0 to qi - 1 do
            Mat.update bh r j (fun acc -> acc +. (bval *. Mat.get v l r))
          done;
        let cval = Mat.get pt.Partition.c j gstate in
        if cval <> 0.0 then
          for c = 0 to qi - 1 do
            Mat.update ch j c (fun acc -> acc +. (cval *. Mat.get v l c))
          done
      done)
    part.Partition.states;
  {
    eh;
    ah;
    e_igr = contract_ig part.Partition.e_ig;
    a_igr = contract_ig part.Partition.a_ig;
    e_gir = contract_gi part.Partition.e_gi;
    a_gir = contract_gi part.Partition.a_gi;
    bh;
    ch;
  }

(* ------------------------------------------------------------------ *)
(* Serial assembly (the O(q^2) epilogue)                                *)
(* ------------------------------------------------------------------ *)

(* Scatter the per-part blocks into the reduced pencil for the basis
   blkdiag(V_1..V_K, I_interface).  All loops run in fixed (partition)
   order; nothing here scales with the mesh. *)
let assemble (pt : Partition.t) (blks : blocks array) =
  let k = Array.length pt.Partition.parts in
  if Array.length blks <> k then invalid_arg "Hier_reduce.assemble: one block set per part";
  let offsets = Array.make (k + 1) 0 in
  for i = 0 to k - 1 do
    offsets.(i + 1) <- offsets.(i) + blks.(i).eh.Mat.rows
  done;
  let goff = offsets.(k) in
  let m = Array.length pt.Partition.interface in
  let p = pt.Partition.p in
  let q = goff + m in
  let ehat = Mat.create q q and ahat = Mat.create q q in
  let bhat = Mat.create q p and chat = Mat.create p q in
  let copy dst r0 c0 (src : Mat.t) =
    for r = 0 to src.Mat.rows - 1 do
      for c = 0 to src.Mat.cols - 1 do
        Mat.set dst (r0 + r) (c0 + c) (Mat.get src r c)
      done
    done
  in
  Array.iteri
    (fun i blk ->
      let off = offsets.(i) in
      copy ehat off off blk.eh;
      copy ahat off off blk.ah;
      copy ehat off goff blk.e_igr;
      copy ahat off goff blk.a_igr;
      copy ehat goff off blk.e_gir;
      copy ahat goff off blk.a_gir;
      copy bhat off 0 blk.bh;
      copy chat 0 off blk.ch)
    blks;
  (* interface block and port rows, kept exactly *)
  Array.iter
    (fun (g1, g2, x) -> Mat.update ehat (goff + g1) (goff + g2) (fun acc -> acc +. x))
    pt.Partition.e_gg;
  Array.iter
    (fun (g1, g2, x) -> Mat.update ahat (goff + g1) (goff + g2) (fun acc -> acc +. x))
    pt.Partition.a_gg;
  Array.iteri
    (fun g gstate ->
      for j = 0 to p - 1 do
        Mat.set bhat (goff + g) j (Mat.get pt.Partition.b gstate j);
        Mat.set chat j (goff + g) (Mat.get pt.Partition.c j gstate)
      done)
    pt.Partition.interface;
  Dss.of_dense ~e:ehat ~a:ahat ~b:bhat ~c:chat

(* ------------------------------------------------------------------ *)
(* Recombination driver                                                 *)
(* ------------------------------------------------------------------ *)

let recombine ?(workers = 1) (pt : Partition.t) (bases : Mat.t array) =
  let k = Array.length pt.Partition.parts in
  if Array.length bases <> k then invalid_arg "Hier_reduce.recombine: one basis per part";
  let blks = Array.make k None in
  let run i = blks.(i) <- Some (project_part pt i bases.(i)) in
  let nw = max 1 (min workers k) in
  if nw <= 1 then
    for i = 0 to k - 1 do
      run i
    done
  else begin
    let pool = Scheduler.create ~workers:nw run in
    for i = 0 to k - 1 do
      ignore (Scheduler.submit pool i)
    done;
    Scheduler.stop pool
  end;
  assemble pt
    (Array.mapi
       (fun i b ->
         match b with
         | Some blk -> blk
         | None -> invalid_arg (Printf.sprintf "Hier_reduce.recombine: part %d never projected" i))
       blks)

(* ------------------------------------------------------------------ *)
(* Interface compression (second-pass PMTBR over the interface states)  *)
(* ------------------------------------------------------------------ *)

(* The assembled pencil keeps its interface block verbatim in the last
   [interface_count pt] rows/columns.  Sample the interface rows of
   X(s) = (sE - A)^{-1} B at the quadrature points (same sqrt-weight
   realification as the flat sampler), SVD, pick the rank with
   [Pmtbr.choose_order ~tol], and congruence-project the trailing block
   through W = dominant left vectors: T = blkdiag(I, W).  Couplings are
   contracted through W (exact on the interior side, never sketched);
   rank = interface means the model is returned unchanged — the exact
   fallback.  Returns (compressed model, interface states kept). *)
let compress_interface ?(workers = 1) ~tol (pt : Partition.t) (rom : Dss.t) points =
  let m = Array.length pt.Partition.interface in
  let q = Dss.order rom in
  let goff = q - m in
  let npts = Array.length points in
  if m = 0 || npts = 0 then (rom, m)
  else begin
    let b = Dss.b_matrix rom in
    let p = b.Mat.cols in
    let cols = Mat.create m (2 * p * npts) in
    Array.iteri
      (fun ip (pnt : Sampling.point) ->
        let x = Dss.shifted_solve_rhs rom pnt.Sampling.s b in
        let w = sqrt pnt.Sampling.weight in
        for j = 0 to p - 1 do
          let col = x.(j) in
          for r = 0 to m - 1 do
            let z = col.(goff + r) in
            Mat.set cols r (2 * ((ip * p) + j)) (w *. z.Complex.re);
            Mat.set cols r ((2 * ((ip * p) + j)) + 1) (w *. z.Complex.im)
          done
        done)
      points;
    let svd = Svd.decompose ~workers cols in
    let rank = min m (Pmtbr.choose_order ~sigma:svd.Svd.sigma ~tol ()) in
    if rank >= m then (rom, m)
    else begin
      let w = Svd.left_vectors svd rank in
      let t = Mat.create q (goff + rank) in
      for i = 0 to goff - 1 do
        Mat.set t i i 1.0
      done;
      for i = 0 to m - 1 do
        for j = 0 to rank - 1 do
          Mat.set t (goff + i) (goff + j) (Mat.get w i j)
        done
      done;
      (Dss.project_congruence rom t, rank)
    end
  end

(* ------------------------------------------------------------------ *)
(* Fan-out driver                                                       *)
(* ------------------------------------------------------------------ *)

let reduce_partitioned ?order ?tol ?interface_tol ?workers ?(oversubscribe = false)
    (pt : Partition.t) points =
  let k = Array.length pt.Partition.parts in
  let requested = match workers with Some w -> w | None -> Par_kernel.default_workers () in
  let cap = if oversubscribe then requested else Domain.recommended_domain_count () in
  let nw = max 1 (min (min requested cap) k) in
  if requested > 1 && nw = 1 && k > 1 then
    Par_kernel.warn_worker_collapse ~context:"the hierarchical subdomain pool" ~requested ();
  let results : ((sub * blocks), exn) result option array = Array.make k None in
  let walls = Array.make k 0.0 in
  (* one job = sample + basis + congruence blocks: all the O(interior)
     work, so the serial stages below never touch the mesh *)
  let run i =
    let t0 = Unix.gettimeofday () in
    let r =
      try
        let s = reduce_part ?order ?tol pt.Partition.parts.(i) points in
        Ok (s, project_part pt i s.basis)
      with e -> Error e
    in
    walls.(i) <- Unix.gettimeofday () -. t0;
    results.(i) <- Some r
  in
  let t_fan = Unix.gettimeofday () in
  if nw <= 1 then
    for i = 0 to k - 1 do
      run i
    done
  else begin
    let pool = Scheduler.create ~workers:nw run in
    for i = 0 to k - 1 do
      ignore (Scheduler.submit pool i)
    done;
    Scheduler.stop pool
  end;
  let sample_wall_s = Unix.gettimeofday () -. t_fan in
  (* propagate the lowest-index failure, as Shift_engine does *)
  let done_ =
    Array.mapi
      (fun i r ->
        match r with
        | Some (Ok sb) -> sb
        | Some (Error e) -> raise e
        | None -> invalid_arg (Printf.sprintf "Hier_reduce: subdomain %d never ran" i))
      results
  in
  let subs = Array.map fst done_ in
  let t_asm = Unix.gettimeofday () in
  let rom = assemble pt (Array.map snd done_) in
  let recombine_wall_s = Unix.gettimeofday () -. t_asm in
  let interface = Array.length pt.Partition.interface in
  let t_cmp = Unix.gettimeofday () in
  let rom, interface_kept =
    match interface_tol with
    | None -> (rom, interface)
    | Some itol -> compress_interface ~workers:nw ~tol:itol pt rom points
  in
  let compress_wall_s =
    match interface_tol with None -> 0.0 | Some _ -> Unix.gettimeofday () -. t_cmp
  in
  let stats =
    {
      parts = k;
      depth = Partition.tree_depth pt;
      interface;
      interface_kept;
      states = pt.Partition.n;
      order = Dss.order rom;
      sub_orders = Array.map (fun s -> s.sub_order) subs;
      solves = Array.fold_left (fun acc (s : sub) -> acc + s.solves) 0 subs;
      sub_wall_s = walls;
      partition_wall_s = 0.0;
      sample_wall_s;
      recombine_wall_s;
      compress_wall_s;
    }
  in
  (rom, stats)

let timed_split f =
  let t0 = Unix.gettimeofday () in
  let pt = f () in
  (pt, Unix.gettimeofday () -. t0)

let reduce_stats ?order ?tol ?interface_tol ?workers ?oversubscribe ?sketch ~parts nl points =
  let pt, pw = timed_split (fun () -> Partition.split ~parts ?sketch nl) in
  let rom, stats = reduce_partitioned ?order ?tol ?interface_tol ?workers ?oversubscribe pt points in
  (rom, { stats with partition_wall_s = pw })

let reduce_auto_stats ?order ?tol ?interface_tol ?workers ?oversubscribe ?sketch ?depth_cap
    ~max_states nl points =
  let pt, pw = timed_split (fun () -> Partition.split_auto ~max_states ?depth_cap ?sketch nl) in
  let rom, stats = reduce_partitioned ?order ?tol ?interface_tol ?workers ?oversubscribe pt points in
  (rom, { stats with partition_wall_s = pw })

let reduce ?order ?tol ?interface_tol ?workers ?oversubscribe ?sketch ~parts nl points =
  fst (reduce_stats ?order ?tol ?interface_tol ?workers ?oversubscribe ?sketch ~parts nl points)
