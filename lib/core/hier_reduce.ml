(* Hierarchical (domain-decomposed) PMTBR: the back half of the
   partition -> per-subdomain sampling -> interface-preserving
   recombination pipeline.

   Each subdomain runs the ordinary PMTBR sampling pipeline on its
   interior block — its own [Dss.multi_shift] handle inside a
   [Sample_cache] with the part's [Fixed_rhs] (ports + coupling
   directions) — yielding an orthonormal interior basis V_k.  The
   recombination basis is blkdiag(V_1 .. V_K, I_interface): interface
   states are kept exactly, so port behavior converges to the flat
   reduction as the subdomain bases do, and with untruncated bases the
   projection is an exact congruence transform of the full model.

   Subdomains are fanned across the shared [Scheduler] domain pool.  Each
   subdomain job runs its solver and dense kernels with [workers:1] and
   everything it computes is a pure function of (partition, points,
   order/tol) — never of the pool size or the completion order — so the
   recombined ROM is bitwise-identical for any worker count, the same
   contract Shift_engine established. *)

open Pmtbr_la
open Pmtbr_lti

type sub = {
  basis : Mat.t;
  singular_values : float array;
  sub_order : int;
  solves : int;
}

type stats = {
  parts : int;
  interface : int;
  states : int;
  order : int;
  sub_orders : int array;
  solves : int;
  sub_wall_s : float array;
}

(* ------------------------------------------------------------------ *)
(* Per-subdomain sampling                                               *)
(* ------------------------------------------------------------------ *)

let sample_part ?(workers = 1) ?(oversubscribe = false) (part : Partition.part) points =
  let cache =
    Sample_cache.create ~workers ~oversubscribe ~source:(Sample_cache.Fixed_rhs part.Partition.rhs)
      part.Partition.sys
  in
  Sample_cache.extend cache points;
  cache

let basis_of_part ?order ?tol ?(workers = 1) (part : Partition.part) cache ~samples () =
  let r =
    Pmtbr.of_cache part.Partition.sys cache ~scale:1.0 ?order ?tol ~workers ~samples ()
  in
  {
    basis = r.Pmtbr.basis;
    singular_values = r.Pmtbr.singular_values;
    sub_order = r.Pmtbr.basis.Mat.cols;
    solves = (Sample_cache.stats cache).Sample_cache.solves;
  }

(* A part whose rhs has no columns (no ports, no couplings: a floating
   fragment) contributes nothing observable; its basis is empty. *)
let empty_sub (part : Partition.part) =
  {
    basis = Mat.create (Pmtbr_lti.Dss.order part.Partition.sys) 0;
    singular_values = [||];
    sub_order = 0;
    solves = 0;
  }

let reduce_part ?order ?tol (part : Partition.part) points =
  if part.Partition.rhs.Mat.cols = 0 then empty_sub part
  else
    let cache = sample_part part points in
    basis_of_part ?order ?tol part cache ~samples:(Array.length points) ()

(* ------------------------------------------------------------------ *)
(* Interface-preserving recombination                                   *)
(* ------------------------------------------------------------------ *)

(* Assemble the projected model for the basis blkdiag(V_1..V_K, I):
   diagonal blocks are V_k^T E_k V_k, coupling blocks contract one side
   with V_k and keep the interface side exact, and the interface block is
   copied verbatim.  All loops run in fixed (partition) order. *)
let recombine (pt : Partition.t) (bases : Mat.t array) =
  let k = Array.length pt.Partition.parts in
  if Array.length bases <> k then invalid_arg "Hier_reduce.recombine: one basis per part";
  let offsets = Array.make (k + 1) 0 in
  for i = 0 to k - 1 do
    offsets.(i + 1) <- offsets.(i) + bases.(i).Mat.cols
  done;
  let goff = offsets.(k) in
  let m = Array.length pt.Partition.interface in
  let q = goff + m in
  let ehat = Mat.create q q and ahat = Mat.create q q in
  let bhat = Mat.create q pt.Partition.p and chat = Mat.create pt.Partition.p q in
  Array.iteri
    (fun i part ->
      let v = bases.(i) in
      let off = offsets.(i) in
      let qi = v.Mat.cols in
      let place dst block =
        for r = 0 to qi - 1 do
          for c = 0 to qi - 1 do
            Mat.set dst (off + r) (off + c) (Mat.get block r c)
          done
        done
      in
      let vt = Mat.transpose v in
      place ehat (Mat.mul vt (Dss.apply_e part.Partition.sys v));
      place ahat (Mat.mul vt (Dss.apply_a part.Partition.sys v));
      (* interior -> interface coupling: rows contract with V_k *)
      let scatter_ig dst entries =
        Array.iter
          (fun (l, g, x) ->
            for r = 0 to qi - 1 do
              Mat.update dst (off + r) (goff + g) (fun acc -> acc +. (x *. Mat.get v l r))
            done)
          entries
      in
      scatter_ig ehat part.Partition.e_ig;
      scatter_ig ahat part.Partition.a_ig;
      (* interface -> interior coupling: columns contract with V_k *)
      let scatter_gi dst entries =
        Array.iter
          (fun (g, l, x) ->
            for c = 0 to qi - 1 do
              Mat.update dst (goff + g) (off + c) (fun acc -> acc +. (x *. Mat.get v l c))
            done)
          entries
      in
      scatter_gi ehat part.Partition.e_gi;
      scatter_gi ahat part.Partition.a_gi;
      (* port maps restricted to the interior, contracted with V_k *)
      Array.iteri
        (fun l gstate ->
          for j = 0 to pt.Partition.p - 1 do
            let bval = Mat.get pt.Partition.b gstate j in
            if bval <> 0.0 then
              for r = 0 to qi - 1 do
                Mat.update bhat (off + r) j (fun acc -> acc +. (bval *. Mat.get v l r))
              done;
            let cval = Mat.get pt.Partition.c j gstate in
            if cval <> 0.0 then
              for c = 0 to qi - 1 do
                Mat.update chat j (off + c) (fun acc -> acc +. (cval *. Mat.get v l c))
              done
          done)
        part.Partition.states)
    pt.Partition.parts;
  (* interface block and port rows, kept exactly *)
  Array.iter
    (fun (g1, g2, x) -> Mat.update ehat (goff + g1) (goff + g2) (fun acc -> acc +. x))
    pt.Partition.e_gg;
  Array.iter
    (fun (g1, g2, x) -> Mat.update ahat (goff + g1) (goff + g2) (fun acc -> acc +. x))
    pt.Partition.a_gg;
  Array.iteri
    (fun g gstate ->
      for j = 0 to pt.Partition.p - 1 do
        Mat.set bhat (goff + g) j (Mat.get pt.Partition.b gstate j);
        Mat.set chat j (goff + g) (Mat.get pt.Partition.c j gstate)
      done)
    pt.Partition.interface;
  Dss.of_dense ~e:ehat ~a:ahat ~b:bhat ~c:chat

(* ------------------------------------------------------------------ *)
(* Fan-out driver                                                       *)
(* ------------------------------------------------------------------ *)

let reduce_partitioned ?order ?tol ?workers ?(oversubscribe = false) (pt : Partition.t) points =
  let k = Array.length pt.Partition.parts in
  let requested = match workers with Some w -> w | None -> Par_kernel.default_workers () in
  let cap = if oversubscribe then requested else Domain.recommended_domain_count () in
  let nw = max 1 (min (min requested cap) k) in
  if requested > 1 && nw = 1 && k > 1 then
    Par_kernel.warn_worker_collapse ~context:"the hierarchical subdomain pool" ~requested ();
  let results : (sub, exn) result option array = Array.make k None in
  let walls = Array.make k 0.0 in
  let run i =
    let t0 = Unix.gettimeofday () in
    let r = try Ok (reduce_part ?order ?tol pt.Partition.parts.(i) points) with e -> Error e in
    walls.(i) <- Unix.gettimeofday () -. t0;
    results.(i) <- Some r
  in
  if nw <= 1 then
    for i = 0 to k - 1 do
      run i
    done
  else begin
    let pool = Scheduler.create ~workers:nw run in
    for i = 0 to k - 1 do
      ignore (Scheduler.submit pool i)
    done;
    Scheduler.stop pool
  end;
  (* propagate the lowest-index failure, as Shift_engine does *)
  let subs =
    Array.mapi
      (fun i r ->
        match r with
        | Some (Ok s) -> s
        | Some (Error e) -> raise e
        | None -> invalid_arg (Printf.sprintf "Hier_reduce: subdomain %d never ran" i))
      results
  in
  let rom = recombine pt (Array.map (fun s -> s.basis) subs) in
  let stats =
    {
      parts = k;
      interface = Array.length pt.Partition.interface;
      states = pt.Partition.n;
      order = Dss.order rom;
      sub_orders = Array.map (fun s -> s.sub_order) subs;
      solves = Array.fold_left (fun acc (s : sub) -> acc + s.solves) 0 subs;
      sub_wall_s = walls;
    }
  in
  (rom, stats)

let reduce_stats ?order ?tol ?workers ?oversubscribe ?sketch ~parts nl points =
  let pt = Partition.split ~parts ?sketch nl in
  reduce_partitioned ?order ?tol ?workers ?oversubscribe pt points

let reduce ?order ?tol ?workers ?oversubscribe ?sketch ~parts nl points =
  fst (reduce_stats ?order ?tol ?workers ?oversubscribe ?sketch ~parts nl points)
