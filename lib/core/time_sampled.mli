(** Time-domain sampled Gramian reduction (proper orthogonal
    decomposition).  The paper's statistical interpretation (Section IV-A)
    views the Gramian as the covariance of the state under the assumed
    input process; here that covariance is estimated from state snapshots
    of a training simulation — the time-domain twin of PMTBR, with input
    correlation captured implicitly by simulating the training inputs. *)

open Pmtbr_la
open Pmtbr_lti

type result = {
  rom : Dss.t;
  basis : Mat.t;
  singular_values : float array;  (** of the weighted snapshot matrix *)
  snapshots : int;
}

val reduce : ?order:int -> ?tol:float -> Dss.t -> u:(float -> float array) -> t1:float ->
  dt:float -> snapshots:int -> result
(** Simulate from rest with the training input over [0, t1] at step [dt],
    keep exactly [snapshots] state snapshots — always including the initial
    and final states, clamped to the step count when the run is shorter —
    and project onto their dominant left singular subspace.  Snapshots
    follow a quadratic ramp clustered towards t=0 (where the fast modes of
    a from-rest transient live), with each column weighted by the square
    root of its local time interval so that the SVD estimates the
    covariance integral under the non-uniform spacing.
    [result.snapshots] reports the count actually kept.  Raises
    [Invalid_argument] on [snapshots < 2] or a non-positive / oversized
    time step. *)
