(* Nested-dissection partitioner over the MNA state graph.

   The netlist is stamped once; the state graph (union pattern of E and A,
   symmetrized) is dissected recursively by vertex separators: BFS level
   sets from a pseudo-peripheral vertex form wavefronts, and one whole
   level — chosen to be thin and to balance the two sides — is removed as
   a separator.  The two remaining sides cannot touch (BFS levels are only
   adjacent to their neighbours), so recursing on each side yields a
   partition *tree*: internal nodes carry separators, leaves are mutually
   decoupled interiors.  The union of all separators is the global
   interface set; the only nonzero blocks are per-part interiors,
   part<->interface couplings, and the interface block.  Recursion is
   driven either by a leaf-count target ([split ~parts]) or by a state
   budget ([split_auto ~max_states]: recurse while a side exceeds the
   budget, under a hard depth cap).  Each interior is re-expressed as a
   standalone sub-netlist (interface nodes mapped to ground — exactly
   reproduces the interior stamp, see [sub_netlist_of_part]) so the
   subdomain is content-addressed by the same canonical-render hash the
   store already uses for whole networks.

   Everything here is a pure function of the netlist and the options:
   vertex orderings break ties by global index, the coupling sketch draws
   from a per-part fixed-seed generator, and no step consults worker
   counts or wall clocks — the partition underpins the hierarchical
   reducer's bitwise worker-invariance contract. *)

open Pmtbr_la
open Pmtbr_circuit

type entry = int * int * float

type part = {
  states : int array;
  sys : Pmtbr_lti.Dss.t;
  sub_netlist : Netlist.t;
  rhs : Mat.t;
  e_ig : entry array;
  a_ig : entry array;
  e_gi : entry array;
  a_gi : entry array;
}

type tree =
  | Leaf of { part : int; size : int }
  | Node of { sep : int array; left : tree; right : tree }

type t = {
  parts : part array;
  tree : tree;
  interface : int array;
  e_gg : entry array;
  a_gg : entry array;
  b : Mat.t;
  c : Mat.t;
  n : int;
  p : int;
}

let part_count t = Array.length t.parts
let interface_count t = Array.length t.interface
let part_sizes t = Array.map (fun p -> Array.length p.states) t.parts

let rec depth_of = function
  | Leaf _ -> 0
  | Node { left; right; _ } -> 1 + max (depth_of left) (depth_of right)

let tree_depth t = depth_of t.tree

(* Per-level cut summary, root first: (separators at this level, total
   separator states).  Levels with no internal node are absent. *)
let level_cuts t =
  let acc = ref [] in
  let rec walk level = function
    | Leaf _ -> ()
    | Node { sep; left; right } ->
        acc := (level, Array.length sep) :: !acc;
        walk (level + 1) left;
        walk (level + 1) right
  in
  walk 0 t.tree;
  let depth = depth_of t.tree in
  let cuts = Array.make depth (0, 0) in
  List.iter
    (fun (l, s) ->
      let c, st = cuts.(l) in
      cuts.(l) <- (c + 1, st + s))
    !acc;
  cuts

(* Ancestor separators of each leaf (interface-local indices would need
   [t]; these are global state ids), in leaf/part order — the tree
   invariant tests and the store's per-node warm logic read this. *)
let leaf_ancestors t =
  let out = Array.make (Array.length t.parts) [] in
  let rec walk anc = function
    | Leaf { part; _ } -> out.(part) <- anc
    | Node { sep; left; right } ->
        let anc = Array.to_list sep @ anc in
        walk anc left;
        walk anc right
  in
  walk [] t.tree;
  out

(* ------------------------------------------------------------------ *)
(* Merged sparse entries                                                *)
(* ------------------------------------------------------------------ *)

(* Triplet accumulators hold unmerged duplicates; sum them (in entry
   order) and sort by (row, col) so every later per-entry loop runs in one
   fixed order. *)
let merged_entries n trip =
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun (i, j, v) ->
      let key = (i * n) + j in
      match Hashtbl.find_opt tbl key with
      | Some acc -> Hashtbl.replace tbl key (acc +. v)
      | None -> Hashtbl.add tbl key v)
    (Pmtbr_sparse.Triplet.entries trip);
  let out = Hashtbl.fold (fun key v acc -> ((key / n, key mod n, v) :: acc)) tbl [] in
  let arr = Array.of_list out in
  Array.sort (fun (i1, j1, _) (i2, j2, _) -> compare (i1, j1) (i2, j2)) arr;
  arr

(* ------------------------------------------------------------------ *)
(* State graph and recursive bisection                                  *)
(* ------------------------------------------------------------------ *)

(* CSR adjacency of the symmetrized union pattern of E and A (off-diagonal
   structural entries only).  Duplicate neighbours are harmless for BFS. *)
let adjacency n (ee : entry array) (ae : entry array) =
  let deg = Array.make n 0 in
  let count (i, j, _) =
    if i <> j then begin
      deg.(i) <- deg.(i) + 1;
      deg.(j) <- deg.(j) + 1
    end
  in
  Array.iter count ee;
  Array.iter count ae;
  let ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    ptr.(i + 1) <- ptr.(i) + deg.(i)
  done;
  let adj = Array.make ptr.(n) 0 in
  let fill = Array.make n 0 in
  let put (i, j, _) =
    if i <> j then begin
      adj.(ptr.(i) + fill.(i)) <- j;
      fill.(i) <- fill.(i) + 1;
      adj.(ptr.(j) + fill.(j)) <- i;
      fill.(j) <- fill.(j) + 1
    end
  in
  Array.iter put ee;
  Array.iter put ae;
  (ptr, adj)

(* BFS level numbers over the subset [states] (ascending global order),
   restarting at the smallest-index unvisited vertex when a component is
   exhausted — disconnected pieces land on successive levels, so the split
   below still covers them deterministically. *)
let bfs_levels (ptr, adj) states source =
  let level = Hashtbl.create (Array.length states) in
  let member = Hashtbl.create (Array.length states) in
  Array.iter (fun v -> Hashtbl.replace member v ()) states;
  let queue = Queue.create () in
  let push v l = if not (Hashtbl.mem level v) then (Hashtbl.replace level v l; Queue.push v queue) in
  push source 0;
  let max_level = ref 0 in
  let drain () =
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      let l = Hashtbl.find level v in
      if l > !max_level then max_level := l;
      for k = ptr.(v) to ptr.(v + 1) - 1 do
        let w = adj.(k) in
        if Hashtbl.mem member w then push w (l + 1)
      done
    done
  in
  drain ();
  (* restart on unvisited vertices (disconnected subset) *)
  Array.iter
    (fun v ->
      if not (Hashtbl.mem level v) then begin
        push v (!max_level + 1);
        drain ()
      end)
    states;
  level

let farthest_vertex levels states =
  let best = ref (-1) and best_level = ref (-1) in
  Array.iter
    (fun v ->
      let l = Hashtbl.find levels v in
      if l > !best_level then begin
        best_level := l;
        best := v
      end)
    states;
  !best

(* Recursion driver: a leaf-count target ([split ~parts]) or a per-part
   state budget ([split_auto ~max_states]). *)
type goal = Leaves of int | Budget of int

(* Recursive nested dissection of [states] (ascending global order).
   Each step removes one whole BFS level as a vertex separator: levels
   are only adjacent to their neighbours, so deleting level [l] leaves
   the below side (levels < l) and the above side (levels > l) with no
   connecting entry — the invariant every later block-structure step
   relies on.  The level is chosen by a balance heuristic: minimise
   |separator|/n plus a penalty on the distance of the below-side
   fraction from the target split (the target is k1/k when dividing a
   leaf-count goal, 1/2 under a budget goal).  Ties break toward the
   lowest level, and every ordering breaks ties by global index, so the
   tree is a pure function of the graph and the goal.

   Stops (making a leaf) when the goal is met, the subset has no
   interior level to remove (fewer than three BFS levels), or [depth]
   reaches [depth_cap] — the cap bounds the interface a pathological
   graph can accumulate.  [mk_leaf] assigns dense part ids in
   left-subtree order. *)
let rec dissect graph states ~goal ~depth ~depth_cap ~mark_sep ~mk_leaf =
  let n = Array.length states in
  let want_split =
    n > 1 && depth < depth_cap
    && (match goal with Leaves k -> k > 1 | Budget b -> n > b)
  in
  if not want_split then mk_leaf states
  else begin
    let l0 = bfs_levels graph states states.(0) in
    let src = farthest_vertex l0 states in
    let levels = bfs_levels graph states src in
    let max_level = Hashtbl.fold (fun _ l acc -> max l acc) levels 0 in
    if max_level < 2 then mk_leaf states
    else begin
      (* bucket by level; iterating [states] backwards keeps each bucket
         ascending by global index *)
      let by_level = Array.make (max_level + 1) [] in
      for i = n - 1 downto 0 do
        let v = states.(i) in
        let l = Hashtbl.find levels v in
        by_level.(l) <- v :: by_level.(l)
      done;
      let sizes = Array.map List.length by_level in
      let below = Array.make (max_level + 1) 0 in
      for l = 1 to max_level do
        below.(l) <- below.(l - 1) + sizes.(l - 1)
      done;
      let target =
        match goal with
        | Leaves k -> float_of_int (k / 2) /. float_of_int k
        | Budget _ -> 0.5
      in
      let best = ref None in
      for l = 1 to max_level - 1 do
        let b = below.(l) and a = n - below.(l) - sizes.(l) in
        if b > 0 && a > 0 then begin
          let frac = float_of_int b /. float_of_int (b + a) in
          let score =
            (float_of_int sizes.(l) /. float_of_int n)
            +. (0.5 *. Float.abs (frac -. target))
          in
          match !best with
          | Some (s, _) when s <= score -> ()
          | _ -> best := Some (score, l)
        end
      done;
      match !best with
      | None -> mk_leaf states
      | Some (_, l) ->
          let sep = Array.of_list by_level.(l) in
          Array.iter mark_sep sep;
          let side lo hi =
            let out = ref [] in
            for ll = hi downto lo do
              out := by_level.(ll) @ !out
            done;
            let arr = Array.of_list !out in
            Array.sort compare arr;
            arr
          in
          let s1 = side 0 (l - 1) in
          let s2 = side (l + 1) max_level in
          let g1, g2 =
            match goal with
            | Leaves k -> (Leaves (k / 2), Leaves (k - (k / 2)))
            | Budget b -> (Budget b, Budget b)
          in
          let left =
            dissect graph s1 ~goal:g1 ~depth:(depth + 1) ~depth_cap ~mark_sep ~mk_leaf
          in
          let right =
            dissect graph s2 ~goal:g2 ~depth:(depth + 1) ~depth_cap ~mark_sep ~mk_leaf
          in
          Node { sep; left; right }
    end
  end

(* ------------------------------------------------------------------ *)
(* Sub-netlist extraction                                               *)
(* ------------------------------------------------------------------ *)

(* Re-express one part's interior as a standalone netlist: keep every
   element with at least one endpoint (for inductors: whose state) in the
   interior, map interface endpoints to ground.  Grounding is exact for
   the interior block: a two-terminal element between interior node i and
   interface node g contributes the same diagonal stamp at i as the
   grounded copy, and its cross terms are precisely the coupling entries
   carried separately.  Elements living entirely in the interface or in
   other parts touch no interior entry (cross-part entries cannot survive
   promotion) and are dropped.  Local state order is the sub-netlist's own
   MNA order — nodes ascending by global index, then inductors — so equal
   canonical sub-netlists mean equal interior matrices in equal order,
   which is what lets the store share subdomain sample columns across
   networks. *)
let sub_netlist_of_part nl ~nodes ~interior ~is_interior =
  let node_local = Hashtbl.create 64 in
  let node_states = Array.of_list (List.filter (fun g -> g < nodes) (Array.to_list interior)) in
  Array.iteri (fun idx g -> Hashtbl.replace node_local (g + 1) (idx + 1)) node_states;
  let ind_states = Array.of_list (List.filter (fun g -> g >= nodes) (Array.to_list interior)) in
  let ind_local = Hashtbl.create 16 in
  let sub = Netlist.create () in
  let map_node v =
    if v = 0 then Some 0
    else if is_interior (v - 1) then Some (Hashtbl.find node_local v)
    else None
  in
  (* interface (or other-part — impossible for kept elements) endpoint
     maps to ground *)
  let map_or_ground v = match map_node v with Some l -> l | None -> 0 in
  List.iter
    (fun el ->
      match el with
      | Netlist.Resistor { n1; n2; ohms } ->
          if map_node n1 <> None || map_node n2 <> None then
            Netlist.add_r sub (map_or_ground n1) (map_or_ground n2) ohms
      | Netlist.Capacitor { n1; n2; farads } ->
          if map_node n1 <> None || map_node n2 <> None then
            Netlist.add_c sub (map_or_ground n1) (map_or_ground n2) farads
      | Netlist.Inductor { n1; n2; henries } ->
          let global_l = Hashtbl.length ind_local in
          let state = nodes + global_l in
          if is_interior state then begin
            let local_l = Netlist.add_l sub (map_or_ground n1) (map_or_ground n2) henries in
            Hashtbl.replace ind_local global_l local_l
          end
          else Hashtbl.replace ind_local global_l (-1)
      | Netlist.Mutual { l1; l2; coupling } -> (
          match (Hashtbl.find_opt ind_local l1, Hashtbl.find_opt ind_local l2) with
          | Some a, Some b when a >= 0 && b >= 0 -> Netlist.add_mutual sub a b coupling
          | _ -> ()))
    (Netlist.elements nl);
  if Netlist.node_count sub <> Array.length node_states then
    invalid_arg "Partition.split: a subdomain node carries no element (isolated state)";
  if Netlist.inductor_count sub <> Array.length ind_states then
    invalid_arg "Partition.split: subdomain inductor states out of order";
  (* local order = sub-netlist MNA order: nodes ascending by global index,
     then inductors in element (= ascending global state) order *)
  (sub, Array.append node_states ind_states)

(* ------------------------------------------------------------------ *)
(* Split                                                                *)
(* ------------------------------------------------------------------ *)

let split_goal ~goal ~depth_cap ?sketch nl =
  let m = Mna.stamp nl in
  let n = m.Mna.n in
  if n = 0 then invalid_arg "Partition.split: empty netlist";
  let ee = merged_entries n m.Mna.e in
  let ae = merged_entries n m.Mna.a in
  let graph = adjacency n ee ae in
  let iface = Array.make n false in
  let interiors_rev = ref [] in
  let next_id = ref 0 in
  let mk_leaf states =
    let id = !next_id in
    incr next_id;
    interiors_rev := states :: !interiors_rev;
    Leaf { part = id; size = Array.length states }
  in
  let tree =
    dissect graph
      (Array.init n (fun i -> i))
      ~goal ~depth:0 ~depth_cap
      ~mark_sep:(fun v -> iface.(v) <- true)
      ~mk_leaf
  in
  let interiors = Array.of_list (List.rev !interiors_rev) in
  let interface =
    Array.of_list (List.filter (fun v -> iface.(v)) (List.init n (fun i -> i)))
  in
  let iface_local = Array.make n (-1) in
  Array.iteri (fun idx g -> iface_local.(g) <- idx) interface;
  let nk = Array.length interiors in
  let local_of = Array.make n (-1) in
  let owner = Array.make n (-1) in
  (* sub-netlists fix each part's local state order; record it *)
  let subs =
    Array.mapi
      (fun pid interior ->
        Array.iter (fun v -> owner.(v) <- pid) interior;
        let is_interior v = not iface.(v) && owner.(v) = pid in
        let sub, states = sub_netlist_of_part nl ~nodes:m.Mna.nodes ~interior ~is_interior in
        Array.iteri (fun l g -> local_of.(g) <- l) states;
        (sub, states))
      interiors
  in
  (* scatter coupling and interface entries (interior entries are owned by
     the sub-netlist stamps) *)
  let e_gg = ref [] and a_gg = ref [] in
  let e_ig = Array.make nk [] and a_ig = Array.make nk [] in
  let e_gi = Array.make nk [] and a_gi = Array.make nk [] in
  let scatter gg ig gi (i, j, v) =
    match (iface.(i), iface.(j)) with
    | true, true -> gg := (iface_local.(i), iface_local.(j), v) :: !gg
    | false, true ->
        let p = owner.(i) in
        ig.(p) <- (local_of.(i), iface_local.(j), v) :: ig.(p)
    | true, false ->
        let p = owner.(j) in
        gi.(p) <- (iface_local.(i), local_of.(j), v) :: gi.(p)
    | false, false ->
        if owner.(i) <> owner.(j) then
          invalid_arg "Partition.split: cross-part entry survived promotion"
  in
  Array.iter (scatter e_gg e_ig e_gi) ee;
  Array.iter (scatter a_gg a_ig a_gi) ae;
  let finalize l = Array.of_list (List.rev l) in
  (* per-part sampling right-hand side: global port columns restricted to
     the interior, plus the interface coupling directions (columns of
     A_ig and E_ig on the adjacent interface states), optionally
     compressed by a fixed-seed Gaussian sketch; all-zero columns are
     dropped.  A pure function of the partition and [sketch]. *)
  let build_rhs pid states =
    let nkk = Array.length states in
    let ports = Mat.init nkk m.Mna.b.Mat.cols (fun l j -> Mat.get m.Mna.b states.(l) j) in
    let adjacent =
      let tbl = Hashtbl.create 64 in
      List.iter (fun (_, g, _) -> Hashtbl.replace tbl g ()) a_ig.(pid);
      List.iter (fun (_, g, _) -> Hashtbl.replace tbl g ()) e_ig.(pid);
      let l = Hashtbl.fold (fun g () acc -> g :: acc) tbl [] in
      Array.of_list (List.sort compare l)
    in
    let madj = Array.length adjacent in
    let col_of = Hashtbl.create 64 in
    Array.iteri (fun idx g -> Hashtbl.replace col_of g idx) adjacent;
    let coup = Mat.create nkk (2 * madj) in
    List.iter
      (fun (l, g, v) -> Mat.update coup l (Hashtbl.find col_of g) (fun x -> x +. v))
      a_ig.(pid);
    List.iter
      (fun (l, g, v) -> Mat.update coup l (madj + Hashtbl.find col_of g) (fun x -> x +. v))
      e_ig.(pid);
    let coup =
      match sketch with
      | Some s when s > 0 && 2 * madj > s ->
          let rng = Pmtbr_signal.Rng.create ((7919 * pid) + 104729) in
          let omega = Mat.init (2 * madj) s (fun _ _ -> Pmtbr_signal.Rng.gaussian rng) in
          Mat.mul coup omega
      | _ -> coup
    in
    let raw = Mat.hcat ports coup in
    let keep = ref [] in
    for j = raw.Mat.cols - 1 downto 0 do
      let nonzero = ref false in
      for i = 0 to nkk - 1 do
        if Mat.get raw i j <> 0.0 then nonzero := true
      done;
      if !nonzero then keep := j :: !keep
    done;
    let keep = Array.of_list !keep in
    Mat.init nkk (Array.length keep) (fun i j -> Mat.get raw i keep.(j))
  in
  let parts =
    Array.mapi
      (fun pid (sub, states) ->
        {
          states;
          sys = Pmtbr_lti.Dss.of_mna (Mna.stamp sub);
          sub_netlist = sub;
          rhs = build_rhs pid states;
          e_ig = finalize e_ig.(pid);
          a_ig = finalize a_ig.(pid);
          e_gi = finalize e_gi.(pid);
          a_gi = finalize a_gi.(pid);
        })
      subs
  in
  {
    parts;
    tree;
    interface;
    e_gg = finalize !e_gg;
    a_gg = finalize !a_gg;
    b = m.Mna.b;
    c = m.Mna.c;
    n;
    p = m.Mna.b.Mat.cols;
  }

let default_depth_cap = 48

let split ~parts:k ?sketch nl =
  if k < 1 then invalid_arg "Partition.split: parts must be >= 1";
  split_goal ~goal:(Leaves k) ~depth_cap:default_depth_cap ?sketch nl

let split_auto ~max_states ?(depth_cap = default_depth_cap) ?sketch nl =
  if max_states < 1 then invalid_arg "Partition.split_auto: max_states must be >= 1";
  if depth_cap < 0 then invalid_arg "Partition.split_auto: depth_cap must be >= 0";
  split_goal ~goal:(Budget max_states) ~depth_cap ?sketch nl
