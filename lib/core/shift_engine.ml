(* Parallel multi-shift sampling engine.

   PMTBR's cost is the embarrassingly-parallel loop of shifted solves
   z_k = (s_k E - A)^{-1} B (paper eq. 8-11).  This module runs that loop
   over an OCaml 5 domain pool with two properties the algorithms above
   rely on:

   - Factorisation reuse: the symbolic analysis of the sparse LU (pattern
     assembly, fill-reducing ordering, elimination structure) is done once
     per run through [Dss.multi_shift]; each worker pays only a numeric
     refactorisation per shift.

   - Determinism: the sample matrix is assembled in task order from
     per-task blocks, and each block is a pure function of (system, task) —
     never of which worker computed it or when.  Parallel and serial runs
     therefore produce bitwise-identical matrices, which CI enforces.

   Work distribution is a chunked queue on an atomic counter: workers grab
   the next [chunk] task indices until the queue drains, so slow shifts
   (fallback refactorisations, fill-heavy corners) do not stall a static
   partition. *)

open Pmtbr_la
open Pmtbr_lti

type task = { point : Sampling.point; rhs : Mat.t; hermitian : bool }

type stats = {
  solves : int;
  workers : int;
  factor_s : float;
  solve_s : float;
  wall_s : float;
  busy_s : float array;
}

let default_workers () = Domain.recommended_domain_count ()

(* Degenerate runs (no tasks, or a wall clock too fast to resolve) have
   no meaningful busy fraction; report 0 rather than dividing by zero. *)
let utilisation st =
  if st.wall_s <= 0.0 || Array.length st.busy_s = 0 then 0.0
  else
    Array.fold_left ( +. ) 0.0 st.busy_s /. (st.wall_s *. float_of_int (Array.length st.busy_s))

(* ------------------------------------------------------------------ *)
(* Realification (step 5 of Algorithm 1)                               *)
(* ------------------------------------------------------------------ *)

(* Real column block for one sample point: a complex sample at +j w also
   stands for its conjugate at -j w, and span{z, z*} = span{Re z, Im z}
   over the reals, so the real and imaginary parts become two real
   columns.  Points with numerically zero imaginary part contribute only
   their real columns. *)
let realify_block ~(weight : float) (cols : Complex.t array array) ~(is_real : bool) =
  let p = Array.length cols in
  assert (p > 0);
  let n = Array.length cols.(0) in
  let w = sqrt (Float.max 0.0 weight) in
  if is_real then Mat.init n p (fun i j -> w *. cols.(j).(i).Complex.re)
  else
    (* conjugate pair weight: both half-axes contribute; the constant
       factor 2 folds into the weight and is irrelevant to the subspace *)
    Mat.init n (2 * p) (fun i j ->
        let z = cols.(j / 2).(i) in
        w *. (if j mod 2 = 0 then z.Complex.re else z.Complex.im))

let is_effectively_real (s : Complex.t) =
  Float.abs s.Complex.im <= 1e-300 +. (1e-12 *. Float.abs s.Complex.re)

(* ------------------------------------------------------------------ *)
(* The worker pool                                                     *)
(* ------------------------------------------------------------------ *)

let now () = Unix.gettimeofday ()

(* One task: factor (numeric refactorisation through the shared handle),
   solve, realify.  Pure in (ms, t); timings are observational only. *)
let run_task ms (t : task) ~factor_acc ~solve_acc =
  let t0 = now () in
  let f = Dss.multi_factor ms ~hermitian:t.hermitian t.point.Sampling.s in
  let t1 = now () in
  let cols = Dss.multi_solve_factored f ~hermitian:t.hermitian t.rhs in
  let block =
    realify_block ~weight:t.point.Sampling.weight cols
      ~is_real:(is_effectively_real t.point.Sampling.s)
  in
  let t2 = now () in
  factor_acc := !factor_acc +. (t1 -. t0);
  solve_acc := !solve_acc +. (t2 -. t1);
  block

let run ?workers ?(oversubscribe = false) ?(chunk = 1) ?ms sys (tasks : task array) =
  let nt = Array.length tasks in
  if nt = 0 then invalid_arg "Shift_engine.run: no tasks";
  if chunk < 1 then invalid_arg "Shift_engine.run: chunk must be >= 1";
  let requested =
    match workers with Some w when w >= 1 -> w | Some _ | None -> default_workers ()
  in
  (* Running more domains than cores is never a speedup in OCaml 5: every
     minor collection synchronises all domains, and a descheduled domain
     turns each sync into a scheduler round-trip.  So the pool is capped
     at the hardware unless the caller explicitly opts out (tests do, to
     exercise real multi-domain runs on any machine). *)
  let cap = if oversubscribe then requested else min requested (default_workers ()) in
  let nw = max 1 (min cap nt) in
  (* an explicitly requested multi-worker pool that the hardware cap
     squeezed down to one domain deserves a (once-per-process) warning:
     the run is correct but effectively serial *)
  if requested > 1 && nw = 1 && nt > 1 then
    Par_kernel.warn_worker_collapse ~context:"the multi-shift solve pool" ~requested ();
  (* the template shift is the first task's point — independent of the
     worker count, so serial and parallel runs share it.  A caller that
     extends a sample set incrementally ([Sample_cache]) passes its own
     handle so the symbolic analysis is shared across batches too. *)
  let ms =
    match ms with
    | Some ms -> ms
    | None -> Dss.multi_shift ~template:tasks.(0).point.Sampling.s sys
  in
  let blocks : Mat.t option array = Array.make nt None in
  let failures : (int * exn) option array = Array.make nw None in
  let factor_t = Array.make nw 0.0
  and solve_t = Array.make nw 0.0
  and busy_t = Array.make nw 0.0
  and n_solved = Array.make nw 0 in
  let next = Atomic.make 0 in
  let work wid =
    let factor_acc = ref 0.0 and solve_acc = ref 0.0 in
    let solved = ref 0 in
    let t_in = now () in
    let running = ref true in
    while !running do
      let start = Atomic.fetch_and_add next chunk in
      if start >= nt || failures.(wid) <> None then running := false
      else
        for i = start to min nt (start + chunk) - 1 do
          if failures.(wid) = None then
            match run_task ms tasks.(i) ~factor_acc ~solve_acc with
            | block ->
                blocks.(i) <- Some block;
                incr solved
            | exception e -> failures.(wid) <- Some (i, e)
        done
    done;
    factor_t.(wid) <- !factor_acc;
    solve_t.(wid) <- !solve_acc;
    n_solved.(wid) <- !solved;
    busy_t.(wid) <- now () -. t_in
  in
  let t_start = now () in
  if nw = 1 then work 0
  else begin
    let domains = Array.init nw (fun wid -> Domain.spawn (fun () -> work wid)) in
    Array.iter Domain.join domains
  end;
  let wall = now () -. t_start in
  (* propagate a worker failure deterministically: the one at the lowest
     task index wins, whatever the scheduling was *)
  let first_failure =
    Array.fold_left
      (fun acc f ->
        match (acc, f) with
        | None, f -> f
        | Some _, None -> acc
        | Some (i, _), Some (j, _) -> if j < i then f else acc)
      None failures
  in
  (match first_failure with Some (_, e) -> raise e | None -> ());
  (* Single-pass assembly in task order: one allocation, one copy of each
     block, instead of the O(total^2) repeated copying of an hcat fold. *)
  let zw =
    let n = (Option.get blocks.(0)).Mat.rows in
    let total_cols = Array.fold_left (fun acc b -> acc + (Option.get b).Mat.cols) 0 blocks in
    let out = Mat.create n total_cols in
    let off = ref 0 in
    Array.iter
      (fun b ->
        let b = Option.get b in
        assert (b.Mat.rows = n);
        for i = 0 to n - 1 do
          Array.blit b.Mat.data (i * b.Mat.cols) out.Mat.data ((i * total_cols) + !off)
            b.Mat.cols
        done;
        off := !off + b.Mat.cols)
      blocks;
    out
  in
  let stats =
    {
      solves = Array.fold_left ( + ) 0 n_solved;
      workers = nw;
      factor_s = Array.fold_left ( +. ) 0.0 factor_t;
      solve_s = Array.fold_left ( +. ) 0.0 solve_t;
      wall_s = wall;
      busy_s = busy_t;
    }
  in
  (zw, stats)

(* ------------------------------------------------------------------ *)
(* Sample-matrix builders                                              *)
(* ------------------------------------------------------------------ *)

let tasks_of_points ~rhs ~hermitian pts =
  Array.map (fun point -> { point; rhs; hermitian }) pts

let build_stats ?workers ?oversubscribe ?chunk sys (pts : Sampling.point array) =
  run ?workers ?oversubscribe ?chunk sys
    (tasks_of_points ~rhs:(Dss.b_matrix sys) ~hermitian:false pts)

let build ?workers ?oversubscribe ?chunk sys pts =
  fst (build_stats ?workers ?oversubscribe ?chunk sys pts)

let build_rhs ?workers ?oversubscribe ?chunk sys ~rhs (pts : Sampling.point array) =
  fst (run ?workers ?oversubscribe ?chunk sys (tasks_of_points ~rhs ~hermitian:false pts))

let build_per_point ?workers ?oversubscribe ?chunk sys (pts_rhs : (Sampling.point * Mat.t) array)
    =
  fst
    (run ?workers ?oversubscribe ?chunk sys
       (Array.map (fun (point, rhs) -> { point; rhs; hermitian = false }) pts_rhs))

let build_left ?workers ?oversubscribe ?chunk sys (pts : Sampling.point array) =
  fst
    (run ?workers ?oversubscribe ?chunk sys
       (tasks_of_points ~rhs:(Mat.transpose (Dss.c_matrix sys)) ~hermitian:true pts))
