(** Incremental cache of sample columns for on-the-fly order control
    (Section V-C).

    Stores each consumed point's raw {e unweighted} realified columns
    exactly once and applies quadrature weights — including the adaptive
    prefix rescaling — as a per-column diagonal at assembly time, so
    extending an adaptive run by a batch costs only the new shifts' solves
    and rescaling an already-held prefix costs none.  One
    {!Pmtbr_lti.Dss.multi_shift} handle (symbolic sparse-LU analysis) is
    shared across all batches.

    A thin QR factorisation of the raw columns is maintained incrementally:
    with [ZW = Q R D] ([D] the diagonal of column weights), the singular
    values of the small {!small_factor} [R D] are those of the assembled
    [ZW], and [Q *] the left singular vectors of [R D] is its left singular
    basis — so per-batch order monitoring and the final basis never need an
    SVD at the full state dimension.

    Everything held is a pure function of the point sequence consumed so
    far: extending in one batch or many, with any worker count, yields
    bitwise-identical columns, factors and assemblies. *)

open Pmtbr_la
open Pmtbr_lti

type t

type stats = {
  solves : int;  (** shifted solves performed over the cache lifetime *)
  points : int;  (** sample points held *)
  columns : int;  (** realified columns held *)
  batches : int;  (** [extend] calls that did work *)
  factor_s : float;  (** summed factorisation seconds across batches *)
  solve_s : float;  (** summed solve + realify seconds across batches *)
  batch_wall_s : float array;  (** wall seconds of each [extend], in order *)
}

val create : ?workers:int -> ?oversubscribe:bool -> Dss.t -> t
(** Empty cache for the controllability-side samples [(s E - A)^{-1} B].
    [workers] and [oversubscribe] configure the {!Shift_engine} pool used
    by every {!extend}. *)

val extend : t -> Sampling.point array -> unit
(** Append the given {e new} points: solve each shift once (through the
    shared symbolic analysis), store its raw columns, and extend the thin
    QR.  Points carry their original quadrature weights; prefix rescaling
    belongs to assembly ([~scale]), not here.  An empty array is a no-op. *)

val points : t -> int
(** Number of sample points held. *)

val columns : t -> int
(** Number of realified columns held (two per complex point and one per
    real point, times the input count). *)

val stats : t -> stats
(** Observability counters; [stats.solves = stats.points] certifies that
    no shift was ever re-solved. *)

val assemble : t -> scale:float -> Mat.t
(** The weighted sample matrix [ZW] of every held column, with each
    point's columns scaled by [sqrt (weight *. scale)] — bitwise-identical
    to [Zmat.build] over the same points with weights multiplied by
    [scale].  Raises [Invalid_argument] on an empty cache. *)

val small_factor : t -> scale:float -> Mat.t
(** The upper-triangular [R D] ([columns x columns]) with
    [assemble ~scale = Q * small_factor ~scale]: its singular values are
    those of the assembled [ZW] (up to roundoff), at the column dimension
    instead of the state dimension. *)

val apply_q : t -> Mat.t -> Mat.t
(** [apply_q t coeff] is [Q * coeff] for a [columns x k] coefficient
    matrix — used to lift singular vectors of {!small_factor} back to
    state-space columns. *)
