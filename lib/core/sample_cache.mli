(** Incremental cache of sample columns — the shared pipeline layer under
    every PMTBR variant (Sections V-C/V-D, VI).

    A cache is parameterised by the {e source} of its columns: plain
    controllability samples [(sE - A)^{-1} B], adjoint observability
    samples [(sE - A)^{-H} C^T], a fixed arbitrary right-hand side, or a
    right-hand side per point.  Whatever the source, the cache stores each
    consumed point's raw {e unweighted} realified columns exactly once and
    applies quadrature weights — including the adaptive prefix rescaling —
    as a per-column diagonal at assembly time, so extending an adaptive
    run by a batch costs only the new shifts' solves and rescaling an
    already-held prefix costs none.  One {!Pmtbr_lti.Dss.multi_shift}
    handle (symbolic sparse-LU analysis) is shared across all batches, and
    may be shared across caches (the two sides of a cross-Gramian run).

    A thin QR factorisation of the raw columns is maintained incrementally:
    with [ZW = Q R D] ([D] the diagonal of column weights), the singular
    values of the small {!small_factor} [R D] are those of the assembled
    [ZW], and [Q *] the left singular vectors of [R D] is its left singular
    basis — so per-batch order monitoring and the final basis never need an
    SVD at the full state dimension.  {!cross_q} compresses two-cache
    products (the sampled cross-Gramian pencil) to the column dimension.

    Everything held is a pure function of the point sequence consumed so
    far: extending in one batch or many, with any worker count, yields
    bitwise-identical columns, factors and assemblies. *)

open Pmtbr_la
open Pmtbr_lti

type source =
  | Controllability  (** [(sE - A)^{-1} B] — Algorithms 1-2 *)
  | Observability  (** [(sE - A)^{-H} C^T] — cross-Gramian left side *)
  | Fixed_rhs of Mat.t  (** [(sE - A)^{-1} rhs] — deterministic Algorithm 3 *)
  | Per_point  (** [(sE - A)^{-1} rhs_k], one rhs per point via {!extend_rhs} *)

type t

type stats = {
  solves : int;  (** shifted solves performed over the cache lifetime *)
  points : int;  (** sample points held *)
  columns : int;  (** realified columns held *)
  batches : int;  (** [extend] calls that did work *)
  factor_s : float;  (** summed factorisation seconds across batches *)
  solve_s : float;  (** summed solve + realify seconds across batches *)
  batch_wall_s : float array;  (** wall seconds of each [extend], in order *)
}

val create :
  ?workers:int -> ?oversubscribe:bool -> ?ms:Dss.multi_shift -> ?source:source -> Dss.t -> t
(** Empty cache for the given sample [source] (default {!Controllability}).
    [workers] and [oversubscribe] configure the {!Shift_engine} pool used
    by every {!extend}.  [ms] supplies a pre-built multi-shift handle so
    several caches (e.g. the right/left sides of a cross-Gramian run)
    share one symbolic sparse-LU analysis; without it a handle is created
    lazily from the first point consumed.  Raises [Invalid_argument] if a
    {!Fixed_rhs} matrix does not have one row per state. *)

val source : t -> source
(** The sample source this cache was created with. *)

val handle : t -> Dss.multi_shift option
(** The multi-shift handle, once one exists (after the first extension, or
    immediately when [?ms] was passed to {!create}) — pass it to sibling
    caches to share the symbolic analysis. *)

val extend : t -> Sampling.point array -> unit
(** Append the given {e new} points: solve each shift once (through the
    shared symbolic analysis, on the adjoint side for {!Observability}),
    store its raw columns, and extend the thin QR.  Points carry their
    original quadrature weights; prefix rescaling belongs to assembly
    ([~scale]), not here.  An empty array is a no-op.  Raises
    [Invalid_argument] on a {!Per_point} cache — use {!extend_rhs}. *)

val extend_rhs : t -> (Sampling.point * Mat.t) array -> unit
(** {!extend} for a {!Per_point} cache: each point arrives with its own
    right-hand side (the input-correlated random draws).  Raises
    [Invalid_argument] on a fixed-source cache or on a right-hand side
    without one row per state. *)

val points : t -> int
(** Number of sample points held. *)

val columns : t -> int
(** Number of realified columns held (two per complex point and one per
    real point, times the right-hand-side column count). *)

val stats : t -> stats
(** Observability counters; [stats.solves = stats.points] certifies that
    no shift was ever re-solved. *)

val merge_stats : stats -> stats -> stats
(** Pointwise sum of two caches' counters (batch wall times concatenated)
    — the combined record surfaced by two-sided variants (cross-Gramian).
    [solves = points] is preserved: each side counts its own points. *)

val assemble : t -> scale:float -> Mat.t
(** The weighted sample matrix [ZW] of every held column, with each
    point's columns scaled by [sqrt (weight *. scale)] — bitwise-identical
    to the corresponding {!Zmat} builder ([build], [build_left],
    [build_rhs] or [build_per_point]) over the same points with weights
    multiplied by [scale].  Raises [Invalid_argument] on an empty cache. *)

val small_factor : t -> scale:float -> Mat.t
(** The upper-triangular [R D] ([columns x columns]) with
    [assemble ~scale = Q * small_factor ~scale]: its singular values are
    those of the assembled [ZW] (up to roundoff), at the column dimension
    instead of the state dimension. *)

val apply_q : t -> Mat.t -> Mat.t
(** [apply_q t coeff] is [Q * coeff] for a [columns x k] coefficient
    matrix — used to lift singular vectors of {!small_factor} back to
    state-space columns. *)

val cross_q : t -> t -> Mat.t
(** [cross_q a b] is the small Gram matrix [Q_a^T Q_b]
    ([columns a x columns b]) — with the two {!small_factor}s it
    compresses products such as the sampled cross-Gramian
    [Z^R (Z^L)^T] to the column dimension.  Raises [Invalid_argument] if
    the caches' state dimensions differ. *)
