(** Assembly of the weighted, realified sample matrix [ZW].

    Each frequency point [s_k] contributes the columns of
    [sqrt w_k * (s_k E - A)^{-1} B].  Complex samples at [+j omega] also
    stand for their conjugates at [-j omega] (step 5 of Algorithm 1); since
    over the reals [span {z, conj z} = span {Re z, Im z}], the real and
    imaginary parts are stored as two real columns.  Points with
    numerically zero imaginary part contribute only their real columns.

    All [build*] functions run through {!Shift_engine}: one shared
    symbolic factorisation analysis, shifts distributed over [?workers]
    domains (default {!Shift_engine.default_workers}), results identical
    for every worker count.

    The reduction pipelines run their samples through {!Sample_cache}
    sources instead (one cache source per builder below); these one-shot
    builders are retained as the reference paths the cache sources are
    property-tested bitwise-identical against. *)

open Pmtbr_la
open Pmtbr_lti

val is_effectively_real : Complex.t -> bool
(** Whether a sample point should be treated as real (one column per
    input). *)

val realify_block : weight:float -> Complex.t array array -> is_real:bool -> Mat.t
(** Weighted real column block for one solved sample. *)

val point_block : Dss.t -> rhs:Mat.t -> Sampling.point -> Mat.t
(** Solve [(sE - A) Z = rhs] at one point and realify — the legacy
    one-shot path with no factorisation reuse, kept as the benchmark
    baseline. *)

val build : ?workers:int -> Dss.t -> Sampling.point array -> Mat.t
(** Full [ZW] matrix with [B] as the right-hand side. *)

val build_rhs : ?workers:int -> Dss.t -> rhs:Mat.t -> Sampling.point array -> Mat.t
(** Like {!build} with one fixed arbitrary right-hand side. *)

val build_per_point : ?workers:int -> Dss.t -> (Sampling.point * Mat.t) list -> Mat.t
(** Like {!build} but with an arbitrary right-hand side per point, as used
    by the input-correlated variant where each point carries its own input
    draw. *)

val point_block_hermitian : Dss.t -> rhs:Mat.t -> Sampling.point -> Mat.t
(** Observability-side sample [(sE - A)^{-H} rhs] (one-shot path). *)

val build_left : ?workers:int -> Dss.t -> Sampling.point array -> Mat.t
(** Observability-side sample matrix with [C^T] as the right-hand side, for
    the cross-Gramian method. *)
