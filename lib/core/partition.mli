(** Nested-dissection-style partitioner over the MNA state graph — the
    front half of the hierarchical (domain-decomposed) reduction path.

    {!split} stamps the netlist once, cuts the state graph (symmetrized
    union pattern of E and A) into [parts] pieces by recursive level-set
    bisection, and promotes one endpoint of every cross-part entry into a
    global {e interface} set, so what remains is block-bordered-diagonal:
    decoupled per-part interiors, per-part <-> interface couplings, and
    the interface block.  Each interior is re-expressed as a standalone
    sub-netlist with interface nodes mapped to ground — an {e exact}
    reconstruction of the interior stamp (the grounded copy of a
    boundary element contributes the same diagonal entries; the dropped
    cross terms are exactly the coupling entries carried separately) — so
    subdomains are content-addressed by the same canonical-render hash
    the store uses for whole networks, and the part's local state order
    is the sub-netlist's own MNA order (shared sub-netlist hash implies
    shared sample columns).

    Every step is a pure function of the netlist and the options: vertex
    orderings break ties by global state index, the optional coupling
    sketch draws from a per-part fixed-seed generator, and nothing
    consults worker counts — the foundation of {!Hier_reduce}'s bitwise
    worker-invariance contract. *)

open Pmtbr_la

type entry = int * int * float
(** One sparse coupling entry: (row, col, value) in the local index pair
    documented per field below. *)

type part = {
  states : int array;
      (** global state index of each local state, in local order *)
  sys : Pmtbr_lti.Dss.t;
      (** the interior block as a sparse descriptor system (stamped from
          [sub_netlist]; its B/C are empty — sampling uses [rhs]) *)
  sub_netlist : Pmtbr_circuit.Netlist.t;
      (** interior re-expressed with interface nodes grounded; its
          canonical render is the subdomain's content address *)
  rhs : Mat.t;
      (** sampling right-hand side: global port columns restricted to the
          interior plus the interface coupling directions (optionally
          sketched), all-zero columns dropped *)
  e_ig : entry array;  (** E interior->interface: (local, interface-local, v) *)
  a_ig : entry array;  (** A interior->interface *)
  e_gi : entry array;  (** E interface->interior: (interface-local, local, v) *)
  a_gi : entry array;  (** A interface->interior *)
}

type t = {
  parts : part array;  (** non-empty interiors, in partition order *)
  interface : int array;  (** global state ids of the interface, ascending *)
  e_gg : entry array;  (** interface block of E, interface-local indices *)
  a_gg : entry array;  (** interface block of A *)
  b : Mat.t;  (** global input map (n x p) *)
  c : Mat.t;  (** global output map (p x n) *)
  n : int;  (** global state count *)
  p : int;  (** port count *)
}

val split : parts:int -> ?sketch:int -> Pmtbr_circuit.Netlist.t -> t
(** Partition a netlist into (at most) [parts] subdomains.  [sketch]
    compresses each part's interface coupling directions to at most
    [sketch] columns through a fixed-seed Gaussian draw (recommended at
    scale, where a part can touch hundreds of interface states); without
    it every coupling column is kept, which is what the <= 1e-6
    flat-agreement cases use.  Raises [Invalid_argument] on an empty
    netlist, [parts < 1], or if the block structure invariant fails
    (a cross-part entry surviving promotion — a bug, not an input
    error). *)

val part_count : t -> int
val interface_count : t -> int

val part_sizes : t -> int array
(** Interior state count per part. *)
