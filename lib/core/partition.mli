(** Nested-dissection partitioner over the MNA state graph — the front
    half of the hierarchical (domain-decomposed) reduction path.

    {!split} / {!split_auto} stamp the netlist once and dissect the state
    graph (symmetrized union pattern of E and A) recursively by vertex
    separators: each step removes one whole BFS level — chosen thin and
    balanced — so the two remaining sides share no entry, then recurses
    on each side.  The result is a partition {!tree} whose internal nodes
    carry separators and whose leaves are mutually decoupled interiors;
    the union of all separators is the global {e interface} set, and the
    assembled structure is block-bordered-diagonal: decoupled per-part
    interiors, per-part <-> interface couplings, and the interface block.
    Each interior is re-expressed as a standalone sub-netlist with
    interface nodes mapped to ground — an {e exact} reconstruction of the
    interior stamp (the grounded copy of a boundary element contributes
    the same diagonal entries; the dropped cross terms are exactly the
    coupling entries carried separately) — so subdomains are
    content-addressed by the same canonical-render hash the store uses
    for whole networks, and the part's local state order is the
    sub-netlist's own MNA order (shared sub-netlist hash implies shared
    sample columns).

    Every step is a pure function of the netlist and the options: vertex
    orderings break ties by global state index, the optional coupling
    sketch draws from a per-part fixed-seed generator, and nothing
    consults worker counts — the foundation of {!Hier_reduce}'s bitwise
    worker-invariance contract. *)

open Pmtbr_la

type entry = int * int * float
(** One sparse coupling entry: (row, col, value) in the local index pair
    documented per field below. *)

type part = {
  states : int array;
      (** global state index of each local state, in local order *)
  sys : Pmtbr_lti.Dss.t;
      (** the interior block as a sparse descriptor system (stamped from
          [sub_netlist]; its B/C are empty — sampling uses [rhs]) *)
  sub_netlist : Pmtbr_circuit.Netlist.t;
      (** interior re-expressed with interface nodes grounded; its
          canonical render is the subdomain's content address *)
  rhs : Mat.t;
      (** sampling right-hand side: global port columns restricted to the
          interior plus the interface coupling directions (optionally
          sketched), all-zero columns dropped *)
  e_ig : entry array;  (** E interior->interface: (local, interface-local, v) *)
  a_ig : entry array;  (** A interior->interface *)
  e_gi : entry array;  (** E interface->interior: (interface-local, local, v) *)
  a_gi : entry array;  (** A interface->interior *)
}

type tree =
  | Leaf of { part : int; size : int }
      (** index into [parts] and its interior state count *)
  | Node of { sep : int array; left : tree; right : tree }
      (** separator (ascending global state ids) between the two sides *)
(** The dissection tree.  Part ids are dense in left-subtree order;
    every interface state appears in exactly one [Node]'s separator. *)

type t = {
  parts : part array;  (** leaf interiors, in tree (left-to-right) order *)
  tree : tree;  (** the dissection tree over those leaves *)
  interface : int array;  (** global state ids of the interface, ascending *)
  e_gg : entry array;  (** interface block of E, interface-local indices *)
  a_gg : entry array;  (** interface block of A *)
  b : Mat.t;  (** global input map (n x p) *)
  c : Mat.t;  (** global output map (p x n) *)
  n : int;  (** global state count *)
  p : int;  (** port count *)
}

val split : parts:int -> ?sketch:int -> Pmtbr_circuit.Netlist.t -> t
(** Partition a netlist into (at most) [parts] subdomains by recursive
    dissection with a leaf-count goal.  [sketch] compresses each part's
    interface coupling directions to at most [sketch] columns through a
    fixed-seed Gaussian draw (recommended at scale, where a part can
    touch hundreds of interface states); without it every coupling column
    is kept, which is what the <= 1e-6 flat-agreement cases use.  Raises
    [Invalid_argument] on an empty netlist, [parts < 1], or if the block
    structure invariant fails (a cross-part entry between two interiors —
    a bug, not an input error). *)

val split_auto :
  max_states:int -> ?depth_cap:int -> ?sketch:int -> Pmtbr_circuit.Netlist.t -> t
(** Partition by state budget: recurse while a side holds more than
    [max_states] states, under [depth_cap] (default 48) — the cap bounds
    the interface a pathological graph can accumulate, so a part may
    exceed the budget only when the cap or the graph (no interior BFS
    level to remove) stops the recursion first.  Same purity and sketch
    semantics as {!split}.  Raises [Invalid_argument] on [max_states < 1]
    or [depth_cap < 0]. *)

val part_count : t -> int
val interface_count : t -> int

val part_sizes : t -> int array
(** Interior state count per part. *)

val tree_depth : t -> int
(** Depth of the dissection tree (0 for a single leaf). *)

val level_cuts : t -> (int * int) array
(** Per-level cut summary, root (level 0) first: (number of separators
    cut at this level, total separator states).  Length = {!tree_depth};
    the [--stats] per-level breakdown prints this. *)

val leaf_ancestors : t -> int list array
(** For each part (leaf), the global state ids of all ancestor
    separators — the interface states that part couples through.  The
    tree-invariant tests and the store's per-node warm logic read this. *)
