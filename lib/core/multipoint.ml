(* Plain multipoint rational projection (the paper's MPPROJ baseline,
   Section II-C): the same sample vectors as PMTBR, but the basis keeps
   every (orthogonalised) sample column instead of truncating by singular
   value.  The model order therefore equals the number of realified sample
   columns, and redundant information among samples is not pruned - exactly
   the weakness Fig. 10 exposes. *)

open Pmtbr_la
open Pmtbr_lti

type result = { rom : Dss.t; basis : Mat.t; samples : int }

(* Reduce with the first [count] points of [pts] (unweighted: multipoint
   projection has no quadrature interpretation). *)
let reduce ?workers sys (pts : Sampling.point array) ~count =
  assert (count >= 1 && count <= Array.length pts);
  let used = Array.sub pts 0 count in
  let unweighted = Array.map (fun p -> { p with Sampling.weight = 1.0 }) used in
  let z = Zmat.build ?workers sys unweighted in
  let basis = Qr.orth z in
  { rom = Dss.project_congruence sys basis; basis; samples = count }

(* The model order obtained from [count] points (2 columns per complex
   point, 1 per real point, minus rank deficiencies). *)
let order_of result = result.basis.Mat.cols
