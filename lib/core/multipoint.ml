(* Plain multipoint rational projection (the paper's MPPROJ baseline,
   Section II-C): the same sample vectors as PMTBR, but the basis keeps
   every (orthogonalised) sample column instead of truncating by singular
   value.  The model order therefore equals the number of realified sample
   columns, and redundant information among samples is not pruned - exactly
   the weakness Fig. 10 exposes.

   The samples run through a [Sample_cache] (controllability source) like
   every other variant, so the one-shot assembly is bitwise-identical to
   the [Zmat.build] reference and [reduce_stats] surfaces the shared
   counters — one solve per point through one symbolic analysis. *)

open Pmtbr_la
open Pmtbr_lti

type result = { rom : Dss.t; basis : Mat.t; samples : int }

(* Reduce with the first [count] points of [pts] (unweighted: multipoint
   projection has no quadrature interpretation). *)
let reduce_stats ?workers sys (pts : Sampling.point array) ~count =
  if count < 1 || count > Array.length pts then
    invalid_arg
      (Printf.sprintf "Multipoint.reduce: count %d out of range [1, %d]" count
         (Array.length pts));
  let used = Array.sub pts 0 count in
  let unweighted = Array.map (fun p -> { p with Sampling.weight = 1.0 }) used in
  let cache = Sample_cache.create ?workers sys in
  Sample_cache.extend cache unweighted;
  let z = Sample_cache.assemble cache ~scale:1.0 in
  let basis = Qr.orth z in
  ( { rom = Dss.project_congruence sys basis; basis; samples = count },
    Sample_cache.stats cache )

let reduce ?workers sys pts ~count = fst (reduce_stats ?workers sys pts ~count)

(* The model order obtained from [count] points (2 columns per complex
   point, 1 per real point, minus rank deficiencies). *)
let order_of result = result.basis.Mat.cols
