(** Frequency-point selection for PMTBR.  Every scheme produces weighted
    points on the imaginary axis; the weights make [Z W^2 Z^H] a quadrature
    approximation of the Gramian integral (paper eq. 8-11).  Band schemes
    implement the point selection of Algorithm 2 (frequency-selective TBR):
    every choice of points/weights is an implicit frequency weighting
    (Section IV-B). *)

type point = { s : Complex.t; weight : float }

type scheme =
  | Uniform of { w_max : float }  (** midpoint rule on [0, w_max] *)
  | Log of { w_min : float; w_max : float }  (** log-spaced points *)
  | Gauss of { w_max : float }  (** Gauss-Legendre on [0, w_max] *)
  | Bands of (float * float) list  (** union of intervals, Gauss in each *)

val of_rule : Pmtbr_signal.Quad.rule -> point array
(** Turn a quadrature rule over omega into points [s = j omega]. *)

val points : scheme -> count:int -> point array
(** Generate [count] weighted points.  [Bands] distributes the count over
    the bands — [count / nb] points each plus one more in the leading
    [count mod nb] bands — so exactly [count] points come back whenever
    [count >= nb]; with fewer, every band still gets one point ([nb]
    total).  Raises [Invalid_argument] on [count < 1], an empty band list,
    or a band with [hi <= lo]. *)

val total_weight : point array -> float
(** Total quadrature mass, i.e. the implied bandwidth of the weighting. *)

val reweight : (float -> float) -> point array -> point array
(** Frequency-weighted Gramian sampling (paper eq. 18): multiply each
    quadrature weight by the non-negative weighting function [w omega],
    turning the implied Gramian into the frequency-weighted
    [X_FW = integral (jwE - A)^{-1} B B^T (jwE - A)^{-H} w(omega) dw].
    Raises [Invalid_argument] if [w] returns a negative (or nan) value. *)

val prefixes : point array -> batch:int -> point array list
(** Leading prefixes of sizes [batch, 2*batch, ...], ending with the full
    set. *)

val spread_order : point array -> point array
(** Reorder points so that every prefix covers the whole range roughly
    uniformly (bit-reversal order).  Adaptive order control consumes
    prefixes; a frequency-ordered grid would make each prefix a sub-band
    instead of a coarser sampling of the full band. *)
