(** Frequency-selective TBR (Algorithm 2): PMTBR with sample points
    restricted to the union of the frequency bands of interest, making the
    implied Gramian the finite-bandwidth Gramian of paper eq. 16-18.  The
    reduced model concentrates its accuracy inside the bands and ignores
    out-of-band behaviour. *)

type band = { lo : float; hi : float }
(** A frequency interval in rad/s. *)

val band : lo:float -> hi:float -> band
(** Validated constructor ([0 <= lo < hi]); raises [Invalid_argument]
    otherwise. *)

val scheme_of_bands : band list -> Sampling.scheme
(** The sampling scheme drawing Gauss-Legendre points in each band. *)

val reduce : ?order:int -> ?tol:float -> ?workers:int -> Pmtbr_lti.Dss.t -> bands:band list ->
  count:int -> Pmtbr.result
(** Reduce with [count] points drawn only from [bands]. *)

val reduce_stats : ?order:int -> ?tol:float -> ?workers:int -> Pmtbr_lti.Dss.t ->
  bands:band list -> count:int -> Pmtbr.result * Sample_cache.stats
(** {!reduce} through the cache pipeline, surfacing the solve counters
    ([solves = points]). *)

val reduce_adaptive : ?order:int -> ?tol:float -> ?batch:int -> ?converge_tol:float ->
  ?workers:int -> Pmtbr_lti.Dss.t -> bands:band list -> count:int -> Pmtbr.result
(** Adaptive variant with on-the-fly order control (see
    {!Pmtbr.reduce_adaptive}). *)

val reduce_adaptive_stats : ?order:int -> ?tol:float -> ?batch:int -> ?converge_tol:float ->
  ?workers:int -> Pmtbr_lti.Dss.t -> bands:band list -> count:int ->
  Pmtbr.result * Sample_cache.stats
(** {!reduce_adaptive} plus the incremental-sampling counters
    ([solves = points]: no shift re-solved across batches). *)
