(* Incremental cache of sample columns — the shared pipeline layer under
   every PMTBR variant.

   The paper presents Algorithms 2-3, the cross-Gramian scheme and the
   multipoint baseline as re-parameterisations of one sample→SVD→project
   pipeline; the only thing that changes between them is the *source* of
   the sample columns:

   - [Controllability]: (s_k E - A)^{-1} B          (Algorithms 1-2)
   - [Observability]:   (s_k E - A)^{-H} C^T        (cross-Gramian left side)
   - [Fixed_rhs r]:     (s_k E - A)^{-1} r          (deterministic Algorithm 3)
   - [Per_point]:       (s_k E - A)^{-1} r_k        (random-draw Algorithm 3)

   The cache makes extension the primitive for all of them:

   - Each point's *raw, unweighted* realified columns are solved for and
     stored exactly once ([extend] / [extend_rhs]); the quadrature weight
     and the adaptive prefix rescaling are applied later as a per-column
     diagonal at assembly time, so rescaling a prefix costs no solves at
     all.  Storing the columns unweighted is what makes this exact: the
     realified block of a point with weight [w] is [sqrt w] times its
     weight-1 block, bit for bit.

   - One [Dss.multi_shift] handle (symbolic sparse-LU analysis, template
     shift = the first point ever consumed) and one engine worker pool
     configuration are shared across every batch of the run.  A handle can
     also be passed in at [create], so the two sides of a cross-Gramian
     run (controllability and observability caches) share one symbolic
     analysis — the adjoint solve reuses the same elimination structure.

   - A thin QR factorisation of the raw columns (Gram-Schmidt with one
     re-orthogonalisation pass, extended column by column) is maintained
     alongside: with [ZW = Q R D] for the diagonal weight matrix [D], the
     singular values of the small [R D] are those of [ZW], so per-batch
     order monitoring costs O(c^3) on the column count instead of a full
     SVD at the state dimension — and the final basis is [Q] times the
     left singular vectors of [R D].  For two caches, [cross_q] gives the
     small Gram matrix [Q_a^T Q_b] that compresses cross products such as
     the sampled cross-Gramian pencil to the column dimension.

   Every operation is a pure function of the points consumed so far —
   batch boundaries, worker counts and rescaling leave no trace in the
   stored columns — which is what makes the incremental adaptive loops
   bitwise-identical to their from-scratch references. *)

open Pmtbr_la
open Pmtbr_lti

type source =
  | Controllability
  | Observability
  | Fixed_rhs of Mat.t
  | Per_point

type t = {
  sys : Dss.t;
  source : source;
  rhs : Mat.t option; (* the fixed right-hand side; [None] for [Per_point] *)
  hermitian : bool; (* adjoint solves (observability side) *)
  n : int; (* state dimension *)
  workers : int option;
  oversubscribe : bool;
  mutable ms : Dss.multi_shift option; (* created at the first extend *)
  mutable entries : (float * int) array; (* per point: weight, column count *)
  mutable raw : float array array; (* raw unweighted columns, each length n *)
  mutable q_cols : float array array; (* thin-QR orthonormal columns *)
  mutable r_cols : float array array; (* column j of R, length j + 1 *)
  mutable solves : int;
  mutable batches : int;
  mutable factor_s : float;
  mutable solve_s : float;
  mutable batch_wall : float list; (* reversed *)
}

type stats = {
  solves : int;
  points : int;
  columns : int;
  batches : int;
  factor_s : float;
  solve_s : float;
  batch_wall_s : float array;
}

let create ?workers ?(oversubscribe = false) ?ms ?(source = Controllability) sys =
  let n = Dss.order sys in
  let rhs, hermitian =
    match source with
    | Controllability -> (Some (Dss.b_matrix sys), false)
    | Observability -> (Some (Mat.transpose (Dss.c_matrix sys)), true)
    | Fixed_rhs r ->
        if r.Mat.rows <> n then
          invalid_arg
            (Printf.sprintf "Sample_cache.create: Fixed_rhs has %d rows for a %d-state system"
               r.Mat.rows n);
        (Some r, false)
    | Per_point -> (None, false)
  in
  {
    sys;
    source;
    rhs;
    hermitian;
    n;
    workers;
    oversubscribe;
    ms;
    entries = [||];
    raw = [||];
    q_cols = [||];
    r_cols = [||];
    solves = 0;
    batches = 0;
    factor_s = 0.0;
    solve_s = 0.0;
    batch_wall = [];
  }

let source t = t.source
let handle t = t.ms
let points t = Array.length t.entries
let columns t = Array.length t.raw

let stats (t : t) : stats =
  {
    solves = t.solves;
    points = points t;
    columns = columns t;
    batches = t.batches;
    factor_s = t.factor_s;
    solve_s = t.solve_s;
    batch_wall_s = Array.of_list (List.rev t.batch_wall);
  }

let merge_stats (a : stats) (b : stats) : stats =
  {
    solves = a.solves + b.solves;
    points = a.points + b.points;
    columns = a.columns + b.columns;
    batches = a.batches + b.batches;
    factor_s = a.factor_s +. b.factor_s;
    solve_s = a.solve_s +. b.solve_s;
    batch_wall_s = Array.append a.batch_wall_s b.batch_wall_s;
  }

(* ------------------------------------------------------------------ *)
(* Incremental thin QR                                                 *)
(* ------------------------------------------------------------------ *)

(* Orthogonalise one new raw column against the held Q columns
   (Gram-Schmidt, two passes — "twice is enough" keeps Q orthonormal to
   roundoff), yielding its Q column and R column.  Strictly sequential in
   column order, so replaying the same columns in the same order — in one
   batch or many — produces bitwise-identical factors.  The level-1 work
   inside each column step runs on the [Par_kernel] blocked kernels: the
   projections use the fixed-blocking dot, and the subtraction — a
   single independent operation per row — is sliced over row ranges.
   Neither depends on the worker count, so the per-column (and hence
   per-batch) determinism contract is untouched. *)
let orthogonalise t (raw_col : float array) =
  let n = t.n in
  let j = columns t in
  let v = Array.copy raw_col in
  let rj = Array.make (j + 1) 0.0 in
  for _pass = 1 to 2 do
    for i = 0 to j - 1 do
      let qi = t.q_cols.(i) in
      let h = Par_kernel.dot qi v in
      rj.(i) <- rj.(i) +. h;
      Par_kernel.parallel_ranges ?workers:t.workers ~work:(2 * n) n (fun lo hi ->
          for k = lo to hi - 1 do
            v.(k) <- v.(k) -. (h *. qi.(k))
          done)
    done
  done;
  let rho = sqrt (Par_kernel.dot v v) in
  rj.(j) <- rho;
  let qj = if rho > 0.0 then Array.map (fun x -> x /. rho) v else Array.make n 0.0 in
  (qj, rj)

(* ------------------------------------------------------------------ *)
(* Extension                                                           *)
(* ------------------------------------------------------------------ *)

(* Shared extension core: solve every task through the one multi-shift
   handle, store the raw columns, and grow the thin QR.  Each task's
   weight has already been forced to 1.0 (raw columns); the original
   weights arrive through [new_entries]. *)
let extend_tasks t (tasks : Shift_engine.task array) (new_entries : (float * int) array) =
  if Array.length tasks > 0 then begin
    let t0 = Unix.gettimeofday () in
    let ms =
      match t.ms with
      | Some ms -> ms
      | None ->
          let ms = Dss.multi_shift ~template:tasks.(0).Shift_engine.point.Sampling.s t.sys in
          t.ms <- Some ms;
          ms
    in
    let block, st =
      Shift_engine.run ?workers:t.workers ~oversubscribe:t.oversubscribe ~ms t.sys tasks
    in
    let new_cols = Array.fold_left (fun acc (_, c) -> acc + c) 0 new_entries in
    assert (block.Mat.cols = new_cols);
    t.entries <- Array.append t.entries new_entries;
    for j = 0 to new_cols - 1 do
      let raw_col = Mat.col block j in
      let qj, rj = orthogonalise t raw_col in
      t.raw <- Array.append t.raw [| raw_col |];
      t.q_cols <- Array.append t.q_cols [| qj |];
      t.r_cols <- Array.append t.r_cols [| rj |]
    done;
    t.solves <- t.solves + st.Shift_engine.solves;
    t.factor_s <- t.factor_s +. st.Shift_engine.factor_s;
    t.solve_s <- t.solve_s +. st.Shift_engine.solve_s;
    t.batches <- t.batches + 1;
    t.batch_wall <- (Unix.gettimeofday () -. t0) :: t.batch_wall
  end

let cols_of_point rhs_cols (p : Sampling.point) =
  (if Shift_engine.is_effectively_real p.Sampling.s then 1 else 2) * rhs_cols

let extend t (pts : Sampling.point array) =
  let rhs =
    match t.rhs with
    | Some rhs -> rhs
    | None -> invalid_arg "Sample_cache.extend: Per_point cache needs extend_rhs"
  in
  (* weight 1.0 realifies to the raw columns: sqrt 1.0 *. x = x, bitwise *)
  let tasks =
    Array.map
      (fun p ->
        {
          Shift_engine.point = { p with Sampling.weight = 1.0 };
          rhs;
          hermitian = t.hermitian;
        })
      pts
  in
  let new_entries =
    Array.map (fun p -> (p.Sampling.weight, cols_of_point rhs.Mat.cols p)) pts
  in
  extend_tasks t tasks new_entries

let extend_rhs t (pts_rhs : (Sampling.point * Mat.t) array) =
  (match t.source with
  | Per_point -> ()
  | Controllability | Observability | Fixed_rhs _ ->
      invalid_arg "Sample_cache.extend_rhs: cache source carries a fixed right-hand side");
  Array.iter
    (fun (_, (r : Mat.t)) ->
      if r.Mat.rows <> t.n then
        invalid_arg
          (Printf.sprintf "Sample_cache.extend_rhs: rhs has %d rows for a %d-state system"
             r.Mat.rows t.n))
    pts_rhs;
  let tasks =
    Array.map
      (fun (p, rhs) ->
        { Shift_engine.point = { p with Sampling.weight = 1.0 }; rhs; hermitian = false })
      pts_rhs
  in
  let new_entries =
    Array.map (fun (p, (r : Mat.t)) -> (p.Sampling.weight, cols_of_point r.Mat.cols p)) pts_rhs
  in
  extend_tasks t tasks new_entries

(* ------------------------------------------------------------------ *)
(* Weighted assembly                                                   *)
(* ------------------------------------------------------------------ *)

(* Per-column weights sqrt(weight * scale): exactly the factor
   [Shift_engine.realify_block] would have applied had the point been
   solved with its rescaled weight — same expression, same bits. *)
let col_weights t ~scale =
  let cw = Array.make (columns t) 0.0 in
  let j = ref 0 in
  Array.iter
    (fun (weight, cols) ->
      let w = sqrt (Float.max 0.0 (weight *. scale)) in
      for _ = 1 to cols do
        cw.(!j) <- w;
        incr j
      done)
    t.entries;
  cw

let assemble t ~scale =
  let c = columns t in
  if c = 0 then invalid_arg "Sample_cache.assemble: empty cache";
  let cw = col_weights t ~scale in
  let out = Mat.create t.n c in
  (* each element is written exactly once: row slices are worker-invariant *)
  Par_kernel.parallel_ranges ?workers:t.workers ~work:(t.n * c) t.n (fun lo hi ->
      for i = lo to hi - 1 do
        let base = i * c in
        for j = 0 to c - 1 do
          out.Mat.data.(base + j) <- cw.(j) *. t.raw.(j).(i)
        done
      done);
  out

let small_factor t ~scale =
  let c = columns t in
  if c = 0 then invalid_arg "Sample_cache.small_factor: empty cache";
  let cw = col_weights t ~scale in
  Mat.init c c (fun i j -> if i <= j then t.r_cols.(j).(i) *. cw.(j) else 0.0)

let apply_q t (coeff : Mat.t) =
  let c = columns t in
  if coeff.Mat.rows <> c then invalid_arg "Sample_cache.apply_q: row count mismatch";
  let p = coeff.Mat.cols in
  let out = Mat.create t.n p in
  (* sliced over output rows; every out(i, k) still accumulates over the
     cache columns j in ascending order, so the result is bitwise the
     same for any worker count *)
  Par_kernel.parallel_ranges ?workers:t.workers ~work:(2 * t.n * c * p) t.n (fun lo hi ->
      for j = 0 to c - 1 do
        let qj = t.q_cols.(j) in
        for k = 0 to p - 1 do
          let w = Mat.get coeff j k in
          if w <> 0.0 then
            for i = lo to hi - 1 do
              out.Mat.data.((i * p) + k) <- out.Mat.data.((i * p) + k) +. (w *. qj.(i))
            done
        done
      done);
  out

let cross_q a b =
  if a.n <> b.n then invalid_arg "Sample_cache.cross_q: state dimensions differ";
  let ca = columns a and cb = columns b in
  let out = Mat.create ca cb in
  Par_kernel.parallel_ranges ?workers:a.workers ~work:(2 * ca * cb * a.n) ca (fun lo hi ->
      for i = lo to hi - 1 do
        for j = 0 to cb - 1 do
          Mat.set out i j (Par_kernel.dot a.q_cols.(i) b.q_cols.(j))
        done
      done);
  out
