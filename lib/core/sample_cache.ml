(* Incremental cache of sample columns for on-the-fly order control.

   The adaptive loop of Section V-C consumes a point sequence in batches
   and, before this cache existed, rebuilt the whole sample matrix from
   scratch at every batch — re-solving every previously consumed shift,
   O(total^2) solves where O(total) suffice.  The cache makes extension
   the primitive instead:

   - Each point's *raw, unweighted* realified columns are solved for and
     stored exactly once ([extend]); the quadrature weight and the
     adaptive prefix rescaling are applied later as a per-column diagonal
     at assembly time, so rescaling a prefix costs no solves at all.
     Storing the columns unweighted is what makes this exact: the
     realified block of a point with weight [w] is [sqrt w] times its
     weight-1 block, bit for bit.

   - One [Dss.multi_shift] handle (symbolic sparse-LU analysis, template
     shift = the first point ever consumed) and one engine worker pool
     configuration are shared across every batch of the run.

   - A thin QR factorisation of the raw columns (Gram-Schmidt with one
     re-orthogonalisation pass, extended column by column) is maintained
     alongside: with [ZW = Q R D] for the diagonal weight matrix [D], the
     singular values of the small [R D] are those of [ZW], so per-batch
     order monitoring costs O(c^3) on the column count instead of a full
     SVD at the state dimension — and the final basis is [Q] times the
     left singular vectors of [R D].

   Every operation is a pure function of the points consumed so far —
   batch boundaries, worker counts and rescaling leave no trace in the
   stored columns — which is what makes the incremental adaptive loop
   bitwise-identical to the from-scratch one. *)

open Pmtbr_la
open Pmtbr_lti

type t = {
  sys : Dss.t;
  rhs : Mat.t; (* B, the right-hand side of every solve *)
  n : int; (* state dimension *)
  inputs : int;
  workers : int option;
  oversubscribe : bool;
  mutable ms : Dss.multi_shift option; (* created at the first extend *)
  mutable entries : (float * int) array; (* per point: weight, column count *)
  mutable raw : float array array; (* raw unweighted columns, each length n *)
  mutable q_cols : float array array; (* thin-QR orthonormal columns *)
  mutable r_cols : float array array; (* column j of R, length j + 1 *)
  mutable solves : int;
  mutable batches : int;
  mutable factor_s : float;
  mutable solve_s : float;
  mutable batch_wall : float list; (* reversed *)
}

type stats = {
  solves : int;
  points : int;
  columns : int;
  batches : int;
  factor_s : float;
  solve_s : float;
  batch_wall_s : float array;
}

let create ?workers ?(oversubscribe = false) sys =
  {
    sys;
    rhs = Dss.b_matrix sys;
    n = Dss.order sys;
    inputs = Dss.inputs sys;
    workers;
    oversubscribe;
    ms = None;
    entries = [||];
    raw = [||];
    q_cols = [||];
    r_cols = [||];
    solves = 0;
    batches = 0;
    factor_s = 0.0;
    solve_s = 0.0;
    batch_wall = [];
  }

let points t = Array.length t.entries
let columns t = Array.length t.raw

let stats (t : t) : stats =
  {
    solves = t.solves;
    points = points t;
    columns = columns t;
    batches = t.batches;
    factor_s = t.factor_s;
    solve_s = t.solve_s;
    batch_wall_s = Array.of_list (List.rev t.batch_wall);
  }

(* ------------------------------------------------------------------ *)
(* Incremental thin QR                                                 *)
(* ------------------------------------------------------------------ *)

let dot n (a : float array) (b : float array) =
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

(* Orthogonalise one new raw column against the held Q columns
   (Gram-Schmidt, two passes — "twice is enough" keeps Q orthonormal to
   roundoff), yielding its Q column and R column.  Strictly sequential in
   column order, so replaying the same columns in the same order — in one
   batch or many — produces bitwise-identical factors. *)
let orthogonalise t (raw_col : float array) =
  let n = t.n in
  let j = columns t in
  let v = Array.copy raw_col in
  let rj = Array.make (j + 1) 0.0 in
  for _pass = 1 to 2 do
    for i = 0 to j - 1 do
      let qi = t.q_cols.(i) in
      let h = dot n qi v in
      rj.(i) <- rj.(i) +. h;
      for k = 0 to n - 1 do
        v.(k) <- v.(k) -. (h *. qi.(k))
      done
    done
  done;
  let rho = sqrt (dot n v v) in
  rj.(j) <- rho;
  let qj = if rho > 0.0 then Array.map (fun x -> x /. rho) v else Array.make n 0.0 in
  (qj, rj)

(* ------------------------------------------------------------------ *)
(* Extension                                                           *)
(* ------------------------------------------------------------------ *)

let extend t (pts : Sampling.point array) =
  if Array.length pts > 0 then begin
    let t0 = Unix.gettimeofday () in
    let ms =
      match t.ms with
      | Some ms -> ms
      | None ->
          let ms = Dss.multi_shift ~template:pts.(0).Sampling.s t.sys in
          t.ms <- Some ms;
          ms
    in
    (* weight 1.0 realifies to the raw columns: sqrt 1.0 *. x = x, bitwise *)
    let tasks =
      Array.map
        (fun p ->
          {
            Shift_engine.point = { p with Sampling.weight = 1.0 };
            rhs = t.rhs;
            hermitian = false;
          })
        pts
    in
    let block, st =
      Shift_engine.run ?workers:t.workers ~oversubscribe:t.oversubscribe ~ms t.sys tasks
    in
    let new_entries =
      Array.map
        (fun p ->
          let cols = if Shift_engine.is_effectively_real p.Sampling.s then 1 else 2 in
          (p.Sampling.weight, cols * t.inputs))
        pts
    in
    let new_cols = Array.fold_left (fun acc (_, c) -> acc + c) 0 new_entries in
    assert (block.Mat.cols = new_cols);
    t.entries <- Array.append t.entries new_entries;
    for j = 0 to new_cols - 1 do
      let raw_col = Mat.col block j in
      let qj, rj = orthogonalise t raw_col in
      t.raw <- Array.append t.raw [| raw_col |];
      t.q_cols <- Array.append t.q_cols [| qj |];
      t.r_cols <- Array.append t.r_cols [| rj |]
    done;
    t.solves <- t.solves + st.Shift_engine.solves;
    t.factor_s <- t.factor_s +. st.Shift_engine.factor_s;
    t.solve_s <- t.solve_s +. st.Shift_engine.solve_s;
    t.batches <- t.batches + 1;
    t.batch_wall <- (Unix.gettimeofday () -. t0) :: t.batch_wall
  end

(* ------------------------------------------------------------------ *)
(* Weighted assembly                                                   *)
(* ------------------------------------------------------------------ *)

(* Per-column weights sqrt(weight * scale): exactly the factor
   [Shift_engine.realify_block] would have applied had the point been
   solved with its rescaled weight — same expression, same bits. *)
let col_weights t ~scale =
  let cw = Array.make (columns t) 0.0 in
  let j = ref 0 in
  Array.iter
    (fun (weight, cols) ->
      let w = sqrt (Float.max 0.0 (weight *. scale)) in
      for _ = 1 to cols do
        cw.(!j) <- w;
        incr j
      done)
    t.entries;
  cw

let assemble t ~scale =
  let c = columns t in
  if c = 0 then invalid_arg "Sample_cache.assemble: empty cache";
  let cw = col_weights t ~scale in
  Mat.init t.n c (fun i j -> cw.(j) *. t.raw.(j).(i))

let small_factor t ~scale =
  let c = columns t in
  if c = 0 then invalid_arg "Sample_cache.small_factor: empty cache";
  let cw = col_weights t ~scale in
  Mat.init c c (fun i j -> if i <= j then t.r_cols.(j).(i) *. cw.(j) else 0.0)

let apply_q t (coeff : Mat.t) =
  let c = columns t in
  if coeff.Mat.rows <> c then invalid_arg "Sample_cache.apply_q: row count mismatch";
  let out = Mat.create t.n coeff.Mat.cols in
  for j = 0 to c - 1 do
    let qj = t.q_cols.(j) in
    for k = 0 to coeff.Mat.cols - 1 do
      let w = Mat.get coeff j k in
      if w <> 0.0 then
        for i = 0 to t.n - 1 do
          out.Mat.data.((i * out.Mat.cols) + k) <-
            out.Mat.data.((i * out.Mat.cols) + k) +. (w *. qj.(i))
        done
    done
  done;
  out
