(** Plain multipoint rational projection (the paper's MPPROJ baseline,
    Section II-C): the same sample vectors as PMTBR, but the basis keeps
    every orthogonalised sample column instead of truncating by singular
    value — so redundancy among samples is not pruned, which is exactly the
    weakness Fig. 10 exposes. *)

open Pmtbr_la
open Pmtbr_lti

type result = { rom : Dss.t; basis : Mat.t; samples : int }

val reduce : ?workers:int -> Dss.t -> Sampling.point array -> count:int -> result
(** Reduce with the first [count] points (weights ignored: multipoint
    projection has no quadrature interpretation).  The model interpolates
    the transfer function at the sample points.  Runs through a
    {!Sample_cache}; the assembled sample matrix is bitwise-identical to
    the {!Zmat.build} reference.  Raises [Invalid_argument] when [count]
    is outside [\[1, Array.length pts\]]. *)

val reduce_stats :
  ?workers:int -> Dss.t -> Sampling.point array -> count:int -> result * Sample_cache.stats
(** {!reduce} plus the cache counters ([solves = points = count]). *)

val order_of : result -> int
(** Resulting model order: realified sample columns minus rank
    deficiencies. *)
