(** Singular-value-based error estimation (paper Section V-B): the trailing
    singular values of [ZW] estimate the error of the order-q reduced model
    the way truncated Hankel singular values bound the TBR error. *)

val tail_bound : float array -> int -> float
(** [tail_bound sigma q] is the TBR-style estimate [2 * sum_{i >= q}
    sigma_i]. *)

val curve : float array -> float array
(** Estimates for every order [0 .. n], computed as one reverse cumulative
    sum (O(n)); [curve sigma].(q) equals [tail_bound sigma q] up to
    summation-order roundoff. *)

val normalized_curve : float array -> float array
(** {!curve} normalised by [2 * sigma_0] (the "normalised error estimate"
    of paper Fig. 16). *)

val order_for : float array -> tol:float -> int * bool
(** Smallest order whose normalised estimate is at most [tol], paired
    with whether any order actually met it.  When no order does (a
    negative or NaN tolerance — every finite non-negative one is met at
    full order, where the tail is empty), the order falls back to the
    last curve index and [met] is [false]; callers must not report the
    fallback as satisfying the tolerance. *)
