(* Frequency-point selection for PMTBR.  Every scheme produces weighted
   points on the imaginary axis; the weights make Z W Z^H a quadrature
   approximation of the Gramian integral (paper eq. 8-11).  Band schemes
   implement the point selection of Algorithm 2 (frequency-selective TBR),
   and every ZW matrix implicitly defines a frequency weighting (Section
   IV-B). *)

open Pmtbr_signal

type point = { s : Complex.t; weight : float }

type scheme =
  | Uniform of { w_max : float } (* midpoint rule on [0, w_max] *)
  | Log of { w_min : float; w_max : float } (* log-spaced on [w_min, w_max] *)
  | Gauss of { w_max : float } (* Gauss-Legendre on [0, w_max] *)
  | Bands of (float * float) list (* union of intervals, Gauss in each *)

let of_rule (rule : Quad.rule) =
  Array.mapi
    (fun i w -> { s = { Complex.re = 0.0; im = w }; weight = rule.Quad.weights.(i) })
    rule.Quad.nodes

let points scheme ~count =
  if count < 1 then invalid_arg "Sampling.points: count must be >= 1";
  match scheme with
  | Uniform { w_max } -> of_rule (Quad.midpoint ~lo:0.0 ~hi:w_max count)
  | Log { w_min; w_max } -> of_rule (Quad.log_spaced ~lo:w_min ~hi:w_max (max 2 count))
  | Gauss { w_max } -> of_rule (Quad.gauss_legendre ~lo:0.0 ~hi:w_max count)
  | Bands bands ->
      if bands = [] then invalid_arg "Sampling.points: empty band list";
      List.iter
        (fun (lo, hi) ->
          if not (hi > lo) then
            invalid_arg (Printf.sprintf "Sampling.points: empty band [%g, %g]" lo hi))
        bands;
      (* distribute [count] over the bands: [count / nb] each, with the
         remainder going to the leading bands one point apiece, so exactly
         [count] points come back whenever [count >= nb] (each band still
         gets at least one point, so fewer than [nb] requested yields [nb]) *)
      let nb = List.length bands in
      let base = count / nb and rem = count mod nb in
      let all =
        List.concat
          (List.mapi
             (fun i (lo, hi) ->
               let per = max 1 (base + if i < rem then 1 else 0) in
               Array.to_list (of_rule (Quad.gauss_legendre ~lo ~hi per)))
             bands)
      in
      Array.of_list all

(* The total quadrature mass, i.e. the implied bandwidth of the weighting. *)
let total_weight pts = Array.fold_left (fun acc p -> acc +. p.weight) 0.0 pts

(* Frequency-weighted Gramian sampling (paper eq. 18): multiply each
   quadrature weight by w(omega), turning the implied Gramian into
   X_FW = integral (jwE - A)^{-1} B B^T (jwE - A)^{-H} w(omega) dw. *)
let reweight w pts =
  Array.map
    (fun p ->
      let omega = Float.abs p.s.Complex.im in
      let factor = w omega in
      (* [not (factor >= 0)] also rejects nan; an [assert] would vanish
         under -noassert and let a negative weighting corrupt the Gramian *)
      if not (factor >= 0.0) then
        invalid_arg
          (Printf.sprintf "Sampling.reweight: weighting function returned %g < 0 at omega = %g"
             factor omega);
      { p with weight = p.weight *. factor })
    pts

(* Split a point set into leading batches, for the on-the-fly order control
   loop: [batches pts k] yields prefixes of sizes k, 2k, ... *)
let prefixes pts ~batch =
  let n = Array.length pts in
  let rec build k acc = if k >= n then List.rev (pts :: acc) else build (k + batch) (Array.sub pts 0 k :: acc) in
  build batch []

(* Reorder points so every prefix covers the whole range roughly uniformly
   (bit-reversal / van der Corput order).  Adaptive order control consumes
   prefixes; a frequency-ordered grid would make each prefix a sub-band
   instead of a coarser sampling of the full band. *)
let spread_order pts =
  let n = Array.length pts in
  if n <= 2 then Array.copy pts
  else begin
    let bits =
      let rec go b = if 1 lsl b >= n then b else go (b + 1) in
      go 1
    in
    let reverse i =
      let r = ref 0 in
      for b = 0 to bits - 1 do
        if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
      done;
      !r
    in
    let out = Array.make n pts.(0) in
    let k = ref 0 in
    for i = 0 to (1 lsl bits) - 1 do
      let j = reverse i in
      if j < n then begin
        out.(!k) <- pts.(j);
        incr k
      end
    done;
    out
  end
