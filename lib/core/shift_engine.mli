(** Parallel multi-shift sampling engine.

    Runs the shifted-solve loop [z_k = (s_k E - A)^{-1} B] — the entire
    cost of PMTBR (paper eq. 8-11) — over an OCaml 5 domain pool with a
    chunked work queue, reusing one symbolic sparse-LU analysis across all
    shifts (see {!Pmtbr_sparse.Shifted.prepare}).

    {b Determinism contract}: each sample block is a pure function of the
    system and its task, and blocks are assembled in task order, so runs
    with any worker count produce bitwise-identical sample matrices (and
    hence identical singular values).  CI enforces this. *)

open Pmtbr_la
open Pmtbr_lti

type task = {
  point : Sampling.point;
  rhs : Mat.t;  (** right-hand side of the shifted solve *)
  hermitian : bool;  (** solve [(sE - A)^H x = rhs] instead (observability side) *)
}

type stats = {
  solves : int;  (** completed shifted solves *)
  workers : int;  (** pool size actually used *)
  factor_s : float;  (** summed per-worker factorisation seconds *)
  solve_s : float;  (** summed per-worker triangular-solve + realify seconds *)
  wall_s : float;  (** wall-clock of the whole run *)
  busy_s : float array;  (** per-worker busy seconds, length [workers] *)
}

val default_workers : unit -> int
(** [Domain.recommended_domain_count ()]: the pool size used when
    [?workers] is omitted or [<= 0]. *)

val utilisation : stats -> float
(** Mean worker utilisation in [0, 1]: total busy time over
    [workers * wall].  A degenerate run — zero wall clock or no workers —
    reports [0.]. *)

val run :
  ?workers:int ->
  ?oversubscribe:bool ->
  ?chunk:int ->
  ?ms:Dss.multi_shift ->
  Dss.t ->
  task array ->
  Mat.t * stats
(** Solve every task and concatenate the realified blocks in task order.
    [workers = 1] runs inline in the calling domain (the serial path);
    [chunk] (default 1) is the number of consecutive tasks a worker claims
    per queue round-trip.  The first task's point is the template shift
    for the shared symbolic analysis; [ms] supplies a pre-built handle
    instead, so incremental callers ({!Sample_cache}) share one symbolic
    analysis across every batch of an adaptive run.  An exception raised
    by any task (e.g. [Sparse_lu.C.Singular]) is re-raised here,
    deterministically the one with the lowest task index.

    The pool is capped at {!default_workers} — on OCaml 5 every minor
    collection synchronises all domains, so running more domains than
    cores only adds scheduler round-trips.  [oversubscribe:true] lifts the
    cap (the determinism tests use it to exercise genuine multi-domain
    runs on any machine); results are bitwise-identical either way. *)

val build_stats :
  ?workers:int ->
  ?oversubscribe:bool ->
  ?chunk:int ->
  Dss.t ->
  Sampling.point array ->
  Mat.t * stats
(** The PMTBR sample matrix [ZW] ([B] as right-hand side), with run
    statistics. *)

val build :
  ?workers:int -> ?oversubscribe:bool -> ?chunk:int -> Dss.t -> Sampling.point array -> Mat.t
(** {!build_stats} without the statistics. *)

val build_rhs :
  ?workers:int ->
  ?oversubscribe:bool ->
  ?chunk:int ->
  Dss.t ->
  rhs:Mat.t ->
  Sampling.point array ->
  Mat.t
(** Sample matrix with one fixed arbitrary right-hand side. *)

val build_per_point :
  ?workers:int ->
  ?oversubscribe:bool ->
  ?chunk:int ->
  Dss.t ->
  (Sampling.point * Mat.t) array ->
  Mat.t
(** Sample matrix with a right-hand side per point (input-correlated
    variant). *)

val build_left :
  ?workers:int -> ?oversubscribe:bool -> ?chunk:int -> Dss.t -> Sampling.point array -> Mat.t
(** Observability-side sample matrix [(s_k E - A)^{-H} C^T] (cross-Gramian
    method). *)

val is_effectively_real : Complex.t -> bool
(** Whether a sample point is treated as real (one column per input
    instead of a realified pair). *)

val realify_block : weight:float -> Complex.t array array -> is_real:bool -> Mat.t
(** Weighted real column block for one solved sample (step 5 of
    Algorithm 1). *)
