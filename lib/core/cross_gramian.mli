(** Sampled cross-Gramian reduction (paper Section V-D).  Controllability
    samples [Z^R = (s_k E - A)^{-1} B] and observability samples
    [Z^L = (s_k E - A)^{-H} C^T] are combined through the compressed
    eigenproblem [R^R (R^L)^T y = lambda y] (with [Z^R = Q R^R],
    [Z^L = Q R^L] for a joint orthonormal basis [Q]); the dominant
    eigenvectors approximate the dominant cross-Gramian eigenspace. *)

open Pmtbr_la
open Pmtbr_lti

type result = {
  rom : Dss.t;
  basis : Mat.t;
  eigenvalues : Complex.t array;  (** of the compressed pencil, |.| descending *)
  samples : int;
}

val reduce : ?order:int -> ?tol:float -> ?workers:int -> Dss.t -> Sampling.point array -> result
(** Reduce onto the dominant cross-Gramian eigenspace; [tol] (default
    [1e-8]) drops eigenvalues relative to the largest magnitude when
    [order] is not given. *)
