(** Sampled cross-Gramian reduction (paper Section V-D).  Controllability
    samples [Z^R = (s_k E - A)^{-1} B] and observability samples
    [Z^L = (s_k E - A)^{-H} C^T] are combined through a compressed
    eigenproblem whose dominant eigenvectors approximate the dominant
    cross-Gramian eigenspace.

    {!reduce} is the retained dense reference: a state-dimension QR of the
    joint block [\[zr zl\] = Q \[R^R R^L\]] and the pencil
    [R^R (R^L)^T y = lambda y] at the joint column dimension.

    {!reduce_cached} and {!reduce_adaptive} run both sides through
    {!Sample_cache}s sharing one multi-shift handle (the adjoint solves
    reuse the same symbolic sparse-LU analysis) and solve the pencil
    [S_R S_L^T (Q_L^T Q_R) y = lambda y] built from the two small thin-QR
    factors, truncated to the right side's numerical rank — no
    state-dimension QR or dense [n x cols] product, and the Schur solve
    runs at the rank dimension.  [stats.solves = stats.points] certifies
    each shift was solved exactly once per side. *)

open Pmtbr_la
open Pmtbr_lti

type result = {
  rom : Dss.t;
  basis : Mat.t;
  eigenvalues : Complex.t array;  (** of the compressed pencil, |.| descending *)
  samples : int;
}

val reduce : ?order:int -> ?tol:float -> ?workers:int -> Dss.t -> Sampling.point array -> result
(** Reduce onto the dominant cross-Gramian eigenspace through the dense
    state-dimension QR (the reference path); [tol] (default [1e-8]) drops
    eigenvalues relative to the largest magnitude when [order] is not
    given. *)

val of_samples :
  ?order:int -> ?tol:float -> Dss.t -> zr:Mat.t -> zl:Mat.t -> samples:int -> result
(** The dense pipeline from pre-built sample blocks (what {!reduce} runs
    after its solves) — the baseline {e bench/variants_bench.ml} gates the
    compressed-pencil path against. *)

val reduce_cached :
  ?order:int -> ?tol:float -> ?workers:int -> Dss.t -> Sampling.point array -> result
(** One-shot reduction through two {!Sample_cache}s and the
    compressed pencil at the single-side column dimension. *)

val reduce_cached_stats :
  ?order:int -> ?tol:float -> ?workers:int -> Dss.t -> Sampling.point array ->
  result * Sample_cache.stats
(** {!reduce_cached} with the two sides' merged counters
    ({!Sample_cache.merge_stats}): [solves = points] certifies no shift
    was re-solved on either side. *)

val make_caches :
  ?workers:int -> Dss.t -> Sampling.point -> Sample_cache.t * Sample_cache.t
(** [(right, left)] caches — a {!Sample_cache.Controllability} and a
    {!Sample_cache.Observability} source — sharing one multi-shift handle
    created from the template point, so the adjoint solves reuse the same
    symbolic analysis.  For callers (the bench, adaptive drivers) that
    extend the sides themselves before {!of_caches}. *)

val of_caches :
  ?order:int -> ?tol:float -> ?workers:int -> Dss.t -> right:Sample_cache.t ->
  left:Sample_cache.t -> scale:float -> samples:int -> result
(** The compressed-pencil pipeline from two pre-extended caches (a
    {!Sample_cache.Controllability} right side and a
    {!Sample_cache.Observability} left side over the same points); exposed
    for the bench and for callers managing their own caches.  Raises
    [Invalid_argument] when the side column counts differ (inputs [<>]
    outputs). *)

val reduce_adaptive :
  ?order:int -> ?tol:float -> ?batch:int -> ?converge_tol:float -> ?workers:int -> Dss.t ->
  Sampling.point array -> result
(** Adaptive cross-Gramian: consume the points in bit-reversed batches of
    [batch] (default 8) through both sides' caches — each shift solved
    once per side for the whole run — and stop when the leading pencil
    eigenvalue magnitudes have converged to [converge_tol] relative change
    (default 2%) and the sample block holds at least twice the model order
    in columns per side.  [result.samples] reports the points consumed. *)

val reduce_adaptive_stats :
  ?order:int -> ?tol:float -> ?batch:int -> ?converge_tol:float -> ?workers:int -> Dss.t ->
  Sampling.point array -> result * Sample_cache.stats
(** {!reduce_adaptive} with the merged per-side counters. *)
