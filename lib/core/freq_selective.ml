(* Frequency-selective TBR (Algorithm 2): identical to PMTBR except that
   the sample points are restricted to the union of the frequency bands of
   interest, which makes the implied Gramian the finite-bandwidth Gramian of
   eq. 16-18.  The reduced model concentrates its accuracy inside the bands
   and ignores out-of-band behaviour.  Being a pure re-parameterisation of
   the point selection, it inherits the whole cache pipeline — adaptive
   order control, solve-once counters — from [Pmtbr]. *)

type band = { lo : float; hi : float } (* rad/s *)

let band ~lo ~hi =
  if not (hi > lo && lo >= 0.0) then
    invalid_arg (Printf.sprintf "Freq_selective.band: bad band [%g, %g]" lo hi);
  { lo; hi }

let scheme_of_bands bands = Sampling.Bands (List.map (fun b -> (b.lo, b.hi)) bands)

(* Reduce with points drawn only from [bands]. *)
let reduce ?order ?tol ?workers sys ~bands ~count =
  let pts = Sampling.points (scheme_of_bands bands) ~count in
  Pmtbr.reduce ?order ?tol ?workers sys pts

let reduce_stats ?order ?tol ?workers sys ~bands ~count =
  let pts = Sampling.points (scheme_of_bands bands) ~count in
  Pmtbr.reduce_stats ?order ?tol ?workers sys pts

(* Adaptive variant with on-the-fly order control. *)
let reduce_adaptive_stats ?order ?tol ?batch ?converge_tol ?workers sys ~bands ~count =
  let pts = Sampling.points (scheme_of_bands bands) ~count in
  Pmtbr.reduce_adaptive_stats ?order ?tol ?batch ?converge_tol ?workers sys pts

let reduce_adaptive ?order ?tol ?batch ?converge_tol ?workers sys ~bands ~count =
  fst (reduce_adaptive_stats ?order ?tol ?batch ?converge_tol ?workers sys ~bands ~count)
