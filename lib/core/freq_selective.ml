(* Frequency-selective TBR (Algorithm 2): identical to PMTBR except that
   the sample points are restricted to the union of the frequency bands of
   interest, which makes the implied Gramian the finite-bandwidth Gramian of
   eq. 16-18.  The reduced model concentrates its accuracy inside the bands
   and ignores out-of-band behaviour. *)

type band = { lo : float; hi : float } (* rad/s *)

let band ~lo ~hi =
  assert (hi > lo && lo >= 0.0);
  { lo; hi }

let scheme_of_bands bands = Sampling.Bands (List.map (fun b -> (b.lo, b.hi)) bands)

(* Reduce with points drawn only from [bands]. *)
let reduce ?order ?tol ?workers sys ~bands ~count =
  let pts = Sampling.points (scheme_of_bands bands) ~count in
  Pmtbr.reduce ?order ?tol ?workers sys pts

(* Adaptive variant with on-the-fly order control. *)
let reduce_adaptive ?order ?tol ?batch ?workers sys ~bands ~count =
  let pts = Sampling.points (scheme_of_bands bands) ~count in
  Pmtbr.reduce_adaptive ?order ?tol ?batch ?workers sys pts
