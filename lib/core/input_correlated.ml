(* Input-correlated TBR (Algorithm 3): when the port inputs are correlated,
   the effective Gramian is A X + X A^T + B K B^T = 0 with K the input
   correlation matrix.  Instead of forming K, the input sample matrix U is
   SVD'd (U = V_K S_K U_K^T) and each frequency sample is taken against a
   random input direction B V_K r with r ~ N(0, S_K^2): the sampled Gramian
   then converges to the K-weighted one.

   Both variants run through the shared [Sample_cache] pipeline — the
   random-draw path on a [Per_point] source (one right-hand side per
   draw), the deterministic path on a [Fixed_rhs] source — so every shift
   is solved exactly once per run through one symbolic analysis, the
   counters are surfaced by the [_stats] entry points, and the adaptive
   draws-loop monitors order from the cache's small factor.  The one-shot
   assemblies are bitwise-identical to the [Zmat.build_per_point] /
   [Zmat.build_rhs] reference paths. *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_signal

type result = {
  rom : Dss.t;
  basis : Mat.t;
  singular_values : float array;
  input_rank : int; (* retained input directions *)
  samples : int;
}

(* One sampled direction (Algorithm 3 steps 3/5): frequency point [k mod
   n_pts] paired with the random input image B V_K r.  The rhs is the
   single mat-vec B * dir — no per-row extraction. *)
let draw ~rng ~(basis : Correlation.input_basis) ~(b : Mat.t) (points : Sampling.point array) k =
  let p = points.(k mod Array.length points) in
  let dir = Correlation.draw_direction ~rng basis in
  let bd = Mat.mv b dir in
  (p, Mat.init (Array.length bd) 1 (fun i _ -> bd.(i)))

(* The rng stream is consumed strictly in draw order (an explicit loop:
   [Array.init]'s evaluation order is unspecified), so batching the draws
   leaves the stream — and hence the sampled columns — unchanged. *)
let draw_block ~rng ~basis ~b points ~from ~count =
  if count = 0 then [||]
  else begin
    let out = Array.make count (draw ~rng ~basis ~b points from) in
    for i = 1 to count - 1 do
      out.(i) <- draw ~rng ~basis ~b points (from + i)
    done;
    out
  end

let analyse_inputs sys ~input_tol (inputs : Mat.t) =
  if inputs.Mat.rows <> Dss.inputs sys then
    invalid_arg
      (Printf.sprintf "Input_correlated: %d input-sample rows for a %d-port system"
         inputs.Mat.rows (Dss.inputs sys));
  Correlation.truncate ~tol:input_tol (Correlation.analyse inputs)

(* [reduce sys ~inputs ~points ~draws] runs Algorithm 3:
   [inputs] is the p x N matrix of sampled input waveforms; [points] the
   frequency points to cycle through; [draws] the number of sample vectors
   (each pairs one frequency point with one random input direction). *)
let reduce_stats ?order ?tol ?(input_tol = 1e-6) ?(seed = 2004) ?workers sys
    ~(inputs : Mat.t) ~(points : Sampling.point array) ~draws =
  if Array.length points = 0 then invalid_arg "Input_correlated.reduce: no points";
  if draws < 1 then invalid_arg "Input_correlated.reduce: draws must be >= 1";
  let rng = Rng.create seed in
  let basis = analyse_inputs sys ~input_tol inputs in
  let b = Dss.b_matrix sys in
  let cache = Sample_cache.create ?workers ~source:Sample_cache.Per_point sys in
  Sample_cache.extend_rhs cache (draw_block ~rng ~basis ~b points ~from:0 ~count:draws);
  let zw = Sample_cache.assemble cache ~scale:1.0 in
  let r = Pmtbr.of_basis sys ~zw ?order ?tol ~samples:draws () in
  ( {
      rom = r.Pmtbr.rom;
      basis = r.Pmtbr.basis;
      singular_values = r.Pmtbr.singular_values;
      input_rank = basis.Correlation.directions.Mat.cols;
      samples = draws;
    },
    Sample_cache.stats cache )

let reduce ?order ?tol ?input_tol ?seed ?workers sys ~inputs ~points ~draws =
  fst (reduce_stats ?order ?tol ?input_tol ?seed ?workers sys ~inputs ~points ~draws)

(* ------------------------------------------------------------------ *)
(* Adaptive draws-loop                                                 *)
(* ------------------------------------------------------------------ *)

(* On-the-fly order control over the Monte Carlo draw count: consume the
   draw sequence in batches through the cache, rescale the held prefix by
   [max_draws / consumed] at assembly (a diagonal — no re-solve) so every
   batch estimates the same K-weighted Gramian, and stop when the leading
   singular values of the small factor converge, the tail is below [tol],
   and the sample block holds at least twice the model order in columns
   (the Section V-B budget guard).  Batch boundaries and worker counts
   leave no trace: the rng stream is consumed in draw order and the cache
   is batch-invariant, so results are bitwise-independent of both. *)
let reduce_adaptive_stats ?order ?tol ?(input_tol = 1e-6) ?(seed = 2004) ?(batch = 8)
    ?(converge_tol = 0.02) ?workers sys ~(inputs : Mat.t) ~(points : Sampling.point array)
    ~max_draws =
  if Array.length points = 0 then invalid_arg "Input_correlated.reduce_adaptive: no points";
  if max_draws < 1 then invalid_arg "Input_correlated.reduce_adaptive: max_draws must be >= 1";
  if batch < 1 then invalid_arg "Input_correlated.reduce_adaptive: batch must be >= 1";
  let stop_tol = Option.value tol ~default:1e-10 in
  let rng = Rng.create seed in
  let basis = analyse_inputs sys ~input_tol inputs in
  let b = Dss.b_matrix sys in
  let cache = Sample_cache.create ?workers ~source:Sample_cache.Per_point sys in
  let finish upto =
    let scale = float_of_int max_draws /. float_of_int upto in
    let r = Pmtbr.of_cache sys cache ~scale ?order ?tol ~samples:upto () in
    ( {
        rom = r.Pmtbr.rom;
        basis = r.Pmtbr.basis;
        singular_values = r.Pmtbr.singular_values;
        input_rank = basis.Correlation.directions.Mat.cols;
        samples = upto;
      },
      Sample_cache.stats cache )
  in
  let rec loop consumed prev =
    let upto = min max_draws (consumed + batch) in
    Sample_cache.extend_rhs cache
      (draw_block ~rng ~basis ~b points ~from:consumed ~count:(upto - consumed));
    let scale = float_of_int max_draws /. float_of_int upto in
    (* monitoring compares values across batches to a few percent; the
       loose sweep threshold keeps the per-batch monitor cheap *)
    let sigma = Svd.values ~threshold:1e-10 (Sample_cache.small_factor cache ~scale) in
    let q = Pmtbr.choose_order ~sigma ?order ?tol () in
    let converged =
      match prev with
      | None -> false
      | Some prev ->
          let k = min q (min (Array.length prev) (Array.length sigma)) in
          let ok = ref (k > 0) in
          for i = 0 to k - 1 do
            let denom = Float.max sigma.(i) 1e-300 in
            if Float.abs (sigma.(i) -. prev.(i)) /. denom > converge_tol then ok := false
          done;
          !ok
    in
    let tail_small =
      match (order, tol) with
      | Some _, None -> true (* explicitly sized model: no tail criterion *)
      | _ ->
          let smax = Float.max sigma.(0) 1e-300 in
          let tail = ref 0.0 in
          Array.iteri (fun i s -> if i >= q then tail := !tail +. s) sigma;
          !tail <= stop_tol *. smax
    in
    let enough_columns = Sample_cache.columns cache >= 2 * q in
    if upto >= max_draws || (converged && tail_small && enough_columns) then finish upto
    else loop upto (Some sigma)
  in
  loop 0 None

let reduce_adaptive ?order ?tol ?input_tol ?seed ?batch ?converge_tol ?workers sys ~inputs
    ~points ~max_draws =
  fst
    (reduce_adaptive_stats ?order ?tol ?input_tol ?seed ?batch ?converge_tol ?workers sys
       ~inputs ~points ~max_draws)

(* ------------------------------------------------------------------ *)
(* Deterministic variant                                               *)
(* ------------------------------------------------------------------ *)

(* Deterministic variant: instead of random draws, use the leading input
   directions themselves, scaled by their singular values, at every
   frequency point.  Cheaper and reproducible; used for the large substrate
   experiments. *)
let reduce_deterministic_stats ?order ?tol ?(input_tol = 1e-6) ?(directions = 0) ?workers sys
    ~(inputs : Mat.t) ~(points : Sampling.point array) =
  if Array.length points = 0 then invalid_arg "Input_correlated.reduce_deterministic: no points";
  let basis = analyse_inputs sys ~input_tol inputs in
  let dirs = basis.Correlation.directions in
  let r_in = if directions > 0 then min directions dirs.Mat.cols else dirs.Mat.cols in
  let b = Dss.b_matrix sys in
  (* rhs = B * (V_K S_K) restricted to the leading directions *)
  let rhs =
    Mat.mul b
      (Mat.init dirs.Mat.rows r_in (fun i j -> Mat.get dirs i j *. basis.Correlation.sigmas.(j)))
  in
  let cache = Sample_cache.create ?workers ~source:(Sample_cache.Fixed_rhs rhs) sys in
  Sample_cache.extend cache points;
  let zw = Sample_cache.assemble cache ~scale:1.0 in
  let r = Pmtbr.of_basis sys ~zw ?order ?tol ~samples:(Array.length points) () in
  ( {
      rom = r.Pmtbr.rom;
      basis = r.Pmtbr.basis;
      singular_values = r.Pmtbr.singular_values;
      input_rank = r_in;
      samples = Array.length points;
    },
    Sample_cache.stats cache )

let reduce_deterministic ?order ?tol ?input_tol ?directions ?workers sys ~inputs ~points =
  fst (reduce_deterministic_stats ?order ?tol ?input_tol ?directions ?workers sys ~inputs ~points)
