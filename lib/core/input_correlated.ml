(* Input-correlated TBR (Algorithm 3): when the port inputs are correlated,
   the effective Gramian is A X + X A^T + B K B^T = 0 with K the input
   correlation matrix.  Instead of forming K, the input sample matrix U is
   SVD'd (U = V_K S_K U_K^T) and each frequency sample is taken against a
   random input direction B V_K r with r ~ N(0, S_K^2): the sampled Gramian
   then converges to the K-weighted one. *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_signal

type result = {
  rom : Dss.t;
  basis : Mat.t;
  singular_values : float array;
  input_rank : int; (* retained input directions *)
  samples : int;
}

(* [reduce sys ~inputs ~points ~draws] runs Algorithm 3:
   [inputs] is the p x N matrix of sampled input waveforms; [points] the
   frequency points to cycle through; [draws] the number of sample vectors
   (each pairs one frequency point with one random input direction). *)
let reduce ?order ?tol ?(input_tol = 1e-6) ?(seed = 2004) ?workers sys ~(inputs : Mat.t)
    ~(points : Sampling.point array) ~draws =
  assert (inputs.Mat.rows = Dss.inputs sys);
  let rng = Rng.create seed in
  let basis = Correlation.truncate ~tol:input_tol (Correlation.analyse inputs) in
  let b = Dss.b_matrix sys in
  let n_pts = Array.length points in
  assert (n_pts > 0 && draws > 0);
  let pts_rhs =
    List.init draws (fun k ->
        let p = points.(k mod n_pts) in
        let dir = Correlation.draw_direction ~rng basis in
        let rhs = Mat.init b.Mat.rows 1 (fun i _ -> Vec.dot (Mat.row b i) dir) in
        (p, rhs))
  in
  let zw = Zmat.build_per_point ?workers sys pts_rhs in
  let r = Pmtbr.of_basis sys ~zw ?order ?tol ~samples:draws () in
  {
    rom = r.Pmtbr.rom;
    basis = r.Pmtbr.basis;
    singular_values = r.Pmtbr.singular_values;
    input_rank = basis.Correlation.directions.Mat.cols;
    samples = draws;
  }

(* Deterministic variant: instead of random draws, use the leading input
   directions themselves, scaled by their singular values, at every
   frequency point.  Cheaper and reproducible; used for the large substrate
   experiments. *)
let reduce_deterministic ?order ?tol ?(input_tol = 1e-6) ?(directions = 0) ?workers sys
    ~(inputs : Mat.t) ~(points : Sampling.point array) =
  let basis = Correlation.truncate ~tol:input_tol (Correlation.analyse inputs) in
  let dirs = basis.Correlation.directions in
  let r_in = if directions > 0 then min directions dirs.Mat.cols else dirs.Mat.cols in
  let b = Dss.b_matrix sys in
  (* rhs = B * (V_K S_K) restricted to the leading directions *)
  let rhs =
    Mat.mul b
      (Mat.init dirs.Mat.rows r_in (fun i j -> Mat.get dirs i j *. basis.Correlation.sigmas.(j)))
  in
  if Array.length points = 0 then invalid_arg "Input_correlated.reduce_deterministic: no points";
  let zw = Zmat.build_rhs ?workers sys ~rhs points in
  let r = Pmtbr.of_basis sys ~zw ?order ?tol ~samples:(Array.length points) () in
  {
    rom = r.Pmtbr.rom;
    basis = r.Pmtbr.basis;
    singular_values = r.Pmtbr.singular_values;
    input_rank = r_in;
    samples = Array.length points;
  }
