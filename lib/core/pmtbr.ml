(* PMTBR, Algorithm 1 of the paper:

     1. pick frequency points s_i (a [Sampling.scheme])
     2. z_i = (s_i E - A)^{-1} B
     3. SVD of the weighted, realified sample matrix Z W
     4. keep the left singular vectors whose singular values are significant
     5. reduce by congruence projection with that basis

   The singular values of Z W approximate the Hankel singular values
   (Section III-B) and drive order/error control (Section V-B/C). *)

open Pmtbr_la
open Pmtbr_lti

type result = {
  rom : Dss.t; (* reduced model *)
  basis : Mat.t; (* projection basis V, n x q *)
  singular_values : float array; (* all singular values of ZW, descending *)
  samples : int; (* number of frequency points consumed *)
}

(* Truncation order from singular values: keep sigma_i while the *tail sum*
   exceeds [tol] relative to sigma_0 (the TBR-like small-tail criterion of
   Section V-B).  An explicit [order] wins outright (clamped to the number
   of values); only when the caller passes [tol] as well does the tail
   criterion cap it — a *default* tolerance must never shrink a model the
   caller sized explicitly. *)
let choose_order ~(sigma : float array) ?order ?tol () =
  let n = Array.length sigma in
  if n = 0 then 0
  else begin
    (* smallest q with sum_{i>=q} sigma_i <= tol * sigma_0 *)
    let from_tol tol =
      let smax = Float.max sigma.(0) 1e-300 in
      let tail = Array.make (n + 1) 0.0 in
      for i = n - 1 downto 0 do
        tail.(i) <- tail.(i + 1) +. sigma.(i)
      done;
      let rec search q =
        if q >= n then n else if tail.(q) <= tol *. smax then q else search (q + 1)
      in
      max 1 (search 0)
    in
    match (order, tol) with
    | Some q, None -> max 1 (min q n)
    | Some q, Some tol -> max 1 (min q (from_tol tol))
    | None, _ -> from_tol (Option.value tol ~default:1e-10)
  end

let of_basis sys ~(zw : Mat.t) ?order ?tol ?workers ~samples () =
  let { Svd.u; sigma; _ } = Svd.decompose ?workers zw in
  let q = choose_order ~sigma ?order ?tol () in
  (* never keep directions below numerical noise *)
  let q =
    let smax = Float.max sigma.(0) 1e-300 in
    let rec cap k = if k <= 1 then 1 else if sigma.(k - 1) > 1e-14 *. smax then k else cap (k - 1) in
    cap q
  in
  let basis = Mat.sub_cols u 0 q in
  { rom = Dss.project_congruence sys basis; basis; singular_values = sigma; samples }

(* One-shot PMTBR with a fixed point set.  [workers] sizes the shifted-solve
   domain pool (default: all recommended domains; results are identical for
   any worker count). *)
let reduce ?order ?tol ?workers sys (pts : Sampling.point array) =
  let zw = Zmat.build ?workers sys pts in
  of_basis sys ~zw ?order ?tol ?workers ~samples:(Array.length pts) ()

(* Convenience: uniform sampling of [0, w_max]. *)
let reduce_uniform ?order ?tol ?workers sys ~w_max ~count =
  reduce ?order ?tol ?workers sys (Sampling.points (Sampling.Uniform { w_max }) ~count)

(* ------------------------------------------------------------------ *)
(* On-the-fly order control (Section V-C)                               *)
(* ------------------------------------------------------------------ *)

(* Per-batch monitor: values standing in for the singular values of the
   current weighted prefix, computed from the cache's small factor [R D]
   (column dimension, no state-dimension work, no re-solve).  The SVD
   monitor yields the singular values themselves; the RRQR monitor the
   normalised pivoted-R diagonal profile — R's diagonal magnitudes are
   single-column norms whose absolute scale shrinks as prefix weights are
   rescaled, so only the profile d_i / d_0 converges. *)
type monitor = Monitor_svd | Monitor_rrqr

let monitor_values ?workers cache ~monitor ~scale =
  let small = Sample_cache.small_factor cache ~scale in
  match monitor with
  | Monitor_svd ->
      (* monitoring only compares values across batches (to a few percent)
         and against [tol]; 1e-10 relative accuracy is plenty, and the
         looser sweep threshold is what keeps the per-batch monitor cheap
         next to the solves.  The final decomposition stays full-precision
         in [result_of_cache]. *)
      Svd.values ?workers ~threshold:1e-10 small
  | Monitor_rrqr ->
      let { Qr.r; rank; _ } = Qr.pivoted ~tol:1e-15 small in
      let d = Array.init rank (fun i -> Float.abs (Mat.get r i i)) in
      let d0 = if rank > 0 then Float.max d.(0) 1e-300 else 1.0 in
      Array.map (fun x -> x /. d0) d

(* Final result from the cache's thin factorisation: ZW = Q (R D), so the
   SVD of the small [R D] supplies the singular values and [Q U_small] the
   left singular basis — one small SVD per adaptive run instead of one
   state-dimension SVD per batch.  Exposed as [of_cache]: every
   cache-based variant (frequency-selective, input-correlated) finishes
   through here. *)
let of_cache sys cache ~scale ?order ?tol ?workers ~samples () =
  let { Svd.u; sigma; _ } = Svd.decompose ?workers (Sample_cache.small_factor cache ~scale) in
  let q = choose_order ~sigma ?order ?tol () in
  (* never keep directions below numerical noise *)
  let q =
    let smax = Float.max sigma.(0) 1e-300 in
    let rec cap k = if k <= 1 then 1 else if sigma.(k - 1) > 1e-14 *. smax then k else cap (k - 1) in
    cap q
  in
  let basis = Sample_cache.apply_q cache (Mat.sub_cols u 0 q) in
  { rom = Dss.project_congruence sys basis; basis; singular_values = sigma; samples }

(* One-shot PMTBR through the cache pipeline, surfacing the solve
   counters.  Same subspace and singular values as [reduce]; the basis is
   formed from the thin factorisation ([Q U_small]) instead of a
   state-dimension SVD of the assembled matrix. *)
let reduce_stats ?order ?tol ?workers sys (pts : Sampling.point array) =
  if Array.length pts = 0 then invalid_arg "Pmtbr.reduce_stats: no sample points";
  let cache = Sample_cache.create ?workers sys in
  Sample_cache.extend cache pts;
  let r = of_cache sys cache ~scale:1.0 ?order ?tol ?workers ~samples:(Array.length pts) () in
  (r, Sample_cache.stats cache)

(* The adaptive loop shared by both monitors: consume the point sequence
   in batches through a [Sample_cache] — each shift solved exactly once
   for the whole run — and after each batch compare the monitor values
   with the previous batch's; stop when the leading values have converged
   to [converge_tol] relative change, the tail is below [tol], and the
   sample matrix is wide enough to trust the tail.

   [rebuild] selects the reference from-scratch path: a fresh cache per
   batch, re-solving every consumed shift — exactly what this loop did
   before the cache existed.  It is kept as the benchmark baseline and the
   oracle for the incremental == from-scratch equivalence tests; both
   paths run the identical per-column arithmetic in the identical order,
   so their results are bitwise-equal. *)
let adaptive_loop ~monitor ~rebuild ~default_converge ?order ?tol ?(batch = 8) ?converge_tol
    ?workers sys (pts : Sampling.point array) =
  if Array.length pts = 0 then invalid_arg "Pmtbr.reduce_adaptive: no sample points";
  if batch < 1 then invalid_arg "Pmtbr.reduce_adaptive: batch must be >= 1";
  let converge_tol = Option.value converge_tol ~default:default_converge in
  let stop_tol = Option.value tol ~default:1e-10 in
  (* prefixes must cover the whole band: consume in bit-reversed order *)
  let pts = Sampling.spread_order pts in
  let n_pts = Array.length pts in
  let cache = ref (Sample_cache.create ?workers sys) in
  (* solves/timings of caches discarded by the rebuild path, folded into
     the final stats so the counter reflects the whole run *)
  let acc_solves = ref 0
  and acc_batches = ref 0
  and acc_factor = ref 0.0
  and acc_solve = ref 0.0
  and acc_wall = ref [||] in
  let discard c =
    let st = Sample_cache.stats c in
    acc_solves := !acc_solves + st.Sample_cache.solves;
    acc_batches := !acc_batches + st.Sample_cache.batches;
    acc_factor := !acc_factor +. st.Sample_cache.factor_s;
    acc_solve := !acc_solve +. st.Sample_cache.solve_s;
    acc_wall := Array.append !acc_wall st.Sample_cache.batch_wall_s
  in
  let finish upto =
    let scale = float_of_int n_pts /. float_of_int upto in
    let result = of_cache sys !cache ~scale ?order ?tol ?workers ~samples:upto () in
    let st = Sample_cache.stats !cache in
    ( result,
      {
        st with
        Sample_cache.solves = st.Sample_cache.solves + !acc_solves;
        batches = st.Sample_cache.batches + !acc_batches;
        factor_s = st.Sample_cache.factor_s +. !acc_factor;
        solve_s = st.Sample_cache.solve_s +. !acc_solve;
        batch_wall_s = Array.append !acc_wall st.Sample_cache.batch_wall_s;
      } )
  in
  let rec loop consumed prev =
    let upto = min n_pts (consumed + batch) in
    (* rescale the prefix weights so each batch approximates the same
       integral: otherwise the sampled Gramian (and its singular values)
       would keep growing with the sample count instead of converging.
       The rescaling is a diagonal applied at assembly time, so it costs
       no solves — the cached raw columns never change. *)
    let scale = float_of_int n_pts /. float_of_int upto in
    if rebuild then begin
      discard !cache;
      cache := Sample_cache.create ?workers sys;
      Sample_cache.extend !cache (Array.sub pts 0 upto)
    end
    else Sample_cache.extend !cache (Array.sub pts consumed (upto - consumed));
    let sigma = monitor_values ?workers !cache ~monitor ~scale in
    let q = choose_order ~sigma ?order ?tol () in
    let leading_converged =
      match prev with
      | None -> false
      | Some prev ->
          let k = min q (min (Array.length prev) (Array.length sigma)) in
          let ok = ref (k > 0) in
          for i = 0 to k - 1 do
            let denom = Float.max sigma.(i) 1e-300 in
            if Float.abs (sigma.(i) -. prev.(i)) /. denom > converge_tol then ok := false
          done;
          !ok
    in
    let tail_small =
      match (order, tol) with
      | Some _, None -> true (* explicitly sized model: no tail criterion *)
      | _ ->
          let smax = Float.max sigma.(0) 1e-300 in
          let tail = ref 0.0 in
          Array.iteri (fun i s -> if i >= q then tail := !tail +. s) sigma;
          !tail <= stop_tol *. smax
    in
    (* Section V-B asks for about twice the model order in samples before
       the tail estimate is trusted.  Information lives in columns, not
       points: a complex point contributes two realified columns per input
       (it stands for its conjugate pair too), a real point one — so the
       guard counts realified columns against 2q, instead of the old
       [upto >= 2 * ((q + 1) / 2)], which collapsed to "points >= q". *)
    let enough_columns = Sample_cache.columns !cache >= 2 * q in
    if upto >= n_pts || (leading_converged && tail_small && enough_columns) then finish upto
    else loop upto (Some sigma)
  in
  loop 0 None

let reduce_adaptive_stats ?(rebuild = false) ?order ?tol ?batch ?converge_tol ?workers sys pts =
  adaptive_loop ~monitor:Monitor_svd ~rebuild ~default_converge:0.02 ?order ?tol ?batch
    ?converge_tol ?workers sys pts

let reduce_adaptive ?order ?tol ?batch ?converge_tol ?workers sys pts =
  fst (reduce_adaptive_stats ?order ?tol ?batch ?converge_tol ?workers sys pts)

(* Variant monitoring convergence with a rank-revealing (column-pivoted)
   QR per batch instead of singular values (Section V-C points out that
   the SVD has no cheap update and suggests RRQR/UTV instead).  The
   stopping criterion mirrors [reduce_adaptive]'s: leading-profile
   convergence alone is not enough — the tail of the normalised R-diagonal
   profile must also be below [tol], so a run can no longer stop with an
   under-resolved truncation tail. *)
let reduce_adaptive_rrqr_stats ?(rebuild = false) ?order ?tol ?batch ?converge_tol ?workers sys
    pts =
  adaptive_loop ~monitor:Monitor_rrqr ~rebuild ~default_converge:0.05 ?order ?tol ?batch
    ?converge_tol ?workers sys pts

let reduce_adaptive_rrqr ?order ?tol ?batch ?converge_tol ?workers sys pts =
  fst (reduce_adaptive_rrqr_stats ?order ?tol ?batch ?converge_tol ?workers sys pts)

(* Singular values of the ZW matrix only (Figs. 5 and 8). *)
let sample_singular_values ?workers sys pts = Svd.values ?workers (Zmat.build ?workers sys pts)

(* Hankel-singular-value estimates.  The sampled Gramian is
   X^ = (1/pi) (ZW)(ZW)^T (the 1/2pi of the inverse Fourier transform and
   the factor 2 from folding the conjugate pair at -j omega into the
   realified columns), so its eigenvalues are sigma(ZW)^2 / pi.  In the
   paper's symmetric case the Hankel singular values are exactly the
   eigenvalues of X (balanced: X = Y = diag(hsv)), hence the estimate. *)
let hankel_estimates ?workers sys pts =
  Array.map (fun s -> s *. s /. Float.pi) (sample_singular_values ?workers sys pts)
