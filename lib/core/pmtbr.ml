(* PMTBR, Algorithm 1 of the paper:

     1. pick frequency points s_i (a [Sampling.scheme])
     2. z_i = (s_i E - A)^{-1} B
     3. SVD of the weighted, realified sample matrix Z W
     4. keep the left singular vectors whose singular values are significant
     5. reduce by congruence projection with that basis

   The singular values of Z W approximate the Hankel singular values
   (Section III-B) and drive order/error control (Section V-B/C). *)

open Pmtbr_la
open Pmtbr_lti

type result = {
  rom : Dss.t; (* reduced model *)
  basis : Mat.t; (* projection basis V, n x q *)
  singular_values : float array; (* all singular values of ZW, descending *)
  samples : int; (* number of frequency points consumed *)
}

(* Truncation order from singular values: keep sigma_i while the *tail sum*
   exceeds [tol] relative to sigma_0 (the TBR-like small-tail criterion of
   Section V-B), capped by [order] if given. *)
let choose_order ~(sigma : float array) ?order ?(tol = 1e-10) () =
  let n = Array.length sigma in
  if n = 0 then 0
  else begin
    let smax = Float.max sigma.(0) 1e-300 in
    (* smallest q with sum_{i>=q} sigma_i <= tol * sigma_0 *)
    let tail = Array.make (n + 1) 0.0 in
    for i = n - 1 downto 0 do
      tail.(i) <- tail.(i + 1) +. sigma.(i)
    done;
    let rec search q = if q >= n then n else if tail.(q) <= tol *. smax then q else search (q + 1) in
    let q_tol = max 1 (search 0) in
    match order with Some q -> max 1 (min q q_tol) | None -> q_tol
  end

let of_basis sys ~(zw : Mat.t) ?order ?tol ~samples () =
  let { Svd.u; sigma; _ } = Svd.decompose zw in
  let q = choose_order ~sigma ?order ?tol () in
  (* never keep directions below numerical noise *)
  let q =
    let smax = Float.max sigma.(0) 1e-300 in
    let rec cap k = if k <= 1 then 1 else if sigma.(k - 1) > 1e-14 *. smax then k else cap (k - 1) in
    cap q
  in
  let basis = Mat.sub_cols u 0 q in
  { rom = Dss.project_congruence sys basis; basis; singular_values = sigma; samples }

(* One-shot PMTBR with a fixed point set.  [workers] sizes the shifted-solve
   domain pool (default: all recommended domains; results are identical for
   any worker count). *)
let reduce ?order ?tol ?workers sys (pts : Sampling.point array) =
  let zw = Zmat.build ?workers sys pts in
  of_basis sys ~zw ?order ?tol ~samples:(Array.length pts) ()

(* Convenience: uniform sampling of [0, w_max]. *)
let reduce_uniform ?order ?tol ?workers sys ~w_max ~count =
  reduce ?order ?tol ?workers sys (Sampling.points (Sampling.Uniform { w_max }) ~count)

(* On-the-fly order control (Section V-C): consume the point sequence in
   batches; after each batch compare the current singular values with the
   previous ones; stop when the leading values have converged to
   [converge_tol] relative change and the tail is below [tol].  Returns the
   result built from the points actually consumed. *)
let reduce_adaptive ?order ?(tol = 1e-10) ?(batch = 8) ?(converge_tol = 0.02) ?workers sys
    (pts : Sampling.point array) =
  (* prefixes must cover the whole band: consume in bit-reversed order *)
  let pts = Sampling.spread_order pts in
  let n_pts = Array.length pts in
  let rec loop consumed prev_sigma =
    let upto = min n_pts (consumed + batch) in
    (* rescale the prefix weights so each batch approximates the same
       integral: otherwise the sampled Gramian (and its singular values)
       would keep growing with the sample count instead of converging *)
    let scale = float_of_int n_pts /. float_of_int upto in
    let prefix =
      Array.map
        (fun p -> { p with Sampling.weight = p.Sampling.weight *. scale })
        (Array.sub pts 0 upto)
    in
    let zw = Zmat.build ?workers sys prefix in
    let { Svd.u; sigma; _ } = Svd.decompose zw in
    let q = choose_order ~sigma ?order ~tol () in
    let leading_converged =
      match prev_sigma with
      | None -> false
      | Some prev ->
          let k = min q (min (Array.length prev) (Array.length sigma)) in
          let ok = ref (k > 0) in
          for i = 0 to k - 1 do
            let denom = Float.max sigma.(i) 1e-300 in
            if Float.abs (sigma.(i) -. prev.(i)) /. denom > converge_tol then ok := false
          done;
          !ok
    in
    let tail_small =
      let smax = Float.max sigma.(0) 1e-300 in
      let tail = ref 0.0 in
      Array.iteri (fun i s -> if i >= q then tail := !tail +. s) sigma;
      !tail <= tol *. smax
      (* require enough samples relative to the order (Section V-B: about
         twice the model order) *)
      && upto >= 2 * ((q + 1) / 2)
    in
    if upto >= n_pts || (leading_converged && tail_small) then begin
      let basis = Mat.sub_cols u (0) (max 1 q) in
      { rom = Dss.project_congruence sys basis; basis; singular_values = sigma; samples = upto }
    end
    else loop upto (Some sigma)
  in
  loop 0 None

(* Variant of the adaptive loop using rank-revealing QR for the per-batch
   order monitoring (Section V-C points out that the SVD has no cheap
   update and suggests RRQR/UTV instead).  The pivoted-R diagonal
   magnitudes stand in for the singular values while points accumulate; a
   single SVD at the end produces the final basis and singular values. *)
let reduce_adaptive_rrqr ?order ?(tol = 1e-10) ?(batch = 8) ?(converge_tol = 0.05) ?workers
    sys (pts : Sampling.point array) =
  let pts = Sampling.spread_order pts in
  let n_pts = Array.length pts in
  let rescaled upto =
    let scale = float_of_int n_pts /. float_of_int upto in
    Array.map
      (fun p -> { p with Sampling.weight = p.Sampling.weight *. scale })
      (Array.sub pts 0 upto)
  in
  (* R's diagonal magnitudes are single-column norms, so their absolute
     scale shrinks as the prefix weights are rescaled; only the profile
     d_i / d_0 converges, hence the normalisation *)
  let diag_magnitudes (r : Mat.t) rank =
    let d = Array.init rank (fun i -> Float.abs (Mat.get r i i)) in
    let d0 = if rank > 0 then Float.max d.(0) 1e-300 else 1.0 in
    Array.map (fun x -> x /. d0) d
  in
  let rec loop consumed prev =
    let upto = min n_pts (consumed + batch) in
    let zw = Zmat.build ?workers sys (rescaled upto) in
    let { Qr.r; rank; _ } = Qr.pivoted ~tol:1e-15 zw in
    let d = diag_magnitudes r rank in
    let q = choose_order ~sigma:d ?order ~tol () in
    let converged =
      match prev with
      | None -> false
      | Some p ->
          let k = min q (min (Array.length p) (Array.length d)) in
          let ok = ref (k > 0) in
          for i = 0 to k - 1 do
            let denom = Float.max d.(i) 1e-300 in
            if Float.abs (d.(i) -. p.(i)) /. denom > converge_tol then ok := false
          done;
          !ok
    in
    if upto >= n_pts || converged then of_basis sys ~zw ?order ~tol ~samples:upto ()
    else loop upto (Some d)
  in
  loop 0 None

(* Singular values of the ZW matrix only (Figs. 5 and 8). *)
let sample_singular_values ?workers sys pts = Svd.values (Zmat.build ?workers sys pts)

(* Hankel-singular-value estimates.  The sampled Gramian is
   X^ = (1/pi) (ZW)(ZW)^T (the 1/2pi of the inverse Fourier transform and
   the factor 2 from folding the conjugate pair at -j omega into the
   realified columns), so its eigenvalues are sigma(ZW)^2 / pi.  In the
   paper's symmetric case the Hankel singular values are exactly the
   eigenvalues of X (balanced: X = Y = diag(hsv)), hence the estimate. *)
let hankel_estimates ?workers sys pts =
  Array.map (fun s -> s *. s /. Float.pi) (sample_singular_values ?workers sys pts)
