(* Wall-clock benchmark of the cross-Gramian compressed pencil.

   Both pipelines solve the same shifted systems; what differs is how the
   projection stage turns the sample blocks into a basis:

   - dense reference ([Cross_gramian.of_samples], timed from pre-built
     zr/zl blocks): a state-dimension QR of the joint block [zr zl]
     followed by a Schur solve at the *joint* column dimension;
   - compressed pencil ([Cross_gramian.of_caches], timed from
     pre-extended caches): the pencil S_R S_L^T (Q_L^T Q_R) assembled
     from the two small thin-QR factors, Schur at the *single-side*
     column dimension, and a lift of only the retained eigenvectors.

   The caches' incremental orthogonalisation runs at extend time inside
   the shared sampling layer (where adaptive runs amortise it batch by
   batch), so the timed region is exactly the per-reduction projection
   work each pipeline repeats.

   Invariants asserted on every pass (both modes):

   - the two pipelines agree on the dominant pencil eigenvalue
     magnitudes (they compute the nonzero spectrum of the same
     Z^R (Z^L)^T);
   - the merged cache counters certify one solve per point per side
     (solves == points);
   - [reduce_cached] is bitwise-identical across worker counts, and the
     adaptive variants (cross-Gramian and input-correlated) are
     bitwise-identical across batch sizes and worker counts when driven
     to full consumption.

   Emits BENCH_variants.json in the current directory.  Run from the
   repo root:

     dune exec bench/variants_bench.exe            # full run, 2x gate
     dune exec bench/variants_bench.exe -- --smoke # CI: tiny system,
                                                   # invariants only *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_core

let now () = Unix.gettimeofday ()

let time_best ?(reps = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = now () in
    let r = f () in
    let dt = now () -. t0 in
    if dt < !best then begin
      best := dt;
      result := Some r
    end
  done;
  (Option.get !result, !best)

let bitwise_equal (a : Mat.t) (b : Mat.t) =
  a.Mat.rows = b.Mat.rows && a.Mat.cols = b.Mat.cols && a.Mat.data = b.Mat.data

(* Relative disagreement of the dominant eigenvalue magnitudes, over the
   part of the spectrum both pipelines resolve ( > 1e-6 of the largest ). *)
let eig_disagreement (a : Complex.t array) (b : Complex.t array) =
  let mags evs =
    let m = Array.map Complex.norm evs in
    Array.sort (fun x y -> compare y x) m;
    m
  in
  let ma = mags a and mb = mags b in
  let magmax = Float.max 1e-300 (Float.max ma.(0) mb.(0)) in
  let k = min (Array.length ma) (Array.length mb) in
  let worst = ref 0.0 in
  for i = 0 to k - 1 do
    if ma.(i) > 1e-6 *. magmax || mb.(i) > 1e-6 *. magmax then
      worst := Float.max !worst (Float.abs (ma.(i) -. mb.(i)) /. magmax)
  done;
  !worst

type record = {
  name : string;
  states : int;
  points : int;
  side_columns : int;
  rom_order : int;
  dense_wall_s : float;
  compressed_wall_s : float;
  speedup : float;
  solves : int;
  cache_points : int;
  eig_rel_diff : float;
}

let bench_case ~name ~sys ~points ~order ~reps =
  let n_pts = Array.length points in
  Printf.eprintf "[variants_bench] %s: %d states, %d points\n%!" name (Dss.order sys) n_pts;
  (* sampling layer, outside the timed region for both pipelines *)
  let zr = Zmat.build sys points in
  let zl = Zmat.build_left sys points in
  let right, left = Cross_gramian.make_caches sys points.(0) in
  Sample_cache.extend right points;
  Sample_cache.extend left points;
  let st = Sample_cache.merge_stats (Sample_cache.stats right) (Sample_cache.stats left) in
  if st.Sample_cache.solves <> st.Sample_cache.points then
    failwith
      (Printf.sprintf "%s: cache re-solved shifts (%d solves for %d points)" name
         st.Sample_cache.solves st.Sample_cache.points);
  let dense, dense_wall =
    time_best ~reps (fun () -> Cross_gramian.of_samples ~order sys ~zr ~zl ~samples:n_pts)
  in
  let compressed, compressed_wall =
    time_best ~reps (fun () ->
        Cross_gramian.of_caches ~order sys ~right ~left ~scale:1.0 ~samples:n_pts)
  in
  let eig_rel_diff =
    eig_disagreement dense.Cross_gramian.eigenvalues compressed.Cross_gramian.eigenvalues
  in
  if eig_rel_diff > 1e-4 then
    failwith
      (Printf.sprintf "%s: pencil spectra disagree (rel diff %.3e)" name eig_rel_diff);
  if dense.Cross_gramian.basis.Mat.cols <> compressed.Cross_gramian.basis.Mat.cols then
    failwith (name ^ ": model orders differ between dense and compressed");
  let r =
    {
      name;
      states = Dss.order sys;
      points = n_pts;
      side_columns = Sample_cache.columns right;
      rom_order = compressed.Cross_gramian.basis.Mat.cols;
      dense_wall_s = dense_wall;
      compressed_wall_s = compressed_wall;
      speedup = dense_wall /. compressed_wall;
      solves = st.Sample_cache.solves;
      cache_points = st.Sample_cache.points;
      eig_rel_diff;
    }
  in
  Printf.eprintf
    "[variants_bench]   dense %.4f s, compressed %.4f s: %.2fx (eig rel diff %.2e)\n%!"
    dense_wall compressed_wall r.speedup eig_rel_diff;
  r

(* Determinism of the cached pipelines: worker counts and batch splits
   must not change a single bit of the result.  [converge_tol = -1]
   forces the adaptive loops to full consumption so runs with different
   batch sizes end on the same sample set. *)
let determinism_checks ~sys ~points =
  let b1 = (Cross_gramian.reduce_cached ~workers:1 sys points).Cross_gramian.basis in
  let b3 = (Cross_gramian.reduce_cached ~workers:3 sys points).Cross_gramian.basis in
  if not (bitwise_equal b1 b3) then failwith "reduce_cached differs across worker counts";
  let adapt ~batch ~workers =
    (Cross_gramian.reduce_adaptive ~batch ~converge_tol:(-1.0) ~workers sys points)
      .Cross_gramian.basis
  in
  let a = adapt ~batch:4 ~workers:1 in
  if not (bitwise_equal a (adapt ~batch:7 ~workers:1)) then
    failwith "adaptive cross-Gramian differs across batch sizes";
  if not (bitwise_equal a (adapt ~batch:4 ~workers:3)) then
    failwith "adaptive cross-Gramian differs across worker counts";
  (* input-correlated: the rng stream is consumed in draw order, so batch
     boundaries and worker counts must not move a draw *)
  let inputs =
    Pmtbr_signal.Waveform.sample_matrix
      (Array.map
         (fun w t -> 1e-3 *. w t)
         (Pmtbr_signal.Waveform.dithered_square_bank
            ~rng:(Pmtbr_signal.Rng.create 11)
            ~ports:(Dss.inputs sys) ~period:1e-9 ~dither:0.1))
      ~t0:0.0 ~t1:4e-9 ~samples:200
  in
  let ic ~batch ~workers =
    let r, st =
      Input_correlated.reduce_adaptive_stats ~seed:5 ~batch ~converge_tol:(-1.0) ~workers sys
        ~inputs ~points ~max_draws:24
    in
    if st.Sample_cache.solves <> st.Sample_cache.points then
      failwith "input-correlated cache re-solved shifts";
    r.Input_correlated.basis
  in
  let i1 = ic ~batch:3 ~workers:1 in
  if not (bitwise_equal i1 (ic ~batch:8 ~workers:1)) then
    failwith "adaptive input-correlated differs across batch sizes";
  if not (bitwise_equal i1 (ic ~batch:3 ~workers:2)) then
    failwith "adaptive input-correlated differs across worker counts";
  Printf.eprintf "[variants_bench] determinism OK\n%!"

let json_of_records records =
  Util.json_object @@ fun buf ->
  Buffer.add_string buf "  \"cases\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf "    {\n";
      Buffer.add_string buf (Printf.sprintf "      \"name\": %S,\n" r.name);
      Buffer.add_string buf (Printf.sprintf "      \"states\": %d,\n" r.states);
      Buffer.add_string buf (Printf.sprintf "      \"points\": %d,\n" r.points);
      Buffer.add_string buf (Printf.sprintf "      \"side_columns\": %d,\n" r.side_columns);
      Buffer.add_string buf (Printf.sprintf "      \"rom_order\": %d,\n" r.rom_order);
      Buffer.add_string buf (Printf.sprintf "      \"dense_wall_s\": %.6f,\n" r.dense_wall_s);
      Buffer.add_string buf
        (Printf.sprintf "      \"compressed_wall_s\": %.6f,\n" r.compressed_wall_s);
      Buffer.add_string buf (Printf.sprintf "      \"speedup\": %.3f,\n" r.speedup);
      Buffer.add_string buf (Printf.sprintf "      \"solves\": %d,\n" r.solves);
      Buffer.add_string buf (Printf.sprintf "      \"cache_points\": %d,\n" r.cache_points);
      Buffer.add_string buf (Printf.sprintf "      \"eig_rel_diff\": %.3e\n" r.eig_rel_diff);
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n" (if i = List.length records - 1 then "" else ",")))
    records;
  Buffer.add_string buf "  ]\n"

let () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  let records =
    if smoke then begin
      (* CI smoke: tiny symmetric-port mesh (the cross-Gramian needs
         inputs = outputs); invariants on every pass, no timing gate *)
      let sys = Dss.of_netlist (Pmtbr_circuit.Rc_mesh.generate ~rows:8 ~cols:8 ~ports:2 ()) in
      let pts = Sampling.points (Sampling.Uniform { w_max = 2e10 }) ~count:16 in
      let r = bench_case ~name:"rc-mesh-8x8-smoke" ~sys ~points:pts ~order:10 ~reps:1 in
      determinism_checks ~sys ~points:pts;
      [ r ]
    end
    else begin
      let sys = Dss.of_netlist (Pmtbr_circuit.Rc_mesh.generate ~rows:36 ~cols:36 ~ports:2 ()) in
      let pts = Sampling.points (Sampling.Uniform { w_max = 2e10 }) ~count:48 in
      let r = bench_case ~name:"rc-mesh-36x36" ~sys ~points:pts ~order:14 ~reps:3 in
      determinism_checks ~sys ~points:(Array.sub pts 0 16);
      [ r ]
    end
  in
  let json = json_of_records records in
  Util.write_json ~file:"BENCH_variants.json" json;
  if not smoke then begin
    (* acceptance gate: the compressed pencil must be >= 2x the dense
       state-dimension QR on the projection stage *)
    let r = List.hd records in
    if r.speedup < 2.0 then begin
      Printf.eprintf "[variants_bench] FAIL: %s speedup %.2fx < 2x\n%!" r.name r.speedup;
      exit 1
    end;
    Printf.eprintf "[variants_bench] OK: %s speedup %.2fx\n%!" r.name r.speedup
  end
  else Printf.eprintf "[variants_bench] smoke OK\n%!"
