(* Wall-clock benchmark of the two-tier frequency-sweep engine.

   PRs 1-4 made the sampling and reduction stages parallel; this bench
   gates the evaluation/verification stage, which is the serve path on
   the ROADMAP's north star.  Two headline comparisons:

   - full model (sparse tier): the pre-PR per-point path (a fresh
     pattern assembly + symbolic analysis + numeric LU at every grid
     point, serially — [Freq.sweep_naive]) vs the engine (one prepared
     pencil, numeric replay per point, points fanned across domains) on
     a 1089-state RC mesh over a 200-point grid;

   - reduced model (dense tier): the per-point dense complex LU (O(q^3),
     [Freq.sweep_naive]) vs the one-time Hessenberg-triangular reduction
     + O(q^2) per-point elimination, on a PMTBR ROM of the same mesh.

   Invariants asserted on every pass (both modes):

   - the engine sweep is bitwise-identical at workers 1 and 4 (the
     determinism contract CI relies on), and bitwise-identical to a
     serial map of the per-point evaluator through the same plan;
   - the sparse replay agrees with the naive fresh-factorisation sweep
     to 1e-9 relative (the replay-roundoff contract of the sampling
     engine);
   - the Hessenberg ROM sweep agrees with the dense-LU reference to
     1e-12 relative (the acceptance contract).

   Emits BENCH_sweep.json in the current directory.  Run from the repo
   root:

     dune exec bench/sweep_bench.exe            # full run, 3x gate
     dune exec bench/sweep_bench.exe -- --smoke # CI: tiny mesh,
                                                # invariants only *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_core

let now () = Unix.gettimeofday ()

let time_best ?(reps = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = now () in
    let r = f () in
    let dt = now () -. t0 in
    if dt < !best then begin
      best := dt;
      result := Some r
    end
  done;
  (Option.get !result, !best)

let bitwise_equal (a : Cmat.t) (b : Cmat.t) =
  a.Cmat.rows = b.Cmat.rows && a.Cmat.cols = b.Cmat.cols && a.Cmat.data = b.Cmat.data

let sweeps_bitwise_equal a b =
  Array.length a = Array.length b && Array.for_all2 bitwise_equal a b

let sweep_rel_diff (a : Cmat.t array) (b : Cmat.t array) =
  let scale =
    Float.max 1e-300 (Array.fold_left (fun acc h -> Float.max acc (Cmat.max_abs h)) 0.0 a)
  in
  Freq.max_abs_error a b /. scale

type record = {
  name : string;
  states : int;
  grid_points : int;
  workers : int;
  naive_wall_s : float;  (* fresh factorisation per point, serial *)
  engine_serial_wall_s : float;  (* replay/Hessenberg, workers = 1 *)
  engine_wall_s : float;  (* replay/Hessenberg, pool *)
  speedup : float;  (* naive / engine *)
  serial_speedup : float;  (* naive / engine_serial: algorithmic part *)
  rel_drift : float;  (* engine vs naive, worst entrywise relative *)
  utilisation : float;
}

(* The determinism contract, checked on the actual bench operand. *)
let invariant_checks ~name ~sys ~plan ~omegas ~tol =
  let serial = Sweep_engine.sweep ~workers:1 plan omegas in
  let par = Sweep_engine.sweep ~workers:4 ~oversubscribe:true plan omegas in
  if not (sweeps_bitwise_equal serial par) then
    failwith (name ^ ": sweep differs between workers=1 and workers=4");
  if not (sweeps_bitwise_equal serial (Array.map (Sweep_engine.eval_jw plan) omegas)) then
    failwith (name ^ ": sweep differs from the serial eval map");
  let drift = sweep_rel_diff (Freq.sweep_naive sys omegas) serial in
  if drift > tol then
    failwith (Printf.sprintf "%s: engine drift %.3e > %.0e vs the naive path" name drift tol);
  Printf.eprintf "[sweep_bench] %s: determinism OK (drift vs naive %.2e)\n%!" name drift;
  drift

let bench_case ~name ~sys ~omegas ~workers ~reps ~tol =
  let plan = Sweep_engine.prepare ~template:{ Complex.re = 0.0; im = omegas.(0) } sys in
  Printf.eprintf "[sweep_bench] %s: %d states, %d grid points (%s tier)\n%!" name
    (Dss.order sys) (Array.length omegas)
    (match Sweep_engine.tier plan with
    | Sweep_engine.Replay -> "replay"
    | Sweep_engine.Hessenberg -> "Hessenberg");
  let drift = invariant_checks ~name ~sys ~plan ~omegas ~tol in
  let _, naive_wall = time_best ~reps (fun () -> Freq.sweep_naive sys omegas) in
  let _, serial_wall = time_best ~reps (fun () -> Sweep_engine.sweep ~workers:1 plan omegas) in
  let (_, st), engine_wall =
    time_best ~reps (fun () -> Sweep_engine.sweep_stats ~workers plan omegas)
  in
  let r =
    {
      name;
      states = Dss.order sys;
      grid_points = Array.length omegas;
      workers = st.Sweep_engine.workers;
      naive_wall_s = naive_wall;
      engine_serial_wall_s = serial_wall;
      engine_wall_s = engine_wall;
      speedup = naive_wall /. engine_wall;
      serial_speedup = naive_wall /. serial_wall;
      rel_drift = drift;
      utilisation = Sweep_engine.utilisation st;
    }
  in
  Printf.eprintf
    "[sweep_bench]   naive %.4f s | engine serial %.4f s (%.2fx) | engine x%d %.4f s (%.2fx)\n%!"
    naive_wall serial_wall r.serial_speedup r.workers engine_wall r.speedup;
  r

let json_of_records records =
  Util.json_object @@ fun buf ->
  Buffer.add_string buf "  \"cases\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf "    {\n";
      Buffer.add_string buf (Printf.sprintf "      \"name\": %S,\n" r.name);
      Buffer.add_string buf (Printf.sprintf "      \"states\": %d,\n" r.states);
      Buffer.add_string buf (Printf.sprintf "      \"grid_points\": %d,\n" r.grid_points);
      Buffer.add_string buf (Printf.sprintf "      \"workers\": %d,\n" r.workers);
      Buffer.add_string buf (Printf.sprintf "      \"naive_wall_s\": %.6f,\n" r.naive_wall_s);
      Buffer.add_string buf
        (Printf.sprintf "      \"engine_serial_wall_s\": %.6f,\n" r.engine_serial_wall_s);
      Buffer.add_string buf (Printf.sprintf "      \"engine_wall_s\": %.6f,\n" r.engine_wall_s);
      Buffer.add_string buf (Printf.sprintf "      \"speedup\": %.3f,\n" r.speedup);
      Buffer.add_string buf (Printf.sprintf "      \"serial_speedup\": %.3f,\n" r.serial_speedup);
      Buffer.add_string buf (Printf.sprintf "      \"rel_drift\": %.3e,\n" r.rel_drift);
      Buffer.add_string buf (Printf.sprintf "      \"utilisation\": %.3f\n" r.utilisation);
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n" (if i = List.length records - 1 then "" else ",")))
    records;
  Buffer.add_string buf "  ]\n"

let mesh ~rows ~cols = Dss.of_netlist (Pmtbr_circuit.Rc_mesh.generate ~rows ~cols ~ports:2 ())

let rom_of sys ~order =
  let pts = Sampling.points (Sampling.Uniform { w_max = 2e10 }) ~count:order in
  (Pmtbr.reduce ~order sys pts).Pmtbr.rom

let arg_int name default =
  let v = ref default in
  Array.iteri
    (fun i a -> if a = name && i + 1 < Array.length Sys.argv then v := int_of_string Sys.argv.(i + 1))
    Sys.argv;
  !v

let () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  let assert_mc = Array.exists (fun a -> a = "--assert-multicore") Sys.argv in
  let workers = arg_int "--workers" 4 in
  let records =
    if smoke then begin
      (* CI smoke: tiny mesh + tiny ROM, every determinism invariant, no
         timing gate *)
      let sys = mesh ~rows:8 ~cols:8 in
      let om = Vec.linspace 2e8 2e10 16 in
      let full = bench_case ~name:"rc-mesh-8x8-smoke" ~sys ~omegas:om ~workers ~reps:1 ~tol:1e-9 in
      let rom =
        bench_case ~name:"rom-q12-smoke" ~sys:(rom_of sys ~order:12) ~omegas:om ~workers
          ~reps:1 ~tol:1e-12
      in
      [ full; rom ]
    end
    else begin
      (* the acceptance operand: 33x33 mesh = 1089 states, 200-point grid *)
      let sys = mesh ~rows:33 ~cols:33 in
      let om = Vec.linspace 2e8 2e10 200 in
      let full = bench_case ~name:"rc-mesh-33x33" ~sys ~omegas:om ~workers ~reps:3 ~tol:1e-9 in
      (* ROM sweep: Hessenberg vs the per-point dense LU, denser grid
         because each point is cheap *)
      let rom =
        bench_case ~name:"rom-q40" ~sys:(rom_of sys ~order:40)
          ~omegas:(Vec.linspace 2e8 2e10 2000) ~workers ~reps:3 ~tol:1e-12
      in
      [ full; rom ]
    end
  in
  let json = json_of_records records in
  Util.write_json ~file:"BENCH_sweep.json" json;
  (if assert_mc then
     (* r.workers records the pool size the engine actually ran with *)
     let max_actual = List.fold_left (fun m r -> max m r.workers) 0 records in
     if Util.enforce_multicore ~bench:"sweep_bench" ~gate:"actual_workers > 1" ~need:2 then
       if max_actual <= 1 then begin
         Printf.eprintf
           "[sweep_bench] FAIL: --assert-multicore but the pool never expanded past 1 worker\n%!";
         exit 1
       end
       else Printf.eprintf "[sweep_bench] multicore OK: pool ran %d workers\n%!" max_actual);
  if not smoke then begin
    (* acceptance gate: the engine must sweep the 1089-state mesh >= 3x
       faster than the pre-PR per-point path *)
    let full = List.hd records in
    if full.speedup < 3.0 then begin
      Printf.eprintf "[sweep_bench] FAIL: %s speedup %.2fx < 3x\n%!" full.name full.speedup;
      exit 1
    end;
    Printf.eprintf "[sweep_bench] OK: %s speedup %.2fx (ROM Hessenberg %.2fx)\n%!" full.name
      full.speedup (List.nth records 1).speedup
  end
  else Printf.eprintf "[sweep_bench] smoke OK\n%!"
