(* Wall-clock benchmark of the dense kernel layer (Par_kernel).

   PRs 1-3 made the shifted-solve stage scale; this bench gates the other
   half of the pipeline: the SVD/QR/GEMM reduction stage on a real
   1000+-state sample matrix.  The headline comparison is

   - serial cyclic Jacobi ([Svd.decompose_cyclic], the original reference:
     cyclic sweeps over the full n x c sample matrix), vs
   - the kernel-layer path ([Svd.decompose ~workers], blocked Householder
     QR preconditioning to the c x c triangular factor + round-robin
     Jacobi rounds + packed-reflector U recovery),

   with the QR (unblocked reference vs panel-blocked) and GEMM (naive vs
   row-panelled) kernels recorded alongside.

   Invariants asserted on every pass (both modes):

   - GEMM/gram and the blocked QR are bitwise-identical to the naive
     [Mat] kernels / the unblocked serial sweep, for every worker count
     tried (the determinism contract CI relies on);
   - [Svd.values] is bitwise worker-invariant;
   - the round-robin singular values agree with the serial cyclic
     reference to 1e-12 relative to sigma_max.

   Emits BENCH_dense.json in the current directory.  Run from the repo
   root:

     dune exec bench/dense_bench.exe            # full run, 2x gate
     dune exec bench/dense_bench.exe -- --smoke # CI: tiny matrix,
                                                # invariants only *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_core

let now () = Unix.gettimeofday ()

let time_best ?(reps = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = now () in
    let r = f () in
    let dt = now () -. t0 in
    if dt < !best then begin
      best := dt;
      result := Some r
    end
  done;
  (Option.get !result, !best)

let bitwise_equal (a : Mat.t) (b : Mat.t) =
  a.Mat.rows = b.Mat.rows && a.Mat.cols = b.Mat.cols && a.Mat.data = b.Mat.data

(* max_i |a_i - b_i| / max b, for descending singular-value arrays *)
let sigma_drift (a : float array) (b : float array) =
  if Array.length a <> Array.length b then infinity
  else begin
    let smax = Float.max 1e-300 (Float.max a.(0) b.(0)) in
    let worst = ref 0.0 in
    Array.iteri (fun i s -> worst := Float.max !worst (Float.abs (s -. b.(i)) /. smax)) a;
    !worst
  end

type record = {
  name : string;
  states : int;
  sample_columns : int;
  workers : int;
  svd_cyclic_wall_s : float;
  svd_kernel_wall_s : float;
  svd_speedup : float;
  qr_reference_wall_s : float;
  qr_blocked_wall_s : float;
  qr_speedup : float;
  gemm_naive_wall_s : float;
  gemm_kernel_wall_s : float;
  gemm_speedup : float;
  sigma_rel_drift : float;
}

(* The determinism contract, checked on the actual bench operand: every
   kernel bitwise-identical to its serial reference at every worker
   count, and the round-robin sigma within 1e-12 relative of the cyclic
   reference. *)
let invariant_checks ~name ~(zw : Mat.t) ~workers =
  let small = Mat.gram zw in
  List.iter
    (fun w ->
      if not (bitwise_equal (Par_kernel.mul ~workers:w (Mat.transpose zw) zw) (Mat.mul (Mat.transpose zw) zw))
      then failwith (Printf.sprintf "%s: Par_kernel.mul differs from Mat.mul at workers=%d" name w);
      if not (bitwise_equal (Par_kernel.gram ~workers:w zw) small) then
        failwith (Printf.sprintf "%s: Par_kernel.gram differs from Mat.gram at workers=%d" name w);
      let q, r = Qr.thin ~workers:w zw in
      let q_ref, r_ref = Qr.thin_reference zw in
      if not (bitwise_equal q q_ref && bitwise_equal r r_ref) then
        failwith (Printf.sprintf "%s: blocked QR differs from reference at workers=%d" name w))
    [ 1; workers ];
  let s1 = Svd.values ~workers:1 zw in
  let sw = Svd.values ~workers zw in
  if s1 <> sw then failwith (name ^ ": Svd.values is not worker-invariant");
  let drift = sigma_drift sw (Svd.values_cyclic zw) in
  if drift > 1e-12 then
    failwith (Printf.sprintf "%s: round-robin sigma drift %.3e > 1e-12" name drift);
  Printf.eprintf "[dense_bench] %s: determinism OK (sigma drift %.2e)\n%!" name drift;
  drift

let bench_case ~name ~sys ~points ~workers ~reps =
  (* the reduction stage's actual operand: the realified weighted sample
     matrix of a PMTBR run (sampling stage outside the timed region) *)
  let zw = Zmat.build sys points in
  Printf.eprintf "[dense_bench] %s: %d states, %d sample columns\n%!" name zw.Mat.rows
    zw.Mat.cols;
  let drift = invariant_checks ~name ~zw ~workers in
  let cyclic, svd_cyclic_wall = time_best ~reps (fun () -> Svd.decompose_cyclic zw) in
  let kernel, svd_kernel_wall = time_best ~reps (fun () -> Svd.decompose ~workers zw) in
  ignore (sigma_drift cyclic.Svd.sigma kernel.Svd.sigma);
  let _, qr_reference_wall = time_best ~reps (fun () -> Qr.thin_reference zw) in
  let _, qr_blocked_wall = time_best ~reps (fun () -> Qr.thin ~workers zw) in
  let zwt = Mat.transpose zw in
  let _, gemm_naive_wall = time_best ~reps (fun () -> Mat.mul zwt zw) in
  let _, gemm_kernel_wall = time_best ~reps (fun () -> Par_kernel.mul ~workers zwt zw) in
  let r =
    {
      name;
      states = zw.Mat.rows;
      sample_columns = zw.Mat.cols;
      workers;
      svd_cyclic_wall_s = svd_cyclic_wall;
      svd_kernel_wall_s = svd_kernel_wall;
      svd_speedup = svd_cyclic_wall /. svd_kernel_wall;
      qr_reference_wall_s = qr_reference_wall;
      qr_blocked_wall_s = qr_blocked_wall;
      qr_speedup = qr_reference_wall /. qr_blocked_wall;
      gemm_naive_wall_s = gemm_naive_wall;
      gemm_kernel_wall_s = gemm_kernel_wall;
      gemm_speedup = gemm_naive_wall /. gemm_kernel_wall;
      sigma_rel_drift = drift;
    }
  in
  Printf.eprintf
    "[dense_bench]   SVD cyclic %.4f s, kernel %.4f s: %.2fx | QR %.4f -> %.4f s | GEMM %.4f \
     -> %.4f s\n\
     %!"
    svd_cyclic_wall svd_kernel_wall r.svd_speedup qr_reference_wall qr_blocked_wall
    gemm_naive_wall gemm_kernel_wall;
  r

let json_of_records records =
  Util.json_object @@ fun buf ->
  Buffer.add_string buf "  \"cases\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf "    {\n";
      Buffer.add_string buf (Printf.sprintf "      \"name\": %S,\n" r.name);
      Buffer.add_string buf (Printf.sprintf "      \"states\": %d,\n" r.states);
      Buffer.add_string buf (Printf.sprintf "      \"sample_columns\": %d,\n" r.sample_columns);
      Buffer.add_string buf (Printf.sprintf "      \"workers\": %d,\n" r.workers);
      Buffer.add_string buf
        (Printf.sprintf "      \"svd_cyclic_wall_s\": %.6f,\n" r.svd_cyclic_wall_s);
      Buffer.add_string buf
        (Printf.sprintf "      \"svd_kernel_wall_s\": %.6f,\n" r.svd_kernel_wall_s);
      Buffer.add_string buf (Printf.sprintf "      \"svd_speedup\": %.3f,\n" r.svd_speedup);
      Buffer.add_string buf
        (Printf.sprintf "      \"qr_reference_wall_s\": %.6f,\n" r.qr_reference_wall_s);
      Buffer.add_string buf
        (Printf.sprintf "      \"qr_blocked_wall_s\": %.6f,\n" r.qr_blocked_wall_s);
      Buffer.add_string buf (Printf.sprintf "      \"qr_speedup\": %.3f,\n" r.qr_speedup);
      Buffer.add_string buf
        (Printf.sprintf "      \"gemm_naive_wall_s\": %.6f,\n" r.gemm_naive_wall_s);
      Buffer.add_string buf
        (Printf.sprintf "      \"gemm_kernel_wall_s\": %.6f,\n" r.gemm_kernel_wall_s);
      Buffer.add_string buf (Printf.sprintf "      \"gemm_speedup\": %.3f,\n" r.gemm_speedup);
      Buffer.add_string buf
        (Printf.sprintf "      \"sigma_rel_drift\": %.3e\n" r.sigma_rel_drift);
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n" (if i = List.length records - 1 then "" else ",")))
    records;
  Buffer.add_string buf "  ]\n"

let () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  let records =
    if smoke then begin
      (* CI smoke: tiny mesh, every determinism invariant, no timing gate *)
      let sys = Dss.of_netlist (Pmtbr_circuit.Rc_mesh.generate ~rows:8 ~cols:8 ~ports:2 ()) in
      let pts = Sampling.points (Sampling.Uniform { w_max = 2e10 }) ~count:8 in
      [ bench_case ~name:"rc-mesh-8x8-smoke" ~sys ~points:pts ~workers:4 ~reps:1 ]
    end
    else begin
      (* 33x33 mesh = 1089 states; 24 complex points realify to 96 sample
         columns — the tall-skinny shape every PMTBR reduction SVDs *)
      let sys = Dss.of_netlist (Pmtbr_circuit.Rc_mesh.generate ~rows:33 ~cols:33 ~ports:2 ()) in
      let pts = Sampling.points (Sampling.Uniform { w_max = 2e10 }) ~count:24 in
      [ bench_case ~name:"rc-mesh-33x33" ~sys ~points:pts ~workers:4 ~reps:3 ]
    end
  in
  let json = json_of_records records in
  Util.write_json ~file:"BENCH_dense.json" json;
  if not smoke then begin
    (* acceptance gate: the kernel-layer SVD must be >= 2x the serial
       cyclic reference on the reduction-stage operand *)
    let r = List.hd records in
    if r.svd_speedup < 2.0 then begin
      Printf.eprintf "[dense_bench] FAIL: %s SVD speedup %.2fx < 2x\n%!" r.name r.svd_speedup;
      exit 1
    end;
    Printf.eprintf "[dense_bench] OK: %s SVD speedup %.2fx\n%!" r.name r.svd_speedup
  end
  else Printf.eprintf "[dense_bench] smoke OK\n%!"
