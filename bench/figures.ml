(* Regeneration of every figure in the paper's evaluation (Section VI).
   Each function prints the same series the paper plots; EXPERIMENTS.md
   records how the shapes compare. *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_circuit
open Pmtbr_signal
open Pmtbr_core

(* ------------------------------------------------------------------ *)
(* Fig. 3: TBR error bounds for a 12x12 RC mesh vs number of inputs    *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  Util.header "FIG 3" "TBR error bound of 12x12 RC mesh vs number of inputs";
  let input_counts = [ 1; 2; 4; 8; 16; 32; 64 ] in
  Util.note "normalised Glover bound 2*sum(tail hsv) / (2*sum(all hsv)) per order";
  (* one mesh per port count; grid and element values identical, ports
     nested, so only B changes.  A is shared via the symmetrised form. *)
  let base =
    (* grid grounded only through 50-ohm driver terminations at the ports:
       the extracted-net situation in which the controllable space is rich *)
    Dss.of_netlist (Rc_mesh.generate ~rows:12 ~cols:12 ~ports:64 ~r_port_term:50.0 ())
  in
  let ssym = Dss.symmetrize_rc base in
  let a = Dss.a_dense ssym in
  let b64 = Dss.b_matrix ssym in
  let bs = List.map (fun p -> Mat.sub_cols b64 0 p) input_counts in
  (* symmetric case: hsv are the eigenvalues of the (single) Gramian *)
  let fact = Lyap.factor a in
  let hsvs =
    List.map
      (fun b ->
        let x = Lyap.solve_with fact (Mat.mul b (Mat.transpose b)) in
        Array.map (fun l -> Float.max l 0.0) (Eig_sym.eigenvalues x))
      bs
  in
  let orders = List.init 17 (fun i -> i * 5) in
  Util.row
    ("order" :: List.map (fun p -> Printf.sprintf "p=%d" p) input_counts);
  List.iter
    (fun q ->
      let cells =
        List.map
          (fun hsv ->
            let total = Tbr.error_bound hsv 0 in
            Util.fmt_e (Tbr.error_bound hsv q /. Float.max total 1e-300))
          hsvs
      in
      Util.row (string_of_int q :: cells))
    orders;
  Util.note "order needed for a 20%% relative error bound:";
  List.iteri
    (fun i p ->
      let hsv = List.nth hsvs i in
      let total = Tbr.error_bound hsv 0 in
      let rec search q =
        if q >= Array.length hsv then q
        else if Tbr.error_bound hsv q <= 0.2 *. total then q
        else search (q + 1)
      in
      Printf.printf "#   inputs=%-3d order=%d\n" p (search 0))
    input_counts

(* ------------------------------------------------------------------ *)
(* The clock-tree model shared by Figs. 5 and 6                         *)
(* ------------------------------------------------------------------ *)

let clock_sys () = Dss.symmetrize_rc (Dss.of_netlist (Clock_tree.generate ~levels:7 ()))
let clock_points count = Sampling.points (Sampling.Log { w_min = 1e6; w_max = 1e13 }) ~count

(* Fig. 5: exact vs PMTBR-estimated Hankel singular values (50 samples) *)
let fig5 () =
  Util.header "FIG 5" "Hankel singular values: exact vs PMTBR estimate (clock tree)";
  let sys = clock_sys () in
  Util.note "clock tree with %d states, 50 log-spaced samples" (Dss.order sys);
  let a, b, c = Dss.to_standard sys in
  let exact = Tbr.hankel_singular_values ~a ~b ~c () in
  let est = Pmtbr.hankel_estimates sys (clock_points 50) in
  Util.row [ "index"; "exact_hsv"; "pmtbr_estimate" ];
  for i = 0 to min 39 (min (Array.length est) (Array.length exact) - 1) do
    Util.row [ string_of_int i; Util.fmt_e exact.(i); Util.fmt_e est.(i) ]
  done

(* Fig. 6: angle between the 2nd principal vector of the Gramian and the
   leading 4-dimensional PMTBR subspace, vs number of samples *)
let fig6 () =
  Util.header "FIG 6" "angle(2nd principal vector, leading PMTBR subspace) vs samples";
  let sys = clock_sys () in
  let a, b, _ = Dss.to_standard sys in
  let x = Gramian.controllability ~a ~b () in
  let _, vx = Eig_sym.decompose x in
  let second = Mat.col vx 1 in
  Util.row [ "samples"; "angle_rad" ];
  List.iter
    (fun count ->
      let r = Pmtbr.reduce ~order:4 sys (clock_points count) in
      let angle = Subspace.vector_to_subspace_angle second r.Pmtbr.basis in
      Util.row [ string_of_int count; Util.fmt_e angle ])
    [ 4; 6; 8; 12; 16; 24; 32; 48; 64 ]

(* ------------------------------------------------------------------ *)
(* The spiral-inductor model shared by Figs. 7-9                        *)
(* ------------------------------------------------------------------ *)

let spiral_sys () = Dss.of_netlist (Spiral.generate ())
let spiral_band = Spiral.sample_band ()

let spiral_grid () = Vec.linspace (spiral_band /. 100.0) spiral_band 60

(* Fig. 7: error in the resistance (Re Z), PRIMA vs PMTBR, vs order *)
let fig7 () =
  Util.header "FIG 7" "spiral inductor: resistance error, PRIMA vs PMTBR, vs order";
  let sys = spiral_sys () in
  Util.note "spiral model with %d states, band to %.2f GHz, 30 samples" (Dss.order sys)
    (Util.ghz spiral_band);
  let om = spiral_grid () in
  let href = Freq.sweep sys om in
  let pts = Sampling.points (Sampling.Uniform { w_max = spiral_band }) ~count:30 in
  Util.row [ "order"; "prima_err"; "pmtbr_err" ];
  List.iter
    (fun q ->
      (* the ROM sweeps stream against the one reference; only the
         full-model responses are ever held as an array *)
      let pm = Pmtbr.reduce ~order:q sys pts in
      let epm = Freq.stream_max_real_part_rel_error (Freq.compare_sweep pm.Pmtbr.rom om ~ref_:href) in
      let pr = Prima.reduce_to_order sys ~s0:(spiral_band /. 20.0) ~order:q in
      let epr = Freq.stream_max_real_part_rel_error (Freq.compare_sweep pr.Prima.rom om ~ref_:href) in
      Util.row [ string_of_int q; Util.fmt_e epr; Util.fmt_e epm ])
    [ 2; 4; 6; 8; 10; 12; 14; 16; 18; 20 ]

(* Fig. 8: convergence of the 5 largest singular values of ZW with the
   number of (uniform, "rectangle rule") sample points *)
let fig8 () =
  Util.header "FIG 8" "spiral inductor: 5 largest singular values of ZW vs samples";
  let sys = spiral_sys () in
  Util.row [ "samples"; "s1"; "s2"; "s3"; "s4"; "s5" ];
  List.iter
    (fun count ->
      let pts = Sampling.points (Sampling.Uniform { w_max = spiral_band }) ~count in
      let s = Pmtbr.sample_singular_values sys pts in
      Util.row (string_of_int count :: List.init 5 (fun i -> Util.fmt_e s.(i))))
    [ 10; 20; 30; 40; 60; 80; 100; 140; 200 ]

(* Fig. 9: transfer-function error vs order, with the singular-value error
   estimates, at 100 sample points *)
let fig9 () =
  Util.header "FIG 9" "spiral inductor: error and error estimate vs order (100 samples)";
  let sys = spiral_sys () in
  let om = spiral_grid () in
  let href = Freq.sweep sys om in
  let pts = Sampling.points (Sampling.Uniform { w_max = spiral_band }) ~count:100 in
  let full = Pmtbr.reduce ~tol:1e-16 sys pts in
  let sigma = full.Pmtbr.singular_values in
  let est = Error_est.normalized_curve sigma in
  Util.row [ "order"; "actual_err"; "estimate" ];
  List.iter
    (fun q ->
      let r = Pmtbr.reduce ~order:q sys pts in
      let err = Freq.stream_max_rel_error (Freq.compare_sweep r.Pmtbr.rom om ~ref_:href) in
      Util.row [ string_of_int q; Util.fmt_e err; Util.fmt_e est.(min q (Array.length est - 1)) ])
    [ 2; 4; 6; 8; 10; 12; 14; 16; 18; 20 ]

(* ------------------------------------------------------------------ *)
(* Fig. 10: multipoint projection vs PMTBR on the PEEC example          *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  Util.header "FIG 10" "PEEC tank chain: multipoint projection vs PMTBR, error vs order";
  let sys = Dss.of_netlist (Peec.generate ~cells:10 ~r_ser:1.0 ~r_shunt:400.0 ()) in
  let w_max = Peec.sample_band () /. 2.0 in
  Util.note "PEEC-like model with %d states, band to %.2f GHz" (Dss.order sys) (Util.ghz w_max);
  let om = Vec.linspace (w_max /. 200.0) w_max 80 in
  let href = Freq.sweep sys om in
  let pts = Sampling.points (Sampling.Uniform { w_max }) ~count:40 in
  let spread = Sampling.spread_order pts in
  Util.row [ "order"; "mpproj_err"; "pmtbr_err" ];
  List.iter
    (fun q ->
      (* multipoint: q/2 complex points -> q real columns, all kept *)
      let mp = Multipoint.reduce sys spread ~count:(max 1 (q / 2)) in
      let emp = Freq.stream_max_rel_error (Freq.compare_sweep mp.Multipoint.rom om ~ref_:href) in
      let pm = Pmtbr.reduce ~order:q sys pts in
      let epm = Freq.stream_max_rel_error (Freq.compare_sweep pm.Pmtbr.rom om ~ref_:href) in
      Util.row [ string_of_int q; Util.fmt_e emp; Util.fmt_e epm ])
    [ 4; 8; 12; 16; 20; 22; 24; 26; 28; 32 ]

(* ------------------------------------------------------------------ *)
(* Fig. 11: frequency-selective PMTBR vs TBR on the connector           *)
(* ------------------------------------------------------------------ *)

let fig11 () =
  Util.header "FIG 11" "connector: |H| exact vs TBR(30) vs band-limited PMTBR(18)";
  let sys = Dss.of_netlist (Connector.generate ()) in
  let w8 = Connector.band_of_interest and w20 = Connector.plot_band in
  Util.note "connector model with %d states; PMTBR sampled on 0-8 GHz only" (Dss.order sys);
  let tbr = Tbr.reduce_dss ~order:30 sys in
  let pm =
    Freq_selective.reduce ~order:18 sys
      ~bands:[ Freq_selective.band ~lo:0.0 ~hi:w8 ]
      ~count:40
  in
  let om = Array.init 60 (fun i -> w20 *. float_of_int (i + 1) /. 60.0) in
  let h_ref = Freq.sweep sys om in
  let h_tbr = Freq.sweep tbr.Tbr.rom om in
  let h_pm = Freq.sweep pm.Pmtbr.rom om in
  let mag h = Complex.norm (Cmat.get h 0 0) in
  Util.row [ "f_GHz"; "exact"; "tbr30"; "pmtbr18" ];
  Array.iteri
    (fun i w ->
      Util.row
        [
          Printf.sprintf "%.2f" (Util.ghz w);
          Util.fmt_e (mag h_ref.(i));
          Util.fmt_e (mag h_tbr.(i));
          Util.fmt_e (mag h_pm.(i));
        ])
    om;
  (* in-band error summary *)
  let in_band = Array.to_list om |> List.filteri (fun i _ -> om.(i) <= w8) in
  let idx = List.length in_band in
  let sub a = Array.sub a 0 idx in
  Printf.printf "# in-band (<=8 GHz) rel err: TBR30 = %s, PMTBR18 = %s\n"
    (Util.fmt_e (Freq.max_rel_error (sub h_ref) (sub h_tbr)))
    (Util.fmt_e (Freq.max_rel_error (sub h_ref) (sub h_pm)))

(* ------------------------------------------------------------------ *)
(* Figs. 12-14: input-correlated reduction of a 32-port RC mesh         *)
(* ------------------------------------------------------------------ *)

let mesh_ports = 32
let mesh_period = 2e-9
let mesh_t1 = 10e-9
let mesh_dt = 0.02e-9

let mesh_sys () =
  Dss.of_netlist (Rc_mesh.generate ~rows:12 ~cols:12 ~ports:mesh_ports ~r:100.0 ~r_leak:1e5 ())

(* Per-port drive strengths: the ports all carry the same kind of signal but
   with different (fixed) amplitudes and polarities, as signals from a
   common functional block would. *)
let mesh_amplitudes =
  let rng = Rng.create 7 in
  Array.init mesh_ports (fun _ ->
      1e-3
      *. (if Rng.float rng < 0.3 then -1.0 else 1.0)
      *. Rng.uniform rng ~lo:0.3 ~hi:1.5)

(* Input bank of the in-class ensemble (square waves, 10% timing dither). *)
let mesh_waves ~seed =
  Waveform.dithered_square_bank ~rng:(Rng.create seed) ~ports:mesh_ports ~period:mesh_period
    ~dither:0.1

let mesh_scale waves = Array.mapi (fun i w t -> mesh_amplitudes.(i mod mesh_ports) *. w t) waves

let fig12 () =
  Util.header "FIG 12" "input waveform samples: dithered square waves";
  let waves = mesh_waves ~seed:7 in
  Util.row [ "t_ns"; "u1"; "u2"; "u3" ];
  for k = 0 to 60 do
    let t = mesh_period *. 2.0 *. float_of_int k /. 60.0 in
    Util.row
      (Printf.sprintf "%.3f" (t /. 1e-9)
      :: List.init 3 (fun i -> Printf.sprintf "%.1f" (waves.(i) t)))
  done

(* Build the 15-state models once, then simulate against in-class (Fig. 13)
   and out-of-class (Fig. 14) inputs. *)
let mesh_models () =
  let sys = mesh_sys () in
  let model_waves = mesh_scale (mesh_waves ~seed:7) in
  let inputs = Waveform.sample_matrix model_waves ~t0:0.0 ~t1:(4.0 *. mesh_period) ~samples:400 in
  let w_max = 2.0 *. Float.pi *. 10.0 /. mesh_period in
  let pts = Sampling.points (Sampling.Uniform { w_max }) ~count:12 in
  let ic = Input_correlated.reduce ~order:15 ~input_tol:1e-3 sys ~inputs ~points:pts ~draws:40 in
  let tbr = Tbr.reduce_dss ~order:15 sys in
  (sys, ic, tbr)

let run_mesh_comparison ~fig ~title ~sim_waves (sys, ic, tbr) =
  Util.header fig title;
  let u t = Array.map (fun w -> w t) sim_waves in
  let sim s = Tdsim.simulate s ~t0:0.0 ~t1:mesh_t1 ~dt:mesh_dt ~u in
  let full = sim sys in
  let r_ic = sim ic.Input_correlated.rom in
  let r_tbr = sim tbr.Tbr.rom in
  Util.note "15-state models; output shown at port 0 (V)";
  Util.row [ "t_ns"; "full"; "ic_pmtbr15"; "tbr15" ];
  let steps = Array.length full.Tdsim.times in
  let stride = max 1 (steps / 50) in
  let k = ref 0 in
  while !k < steps do
    Util.row
      [
        Printf.sprintf "%.3f" (full.Tdsim.times.(!k) /. 1e-9);
        Util.fmt_e (Mat.get full.Tdsim.outputs 0 !k);
        Util.fmt_e (Mat.get r_ic.Tdsim.outputs 0 !k);
        Util.fmt_e (Mat.get r_tbr.Tdsim.outputs 0 !k);
      ];
    k := !k + stride
  done;
  let scale = Mat.max_abs full.Tdsim.outputs in
  let rms_all ref_res red =
    let p = ref_res.Tdsim.outputs.Mat.rows in
    let acc = ref 0.0 in
    for row = 0 to p - 1 do
      let e = Tdsim.output_rms_error ~row ref_res red in
      acc := !acc +. (e *. e)
    done;
    sqrt (!acc /. float_of_int p)
  in
  Printf.printf "# rms error over all ports / max|y|: ic_pmtbr15 = %s, tbr15 = %s\n"
    (Util.fmt_e (rms_all full r_ic /. scale))
    (Util.fmt_e (rms_all full r_tbr /. scale))

let fig13_14 () =
  let models = mesh_models () in
  run_mesh_comparison ~fig:"FIG 13"
    ~title:"32-port RC mesh transient: in-class inputs (correlated squares)"
    ~sim_waves:(mesh_scale (mesh_waves ~seed:7)) models;
  run_mesh_comparison ~fig:"FIG 14"
    ~title:"32-port RC mesh transient: out-of-class inputs (re-randomised phases)"
    ~sim_waves:
      (mesh_scale
         (Waveform.scrambled_square_bank ~rng:(Rng.create 99) ~ports:mesh_ports
            ~period:mesh_period ~dither:0.1))
    models

(* ------------------------------------------------------------------ *)
(* Fig. 15: 150-port substrate network                                  *)
(* ------------------------------------------------------------------ *)

let substrate_inputs ~rng ~ports =
  (* bulk-current-like signals: a few shared templates (clock feedthrough,
     switching bursts) mixed per port *)
  let templates =
    [|
      (fun t -> sin (2.0 *. Float.pi *. t /. 4e-9));
      (fun t -> Float.max 0.0 (sin (2.0 *. Float.pi *. t /. 1e-9)) ** 3.0);
      Waveform.dithered_square ~rng ~period:2e-9 ~dither:0.05 ();
    |]
  in
  Array.map (fun w t -> 1e-3 *. w t) (Waveform.correlated_ensemble ~rng ~ports ~templates ~noise:0.002)

let fig15 () =
  Util.header "FIG 15" "150-port substrate: full vs 4- and 8-state reduced transients";
  let nl = Substrate.generate ~ports:150 ~internal:50 ~seed:11 () in
  let sys = Dss.of_netlist nl in
  Util.note "substrate network with %d states, 150 ports" (Dss.order sys);
  let rng = Rng.create 21 in
  let waves = substrate_inputs ~rng ~ports:150 in
  let inputs = Waveform.sample_matrix waves ~t0:0.0 ~t1:20e-9 ~samples:400 in
  let w_corner = Substrate.corner_frequency () in
  let pts = Sampling.points (Sampling.Log { w_min = w_corner /. 100.0; w_max = w_corner *. 100.0 }) ~count:8 in
  let reduce order =
    Input_correlated.reduce_deterministic ~order ~input_tol:1e-3 sys ~inputs ~points:pts
  in
  let r4 = reduce 4 and r8 = reduce 8 in
  let u t = Array.map (fun w -> w t) waves in
  let sim s = Tdsim.simulate s ~t0:0.0 ~t1:20e-9 ~dt:0.02e-9 ~u in
  let full = sim sys in
  let s4 = sim r4.Input_correlated.rom and s8 = sim r8.Input_correlated.rom in
  Util.row [ "t_ns"; "full"; "states4"; "states8" ];
  let steps = Array.length full.Tdsim.times in
  let stride = max 1 (steps / 50) in
  let k = ref 0 in
  while !k < steps do
    Util.row
      [
        Printf.sprintf "%.3f" (full.Tdsim.times.(!k) /. 1e-9);
        Util.fmt_e (Mat.get full.Tdsim.outputs 0 !k);
        Util.fmt_e (Mat.get s4.Tdsim.outputs 0 !k);
        Util.fmt_e (Mat.get s8.Tdsim.outputs 0 !k);
      ];
    k := !k + stride
  done;
  let scale = Mat.max_abs full.Tdsim.outputs in
  Printf.printf "# rms error / max|y|: 4 states = %s, 8 states = %s (compression %dx)\n"
    (Util.fmt_e (Tdsim.output_rms_error full s4 /. scale))
    (Util.fmt_e (Tdsim.output_rms_error full s8 /. scale))
    (Dss.order sys / 8)

(* ------------------------------------------------------------------ *)
(* Fig. 16: 1000-port substrate, error estimate vs model order          *)
(* ------------------------------------------------------------------ *)

let fig16 () =
  Util.header "FIG 16" "1000-port substrate: normalised error estimate vs model order";
  let nl = Substrate.generate ~ports:1000 ~internal:100 ~seed:13 () in
  let sys = Dss.of_netlist nl in
  Util.note "substrate network with %d states, 1000 ports" (Dss.order sys);
  let rng = Rng.create 31 in
  let waves = substrate_inputs ~rng ~ports:1000 in
  let inputs = Waveform.sample_matrix waves ~t0:0.0 ~t1:20e-9 ~samples:300 in
  let w_corner = Substrate.corner_frequency () in
  let pts = Sampling.points (Sampling.Log { w_min = w_corner /. 100.0; w_max = w_corner *. 100.0 }) ~count:8 in
  let r, dt =
    Util.time_it (fun () ->
        Input_correlated.reduce_deterministic ~tol:1e-12 ~input_tol:1e-3 sys ~inputs ~points:pts)
  in
  Util.note "sampling + SVD took %.2f s; retained input rank %d" dt r.Input_correlated.input_rank;
  let est = Error_est.normalized_curve r.Input_correlated.singular_values in
  Util.row [ "order"; "normalised_error_estimate" ];
  let q = ref 0 in
  while !q < min 60 (Array.length est) do
    Util.row [ string_of_int !q; Util.fmt_e est.(!q) ];
    q := !q + 2
  done;
  let q_est, met = Error_est.order_for r.Input_correlated.singular_values ~tol:1e-4 in
  Printf.printf "# order for 1e-4 estimate: %d%s (model compression %dx)\n" q_est
    (if met then "" else " [estimate never meets 1e-4]")
    (Dss.order sys / max 1 q_est)

let all : (string * (unit -> unit)) list =
  [
    ("fig3", fig3);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13_14);
    ("fig15", fig15);
    ("fig16", fig16);
  ]
