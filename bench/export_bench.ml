(* Benchmark of the realizable-ROM pipeline added in PR 8:

   - streaming-reader throughput: a >= 100k-element rc-mesh netlist is
     rendered once and re-parsed through [Spice.parse_string] (line-at-a-
     time tokenizer feeding the canonical IR), reporting elements/s and
     MB/s;
   - the one-Gramian passive reduction against the two-sided baseline on
     a 30-port substrate: the passive scheme factors ONE Gramian through
     the shared multi-shift handle, so its shifted-solve RHS-column count
     must be <= 0.55x the two-sided [Tbr_lr] count (the remainder is the
     Penzl shift warm-up both methods pay once);
   - the synthesis roundtrip: the reduced model realized as an R/C
     netlist must re-parse, stamp and sweep back to the in-memory ROM
     within 1e-9, and the rendering must be generation-stable
     (render -> parse -> render is byte-identical).

   Emits BENCH_export.json in the current directory.  Run from the repo
   root:

     dune exec bench/export_bench.exe            # full run, all gates
     dune exec bench/export_bench.exe -- --smoke # CI: small operands,
                                                 # invariants only *)

open Pmtbr_lti

let now () = Unix.gettimeofday ()

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("[export_bench] FAIL: " ^ msg); exit 1) fmt

(* ------------------------------------------------------------------ *)
(* Streaming parse throughput                                          *)
(* ------------------------------------------------------------------ *)

type parse_record = {
  mesh : int;
  elements : int;
  bytes : int;
  parse_wall_s : float;
  elements_per_s : float;
  mb_per_s : float;
}

let parse_case ~n ~reps =
  let nl = Pmtbr_circuit.Rc_mesh.generate ~rows:n ~cols:n ~ports:4 () in
  let text = Pmtbr_circuit.Spice.to_string nl in
  let r, c, l, k = Pmtbr_circuit.Netlist.stats nl in
  let elements = r + c + l + k in
  let bytes = String.length text in
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = now () in
    ignore (Pmtbr_circuit.Spice.ir (Pmtbr_circuit.Spice.parse_string text));
    best := Float.min !best (now () -. t0)
  done;
  let rec_ =
    {
      mesh = n;
      elements;
      bytes;
      parse_wall_s = !best;
      elements_per_s = float_of_int elements /. !best;
      mb_per_s = float_of_int bytes /. 1048576.0 /. !best;
    }
  in
  Printf.eprintf "[export_bench] parse %dx%d mesh: %d elements, %.1f MB, %.4f s (%.0f el/s)\n%!"
    n n elements (float_of_int bytes /. 1048576.0) !best rec_.elements_per_s;
  rec_

(* ------------------------------------------------------------------ *)
(* One-Gramian passive reduction vs the two-sided baseline             *)
(* ------------------------------------------------------------------ *)

type passive_record = {
  states : int;
  ports : int;
  order : int;
  passive_col_solves : int;
  tbr_lr_col_solves : int;
  col_solve_ratio : float;
  passive_wall_s : float;
  tbr_lr_wall_s : float;
  rom_cards : int;  (* elements of the synthesized netlist *)
  roundtrip_drift : float;  (* re-parsed ROM vs in-memory ROM, worst rel *)
  render_stable : bool;  (* render -> parse -> render is byte-identical *)
}

let passive_case ~ports ~internal ~order ~ratio_gate =
  let nl = Pmtbr_circuit.Substrate.generate ~ports ~internal ~seed:11 () in
  let sys = Dss.of_netlist nl in
  let t0 = now () in
  let red, pst = Tbr_passive.reduce_stats ~order sys in
  let passive_wall = now () -. t0 in
  let t0 = now () in
  let _, lst = Tbr_lr.reduce_stats ~order sys in
  let lr_wall = now () -. t0 in
  if pst.Tbr_passive.symbolic <> 1 then
    fail "%d symbolic analyses in the passive reduction, contract is 1" pst.Tbr_passive.symbolic;
  let ratio =
    float_of_int pst.Tbr_passive.col_solves /. float_of_int lst.Tbr_lr.col_solves
  in
  if ratio > ratio_gate then
    fail "col_solves ratio %.3f > %.2f (passive %d vs two-sided %d RHS columns)" ratio
      ratio_gate pst.Tbr_passive.col_solves lst.Tbr_lr.col_solves;
  (* synthesis roundtrip: realize, render, re-parse, re-render, sweep *)
  let ir = Tbr_passive.synthesize red in
  let gen1 = Pmtbr_circuit.Spice_ir.render ir in
  let reparsed = Pmtbr_circuit.Spice.parse_string gen1 in
  let gen2 =
    Pmtbr_circuit.Spice_ir.render
      (Pmtbr_circuit.Spice_ir.canonical (Pmtbr_circuit.Spice.ir reparsed))
  in
  let render_stable = String.equal gen1 gen2 in
  if not render_stable then fail "synthesized netlist is not render-stable across generations";
  let back = Dss.of_netlist (Pmtbr_circuit.Spice.netlist reparsed) in
  let omegas = Array.init 13 (fun i -> 10.0 ** (3.0 +. (float_of_int i /. 2.0))) in
  let ref_ = Freq.sweep red.Tbr_passive.rom omegas in
  let drift = Freq.stream_max_rel_error (Freq.compare_sweep back omegas ~ref_) in
  if drift > 1e-9 then fail "roundtrip drift %.3e > 1e-9" drift;
  let r, c, l, k = Pmtbr_circuit.Netlist.stats (Pmtbr_circuit.Spice.netlist reparsed) in
  let rec_ =
    {
      states = Dss.order sys;
      ports;
      order;
      passive_col_solves = pst.Tbr_passive.col_solves;
      tbr_lr_col_solves = lst.Tbr_lr.col_solves;
      col_solve_ratio = ratio;
      passive_wall_s = passive_wall;
      tbr_lr_wall_s = lr_wall;
      rom_cards = r + c + l + k;
      roundtrip_drift = drift;
      render_stable;
    }
  in
  Printf.eprintf
    "[export_bench] substrate %d ports, %d states -> order %d: col ratio %.3f (%d vs %d), \
     drift %.2e, %d ROM cards\n%!"
    ports rec_.states order ratio rec_.passive_col_solves rec_.tbr_lr_col_solves drift
    rec_.rom_cards;
  rec_

(* ------------------------------------------------------------------ *)

let json_of ~parse ~passive =
  Util.json_object @@ fun buf ->
  Buffer.add_string buf "  \"parse\": {\n";
  Buffer.add_string buf (Printf.sprintf "    \"mesh\": %d,\n" parse.mesh);
  Buffer.add_string buf (Printf.sprintf "    \"elements\": %d,\n" parse.elements);
  Buffer.add_string buf (Printf.sprintf "    \"bytes\": %d,\n" parse.bytes);
  Buffer.add_string buf (Printf.sprintf "    \"parse_wall_s\": %.6f,\n" parse.parse_wall_s);
  Buffer.add_string buf (Printf.sprintf "    \"elements_per_s\": %.0f,\n" parse.elements_per_s);
  Buffer.add_string buf (Printf.sprintf "    \"mb_per_s\": %.2f\n" parse.mb_per_s);
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"passive\": {\n";
  Buffer.add_string buf (Printf.sprintf "    \"states\": %d,\n" passive.states);
  Buffer.add_string buf (Printf.sprintf "    \"ports\": %d,\n" passive.ports);
  Buffer.add_string buf (Printf.sprintf "    \"order\": %d,\n" passive.order);
  Buffer.add_string buf
    (Printf.sprintf "    \"passive_col_solves\": %d,\n" passive.passive_col_solves);
  Buffer.add_string buf
    (Printf.sprintf "    \"tbr_lr_col_solves\": %d,\n" passive.tbr_lr_col_solves);
  Buffer.add_string buf
    (Printf.sprintf "    \"col_solve_ratio\": %.4f,\n" passive.col_solve_ratio);
  Buffer.add_string buf (Printf.sprintf "    \"passive_wall_s\": %.6f,\n" passive.passive_wall_s);
  Buffer.add_string buf (Printf.sprintf "    \"tbr_lr_wall_s\": %.6f,\n" passive.tbr_lr_wall_s);
  Buffer.add_string buf (Printf.sprintf "    \"rom_cards\": %d,\n" passive.rom_cards);
  Buffer.add_string buf
    (Printf.sprintf "    \"roundtrip_drift\": %.3e,\n" passive.roundtrip_drift);
  Buffer.add_string buf
    (Printf.sprintf "    \"render_stable\": %b\n" passive.render_stable);
  Buffer.add_string buf "  }\n"

let () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  let parse, passive =
    if smoke then
      (* CI smoke: small operands, every invariant except the timing- and
         scale-sensitive gates (the solve-column ratio is looser on small
         operands, where the one-off shift warm-up is a larger share) *)
      ( parse_case ~n:60 ~reps:1,
        passive_case ~ports:8 ~internal:60 ~order:12 ~ratio_gate:0.75 )
    else begin
      let parse = parse_case ~n:230 ~reps:3 in
      if parse.elements < 100_000 then
        fail "parse operand has %d elements, need >= 100k" parse.elements;
      (* the acceptance operand: 30-port substrate, order 40 *)
      (parse, passive_case ~ports:30 ~internal:300 ~order:40 ~ratio_gate:0.55)
    end
  in
  let json = json_of ~parse ~passive in
  Util.write_json ~file:"BENCH_export.json" json;
  Printf.eprintf "[export_bench] %s OK: col ratio %.3f, drift %.2e, %.0f elements/s\n%!"
    (if smoke then "smoke" else "full")
    passive.col_solve_ratio passive.roundtrip_drift parse.elements_per_s
