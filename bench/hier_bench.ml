(* Wall-clock benchmark of the hierarchical domain-decomposed reduction
   path (nested dissection -> per-subdomain PMTBR -> parallel two-phase
   recombination -> interface compression) against the flat sampled
   pipeline.

   Three cases, emitted to BENCH_hier.json:

   - agreement (always runs, gates asserted): on a mid-size mesh both
     paths must match the full model's port transfer within 1e-6, and the
     recombined (and interface-compressed) ROM must be bitwise
     worker-invariant;
   - scale: a >= 100k-element substrate timed flat vs hierarchical with
     per-stage walls (partition / sample+project / recombine / compress).
     Asserted gates: interface compression halves the kept interface
     states at <= 1e-6 port-transfer drift vs flat, and the serial
     recombination epilogue never ranks among the top-two stage walls.
     The >= 2x speedup gate is enforced only with >= 4 real workers (the
     documented skip on smaller hosts — subdomain fan-out cannot beat a
     flat sweep without hardware parallelism);
   - over-capacity: a network whose single global factorization exceeds
     the stated per-factorization budget, so the flat path is out of
     reach by policy while the budget-driven recursive dissection
     (Partition.split_auto, largest factorization = one subdomain
     interior <= the budget) completes.

   Run from the repo root:

     dune exec bench/hier_bench.exe                   # full
     dune exec bench/hier_bench.exe -- --smoke        # CI: small cases
     dune exec bench/hier_bench.exe -- --workers 4 --assert-multicore *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_core

let now () = Unix.gettimeofday ()

let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv
let assert_multicore = Array.exists (fun a -> a = "--assert-multicore") Sys.argv

let arg_int name default =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then default
    else if Sys.argv.(i) = name then int_of_string Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let workers = arg_int "--workers" 4

let element_count nl =
  let r, c, l, m = Pmtbr_circuit.Netlist.stats nl in
  r + c + l + m

let rom_digest rom =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (Dss.e_dense rom, Dss.a_dense rom, Dss.b_matrix rom, Dss.c_matrix rom)
          []))

let max_rel_err ref_sys apx_sys omegas =
  Freq.max_rel_error (Freq.sweep ref_sys omegas) (Freq.sweep apx_sys omegas)

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* ------------------------------------------------------------------ *)
(* Case 1: agreement + worker invariance (the correctness gates)        *)
(* ------------------------------------------------------------------ *)

type agreement = {
  a_name : string;
  a_states : int;
  a_flat_err : float;
  a_hier_err : float;
  a_invariant : bool;
}

let agreement_case () =
  let rows = if smoke then 8 else 12 in
  let nl = Pmtbr_circuit.Rc_mesh.generate ~rows ~cols:rows ~ports:3 () in
  let sys = Dss.of_netlist nl in
  let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:8 in
  let omegas = Array.init 9 (fun i -> 1e6 *. (10.0 ** (0.5 *. float_of_int i))) in
  let flat = (Pmtbr.reduce ~tol:1e-12 sys pts).Pmtbr.rom in
  let hier1, _ =
    Hier_reduce.reduce_stats ~tol:1e-12 ~interface_tol:1e-8 ~parts:4 ~workers:1 nl pts
  in
  let hierw, _ =
    Hier_reduce.reduce_stats ~tol:1e-12 ~interface_tol:1e-8 ~parts:4 ~workers:(max 2 workers)
      ~oversubscribe:true nl pts
  in
  let invariant = rom_digest hier1 = rom_digest hierw in
  if not invariant then begin
    Printf.eprintf "[hier_bench] FAIL: recombined ROM depends on the worker count\n%!";
    exit 1
  end;
  let flat_err = max_rel_err sys flat omegas in
  let hier_err = max_rel_err sys hier1 omegas in
  Printf.eprintf
    "[hier_bench] agreement: mesh %dx%d, flat err %.3e, hier err %.3e, worker-invariant\n%!"
    rows rows flat_err hier_err;
  if hier_err > 1e-6 then begin
    Printf.eprintf "[hier_bench] FAIL: hier port-transfer error %.3e > 1e-6\n%!" hier_err;
    exit 1
  end;
  {
    a_name = Printf.sprintf "rc-mesh-%dx%d" rows rows;
    a_states = Dss.order sys;
    a_flat_err = flat_err;
    a_hier_err = hier_err;
    a_invariant = invariant;
  }

(* ------------------------------------------------------------------ *)
(* Case 2: scale — flat vs hierarchical wall clock                      *)
(* ------------------------------------------------------------------ *)

type scale = {
  s_name : string;
  s_states : int;
  s_elements : int;
  s_parts : int;
  s_depth : int;
  s_interface : int;
  s_interface_kept : int;
  s_actual_workers : int;
  s_flat_wall_s : float;
  s_hier_wall_s : float;
  s_partition_wall_s : float;
  s_sample_wall_s : float;
  s_recombine_wall_s : float;
  s_compress_wall_s : float;
  s_speedup : float;
  s_rom_diff : float;
  s_gate : string;
}

(* the interface-compression quadrature-tail tolerance for the scale
   case: the sigma tail it drops sits orders of magnitude above the port
   drift it causes (measured below against the 1e-6 gate), and it is what
   pushes the kept interface under half of the assembled cut states *)
let scale_interface_tol = 2e-3

let scale_case () =
  (* An elongated mesh: level-set bisection cuts across the short
     dimension, so the interface (and every part's coupling-column
     count) stays at ~rows states per cut while the substrate scales
     along the long axis.  64 ports is the regime the hierarchy is for —
     the flat path pays its multi-column solves and its sample-matrix
     SVD (points x 2 x 64 columns) on the whole mesh, while each part
     sees only its local ports plus a thin exact coupling block.
     Measured serially on the full case the hierarchy is already ~3.5x
     the flat path; real workers stack the per-part walls on top. *)
  let rows, cols, ports, n_pts =
    if smoke then (4, 48, 4, 4) else (8, 6400, 64, 8)
  in
  let parts = if smoke then 2 else 4 in
  let nl = Pmtbr_circuit.Rc_mesh.generate ~rows ~cols ~ports () in
  let elements = element_count nl in
  let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:n_pts in
  Printf.eprintf "[hier_bench] scale: mesh %dx%d, %d ports (%d elements), %d points\n%!" rows
    cols ports elements (Array.length pts);
  let sys, stamp_s = time (fun () -> Dss.of_netlist nl) in
  let flat_rom, flat_s = time (fun () -> (Pmtbr.reduce ~tol:1e-10 sys pts).Pmtbr.rom) in
  Printf.eprintf "[hier_bench]   flat: %.3f s (+ %.3f s stamp), order %d\n%!" flat_s stamp_s
    (Dss.order flat_rom);
  let (hier_rom, st), hier_s =
    time (fun () ->
        Hier_reduce.reduce_stats ~tol:1e-10 ~interface_tol:scale_interface_tol ~parts ~workers
          nl pts)
  in
  (* the pool is capped by the hardware and the part count, exactly as
     Hier_reduce sizes it *)
  let actual = max 1 (min (min workers (Domain.recommended_domain_count ())) parts) in
  let speedup = flat_s /. Float.max hier_s 1e-9 in
  Printf.eprintf
    "[hier_bench]   hier: %.3f s at %d worker(s) [pool %d], order %d (interface %d -> %d): \
     %.2fx\n%!"
    hier_s workers actual (Dss.order hier_rom) st.Hier_reduce.interface
    st.Hier_reduce.interface_kept speedup;
  Printf.eprintf
    "[hier_bench]   stage walls: partition %.3f s, sample+project %.3f s, recombine %.4f s, \
     compress %.3f s\n%!"
    st.Hier_reduce.partition_wall_s st.Hier_reduce.sample_wall_s st.Hier_reduce.recombine_wall_s
    st.Hier_reduce.compress_wall_s;
  if (not smoke) && 2 * st.Hier_reduce.interface_kept > st.Hier_reduce.interface then begin
    Printf.eprintf "[hier_bench] FAIL: interface kept %d > half of %d states\n%!"
      st.Hier_reduce.interface_kept st.Hier_reduce.interface;
    exit 1
  end;
  (* the serial recombination epilogue must never rank among the top-two
     stage walls — that is what the two-phase split buys *)
  (if not smoke then
     let walls =
       List.sort (fun a b -> compare b a)
         [
           st.Hier_reduce.partition_wall_s; st.Hier_reduce.sample_wall_s;
           st.Hier_reduce.recombine_wall_s; st.Hier_reduce.compress_wall_s;
         ]
     in
     match walls with
     | first :: second :: _ when st.Hier_reduce.recombine_wall_s >= Float.min first second ->
         Printf.eprintf
           "[hier_bench] FAIL: serial recombination (%.4f s) ranks in the top-two stage walls\n%!"
           st.Hier_reduce.recombine_wall_s;
         exit 1
     | _ -> ());
  (* both ROMs are small relative to the mesh: compare their port
     transfers directly (a few points — each is a dense solve at the
     ROM orders) *)
  let omegas = Array.init 5 (fun i -> 1e6 *. (10.0 ** float_of_int i)) in
  let rom_diff = max_rel_err flat_rom hier_rom omegas in
  Printf.eprintf "[hier_bench]   flat-vs-hier ROM transfer diff %.3e\n%!" rom_diff;
  if rom_diff > 1e-6 then begin
    Printf.eprintf "[hier_bench] FAIL: scale flat-vs-hier transfer diff %.3e > 1e-6\n%!" rom_diff;
    exit 1
  end;
  let gate =
    if smoke then "skipped (smoke)"
    else if Util.enforce_multicore ~bench:"hier_bench" ~gate:">= 2x flat at >= 4 workers" ~need:4
            && actual >= 4
    then begin
      if speedup < 2.0 then begin
        Printf.eprintf "[hier_bench] FAIL: scale speedup %.2fx < 2x at %d workers\n%!" speedup
          actual;
        exit 1
      end;
      "enforced"
    end
    else "skipped (host has too few cores)"
  in
  {
    s_name = Printf.sprintf "rc-mesh-%dx%d-%dport" rows cols ports;
    s_states = Dss.order sys;
    s_elements = elements;
    s_parts = st.Hier_reduce.parts;
    s_depth = st.Hier_reduce.depth;
    s_interface = st.Hier_reduce.interface;
    s_interface_kept = st.Hier_reduce.interface_kept;
    s_actual_workers = actual;
    s_flat_wall_s = flat_s;
    s_hier_wall_s = hier_s;
    s_partition_wall_s = st.Hier_reduce.partition_wall_s;
    s_sample_wall_s = st.Hier_reduce.sample_wall_s;
    s_recombine_wall_s = st.Hier_reduce.recombine_wall_s;
    s_compress_wall_s = st.Hier_reduce.compress_wall_s;
    s_speedup = speedup;
    s_rom_diff = rom_diff;
    s_gate = gate;
  }

(* ------------------------------------------------------------------ *)
(* Case 3: over-capacity — flat out of budget, hier completes           *)
(* ------------------------------------------------------------------ *)

(* Policy budget: no single sparse factorization may span more than this
   many states (the stand-in for a memory ceiling).  The flat path needs
   one global factorization; the hierarchical path's largest is one
   subdomain interior. *)
let factor_budget = 20_000

type capacity = {
  c_name : string;
  c_states : int;
  c_elements : int;
  c_parts : int;
  c_depth : int;
  c_max_part : int;
  c_hier_wall_s : float;
  c_order : int;
  c_completed : bool;
}

let capacity_case () =
  let rows, cols, ports, n_pts =
    if smoke then (4, 96, 4, 4) else (8, 12800, 8, 6)
  in
  let budget = if smoke then 100 else factor_budget in
  let nl = Pmtbr_circuit.Rc_mesh.generate ~rows ~cols ~ports () in
  let states = Pmtbr_circuit.Netlist.node_count nl in
  let elements = element_count nl in
  if not smoke && states <= factor_budget then failwith "capacity case too small for the budget";
  Printf.eprintf
    "[hier_bench] over-capacity: mesh %dx%d (%d states > budget %d): flat path skipped, \
     recursing to the budget\n%!"
    rows cols states budget;
  let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:n_pts in
  let (pt, (rom, st)), hier_s =
    time (fun () ->
        let pt = Partition.split_auto ~max_states:budget nl in
        (pt, Hier_reduce.reduce_partitioned ~tol:1e-10 ~workers pt pts))
  in
  let max_part = Array.fold_left max 0 (Partition.part_sizes pt) in
  if max_part > budget then begin
    Printf.eprintf "[hier_bench] FAIL: largest subdomain %d exceeds the budget %d\n%!" max_part
      budget;
    exit 1
  end;
  if Partition.tree_depth pt < 2 then begin
    Printf.eprintf "[hier_bench] FAIL: budget recursion stopped at depth %d\n%!"
      (Partition.tree_depth pt);
    exit 1
  end;
  (* completion check: the recombined ROM answers a port sweep finitely *)
  let omegas = Array.init 5 (fun i -> 1e7 *. (10.0 ** float_of_int i)) in
  let sweep = Freq.sweep rom omegas in
  let finite_mat (m : Mat.t) = Array.for_all Float.is_finite m.Mat.data in
  let finite =
    Array.for_all (fun cm -> finite_mat (Cmat.re cm) && finite_mat (Cmat.im cm)) sweep
  in
  if not finite then begin
    Printf.eprintf "[hier_bench] FAIL: over-capacity ROM sweep is not finite\n%!";
    exit 1
  end;
  Printf.eprintf
    "[hier_bench]   hier completed: %.3f s, order %d, %d parts at depth %d (largest \
     factorization %d of %d states)\n%!"
    hier_s (Dss.order rom) st.Hier_reduce.parts st.Hier_reduce.depth max_part states;
  {
    c_name = Printf.sprintf "rc-mesh-%dx%d-%dport" rows cols ports;
    c_states = states;
    c_elements = elements;
    c_parts = st.Hier_reduce.parts;
    c_depth = st.Hier_reduce.depth;
    c_max_part = max_part;
    c_hier_wall_s = hier_s;
    c_order = Dss.order rom;
    c_completed = true;
  }

(* ------------------------------------------------------------------ *)

let json_of a s c =
  Util.json_object @@ fun buf ->
  Buffer.add_string buf "  \"agreement\": {\n";
  Buffer.add_string buf (Printf.sprintf "    \"name\": %S,\n" a.a_name);
  Buffer.add_string buf (Printf.sprintf "    \"states\": %d,\n" a.a_states);
  Buffer.add_string buf (Printf.sprintf "    \"flat_err\": %.3e,\n" a.a_flat_err);
  Buffer.add_string buf (Printf.sprintf "    \"hier_err\": %.3e,\n" a.a_hier_err);
  Buffer.add_string buf "    \"gate\": \"hier_err <= 1e-6 (asserted)\",\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"worker_invariant\": %b\n" a.a_invariant);
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"scale\": {\n";
  Buffer.add_string buf (Printf.sprintf "    \"name\": %S,\n" s.s_name);
  Buffer.add_string buf (Printf.sprintf "    \"states\": %d,\n" s.s_states);
  Buffer.add_string buf (Printf.sprintf "    \"elements\": %d,\n" s.s_elements);
  Buffer.add_string buf (Printf.sprintf "    \"parts\": %d,\n" s.s_parts);
  Buffer.add_string buf (Printf.sprintf "    \"tree_depth\": %d,\n" s.s_depth);
  Buffer.add_string buf
    (Printf.sprintf "    \"interface_states_before\": %d,\n" s.s_interface);
  Buffer.add_string buf
    (Printf.sprintf "    \"interface_states_after\": %d,\n" s.s_interface_kept);
  Buffer.add_string buf
    (Printf.sprintf "    \"interface_tol\": %.1e,\n" scale_interface_tol);
  Buffer.add_string buf
    "    \"interface_gate\": \"after <= 0.5x before at rom_diff <= 1e-6 (asserted)\",\n";
  Buffer.add_string buf (Printf.sprintf "    \"workers_requested\": %d,\n" workers);
  Buffer.add_string buf (Printf.sprintf "    \"actual_workers\": %d,\n" s.s_actual_workers);
  Buffer.add_string buf (Printf.sprintf "    \"flat_wall_s\": %.6f,\n" s.s_flat_wall_s);
  Buffer.add_string buf (Printf.sprintf "    \"hier_wall_s\": %.6f,\n" s.s_hier_wall_s);
  Buffer.add_string buf "    \"stage_walls_s\": {\n";
  Buffer.add_string buf (Printf.sprintf "      \"partition\": %.6f,\n" s.s_partition_wall_s);
  Buffer.add_string buf (Printf.sprintf "      \"sample_project\": %.6f,\n" s.s_sample_wall_s);
  Buffer.add_string buf (Printf.sprintf "      \"recombine\": %.6f,\n" s.s_recombine_wall_s);
  Buffer.add_string buf (Printf.sprintf "      \"compress\": %.6f\n" s.s_compress_wall_s);
  Buffer.add_string buf "    },\n";
  Buffer.add_string buf
    "    \"recombine_gate\": \"serial recombine outside the top-two stage walls (asserted)\",\n";
  Buffer.add_string buf (Printf.sprintf "    \"speedup_vs_flat\": %.3f,\n" s.s_speedup);
  Buffer.add_string buf (Printf.sprintf "    \"flat_vs_hier_rom_diff\": %.3e,\n" s.s_rom_diff);
  Buffer.add_string buf (Printf.sprintf "    \"speedup_gate\": %S\n" s.s_gate);
  Buffer.add_string buf "  },\n";
  Buffer.add_string buf "  \"over_capacity\": {\n";
  Buffer.add_string buf (Printf.sprintf "    \"name\": %S,\n" c.c_name);
  Buffer.add_string buf (Printf.sprintf "    \"states\": %d,\n" c.c_states);
  Buffer.add_string buf (Printf.sprintf "    \"elements\": %d,\n" c.c_elements);
  Buffer.add_string buf (Printf.sprintf "    \"factor_budget_states\": %d,\n" factor_budget);
  Buffer.add_string buf
    "    \"flat\": \"skipped: one global factorization exceeds the budget\",\n";
  Buffer.add_string buf "    \"partition\": \"auto (recursive, budget-driven)\",\n";
  Buffer.add_string buf (Printf.sprintf "    \"parts\": %d,\n" c.c_parts);
  Buffer.add_string buf (Printf.sprintf "    \"tree_depth\": %d,\n" c.c_depth);
  Buffer.add_string buf (Printf.sprintf "    \"max_part_states\": %d,\n" c.c_max_part);
  Buffer.add_string buf (Printf.sprintf "    \"hier_wall_s\": %.6f,\n" c.c_hier_wall_s);
  Buffer.add_string buf (Printf.sprintf "    \"order\": %d,\n" c.c_order);
  Buffer.add_string buf (Printf.sprintf "    \"completed\": %b\n" c.c_completed);
  Buffer.add_string buf "  }\n"

let () =
  if assert_multicore && Domain.recommended_domain_count () <= 1 then begin
    (* satellite contract: on a multicore host this flag turns the skip
       into a hard failure; on a single-core host the skip stands *)
    Printf.eprintf
      "[hier_bench] single-core host (recommended_domain_count = 1): multicore assertions \
       are documented skips\n%!"
  end;
  let a = agreement_case () in
  let s = scale_case () in
  let c = capacity_case () in
  let json = json_of a s c in
  Util.write_json ~file:"BENCH_hier.json" json;
  if assert_multicore && Domain.recommended_domain_count () > 1 && s.s_actual_workers <= 1
  then begin
    Printf.eprintf "[hier_bench] FAIL: multicore host but the pool collapsed to 1 worker\n%!";
    exit 1
  end;
  Printf.eprintf "[hier_bench] OK\n%!"
