(* Output helpers shared by the figure-regeneration benches and the
   BENCH_*.json emitters. *)

(* Every bench opens its JSON object with the host's core count, so the
   speedup numbers downstream can be read against the hardware they were
   measured on; [body] fills in the bench-specific fields (no trailing
   comma needed before the closing brace). *)
let json_object body =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"cores\": %d,\n" (Domain.recommended_domain_count ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"recommended_domain_count\": %d,\n" (Domain.recommended_domain_count ()));
  body buf;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Write the JSON next to the working directory and echo it, the
   convention every bench follows. *)
let write_json ~file json =
  let oc = open_out file in
  output_string oc json;
  close_out oc;
  print_string json

(* Speedup gates need real hardware parallelism; correctness gates never
   wait for it.  Returns [true] when the gate should be enforced, [false]
   after printing the documented skip (single-core CI hosts). *)
let enforce_multicore ~bench ~gate ~need =
  let cores = Domain.recommended_domain_count () in
  if cores >= need then true
  else begin
    Printf.eprintf
      "[%s] SKIP (documented): %s needs >= %d cores but this host recommends %d domain(s); \
       the correctness gates above still ran\n%!"
      bench gate need cores;
    false
  end

let header fig title =
  Printf.printf "\n== %s: %s ==\n%!" fig title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "# %s\n" s) fmt

let row cells = print_endline (String.concat "\t" cells)

let ghz omega = omega /. (2.0 *. Float.pi *. 1e9)

let fmt_g x = Printf.sprintf "%.4g" x
let fmt_e x = Printf.sprintf "%.3e" x

let time_it f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)
