(* Wall-clock benchmark of incremental adaptive order control.

   Measures Pmtbr.reduce_adaptive on a >= 64-point sweep along two axes:

   - from-scratch (the pre-cache behaviour, [~rebuild:true]): every batch
     rebuilds the sample matrix, re-solving all previously consumed
     shifts — O(total^2) solves;
   - incremental (the Sample_cache path): each shift solved exactly once,
     weights and prefix rescaling applied as a diagonal at assembly.

   Both paths run identical per-column arithmetic in identical order, so
   their results are bitwise-equal — which this bench asserts, together
   with the solve-counter invariant (incremental solves == points
   consumed) and, in full mode, a >= 3x wall-time gate.

   Emits BENCH_adaptive.json in the current directory.  Run from the
   repo root:

     dune exec bench/adaptive_bench.exe            # full run, 3x gate
     dune exec bench/adaptive_bench.exe -- --smoke # CI: tiny point set,
                                                   # invariants only *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_core

let now () = Unix.gettimeofday ()

let time_best ?(reps = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = now () in
    let r = f () in
    let dt = now () -. t0 in
    if dt < !best then begin
      best := dt;
      result := Some r
    end
  done;
  (Option.get !result, !best)

let bitwise_equal (a : Mat.t) (b : Mat.t) =
  a.Mat.rows = b.Mat.rows && a.Mat.cols = b.Mat.cols && a.Mat.data = b.Mat.data

type record = {
  name : string;
  states : int;
  points : int;
  samples_used : int;
  rom_order : int;
  inc_wall_s : float;
  reb_wall_s : float;
  speedup : float;
  inc_solves : int;
  reb_solves : int;
  columns : int;
  batches : int;
  batch_wall_s : float array;
}

let bench_case ~name ~sys ~points ~batch ~tol =
  Printf.eprintf "[adaptive_bench] %s: %d states, %d points, batch %d\n%!" name (Dss.order sys)
    (Array.length points) batch;
  let run rebuild = Pmtbr.reduce_adaptive_stats ~rebuild ~tol ~batch sys points in
  let (inc, st_inc), inc_wall = time_best (fun () -> run false) in
  let (reb, st_reb), reb_wall = time_best (fun () -> run true) in
  (* identical outputs: the whole point of the weight-at-assembly design *)
  if inc.Pmtbr.singular_values <> reb.Pmtbr.singular_values then
    failwith (name ^ ": singular values differ between incremental and from-scratch");
  if not (bitwise_equal inc.Pmtbr.basis reb.Pmtbr.basis) then
    failwith (name ^ ": basis differs between incremental and from-scratch");
  if inc.Pmtbr.samples <> reb.Pmtbr.samples then
    failwith (name ^ ": consumed sample counts differ");
  (* the solve-counter invariant: each shift solved exactly once *)
  if st_inc.Sample_cache.solves <> st_inc.Sample_cache.points then
    failwith
      (Printf.sprintf "%s: incremental re-solved shifts (%d solves for %d points)" name
         st_inc.Sample_cache.solves st_inc.Sample_cache.points);
  if st_reb.Sample_cache.solves <= st_inc.Sample_cache.solves then
    failwith (name ^ ": from-scratch baseline did not re-solve — bench is vacuous");
  let r =
    {
      name;
      states = Dss.order sys;
      points = Array.length points;
      samples_used = inc.Pmtbr.samples;
      rom_order = inc.Pmtbr.basis.Mat.cols;
      inc_wall_s = inc_wall;
      reb_wall_s = reb_wall;
      speedup = reb_wall /. inc_wall;
      inc_solves = st_inc.Sample_cache.solves;
      reb_solves = st_reb.Sample_cache.solves;
      columns = st_inc.Sample_cache.columns;
      batches = st_inc.Sample_cache.batches;
      batch_wall_s = st_inc.Sample_cache.batch_wall_s;
    }
  in
  Printf.eprintf
    "[adaptive_bench]   incremental %.3f s (%d solves), from-scratch %.3f s (%d solves): %.2fx\n%!"
    inc_wall r.inc_solves reb_wall r.reb_solves r.speedup;
  r

let json_of_records records =
  Util.json_object @@ fun buf ->
  Buffer.add_string buf "  \"cases\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf "    {\n";
      Buffer.add_string buf (Printf.sprintf "      \"name\": %S,\n" r.name);
      Buffer.add_string buf (Printf.sprintf "      \"states\": %d,\n" r.states);
      Buffer.add_string buf (Printf.sprintf "      \"points\": %d,\n" r.points);
      Buffer.add_string buf (Printf.sprintf "      \"samples_used\": %d,\n" r.samples_used);
      Buffer.add_string buf (Printf.sprintf "      \"rom_order\": %d,\n" r.rom_order);
      Buffer.add_string buf
        (Printf.sprintf "      \"incremental_wall_s\": %.6f,\n" r.inc_wall_s);
      Buffer.add_string buf
        (Printf.sprintf "      \"from_scratch_wall_s\": %.6f,\n" r.reb_wall_s);
      Buffer.add_string buf (Printf.sprintf "      \"speedup\": %.3f,\n" r.speedup);
      Buffer.add_string buf
        (Printf.sprintf "      \"incremental_solves\": %d,\n" r.inc_solves);
      Buffer.add_string buf
        (Printf.sprintf "      \"from_scratch_solves\": %d,\n" r.reb_solves);
      Buffer.add_string buf (Printf.sprintf "      \"columns\": %d,\n" r.columns);
      Buffer.add_string buf (Printf.sprintf "      \"batches\": %d,\n" r.batches);
      Buffer.add_string buf "      \"batch_wall_s\": [";
      Array.iteri
        (fun j w ->
          Buffer.add_string buf
            (Printf.sprintf "%.6f%s" w
               (if j = Array.length r.batch_wall_s - 1 then "" else ", ")))
        r.batch_wall_s;
      Buffer.add_string buf "],\n";
      Buffer.add_string buf
        "      \"outputs\": \"incremental == from-scratch (bitwise)\"\n";
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n" (if i = List.length records - 1 then "" else ",")))
    records;
  Buffer.add_string buf "  ]\n"

let () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  let records =
    if smoke then begin
      (* CI smoke: tiny point set, invariants (bitwise equality + solve
         counter) exercised on every pass; no timing gate *)
      let sys = Dss.of_netlist (Pmtbr_circuit.Rc_mesh.generate ~rows:8 ~cols:8 ~ports:2 ()) in
      let pts = Sampling.points (Sampling.Uniform { w_max = 2e10 }) ~count:16 in
      [ bench_case ~name:"rc-mesh-8x8-smoke" ~sys ~points:pts ~batch:4 ~tol:1e-16 ]
    end
    else begin
      (* tol far below reach forces the full >= 64-point sweep, so the
         from-scratch baseline pays its whole O(total^2) solve bill *)
      let mesh =
        Dss.of_netlist (Pmtbr_circuit.Rc_mesh.generate ~rows:48 ~cols:48 ~ports:1 ())
      in
      let mesh_pts = Sampling.points (Sampling.Uniform { w_max = 2e10 }) ~count:64 in
      let spiral = Dss.of_netlist (Pmtbr_circuit.Spiral.generate ~segments:60 ()) in
      let spiral_pts =
        Sampling.points
          (Sampling.Log
             {
               w_min = Pmtbr_circuit.Spiral.sample_band () /. 1000.0;
               w_max = Pmtbr_circuit.Spiral.sample_band ();
             })
          ~count:64
      in
      let mesh_r = bench_case ~name:"rc-mesh-48x48" ~sys:mesh ~points:mesh_pts ~batch:8 ~tol:1e-16 in
      let spiral_r =
        bench_case ~name:"spiral-60" ~sys:spiral ~points:spiral_pts ~batch:8 ~tol:1e-16
      in
      [ mesh_r; spiral_r ]
    end
  in
  let json = json_of_records records in
  Util.write_json ~file:"BENCH_adaptive.json" json;
  if not smoke then begin
    (* acceptance gate: >= 3x on the 64-point rc-mesh sweep *)
    let mesh = List.hd records in
    if mesh.speedup < 3.0 then begin
      Printf.eprintf "[adaptive_bench] FAIL: %s speedup %.2fx < 3x\n%!" mesh.name mesh.speedup;
      exit 1
    end;
    Printf.eprintf "[adaptive_bench] OK: %s speedup %.2fx\n%!" mesh.name mesh.speedup
  end
  else Printf.eprintf "[adaptive_bench] smoke OK\n%!"
