(* Wall-clock benchmark of the reduction service: the persistent daemon +
   content-addressed store against one-shot reduction, measured end to end
   through the real Unix-socket protocol.

   The scenario is the service loop from the ROADMAP north star: a client
   repeatedly asks for reductions of the same extracted parasitic network
   (verbatim repeats, a new band on the same network, a tighter tolerance
   on the same sample set).  Measurements, all client-side wall clock:

   - cold: first job on a fresh daemon (parse + MNA stamp + symbolic
     analysis + shifted solves + SVD);
   - warm: the identical job repeated N times (ROM-tier hits) — p50/p99
     latency and jobs/sec;
   - incremental band: same network, disjoint band — must reuse the
     prepared multi-shift handle (the daemon's lifetime symbolic-analysis
     counter stays at 1);
   - tighter tol: same band, smaller tolerance — must re-finish from the
     cached sample columns with zero new shifted solves.

   Invariants asserted on every pass (both modes):

   - every warm repeat returns the same ROM digest as the cold run;
   - a second fresh daemon given the same job cold produces that same
     digest (warm-path ROMs are bitwise-identical to cold-path ROMs);
   - the incremental jobs hit the advertised tiers with the advertised
     counter deltas (symbolic = 1 forever, re-tol solves delta = 0).

   Emits BENCH_serve.json in the current directory.  Run from the repo
   root:

     dune exec bench/serve_bench.exe            # full run, 10x warm gate
     dune exec bench/serve_bench.exe -- --smoke # CI: tiny mesh,
                                                # invariants + 3x gate *)

module Protocol = Pmtbr_serve.Protocol
module Server = Pmtbr_serve.Server
module Client = Pmtbr_serve.Client

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* In-process daemon                                                   *)
(* ------------------------------------------------------------------ *)

type daemon = { socket : string; domain : unit Domain.t }

let start_daemon ~socket ~workers =
  let ready = Atomic.make false in
  let config = { (Server.default_config ~socket_path:socket) with Server.workers } in
  let domain =
    Domain.spawn (fun () -> Server.run ~on_ready:(fun _ -> Atomic.set ready true) config)
  in
  let t0 = now () in
  while (not (Atomic.get ready)) && now () -. t0 < 10.0 do
    Unix.sleepf 0.005
  done;
  if not (Atomic.get ready) then failwith "daemon did not come up within 10 s";
  { socket; domain }

let stop_daemon d =
  (try Client.with_connection d.socket (fun c -> ignore (Client.request c Protocol.Shutdown))
   with _ -> ());
  Domain.join d.domain

(* ------------------------------------------------------------------ *)
(* Client helpers                                                      *)
(* ------------------------------------------------------------------ *)

let must = function Ok v -> v | Error msg -> failwith ("serve_bench: " ^ msg)

let roundtrip conn req =
  let r = must (Client.request conn req) in
  match r.Protocol.status with
  | Ok () -> r
  | Error msg -> failwith ("serve_bench: server error: " ^ msg)

let field r k =
  match Protocol.field r k with
  | Some v -> v
  | None -> failwith ("serve_bench: response missing field " ^ k)

let int_field r k = int_of_string (field r k)

(* One timed job round trip: client-side wall plus the response. *)
let timed_job conn job =
  let t0 = now () in
  let r = roundtrip conn (Protocol.Reduce job) in
  (now () -. t0, r)

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

(* ------------------------------------------------------------------ *)
(* The scenario                                                        *)
(* ------------------------------------------------------------------ *)

type record = {
  circuit : string;
  states : int;
  samples : int;
  warm_jobs : int;
  cold_wall_s : float;
  warm_p50_s : float;
  warm_p99_s : float;
  warm_jobs_per_s : float;
  warm_speedup : float;  (* cold / warm p50 *)
  band_wall_s : float;  (* incremental new-band job *)
  retol_wall_s : float;  (* tighter-tol job on the cached samples *)
  symbolic_total : int;  (* daemon-lifetime symbolic analyses *)
  retol_solves : int;  (* shifted solves of the tighter-tol job *)
  cold_digest_equal : bool;  (* fresh daemon reproduces the digest *)
}

let run_scenario ~mesh_n ~samples ~warm_jobs =
  let nl = Pmtbr_circuit.Rc_mesh.generate ~rows:mesh_n ~cols:mesh_n ~ports:2 () in
  let netlist = Pmtbr_circuit.Spice.to_string nl in
  let job = { Protocol.meth = Protocol.Pmtbr; band = (0.0, 2e10); tol = None;
              order = Some 12; samples; partition = None; max_part_states = None;
              interface_tol = None; export = false; netlist } in
  let socket = Printf.sprintf ".serve_bench.%d.sock" (Unix.getpid ()) in
  let daemon = start_daemon ~socket ~workers:2 in
  let finally () = stop_daemon daemon in
  Fun.protect ~finally (fun () ->
      Client.with_connection socket (fun conn ->
          (* --- cold --- *)
          let cold_wall, cold = timed_job conn job in
          let digest = field cold "digest" in
          let states = int_field cold "states" in
          if field cold "tier" <> "miss" then failwith "first job must miss every tier";
          Printf.eprintf "[serve_bench] cold: %d states, %.4f s, digest %s\n%!" states
            cold_wall (String.sub digest 0 8);
          (* --- warm repeats --- *)
          let walls =
            Array.init warm_jobs (fun _ ->
                let w, r = timed_job conn job in
                if field r "tier" <> "rom-hit" then failwith "warm repeat must be a ROM hit";
                if field r "digest" <> digest then failwith "warm repeat digest drifted";
                w)
          in
          let total_warm = Array.fold_left ( +. ) 0.0 walls in
          Array.sort compare walls;
          let p50 = percentile walls 0.50 and p99 = percentile walls 0.99 in
          Printf.eprintf
            "[serve_bench] warm x%d: p50 %.6f s, p99 %.6f s, %.0f jobs/s (%.1fx cold)\n%!"
            warm_jobs p50 p99
            (float_of_int warm_jobs /. total_warm)
            (cold_wall /. p50);
          (* --- incremental: new band on the same network --- *)
          let band_wall, band_r =
            timed_job conn { job with Protocol.band = (1e8, 1e10) }
          in
          if field band_r "tier" <> "network-hit" then
            failwith "new-band job must land on the network tier";
          (* --- incremental: tighter tol on the cached sample set --- *)
          let retol_wall, retol_r =
            timed_job conn { job with Protocol.order = None; tol = Some 1e-10 }
          in
          if field retol_r "tier" <> "samples-hit" then
            failwith "re-tol job must land on the samples tier";
          let retol_solves = int_field retol_r "solves" in
          if retol_solves <> 0 then
            failwith
              (Printf.sprintf "re-tol job performed %d solves; the cached columns should"
                 retol_solves);
          let stats = roundtrip conn Protocol.Stats in
          let symbolic_total = int_field stats "symbolic" in
          if symbolic_total <> 1 then
            failwith
              (Printf.sprintf "daemon performed %d symbolic analyses for one network"
                 symbolic_total);
          Printf.eprintf
            "[serve_bench] incremental: band %.4f s (network-hit), re-tol %.4f s \
             (samples-hit, 0 solves), symbolic total %d\n%!"
            band_wall retol_wall symbolic_total;
          (* --- cold-path identity on a fresh daemon --- *)
          let socket2 = Printf.sprintf ".serve_bench.%d.cold.sock" (Unix.getpid ()) in
          let daemon2 = start_daemon ~socket:socket2 ~workers:1 in
          let cold_digest =
            Fun.protect
              ~finally:(fun () -> stop_daemon daemon2)
              (fun () ->
                Client.with_connection socket2 (fun c2 ->
                    field (snd (timed_job c2 job)) "digest"))
          in
          if cold_digest <> digest then
            failwith "fresh-daemon cold digest differs from the warm-path digest";
          Printf.eprintf "[serve_bench] cold-path digest reproduced on a fresh daemon\n%!";
          {
            circuit = Printf.sprintf "rc-mesh-%dx%d" mesh_n mesh_n;
            states;
            samples;
            warm_jobs;
            cold_wall_s = cold_wall;
            warm_p50_s = p50;
            warm_p99_s = p99;
            warm_jobs_per_s = float_of_int warm_jobs /. total_warm;
            warm_speedup = cold_wall /. Float.max p50 1e-9;
            band_wall_s = band_wall;
            retol_wall_s = retol_wall;
            symbolic_total;
            retol_solves;
            cold_digest_equal = true;
          }))

let json_of_record r =
  Util.json_object @@ fun buf ->
  Buffer.add_string buf "  \"cases\": [\n    {\n";
  Buffer.add_string buf (Printf.sprintf "      \"circuit\": %S,\n" r.circuit);
  Buffer.add_string buf (Printf.sprintf "      \"states\": %d,\n" r.states);
  Buffer.add_string buf (Printf.sprintf "      \"samples\": %d,\n" r.samples);
  Buffer.add_string buf (Printf.sprintf "      \"warm_jobs\": %d,\n" r.warm_jobs);
  Buffer.add_string buf (Printf.sprintf "      \"cold_wall_s\": %.6f,\n" r.cold_wall_s);
  Buffer.add_string buf (Printf.sprintf "      \"warm_p50_s\": %.6f,\n" r.warm_p50_s);
  Buffer.add_string buf (Printf.sprintf "      \"warm_p99_s\": %.6f,\n" r.warm_p99_s);
  Buffer.add_string buf (Printf.sprintf "      \"warm_jobs_per_s\": %.1f,\n" r.warm_jobs_per_s);
  Buffer.add_string buf (Printf.sprintf "      \"warm_speedup\": %.1f,\n" r.warm_speedup);
  Buffer.add_string buf (Printf.sprintf "      \"band_wall_s\": %.6f,\n" r.band_wall_s);
  Buffer.add_string buf (Printf.sprintf "      \"retol_wall_s\": %.6f,\n" r.retol_wall_s);
  Buffer.add_string buf (Printf.sprintf "      \"symbolic_total\": %d,\n" r.symbolic_total);
  Buffer.add_string buf (Printf.sprintf "      \"retol_solves\": %d,\n" r.retol_solves);
  Buffer.add_string buf
    (Printf.sprintf "      \"cold_digest_equal\": %b\n" r.cold_digest_equal);
  Buffer.add_string buf "    }\n  ]\n"

let () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  let r =
    if smoke then run_scenario ~mesh_n:8 ~samples:12 ~warm_jobs:30
    else run_scenario ~mesh_n:24 ~samples:30 ~warm_jobs:200
  in
  let json = json_of_record r in
  Util.write_json ~file:"BENCH_serve.json" json;
  (* acceptance gate: a warm repeat must beat the cold path by 10x on the
     full operand; the smoke operand is tiny, so the gate is relaxed to
     3x there (the invariants above are the real smoke check) *)
  let gate = if smoke then 3.0 else 10.0 in
  if r.warm_speedup < gate then begin
    Printf.eprintf "[serve_bench] FAIL: warm speedup %.1fx < %.0fx\n%!" r.warm_speedup gate;
    exit 1
  end;
  Printf.eprintf "[serve_bench] %s OK: warm %.1fx cold (p50 %.1f us, %.0f jobs/s)\n%!"
    (if smoke then "smoke" else "full")
    r.warm_speedup (r.warm_p50_s *. 1e6) r.warm_jobs_per_s
