(* Wall-clock benchmark of the parallel multi-shift sampling engine.

   Measures the ZW assembly (the entire cost of PMTBR) on two substrates —
   an RC mesh and the spiral inductor — along three axes:

   - baseline: the legacy per-point path (one full symbolic + numeric
     factorisation per shift, serial), exactly what Zmat.build did before
     the engine existed;
   - engine at 1 / 2 / 4 / 8 workers: shared symbolic analysis, numeric
     refactorisation per shift, domain pool.

   Emits BENCH_shift.json in the current directory with the speedup curve
   relative to the baseline, plus a bitwise-determinism check of parallel
   against serial assembly.  Run from the repo root:

     dune exec bench/shift_bench.exe

   Flags: --smoke (tiny substrates, no timing gate), --workers N (bench
   1 and N workers instead of the 1/2/4/8 curve), --assert-multicore
   (fail unless the pool really expanded past one domain; documented
   skip on single-core hosts). *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_core

let arg_flag name = Array.exists (fun a -> a = name) Sys.argv

let arg_int name default =
  let v = ref default in
  Array.iteri
    (fun i a -> if a = name && i + 1 < Array.length Sys.argv then v := int_of_string Sys.argv.(i + 1))
    Sys.argv;
  !v

let now () = Unix.gettimeofday ()

(* Best of [reps] to shave scheduler noise. *)
let time_best ?(reps = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = now () in
    let r = f () in
    let dt = now () -. t0 in
    if dt < !best then begin
      best := dt;
      result := Some r
    end
  done;
  (Option.get !result, !best)

(* The legacy serial path: full factorisation per point, fold of hcat. *)
let baseline_build sys pts =
  let rhs = Dss.b_matrix sys in
  let blocks = Array.map (Zmat.point_block sys ~rhs) pts in
  match Array.to_list blocks with
  | [] -> invalid_arg "no points"
  | first :: rest -> List.fold_left Mat.hcat first rest

let bitwise_equal (a : Mat.t) (b : Mat.t) =
  a.Mat.rows = b.Mat.rows && a.Mat.cols = b.Mat.cols && a.Mat.data = b.Mat.data

type run_record = {
  workers : int; (* requested *)
  actual : int; (* pool size after the hardware cap *)
  wall_s : float;
  factor_s : float;
  solve_s : float;
  util : float;
  speedup : float;
}

let bench_substrate ~name ~(sys : Dss.t) ~points ~worker_list ~reps =
  Printf.eprintf "[shift_bench] %s: %d states, %d ports, %d points\n%!" name (Dss.order sys)
    (Dss.inputs sys) (Array.length points);
  let z_base, base_s = time_best ~reps (fun () -> baseline_build sys points) in
  Printf.eprintf "[shift_bench]   baseline (legacy serial) %.3f s\n%!" base_s;
  let z_serial = Shift_engine.build ~workers:1 sys points in
  if not (bitwise_equal z_base z_serial) then begin
    (* the engine's refactorised numerics may differ from the legacy path in
       the last bits; report the departure but do not fail the bench *)
    let d = Mat.max_abs (Mat.sub z_base z_serial) in
    let scale = Float.max (Mat.max_abs z_base) 1e-300 in
    Printf.eprintf "[shift_bench]   note: engine vs legacy max |diff| = %.3e (%.3e relative)\n%!"
      d (d /. scale)
  end;
  let runs =
    List.map
      (fun w ->
        let (zw, st), wall =
          time_best ~reps (fun () -> Shift_engine.build_stats ~workers:w sys points)
        in
        if not (bitwise_equal zw z_serial) then
          failwith
            (Printf.sprintf "DETERMINISM VIOLATION: %s at %d workers differs from serial" name w);
        let r =
          {
            workers = w;
            actual = st.Shift_engine.workers;
            wall_s = wall;
            factor_s = st.Shift_engine.factor_s;
            solve_s = st.Shift_engine.solve_s;
            util = Shift_engine.utilisation st;
            speedup = base_s /. wall;
          }
        in
        Printf.eprintf
          "[shift_bench]   %d worker(s) [pool %d]: %.3f s (%.2fx vs baseline, util %.0f%%)\n%!"
          w r.actual wall r.speedup (100.0 *. r.util);
        r)
      worker_list
  in
  (name, Dss.order sys, Array.length points, base_s, runs)

let json_of_results results =
  Util.json_object @@ fun buf ->
  Buffer.add_string buf "  \"substrates\": [\n";
  List.iteri
    (fun i (name, states, points, base_s, runs) ->
      Buffer.add_string buf "    {\n";
      Buffer.add_string buf (Printf.sprintf "      \"name\": %S,\n" name);
      Buffer.add_string buf (Printf.sprintf "      \"states\": %d,\n" states);
      Buffer.add_string buf (Printf.sprintf "      \"points\": %d,\n" points);
      Buffer.add_string buf (Printf.sprintf "      \"baseline_serial_s\": %.6f,\n" base_s);
      Buffer.add_string buf "      \"engine_runs\": [\n";
      List.iteri
        (fun j r ->
          Buffer.add_string buf
            (Printf.sprintf
               "        {\"workers\": %d, \"actual_workers\": %d, \"wall_s\": %.6f, \
                \"factor_s\": %.6f, \"solve_s\": %.6f, \"utilisation\": %.3f, \
                \"speedup_vs_baseline\": %.3f}%s\n"
               r.workers r.actual r.wall_s r.factor_s r.solve_s r.util r.speedup
               (if j = List.length runs - 1 then "" else ",")))
        runs;
      Buffer.add_string buf "      ],\n";
      Buffer.add_string buf "      \"determinism\": \"parallel == serial (bitwise)\"\n";
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n" (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ]\n"

let () =
  let smoke = arg_flag "--smoke" in
  let assert_mc = arg_flag "--assert-multicore" in
  let workers = arg_int "--workers" 0 in
  let worker_list =
    if workers > 0 then if workers = 1 then [ 1 ] else [ 1; workers ] else [ 1; 2; 4; 8 ]
  in
  let reps = if smoke then 1 else 3 in
  let mesh_rows = if smoke then 8 else 24 in
  let mesh =
    Dss.of_netlist (Pmtbr_circuit.Rc_mesh.generate ~rows:mesh_rows ~cols:mesh_rows ~ports:4 ())
  in
  let n_pts = if smoke then 8 else 40 in
  let mesh_pts = Sampling.points (Sampling.Uniform { w_max = 2e10 }) ~count:n_pts in
  let spiral =
    Dss.of_netlist (Pmtbr_circuit.Spiral.generate ~segments:(if smoke then 12 else 60) ())
  in
  let spiral_pts =
    Sampling.points
      (Sampling.Log { w_min = Pmtbr_circuit.Spiral.sample_band () /. 1000.0;
                      w_max = Pmtbr_circuit.Spiral.sample_band () })
      ~count:n_pts
  in
  (* explicit lets: list elements would evaluate right-to-left *)
  let mesh_result =
    bench_substrate ~name:(if smoke then "rc-mesh-8x8-smoke" else "rc-mesh-24x24") ~sys:mesh
      ~points:mesh_pts ~worker_list ~reps
  in
  let spiral_result =
    bench_substrate ~name:(if smoke then "spiral-12-smoke" else "spiral-60") ~sys:spiral
      ~points:spiral_pts ~worker_list ~reps
  in
  let results = [ mesh_result; spiral_result ] in
  let json = json_of_results results in
  Util.write_json ~file:"BENCH_shift.json" json;
  (if assert_mc then
     (* the pool must really expand on multicore hosts; the determinism
        check above already ran either way *)
     let max_actual =
       List.fold_left
         (fun acc (_, _, _, _, runs) -> List.fold_left (fun m r -> max m r.actual) acc runs)
         0 results
     in
     if Util.enforce_multicore ~bench:"shift_bench" ~gate:"actual_workers > 1" ~need:2 then
       if max_actual <= 1 then begin
         Printf.eprintf
           "[shift_bench] FAIL: --assert-multicore but the pool never expanded past 1 worker\n%!";
         exit 1
       end
       else Printf.eprintf "[shift_bench] multicore OK: pool expanded to %d workers\n%!" max_actual);
  if smoke then Printf.eprintf "[shift_bench] smoke OK\n%!"
  else begin
    (* acceptance gate: >= 2x at 4 workers on the RC mesh; the 1-worker
       engine already beats the legacy per-point baseline via the shared
       symbolic analysis, so the gate is meaningful even off the default
       worker curve *)
    let _, _, _, _, mesh_runs = List.hd results in
    match List.find_opt (fun r -> r.workers = 4) mesh_runs with
    | None -> Printf.eprintf "[shift_bench] note: no 4-worker run requested; timing gate skipped\n%!"
    | Some at4 ->
        if at4.speedup < 2.0 then begin
          Printf.eprintf "[shift_bench] FAIL: rc-mesh speedup at 4 workers = %.2fx < 2x\n%!"
            at4.speedup;
          exit 1
        end;
        Printf.eprintf "[shift_bench] OK: rc-mesh speedup at 4 workers = %.2fx\n%!" at4.speedup
  end
