(* Wall-clock benchmark of the low-rank Lyapunov backend.

   The dense exact-TBR baseline runs two O(n^3) Bartels-Stewart solves
   plus a dense SVD, which caps it at a few hundred states.  PR 6's
   LR-ADI engine replaces both Gramians with low-rank factors computed
   from sparse shifted solves through ONE prepared multi-shift handle, so
   the exact baseline scales to the same operands as PMTBR.  This bench
   measures the dense/low-rank crossover on the RC-mesh family and gates
   the acceptance operand:

   - rc-mesh sizes 15x15 (225 states), 23x23 (529), 33x33 (1089: the
     acceptance size shared with BENCH_sweep.json);
   - dense path: [Tbr.reduce_dss] (to_standard + two dense Lyapunov
     solves + dense square-root balancing);
   - low-rank path: [Tbr_lr.reduce] (LR-ADI factors + small-core SVD).

   Invariants asserted on every pass (both modes):

   - the leading Hankel singular values of the low-rank path agree with
     the dense ones to 1e-8 relative (where the dense values are above
     the 1e-6 * sigma_max noise floor);
   - the low-rank reduction is bitwise-identical at workers 1 and 4 (the
     small-core SVD is the only parallel stage, and it is worker
     invariant per the PR-4 contract);
   - exactly one symbolic analysis for the whole two-Gramian reduction.

   Emits BENCH_lyap.json in the current directory.  Run from the repo
   root:

     dune exec bench/lyap_bench.exe            # full run, 5x gate at 1089
     dune exec bench/lyap_bench.exe -- --smoke # CI: small mesh,
                                               # invariants only *)

open Pmtbr_la
open Pmtbr_lti

let now () = Unix.gettimeofday ()

let time_best ?(reps = 3) f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = now () in
    let r = f () in
    let dt = now () -. t0 in
    if dt < !best then begin
      best := dt;
      result := Some r
    end
  done;
  (Option.get !result, !best)

type record = {
  name : string;
  states : int;
  order : int;
  dense_wall_s : float;  (* Tbr.reduce_dss: dense Gramians + balancing *)
  lr_wall_s : float;  (* Tbr_lr.reduce: LR-ADI factors + small core *)
  speedup : float;  (* dense / low-rank *)
  hsv_drift : float;  (* worst leading-hsv relative difference *)
  ctrl_columns : int;  (* controllability factor width *)
  obs_columns : int;
  adi_steps : int;  (* both sides *)
  shifted_solves : int;
  symbolic : int;  (* symbolic analyses (contract: 1) *)
  refactorizations : int;  (* numeric refactorisations (distinct shifts) *)
}

let hsv_drift dense lr =
  let smax = if Array.length dense = 0 then 0.0 else dense.(0) in
  let worst = ref 0.0 in
  Array.iteri
    (fun i s ->
      if s > 1e-6 *. smax && i < Array.length lr then
        worst := Float.max !worst (Float.abs (s -. lr.(i)) /. smax))
    dense;
  !worst

let bitwise_equal (a : Mat.t) (b : Mat.t) =
  a.Mat.rows = b.Mat.rows && a.Mat.cols = b.Mat.cols && a.Mat.data = b.Mat.data

(* The contracts, checked on the actual bench operand. *)
let invariant_checks ~name ~sys ~order ~st ~dense_hsv ~lr_hsv =
  let drift = hsv_drift dense_hsv lr_hsv in
  if drift > 1e-8 then
    failwith (Printf.sprintf "%s: hsv drift %.3e > 1e-8 vs dense TBR" name drift);
  if st.Tbr_lr.symbolic <> 1 then
    failwith
      (Printf.sprintf "%s: %d symbolic analyses, contract is 1" name st.Tbr_lr.symbolic);
  let r1 = Tbr_lr.reduce ~order ~workers:1 sys in
  let r4 = Tbr_lr.reduce ~order ~workers:4 sys in
  let same =
    r1.Tbr_lr.hsv = r4.Tbr_lr.hsv
    &&
    match (r1.Tbr_lr.rom, r4.Tbr_lr.rom) with
    | ( Dss.Dense { e = e1; a = a1; b = b1; c = c1 },
        Dss.Dense { e = e4; a = a4; b = b4; c = c4 } ) ->
        bitwise_equal e1 e4 && bitwise_equal a1 a4 && bitwise_equal b1 b4
        && bitwise_equal c1 c4
    | _ -> false
  in
  if not same then failwith (name ^ ": reduction differs between workers=1 and workers=4");
  Printf.eprintf "[lyap_bench] %s: invariants OK (hsv drift vs dense %.2e)\n%!" name drift;
  drift

let bench_case ~name ~rows ~cols ~order ~reps =
  let sys = Dss.of_netlist (Pmtbr_circuit.Rc_mesh.generate ~rows ~cols ~ports:2 ()) in
  let n = Dss.order sys in
  Printf.eprintf "[lyap_bench] %s: %d states, reduced order %d\n%!" name n order;
  let dense_res, dense_wall = time_best ~reps (fun () -> Tbr.reduce_dss ~order sys) in
  let (lr_res, st), lr_wall = time_best ~reps (fun () -> Tbr_lr.reduce_stats ~order sys) in
  let drift =
    invariant_checks ~name ~sys ~order ~st ~dense_hsv:dense_res.Tbr.hsv
      ~lr_hsv:lr_res.Tbr_lr.hsv
  in
  let r =
    {
      name;
      states = n;
      order;
      dense_wall_s = dense_wall;
      lr_wall_s = lr_wall;
      speedup = dense_wall /. lr_wall;
      hsv_drift = drift;
      ctrl_columns = st.Tbr_lr.ctrl.Lr_lyap.columns;
      obs_columns = st.Tbr_lr.obs.Lr_lyap.columns;
      adi_steps = st.Tbr_lr.ctrl.Lr_lyap.steps + st.Tbr_lr.obs.Lr_lyap.steps;
      shifted_solves = st.Tbr_lr.solves;
      symbolic = st.Tbr_lr.symbolic;
      refactorizations = st.Tbr_lr.refactorizations;
    }
  in
  Printf.eprintf
    "[lyap_bench]   dense %.4f s | low-rank %.4f s (%.2fx) | %d+%d columns, %d solves\n%!"
    dense_wall lr_wall r.speedup r.ctrl_columns r.obs_columns r.shifted_solves;
  r

let json_of_records records =
  Util.json_object @@ fun buf ->
  Buffer.add_string buf "  \"cases\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf "    {\n";
      Buffer.add_string buf (Printf.sprintf "      \"name\": %S,\n" r.name);
      Buffer.add_string buf (Printf.sprintf "      \"states\": %d,\n" r.states);
      Buffer.add_string buf (Printf.sprintf "      \"order\": %d,\n" r.order);
      Buffer.add_string buf (Printf.sprintf "      \"dense_wall_s\": %.6f,\n" r.dense_wall_s);
      Buffer.add_string buf (Printf.sprintf "      \"lr_wall_s\": %.6f,\n" r.lr_wall_s);
      Buffer.add_string buf (Printf.sprintf "      \"speedup\": %.3f,\n" r.speedup);
      Buffer.add_string buf (Printf.sprintf "      \"hsv_drift\": %.3e,\n" r.hsv_drift);
      Buffer.add_string buf (Printf.sprintf "      \"ctrl_columns\": %d,\n" r.ctrl_columns);
      Buffer.add_string buf (Printf.sprintf "      \"obs_columns\": %d,\n" r.obs_columns);
      Buffer.add_string buf (Printf.sprintf "      \"adi_steps\": %d,\n" r.adi_steps);
      Buffer.add_string buf (Printf.sprintf "      \"shifted_solves\": %d,\n" r.shifted_solves);
      Buffer.add_string buf (Printf.sprintf "      \"symbolic\": %d,\n" r.symbolic);
      Buffer.add_string buf
        (Printf.sprintf "      \"refactorizations\": %d\n" r.refactorizations);
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n" (if i = List.length records - 1 then "" else ",")))
    records;
  Buffer.add_string buf "  ]\n"

let () =
  let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv in
  let records =
    if smoke then
      (* CI smoke: small mesh, LR-vs-dense agreement + worker invariance
         + the one-symbolic-analysis contract, no timing gate *)
      [ bench_case ~name:"rc-mesh-9x9-smoke" ~rows:9 ~cols:9 ~order:12 ~reps:1 ]
    else begin
      (* reps are deliberately low: the dense baseline is minutes per
         rep at the larger sizes, and the gate has orders-of-magnitude
         margin.  Explicit lets pin the run (and log) order. *)
      let small = bench_case ~name:"rc-mesh-15x15" ~rows:15 ~cols:15 ~order:16 ~reps:2 in
      let mid = bench_case ~name:"rc-mesh-23x23" ~rows:23 ~cols:23 ~order:16 ~reps:1 in
      (* the acceptance operand: 33x33 mesh = 1089 states *)
      let big = bench_case ~name:"rc-mesh-33x33" ~rows:33 ~cols:33 ~order:16 ~reps:1 in
      [ small; mid; big ]
    end
  in
  let json = json_of_records records in
  Util.write_json ~file:"BENCH_lyap.json" json;
  if not smoke then begin
    (* acceptance gate: low-rank exact TBR must beat the dense baseline
       >= 5x at 1089 states with hsv drift <= 1e-8 (checked above) *)
    let big = List.nth records 2 in
    if big.speedup < 5.0 then begin
      Printf.eprintf "[lyap_bench] FAIL: %s speedup %.2fx < 5x\n%!" big.name big.speedup;
      exit 1
    end;
    Printf.eprintf "[lyap_bench] OK: %s speedup %.2fx, drift %.2e\n%!" big.name big.speedup
      big.hsv_drift
  end
  else Printf.eprintf "[lyap_bench] smoke OK\n%!"
