(* Ablation studies for the design choices called out in DESIGN.md:
   sampling schemes, realification, one- vs two-sided projection, sparse
   orderings, and the retained input rank of the input-correlated variant. *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_circuit
open Pmtbr_core

(* Sampling scheme: accuracy of an order-10 spiral model per scheme. *)
let sampling_schemes () =
  Util.header "ABLATE A" "sampling scheme vs model accuracy (spiral, order 10)";
  let sys = Dss.of_netlist (Spiral.generate ()) in
  let w_max = Spiral.sample_band () in
  let om = Vec.linspace (w_max /. 100.0) w_max 50 in
  let href = Freq.sweep sys om in
  Util.row [ "scheme"; "count"; "rel_err" ];
  List.iter
    (fun (name, scheme) ->
      List.iter
        (fun count ->
          let pts = Sampling.points scheme ~count in
          let r = Pmtbr.reduce ~order:10 sys pts in
          let err = Freq.stream_max_rel_error (Freq.compare_sweep r.Pmtbr.rom om ~ref_:href) in
          Util.row [ name; string_of_int count; Util.fmt_e err ])
        [ 15; 30 ])
    [
      ("uniform", Sampling.Uniform { w_max });
      ("gauss", Sampling.Gauss { w_max });
      ("log", Sampling.Log { w_min = w_max /. 1e4; w_max });
    ]

(* Realification: [Re z, Im z] spans the same space as [z, z*]; verify the
   projection subspaces agree numerically. *)
let realification () =
  Util.header "ABLATE B" "realification: [Re z, Im z] vs explicit conjugate pair";
  let sys = Dss.of_netlist (Rc_line.generate ~sections:25 ()) in
  let pts = Sampling.points (Sampling.Uniform { w_max = 3e9 }) ~count:8 in
  let z_re_im = Zmat.build sys pts in
  (* explicit conjugate-pair real representation: the sum and the scaled
     difference of the pair, i.e. [2 Re z, 2 Im z]; spans must match *)
  let pair =
    Array.map
      (fun p ->
        let cols = Dss.shifted_solve sys p.Sampling.s in
        let n = Array.length cols.(0) in
        Mat.init n 2 (fun i j ->
            let z = cols.(0).(i) in
            if j = 0 then 2.0 *. z.Complex.re else 2.0 *. z.Complex.im))
      pts
  in
  let z_pair = Array.fold_left Mat.hcat (Array.get pair 0) (Array.sub pair 1 (Array.length pair - 1)) in
  let angle = Subspace.max_angle z_re_im z_pair in
  Util.row [ "max_principal_angle_rad"; Util.fmt_e angle ]

(* One-sided congruence vs two-sided cross-Gramian on a nonsymmetric
   (RLC) example. *)
let projection_sides () =
  Util.header "ABLATE C" "one-sided (congruence) vs two-sided (cross-Gramian) projection";
  let sys = Dss.of_netlist (Peec.generate ~cells:12 ()) in
  let w_max = Peec.sample_band () /. 2.0 in
  let om = Vec.linspace (w_max /. 100.0) w_max 40 in
  let href = Freq.sweep sys om in
  let pts = Sampling.points (Sampling.Uniform { w_max }) ~count:20 in
  Util.row [ "order"; "congruence_err"; "cross_gramian_err" ];
  List.iter
    (fun q ->
      let one = Pmtbr.reduce ~order:q sys pts in
      let e1 = Freq.stream_max_rel_error (Freq.compare_sweep one.Pmtbr.rom om ~ref_:href) in
      let two = Cross_gramian.reduce ~order:q sys pts in
      let e2 = Freq.stream_max_rel_error (Freq.compare_sweep two.Cross_gramian.rom om ~ref_:href) in
      Util.row [ string_of_int q; Util.fmt_e e1; Util.fmt_e e2 ])
    [ 8; 16; 24; 32 ]

(* Sparse orderings: fill-in and factor time on a substrate matrix. *)
let orderings () =
  Util.header "ABLATE D" "sparse LU ordering: fill-in and factor time (substrate 400)";
  let m = Pmtbr_circuit.Mna.stamp (Substrate.generate ~ports:400 ~seed:7 ()) in
  let pencil = Pmtbr_sparse.Shifted.pencil ~e:m.Pmtbr_circuit.Mna.e ~a:m.Pmtbr_circuit.Mna.a in
  let s = { Complex.re = 0.0; im = Substrate.corner_frequency () } in
  Util.row [ "ordering"; "nnz(L+U)"; "time_ms" ];
  List.iter
    (fun (name, ordering) ->
      let f, dt = Util.time_it (fun () -> Pmtbr_sparse.Shifted.factorize ~ordering pencil s) in
      Util.row [ name; string_of_int (Pmtbr_sparse.Sparse_lu.C.nnz f); Printf.sprintf "%.1f" (dt *. 1e3) ])
    [
      ("natural", Pmtbr_sparse.Ordering.Natural);
      ("rcm", Pmtbr_sparse.Ordering.Rcm);
      ("min_degree", Pmtbr_sparse.Ordering.Min_degree);
    ]

(* Input rank: accuracy of the input-correlated reduction as the retained
   number of input directions varies. *)
let input_rank () =
  Util.header "ABLATE E" "input-correlated reduction vs retained input rank (mesh)";
  let sys = Dss.of_netlist (Rc_mesh.generate ~rows:8 ~cols:8 ~ports:32 ()) in
  let rng = Pmtbr_signal.Rng.create 17 in
  let waves =
    Pmtbr_signal.Waveform.dithered_square_bank ~rng ~ports:32 ~period:2e-9 ~dither:0.1
  in
  let inputs = Pmtbr_signal.Waveform.sample_matrix waves ~t0:0.0 ~t1:8e-9 ~samples:400 in
  let w_max = 2.0 *. Float.pi *. 5e9 in
  let pts = Sampling.points (Sampling.Uniform { w_max }) ~count:10 in
  let u t = Array.map (fun w -> 1e-3 *. w t) waves in
  let full = Tdsim.simulate sys ~t0:0.0 ~t1:8e-9 ~dt:0.02e-9 ~u in
  let scale = Mat.max_abs full.Tdsim.outputs in
  Util.row [ "input_rank"; "model_order"; "rms_err" ];
  List.iter
    (fun directions ->
      let r =
        Input_correlated.reduce_deterministic ~order:15 ~input_tol:1e-9 ~directions sys ~inputs
          ~points:pts
      in
      let red = Tdsim.simulate r.Input_correlated.rom ~t0:0.0 ~t1:8e-9 ~dt:0.02e-9 ~u in
      Util.row
        [
          string_of_int r.Input_correlated.input_rank;
          string_of_int (Dss.order r.Input_correlated.rom);
          Util.fmt_e (Tdsim.output_rms_error full red /. scale);
        ])
    [ 1; 2; 4; 8 ]

(* Adaptive order control: SVD-per-batch vs RRQR-per-batch monitoring. *)
let order_control () =
  Util.header "ABLATE F" "adaptive order control: SVD vs RRQR monitoring (rc line)";
  let sys = Dss.of_netlist (Rc_line.generate ~sections:60 ()) in
  let pts = Sampling.points (Sampling.Uniform { w_max = 3e9 }) ~count:64 in
  let om = Vec.linspace 0.0 3e9 30 in
  let href = Freq.sweep sys om in
  Util.row [ "monitor"; "samples_used"; "rel_err"; "time_ms" ];
  let measure name f =
    let r, dt = Util.time_it f in
    let err = Freq.stream_max_rel_error (Freq.compare_sweep r.Pmtbr.rom om ~ref_:href) in
    Util.row
      [ name; string_of_int r.Pmtbr.samples; Util.fmt_e err; Printf.sprintf "%.1f" (dt *. 1e3) ]
  in
  measure "svd" (fun () -> Pmtbr.reduce_adaptive ~tol:1e-9 ~batch:8 sys pts);
  measure "rrqr" (fun () -> Pmtbr.reduce_adaptive_rrqr ~tol:1e-9 ~batch:8 sys pts)

(* One-pass PMTBR vs the two-step PRIMA+TBR pipeline at equal final order. *)
let one_pass_vs_two_step () =
  Util.header "ABLATE G" "one-pass PMTBR vs two-step PRIMA+TBR (connector, in band)";
  let sys = Dss.of_netlist (Connector.generate ()) in
  let w8 = Connector.band_of_interest in
  let om = Vec.linspace (w8 /. 40.0) w8 40 in
  let href = Freq.sweep sys om in
  Util.row [ "order"; "pmtbr_err"; "two_step_err" ];
  List.iter
    (fun q ->
      let pm =
        Freq_selective.reduce ~order:q sys ~bands:[ Freq_selective.band ~lo:0.0 ~hi:w8 ] ~count:40
      in
      let e_pm = Freq.stream_max_rel_error (Freq.compare_sweep pm.Pmtbr.rom om ~ref_:href) in
      let ts = Two_step.reduce sys ~s0:(w8 /. 20.0) ~intermediate:(3 * q) ~order:q () in
      let e_ts = Freq.stream_max_rel_error (Freq.compare_sweep ts.Two_step.rom om ~ref_:href) in
      Util.row [ string_of_int q; Util.fmt_e e_pm; Util.fmt_e e_ts ])
    [ 10; 14; 18; 22 ]

(* Frequency-domain vs time-domain (POD) sampling for a step workload. *)
let freq_vs_time_sampling () =
  Util.header "ABLATE H" "frequency sampling (PMTBR) vs time snapshots (POD), step drive";
  let sys = Dss.of_netlist (Rc_line.generate ~sections:40 ()) in
  let u _ = [| 1e-3 |] in
  let full = Tdsim.simulate sys ~t0:0.0 ~t1:30e-9 ~dt:0.03e-9 ~u in
  let scale = Mat.max_abs full.Tdsim.outputs in
  Util.row [ "order"; "pmtbr_transient_err"; "pod_transient_err" ];
  List.iter
    (fun q ->
      let pm = Pmtbr.reduce_uniform ~order:q sys ~w_max:1e9 ~count:20 in
      let pod = Time_sampled.reduce ~order:q sys ~u ~t1:30e-9 ~dt:0.03e-9 ~snapshots:120 in
      let sim s = Tdsim.simulate s ~t0:0.0 ~t1:30e-9 ~dt:0.03e-9 ~u in
      Util.row
        [
          string_of_int q;
          Util.fmt_e (Tdsim.output_rms_error full (sim pm.Pmtbr.rom) /. scale);
          Util.fmt_e (Tdsim.output_rms_error full (sim pod.Time_sampled.rom) /. scale);
        ])
    [ 2; 4; 6; 8 ]

(* How tight is the Glover bound?  Exact H-infinity error via the
   Hamiltonian bisection, boxed by the hsv lower bound and the 2*tail upper
   bound. *)
let bound_tightness () =
  Util.header "ABLATE I" "Glover bound tightness: hsv(q) <= true Hinf error <= 2*tail";
  let sys = Dss.of_netlist (Rc_line.generate ~sections:25 ()) in
  let t_full = Tbr.reduce_dss sys in
  let hsv = t_full.Tbr.hsv in
  Util.row [ "order"; "hsv_lower"; "true_hinf_error"; "glover_bound" ];
  List.iter
    (fun q ->
      let t = Tbr.reduce_dss ~order:q sys in
      let err = Hinf.error_norm ~rtol:1e-4 sys t.Tbr.rom in
      Util.row
        [
          string_of_int q;
          Util.fmt_e hsv.(q);
          Util.fmt_e err;
          Util.fmt_e (Tbr.error_bound hsv q);
        ])
    [ 2; 4; 6; 8 ]

let all () =
  sampling_schemes ();
  realification ();
  projection_sides ();
  orderings ();
  input_rank ();
  order_control ();
  one_pass_vs_two_step ();
  freq_vs_time_sampling ();
  bound_tightness ()
