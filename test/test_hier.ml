(* Tests for the hierarchical (domain-decomposed) reduction path:
   partition structural invariants (disjoint cover, no surviving
   cross-part entries, faithful sub-netlist interiors), flat-vs-hier
   transfer agreement (untruncated hier is an exact congruence transform
   of the full model; truncated hier tracks flat reduction), and the
   bitwise worker-invariance contract of the recombined ROM — the same
   contract Shift_engine and Par_kernel are tested under. *)

open Pmtbr_la
open Pmtbr_circuit
open Pmtbr_lti
open Pmtbr_core

let mesh ~rows ~cols ~ports = Rc_mesh.generate ~rows ~cols ~ports ()

let band_mesh = 1e10

let points count = Sampling.points (Sampling.Uniform { w_max = band_mesh }) ~count

(* ------------------------------------------------------------------ *)
(* Partition invariants                                                 *)
(* ------------------------------------------------------------------ *)

let check_cover nl parts =
  let pt = Partition.split ~parts nl in
  let sys = Dss.of_netlist nl in
  let n = Dss.order sys in
  Alcotest.(check int) "n recorded" n pt.Partition.n;
  let seen = Array.make n 0 in
  Array.iter (fun g -> seen.(g) <- seen.(g) + 1) pt.Partition.interface;
  Array.iter
    (fun (p : Partition.part) -> Array.iter (fun g -> seen.(g) <- seen.(g) + 1) p.Partition.states)
    pt.Partition.parts;
  Array.iteri
    (fun g c -> if c <> 1 then Alcotest.failf "state %d covered %d times" g c)
    seen;
  pt

let test_cover_and_sizes () =
  let nl = mesh ~rows:7 ~cols:9 ~ports:2 in
  let pt = check_cover nl 4 in
  if Partition.part_count pt < 2 then Alcotest.fail "expected at least 2 parts";
  let sizes = Partition.part_sizes pt in
  Array.iter (fun s -> if s <= 0 then Alcotest.fail "empty part survived") sizes;
  if Partition.interface_count pt <= 0 then Alcotest.fail "no interface on a connected mesh"

let test_single_part_no_interface () =
  let nl = mesh ~rows:5 ~cols:5 ~ports:1 in
  let pt = check_cover nl 1 in
  Alcotest.(check int) "one part" 1 (Partition.part_count pt);
  Alcotest.(check int) "empty interface" 0 (Partition.interface_count pt)

let test_bad_args () =
  let nl = mesh ~rows:3 ~cols:3 ~ports:1 in
  Alcotest.check_raises "parts < 1" (Invalid_argument "Partition.split: parts must be >= 1")
    (fun () -> ignore (Partition.split ~parts:0 nl))

(* the sub-netlist stamp must reproduce the interior block exactly:
   compare against the global stamp restricted to the part's states *)
let test_subnetlist_faithful () =
  let nl = mesh ~rows:6 ~cols:6 ~ports:2 in
  let pt = Partition.split ~parts:3 nl in
  let sys = Dss.of_netlist nl in
  let ge = Dss.e_dense sys and ga = Dss.a_dense sys in
  Array.iter
    (fun (p : Partition.part) ->
      let se = Dss.e_dense p.Partition.sys and sa = Dss.a_dense p.Partition.sys in
      let nk = Array.length p.Partition.states in
      for i = 0 to nk - 1 do
        for j = 0 to nk - 1 do
          let gi = p.Partition.states.(i) and gj = p.Partition.states.(j) in
          if Mat.get se i j <> Mat.get ge gi gj then
            Alcotest.failf "E interior (%d,%d) differs from global" i j;
          if Mat.get sa i j <> Mat.get ga gi gj then
            Alcotest.failf "A interior (%d,%d) differs from global" i j
        done
      done)
    pt.Partition.parts

(* ------------------------------------------------------------------ *)
(* Nested-dissection invariants                                         *)
(* ------------------------------------------------------------------ *)

let rec subtree_parts = function
  | Partition.Leaf { part; _ } -> [ part ]
  | Partition.Node { left; right; _ } -> subtree_parts left @ subtree_parts right

(* budget recursion: every leaf fits, the tree is really multi-level, and
   the per-level cut summary accounts for the whole interface *)
let test_auto_budget () =
  let nl = mesh ~rows:10 ~cols:10 ~ports:2 in
  let budget = 30 in
  let pt = Partition.split_auto ~max_states:budget nl in
  Array.iter
    (fun s -> if s > budget then Alcotest.failf "part of %d states exceeds budget %d" s budget)
    (Partition.part_sizes pt);
  if Partition.tree_depth pt < 2 then Alcotest.fail "expected a multi-level tree";
  let cuts = Partition.level_cuts pt in
  Alcotest.(check int) "levels = depth" (Partition.tree_depth pt) (Array.length cuts);
  let total = Array.fold_left (fun acc (_, s) -> acc + s) 0 cuts in
  Alcotest.(check int) "level cuts cover interface" (Partition.interface_count pt) total

let test_depth_cap () =
  let nl = mesh ~rows:8 ~cols:8 ~ports:1 in
  let pt = Partition.split_auto ~max_states:1 ~depth_cap:2 nl in
  if Partition.tree_depth pt > 2 then
    Alcotest.failf "tree depth %d beyond cap 2" (Partition.tree_depth pt)

(* every Node's separator really separates: no E/A entry joins a state in
   the left subtree's interiors to one in the right's *)
let test_separator_separates () =
  let nl = mesh ~rows:9 ~cols:7 ~ports:2 in
  let pt = Partition.split_auto ~max_states:12 nl in
  let sys = Dss.of_netlist nl in
  let ge = Dss.e_dense sys and ga = Dss.a_dense sys in
  let states_of ps =
    List.concat_map (fun i -> Array.to_list pt.Partition.parts.(i).Partition.states) ps
  in
  let rec walk = function
    | Partition.Leaf _ -> ()
    | Partition.Node { left; right; _ } ->
        let ls = states_of (subtree_parts left) and rs = states_of (subtree_parts right) in
        List.iter
          (fun gi ->
            List.iter
              (fun gj ->
                if
                  Mat.get ge gi gj <> 0.0 || Mat.get ga gi gj <> 0.0
                  || Mat.get ge gj gi <> 0.0 || Mat.get ga gj gi <> 0.0
                then Alcotest.failf "entry (%d,%d) crosses a separator" gi gj)
              rs)
          ls;
        walk left;
        walk right
  in
  walk pt.Partition.tree

(* determinism of the tree and of each leaf's content address: two splits
   of the same netlist agree part-by-part on the canonical sub-netlist
   render (what the store hashes), and every coupling column of a part
   lands on one of its ancestor separators *)
let test_tree_stable_and_ancestors () =
  let nl = mesh ~rows:8 ~cols:8 ~ports:2 in
  let render (p : Partition.part) =
    Spice_ir.render (Spice_ir.canonical (Spice_ir.of_netlist p.Partition.sub_netlist))
  in
  let pt1 = Partition.split_auto ~max_states:20 nl in
  let pt2 = Partition.split_auto ~max_states:20 nl in
  Alcotest.(check int) "same part count" (Partition.part_count pt1) (Partition.part_count pt2);
  Alcotest.(check int) "same depth" (Partition.tree_depth pt1) (Partition.tree_depth pt2);
  Array.iteri
    (fun i p1 ->
      Alcotest.(check string) "stable sub-netlist render" (render p1)
        (render pt2.Partition.parts.(i)))
    pt1.Partition.parts;
  let anc = Partition.leaf_ancestors pt1 in
  Alcotest.(check int) "ancestors per leaf" (Partition.part_count pt1) (Array.length anc);
  Array.iteri
    (fun i (p : Partition.part) ->
      let allowed = anc.(i) in
      let check_cols entries side =
        Array.iter
          (fun (r, c, _) ->
            let gl = pt1.Partition.interface.(if side then c else r) in
            if not (List.mem gl allowed) then
              Alcotest.failf "part %d couples to interface state %d outside its ancestors" i gl)
          entries
      in
      check_cols p.Partition.e_ig true;
      check_cols p.Partition.a_ig true;
      check_cols p.Partition.e_gi false;
      check_cols p.Partition.a_gi false)
    pt1.Partition.parts

(* ------------------------------------------------------------------ *)
(* Flat-vs-hier agreement                                               *)
(* ------------------------------------------------------------------ *)

let max_rel_err ref_sys apx_sys omegas =
  let ref_ = Freq.sweep ref_sys omegas in
  let apx = Freq.sweep apx_sys omegas in
  Freq.max_rel_error ref_ apx

let omegas_mesh = Array.init 9 (fun i -> 1e6 *. (10.0 ** (0.5 *. float_of_int i)))

(* untruncated subdomain bases: the recombination is an exact congruence
   transform, so the ports see the full model to roundoff *)
let test_untruncated_exact () =
  let nl = mesh ~rows:8 ~cols:8 ~ports:2 in
  let full = Dss.of_netlist nl in
  let rom, st = Hier_reduce.reduce_stats ~order:10_000 ~parts:4 nl (points 4) in
  Alcotest.(check int) "untruncated order = states" st.Hier_reduce.states st.Hier_reduce.order;
  let err = max_rel_err full rom omegas_mesh in
  if err > 1e-6 then Alcotest.failf "untruncated hier drifts from full model: %.3e" err

(* truncated: hier tracks the flat reduction within the shared tolerance *)
let test_truncated_tracks_flat () =
  let nl = mesh ~rows:9 ~cols:9 ~ports:3 in
  let full = Dss.of_netlist nl in
  let flat = (Pmtbr.reduce ~tol:1e-12 full (points 8)).Pmtbr.rom in
  let rom, _ = Hier_reduce.reduce_stats ~tol:1e-12 ~parts:3 nl (points 8) in
  let e_flat = max_rel_err full flat omegas_mesh in
  let e_hier = max_rel_err full rom omegas_mesh in
  if e_hier > 1e-6 then Alcotest.failf "hier error %.3e above 1e-6 (flat %.3e)" e_hier e_flat

(* parts:1 with no ports dropped reduces to the flat sampled pipeline *)
let test_one_part_matches_flat_samples () =
  let nl = mesh ~rows:6 ~cols:6 ~ports:2 in
  let full = Dss.of_netlist nl in
  let rom, st = Hier_reduce.reduce_stats ~tol:1e-12 ~parts:1 nl (points 6) in
  Alcotest.(check int) "no interface" 0 st.Hier_reduce.interface;
  let err = max_rel_err full rom omegas_mesh in
  if err > 1e-6 then Alcotest.failf "single-part hier drifts: %.3e" err

let rom_digest rom =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (Dss.e_dense rom, Dss.a_dense rom, Dss.b_matrix rom, Dss.c_matrix rom)
          []))

(* ------------------------------------------------------------------ *)
(* Interface compression                                                *)
(* ------------------------------------------------------------------ *)

let test_interface_compression () =
  let nl = mesh ~rows:9 ~cols:9 ~ports:2 in
  let full = Dss.of_netlist nl in
  let pts = points 8 in
  let rom, st = Hier_reduce.reduce_stats ~tol:1e-12 ~interface_tol:1e-10 ~parts:4 nl pts in
  if st.Hier_reduce.interface_kept > st.Hier_reduce.interface then
    Alcotest.failf "kept %d > interface %d" st.Hier_reduce.interface_kept st.Hier_reduce.interface;
  Alcotest.(check int) "order accounts for kept interface" st.Hier_reduce.order
    (Array.fold_left ( + ) st.Hier_reduce.interface_kept st.Hier_reduce.sub_orders);
  let err = max_rel_err full rom omegas_mesh in
  if err > 1e-6 then Alcotest.failf "compressed hier error %.3e > 1e-6" err

(* a tolerance that keeps full rank must return the exact-interface model
   bitwise unchanged — the documented fallback *)
let test_compression_exact_fallback () =
  let nl = mesh ~rows:7 ~cols:7 ~ports:2 in
  let pts = points 6 in
  let rom0, st0 = Hier_reduce.reduce_stats ~tol:1e-12 ~parts:3 nl pts in
  let rom1, st1 =
    Hier_reduce.reduce_stats ~tol:1e-12 ~interface_tol:1e-300 ~parts:3 nl pts
  in
  Alcotest.(check int) "full rank kept" st0.Hier_reduce.interface st1.Hier_reduce.interface_kept;
  Alcotest.(check string) "fallback is bitwise the exact-interface ROM" (rom_digest rom0)
    (rom_digest rom1)

(* ------------------------------------------------------------------ *)
(* Bitwise worker-invariance                                            *)
(* ------------------------------------------------------------------ *)

let test_worker_invariance () =
  let nl = mesh ~rows:8 ~cols:8 ~ports:2 in
  let pts = points 6 in
  let digests =
    List.map
      (fun (w, over) ->
        let rom, _ =
          Hier_reduce.reduce_stats ~tol:1e-10 ~interface_tol:1e-9 ~workers:w ~oversubscribe:over
            ~parts:4 nl pts
        in
        rom_digest rom)
      [ (1, false); (2, true); (5, true) ]
  in
  match digests with
  | [ d1; d2; d3 ] ->
      Alcotest.(check string) "workers 1 == 2" d1 d2;
      Alcotest.(check string) "workers 1 == 5" d1 d3
  | _ -> assert false

(* the two-phase recombination alone (project_part fanned over the pool,
   then the serial assembly) is bitwise worker-invariant given the same
   per-part bases *)
let test_recombine_invariance () =
  let nl = mesh ~rows:8 ~cols:8 ~ports:2 in
  let pts = points 5 in
  let pt = Partition.split ~parts:4 nl in
  let bases =
    Array.map
      (fun part -> (Hier_reduce.reduce_part ~tol:1e-10 part pts).Hier_reduce.basis)
      pt.Partition.parts
  in
  let d1 = rom_digest (Hier_reduce.recombine ~workers:1 pt bases) in
  let d4 = rom_digest (Hier_reduce.recombine ~workers:4 pt bases) in
  Alcotest.(check string) "recombine workers 1 == 4" d1 d4

(* ------------------------------------------------------------------ *)
(* qcheck properties                                                    *)
(* ------------------------------------------------------------------ *)

(* random mesh, any worker count, any valid partition count: hier agrees
   with the full model within tolerance, and the ROM digest is invariant
   under the worker count *)
let prop_hier_agrees_and_invariant =
  QCheck2.Test.make ~name:"hier agrees with flat and is worker-invariant (rc_mesh)" ~count:6
    QCheck2.Gen.(
      tup4 (int_range 4 8) (int_range 4 8) (int_range 1 5) (int_range 1 4))
    (fun (rows, cols, parts, workers) ->
      let nl = mesh ~rows ~cols ~ports:2 in
      let full = Dss.of_netlist nl in
      let pts = points 6 in
      let rom1, _ = Hier_reduce.reduce_stats ~tol:1e-12 ~parts ~workers:1 nl pts in
      let romw, _ =
        Hier_reduce.reduce_stats ~tol:1e-12 ~parts ~workers ~oversubscribe:true nl pts
      in
      if rom_digest rom1 <> rom_digest romw then
        QCheck2.Test.fail_report "ROM digest depends on worker count";
      let err = max_rel_err full rom1 omegas_mesh in
      if err > 1e-6 then
        QCheck2.Test.fail_reportf "hier error %.3e > 1e-6 (rows %d cols %d parts %d)" err rows
          cols parts;
      true)

let prop_substrate_agrees =
  QCheck2.Test.make ~name:"hier agrees with full model (substrate)" ~count:4
    QCheck2.Gen.(tup3 (int_range 20 40) (int_range 2 4) (int_range 0 999))
    (fun (internal, parts, seed) ->
      let nl = Substrate.generate ~ports:3 ~internal ~seed () in
      let full = Dss.of_netlist nl in
      let w0 = Substrate.corner_frequency () in
      let pts = Sampling.points (Sampling.Uniform { w_max = 4.0 *. w0 }) ~count:8 in
      let omegas = Array.init 7 (fun i -> w0 *. (0.25 +. (0.5 *. float_of_int i))) in
      let rom, _ = Hier_reduce.reduce_stats ~tol:1e-12 ~parts nl pts in
      let err = max_rel_err full rom omegas in
      if err > 1e-6 then
        QCheck2.Test.fail_reportf "substrate hier error %.3e > 1e-6 (internal %d parts %d)" err
          internal parts;
      true)

(* the full new pipeline at random shapes: budget-driven dissection keeps
   every part within budget, the interface-compressed ROM still agrees
   with the full model, and the digest ignores the worker count *)
let prop_auto_compressed =
  QCheck2.Test.make
    ~name:"auto-partitioned, interface-compressed hier agrees and is worker-invariant" ~count:4
    QCheck2.Gen.(tup4 (int_range 5 8) (int_range 5 8) (int_range 8 24) (int_range 2 4))
    (fun (rows, cols, budget, workers) ->
      let nl = mesh ~rows ~cols ~ports:2 in
      let full = Dss.of_netlist nl in
      let pts = points 6 in
      Array.iter
        (fun s ->
          if s > budget then QCheck2.Test.fail_reportf "part of %d states > budget %d" s budget)
        (Partition.part_sizes (Partition.split_auto ~max_states:budget nl));
      let rom1, st =
        Hier_reduce.reduce_auto_stats ~tol:1e-12 ~interface_tol:1e-9 ~max_states:budget
          ~workers:1 nl pts
      in
      let romw, _ =
        Hier_reduce.reduce_auto_stats ~tol:1e-12 ~interface_tol:1e-9 ~max_states:budget ~workers
          ~oversubscribe:true nl pts
      in
      if rom_digest rom1 <> rom_digest romw then
        QCheck2.Test.fail_report "compressed ROM digest depends on worker count";
      if st.Hier_reduce.interface_kept > st.Hier_reduce.interface then
        QCheck2.Test.fail_report "compression grew the interface";
      let err = max_rel_err full rom1 omegas_mesh in
      if err > 1e-6 then
        QCheck2.Test.fail_reportf "compressed hier error %.3e > 1e-6 (rows %d cols %d budget %d)"
          err rows cols budget;
      true)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_hier_agrees_and_invariant; prop_substrate_agrees; prop_auto_compressed ]

let () =
  Alcotest.run "pmtbr_hier"
    [
      ( "partition",
        [
          Alcotest.test_case "cover and sizes" `Quick test_cover_and_sizes;
          Alcotest.test_case "single part" `Quick test_single_part_no_interface;
          Alcotest.test_case "bad args" `Quick test_bad_args;
          Alcotest.test_case "sub-netlist faithful" `Quick test_subnetlist_faithful;
        ] );
      ( "dissection",
        [
          Alcotest.test_case "auto budget" `Quick test_auto_budget;
          Alcotest.test_case "depth cap" `Quick test_depth_cap;
          Alcotest.test_case "separator separates" `Quick test_separator_separates;
          Alcotest.test_case "tree stable, ancestors cover couplings" `Quick
            test_tree_stable_and_ancestors;
        ] );
      ( "compression",
        [
          Alcotest.test_case "interface compression" `Quick test_interface_compression;
          Alcotest.test_case "exact fallback" `Quick test_compression_exact_fallback;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "untruncated exact" `Quick test_untruncated_exact;
          Alcotest.test_case "truncated tracks flat" `Quick test_truncated_tracks_flat;
          Alcotest.test_case "one part" `Quick test_one_part_matches_flat_samples;
        ] );
      ( "contract",
        [
          Alcotest.test_case "worker invariance" `Quick test_worker_invariance;
          Alcotest.test_case "recombine invariance" `Quick test_recombine_invariance;
        ] );
      ("properties", props);
    ]
