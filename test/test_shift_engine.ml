(* Tests for the parallel multi-shift sampling engine: the determinism
   contract (any worker count produces bitwise-identical sample matrices),
   agreement with the one-shot legacy path, and clean failure propagation
   out of worker domains. *)

open Pmtbr_la
open Pmtbr_sparse
open Pmtbr_circuit
open Pmtbr_lti
open Pmtbr_core

let mesh_system ~rows ~cols ~ports =
  Dss.of_netlist (Rc_mesh.generate ~rows ~cols ~ports ())

let bitwise_equal (a : Mat.t) (b : Mat.t) =
  a.Mat.rows = b.Mat.rows && a.Mat.cols = b.Mat.cols && a.Mat.data = b.Mat.data

(* The contract the whole test exists for: the sample matrix is a pure
   function of (system, points) — never of the worker count, the chunk
   size, or the scheduling.  [oversubscribe] makes the engine really spawn
   the domains even on a single-core machine. *)
let prop_parallel_equals_serial =
  QCheck2.Test.make ~name:"parallel == serial (bitwise)" ~count:12
    QCheck2.Gen.(
      tup6 (int_range 3 6) (int_range 3 6) (int_range 1 3) (int_range 3 10) (int_range 2 4)
        (int_range 1 3))
    (fun (rows, cols, ports, npts, workers, chunk) ->
      let sys = mesh_system ~rows ~cols ~ports in
      let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:npts in
      let serial = Shift_engine.build ~workers:1 sys pts in
      let par = Shift_engine.build ~workers ~oversubscribe:true ~chunk sys pts in
      bitwise_equal serial par)

(* The observability side goes through the hermitian solve path; it must
   obey the same contract. *)
let prop_parallel_equals_serial_left =
  QCheck2.Test.make ~name:"left samples: parallel == serial (bitwise)" ~count:8
    QCheck2.Gen.(tup4 (int_range 3 5) (int_range 3 5) (int_range 4 8) (int_range 2 4))
    (fun (rows, cols, npts, workers) ->
      let sys = mesh_system ~rows ~cols ~ports:2 in
      let pts = Sampling.points (Sampling.Log { w_min = 1e6; w_max = 1e10 }) ~count:npts in
      let serial = Shift_engine.build_left ~workers:1 sys pts in
      let par = Shift_engine.build_left ~workers ~oversubscribe:true sys pts in
      bitwise_equal serial par)

(* The engine's refactorised numerics against the legacy path (a fresh
   pivoting factorisation at every point): same subspace, same matrix up
   to roundoff at the matrix scale. *)
let prop_engine_matches_legacy =
  QCheck2.Test.make ~name:"engine matches one-shot legacy path" ~count:10
    QCheck2.Gen.(tup3 (int_range 3 6) (int_range 3 6) (int_range 3 8))
    (fun (rows, cols, npts) ->
      let sys = mesh_system ~rows ~cols ~ports:2 in
      let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:npts in
      let rhs = Dss.b_matrix sys in
      let legacy =
        match Array.to_list (Array.map (Zmat.point_block sys ~rhs) pts) with
        | [] -> assert false
        | first :: rest -> List.fold_left Mat.hcat first rest
      in
      let engine = Shift_engine.build ~workers:1 sys pts in
      let scale = Float.max (Mat.max_abs legacy) 1e-300 in
      Mat.max_abs (Mat.sub legacy engine) /. scale < 1e-9)

(* A singular shift inside the sweep: E = A = I makes (sE - A) = (s-1) I,
   singular exactly at s = 1.  The template (first point) is fine, a later
   task fails; the engine must re-raise Sparse_lu.C.Singular cleanly from
   any worker count instead of deadlocking or returning garbage. *)
let singular_system n =
  let e = Triplet.create n n and a = Triplet.create n n in
  for i = 0 to n - 1 do
    Triplet.add e i i 1.0;
    Triplet.add a i i 1.0
  done;
  Dss.Sparse
    {
      e;
      a;
      pencil = Shifted.pencil ~e ~a;
      b = Mat.init n 1 (fun i _ -> if i = 0 then 1.0 else 0.0);
      c = Mat.init 1 n (fun _ j -> if j = n - 1 then 1.0 else 0.0);
      n;
    }

let singular_points =
  [|
    { Sampling.s = { Complex.re = 2.0; im = 0.0 }; weight = 1.0 };
    { Sampling.s = { Complex.re = 1.0; im = 0.0 }; weight = 1.0 };
    { Sampling.s = { Complex.re = 3.0; im = 0.0 }; weight = 1.0 };
  |]

let test_singular_propagates_serial () =
  let sys = singular_system 12 in
  match Shift_engine.build ~workers:1 sys singular_points with
  | _ -> Alcotest.fail "expected Singular"
  | exception Sparse_lu.C.Singular _ -> ()

let test_singular_propagates_parallel () =
  let sys = singular_system 12 in
  match Shift_engine.build ~workers:3 ~oversubscribe:true sys singular_points with
  | _ -> Alcotest.fail "expected Singular"
  | exception Sparse_lu.C.Singular _ -> ()

let test_stats_sane () =
  let sys = mesh_system ~rows:4 ~cols:4 ~ports:2 in
  let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:7 in
  let _, st = Shift_engine.build_stats ~workers:2 ~oversubscribe:true sys pts in
  Alcotest.(check int) "solves" 7 st.Shift_engine.solves;
  Alcotest.(check int) "workers" 2 st.Shift_engine.workers;
  Alcotest.(check int) "busy per worker" 2 (Array.length st.Shift_engine.busy_s);
  let u = Shift_engine.utilisation st in
  if u < 0.0 || u > 1.0 then Alcotest.failf "utilisation %g out of [0,1]" u

let test_utilisation_degenerate () =
  (* a run that never ticked the clock has no meaningful utilisation;
     reporting 1.0 (as the old code did) painted an idle pool as fully
     busy in the CLI summary *)
  let st =
    {
      Shift_engine.solves = 0;
      workers = 2;
      factor_s = 0.0;
      solve_s = 0.0;
      wall_s = 0.0;
      busy_s = [| 0.0; 0.0 |];
    }
  in
  Alcotest.(check (float 0.0)) "zero wall clock" 0.0 (Shift_engine.utilisation st);
  let st = { st with Shift_engine.workers = 0; busy_s = [||] } in
  Alcotest.(check (float 0.0)) "no workers" 0.0 (Shift_engine.utilisation st)

let test_worker_cap () =
  (* without [oversubscribe] the pool never exceeds the hardware *)
  let sys = mesh_system ~rows:4 ~cols:4 ~ports:1 in
  let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:5 in
  let _, st = Shift_engine.build_stats ~workers:64 sys pts in
  if st.Shift_engine.workers > Shift_engine.default_workers () then
    Alcotest.failf "pool %d exceeds the %d-core cap" st.Shift_engine.workers
      (Shift_engine.default_workers ())

(* End-to-end: the reduction driver threaded through ?workers gives the
   same reduced model regardless of the worker count. *)
let test_reduce_worker_invariant () =
  let sys = mesh_system ~rows:5 ~cols:5 ~ports:2 in
  let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:10 in
  let sv1 = Pmtbr.sample_singular_values ~workers:1 sys pts in
  let sv3 = Pmtbr.sample_singular_values ~workers:3 sys pts in
  if sv1 <> sv3 then Alcotest.fail "singular values differ with worker count"

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_parallel_equals_serial; prop_parallel_equals_serial_left; prop_engine_matches_legacy ]

let () =
  Alcotest.run "pmtbr_shift_engine"
    [
      ("determinism", props);
      ( "failures",
        [
          Alcotest.test_case "singular propagates (serial)" `Quick test_singular_propagates_serial;
          Alcotest.test_case "singular propagates (parallel)" `Quick
            test_singular_propagates_parallel;
        ] );
      ( "pool",
        [
          Alcotest.test_case "stats sane" `Quick test_stats_sane;
          Alcotest.test_case "utilisation degenerate" `Quick test_utilisation_degenerate;
          Alcotest.test_case "worker cap" `Quick test_worker_cap;
          Alcotest.test_case "reduce worker-invariant" `Quick test_reduce_worker_invariant;
        ] );
    ]
