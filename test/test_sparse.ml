(* Tests for the sparse substrate: CSC assembly, orderings, sparse LU. *)

open Pmtbr_la
open Pmtbr_sparse

let check_small ?(tol = 1e-9) msg value =
  if Float.abs value > tol then Alcotest.failf "%s: |%.3e| > %g" msg value tol

(* A sparse diagonally dominant test matrix shaped like a 1-D Laplacian with
   a few random long-range couplings. *)
let laplacian_like ?(seed = 1) n =
  let t = Triplet.create n n in
  for i = 0 to n - 1 do
    Triplet.add t i i 4.0;
    if i > 0 then Triplet.add t i (i - 1) (-1.0);
    if i < n - 1 then Triplet.add t i (i + 1) (-1.0)
  done;
  let r = Mat.random ~seed 8 2 in
  for k = 0 to 7 do
    let i = abs (int_of_float (Mat.get r k 0 *. 1000.0)) mod n in
    let j = abs (int_of_float (Mat.get r k 1 *. 1000.0)) mod n in
    if i <> j then Triplet.add t i j (-0.3)
  done;
  t

let test_triplet_roundtrip () =
  let t = Triplet.create 3 3 in
  Triplet.add t 0 0 1.0;
  Triplet.add t 0 0 2.0;
  (* duplicate: summed *)
  Triplet.add t 2 1 5.0;
  let m = Csc.of_triplet t in
  Alcotest.(check (float 0.0)) "summed dup" 3.0 (Csc.R.get m 0 0);
  Alcotest.(check (float 0.0)) "entry" 5.0 (Csc.R.get m 2 1);
  Alcotest.(check (float 0.0)) "zero" 0.0 (Csc.R.get m 1 1);
  Alcotest.(check int) "nnz" 2 (Csc.R.nnz m)

let test_csc_mv () =
  let t = laplacian_like 20 in
  let m = Csc.of_triplet t in
  let d = Csc.to_dense m in
  let x = Array.init 20 (fun i -> sin (float_of_int i)) in
  check_small "mv vs dense" (Vec.max_abs_diff (Csc.R.mv m x) (Mat.mv d x));
  check_small "mv^T vs dense" (Vec.max_abs_diff (Csc.R.mv_transposed m x) (Mat.mv_transposed d x))

let test_csc_transpose () =
  let t = laplacian_like ~seed:3 15 in
  let m = Csc.of_triplet t in
  let mt = Csc.R.transpose m in
  let d = Csc.to_dense m and dt = Csc.to_dense mt in
  check_small "transpose" (Mat.frobenius (Mat.sub dt (Mat.transpose d)))

let test_csc_add_scale () =
  let t = laplacian_like ~seed:5 10 in
  let m = Csc.of_triplet t in
  let two_m = Csc.R.add m m in
  let d = Csc.to_dense m in
  check_small "add" (Mat.frobenius (Mat.sub (Csc.to_dense two_m) (Mat.scale 2.0 d)));
  let sm = Csc.R.scale 3.0 m in
  check_small "scale" (Mat.frobenius (Mat.sub (Csc.to_dense sm) (Mat.scale 3.0 d)))

let test_complex_combination () =
  let e = Triplet.create 2 2 in
  Triplet.add e 0 0 1.0;
  Triplet.add e 1 1 2.0;
  let a = Triplet.create 2 2 in
  Triplet.add a 0 1 1.0;
  Triplet.add a 1 0 (-1.0);
  let s = { Complex.re = 0.0; im = 3.0 } in
  let m = Csc.complex_combination ~alpha:s e ~beta:{ Complex.re = -1.0; im = 0.0 } a in
  let d = Csc.to_dense_complex m in
  (* sE - A = [[3i, -1], [1, 6i]] *)
  let expect = Cmat.of_arrays
      [| [| { Complex.re = 0.0; im = 3.0 }; { Complex.re = -1.0; im = 0.0 } |];
         [| { Complex.re = 1.0; im = 0.0 }; { Complex.re = 0.0; im = 6.0 } |] |]
  in
  check_small "sE - A" (Cmat.frobenius (Cmat.sub d expect))

let permutation_ok name p n =
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then Alcotest.failf "%s: invalid permutation" name;
      seen.(i) <- true)
    p;
  Alcotest.(check int) (name ^ " length") n (Array.length p)

let test_orderings_are_permutations () =
  let t = laplacian_like ~seed:7 30 in
  let m = Csc.of_triplet t in
  permutation_ok "natural" (Ordering.compute Ordering.Natural m.Csc.R.colptr m.Csc.R.rowind 30) 30;
  permutation_ok "rcm" (Ordering.compute Ordering.Rcm m.Csc.R.colptr m.Csc.R.rowind 30) 30;
  permutation_ok "min_degree" (Ordering.compute Ordering.Min_degree m.Csc.R.colptr m.Csc.R.rowind 30) 30

let test_rcm_reduces_bandwidth () =
  (* a star graph has terrible natural bandwidth; RCM should not *increase*
     the profile of a path graph shuffled at random *)
  let n = 40 in
  let t = Triplet.create n n in
  (* random relabelled path *)
  let label = Array.init n (fun i -> (i * 17) mod n) in
  for i = 0 to n - 1 do
    Triplet.add t label.(i) label.(i) 4.0
  done;
  for i = 0 to n - 2 do
    Triplet.add t label.(i) label.(i + 1) (-1.0);
    Triplet.add t label.(i + 1) label.(i) (-1.0)
  done;
  let m = Csc.of_triplet t in
  let p = Ordering.rcm m.Csc.R.colptr m.Csc.R.rowind n in
  (* inverse permutation: position of each node in the order *)
  let pos = Array.make n 0 in
  Array.iteri (fun k i -> pos.(i) <- k) p;
  let bw = ref 0 in
  for i = 0 to n - 2 do
    bw := max !bw (abs (pos.(label.(i)) - pos.(label.(i + 1))))
  done;
  if !bw > 2 then Alcotest.failf "rcm bandwidth %d on a path" !bw

let sparse_solve_check ?(ordering = Ordering.Natural) t =
  let m = Csc.of_triplet t in
  let n = m.Csc.R.rows in
  let f = Sparse_lu.R.factorize ~ordering m in
  let b = Array.init n (fun i -> cos (float_of_int i)) in
  let x = Sparse_lu.R.solve_vec f b in
  check_small ~tol:1e-9 "Ax - b" (Vec.max_abs_diff (Csc.R.mv m x) b);
  let xt = Sparse_lu.R.solve_transposed_vec f b in
  check_small ~tol:1e-9 "A^T x - b" (Vec.max_abs_diff (Csc.R.mv_transposed m xt) b)

let test_sparse_lu_natural () = sparse_solve_check (laplacian_like ~seed:11 50)
let test_sparse_lu_rcm () = sparse_solve_check ~ordering:Ordering.Rcm (laplacian_like ~seed:13 50)

let test_sparse_lu_min_degree () =
  sparse_solve_check ~ordering:Ordering.Min_degree (laplacian_like ~seed:17 50)

let test_sparse_lu_vs_dense () =
  let t = laplacian_like ~seed:19 25 in
  let m = Csc.of_triplet t in
  let d = Csc.to_dense m in
  let b = Array.init 25 (fun i -> float_of_int (i mod 5) -. 2.0) in
  let xs = Sparse_lu.R.solve_vec (Sparse_lu.R.factorize m) b in
  let xd = Mat.solve_vec d b in
  check_small ~tol:1e-9 "sparse vs dense" (Vec.max_abs_diff xs xd)

let test_sparse_lu_singular () =
  let t = Triplet.create 3 3 in
  Triplet.add t 0 0 1.0;
  Triplet.add t 1 1 1.0;
  (* row/col 2 empty -> structurally singular *)
  let m = Csc.R.of_entries 3 3 (Triplet.entries t) in
  (try
     ignore (Sparse_lu.R.factorize m);
     Alcotest.fail "expected Singular"
   with Sparse_lu.R.Singular _ -> ())

let test_sparse_lu_needs_pivoting () =
  (* zero diagonal forces row pivoting *)
  let t = Triplet.create 2 2 in
  Triplet.add t 0 1 1.0;
  Triplet.add t 1 0 1.0;
  let m = Csc.of_triplet t in
  let f = Sparse_lu.R.factorize m in
  let x = Sparse_lu.R.solve_vec f [| 3.0; 4.0 |] in
  check_small "pivoted solve" (Vec.max_abs_diff x [| 4.0; 3.0 |])

let test_complex_sparse_lu () =
  let e = laplacian_like ~seed:23 30 in
  let a = Triplet.create 30 30 in
  for i = 0 to 29 do
    Triplet.add a i i (-1.0 -. (0.1 *. float_of_int i))
  done;
  let p = Shifted.pencil ~e ~a in
  let s = { Complex.re = 0.1; im = 2.0 } in
  let f = Shifted.factorize p s in
  let b = Mat.random ~seed:29 30 2 in
  let cols = Shifted.solve_dense f b in
  (* residual against the dense assembly *)
  let dm =
    Cmat.axpby_real ~alpha:s (Csc.to_dense (Csc.of_triplet e)) ~beta:{ Complex.re = -1.0; im = 0.0 }
      (Csc.to_dense (Csc.of_triplet a))
  in
  Array.iteri
    (fun j x ->
      let r = Cvec.sub (Cmat.mv dm x) (Array.init 30 (fun i -> { Complex.re = Mat.get b i j; im = 0.0 })) in
      check_small ~tol:1e-9 "complex shifted residual" (Cvec.max_abs r))
    cols

let test_shifted_hermitian_solve () =
  let e = laplacian_like ~seed:31 20 in
  let a = Triplet.create 20 20 in
  for i = 0 to 19 do
    Triplet.add a i i (-2.0);
    if i > 0 then Triplet.add a i (i - 1) 0.5
  done;
  let p = Shifted.pencil ~e ~a in
  let s = { Complex.re = 0.3; im = 1.5 } in
  let f = Shifted.factorize p s in
  let b = Mat.random ~seed:37 20 1 in
  let x = (Shifted.solve_hermitian_dense f b).(0) in
  let dm =
    Cmat.axpby_real ~alpha:s (Csc.to_dense (Csc.of_triplet e)) ~beta:{ Complex.re = -1.0; im = 0.0 }
      (Csc.to_dense (Csc.of_triplet a))
  in
  let r =
    Cvec.sub
      (Cmat.mv (Cmat.conj_transpose dm) x)
      (Array.init 20 (fun i -> { Complex.re = Mat.get b i 0; im = 0.0 }))
  in
  check_small ~tol:1e-9 "hermitian solve residual" (Cvec.max_abs r)

(* property: sparse LU solves random sparse diagonally dominant systems *)
let prop_sparse_lu =
  QCheck2.Test.make ~name:"sparse lu solves dd systems" ~count:30
    QCheck2.Gen.(pair (int_range 3 60) (int_range 0 10_000))
    (fun (n, seed) ->
      let t = laplacian_like ~seed n in
      let m = Csc.of_triplet t in
      let f = Sparse_lu.R.factorize ~ordering:Ordering.Rcm m in
      let b = Array.init n (fun i -> float_of_int ((i mod 7) - 3)) in
      let x = Sparse_lu.R.solve_vec f b in
      Vec.max_abs_diff (Csc.R.mv m x) b < 1e-8)

let prop_orderings_preserve_solution =
  QCheck2.Test.make ~name:"solution independent of ordering" ~count:20
    QCheck2.Gen.(pair (int_range 3 40) (int_range 0 10_000))
    (fun (n, seed) ->
      let t = laplacian_like ~seed n in
      let m = Csc.of_triplet t in
      let b = Array.init n (fun i -> sin (float_of_int (i * i))) in
      let solve o = Sparse_lu.R.solve_vec (Sparse_lu.R.factorize ~ordering:o m) b in
      let x1 = solve Ordering.Natural and x2 = solve Ordering.Rcm and x3 = solve Ordering.Min_degree in
      Vec.max_abs_diff x1 x2 < 1e-8 && Vec.max_abs_diff x1 x3 < 1e-8)

(* property: a refactorisation against a template (same pattern, new
   values) solves as well as a fresh factorisation, on both sides, and
   reuses the template's fill exactly *)
let prop_refactorize_matches_fresh =
  QCheck2.Test.make ~name:"refactorize matches fresh factorization" ~count:25
    QCheck2.Gen.(pair (int_range 3 50) (int_range 0 10_000))
    (fun (n, seed) ->
      let t = laplacian_like ~seed n in
      let m = Csc.of_triplet t in
      let tpl = Sparse_lu.R.factorize ~ordering:Ordering.Rcm m in
      (* same pattern, perturbed values: entrywise jitter that never lands
         on zero, so the nonzero structure is untouched *)
      let values2 =
        Array.mapi
          (fun k v -> v *. (1.0 +. (0.4 *. sin (float_of_int ((k * 37) + seed)))))
          m.Csc.R.values
      in
      let m2 = { m with Csc.R.values = values2 } in
      let f2 = Sparse_lu.R.refactorize tpl m2 in
      let b = Array.init n (fun i -> float_of_int ((i mod 9) - 4)) in
      let x = Sparse_lu.R.solve_vec f2 b in
      let xt = Sparse_lu.R.solve_transposed_vec f2 b in
      Vec.max_abs_diff (Csc.R.mv m2 x) b < 1e-8
      && Vec.max_abs_diff (Csc.R.mv_transposed m2 xt) b < 1e-8
      && Sparse_lu.R.nnz f2 = Sparse_lu.R.nnz tpl)

let test_refactorize_pattern_mismatch () =
  (* entries *outside* the template pattern must be rejected (a subset
     pattern is fine — missing entries are zeros and propagate correctly) *)
  let tridiag n =
    let t = Triplet.create n n in
    for i = 0 to n - 1 do
      Triplet.add t i i 4.0;
      if i > 0 then Triplet.add t i (i - 1) (-1.0);
      if i < n - 1 then Triplet.add t i (i + 1) (-1.0)
    done;
    t
  in
  let tpl = Sparse_lu.R.factorize (Csc.of_triplet (tridiag 12)) in
  let t2 = tridiag 12 in
  Triplet.add t2 11 0 (-0.5);
  (* long-range coupling the template never saw *)
  let m2 = Csc.of_triplet t2 in
  match Sparse_lu.R.refactorize tpl m2 with
  | _ -> Alcotest.fail "expected Invalid_argument on pattern mismatch"
  | exception Invalid_argument _ -> ()

(* property: the unboxed complex replay (Shifted.refactor_z) agrees with a
   fresh boxed factorisation at the same shift, on both solve sides *)
let prop_zreplay_matches_fresh =
  QCheck2.Test.make ~name:"unboxed replay matches fresh complex LU" ~count:20
    QCheck2.Gen.(
      tup4 (int_range 3 40) (int_range 0 10_000) (float_range 0.05 5.0) (float_range 0.05 5.0))
    (fun (n, seed, sre, sim) ->
      let e = laplacian_like ~seed n in
      let a = Triplet.create n n in
      for i = 0 to n - 1 do
        Triplet.add a i i (-1.0 -. (0.1 *. float_of_int i))
      done;
      let p = Shifted.pencil ~e ~a in
      let m = Shifted.prepare p ~template:{ Complex.re = 0.0; im = 1.0 } in
      let s = { Complex.re = sre; im = sim } in
      let zf = Shifted.refactor_z m s in
      let fresh = Shifted.factorize p s in
      let b = Mat.random ~seed:(seed + 1) n 2 in
      let close cols cols' =
        Array.for_all2 (fun x y -> Cvec.max_abs (Cvec.sub x y) < 1e-8) cols cols'
      in
      close (Shifted.zsolve_dense zf b) (Shifted.solve_dense fresh b)
      && close (Shifted.zsolve_hermitian_dense zf b) (Shifted.solve_hermitian_dense fresh b))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_sparse_lu;
      prop_orderings_preserve_solution;
      prop_refactorize_matches_fresh;
      prop_zreplay_matches_fresh;
    ]

let () =
  Alcotest.run "pmtbr_sparse"
    [
      ( "csc",
        [
          Alcotest.test_case "triplet roundtrip" `Quick test_triplet_roundtrip;
          Alcotest.test_case "mv" `Quick test_csc_mv;
          Alcotest.test_case "transpose" `Quick test_csc_transpose;
          Alcotest.test_case "add/scale" `Quick test_csc_add_scale;
          Alcotest.test_case "complex combination" `Quick test_complex_combination;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "permutations valid" `Quick test_orderings_are_permutations;
          Alcotest.test_case "rcm bandwidth on path" `Quick test_rcm_reduces_bandwidth;
        ] );
      ( "lu",
        [
          Alcotest.test_case "natural" `Quick test_sparse_lu_natural;
          Alcotest.test_case "rcm" `Quick test_sparse_lu_rcm;
          Alcotest.test_case "min degree" `Quick test_sparse_lu_min_degree;
          Alcotest.test_case "vs dense" `Quick test_sparse_lu_vs_dense;
          Alcotest.test_case "singular raises" `Quick test_sparse_lu_singular;
          Alcotest.test_case "needs pivoting" `Quick test_sparse_lu_needs_pivoting;
          Alcotest.test_case "complex shifted" `Quick test_complex_sparse_lu;
          Alcotest.test_case "hermitian shifted" `Quick test_shifted_hermitian_solve;
          Alcotest.test_case "refactorize pattern mismatch" `Quick
            test_refactorize_pattern_mismatch;
        ] );
      ("properties", props);
    ]
