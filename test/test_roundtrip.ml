(* Realizable-ROM pipeline roundtrip properties (qcheck + alcotest):
   parse -> reduce (tbr-passive) -> synthesize -> re-parse -> stamp ->
   sweep must close on itself, render must be a fixpoint, and the
   one-Gramian scheme must match the two-sided baseline. *)

open Pmtbr_la
open Pmtbr_circuit
open Pmtbr_lti

let omegas_of nl =
  (* a decade around the mesh's corner region; generate-once grids keep
     the properties deterministic *)
  let _ = nl in
  Array.init 7 (fun i -> 10.0 ** (3.0 +. (float_of_int i /. 2.0)))

(* random RC meshes through the public generators, keyed by seed *)
let mesh_of_seed seed =
  let rows = 3 + (seed mod 4) and cols = 3 + (seed / 4 mod 4) in
  let ports = 1 + (seed mod 3) in
  let r = 50.0 +. float_of_int (seed mod 7) *. 25.0 in
  Rc_mesh.generate ~rows ~cols ~ports ~r ()

let substrate_of_seed seed =
  Substrate.generate ~ports:(2 + (seed mod 3)) ~internal:(40 + (seed mod 17)) ~seed ()

let netlist_gen =
  QCheck2.Gen.(
    map
      (fun (pick, seed) ->
        if pick then mesh_of_seed seed else substrate_of_seed seed)
      (pair bool (int_bound 999)))

let netlist_print nl =
  let r, c, l, k = Netlist.stats nl in
  Printf.sprintf "netlist{R=%d C=%d L=%d K=%d ports=%d nodes=%d}" r c l k
    (Netlist.port_count nl) (Netlist.node_count nl)

(* --- render fixpoint ------------------------------------------------- *)

let prop_render_fixpoint =
  QCheck2.Test.make ~name:"to_string is a one-generation fixpoint" ~count:40
    ~print:netlist_print netlist_gen (fun nl ->
      let s1 = Spice.to_string nl in
      let s2 = Spice.to_string (Spice.netlist (Spice.parse_string s1)) in
      String.equal s1 s2)

let prop_parse_channel_equals_string =
  QCheck2.Test.make ~name:"parse_channel agrees with parse_string" ~count:10
    ~print:netlist_print netlist_gen (fun nl ->
      let s = Spice.to_string nl in
      let of_string = Spice.ir (Spice.parse_string s) in
      let path = Filename.temp_file "pmtbr_rt" ".sp" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let oc = open_out path in
          output_string oc s;
          close_out oc;
          let of_file = Spice.ir (Spice.parse_file path) in
          Spice_ir.render of_string = Spice_ir.render of_file))

(* --- passive reduction closes the roundtrip -------------------------- *)

let roundtrip_drift nl =
  let sys = Dss.of_netlist nl in
  let red = Tbr_passive.reduce ~tol:1e-10 sys in
  let ir = Tbr_passive.synthesize red in
  let re_nl = Spice.netlist (Spice.parse_string (Spice_ir.render ir)) in
  let re_sys = Dss.of_netlist re_nl in
  let omegas = omegas_of nl in
  let ref_ = Freq.sweep red.Tbr_passive.rom omegas in
  let stream = Freq.compare_sweep re_sys omegas ~ref_ in
  Freq.stream_max_rel_error stream

let prop_roundtrip_matches_rom =
  QCheck2.Test.make
    ~name:"synthesized netlist re-parses to the same response (<= 1e-9)"
    ~count:15 ~print:netlist_print netlist_gen (fun nl ->
      roundtrip_drift nl <= 1e-9)

let prop_synthesis_render_stable =
  QCheck2.Test.make ~name:"synthesized netlist render is generation-stable"
    ~count:15 ~print:netlist_print netlist_gen (fun nl ->
      let sys = Dss.of_netlist nl in
      let red = Tbr_passive.reduce ~tol:1e-10 sys in
      let g1 = Spice_ir.render (Tbr_passive.synthesize red) in
      let g2 = Spice.to_string (Spice.netlist (Spice.parse_string g1)) in
      String.equal g1 g2)

(* --- passivity -------------------------------------------------------- *)

let prop_positive_real =
  QCheck2.Test.make ~name:"reduced model is positive-real on band points"
    ~count:15 ~print:netlist_print netlist_gen (fun nl ->
      let sys = Dss.of_netlist nl in
      let red = Tbr_passive.reduce ~tol:1e-10 sys in
      let pts =
        Pmtbr_core.Sampling.points
          (Pmtbr_core.Sampling.Bands [ (1e3, 1e7) ])
          ~count:9
      in
      let points = Array.map (fun p -> p.Pmtbr_core.Sampling.s) pts in
      let h_scale =
        Array.fold_left
          (fun acc s -> Float.max acc (Cmat.max_abs (Freq.eval red.Tbr_passive.rom s)))
          0.0 points
      in
      Tbr_passive.positive_real_residual red.Tbr_passive.rom points
      <= 1e-10 *. Float.max h_scale 1.0)

(* --- agreement with the two-sided baseline ---------------------------- *)

let hsv_agree () =
  let nl = substrate_of_seed 7 in
  let sys = Dss.of_netlist nl in
  let red, _ = Tbr_passive.reduce_stats ~order:12 sys in
  let lr = Tbr_lr.reduce ~order:12 sys in
  let k = min 8 (min (Array.length red.Tbr_passive.hsv) (Array.length lr.Tbr_lr.hsv)) in
  for i = 0 to k - 1 do
    let a = red.Tbr_passive.hsv.(i) and b = lr.Tbr_lr.hsv.(i) in
    Alcotest.(check bool)
      (Printf.sprintf "hsv[%d] agree (%.3e vs %.3e)" i a b)
      true
      (Float.abs (a -. b) <= 1e-6 *. Float.max red.Tbr_passive.hsv.(0) 1e-300)
  done;
  (* responses of the two ROMs agree on the band *)
  let omegas = Array.init 9 (fun i -> 10.0 ** (3.0 +. float_of_int i /. 2.0)) in
  let ref_ = Freq.sweep lr.Tbr_lr.rom omegas in
  let stream = Freq.compare_sweep red.Tbr_passive.rom omegas ~ref_ in
  Alcotest.(check bool)
    "ROM responses agree" true
    (Freq.stream_max_rel_error stream <= 1e-6)

let col_solves_halved () =
  let nl = substrate_of_seed 3 in
  let sys = Dss.of_netlist nl in
  let _, passive = Tbr_passive.reduce_stats ~order:10 sys in
  let _, two_sided = Tbr_lr.reduce_stats ~order:10 sys in
  Alcotest.(check bool) "one symbolic analysis" true (passive.Tbr_passive.symbolic = 1);
  let ratio =
    float_of_int passive.Tbr_passive.col_solves
    /. float_of_int two_sided.Tbr_lr.col_solves
  in
  Alcotest.(check bool)
    (Printf.sprintf "col_solves ratio %.3f <= 0.62" ratio)
    true (ratio <= 0.62)

(* every node capacitively loaded so E stays nonsingular (the ADI shift
   machinery needs E^{-1}, as in Tbr_lr) *)
let rlck_ladder () =
  let nl = Netlist.create () in
  ignore (Netlist.add_port nl 1);
  let n = 12 in
  let lids = Array.make n 0 in
  for i = 1 to n do
    lids.(i - 1) <- Netlist.add_l nl i (i + 1) 1e-9;
    Netlist.add_c nl i 0 1e-12;
    Netlist.add_r nl i 0 1e4;
    Netlist.add_r nl i (i + 1) 0.3
  done;
  Netlist.add_c nl (n + 1) 0 1e-12;
  Netlist.add_r nl (n + 1) 0 50.0;
  Netlist.add_mutual nl lids.(0) lids.(1) 0.3;
  Netlist.add_mutual nl lids.(2) lids.(3) 0.2;
  nl

let rlck_j_symmetric () =
  (* the one-Gramian path must also hold for RLCk via the signature J *)
  let nl = rlck_ladder () in
  let sys = Dss.of_netlist nl in
  let inductors = Netlist.inductor_count nl in
  let red, stats = Tbr_passive.reduce_stats ~order:12 ~inductors sys in
  Alcotest.(check bool) "order > 0" true (red.Tbr_passive.order >= 1);
  Alcotest.(check bool) "one symbolic" true (stats.Tbr_passive.symbolic = 1);
  let omegas = Array.init 9 (fun i -> 10.0 ** (8.0 +. float_of_int i /. 4.0)) in
  let ref_ = Freq.sweep sys omegas in
  let stream = Freq.compare_sweep red.Tbr_passive.rom omegas ~ref_ in
  Alcotest.(check bool)
    "RLCk ROM tracks the full model" true
    (Freq.stream_max_rel_error stream <= 1e-8)

let wrong_inductors_rejected () =
  let nl = substrate_of_seed 1 in
  let sys = Dss.of_netlist nl in
  Alcotest.check_raises "non-J-symmetric split rejected"
    (Invalid_argument
       "Tbr_passive: system is not J-symmetric (check ~inductors and the \
        E/A structure)")
    (fun () -> ignore (Tbr_passive.reduce ~order:6 ~inductors:5 sys))

let exact_unstamp () =
  (* with every state a port (B = I) the congruence is the identity, so
     synthesis must reproduce E and A exactly *)
  let e = Mat.of_fun 3 3 (fun i j -> if i = j then 2.0 else -0.25) in
  let a =
    Mat.of_fun 3 3 (fun i j -> if i = j then -3.0 else 0.5 +. (0.125 *. float_of_int (i + j)))
  in
  let b = Mat.identity 3 in
  let ir = Synth.realize ~e ~a ~b ~c:b () in
  let re_sys = Dss.of_netlist (Spice_ir.to_netlist ir) in
  Alcotest.(check bool)
    "E reproduced" true
    (Mat.max_abs (Mat.sub (Dss.e_dense re_sys) e) <= 1e-12 *. Mat.max_abs e);
  Alcotest.(check bool)
    "A reproduced" true
    (Mat.max_abs (Mat.sub (Dss.a_dense re_sys) a) <= 1e-12 *. Mat.max_abs a)

let full_model_realized () =
  (* realizing an UNREDUCED dense mesh model reproduces the response
     (states are rotated, the transfer function is invariant) *)
  let nl = mesh_of_seed 5 in
  let sys = Dss.of_netlist nl in
  let ir =
    Synth.realize ~e:(Dss.e_dense sys) ~a:(Dss.a_dense sys)
      ~b:(Dss.b_matrix sys) ~c:(Dss.c_matrix sys) ()
  in
  let re_sys = Dss.of_netlist (Spice.netlist (Spice.parse_string (Spice_ir.render ir))) in
  let omegas = omegas_of nl in
  let ref_ = Freq.sweep sys omegas in
  let stream = Freq.compare_sweep re_sys omegas ~ref_ in
  Alcotest.(check bool)
    "response reproduced" true
    (Freq.stream_max_rel_error stream <= 1e-9)

let unrealizable_rejected () =
  (* an asymmetric A must be refused, not silently mangled *)
  let e = Mat.identity 3 in
  let a = Mat.of_fun 3 3 (fun i j -> if i = j then -1.0 else if i < j then 0.5 else 0.0) in
  let b = Mat.of_fun 3 1 (fun i _ -> if i = 0 then 1.0 else 0.0) in
  let c = Mat.transpose b in
  match Synth.realize ~e ~a ~b ~c () with
  | _ -> Alcotest.fail "asymmetric A accepted"
  | exception Synth.Unrealizable _ -> ()

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "pmtbr_roundtrip"
    [
      qsuite "render"
        [ prop_render_fixpoint; prop_parse_channel_equals_string ];
      qsuite "roundtrip"
        [
          prop_roundtrip_matches_rom;
          prop_synthesis_render_stable;
          prop_positive_real;
        ];
      ( "passive-vs-baseline",
        [
          Alcotest.test_case "hsv and response agree" `Slow hsv_agree;
          Alcotest.test_case "col_solves halved" `Quick col_solves_halved;
          Alcotest.test_case "RLCk J-symmetric path" `Quick rlck_j_symmetric;
          Alcotest.test_case "wrong inductors rejected" `Quick wrong_inductors_rejected;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "exact unstamp" `Quick exact_unstamp;
          Alcotest.test_case "full model realized" `Quick full_model_realized;
          Alcotest.test_case "unrealizable rejected" `Quick unrealizable_rejected;
        ] );
    ]
