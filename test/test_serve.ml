(* Tests for the reduction service: the LRU eviction structure, the wire
   protocol (including malformed/oversized frames), the content-addressed
   store contracts (hash stability, tier progression, warm == cold
   bitwise, eviction forces recompute), a concurrent end-to-end daemon
   run, and regressions for the two parser bugfixes that rode along
   (--band validation, SPICE value suffixes). *)

open Pmtbr_circuit
open Pmtbr_serve

(* ------------------------------------------------------------------ *)
(* Lru                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lru_hit_miss () =
  let l = Lru.create ~max_cost:100 () in
  Alcotest.(check (option int)) "empty miss" None (Lru.find l "a");
  Lru.add l "a" ~cost:10 1;
  Alcotest.(check (option int)) "hit" (Some 1) (Lru.find l "a");
  Alcotest.(check bool) "mem" true (Lru.mem l "a");
  Lru.remove l "a";
  Alcotest.(check (option int)) "removed" None (Lru.find l "a");
  Alcotest.(check int) "empty cost" 0 (Lru.total_cost l)

let test_lru_eviction_order () =
  let evicted = ref [] in
  let l = Lru.create ~on_evict:(fun k _ -> evicted := k :: !evicted) ~max_cost:12 () in
  Lru.add l "a" ~cost:4 1;
  Lru.add l "b" ~cost:4 2;
  Lru.add l "c" ~cost:4 3;
  (* full; a is LRU.  Touch it so b becomes the victim. *)
  ignore (Lru.find l "a");
  Lru.add l "d" ~cost:4 4;
  Alcotest.(check (list string)) "b evicted first" [ "b" ] !evicted;
  Alcotest.(check (list string)) "recency order" [ "d"; "a"; "c" ] (Lru.keys l);
  (* replacing a live key fires on_evict for the old binding only *)
  Lru.add l "d" ~cost:4 40;
  Alcotest.(check (list string)) "replace evicts old binding" [ "d"; "b" ] !evicted;
  Alcotest.(check (option int)) "replaced value" (Some 40) (Lru.find l "d")

let test_lru_oversized_entry_lands () =
  let l = Lru.create ~max_cost:10 () in
  Lru.add l "small" ~cost:5 1;
  (* an entry bigger than the whole budget must still land (and evict
     everything else), never evict itself *)
  Lru.add l "huge" ~cost:50 2;
  Alcotest.(check (option int)) "oversized entry present" (Some 2) (Lru.find l "huge");
  Alcotest.(check int) "alone in the cache" 1 (Lru.length l)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let read_frame_of_string ?max_bytes s =
  let path = Filename.temp_file "pmtbr_frame" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc s;
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Protocol.read_frame ?max_bytes ic))

let test_frame_roundtrip () =
  let path = Filename.temp_file "pmtbr_frame" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      Protocol.write_frame oc "hello\nworld";
      Protocol.write_frame oc "";
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          (match Protocol.read_frame ic with
          | Ok p -> Alcotest.(check string) "payload" "hello\nworld" p
          | Error _ -> Alcotest.fail "first frame should parse");
          (match Protocol.read_frame ic with
          | Ok p -> Alcotest.(check string) "empty payload" "" p
          | Error _ -> Alcotest.fail "second frame should parse");
          match Protocol.read_frame ic with
          | Error Protocol.Eof -> ()
          | _ -> Alcotest.fail "stream end should be Eof"))

let test_frame_malformed () =
  (match read_frame_of_string "not-a-length\nrest" with
  | Error (Protocol.Malformed _) -> ()
  | _ -> Alcotest.fail "garbage length line must be Malformed");
  (match read_frame_of_string "10\nshort" with
  | Error (Protocol.Malformed _) -> ()
  | _ -> Alcotest.fail "truncated payload must be Malformed");
  match read_frame_of_string "1234567890123\nx" with
  | Error (Protocol.Malformed _) -> ()
  | _ -> Alcotest.fail "over-long length line must be Malformed"

let test_frame_oversized () =
  match read_frame_of_string ~max_bytes:16 "99999\npayload" with
  | Error (Protocol.Oversized n) -> Alcotest.(check int) "declared size" 99999 n
  | _ -> Alcotest.fail "payload beyond max_bytes must be Oversized"

let test_request_roundtrip () =
  let job =
    {
      Protocol.meth = Protocol.Fs_pmtbr;
      band = (1e8, 2e10);
      tol = Some 1e-9;
      order = Some 12;
      samples = 17;
      partition = None;
      max_part_states = None;
      interface_tol = None;
      export = false;
      netlist = "R1 1 0 1k\nC1 1 0 1p\n.port 1\n.end\n";
    }
  in
  (match Protocol.parse_request (Protocol.encode_request (Protocol.Reduce job)) with
  | Ok (Protocol.Reduce j) ->
      Alcotest.(check bool) "meth" true (j.Protocol.meth = Protocol.Fs_pmtbr);
      Alcotest.(check (pair (float 0.0) (float 0.0))) "band" (1e8, 2e10) j.Protocol.band;
      Alcotest.(check (option (float 0.0))) "tol" (Some 1e-9) j.Protocol.tol;
      Alcotest.(check (option int)) "order" (Some 12) j.Protocol.order;
      Alcotest.(check int) "samples" 17 j.Protocol.samples;
      Alcotest.(check bool) "export default off" false j.Protocol.export;
      Alcotest.(check string) "netlist" job.Protocol.netlist j.Protocol.netlist
  | Ok _ -> Alcotest.fail "wrong request kind"
  | Error e -> Alcotest.fail ("reduce roundtrip: " ^ e));
  (* the export flag and the tbr-passive method survive the wire *)
  (match
     Protocol.parse_request
       (Protocol.encode_request
          (Protocol.Reduce
             { job with Protocol.meth = Protocol.Tbr_passive; export = true }))
   with
  | Ok (Protocol.Reduce j) ->
      Alcotest.(check bool) "tbr-passive meth" true (j.Protocol.meth = Protocol.Tbr_passive);
      Alcotest.(check bool) "export on" true j.Protocol.export
  | Ok _ -> Alcotest.fail "wrong request kind"
  | Error e -> Alcotest.fail ("export roundtrip: " ^ e));
  List.iter
    (fun req ->
      match Protocol.parse_request (Protocol.encode_request req) with
      | Ok r -> Alcotest.(check bool) "kind preserved" true (r = req)
      | Error e -> Alcotest.fail e)
    [ Protocol.Ping; Protocol.Stats; Protocol.Shutdown ]

let test_partition_roundtrip_and_validation () =
  let job =
    {
      Protocol.meth = Protocol.Hier;
      band = (0.0, 2e10);
      tol = None;
      order = Some 8;
      samples = 10;
      partition = Some (Protocol.Parts 3);
      max_part_states = None;
      interface_tol = None;
      export = false;
      netlist = "R1 1 0 1k\nC1 1 0 1p\n.port 1\n.end\n";
    }
  in
  (match Protocol.parse_request (Protocol.encode_request (Protocol.Reduce job)) with
  | Ok (Protocol.Reduce j) ->
      Alcotest.(check bool) "hier meth" true (j.Protocol.meth = Protocol.Hier);
      Alcotest.(check (option int)) "partition" (Some 3)
        (match j.Protocol.partition with Some (Protocol.Parts k) -> Some k | _ -> None)
  | Ok _ -> Alcotest.fail "wrong request kind"
  | Error e -> Alcotest.fail ("hier roundtrip: " ^ e));
  (* hier without an explicit partition count is valid (store default) *)
  (match
     Protocol.parse_request (Protocol.encode_request (Protocol.Reduce { job with partition = None }))
   with
  | Ok (Protocol.Reduce j) ->
      Alcotest.(check bool) "default partition" true (j.Protocol.partition = None)
  | Ok _ -> Alcotest.fail "wrong request kind"
  | Error e -> Alcotest.fail ("hier default roundtrip: " ^ e));
  let reject payload what =
    match Protocol.parse_request payload with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ " must be rejected")
  in
  reject "job reduce\nmethod hier\nband 1:2\npartition 0\n\nR1 1 0 1\n.port 1\n" "zero partition";
  reject "job reduce\nmethod hier\nband 1:2\npartition 5000\n\nR1 1 0 1\n.port 1\n"
    "partition beyond cap";
  reject "job reduce\nmethod hier\nband 1:2\npartition two\n\nR1 1 0 1\n.port 1\n"
    "non-integer partition";
  reject "job reduce\nmethod pmtbr\nband 1:2\npartition 2\n\nR1 1 0 1\n.port 1\n"
    "partition on a flat method"

(* the nested-dissection job fields: partition auto, max-part-states and
   interface-tol survive the wire, and every invalid combination is
   rejected at parse time *)
let test_auto_fields_roundtrip_and_validation () =
  let job =
    {
      Protocol.meth = Protocol.Hier;
      band = (0.0, 2e10);
      tol = None;
      order = Some 8;
      samples = 10;
      partition = Some Protocol.Auto;
      max_part_states = Some 500;
      interface_tol = Some 1e-8;
      export = false;
      netlist = "R1 1 0 1k\nC1 1 0 1p\n.port 1\n.end\n";
    }
  in
  (match Protocol.parse_request (Protocol.encode_request (Protocol.Reduce job)) with
  | Ok (Protocol.Reduce j) ->
      Alcotest.(check bool) "partition auto" true (j.Protocol.partition = Some Protocol.Auto);
      Alcotest.(check (option int)) "max-part-states" (Some 500) j.Protocol.max_part_states;
      Alcotest.(check (option (float 0.0))) "interface-tol" (Some 1e-8) j.Protocol.interface_tol
  | Ok _ -> Alcotest.fail "wrong request kind"
  | Error e -> Alcotest.fail ("auto roundtrip: " ^ e));
  let reject payload what =
    match Protocol.parse_request payload with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ " must be rejected")
  in
  reject "job reduce\nmethod hier\nband 1:2\npartition auto\nmax-part-states 0\n\nR1 1 0 1\n.port 1\n"
    "zero max-part-states";
  reject
    "job reduce\nmethod hier\nband 1:2\npartition 3\nmax-part-states 100\n\nR1 1 0 1\n.port 1\n"
    "max-part-states with a fixed partition";
  reject "job reduce\nmethod hier\nband 1:2\nmax-part-states 100\n\nR1 1 0 1\n.port 1\n"
    "max-part-states without partition auto";
  reject "job reduce\nmethod hier\nband 1:2\ninterface-tol 0\n\nR1 1 0 1\n.port 1\n"
    "zero interface-tol";
  reject "job reduce\nmethod hier\nband 1:2\ninterface-tol -1e-8\n\nR1 1 0 1\n.port 1\n"
    "negative interface-tol";
  reject "job reduce\nmethod hier\nband 1:2\ninterface-tol nan\n\nR1 1 0 1\n.port 1\n"
    "non-finite interface-tol";
  reject "job reduce\nmethod pmtbr\nband 1:2\ninterface-tol 1e-8\n\nR1 1 0 1\n.port 1\n"
    "interface-tol on a flat method"

let test_request_validation () =
  let reject payload what =
    match Protocol.parse_request payload with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ " must be rejected")
  in
  reject "job dance\n\nbody" "unknown job kind";
  reject "job reduce\nmethod warp\nband 1:2\n\nR1 1 0 1\n.port 1\n" "unknown method";
  reject "job reduce\nmethod pmtbr\nband 2e9:1e9\n\nR1 1 0 1\n.port 1\n" "reversed band";
  reject "job reduce\nmethod pmtbr\nband 1:2\ntol -1\n\nR1 1 0 1\n.port 1\n" "negative tol";
  reject "job reduce\nmethod pmtbr\nband 1:2\norder 0\n\nR1 1 0 1\n.port 1\n" "zero order";
  reject "job reduce\nmethod pmtbr\nband 1:2\nsamples 0\n\nR1 1 0 1\n.port 1\n" "zero samples";
  reject "job reduce\nmethod pmtbr\nband 1:2\nexport maybe\n\nR1 1 0 1\n.port 1\n" "bad export";
  reject "job reduce\nmethod pmtbr\nband 1:2\n\n" "missing netlist"

let test_response_roundtrip () =
  let r = Protocol.ok ~fields:[ ("tier", "rom-hit"); ("solves", "0") ] ~body:"data" () in
  (match Protocol.parse_response (Protocol.encode_response r) with
  | Ok p ->
      Alcotest.(check bool) "ok status" true (p.Protocol.status = Ok ());
      Alcotest.(check (option string)) "field" (Some "rom-hit") (Protocol.field p "tier");
      Alcotest.(check string) "body" "data" p.Protocol.body
  | Error e -> Alcotest.fail e);
  match Protocol.parse_response (Protocol.encode_response (Protocol.error "boom boom")) with
  | Ok p -> Alcotest.(check bool) "error status" true (p.Protocol.status = Error "boom boom")
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Bugfix regressions: --band parsing                                  *)
(* ------------------------------------------------------------------ *)

let test_band_validation () =
  (match Protocol.parse_band "0:2e10" with
  | Ok (lo, hi) ->
      Alcotest.(check (float 0.0)) "lo" 0.0 lo;
      Alcotest.(check (float 0.0)) "hi" 2e10 hi
  | Error e -> Alcotest.fail e);
  (match Protocol.parse_band "1e8:1e9" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  List.iter
    (fun s ->
      match Protocol.parse_band s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "band %S must be rejected" s))
    [ "2e9:1e9" (* reversed *); "-1:5" (* negative lo *); "3e9:3e9" (* zero width *);
      "nan:1e9" (* non-finite lo *); "0:inf" (* non-finite hi *); "1e9" (* no colon *);
      "a:b" (* not numbers *); "1:2:3" (* too many fields *) ]

(* ------------------------------------------------------------------ *)
(* Bugfix regressions: SPICE value suffixes                            *)
(* ------------------------------------------------------------------ *)

let test_spice_value_units () =
  let v s = Spice.parse_value ~line:1 s in
  List.iter
    (fun (s, expected) ->
      Alcotest.(check (float 1e-12)) s 1.0 (v s /. expected))
    [
      ("10kohm", 1e4) (* trailing unit text after a scale suffix *);
      ("1pF", 1e-12);
      ("100MEGHz", 1e8) (* longest match: meg, not m *);
      ("4.7nF", 4.7e-9);
      ("10ohm", 10.0) (* bare unit, no scale *);
      ("2.2meg", 2.2e6);
      ("1k", 1e3);
      ("1e3", 1e3) (* exponent is part of the number, not a suffix *);
      ("3", 3.0);
    ]
  |> ignore;
  List.iter
    (fun s ->
      match v s with
      | _ -> Alcotest.fail (Printf.sprintf "value %S must be rejected" s)
      | exception Spice.Parse_error _ -> ())
    [ "10k3" (* digit inside the suffix *); "1p-f"; "x"; "" ]

let test_spice_netlist_with_units () =
  (* the original bug: a netlist written with human units failed to parse *)
  let text = "R1 1 0 10kohm\nC1 1 0 1pF\nL1 1 2 2nH\nR2 2 0 1MEGohm\n.port 1\n.end\n" in
  let nl = Spice.netlist (Spice.parse_string text) in
  let r, c, l, _ = Netlist.stats nl in
  Alcotest.(check int) "resistors" 2 r;
  Alcotest.(check int) "capacitors" 1 c;
  Alcotest.(check int) "inductors" 1 l

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let mesh_netlist ?(n = 6) () =
  Spice.to_string (Rc_mesh.generate ~rows:n ~cols:n ~ports:2 ())

let must = function Ok v -> v | Error e -> Alcotest.fail e

let job_defaults = (Protocol.Pmtbr, (0.0, 2e10), 10)

let run_job ?(meth = Protocol.Pmtbr) ?(band = (0.0, 2e10)) ?tol ?(order = 8) ?(samples = 10)
    ?partition ?max_part_states ?interface_tol ?(export = false) store netlist =
  let _ = job_defaults in
  must
    (Store.reduce store ~netlist ~meth ~band ?tol ~order ?partition ?max_part_states
       ?interface_tol ~export ~samples ())

let test_hash_stability () =
  let text = mesh_netlist () in
  (* same network, different formatting and comments *)
  let noisy =
    "* a comment\n\n" ^ String.concat "\n" (String.split_on_char '\n' text) ^ "\n* trailing\n"
  in
  let h1 = must (Store.canonical_hash text) and h2 = must (Store.canonical_hash noisy) in
  Alcotest.(check string) "hash survives re-formatting" h1 h2;
  let other = mesh_netlist ~n:5 () in
  Alcotest.(check bool) "different network, different hash" false
    (must (Store.canonical_hash other) = h1)

let test_store_tiers_and_counters () =
  let store = Store.create () in
  let netlist = mesh_netlist () in
  let o1 = run_job store netlist in
  Alcotest.(check string) "first job misses" "miss" (Store.tier_name o1.Store.tier);
  Alcotest.(check bool) "cold job solves" true (o1.Store.job_solves > 0);
  let o2 = run_job store netlist in
  Alcotest.(check string) "verbatim repeat" "rom-hit" (Store.tier_name o2.Store.tier);
  Alcotest.(check int) "repeat does no solves" 0 o2.Store.job_solves;
  Alcotest.(check string) "repeat digest" o1.Store.digest o2.Store.digest;
  (* same network, new band: the prepared multi-shift handle is reused *)
  let o3 = run_job ~band:(1e8, 1e10) store netlist in
  Alcotest.(check string) "new band reuses network" "network-hit" (Store.tier_name o3.Store.tier);
  (* same sample set, different order: re-finish with zero solves *)
  let o4 = run_job ~order:4 store netlist in
  Alcotest.(check string) "re-order reuses samples" "samples-hit" (Store.tier_name o4.Store.tier);
  Alcotest.(check int) "re-finish solves nothing" 0 o4.Store.job_solves;
  Alcotest.(check int) "reduced to the new order" 4 o4.Store.order;
  let c = Store.counters store in
  Alcotest.(check int) "jobs" 4 c.Store.jobs;
  Alcotest.(check int) "rom hits" 1 c.Store.rom_hits;
  Alcotest.(check int) "samples hits" 1 c.Store.samples_hits;
  Alcotest.(check int) "network hits" 1 c.Store.network_hits;
  Alcotest.(check int) "misses" 1 c.Store.misses;
  Alcotest.(check int) "one parse per network, ever" 1 c.Store.parses;
  Alcotest.(check int) "one symbolic analysis per network, ever" 1 c.Store.symbolic

(* The hash is computed on the canonical re-render AND the stamp is built
   from the canonical IR, so two formattings of one network are the same
   store entry and the same bitwise ROM. *)
let test_reformatted_collides_to_one_rom () =
  let text = mesh_netlist ~n:5 () in
  let noisy = "* a comment\n\n" ^ text ^ "* trailing\n" in
  let store = Store.create () in
  let o1 = run_job store text in
  let o2 = run_job store noisy in
  Alcotest.(check string) "reformatted text is a rom hit" "rom-hit" (Store.tier_name o2.Store.tier);
  Alcotest.(check string) "one digest" o1.Store.digest o2.Store.digest;
  (* and a fresh store fed only the noisy text still produces that digest *)
  let cold = run_job (Store.create ()) noisy in
  Alcotest.(check string) "digest independent of submitted formatting" o1.Store.digest
    cold.Store.digest

(* tbr-passive through the store: tier progression, export body closing
   the roundtrip, and multi-shift handle reuse on a new band. *)
let test_tbr_passive_tiers_and_export () =
  let store = Store.create () in
  let netlist = mesh_netlist ~n:5 () in
  let o1 = run_job ~meth:Protocol.Tbr_passive ~order:6 ~export:true store netlist in
  Alcotest.(check string) "first job misses" "miss" (Store.tier_name o1.Store.tier);
  Alcotest.(check bool) "passive job solves" true (o1.Store.job_solves > 0);
  let body =
    match o1.Store.netlist with
    | Some t -> t
    | None -> Alcotest.fail "export requested but no netlist returned"
  in
  (* the exported body re-parses, stamps and sweeps to the in-memory ROM *)
  let back = Pmtbr_lti.Dss.of_netlist (Spice.netlist (Spice.parse_string body)) in
  let omegas = [| 1e8; 1e9; 5e9; 2e10 |] in
  let href = Pmtbr_lti.Freq.sweep o1.Store.rom omegas in
  let st = Pmtbr_lti.Freq.compare_sweep back omegas ~ref_:href in
  Alcotest.(check bool) "export body reproduces the ROM (<= 1e-9)" true
    (Pmtbr_lti.Freq.stream_max_rel_error st <= 1e-9);
  (* verbatim repeat: ROM-tier hit, identical digest, export still served *)
  let o2 = run_job ~meth:Protocol.Tbr_passive ~order:6 ~export:true store netlist in
  Alcotest.(check string) "repeat is a rom hit" "rom-hit" (Store.tier_name o2.Store.tier);
  Alcotest.(check int) "repeat does no solves" 0 o2.Store.job_solves;
  Alcotest.(check string) "repeat digest" o1.Store.digest o2.Store.digest;
  Alcotest.(check bool) "export body is render-stable" true (o2.Store.netlist = Some body);
  (* same network, new band: the prepared multi-shift handle is reused *)
  let o3 = run_job ~meth:Protocol.Tbr_passive ~order:6 ~band:(1e8, 1e10) store netlist in
  Alcotest.(check string) "new band reuses network" "network-hit" (Store.tier_name o3.Store.tier)

(* Hierarchical jobs through the store: tier progression over the
   per-subdomain sample tiers, the per-network partition tracker, and the
   reset when a job re-partitions the same network. *)
let test_hier_tiers_and_stats () =
  let store = Store.create () in
  let netlist = mesh_netlist ~n:8 () in
  let o1 = run_job ~meth:Protocol.Hier ~partition:(Protocol.Parts 2) store netlist in
  Alcotest.(check string) "first hier job misses" "miss" (Store.tier_name o1.Store.tier);
  Alcotest.(check bool) "cold hier job solves" true (o1.Store.job_solves > 0);
  let o2 = run_job ~meth:Protocol.Hier ~partition:(Protocol.Parts 2) store netlist in
  Alcotest.(check string) "verbatim repeat" "rom-hit" (Store.tier_name o2.Store.tier);
  Alcotest.(check int) "repeat does no solves" 0 o2.Store.job_solves;
  Alcotest.(check string) "repeat digest" o1.Store.digest o2.Store.digest;
  (* same samples, new order: every subdomain sample tier is warm, so the
     recombination re-finishes without a single solve *)
  let o3 = run_job ~meth:Protocol.Hier ~partition:(Protocol.Parts 2) ~order:4 store netlist in
  Alcotest.(check string) "re-order reuses subdomain samples" "samples-hit"
    (Store.tier_name o3.Store.tier);
  Alcotest.(check int) "re-finish solves nothing" 0 o3.Store.job_solves;
  let hs = Store.hier_stats store in
  Alcotest.(check int) "one hier network" 1 (List.length hs);
  let hash, hn = List.hd hs in
  Alcotest.(check string) "keyed by network hash" o1.Store.hash hash;
  Alcotest.(check int) "partitions" 2 hn.Store.partitions;
  let sum = Array.fold_left ( + ) 0 in
  Alcotest.(check bool) "cold job recorded sub misses" true (sum hn.Store.sub_misses > 0);
  Alcotest.(check bool) "warm job recorded sub hits" true (sum hn.Store.sub_hits > 0);
  (* a different part count on the same network resets the slot tracker *)
  let o4 = run_job ~meth:Protocol.Hier ~partition:(Protocol.Parts 3) store netlist in
  Alcotest.(check string) "re-partition falls back to the warm network" "network-hit"
    (Store.tier_name o4.Store.tier);
  let _, hn3 = List.hd (Store.hier_stats store) in
  Alcotest.(check int) "tracker reset to the new count" 3 hn3.Store.partitions;
  Alcotest.(check int) "slot arrays follow" 3 (Array.length hn3.Store.sub_misses)

(* Tree-shaped (auto) dissection through the store: cold miss, verbatim
   rom-hit, re-tol re-finish from every leaf's warm sample tier with zero
   solves, and a re-partition under a different goal descriptor that
   produces the same leaves re-finds all of them warm. *)
let test_hier_auto_tree_tiers () =
  let store = Store.create () in
  let netlist = mesh_netlist ~n:8 () in
  let o1 =
    run_job ~meth:Protocol.Hier ~partition:Protocol.Auto ~max_part_states:20 store netlist
  in
  Alcotest.(check string) "cold auto job misses" "miss" (Store.tier_name o1.Store.tier);
  Alcotest.(check bool) "cold job solves" true (o1.Store.job_solves > 0);
  let o2 =
    run_job ~meth:Protocol.Hier ~partition:Protocol.Auto ~max_part_states:20 store netlist
  in
  Alcotest.(check string) "verbatim repeat" "rom-hit" (Store.tier_name o2.Store.tier);
  Alcotest.(check int) "repeat does no solves" 0 o2.Store.job_solves;
  (* re-tol: every leaf's sample tier is warm, the whole tree re-finishes
     without a single solve *)
  let o3 =
    run_job ~meth:Protocol.Hier ~partition:Protocol.Auto ~max_part_states:20 ~tol:1e-6 ~order:6
      store netlist
  in
  Alcotest.(check string) "re-tol reuses the tree's samples" "samples-hit"
    (Store.tier_name o3.Store.tier);
  Alcotest.(check int) "re-tol re-finish solves nothing" 0 o3.Store.job_solves;
  (* a leaf-count goal that dissects to the same leaves (budget 20 on this
     mesh yields the 4-leaf depth-2 tree) re-finds every sample tier warm
     under the new partition descriptor *)
  let o4 = run_job ~meth:Protocol.Hier ~partition:(Protocol.Parts 4) store netlist in
  Alcotest.(check string) "equivalent re-partition is samples-warm" "samples-hit"
    (Store.tier_name o4.Store.tier);
  Alcotest.(check int) "re-partition solves nothing" 0 o4.Store.job_solves;
  Alcotest.(check string) "same leaves, same rom" o1.Store.digest o4.Store.digest;
  (* interface compression only perturbs the ROM key: samples stay warm *)
  let o5 =
    run_job ~meth:Protocol.Hier ~partition:Protocol.Auto ~max_part_states:20
      ~interface_tol:1e-8 store netlist
  in
  Alcotest.(check string) "compressed job is samples-warm" "samples-hit"
    (Store.tier_name o5.Store.tier);
  Alcotest.(check int) "compressed job solves nothing" 0 o5.Store.job_solves;
  Alcotest.(check bool) "compression never grows the order" true
    (o5.Store.order <= o1.Store.order)

(* Re-partitioning only a changed subtree: a second network differing
   from the first inside one leaf's interior re-finds every other leaf's
   sample columns warm — only the changed subdomain re-solves. *)
let test_hier_changed_subtree_warm () =
  let text = mesh_netlist ~n:8 () in
  (* perturb one grounded capacitor whose node is interior to one leaf
     (node 2 on this mesh): the other leaves' sub-netlists and sampling
     right-hand sides are untouched *)
  let tweaked =
    String.concat "\n"
      (List.map
         (fun l -> if String.length l > 3 && String.sub l 0 3 = "C2 " then l ^ "5" else l)
         (String.split_on_char '\n' text))
  in
  let store = Store.create () in
  let o1 = run_job ~meth:Protocol.Hier ~partition:Protocol.Auto ~max_part_states:20 store text in
  let o2 =
    run_job ~meth:Protocol.Hier ~partition:Protocol.Auto ~max_part_states:20 store tweaked
  in
  Alcotest.(check bool) "really a different network" false (o1.Store.hash = o2.Store.hash);
  Alcotest.(check string) "new network misses" "miss" (Store.tier_name o2.Store.tier);
  Alcotest.(check bool) "only the changed subtree re-solves" true
    (o2.Store.job_solves > 0 && o2.Store.job_solves < o1.Store.job_solves);
  let hn =
    match List.assoc_opt o2.Store.hash (Store.hier_stats store) with
    | Some hn -> hn
    | None -> Alcotest.fail "no hier tracker for the tweaked network"
  in
  let sum = Array.fold_left ( + ) 0 in
  Alcotest.(check int) "exactly one leaf missed" 1 (sum hn.Store.sub_misses);
  Alcotest.(check int) "every other leaf was warm" (hn.Store.partitions - 1)
    (sum hn.Store.sub_hits)

(* Warm hier paths are bitwise: re-finishing from cached subdomain
   samples reproduces the cold digest exactly. *)
let test_hier_warm_equals_cold () =
  let netlist = mesh_netlist ~n:8 () in
  let cold = run_job ~meth:Protocol.Hier ~partition:(Protocol.Parts 2) (Store.create ()) netlist in
  let s = Store.create () in
  ignore (run_job ~meth:Protocol.Hier ~partition:(Protocol.Parts 2) ~order:3 s netlist);
  let warm = run_job ~meth:Protocol.Hier ~partition:(Protocol.Parts 2) s netlist in
  Alcotest.(check string) "samples-warm tier" "samples-hit" (Store.tier_name warm.Store.tier);
  Alcotest.(check string) "samples-warm digest" cold.Store.digest warm.Store.digest

(* The bitwise contract: a warm-path ROM equals the cold-path ROM no
   matter what ran before it. *)
let test_warm_equals_cold () =
  let netlist = mesh_netlist () in
  let band = (1e8, 1e10) in
  (* cold reference: a fresh store running exactly this job *)
  let cold = run_job ~band (Store.create ()) netlist in
  (* warm paths: same job after a different band (network warm), and
     after the same band at a different order (samples warm) *)
  let s1 = Store.create () in
  ignore (run_job ~band:(0.0, 2e10) s1 netlist);
  let via_network = run_job ~band s1 netlist in
  Alcotest.(check string) "network-warm tier" "network-hit" (Store.tier_name via_network.Store.tier);
  Alcotest.(check string) "network-warm digest" cold.Store.digest via_network.Store.digest;
  let s2 = Store.create () in
  ignore (run_job ~band ~order:3 s2 netlist);
  let via_samples = run_job ~band s2 netlist in
  Alcotest.(check string) "samples-warm tier" "samples-hit" (Store.tier_name via_samples.Store.tier);
  Alcotest.(check string) "samples-warm digest" cold.Store.digest via_samples.Store.digest

let test_eviction_forces_recompute () =
  (* a budget too small for even one network: every entry is evicted as
     soon as the next one lands, so a repeat must recompute — and still
     produce the identical ROM *)
  let store = Store.create ~max_cost:1 () in
  let netlist = mesh_netlist () in
  let o1 = run_job store netlist in
  let o2 = run_job store netlist in
  Alcotest.(check string) "repeat misses after eviction" "miss" (Store.tier_name o2.Store.tier);
  Alcotest.(check bool) "repeat re-solves" true (o2.Store.job_solves > 0);
  Alcotest.(check string) "recompute is bitwise-identical" o1.Store.digest o2.Store.digest;
  let c = Store.counters store in
  Alcotest.(check bool) "evictions counted" true (c.Store.evictions > 0);
  Alcotest.(check int) "two parses" 2 c.Store.parses

let test_store_rejects_garbage () =
  let store = Store.create () in
  (match Store.reduce store ~netlist:"R1 1 0 banana\n.port 1\n" ~meth:Protocol.Pmtbr
           ~band:(0.0, 1e9) ~samples:5 ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unparseable netlist must be rejected");
  (match Store.reduce store ~netlist:"R1 1 0 1k\n.end\n" ~meth:Protocol.Pmtbr ~band:(0.0, 1e9)
           ~samples:5 ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "port-less netlist must be rejected");
  match Store.reduce store ~netlist:(mesh_netlist ()) ~meth:Protocol.Pmtbr ~band:(1e9, 1e8)
          ~samples:5 ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reversed band must be rejected"

(* ------------------------------------------------------------------ *)
(* End-to-end daemon                                                   *)
(* ------------------------------------------------------------------ *)

let start_daemon ~socket ~workers =
  let ready = Atomic.make false in
  let config = { (Server.default_config ~socket_path:socket) with Server.workers } in
  let d = Domain.spawn (fun () -> Server.run ~on_ready:(fun _ -> Atomic.set ready true) config) in
  let t0 = Unix.gettimeofday () in
  while (not (Atomic.get ready)) && Unix.gettimeofday () -. t0 < 10.0 do
    Unix.sleepf 0.005
  done;
  if not (Atomic.get ready) then Alcotest.fail "daemon did not come up";
  d

let stop_daemon ~socket d =
  (try Client.with_connection socket (fun c -> ignore (Client.request c Protocol.Shutdown))
   with _ -> ());
  Domain.join d

let field r k =
  match Protocol.field r k with
  | Some v -> v
  | None -> Alcotest.fail ("missing response field " ^ k)

let roundtrip c req =
  match Client.request c req with
  | Ok r -> (
      match r.Protocol.status with Ok () -> r | Error e -> Alcotest.fail ("server error: " ^ e))
  | Error e -> Alcotest.fail ("transport error: " ^ e)

(* Concurrent jobs under --workers 4: every job's ROM digest must equal
   the digest a standalone store produces for that job — per job, for any
   interleaving. *)
let test_concurrent_jobs_deterministic () =
  let netlists = [| mesh_netlist ~n:5 (); mesh_netlist ~n:6 () |] in
  let bands = [| (0.0, 2e10); (1e8, 1e10) |] in
  let jobs =
    Array.concat
      (Array.to_list
         (Array.map (fun nl -> Array.map (fun band -> (nl, band)) bands) netlists))
  in
  (* expected digests from a fresh single-threaded store per job *)
  let expected =
    Array.map
      (fun (nl, band) -> (run_job ~band (Store.create ()) nl).Store.digest)
      jobs
  in
  let socket = Printf.sprintf ".pmtbr_test_conc.%d.sock" (Unix.getpid ()) in
  let daemon = start_daemon ~socket ~workers:4 in
  Fun.protect
    ~finally:(fun () -> stop_daemon ~socket daemon)
    (fun () ->
      let results = Array.make (Array.length jobs) "" in
      let clients =
        Array.mapi
          (fun i (nl, band) ->
            Domain.spawn (fun () ->
                Client.with_connection socket (fun c ->
                    (* hammer each job a few times; every reply must agree *)
                    for _ = 1 to 3 do
                      let r =
                        roundtrip c
                          (Protocol.Reduce
                             {
                               Protocol.meth = Protocol.Pmtbr;
                               band;
                               tol = None;
                               order = Some 8;
                               samples = 10;
                               partition = None;
                               max_part_states = None;
                               interface_tol = None;
                               export = false;
                               netlist = nl;
                             })
                      in
                      let d = field r "digest" in
                      if results.(i) = "" then results.(i) <- d
                      else if results.(i) <> d then Alcotest.fail "digest drift within a job"
                    done)))
          jobs
      in
      Array.iter Domain.join clients;
      Array.iteri
        (fun i d ->
          Alcotest.(check string) (Printf.sprintf "job %d matches standalone store" i)
            expected.(i) d)
        results)

(* An export job over the wire: the response body carries the synthesized
   netlist, which re-parses to a model of the reduced order. *)
let test_daemon_export_job () =
  let socket = Printf.sprintf ".pmtbr_test_exp.%d.sock" (Unix.getpid ()) in
  let daemon = start_daemon ~socket ~workers:2 in
  Fun.protect
    ~finally:(fun () -> stop_daemon ~socket daemon)
    (fun () ->
      Client.with_connection socket (fun c ->
          let r =
            roundtrip c
              (Protocol.Reduce
                 {
                   Protocol.meth = Protocol.Tbr_passive;
                   band = (0.0, 2e10);
                   tol = None;
                   order = Some 6;
                   samples = 10;
                   partition = None;
                   max_part_states = None;
                   interface_tol = None;
                   export = true;
                   netlist = mesh_netlist ~n:5 ();
                 })
          in
          Alcotest.(check (option string)) "export field" (Some "1") (Protocol.field r "export");
          Alcotest.(check bool) "body non-empty" true (String.length r.Protocol.body > 0);
          let back = Pmtbr_lti.Dss.of_netlist (Spice.netlist (Spice.parse_string r.Protocol.body)) in
          Alcotest.(check int) "body parses to the reduced order"
            (int_of_string (field r "order"))
            (Pmtbr_lti.Dss.order back)))

(* A hier job over the wire surfaces its per-network partition counters
   in the stats response. *)
let test_daemon_hier_stats_field () =
  let socket = Printf.sprintf ".pmtbr_test_hier.%d.sock" (Unix.getpid ()) in
  let daemon = start_daemon ~socket ~workers:2 in
  Fun.protect
    ~finally:(fun () -> stop_daemon ~socket daemon)
    (fun () ->
      Client.with_connection socket (fun c ->
          let r =
            roundtrip c
              (Protocol.Reduce
                 {
                   Protocol.meth = Protocol.Hier;
                   band = (0.0, 2e10);
                   tol = None;
                   order = Some 6;
                   samples = 8;
                   partition = Some (Protocol.Parts 2);
                   max_part_states = None;
                   interface_tol = None;
                   export = false;
                   netlist = mesh_netlist ~n:6 ();
                 })
          in
          let hash = field r "hash" in
          let s = roundtrip c Protocol.Stats in
          (match Protocol.field s ("hier_" ^ hash) with
          | Some v ->
              let prefix = "partitions=2" in
              Alcotest.(check string) "partition count leads the stats field" prefix
                (String.sub v 0 (min (String.length v) (String.length prefix)))
          | None -> Alcotest.fail "stats response missing the hier_ field");
          (* the auto-dissection fields over the wire: partition auto +
             max-part-states + interface-tol, end to end *)
          let r2 =
            roundtrip c
              (Protocol.Reduce
                 {
                   Protocol.meth = Protocol.Hier;
                   band = (0.0, 2e10);
                   tol = None;
                   order = Some 6;
                   samples = 8;
                   partition = Some Protocol.Auto;
                   max_part_states = Some 20;
                   interface_tol = Some 1e-8;
                   export = false;
                   netlist = mesh_netlist ~n:6 ();
                 })
          in
          Alcotest.(check bool) "auto job reduces" true
            (int_of_string (field r2 "order") < int_of_string (field r2 "states"))))

let test_daemon_protocol_errors () =
  let socket = Printf.sprintf ".pmtbr_test_err.%d.sock" (Unix.getpid ()) in
  let daemon = start_daemon ~socket ~workers:2 in
  Fun.protect
    ~finally:(fun () -> stop_daemon ~socket daemon)
    (fun () ->
      (* ping / stats round-trips *)
      Client.with_connection socket (fun c ->
          Alcotest.(check string) "pong" "1" (field (roundtrip c Protocol.Ping) "pong");
          ignore (roundtrip c Protocol.Stats));
      (* a malformed frame gets an error response, then the connection is
         closed (next read sees EOF) *)
      let raw path send =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let oc = Unix.out_channel_of_descr fd and ic = Unix.in_channel_of_descr fd in
            output_string oc send;
            flush oc;
            match Protocol.read_frame ic with
            | Ok payload -> (
                match Protocol.parse_response payload with
                | Ok r -> (
                    match r.Protocol.status with
                    | Error _ -> ()
                    | Ok () -> Alcotest.fail "bad frame must produce an error response")
                | Error e -> Alcotest.fail e)
            | Error e -> Alcotest.fail (Protocol.frame_error_message e))
      in
      raw socket "this is not a frame\n";
      raw socket "999999999999\nx";
      (* a well-framed but invalid request also comes back as an error
         response, and the connection stays usable *)
      Client.with_connection socket (fun c ->
          let fdc = c in
          match Client.request fdc (Protocol.Reduce {
            Protocol.meth = Protocol.Pmtbr; band = (0.0, 1e9); tol = None; order = None;
            samples = 5; partition = None; max_part_states = None; interface_tol = None;
            export = false; netlist = "R1 1 0 banana\n.port 1\n" })
          with
          | Ok r -> (
              (match r.Protocol.status with
              | Error _ -> ()
              | Ok () -> Alcotest.fail "bad netlist must produce an error response");
              Alcotest.(check string) "connection still live" "1"
                (field (roundtrip fdc Protocol.Ping) "pong"))
          | Error e -> Alcotest.fail e))

let () =
  Alcotest.run "pmtbr_serve"
    [
      ( "lru",
        [
          Alcotest.test_case "hit and miss" `Quick test_lru_hit_miss;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "oversized entry lands" `Quick test_lru_oversized_entry_lands;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "malformed frames" `Quick test_frame_malformed;
          Alcotest.test_case "oversized frame" `Quick test_frame_oversized;
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "partition roundtrip and validation" `Quick
            test_partition_roundtrip_and_validation;
          Alcotest.test_case "auto fields roundtrip and validation" `Quick
            test_auto_fields_roundtrip_and_validation;
          Alcotest.test_case "request validation" `Quick test_request_validation;
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
        ] );
      ( "band-bugfix",
        [ Alcotest.test_case "validation" `Quick test_band_validation ] );
      ( "spice-bugfix",
        [
          Alcotest.test_case "unit suffixes" `Quick test_spice_value_units;
          Alcotest.test_case "netlist with units" `Quick test_spice_netlist_with_units;
        ] );
      ( "store",
        [
          Alcotest.test_case "hash stability" `Quick test_hash_stability;
          Alcotest.test_case "tiers and counters" `Quick test_store_tiers_and_counters;
          Alcotest.test_case "reformatted collides to one rom" `Quick
            test_reformatted_collides_to_one_rom;
          Alcotest.test_case "tbr-passive tiers and export" `Quick
            test_tbr_passive_tiers_and_export;
          Alcotest.test_case "hier tiers and stats" `Quick test_hier_tiers_and_stats;
          Alcotest.test_case "hier auto tree tiers" `Quick test_hier_auto_tree_tiers;
          Alcotest.test_case "hier changed subtree stays warm" `Quick
            test_hier_changed_subtree_warm;
          Alcotest.test_case "hier warm equals cold (bitwise)" `Quick test_hier_warm_equals_cold;
          Alcotest.test_case "warm equals cold (bitwise)" `Quick test_warm_equals_cold;
          Alcotest.test_case "eviction forces recompute" `Quick test_eviction_forces_recompute;
          Alcotest.test_case "rejects garbage" `Quick test_store_rejects_garbage;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "concurrent jobs deterministic" `Quick
            test_concurrent_jobs_deterministic;
          Alcotest.test_case "export job" `Quick test_daemon_export_job;
          Alcotest.test_case "hier stats field" `Quick test_daemon_hier_stats_field;
          Alcotest.test_case "protocol errors" `Quick test_daemon_protocol_errors;
        ] );
    ]
