(* Integration tests: complete flows across the library boundaries,
   mirroring how a downstream user wires the pieces together. *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_circuit
open Pmtbr_core

(* ------------------------------------------------------------------ *)
(* Flow 1: SPICE text -> parse -> reduce -> frequency validation        *)
(* ------------------------------------------------------------------ *)

let test_spice_to_reduced_model () =
  (* export a generated circuit, re-import it, reduce the import and check
     the reduced model against the original generator's system *)
  let original = Rc_line.generate ~sections:40 () in
  let text = Spice.to_string original in
  let imported = Dss.of_netlist (Spice.netlist (Spice.parse_string text)) in
  let reduced = Pmtbr.reduce_uniform ~order:8 imported ~w_max:3e9 ~count:20 in
  let reference = Dss.of_netlist original in
  let om = Vec.linspace 0.0 3e9 25 in
  let err = Freq.max_rel_error (Freq.sweep reference om) (Freq.sweep reduced.Pmtbr.rom om) in
  if err > 1e-6 then Alcotest.failf "spice->reduce flow error %g" err

(* ------------------------------------------------------------------ *)
(* Flow 2: all reduction methods agree on an easy circuit               *)
(* ------------------------------------------------------------------ *)

let test_all_methods_agree () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:30 ()) in
  let w_max = 3e9 in
  let pts = Sampling.points (Sampling.Uniform { w_max }) ~count:24 in
  let om = Vec.linspace 0.0 w_max 25 in
  let href = Freq.sweep sys om in
  let check name rom limit =
    let err = Freq.max_rel_error href (Freq.sweep rom om) in
    if err > limit then Alcotest.failf "%s error %g > %g" name err limit
  in
  check "pmtbr" (Pmtbr.reduce ~order:10 sys pts).Pmtbr.rom 1e-7;
  check "adaptive" (Pmtbr.reduce_adaptive ~tol:1e-10 sys pts).Pmtbr.rom 1e-6;
  check "rrqr" (Pmtbr.reduce_adaptive_rrqr ~tol:1e-10 sys pts).Pmtbr.rom 1e-6;
  check "tbr" (Tbr.reduce_dss ~order:10 sys).Tbr.rom 1e-4;
  check "prima" (Prima.reduce_to_order sys ~s0:(w_max /. 10.0) ~order:10).Prima.rom 1e-6;
  check "multipoint" (Multipoint.reduce sys (Sampling.spread_order pts) ~count:5).Multipoint.rom 1e-6;
  check "cross" (Cross_gramian.reduce ~order:10 sys pts).Cross_gramian.rom 1e-6;
  check "two-step" (Two_step.reduce sys ~s0:(w_max /. 10.0) ~intermediate:20 ~order:10 ()).Two_step.rom 1e-4

(* ------------------------------------------------------------------ *)
(* Flow 3: reduce -> transient -> compare against full, multiport       *)
(* ------------------------------------------------------------------ *)

let test_multiport_transient_flow () =
  let sys = Dss.of_netlist (Coupled_bus.generate ~lines:3 ~sections:15 ()) in
  let w = Coupled_bus.bandwidth ~sections:15 () in
  let r = Pmtbr.reduce_uniform ~order:18 sys ~w_max:w ~count:16 in
  (* drive line 0 with a ramp-edge pulse; observe victim line 1 *)
  let rise = 4.0 /. w in
  let u t = [| Float.min 1e-3 (Float.max 0.0 (1e-3 *. t /. rise)); 0.0; 0.0 |] in
  let t1 = 40.0 *. rise and dt = rise /. 10.0 in
  let full = Tdsim.simulate sys ~t0:0.0 ~t1 ~dt ~u in
  let red = Tdsim.simulate r.Pmtbr.rom ~t0:0.0 ~t1 ~dt ~u in
  let scale = Mat.max_abs full.Tdsim.outputs in
  List.iter
    (fun row ->
      let e = Tdsim.output_rms_error ~row full red in
      if e > 1e-3 *. scale then Alcotest.failf "row %d transient error %g" row e)
    [ 0; 1; 2 ];
  (* the crosstalk on line 1 must itself be nontrivial, or the test is vacuous *)
  let xtalk = ref 0.0 in
  for k = 0 to Array.length full.Tdsim.times - 1 do
    xtalk := Float.max !xtalk (Float.abs (Mat.get full.Tdsim.outputs 1 k))
  done;
  Alcotest.(check bool) "crosstalk visible" true (!xtalk > 1e-4 *. scale)

(* ------------------------------------------------------------------ *)
(* Flow 4: frequency- and time-domain reductions agree                  *)
(* ------------------------------------------------------------------ *)

let test_pod_vs_pmtbr_subspaces () =
  (* trained on a step, POD and PMTBR should both capture the dominant
     low-frequency behaviour: their reduced models agree with the full
     system (and hence each other) at low frequency *)
  let sys = Dss.of_netlist (Rc_line.generate ~sections:25 ()) in
  let pm = Pmtbr.reduce_uniform ~order:6 sys ~w_max:1e9 ~count:16 in
  let pod = Time_sampled.reduce ~order:6 sys ~u:(fun _ -> [| 1e-3 |]) ~t1:30e-9 ~dt:0.03e-9 ~snapshots:120 in
  let om = Vec.linspace 0.0 5e8 15 in
  let href = Freq.sweep sys om in
  let e_pm = Freq.max_rel_error href (Freq.sweep pm.Pmtbr.rom om) in
  let e_pod = Freq.max_rel_error href (Freq.sweep pod.Time_sampled.rom om) in
  if e_pm > 1e-6 then Alcotest.failf "pmtbr low-band error %g" e_pm;
  if e_pod > 1e-2 then Alcotest.failf "pod low-band error %g" e_pod

(* ------------------------------------------------------------------ *)
(* Flow 5: the full Fig. 13 pipeline on a smaller instance              *)
(* ------------------------------------------------------------------ *)

let test_input_correlated_pipeline () =
  let ports = 16 in
  let sys = Dss.of_netlist (Rc_mesh.generate ~rows:6 ~cols:6 ~ports ()) in
  let rng = Pmtbr_signal.Rng.create 5 in
  let period = 2e-9 in
  let waves = Pmtbr_signal.Waveform.dithered_square_bank ~rng ~ports ~period ~dither:0.1 in
  let waves = Array.map (fun w t -> 1e-3 *. w t) waves in
  let inputs = Pmtbr_signal.Waveform.sample_matrix waves ~t0:0.0 ~t1:(4.0 *. period) ~samples:300 in
  let pts = Sampling.points (Sampling.Uniform { w_max = 2.0 *. Float.pi *. 8.0 /. period }) ~count:10 in
  let ic = Input_correlated.reduce ~order:10 ~input_tol:1e-3 sys ~inputs ~points:pts ~draws:30 in
  let u t = Array.map (fun w -> w t) waves in
  let full = Tdsim.simulate sys ~t0:0.0 ~t1:8e-9 ~dt:0.02e-9 ~u in
  let red = Tdsim.simulate ic.Input_correlated.rom ~t0:0.0 ~t1:8e-9 ~dt:0.02e-9 ~u in
  let scale = Mat.max_abs full.Tdsim.outputs in
  let e = Tdsim.output_rms_error full red in
  if e > 5e-3 *. scale then Alcotest.failf "ic pipeline error %g (scale %g)" e scale

(* ------------------------------------------------------------------ *)
(* Flow 6: stability/passivity of every method's reduced model          *)
(* ------------------------------------------------------------------ *)

let test_all_reduced_models_stable () =
  let sys = Dss.of_netlist (Rc_mesh.generate ~rows:5 ~cols:5 ~ports:2 ()) in
  let w_max = 1e10 in
  let pts = Sampling.points (Sampling.Uniform { w_max }) ~count:12 in
  let roms =
    [
      ("pmtbr", (Pmtbr.reduce ~order:6 sys pts).Pmtbr.rom);
      ("tbr", (Tbr.reduce_dss ~order:6 sys).Tbr.rom);
      ("prima", (Prima.reduce_to_order sys ~s0:1e9 ~order:6).Prima.rom);
      ("cross", (Cross_gramian.reduce ~order:6 sys pts).Cross_gramian.rom);
    ]
  in
  List.iter
    (fun (name, rom) ->
      if not (Stability.is_stable ~tol:1e-2 rom) then
        Alcotest.failf "%s reduced model unstable (abscissa %g)" name
          (Stability.spectral_abscissa rom))
    roms

(* ------------------------------------------------------------------ *)
(* Flow 7: descriptor system with singular E end-to-end                 *)
(* ------------------------------------------------------------------ *)

let test_singular_e_flow () =
  (* the PEEC chain has cap-less internal nodes: E singular.  TBR must
     refuse (Invalid_argument, not a raw factorisation failure) while
     PMTBR reduces and simulates fine - the paper's Section V-A claim. *)
  let sys = Dss.of_netlist (Peec.generate ~cells:8 ()) in
  (try
     ignore (Tbr.reduce_dss ~order:6 sys);
     Alcotest.fail "TBR should fail on singular E"
   with Invalid_argument _ -> ());
  let w_max = Peec.sample_band () /. 2.0 in
  let r = Pmtbr.reduce ~order:20 sys (Sampling.points (Sampling.Uniform { w_max }) ~count:24) in
  let om = Vec.linspace (w_max /. 100.0) w_max 30 in
  let err = Freq.max_rel_error (Freq.sweep sys om) (Freq.sweep r.Pmtbr.rom om) in
  if err > 1e-2 then Alcotest.failf "pmtbr on singular-E error %g" err

(* ------------------------------------------------------------------ *)
(* Flow 8: error estimates are actionable                               *)
(* ------------------------------------------------------------------ *)

let test_order_control_end_to_end () =
  (* ask for a target accuracy through the tolerance; verify the delivered
     model meets a proportional actual accuracy *)
  let sys = Dss.of_netlist (Rc_line.generate ~sections:35 ()) in
  let pts = Sampling.points (Sampling.Uniform { w_max = 3e9 }) ~count:30 in
  let om = Vec.linspace 0.0 3e9 30 in
  let href = Freq.sweep sys om in
  List.iter
    (fun tol ->
      let r = Pmtbr.reduce ~tol sys pts in
      let err = Freq.max_rel_error href (Freq.sweep r.Pmtbr.rom om) in
      (* allow two orders of magnitude of slack between the singular-value
         tolerance and the realised response error *)
      if err > tol *. 1e2 +. 1e-13 then
        Alcotest.failf "tol %g delivered err %g (order %d)" tol err (Dss.order r.Pmtbr.rom))
    [ 1e-4; 1e-6; 1e-8 ]

(* ------------------------------------------------------------------ *)
(* Flow 9: golden regression                                            *)
(* ------------------------------------------------------------------ *)

(* Frozen outputs of a fixed configuration (6x6 RC mesh, 2 ports, 12
   uniform points to 1e10 rad/s), stored to full precision.  Any numeric
   change in the sampling path — pattern assembly, ordering, the unboxed
   refactorisation replay, realification, the SVD — moves these digits;
   deliberate changes must update the references consciously. *)
let golden_sv =
  [|
    9.05157943789976835e+07;
    1.27879429377086405e+07;
    6.75958249456871022e+06;
    7.34524733062745538e+05;
    4.56507244359621604e+05;
    2.66695410516959564e+04;
    7.27921744422405209e+03;
    5.02117685386064522e+02;
    7.80709997965714564e+01;
    5.54021058747224426e+00;
  |]

let test_golden_regression () =
  let sys = Dss.of_netlist (Rc_mesh.generate ~rows:6 ~cols:6 ~ports:2 ()) in
  let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:12 in
  let sv = Pmtbr.sample_singular_values sys pts in
  Array.iteri
    (fun i ref_v ->
      let rel = Float.abs (sv.(i) -. ref_v) /. ref_v in
      if rel > 1e-8 then
        Alcotest.failf "singular value %d drifted: got %.17e, reference %.17e (rel %.3e)" i
          sv.(i) ref_v rel)
    golden_sv;
  let r = Pmtbr.reduce ~order:8 sys pts in
  let om = Vec.linspace 0.0 1e10 21 in
  let err = Freq.max_rel_error (Freq.sweep sys om) (Freq.sweep r.Pmtbr.rom om) in
  (* reference run: 2.584e-10; a regression in the solver stack shows up
     as orders of magnitude, not fractions *)
  if err > 1e-9 then Alcotest.failf "transfer error regressed: %.3e > 1e-9 (reference 2.58e-10)" err

let () =
  Alcotest.run "pmtbr_integration"
    [
      ( "flows",
        [
          Alcotest.test_case "spice -> reduce" `Quick test_spice_to_reduced_model;
          Alcotest.test_case "all methods agree" `Quick test_all_methods_agree;
          Alcotest.test_case "multiport transient" `Quick test_multiport_transient_flow;
          Alcotest.test_case "pod vs pmtbr" `Quick test_pod_vs_pmtbr_subspaces;
          Alcotest.test_case "input-correlated pipeline" `Quick test_input_correlated_pipeline;
          Alcotest.test_case "all reduced models stable" `Quick test_all_reduced_models_stable;
          Alcotest.test_case "singular E flow" `Quick test_singular_e_flow;
          Alcotest.test_case "order control end-to-end" `Quick test_order_control_end_to_end;
          Alcotest.test_case "golden regression" `Quick test_golden_regression;
        ] );
    ]
