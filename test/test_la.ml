(* Unit and property tests for the dense linear algebra substrate. *)

open Pmtbr_la

let check_float = Alcotest.(check (float 1e-9))

let approx ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %g)" msg expected actual tol

let check_small ?(tol = 1e-9) msg value =
  if Float.abs value > tol then Alcotest.failf "%s: |%.3e| > %g" msg value tol

(* Deterministic random stable matrix: A = -(M M^T + alpha I). *)
let random_stable ?(seed = 7) ?(alpha = 0.5) n =
  let m = Mat.random ~seed n n in
  let mmt = Mat.mul m (Mat.transpose m) in
  Mat.init n n (fun i j -> -.(Mat.get mmt i j /. float_of_int n) -. if i = j then alpha else 0.0)

(* A random non-symmetric stable matrix: symmetric part negative definite. *)
let random_stable_nonsym ?(seed = 11) n =
  let s = random_stable ~seed n in
  let k = Mat.random ~seed:(seed + 1) n n in
  let skew = Mat.init n n (fun i j -> 0.5 *. (Mat.get k i j -. Mat.get k j i)) in
  Mat.add s skew

(* ------------------------------------------------------------------ *)
(* Mat basics                                                          *)
(* ------------------------------------------------------------------ *)

let test_mat_mul () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Mat.mul a b in
  check_float "c00" 19.0 (Mat.get c 0 0);
  check_float "c01" 22.0 (Mat.get c 0 1);
  check_float "c10" 43.0 (Mat.get c 1 0);
  check_float "c11" 50.0 (Mat.get c 1 1)

let test_mat_identity_mul () =
  let a = Mat.random ~seed:3 5 5 in
  let i5 = Mat.identity 5 in
  check_small "a*I - a" (Mat.frobenius (Mat.sub (Mat.mul a i5) a));
  check_small "I*a - a" (Mat.frobenius (Mat.sub (Mat.mul i5 a) a))

let test_mat_transpose_involution () =
  let a = Mat.random ~seed:5 4 7 in
  check_small "(a^T)^T - a" (Mat.frobenius (Mat.sub (Mat.transpose (Mat.transpose a)) a))

let test_mat_mv_matches_mul () =
  let a = Mat.random ~seed:9 6 4 in
  let x = Array.init 4 (fun i -> float_of_int (i + 1)) in
  let xm = Mat.init 4 1 (fun i _ -> x.(i)) in
  let y1 = Mat.mv a x in
  let y2 = Mat.col (Mat.mul a xm) 0 in
  check_small "mv vs mul" (Vec.max_abs_diff y1 y2)

let test_mat_gram () =
  let a = Mat.random ~seed:21 8 5 in
  let g1 = Mat.gram a in
  let g2 = Mat.mul (Mat.transpose a) a in
  check_small "gram" (Mat.frobenius (Mat.sub g1 g2))

let test_hcat_vcat () =
  let a = Mat.random ~seed:2 3 2 and b = Mat.random ~seed:4 3 3 in
  let h = Mat.hcat a b in
  Alcotest.(check (pair int int)) "hcat dims" (3, 5) (Mat.dims h);
  check_float "hcat left" (Mat.get a 1 1) (Mat.get h 1 1);
  check_float "hcat right" (Mat.get b 2 1) (Mat.get h 2 3);
  let c = Mat.random ~seed:6 2 2 and d = Mat.random ~seed:8 3 2 in
  let v = Mat.vcat c d in
  Alcotest.(check (pair int int)) "vcat dims" (5, 2) (Mat.dims v);
  check_float "vcat bottom" (Mat.get d 2 0) (Mat.get v 4 0)

(* ------------------------------------------------------------------ *)
(* LU                                                                  *)
(* ------------------------------------------------------------------ *)

let test_lu_solve () =
  let a = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let b = [| 5.0; 10.0 |] in
  let x = Mat.solve_vec a b in
  check_float "x0" 1.0 x.(0);
  check_float "x1" 3.0 x.(1)

let test_lu_random_residual () =
  let n = 30 in
  let a = Mat.add (Mat.random ~seed:13 n n) (Mat.scale 2.0 (Mat.identity n)) in
  let b = Mat.random ~seed:17 n 3 in
  let x = Mat.solve a b in
  let r = Mat.sub (Mat.mul a x) b in
  check_small ~tol:1e-8 "residual" (Mat.frobenius r)

let test_lu_singular_raises () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Mat.Singular 1) (fun () -> ignore (Mat.lu a))

let test_lu_inverse () =
  let a = Mat.add (Mat.random ~seed:19 8 8) (Mat.scale 3.0 (Mat.identity 8)) in
  let ainv = Mat.inverse a in
  check_small ~tol:1e-9 "a*ainv - I" (Mat.frobenius (Mat.sub (Mat.mul a ainv) (Mat.identity 8)))

let test_complex_lu () =
  let n = 12 in
  let re = Mat.random ~seed:23 n n and im = Mat.random ~seed:29 n n in
  let a =
    Cmat.init n n (fun i j ->
        { Complex.re = Mat.get re i j +. (if i = j then 4.0 else 0.0); im = Mat.get im i j })
  in
  let b = Cmat.of_mat (Mat.random ~seed:31 n 2) in
  let x = Cmat.solve a b in
  let r = Cmat.sub (Cmat.mul a x) b in
  check_small ~tol:1e-9 "complex residual" (Cmat.frobenius r)

let test_det_known () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_float "det" (-2.0) (Mat.det a)

let test_det_singular_zero () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  check_float "singular det" 0.0 (Mat.det a)

let test_det_identity_permuted () =
  (* a permutation matrix has det +-1 according to its parity *)
  let p = Mat.of_arrays [| [| 0.0; 1.0; 0.0 |]; [| 0.0; 0.0; 1.0 |]; [| 1.0; 0.0; 0.0 |] |] in
  check_float "3-cycle det" 1.0 (Mat.det p);
  let swap = Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  check_float "swap det" (-1.0) (Mat.det swap)

let test_det_multiplicative () =
  let a = Mat.add (Mat.random ~seed:151 5 5) (Mat.identity 5) in
  let b = Mat.add (Mat.random ~seed:157 5 5) (Mat.identity 5) in
  approx ~tol:1e-8 "det(ab) = det a * det b" (Mat.det a *. Mat.det b) (Mat.det (Mat.mul a b))

let test_trace () =
  let a = Mat.of_arrays [| [| 1.0; 9.0 |]; [| 9.0; 5.0 |] |] in
  check_float "trace" 6.0 (Mat.trace a)

let test_norm_1 () =
  let a = Mat.of_arrays [| [| 1.0; -7.0 |]; [| -2.0; 3.0 |] |] in
  check_float "norm_1" 10.0 (Mat.norm_1 a)

let test_cond_1 () =
  approx ~tol:1e-9 "cond(I) = 1" 1.0 (Mat.cond_1 (Mat.identity 6));
  let d = Mat.diag [| 100.0; 1.0 |] in
  approx ~tol:1e-9 "cond(diag)" 100.0 (Mat.cond_1 d);
  let s = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.(check bool) "singular cond infinite" true (Mat.cond_1 s = Float.infinity)

(* ------------------------------------------------------------------ *)
(* QR                                                                  *)
(* ------------------------------------------------------------------ *)

let test_qr_thin () =
  let a = Mat.random ~seed:37 10 4 in
  let q, r = Qr.thin a in
  check_small ~tol:1e-10 "QR - A" (Mat.frobenius (Mat.sub (Mat.mul q r) a));
  let qtq = Mat.mul (Mat.transpose q) q in
  check_small ~tol:1e-10 "Q^T Q - I" (Mat.frobenius (Mat.sub qtq (Mat.identity 4)));
  (* R upper triangular *)
  for i = 1 to 3 do
    for j = 0 to i - 1 do
      check_small "R lower" (Mat.get r i j)
    done
  done

let test_qr_orth_rank_deficient () =
  let b = Mat.random ~seed:41 8 2 in
  (* columns: [b0, b1, b0+b1, 2 b0] -> rank 2 *)
  let a =
    Mat.init 8 4 (fun i j ->
        match j with
        | 0 -> Mat.get b i 0
        | 1 -> Mat.get b i 1
        | 2 -> Mat.get b i 0 +. Mat.get b i 1
        | _ -> 2.0 *. Mat.get b i 0)
  in
  let q = Qr.orth a in
  Alcotest.(check int) "rank" 2 q.Mat.cols;
  check_small ~tol:1e-10 "orthonormal"
    (Mat.frobenius (Mat.sub (Mat.mul (Mat.transpose q) q) (Mat.identity 2)))

let test_qr_pivoted_rank () =
  let b = Mat.random ~seed:43 12 3 in
  let c = Mat.random ~seed:47 3 7 in
  let a = Mat.mul b c in
  let { Qr.rank; _ } = Qr.pivoted ~tol:1e-10 a in
  Alcotest.(check int) "pivoted rank" 3 rank

(* ------------------------------------------------------------------ *)
(* SVD                                                                 *)
(* ------------------------------------------------------------------ *)

let svd_reconstruct { Svd.u; sigma; v } =
  Mat.mul u (Mat.mul (Mat.diag sigma) (Mat.transpose v))

let test_svd_known () =
  (* diag(3, 2) embedded in a rotation-free matrix *)
  let a = Mat.of_arrays [| [| 3.0; 0.0 |]; [| 0.0; 2.0 |]; [| 0.0; 0.0 |] |] in
  let { Svd.sigma; _ } = Svd.decompose a in
  check_float "s0" 3.0 sigma.(0);
  check_float "s1" 2.0 sigma.(1)

let test_svd_reconstruction_tall () =
  let a = Mat.random ~seed:53 15 6 in
  let t = Svd.decompose a in
  check_small ~tol:1e-9 "USV^T - A" (Mat.frobenius (Mat.sub (svd_reconstruct t) a));
  check_small ~tol:1e-10 "U orth"
    (Mat.frobenius (Mat.sub (Mat.mul (Mat.transpose t.Svd.u) t.Svd.u) (Mat.identity 6)));
  check_small ~tol:1e-10 "V orth"
    (Mat.frobenius (Mat.sub (Mat.mul (Mat.transpose t.Svd.v) t.Svd.v) (Mat.identity 6)))

let test_svd_reconstruction_wide () =
  let a = Mat.random ~seed:59 5 11 in
  let t = Svd.decompose a in
  check_small ~tol:1e-9 "wide USV^T - A" (Mat.frobenius (Mat.sub (svd_reconstruct t) a))

let test_svd_descending () =
  let a = Mat.random ~seed:61 9 9 in
  let s = Svd.values a in
  for i = 0 to Array.length s - 2 do
    if s.(i) < s.(i + 1) then Alcotest.failf "not descending at %d" i
  done

let test_svd_rank () =
  let b = Mat.random ~seed:67 10 4 in
  let c = Mat.random ~seed:71 4 10 in
  Alcotest.(check int) "rank of product" 4 (Svd.rank (Mat.mul b c))

let test_svd_small_values_accuracy () =
  (* matrix with huge dynamic range of singular values *)
  let s_exact = [| 1.0; 1e-4; 1e-8; 1e-12 |] in
  let q1 = Qr.orth (Mat.random ~seed:73 8 4) in
  let q2 = Qr.orth (Mat.random ~seed:79 4 4) in
  let a = Mat.mul q1 (Mat.mul (Mat.diag s_exact) (Mat.transpose q2)) in
  let s = Svd.values a in
  Array.iteri
    (fun i se ->
      if Float.abs (s.(i) -. se) > 1e-6 *. se +. 1e-15 then
        Alcotest.failf "sigma %d: expected %g got %g" i se s.(i))
    s_exact

(* ------------------------------------------------------------------ *)
(* Symmetric eigendecomposition                                        *)
(* ------------------------------------------------------------------ *)

let test_eig_sym_known () =
  let a = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let values, _ = Eig_sym.decompose a in
  check_float "l0" 3.0 values.(0);
  check_float "l1" 1.0 values.(1)

let test_eig_sym_reconstruction () =
  let m = Mat.random ~seed:83 10 10 in
  let a = Mat.symmetrize m in
  let values, v = Eig_sym.decompose a in
  let recon = Mat.mul v (Mat.mul (Mat.diag values) (Mat.transpose v)) in
  check_small ~tol:1e-9 "V D V^T - A" (Mat.frobenius (Mat.sub recon a));
  check_small ~tol:1e-10 "V orth"
    (Mat.frobenius (Mat.sub (Mat.mul (Mat.transpose v) v) (Mat.identity 10)))

let test_psd_factor () =
  let b = Mat.random ~seed:89 8 3 in
  let x = Mat.mul b (Mat.transpose b) in
  let l = Eig_sym.psd_factor x in
  Alcotest.(check int) "factor rank" 3 l.Mat.cols;
  check_small ~tol:1e-9 "LL^T - X" (Mat.frobenius (Mat.sub (Mat.mul l (Mat.transpose l)) x))

(* ------------------------------------------------------------------ *)
(* Cholesky                                                            *)
(* ------------------------------------------------------------------ *)

let test_chol_factor () =
  let m = Mat.random ~seed:97 7 7 in
  let a = Mat.add (Mat.mul m (Mat.transpose m)) (Mat.identity 7) in
  let l = Chol.factor a in
  check_small ~tol:1e-9 "LL^T - A" (Mat.frobenius (Mat.sub (Mat.mul l (Mat.transpose l)) a));
  let b = Array.init 7 float_of_int in
  let x = Chol.solve_vec l b in
  check_small ~tol:1e-8 "chol solve" (Vec.max_abs_diff (Mat.mv a x) b)

let test_chol_not_pd () =
  let a = Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; -1.0 |] |] in
  Alcotest.check_raises "not pd" (Chol.Not_positive_definite 1) (fun () ->
      ignore (Chol.factor a))

let test_chol_psd_factor () =
  let b = Mat.random ~seed:101 9 4 in
  let x = Mat.mul b (Mat.transpose b) in
  let l, rank = Chol.psd_factor x in
  Alcotest.(check int) "psd rank" 4 rank;
  let lr = Mat.sub_cols l 0 rank in
  check_small ~tol:1e-8 "psd LL^T - X" (Mat.frobenius (Mat.sub (Mat.mul lr (Mat.transpose lr)) x))

(* ------------------------------------------------------------------ *)
(* Complex Schur                                                       *)
(* ------------------------------------------------------------------ *)

let schur_checks a =
  let n = a.Mat.rows in
  let { Cschur.q; tm } = Cschur.of_real a in
  (* unitarity *)
  let qhq = Cmat.mul (Cmat.conj_transpose q) q in
  check_small ~tol:1e-9 "Q^H Q - I" (Cmat.frobenius (Cmat.sub qhq (Cmat.identity n)));
  (* similarity *)
  let recon = Cmat.mul q (Cmat.mul tm (Cmat.conj_transpose q)) in
  check_small ~tol:1e-8 "QTQ^H - A" (Cmat.frobenius (Cmat.sub recon (Cmat.of_mat a)));
  (* triangularity *)
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      check_small ~tol:1e-30 "strictly lower zero" (Complex.norm (Cmat.get tm i j))
    done
  done

let test_schur_random () = schur_checks (Mat.random ~seed:103 12 12)
let test_schur_symmetric () = schur_checks (Mat.symmetrize (Mat.random ~seed:107 9 9))
let test_schur_stable () = schur_checks (random_stable_nonsym 15)

let test_schur_eigenvalues_2x2 () =
  (* [[0, 1], [-1, 0]] has eigenvalues +-i *)
  let a = Mat.of_arrays [| [| 0.0; 1.0 |]; [| -1.0; 0.0 |] |] in
  let s = Cschur.of_real a in
  let evs = Cschur.eigenvalues s in
  let ims = Array.map (fun z -> z.Complex.im) evs in
  Array.sort compare ims;
  approx ~tol:1e-9 "im0" (-1.0) ims.(0);
  approx ~tol:1e-9 "im1" 1.0 ims.(1);
  Array.iter (fun z -> check_small ~tol:1e-9 "re" z.Complex.re) evs

let test_schur_eigenvector () =
  let a = random_stable_nonsym 10 in
  let s = Cschur.of_real a in
  let evs = Cschur.eigenvalues s in
  let v = Cschur.eigenvector s 3 in
  let av = Cmat.mv (Cmat.of_mat a) v in
  let lv = Cvec.scale evs.(3) v in
  check_small ~tol:1e-7 "A v - lambda v" (Cvec.max_abs (Cvec.sub av lv))

(* ------------------------------------------------------------------ *)
(* Lyapunov / Sylvester                                                *)
(* ------------------------------------------------------------------ *)

let test_lyap_symmetric () =
  let a = random_stable 12 in
  let b = Mat.random ~seed:109 12 3 in
  let q = Mat.mul b (Mat.transpose b) in
  let x = Lyap.solve a q in
  check_small ~tol:1e-8 "sym lyap residual" (Lyap.lyapunov_residual a x q)

let test_lyap_general () =
  let a = random_stable_nonsym 14 in
  let b = Mat.random ~seed:113 14 2 in
  let q = Mat.mul b (Mat.transpose b) in
  let x = Lyap.solve_with (Lyap.factor_general a) q in
  check_small ~tol:1e-7 "gen lyap residual" (Lyap.lyapunov_residual a x q)

let test_lyap_1x1 () =
  (* a x + x a = -q  =>  x = -q/(2a) *)
  let a = Mat.of_arrays [| [| -2.0 |] |] in
  let q = Mat.of_arrays [| [| 4.0 |] |] in
  let x = Lyap.solve a q in
  check_float "x" 1.0 (Mat.get x 0 0)

let test_lyap_factor_reuse () =
  let a = random_stable_nonsym 10 in
  let fact = Lyap.factor_general a in
  List.iter
    (fun seed ->
      let b = Mat.random ~seed 10 2 in
      let q = Mat.mul b (Mat.transpose b) in
      let x = Lyap.solve_with fact q in
      check_small ~tol:1e-7 "reuse residual" (Lyap.lyapunov_residual a x q))
    [ 1; 2; 3 ]

let test_lyap_0x0 () =
  (* the empty pencil must round-trip through both factor paths rather
     than reaching the eigensolvers *)
  let z = Mat.create 0 0 in
  let x = Lyap.solve z z in
  Alcotest.(check int) "rows" 0 x.Mat.rows;
  let x = Lyap.solve_with (Lyap.factor_general z) z in
  Alcotest.(check int) "cols" 0 x.Mat.cols

let test_descriptor_residual () =
  (* direct check that the generalised residual A X E^T + E X A^T + B B^T
     is driven to zero when X comes from the transformed standard equation
     F X + X F^T + (E^{-1}B)(E^{-1}B)^T = 0 with F = E^{-1}A *)
  let n = 10 in
  let a = random_stable_nonsym ~seed:17 n in
  let e0 = Mat.random ~seed:19 n n in
  let e =
    Mat.add (Mat.scale (1.0 /. float_of_int n) (Mat.mul e0 (Mat.transpose e0))) (Mat.identity n)
  in
  let b = Mat.random ~seed:23 n 2 in
  let lu = Mat.lu e in
  let f = Mat.lu_solve lu a and btil = Mat.lu_solve lu b in
  let x = Lyap.solve_with (Lyap.factor_general f) (Mat.symmetrize (Mat.mul btil (Mat.transpose btil))) in
  let q = Mat.mul b (Mat.transpose b) in
  check_small ~tol:(1e-7 *. Mat.frobenius q) "descriptor residual"
    (Lyap.descriptor_residual ~e ~a x q)

let test_sylvester_cross () =
  let a = random_stable_nonsym 9 in
  let b = Mat.random ~seed:127 9 1 in
  let c = Mat.random ~seed:131 1 9 in
  let q = Mat.mul b c in
  let x = Lyap.solve_cross a q in
  check_small ~tol:1e-7 "cross residual" (Lyap.sylvester_cross_residual a x q)

let test_cross_gramian_symmetric_case () =
  (* For symmetric A with C = B^T, Xcg^2 = X Y = X^2. *)
  let a = random_stable 8 in
  let b = Mat.random ~seed:137 8 1 in
  let x = Lyap.solve a (Mat.mul b (Mat.transpose b)) in
  let xcg = Lyap.solve_cross a (Mat.mul b (Mat.transpose b)) in
  check_small ~tol:1e-7 "Xcg = X in symmetric case" (Mat.frobenius (Mat.sub x xcg))

let test_schur_nilpotent () =
  (* defective matrix: Jordan block with eigenvalues {0, 0} *)
  let a = Mat.of_arrays [| [| 0.0; 1.0 |]; [| 0.0; 0.0 |] |] in
  let s = Cschur.of_real a in
  Array.iter
    (fun z -> check_small ~tol:1e-8 "nilpotent eigenvalue" (Complex.norm z))
    (Cschur.eigenvalues s);
  schur_checks a

let test_schur_1x1_and_diagonal () =
  let s = Cschur.of_real (Mat.of_arrays [| [| 42.0 |] |]) in
  approx ~tol:1e-12 "1x1" 42.0 (Cschur.eigenvalues s).(0).Complex.re;
  let d = Mat.diag [| 3.0; -1.0; 7.0 |] in
  let evs = Array.map (fun z -> z.Complex.re) (Cschur.eigenvalues (Cschur.of_real d)) in
  Array.sort compare evs;
  approx "diag eig 0" (-1.0) evs.(0);
  approx "diag eig 1" 3.0 evs.(1);
  approx "diag eig 2" 7.0 evs.(2)

let test_svd_zero_matrix () =
  let s = Svd.values (Mat.create 5 3) in
  Array.iter (fun v -> check_small "zero svd" v) s;
  Alcotest.(check int) "zero rank" 0 (Svd.rank (Mat.create 5 3))

let test_svd_single_column () =
  let a = Mat.of_arrays [| [| 3.0 |]; [| 4.0 |] |] in
  approx "norm column" 5.0 (Svd.values a).(0)

let test_orth_zero_matrix () =
  let q = Qr.orth (Mat.create 6 3) in
  Alcotest.(check int) "no columns" 0 q.Mat.cols

(* ------------------------------------------------------------------ *)
(* Riccati                                                             *)
(* ------------------------------------------------------------------ *)

let test_care_scalar () =
  (* -2x - x^2 + 1 = 0 (a = -1, g = q = 1): x = sqrt 2 - 1 *)
  let one = Mat.of_arrays [| [| 1.0 |] |] in
  let a = Mat.of_arrays [| [| -1.0 |] |] in
  let x = Riccati.care ~a ~g:one ~q:one () in
  approx ~tol:1e-10 "scalar care" (sqrt 2.0 -. 1.0) (Mat.get x 0 0)

let test_care_zero_q () =
  (* q = 0 with stable a: x = 0 *)
  let a = random_stable 6 in
  let g = Mat.identity 6 in
  let x = Riccati.care ~a ~g ~q:(Mat.create 6 6) () in
  check_small ~tol:1e-12 "zero solution" (Mat.frobenius x)

let test_care_residual_random () =
  let a = random_stable_nonsym ~seed:31 8 in
  let b = Mat.random ~seed:37 8 2 in
  let c = Mat.random ~seed:41 1 8 in
  let g = Mat.mul b (Mat.transpose b) in
  let q = Mat.mul (Mat.transpose c) c in
  let x = Riccati.care ~a ~g ~q () in
  check_small ~tol:1e-8 "care residual" (Riccati.care_residual ~a ~g ~q x);
  (* stabilising solution: X symmetric PSD *)
  if not (Mat.is_symmetric ~tol:1e-8 x) then Alcotest.fail "X not symmetric";
  let eigs = Eig_sym.eigenvalues x in
  if eigs.(Array.length eigs - 1) < -1e-10 then Alcotest.fail "X not PSD"

let test_care_reduces_to_lyapunov () =
  (* g = 0: the CARE is the Lyapunov equation A^T X + X A + Q = 0 *)
  let a = random_stable_nonsym ~seed:43 7 in
  let q0 = Mat.random ~seed:47 7 1 in
  let q = Mat.mul q0 (Mat.transpose q0) in
  let x_care = Riccati.care ~a ~g:(Mat.create 7 7) ~q () in
  let x_lyap = Lyap.solve (Mat.transpose a) q in
  check_small ~tol:1e-8 "g=0 care = lyapunov" (Mat.frobenius (Mat.sub x_care x_lyap))

(* ------------------------------------------------------------------ *)
(* Subspace angles                                                     *)
(* ------------------------------------------------------------------ *)

let test_angles_same_space () =
  let a = Mat.random ~seed:139 10 3 in
  (* different basis of the same space *)
  let mix = Mat.add (Mat.random ~seed:149 3 3) (Mat.scale 2.0 (Mat.identity 3)) in
  let b = Mat.mul a mix in
  check_small ~tol:1e-7 "same space angle" (Subspace.max_angle a b)

let test_angles_orthogonal () =
  let a = Mat.init 6 2 (fun i j -> if i = j then 1.0 else 0.0) in
  let b = Mat.init 6 2 (fun i j -> if i = j + 2 then 1.0 else 0.0) in
  approx ~tol:1e-9 "orthogonal" (Float.pi /. 2.0) (Subspace.max_angle a b)

let test_vector_angle () =
  let basis = Mat.init 5 2 (fun i j -> if i = j then 1.0 else 0.0) in
  let x = [| 1.0; 0.0; 1.0; 0.0; 0.0 |] in
  (* projection has norm 1/sqrt2 of x's norm: angle = 45 deg *)
  approx ~tol:1e-9 "45 deg" (Float.pi /. 4.0) (Subspace.vector_to_subspace_angle x basis)

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

let small_dim = QCheck2.Gen.int_range 1 10

let prop_lu_solves =
  QCheck2.Test.make ~name:"lu solves diagonally dominant systems" ~count:50
    QCheck2.Gen.(pair small_dim (int_range 0 10_000))
    (fun (n, seed) ->
      let a = Mat.add (Mat.random ~seed n n) (Mat.scale (float_of_int n) (Mat.identity n)) in
      let b = Array.init n (fun i -> float_of_int (i - 2)) in
      let x = Mat.solve_vec a b in
      Vec.max_abs_diff (Mat.mv a x) b < 1e-8)

let prop_qr_orthogonal =
  QCheck2.Test.make ~name:"thin QR produces orthonormal Q" ~count:50
    QCheck2.Gen.(pair small_dim (int_range 0 10_000))
    (fun (n, seed) ->
      let a = Mat.random ~seed (n + 5) n in
      let q, r = Qr.thin a in
      let qtq = Mat.mul (Mat.transpose q) q in
      Mat.frobenius (Mat.sub qtq (Mat.identity n)) < 1e-9
      && Mat.frobenius (Mat.sub (Mat.mul q r) a) < 1e-9)

let prop_svd_reconstructs =
  QCheck2.Test.make ~name:"svd reconstructs A" ~count:50
    QCheck2.Gen.(triple small_dim small_dim (int_range 0 10_000))
    (fun (m, n, seed) ->
      let a = Mat.random ~seed m n in
      let t = Svd.decompose a in
      Mat.frobenius (Mat.sub (svd_reconstruct t) a) < 1e-8)

let prop_svd_spectral_norm_bound =
  QCheck2.Test.make ~name:"sigma_max bounds ||Ax||/||x||" ~count:50
    QCheck2.Gen.(pair small_dim (int_range 0 10_000))
    (fun (n, seed) ->
      let a = Mat.random ~seed n n in
      let s = Svd.values a in
      let x = Array.init n (fun i -> sin (float_of_int (i + 1))) in
      Vec.norm2 (Mat.mv a x) <= (s.(0) +. 1e-9) *. Vec.norm2 x)

let prop_eig_sym_trace =
  QCheck2.Test.make ~name:"eigenvalues sum to trace" ~count:50
    QCheck2.Gen.(pair small_dim (int_range 0 10_000))
    (fun (n, seed) ->
      let a = Mat.symmetrize (Mat.random ~seed n n) in
      let values = Eig_sym.eigenvalues a in
      let trace = ref 0.0 in
      for i = 0 to n - 1 do
        trace := !trace +. Mat.get a i i
      done;
      Float.abs (Array.fold_left ( +. ) 0.0 values -. !trace) < 1e-8)

let prop_lyap_residual =
  QCheck2.Test.make ~name:"lyapunov residual small on stable A" ~count:25
    QCheck2.Gen.(pair (int_range 2 8) (int_range 0 10_000))
    (fun (n, seed) ->
      let a = random_stable_nonsym ~seed n in
      let b = Mat.random ~seed:(seed + 1) n 1 in
      let q = Mat.mul b (Mat.transpose b) in
      let x = Lyap.solve_with (Lyap.factor_general a) q in
      Lyap.lyapunov_residual a x q < 1e-6 *. Float.max 1.0 (Mat.frobenius q))

let prop_schur_eigs_match_trace =
  QCheck2.Test.make ~name:"schur eigenvalues sum to trace" ~count:25
    QCheck2.Gen.(pair (int_range 2 10) (int_range 0 10_000))
    (fun (n, seed) ->
      let a = Mat.random ~seed n n in
      let evs = Cschur.eigenvalues (Cschur.of_real a) in
      let sum = Array.fold_left Complex.add Complex.zero evs in
      let trace = ref 0.0 in
      for i = 0 to n - 1 do
        trace := !trace +. Mat.get a i i
      done;
      Complex.norm (Complex.sub sum { Complex.re = !trace; im = 0.0 }) < 1e-7 *. float_of_int n)

let props = List.map QCheck_alcotest.to_alcotest
  [ prop_lu_solves; prop_qr_orthogonal; prop_svd_reconstructs;
    prop_svd_spectral_norm_bound; prop_eig_sym_trace; prop_lyap_residual;
    prop_schur_eigs_match_trace ]

let () =
  Alcotest.run "pmtbr_la"
    [
      ( "mat",
        [
          Alcotest.test_case "mul 2x2" `Quick test_mat_mul;
          Alcotest.test_case "identity mul" `Quick test_mat_identity_mul;
          Alcotest.test_case "transpose involution" `Quick test_mat_transpose_involution;
          Alcotest.test_case "mv matches mul" `Quick test_mat_mv_matches_mul;
          Alcotest.test_case "gram" `Quick test_mat_gram;
          Alcotest.test_case "hcat/vcat" `Quick test_hcat_vcat;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve 2x2" `Quick test_lu_solve;
          Alcotest.test_case "random residual" `Quick test_lu_random_residual;
          Alcotest.test_case "singular raises" `Quick test_lu_singular_raises;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
          Alcotest.test_case "complex lu" `Quick test_complex_lu;
          Alcotest.test_case "det known" `Quick test_det_known;
          Alcotest.test_case "det singular" `Quick test_det_singular_zero;
          Alcotest.test_case "det permutation" `Quick test_det_identity_permuted;
          Alcotest.test_case "det multiplicative" `Quick test_det_multiplicative;
          Alcotest.test_case "trace" `Quick test_trace;
          Alcotest.test_case "norm_1" `Quick test_norm_1;
          Alcotest.test_case "cond_1" `Quick test_cond_1;
        ] );
      ( "qr",
        [
          Alcotest.test_case "thin" `Quick test_qr_thin;
          Alcotest.test_case "orth rank deficient" `Quick test_qr_orth_rank_deficient;
          Alcotest.test_case "pivoted rank" `Quick test_qr_pivoted_rank;
          Alcotest.test_case "orth of zero" `Quick test_orth_zero_matrix;
        ] );
      ( "svd",
        [
          Alcotest.test_case "known values" `Quick test_svd_known;
          Alcotest.test_case "reconstruction tall" `Quick test_svd_reconstruction_tall;
          Alcotest.test_case "reconstruction wide" `Quick test_svd_reconstruction_wide;
          Alcotest.test_case "descending" `Quick test_svd_descending;
          Alcotest.test_case "rank" `Quick test_svd_rank;
          Alcotest.test_case "small value accuracy" `Quick test_svd_small_values_accuracy;
          Alcotest.test_case "zero matrix" `Quick test_svd_zero_matrix;
          Alcotest.test_case "single column" `Quick test_svd_single_column;
        ] );
      ( "eig_sym",
        [
          Alcotest.test_case "known 2x2" `Quick test_eig_sym_known;
          Alcotest.test_case "reconstruction" `Quick test_eig_sym_reconstruction;
          Alcotest.test_case "psd factor" `Quick test_psd_factor;
        ] );
      ( "chol",
        [
          Alcotest.test_case "factor+solve" `Quick test_chol_factor;
          Alcotest.test_case "not pd raises" `Quick test_chol_not_pd;
          Alcotest.test_case "psd factor" `Quick test_chol_psd_factor;
        ] );
      ( "schur",
        [
          Alcotest.test_case "random" `Quick test_schur_random;
          Alcotest.test_case "symmetric" `Quick test_schur_symmetric;
          Alcotest.test_case "stable nonsym" `Quick test_schur_stable;
          Alcotest.test_case "eigenvalues 2x2" `Quick test_schur_eigenvalues_2x2;
          Alcotest.test_case "eigenvector" `Quick test_schur_eigenvector;
          Alcotest.test_case "nilpotent" `Quick test_schur_nilpotent;
          Alcotest.test_case "1x1 and diagonal" `Quick test_schur_1x1_and_diagonal;
        ] );
      ( "lyap",
        [
          Alcotest.test_case "symmetric" `Quick test_lyap_symmetric;
          Alcotest.test_case "general" `Quick test_lyap_general;
          Alcotest.test_case "1x1" `Quick test_lyap_1x1;
          Alcotest.test_case "0x0" `Quick test_lyap_0x0;
          Alcotest.test_case "descriptor residual" `Quick test_descriptor_residual;
          Alcotest.test_case "factor reuse" `Quick test_lyap_factor_reuse;
          Alcotest.test_case "sylvester cross" `Quick test_sylvester_cross;
          Alcotest.test_case "cross = lyap when symmetric" `Quick test_cross_gramian_symmetric_case;
        ] );
      ( "riccati",
        [
          Alcotest.test_case "scalar" `Quick test_care_scalar;
          Alcotest.test_case "zero q" `Quick test_care_zero_q;
          Alcotest.test_case "random residual" `Quick test_care_residual_random;
          Alcotest.test_case "reduces to lyapunov" `Quick test_care_reduces_to_lyapunov;
        ] );
      ( "subspace",
        [
          Alcotest.test_case "same space" `Quick test_angles_same_space;
          Alcotest.test_case "orthogonal" `Quick test_angles_orthogonal;
          Alcotest.test_case "vector angle" `Quick test_vector_angle;
        ] );
      ("properties", props);
    ]
