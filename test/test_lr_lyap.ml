(* Tests for the low-rank Lyapunov solvers (Lr_lyap) and the low-rank
   balanced-truncation backend (Tbr_lr): property-level agreement with the
   dense Lyap/Tbr baselines, the ADI residual contract, the shared
   multi-shift handle counters, worker invariance of the small-core SVD
   path, and the golden PMTBR-vs-exact-TBR sweep regression. *)

open Pmtbr_la
open Pmtbr_circuit
open Pmtbr_lti
open Pmtbr_core

let check_small ?(tol = 1e-9) msg value =
  if not (Float.abs value <= tol) then Alcotest.failf "%s: |%.3e| > %g" msg value tol

(* ------------------------------------------------------------------ *)
(* Random stable descriptor systems                                    *)
(* ------------------------------------------------------------------ *)

(* A = -(M M^T / n + alpha I) (+ optional skew part), E = I or SPD: every
   generated pencil is stable, so the Gramians exist. *)
let random_system ~seed ~n ~m ~spd_e ~sym_a =
  let mm = Mat.random ~seed n n in
  let sym =
    Mat.init n n (fun i j ->
        -.(Mat.get (Mat.mul mm (Mat.transpose mm)) i j /. float_of_int n)
        -. if i = j then 0.5 else 0.0)
  in
  let a =
    if sym_a then sym
    else begin
      let k = Mat.random ~seed:(seed + 1) n n in
      Mat.add sym (Mat.init n n (fun i j -> 0.5 *. (Mat.get k i j -. Mat.get k j i)))
    end
  in
  let e =
    if spd_e then begin
      let e0 = Mat.random ~seed:(seed + 2) n n in
      Mat.add
        (Mat.scale (1.0 /. float_of_int n) (Mat.mul e0 (Mat.transpose e0)))
        (Mat.identity n)
    end
    else Mat.identity n
  in
  let b = Mat.random ~seed:(seed + 3) n m in
  (e, a, b)

(* Dense reference Gramian through the transformed standard-form equation
   F X + X F^T + (E^{-1}B)(E^{-1}B)^T = 0, F = E^{-1}A. *)
let dense_gramian e a b =
  let lu = Mat.lu e in
  let f = Mat.lu_solve lu a and btil = Mat.lu_solve lu b in
  Lyap.solve_with (Lyap.factor_general f)
    (Mat.symmetrize (Mat.mul btil (Mat.transpose btil)))

let rel_gramian_error z x =
  Mat.frobenius (Mat.sub (Mat.mul z (Mat.transpose z)) x) /. Mat.frobenius x

let sys_gen =
  QCheck2.Gen.(
    tup5 (int_range 5 60) (int_range 1 3) (int_range 0 1000) bool bool)

(* The ISSUE acceptance bar: LR-ADI Z Z^T matches the dense solve to 1e-8
   relative on random stable SISO/MIMO descriptor systems up to n = 60. *)
let prop_adi_matches_dense =
  QCheck2.Test.make ~name:"lr_adi matches dense Lyap.solve (<= 1e-8)" ~count:12 sys_gen
    (fun (n, m, seed, spd_e, sym_a) ->
      let e, a, b = random_system ~seed ~n ~m ~spd_e ~sym_a in
      let x = dense_gramian e a b in
      let z, st = Lr_lyap.lr_adi ~tol:1e-12 (Lr_lyap.ops_of_dense ~e ~a) b in
      st.Lr_lyap.converged && rel_gramian_error z x <= 1e-8)

let prop_ek_matches_dense =
  QCheck2.Test.make ~name:"extended_krylov matches dense Lyap.solve" ~count:8 sys_gen
    (fun (n, m, seed, spd_e, sym_a) ->
      let e, a, b = random_system ~seed ~n ~m ~spd_e ~sym_a in
      let x = dense_gramian e a b in
      let z, _ = Lr_lyap.extended_krylov ~tol:1e-12 (Lr_lyap.ops_of_dense ~e ~a) b in
      (* the Krylov space can stagnate at the basis-roundoff floor, so the
         bar is looser than the ADI one *)
      rel_gramian_error z x <= 1e-6)

(* For symmetric negative-definite A with E = I every ADI step is a
   contraction of the residual factor: |lambda - p| / |lambda + p| < 1 for
   lambda, p < 0 — so the Frobenius residual history must be monotone
   non-increasing (up to round-off slack). *)
let prop_adi_residual_monotone =
  QCheck2.Test.make ~name:"lr_adi residual monotone (symmetric, E = I)" ~count:15
    QCheck2.Gen.(tup3 (int_range 5 50) (int_range 1 3) (int_range 0 1000))
    (fun (n, m, seed) ->
      let _, a, b = random_system ~seed ~n ~m ~spd_e:false ~sym_a:true in
      let e = Mat.identity n in
      let _, st = Lr_lyap.lr_adi ~tol:1e-13 (Lr_lyap.ops_of_dense ~e ~a) b in
      let r = st.Lr_lyap.residuals in
      let ok = ref true in
      for i = 1 to Array.length r - 1 do
        if r.(i) > (r.(i - 1) *. (1.0 +. 1e-9)) +. 1e-13 then ok := false
      done;
      !ok)

(* Hankel values out of the low-rank factors vs the dense Tbr pipeline on
   random dense descriptor systems with outputs. *)
let prop_tbr_lr_hsv_matches_dense =
  QCheck2.Test.make ~name:"Tbr_lr Hankel values match dense Tbr" ~count:8
    QCheck2.Gen.(tup4 (int_range 6 40) (int_range 1 3) (int_range 0 1000) bool)
    (fun (n, m, seed, spd_e) ->
      let e, a, b = random_system ~seed ~n ~m ~spd_e ~sym_a:false in
      let c = Mat.random ~seed:(seed + 4) m n in
      let sys = Dss.of_dense ~e ~a ~b ~c in
      let dense = Tbr.hsv_dss sys in
      let lr = Tbr_lr.hankel_singular_values ~adi_tol:1e-12 sys in
      let smax = if Array.length dense = 0 then 0.0 else dense.(0) in
      let ok = ref (Array.length lr >= 1) in
      Array.iteri
        (fun i s ->
          (* compare where the dense value is numerically meaningful *)
          if s > 1e-6 *. smax && i < Array.length lr then
            if Float.abs (s -. lr.(i)) /. smax > 1e-8 then ok := false)
        dense;
      !ok)

(* ------------------------------------------------------------------ *)
(* Worker invariance (PR-4 contract)                                   *)
(* ------------------------------------------------------------------ *)

let mesh_system ~rows ~cols ~ports =
  Dss.of_netlist (Rc_mesh.generate ~rows ~cols ~ports ())

let bitwise_equal (a : Mat.t) (b : Mat.t) =
  a.Mat.rows = b.Mat.rows && a.Mat.cols = b.Mat.cols && a.Mat.data = b.Mat.data

let test_worker_invariance () =
  let sys = mesh_system ~rows:7 ~cols:7 ~ports:2 in
  let h1 = Tbr_lr.hankel_singular_values ~workers:1 sys in
  let h4 = Tbr_lr.hankel_singular_values ~workers:4 sys in
  if h1 <> h4 then Alcotest.fail "hankel values differ with worker count";
  let r1 = Tbr_lr.reduce ~order:8 ~workers:1 sys in
  let r4 = Tbr_lr.reduce ~order:8 ~workers:4 sys in
  if r1.Tbr_lr.hsv <> r4.Tbr_lr.hsv then Alcotest.fail "hsv differ";
  match (r1.Tbr_lr.rom, r4.Tbr_lr.rom) with
  | ( Dss.Dense { e = e1; a = a1; b = b1; c = c1 },
      Dss.Dense { e = e4; a = a4; b = b4; c = c4 } ) ->
      if
        not
          (bitwise_equal a1 a4 && bitwise_equal e1 e4 && bitwise_equal b1 b4
         && bitwise_equal c1 c4)
      then Alcotest.fail "reduced model differs with worker count"
  | _ -> Alcotest.fail "expected dense reduced models"

(* ------------------------------------------------------------------ *)
(* Shared multi-shift handle: counters contract                        *)
(* ------------------------------------------------------------------ *)

(* With an explicit shift list short enough that every shift is used, the
   contract is exact: ONE symbolic analysis for the whole two-Gramian
   reduction, and one numeric refactorisation per distinct shift — the
   observability side rides on the controllability factors. *)
let test_handle_reuse_counters () =
  let sys = mesh_system ~rows:6 ~cols:6 ~ports:2 in
  (* take the first few auto-selected shifts as a realistic explicit list *)
  let _, st0 = Tbr_lr.reduce_stats ~order:6 sys in
  let shifts = Array.sub st0.Tbr_lr.shifts 0 (min 4 (Array.length st0.Tbr_lr.shifts)) in
  let distinct =
    Array.to_list shifts |> List.sort_uniq compare |> List.length
  in
  let _, st = Tbr_lr.reduce_stats ~order:6 ~shifts sys in
  Alcotest.(check int) "symbolic analyses" 1 st.Tbr_lr.symbolic;
  Alcotest.(check int) "one refactorization per distinct shift" distinct
    st.Tbr_lr.refactorizations;
  Alcotest.(check int) "solves add up"
    (st.Tbr_lr.ctrl.Lr_lyap.solves + st.Tbr_lr.obs.Lr_lyap.solves)
    st.Tbr_lr.solves

(* ------------------------------------------------------------------ *)
(* Band-limited stopping                                               *)
(* ------------------------------------------------------------------ *)

let test_band_limited_stop () =
  let sys = mesh_system ~rows:6 ~cols:6 ~ports:2 in
  let pts =
    Sampling.points (Sampling.Bands [ (1e8, 1e10) ]) ~count:6
    |> Array.map (fun p -> (p.Sampling.s, p.Sampling.weight))
  in
  let stop = Lr_lyap.Band_residual pts in
  let zc, st = Tbr_lr.controllability_factor ~stop sys in
  if not st.Lr_lyap.converged then Alcotest.fail "band-limited stop did not converge";
  if zc.Mat.cols = 0 then Alcotest.fail "empty factor";
  (* the band-converged factors still reproduce the dense Hankel values *)
  let dense = Tbr.hsv_dss sys in
  let lr = Tbr_lr.hankel_singular_values ~stop sys in
  let smax = dense.(0) in
  Array.iteri
    (fun i s ->
      if s > 1e-4 *. smax && i < Array.length lr then
        check_small ~tol:1e-6 "band hsv drift" (Float.abs (s -. lr.(i)) /. smax))
    dense;
  (* the extended-Krylov engine has no resolvent sweep to band-limit *)
  match Tbr_lr.controllability_factor ~stop ~meth:Tbr_lr.Extended_krylov sys with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Extended Krylov through the full reduction                          *)
(* ------------------------------------------------------------------ *)

let test_extended_krylov_hsv () =
  let sys = mesh_system ~rows:6 ~cols:6 ~ports:2 in
  let dense = Tbr.hsv_dss sys in
  let lr = Tbr_lr.hankel_singular_values ~meth:Tbr_lr.Extended_krylov sys in
  let smax = dense.(0) in
  Array.iteri
    (fun i s ->
      if s > 1e-4 *. smax && i < Array.length lr then
        check_small ~tol:1e-7 "ek hsv drift" (Float.abs (s -. lr.(i)) /. smax))
    dense

(* ------------------------------------------------------------------ *)
(* Failure modes                                                       *)
(* ------------------------------------------------------------------ *)

let test_invalid_arguments () =
  let e = Mat.identity 4 and a = Mat.scale (-1.0) (Mat.identity 4) in
  let ops = Lr_lyap.ops_of_dense ~e ~a in
  let b = Mat.random ~seed:3 4 1 in
  (match Lr_lyap.lr_adi ~shifts:[||] ops b with
  | _ -> Alcotest.fail "empty shifts accepted"
  | exception Invalid_argument _ -> ());
  (match Lr_lyap.lr_adi ~shifts:[| { Complex.re = 1.0; im = 0.0 } |] ops b with
  | _ -> Alcotest.fail "unstable shift accepted"
  | exception Invalid_argument _ -> ());
  (* singular E must surface as Invalid_argument, not an assert/Singular *)
  let ops_sing = Lr_lyap.ops_of_dense ~e:(Mat.create 4 4) ~a in
  (match Lr_lyap.lr_adi ops_sing b with
  | _ -> Alcotest.fail "singular E accepted"
  | exception Invalid_argument _ -> ())

let test_to_standard_singular_e () =
  let n = 4 in
  let sys =
    Dss.of_dense ~e:(Mat.create n n)
      ~a:(Mat.scale (-1.0) (Mat.identity n))
      ~b:(Mat.random ~seed:1 n 1)
      ~c:(Mat.random ~seed:2 1 n)
  in
  (match Dss.to_standard sys with
  | _ -> Alcotest.fail "singular E accepted"
  | exception Invalid_argument _ -> ());
  match Tbr.reduce_dss ~order:2 sys with
  | _ -> Alcotest.fail "singular E accepted by reduce_dss"
  | exception Invalid_argument _ -> ()

let test_empty_rhs () =
  let e = Mat.identity 5 and a = Mat.scale (-1.0) (Mat.identity 5) in
  let z, st = Lr_lyap.lr_adi (Lr_lyap.ops_of_dense ~e ~a) (Mat.create 5 0) in
  Alcotest.(check int) "no columns" 0 z.Mat.cols;
  Alcotest.(check bool) "trivially converged" true st.Lr_lyap.converged

(* ------------------------------------------------------------------ *)
(* Golden end-to-end regression: PMTBR vs exact TBR through the sweep  *)
(* engine (the paper's head-to-head, pinned as a test)                 *)
(* ------------------------------------------------------------------ *)

let sweep_errors sys ~w_hi ~order =
  let omegas = Vec.linspace (w_hi /. 100.0) w_hi 30 in
  let href = Freq.sweep sys omegas in
  let pts = Sampling.points (Sampling.Uniform { w_max = w_hi }) ~count:25 in
  let pmtbr = (Pmtbr.reduce ~order sys pts).Pmtbr.rom in
  let tbr_lr = (Tbr_lr.reduce ~order sys).Tbr_lr.rom in
  let err rom = Freq.stream_max_rel_error (Freq.compare_sweep rom omegas ~ref_:href) in
  (err pmtbr, err tbr_lr)

let test_golden_rc_mesh () =
  (* 12x12 mesh, 144 states, order 12.  Calibrated values: PMTBR 3.2e-12
     (sampling concentrates accuracy in band), exact TBR 3.6e-5 (the
     Glover-level balanced error at that order); both pinned with margin.
     The low-rank backend must also track the DENSE Tbr on the same
     system — that is the actual regression invariant. *)
  let sys = mesh_system ~rows:12 ~cols:12 ~ports:2 in
  let ep, et = sweep_errors sys ~w_hi:1e10 ~order:12 in
  if ep > 1e-9 then Alcotest.failf "pmtbr in-band error regressed: %.3e" ep;
  if et > 5e-4 then Alcotest.failf "tbr-lr in-band error regressed: %.3e" et;
  let omegas = Vec.linspace 1e8 1e10 30 in
  let href = Freq.sweep sys omegas in
  let dense = (Tbr.reduce_dss ~order:12 sys).Tbr.rom in
  let e_dense =
    Freq.stream_max_rel_error (Freq.compare_sweep dense omegas ~ref_:href)
  in
  let e_lr =
    Freq.stream_max_rel_error
      (Freq.compare_sweep (Tbr_lr.reduce ~order:12 sys).Tbr_lr.rom omegas ~ref_:href)
  in
  if Float.abs (e_lr -. e_dense) > 0.1 *. e_dense then
    Alcotest.failf "low-rank TBR drifted from dense TBR: %.3e vs %.3e" e_lr e_dense

let test_golden_substrate () =
  (* mid-size substrate, 80 states, 30 ports: many-input stress case for
     the factor compression.  Calibrated: PMTBR 7.6e-2, TBR-LR 9.4e-2
     (ratio 1.23) at order 16. *)
  let sys = Dss.of_netlist (Substrate.generate ~ports:30 ~internal:50 ~seed:3 ()) in
  let ep, et = sweep_errors sys ~w_hi:(Substrate.corner_frequency ()) ~order:16 in
  if ep > 0.15 then Alcotest.failf "pmtbr substrate error regressed: %.3e" ep;
  if et > 0.2 then Alcotest.failf "tbr-lr substrate error regressed: %.3e" et;
  if et > 2.5 *. ep then
    Alcotest.failf "tbr-lr/pmtbr error ratio regressed: %.3e / %.3e" et ep

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_adi_matches_dense;
      prop_ek_matches_dense;
      prop_adi_residual_monotone;
      prop_tbr_lr_hsv_matches_dense;
    ]

let () =
  Alcotest.run "pmtbr_lr_lyap"
    [
      ("properties", props);
      ( "contracts",
        [
          Alcotest.test_case "worker invariance (bitwise)" `Quick test_worker_invariance;
          Alcotest.test_case "handle reuse counters" `Quick test_handle_reuse_counters;
          Alcotest.test_case "band-limited stop" `Quick test_band_limited_stop;
          Alcotest.test_case "extended krylov hsv" `Quick test_extended_krylov_hsv;
        ] );
      ( "failures",
        [
          Alcotest.test_case "invalid arguments" `Quick test_invalid_arguments;
          Alcotest.test_case "to_standard singular E" `Quick test_to_standard_singular_e;
          Alcotest.test_case "empty rhs" `Quick test_empty_rhs;
        ] );
      ( "golden",
        [
          Alcotest.test_case "rc mesh 12x12" `Quick test_golden_rc_mesh;
          Alcotest.test_case "substrate" `Quick test_golden_substrate;
        ] );
    ]
