(* Tests for the dense kernel layer (Par_kernel / Svd / Qr): bitwise
   worker-invariance of the panelled GEMM/gram/mv and the blocked
   Householder QR (including bitwise equality with the naive [Mat]
   kernels and the unblocked serial sweep), agreement of the round-robin
   Jacobi schedule with the serial cyclic reference to 1e-12 relative
   accuracy, and end-to-end worker-invariance of the adaptive reduction
   drivers now that [?workers] also sizes the reduction-stage pool. *)

open Pmtbr_la
open Pmtbr_circuit
open Pmtbr_lti
open Pmtbr_core

let bitwise_equal (a : Mat.t) (b : Mat.t) =
  a.Mat.rows = b.Mat.rows && a.Mat.cols = b.Mat.cols && a.Mat.data = b.Mat.data

(* ------------------------------------------------------------------ *)
(* Level-1/2/3 kernels: bitwise equal to the naive Mat loops           *)
(* ------------------------------------------------------------------ *)

(* Shapes up to 48^3 scalar ops cross the spawn cutover, so both the
   inline and the spawning paths are exercised for workers > 1. *)
let prop_mul_bitwise =
  QCheck2.Test.make ~name:"Par_kernel.mul == Mat.mul (bitwise, any workers)" ~count:20
    QCheck2.Gen.(
      tup5 (int_range 1 48) (int_range 1 48) (int_range 1 48) (int_range 1 4) (int_range 0 999))
    (fun (m, k, n, workers, seed) ->
      let a = Mat.random ~seed m k and b = Mat.random ~seed:(seed + 1) k n in
      bitwise_equal (Par_kernel.mul ~workers a b) (Mat.mul a b))

let prop_gram_bitwise =
  QCheck2.Test.make ~name:"Par_kernel.gram == Mat.gram (bitwise, any workers)" ~count:20
    QCheck2.Gen.(tup4 (int_range 1 96) (int_range 1 32) (int_range 1 4) (int_range 0 999))
    (fun (rows, cols, workers, seed) ->
      let a = Mat.random ~seed rows cols in
      bitwise_equal (Par_kernel.gram ~workers a) (Mat.gram a))

let prop_mv_bitwise =
  QCheck2.Test.make ~name:"Par_kernel.mv == Mat.mv (bitwise, any workers)" ~count:15
    QCheck2.Gen.(tup4 (int_range 1 256) (int_range 1 160) (int_range 1 4) (int_range 0 999))
    (fun (rows, cols, workers, seed) ->
      let a = Mat.random ~seed rows cols in
      let x = Array.init cols (fun i -> sin (float_of_int (i + seed))) in
      Par_kernel.mv ~workers a x = Mat.mv a x)

(* Vectors within one cache block reduce to the plain sequential dot,
   bit for bit (every state dimension in the suite is far below the
   4096-element block). *)
let prop_dot_bitwise_small =
  QCheck2.Test.make ~name:"Par_kernel.dot == Vec.dot below one block (bitwise)" ~count:30
    QCheck2.Gen.(tup2 (int_range 1 4096) (int_range 0 999))
    (fun (n, seed) ->
      let x = Array.init n (fun i -> cos (float_of_int (i + seed))) in
      let y = Array.init n (fun i -> sin (float_of_int (2 * (i + seed)))) in
      Par_kernel.dot x y = Vec.dot x y)

let test_dot_blocked_accuracy () =
  let n = 3 * 4096 in
  let x = Array.init n (fun i -> cos (float_of_int i)) in
  let y = Array.init n (fun i -> sin (float_of_int (3 * i))) in
  let d = Par_kernel.dot x y and d_ref = Vec.dot x y in
  let scale = Float.max (Float.abs d_ref) 1.0 in
  if Float.abs (d -. d_ref) > 1e-12 *. scale then
    Alcotest.failf "blocked dot %.17g vs sequential %.17g" d d_ref

(* ------------------------------------------------------------------ *)
(* Blocked Householder QR                                              *)
(* ------------------------------------------------------------------ *)

(* Column counts above the 32-column panel width force multiple panels,
   covering the deferred (parallel) trailing update. *)
let prop_qr_blocked_equals_reference =
  QCheck2.Test.make ~name:"blocked QR == unblocked serial sweep (bitwise)" ~count:15
    QCheck2.Gen.(tup3 (int_range 1 48) (int_range 1 4) (int_range 0 999))
    (fun (n, workers, seed) ->
      let m = n + (seed mod 17) in
      let a = Mat.random ~seed m n in
      let q, r = Qr.thin ~workers a in
      let q_ref, r_ref = Qr.thin_reference a in
      bitwise_equal q q_ref && bitwise_equal r r_ref)

let prop_qr_factor_worker_invariant =
  QCheck2.Test.make ~name:"packed QR factor is worker-invariant (bitwise)" ~count:15
    QCheck2.Gen.(tup4 (int_range 1 60) (int_range 1 60) (int_range 2 4) (int_range 0 999))
    (fun (m, n, workers, seed) ->
      let a = Mat.random ~seed m n in
      let f1 = Qr.factorize ~workers:1 a in
      let fw = Qr.factorize ~workers a in
      bitwise_equal f1.Par_kernel.wf fw.Par_kernel.wf
      && f1.Par_kernel.betas = fw.Par_kernel.betas)

let test_qr_apply_q_matches_thin_q () =
  let a = Mat.random ~seed:7 50 40 in
  let f = Qr.factorize ~workers:3 a in
  (* applying the packed reflectors to identity columns IS the thin Q *)
  Alcotest.(check bool)
    "apply_q on identity == thin_q (bitwise)" true
    (bitwise_equal (Qr.thin_q ~workers:3 f) (Qr.apply_q ~workers:3 f (Mat.identity 40)))

let test_qr_apply_qt_adjoint () =
  let a = Mat.random ~seed:11 45 20 in
  let f = Qr.factorize a in
  let x = Mat.random ~seed:12 20 6 in
  (* Q^T (Q x) recovers x in the thin rows, zeros elsewhere *)
  let y = Qr.apply_qt f (Qr.apply_q f x) in
  let top = Mat.sub_matrix y ~row:0 ~col:0 ~rows:20 ~cols:6 in
  let drift = Mat.max_abs (Mat.sub top x) in
  if drift > 1e-13 then Alcotest.failf "adjoint round trip drift %g" drift;
  let bottom = Mat.sub_matrix y ~row:20 ~col:0 ~rows:25 ~cols:6 in
  if Mat.max_abs bottom > 1e-13 then
    Alcotest.failf "below-rank residual %g" (Mat.max_abs bottom)

let test_qr_apply_qt_vec_matches_matrix () =
  let a = Mat.random ~seed:13 30 14 in
  let f = Qr.factorize a in
  let x = Array.init 30 (fun i -> cos (float_of_int (5 * i))) in
  let y_vec = Qr.apply_qt_vec f x in
  let y_mat = Qr.apply_qt f (Mat.init 30 1 (fun i _ -> x.(i))) in
  Alcotest.(check bool)
    "vector path == single-column path (bitwise)" true
    (y_vec = Array.init 30 (fun i -> Mat.get y_mat i 0))

let test_qr_reconstruction () =
  let a = Mat.random ~seed:17 64 40 in
  let q, r = Qr.thin ~workers:4 a in
  let residual = Mat.max_abs (Mat.sub (Mat.mul q r) a) /. Mat.max_abs a in
  if residual > 1e-13 then Alcotest.failf "QR reconstruction residual %g" residual;
  let ortho = Mat.max_abs (Mat.sub (Mat.gram q) (Mat.identity 40)) in
  if ortho > 1e-13 then Alcotest.failf "Q orthonormality drift %g" ortho

(* ------------------------------------------------------------------ *)
(* Round-robin Jacobi SVD vs the serial cyclic reference               *)
(* ------------------------------------------------------------------ *)

(* Tall shapes (m > 2n) also cover the QR-preconditioned path. *)
let sigma_drift m n seed workers =
  let a = Mat.random ~seed m n in
  let s_par = Svd.values ~workers a in
  let s_cyc = Svd.values_cyclic a in
  if Array.length s_par <> Array.length s_cyc then infinity
  else begin
    let smax = Float.max s_cyc.(0) 1e-300 in
    let worst = ref 0.0 in
    Array.iteri
      (fun i s -> worst := Float.max !worst (Float.abs (s -. s_cyc.(i)) /. smax))
      s_par;
    !worst
  end

let prop_jacobi_sigma_matches_cyclic =
  QCheck2.Test.make ~name:"round-robin sigma within 1e-12 of serial cyclic" ~count:20
    QCheck2.Gen.(tup4 (int_range 1 80) (int_range 1 24) (int_range 1 4) (int_range 0 999))
    (fun (m, n, workers, seed) -> sigma_drift m n seed workers <= 1e-12)

let prop_svd_worker_invariant =
  QCheck2.Test.make ~name:"Svd.decompose is worker-invariant (bitwise)" ~count:10
    QCheck2.Gen.(tup4 (int_range 2 60) (int_range 2 20) (int_range 2 4) (int_range 0 999))
    (fun (m, n, workers, seed) ->
      let a = Mat.random ~seed m n in
      let d1 = Svd.decompose ~workers:1 a in
      let dw = Svd.decompose ~workers a in
      bitwise_equal d1.Svd.u dw.Svd.u
      && d1.Svd.sigma = dw.Svd.sigma
      && bitwise_equal d1.Svd.v dw.Svd.v
      && Svd.values ~workers:1 a = Svd.values ~workers a)

let test_svd_preconditioned_reconstruction () =
  (* clearly tall: runs QR preconditioning + round-robin on the small R *)
  let a = Mat.random ~seed:23 90 18 in
  let { Svd.u; sigma; v } = Svd.decompose ~workers:3 a in
  let usv = Mat.mul u (Mat.mul (Mat.diag sigma) (Mat.transpose v)) in
  let residual = Mat.max_abs (Mat.sub usv a) /. Mat.max_abs a in
  if residual > 1e-13 then Alcotest.failf "SVD reconstruction residual %g" residual;
  let ortho = Mat.max_abs (Mat.sub (Mat.gram u) (Mat.identity 18)) in
  if ortho > 1e-13 then Alcotest.failf "U orthonormality drift %g" ortho

(* ------------------------------------------------------------------ *)
(* End-to-end worker invariance of the reduction drivers               *)
(* ------------------------------------------------------------------ *)

let mesh_system ~rows ~cols ~ports = Dss.of_netlist (Rc_mesh.generate ~rows ~cols ~ports ())

let test_reduce_adaptive_worker_invariant () =
  let sys = mesh_system ~rows:5 ~cols:5 ~ports:2 in
  let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:16 in
  let r1 = Pmtbr.reduce_adaptive ~tol:1e-9 ~workers:1 sys pts in
  let r4 = Pmtbr.reduce_adaptive ~tol:1e-9 ~workers:4 sys pts in
  Alcotest.(check int) "samples" r1.Pmtbr.samples r4.Pmtbr.samples;
  Alcotest.(check bool)
    "singular values bitwise" true
    (r1.Pmtbr.singular_values = r4.Pmtbr.singular_values);
  Alcotest.(check bool) "basis bitwise" true (bitwise_equal r1.Pmtbr.basis r4.Pmtbr.basis)

let test_cross_gramian_worker_invariant () =
  let sys = mesh_system ~rows:5 ~cols:5 ~ports:2 in
  let pts = Sampling.points (Sampling.Log { w_min = 1e6; w_max = 1e10 }) ~count:10 in
  let r1 = Cross_gramian.reduce_cached ~workers:1 sys pts in
  let r4 = Cross_gramian.reduce_cached ~workers:4 sys pts in
  Alcotest.(check bool)
    "eigenvalues bitwise" true
    (r1.Cross_gramian.eigenvalues = r4.Cross_gramian.eigenvalues);
  Alcotest.(check bool)
    "basis bitwise" true
    (bitwise_equal r1.Cross_gramian.basis r4.Cross_gramian.basis)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_mul_bitwise;
      prop_gram_bitwise;
      prop_mv_bitwise;
      prop_dot_bitwise_small;
      prop_qr_blocked_equals_reference;
      prop_qr_factor_worker_invariant;
      prop_jacobi_sigma_matches_cyclic;
      prop_svd_worker_invariant;
    ]

let () =
  Alcotest.run "pmtbr_par_kernel"
    [
      ("properties", props);
      ( "kernels",
        [ Alcotest.test_case "blocked dot accuracy" `Quick test_dot_blocked_accuracy ] );
      ( "qr",
        [
          Alcotest.test_case "apply_q == thin_q" `Quick test_qr_apply_q_matches_thin_q;
          Alcotest.test_case "apply_qt adjoint" `Quick test_qr_apply_qt_adjoint;
          Alcotest.test_case "apply_qt_vec" `Quick test_qr_apply_qt_vec_matches_matrix;
          Alcotest.test_case "reconstruction" `Quick test_qr_reconstruction;
        ] );
      ( "svd",
        [
          Alcotest.test_case "preconditioned reconstruction" `Quick
            test_svd_preconditioned_reconstruction;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "adaptive worker invariant" `Quick
            test_reduce_adaptive_worker_invariant;
          Alcotest.test_case "cross-gramian worker invariant" `Quick
            test_cross_gramian_worker_invariant;
        ] );
    ]
