(* Tests for incremental adaptive sampling: the Sample_cache contract
   (assemble == Zmat.build bitwise, one solve per shift, batch-boundary
   and worker-count invariance), the incremental == from-scratch
   equivalence of both adaptive loops, and regressions for the
   order-control bugfixes that rode along. *)

open Pmtbr_la
open Pmtbr_circuit
open Pmtbr_lti
open Pmtbr_core

let mesh_system ~rows ~cols ~ports = Dss.of_netlist (Rc_mesh.generate ~rows ~cols ~ports ())
let rc_line_sys () = Dss.of_netlist (Rc_line.generate ~sections:30 ())
let rc_line_band = 3e9

let bitwise_equal (a : Mat.t) (b : Mat.t) =
  a.Mat.rows = b.Mat.rows && a.Mat.cols = b.Mat.cols && a.Mat.data = b.Mat.data

(* ------------------------------------------------------------------ *)
(* Sample_cache                                                        *)
(* ------------------------------------------------------------------ *)

(* The cache's weight-at-assembly design: assembling cached raw columns
   with a scale is bitwise-identical to building the weighted matrix from
   scratch over the scale-multiplied points. *)
let prop_assemble_matches_zmat =
  QCheck2.Test.make ~name:"cache assemble == Zmat.build (bitwise)" ~count:10
    QCheck2.Gen.(tup4 (int_range 3 6) (int_range 3 6) (int_range 3 10) (float_range 0.5 4.0))
    (fun (rows, cols, npts, scale) ->
      let sys = mesh_system ~rows ~cols ~ports:2 in
      let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:npts in
      let cache = Sample_cache.create ~workers:1 sys in
      Sample_cache.extend cache pts;
      let direct =
        Zmat.build ~workers:1 sys
          (Array.map (fun p -> { p with Sampling.weight = p.Sampling.weight *. scale }) pts)
      in
      bitwise_equal (Sample_cache.assemble cache ~scale) direct)

(* Batch boundaries leave no trace: extending in many small batches holds
   exactly the same state as one big extend. *)
let prop_extend_batch_invariant =
  QCheck2.Test.make ~name:"cache extension is batch-invariant (bitwise)" ~count:10
    QCheck2.Gen.(tup3 (int_range 3 6) (int_range 4 12) (int_range 1 5))
    (fun (dim, npts, batch) ->
      let sys = mesh_system ~rows:dim ~cols:dim ~ports:2 in
      let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:npts in
      let whole = Sample_cache.create ~workers:1 sys in
      Sample_cache.extend whole pts;
      let stepped = Sample_cache.create ~workers:1 sys in
      let consumed = ref 0 in
      while !consumed < npts do
        let k = min batch (npts - !consumed) in
        Sample_cache.extend stepped (Array.sub pts !consumed k);
        consumed := !consumed + k
      done;
      bitwise_equal (Sample_cache.assemble whole ~scale:1.0)
        (Sample_cache.assemble stepped ~scale:1.0)
      && bitwise_equal
           (Sample_cache.small_factor whole ~scale:1.0)
           (Sample_cache.small_factor stepped ~scale:1.0))

(* Worker count never changes the cached state (the engine's determinism
   contract carried through the cache). *)
let prop_cache_worker_invariant =
  QCheck2.Test.make ~name:"cache is worker-invariant (bitwise)" ~count:8
    QCheck2.Gen.(tup3 (int_range 3 5) (int_range 4 10) (int_range 2 4))
    (fun (dim, npts, workers) ->
      let sys = mesh_system ~rows:dim ~cols:dim ~ports:2 in
      let pts = Sampling.points (Sampling.Log { w_min = 1e6; w_max = 1e10 }) ~count:npts in
      let serial = Sample_cache.create ~workers:1 sys in
      let parallel = Sample_cache.create ~workers ~oversubscribe:true sys in
      Sample_cache.extend serial pts;
      Sample_cache.extend parallel pts;
      bitwise_equal (Sample_cache.assemble serial ~scale:1.0)
        (Sample_cache.assemble parallel ~scale:1.0))

let test_cache_counters () =
  let sys = mesh_system ~rows:4 ~cols:4 ~ports:2 in
  let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:10 in
  let cache = Sample_cache.create ~workers:1 sys in
  Sample_cache.extend cache (Array.sub pts 0 6);
  Sample_cache.extend cache (Array.sub pts 6 4);
  Sample_cache.extend cache [||];
  let st = Sample_cache.stats cache in
  Alcotest.(check int) "each shift solved once" 10 st.Sample_cache.solves;
  Alcotest.(check int) "points" 10 st.Sample_cache.points;
  (* complex points: two realified columns per input *)
  Alcotest.(check int) "columns" (2 * 2 * 10) st.Sample_cache.columns;
  Alcotest.(check int) "empty extend is not a batch" 2 st.Sample_cache.batches;
  Alcotest.(check int) "one wall sample per batch" 2 (Array.length st.Sample_cache.batch_wall_s)

(* sigma(R D) from the small factor == sigma(ZW) of the assembly. *)
let test_small_factor_singular_values () =
  let sys = mesh_system ~rows:5 ~cols:5 ~ports:2 in
  let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:8 in
  let cache = Sample_cache.create ~workers:1 sys in
  Sample_cache.extend cache pts;
  let s_small = Svd.values (Sample_cache.small_factor cache ~scale:2.0) in
  let s_full = Svd.values (Sample_cache.assemble cache ~scale:2.0) in
  let smax = Float.max s_full.(0) 1e-300 in
  Array.iteri
    (fun i s ->
      if i < Array.length s_full && Float.abs (s -. s_full.(i)) > 1e-10 *. smax then
        Alcotest.failf "sigma %d: small factor %g vs assembly %g" i s s_full.(i))
    s_small

(* ------------------------------------------------------------------ *)
(* Incremental adaptive == from-scratch adaptive                       *)
(* ------------------------------------------------------------------ *)

let same_result (a : Pmtbr.result) (b : Pmtbr.result) =
  a.Pmtbr.samples = b.Pmtbr.samples
  && a.Pmtbr.singular_values = b.Pmtbr.singular_values
  && bitwise_equal a.Pmtbr.basis b.Pmtbr.basis

let prop_incremental_equals_rebuild =
  QCheck2.Test.make ~name:"incremental adaptive == from-scratch (bitwise)" ~count:8
    QCheck2.Gen.(tup4 (int_range 3 5) (int_range 12 24) (int_range 2 6) (int_range 1 4))
    (fun (dim, npts, batch, workers) ->
      let sys = mesh_system ~rows:dim ~cols:dim ~ports:2 in
      let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:npts in
      let inc, st_inc = Pmtbr.reduce_adaptive_stats ~tol:1e-9 ~batch ~workers sys pts in
      let reb, st_reb =
        Pmtbr.reduce_adaptive_stats ~rebuild:true ~tol:1e-9 ~batch ~workers:1 sys pts
      in
      same_result inc reb
      (* the counter invariant: incremental solves each consumed shift
         once; the from-scratch baseline re-solves across batches *)
      && st_inc.Sample_cache.solves = st_inc.Sample_cache.points
      && st_reb.Sample_cache.solves >= st_inc.Sample_cache.solves)

let prop_incremental_equals_rebuild_rrqr =
  QCheck2.Test.make ~name:"incremental rrqr == from-scratch (bitwise)" ~count:6
    QCheck2.Gen.(tup3 (int_range 3 5) (int_range 12 24) (int_range 2 6))
    (fun (dim, npts, batch) ->
      let sys = mesh_system ~rows:dim ~cols:dim ~ports:2 in
      let pts = Sampling.points (Sampling.Log { w_min = 1e6; w_max = 1e10 }) ~count:npts in
      let inc, st_inc = Pmtbr.reduce_adaptive_rrqr_stats ~tol:1e-9 ~batch sys pts in
      let reb, _ = Pmtbr.reduce_adaptive_rrqr_stats ~rebuild:true ~tol:1e-9 ~batch sys pts in
      same_result inc reb && st_inc.Sample_cache.solves = st_inc.Sample_cache.points)

let test_adaptive_worker_invariant () =
  let sys = mesh_system ~rows:5 ~cols:5 ~ports:2 in
  let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:16 in
  let r1, _ = Pmtbr.reduce_adaptive_stats ~tol:1e-9 ~workers:1 sys pts in
  let r3, _ = Pmtbr.reduce_adaptive_stats ~tol:1e-9 ~workers:3 sys pts in
  Alcotest.(check bool) "same result at any worker count" true (same_result r1 r3)

let test_adaptive_solves_once_on_early_stop () =
  (* an easy system stops well before the point budget; every consumed
     shift must still have been solved exactly once *)
  let sys = rc_line_sys () in
  let pts = Sampling.points (Sampling.Uniform { w_max = rc_line_band }) ~count:64 in
  let r, st = Pmtbr.reduce_adaptive_stats ~tol:1e-8 ~batch:8 sys pts in
  Alcotest.(check bool) "stops early" true (r.Pmtbr.samples < 64);
  Alcotest.(check int) "solves == points consumed" r.Pmtbr.samples st.Sample_cache.solves;
  Alcotest.(check int) "points counter" r.Pmtbr.samples st.Sample_cache.points

(* ------------------------------------------------------------------ *)
(* Order-control bugfix regressions                                    *)
(* ------------------------------------------------------------------ *)

let test_explicit_order_wins () =
  (* a tail that the default tol = 1e-10 criterion would chop at 1 *)
  let sigma = [| 1.0; 1e-12; 1e-13; 1e-14; 1e-15 |] in
  Alcotest.(check int) "explicit order uncapped" 3 (Pmtbr.choose_order ~sigma ~order:3 ());
  Alcotest.(check int) "explicit tol still caps" 1
    (Pmtbr.choose_order ~sigma ~order:3 ~tol:1e-10 ());
  Alcotest.(check int) "order clamped to value count" 5
    (Pmtbr.choose_order ~sigma ~order:9 ());
  Alcotest.(check int) "tol alone unchanged" 1 (Pmtbr.choose_order ~sigma ())

let test_reduce_explicit_order_wins () =
  (* end-to-end: reduce ~order must not be silently shrunk by the default
     tail criterion (it may still drop directions below numerical noise) *)
  let sys = rc_line_sys () in
  let pts = Sampling.points (Sampling.Uniform { w_max = rc_line_band }) ~count:24 in
  let r = Pmtbr.reduce ~order:8 sys pts in
  let sigma = r.Pmtbr.singular_values in
  let noise_rank =
    let smax = Float.max sigma.(0) 1e-300 in
    Array.fold_left (fun acc s -> if s > 1e-14 *. smax then acc + 1 else acc) 0 sigma
  in
  Alcotest.(check int) "basis columns" (min 8 noise_rank) r.Pmtbr.basis.Mat.cols

let test_adaptive_column_guard () =
  (* the Section V-B guard: at the stopping point the sample matrix must
     hold at least twice the model order in realified columns *)
  let sys = rc_line_sys () in
  let pts = Sampling.points (Sampling.Uniform { w_max = rc_line_band }) ~count:64 in
  let r, st = Pmtbr.reduce_adaptive_stats ~tol:1e-8 ~batch:4 sys pts in
  let q = r.Pmtbr.basis.Mat.cols in
  Alcotest.(check bool)
    (Printf.sprintf "columns %d >= 2q = %d" st.Sample_cache.columns (2 * q))
    true
    (st.Sample_cache.columns >= 2 * q)

let test_rrqr_tail_check () =
  (* an order-2 truncation of the rc line leaves a tail far above 1e-12 in
     the normalised R-diagonal profile.  With an always-satisfied
     convergence tolerance the old leading-convergence-only rrqr loop
     stopped at the second batch regardless; the tail check must now push
     it through the full point set *)
  let sys = rc_line_sys () in
  let pts = Sampling.points (Sampling.Uniform { w_max = rc_line_band }) ~count:32 in
  let r = Pmtbr.reduce_adaptive_rrqr ~order:2 ~tol:1e-12 ~batch:8 ~converge_tol:1e9 sys pts in
  Alcotest.(check int) "tail never small: consumes all points" 32 r.Pmtbr.samples;
  (* same setup with a reachable tail: stops as soon as convergence allows *)
  let r = Pmtbr.reduce_adaptive_rrqr ~tol:1e-6 ~batch:8 ~converge_tol:1e9 sys pts in
  Alcotest.(check bool) "reachable tail still stops early" true (r.Pmtbr.samples < 32)

(* ------------------------------------------------------------------ *)
(* Sampling input-validation and band-count regressions                *)
(* ------------------------------------------------------------------ *)

let test_bands_exact_count () =
  (* remainders used to be dropped: 10 points over 3 bands yielded 9 *)
  let bands = Sampling.Bands [ (0.0, 1.0); (2.0, 3.0); (4.0, 5.0) ] in
  Alcotest.(check int) "10 over 3 bands" 10 (Array.length (Sampling.points bands ~count:10));
  Alcotest.(check int) "11 over 3 bands" 11 (Array.length (Sampling.points bands ~count:11));
  Alcotest.(check int) "divisible unchanged" 9 (Array.length (Sampling.points bands ~count:9));
  (* fewer points than bands: every band keeps one point *)
  Alcotest.(check int) "2 over 3 bands" 3 (Array.length (Sampling.points bands ~count:2));
  (* every band's interval is populated *)
  let pts = Sampling.points bands ~count:10 in
  List.iter
    (fun (lo, hi) ->
      let inside =
        Array.exists (fun p -> p.Sampling.s.Complex.im >= lo && p.Sampling.s.Complex.im <= hi) pts
      in
      if not inside then Alcotest.failf "band [%g, %g] got no points" lo hi)
    [ (0.0, 1.0); (2.0, 3.0); (4.0, 5.0) ]

let expect_invalid_arg name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_sampling_validation () =
  expect_invalid_arg "count 0" (fun () ->
      Sampling.points (Sampling.Uniform { w_max = 1.0 }) ~count:0);
  expect_invalid_arg "empty bands" (fun () -> Sampling.points (Sampling.Bands []) ~count:4);
  expect_invalid_arg "inverted band" (fun () ->
      Sampling.points (Sampling.Bands [ (2.0, 1.0) ]) ~count:4);
  expect_invalid_arg "negative weighting" (fun () ->
      Sampling.reweight
        (fun _ -> -1.0)
        (Sampling.points (Sampling.Uniform { w_max = 1.0 }) ~count:3))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_assemble_matches_zmat;
      prop_extend_batch_invariant;
      prop_cache_worker_invariant;
      prop_incremental_equals_rebuild;
      prop_incremental_equals_rebuild_rrqr;
    ]

let () =
  Alcotest.run "pmtbr_adaptive"
    [
      ("properties", props);
      ( "cache",
        [
          Alcotest.test_case "counters" `Quick test_cache_counters;
          Alcotest.test_case "small factor sigma" `Quick test_small_factor_singular_values;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "worker invariant" `Quick test_adaptive_worker_invariant;
          Alcotest.test_case "solves once on early stop" `Quick
            test_adaptive_solves_once_on_early_stop;
          Alcotest.test_case "column guard" `Quick test_adaptive_column_guard;
          Alcotest.test_case "rrqr tail check" `Quick test_rrqr_tail_check;
        ] );
      ( "order-control",
        [
          Alcotest.test_case "explicit order wins" `Quick test_explicit_order_wins;
          Alcotest.test_case "reduce explicit order" `Quick test_reduce_explicit_order_wins;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "bands exact count" `Quick test_bands_exact_count;
          Alcotest.test_case "input validation" `Quick test_sampling_validation;
        ] );
    ]
