(* Tests for the PMTBR core: sampling, sample matrices, Algorithm 1-3, the
   cross-Gramian scheme, and the baselines (multipoint projection, PRIMA). *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_circuit
open Pmtbr_core

let check_small ?(tol = 1e-9) msg value =
  if Float.abs value > tol then Alcotest.failf "%s: |%.3e| > %g" msg value tol

let rc_line_sys () = Dss.of_netlist (Rc_line.generate ~sections:30 ())
let rc_line_band = 3e9 (* rad/s: dominant dynamics of the default line *)

(* ------------------------------------------------------------------ *)
(* Sampling                                                            *)
(* ------------------------------------------------------------------ *)

let test_sampling_counts () =
  let check scheme n expect =
    Alcotest.(check int) "count" expect (Array.length (Sampling.points scheme ~count:n))
  in
  check (Sampling.Uniform { w_max = 1.0 }) 10 10;
  check (Sampling.Gauss { w_max = 1.0 }) 7 7;
  check (Sampling.Log { w_min = 0.1; w_max = 10.0 }) 12 12;
  check (Sampling.Bands [ (0.0, 1.0); (2.0, 3.0) ]) 10 10

let test_sampling_weights_positive () =
  List.iter
    (fun scheme ->
      let pts = Sampling.points scheme ~count:20 in
      Array.iter (fun p -> if p.Sampling.weight <= 0.0 then Alcotest.fail "nonpositive weight") pts)
    [
      Sampling.Uniform { w_max = 5.0 };
      Sampling.Gauss { w_max = 5.0 };
      Sampling.Log { w_min = 0.1; w_max = 5.0 };
      Sampling.Bands [ (1.0, 2.0) ];
    ]

let test_sampling_band_restriction () =
  let pts = Sampling.points (Sampling.Bands [ (2.0, 3.0); (7.0, 8.0) ]) ~count:16 in
  Array.iter
    (fun p ->
      let w = p.Sampling.s.Complex.im in
      let inside = (w >= 2.0 && w <= 3.0) || (w >= 7.0 && w <= 8.0) in
      if not inside then Alcotest.failf "point %g outside bands" w)
    pts

let test_sampling_uniform_mass () =
  let pts = Sampling.points (Sampling.Uniform { w_max = 4.0 }) ~count:16 in
  check_small ~tol:1e-12 "mass = w_max" (Sampling.total_weight pts -. 4.0)

let test_spread_order_is_permutation () =
  List.iter
    (fun n ->
      let pts = Sampling.points (Sampling.Uniform { w_max = 1.0 }) ~count:n in
      let spread = Sampling.spread_order pts in
      Alcotest.(check int) "length" n (Array.length spread);
      let freqs p = List.sort compare (Array.to_list (Array.map (fun q -> q.Sampling.s.Complex.im) p)) in
      if freqs pts <> freqs spread then Alcotest.failf "not a permutation at n=%d" n)
    [ 1; 2; 3; 7; 8; 16; 33 ]

let test_spread_order_prefix_coverage () =
  (* the first quarter of the spread order must span most of the range *)
  let pts = Sampling.points (Sampling.Uniform { w_max = 1.0 }) ~count:32 in
  let spread = Sampling.spread_order pts in
  let prefix = Array.sub spread 0 8 in
  let lo = ref Float.infinity and hi = ref Float.neg_infinity in
  Array.iter
    (fun p ->
      let w = p.Sampling.s.Complex.im in
      lo := Float.min !lo w;
      hi := Float.max !hi w)
    prefix;
  Alcotest.(check bool) "prefix spans range" true (!hi -. !lo > 0.7)

let test_prefixes () =
  let pts = Sampling.points (Sampling.Uniform { w_max = 1.0 }) ~count:10 in
  let ps = Sampling.prefixes pts ~batch:4 in
  Alcotest.(check (list int)) "prefix sizes" [ 4; 8; 10 ] (List.map Array.length ps)

(* ------------------------------------------------------------------ *)
(* Zmat                                                                *)
(* ------------------------------------------------------------------ *)

let test_zmat_dims () =
  let sys = rc_line_sys () in
  let n = Dss.order sys in
  (* complex points contribute 2 columns per input, real points 1 *)
  let pts =
    [|
      { Sampling.s = { Complex.re = 0.0; im = 1e9 }; weight = 1.0 };
      { Sampling.s = { Complex.re = 0.0; im = 2e9 }; weight = 1.0 };
      { Sampling.s = Complex.zero; weight = 1.0 };
    |]
  in
  let z = Zmat.build sys pts in
  Alcotest.(check (pair int int)) "dims" (n, 5) (Mat.dims z)

let test_zmat_matches_direct_solve () =
  let sys = rc_line_sys () in
  let s = { Complex.re = 0.0; im = 1.5e9 } in
  let pts = [| { Sampling.s; weight = 4.0 } |] in
  let z = Zmat.build sys pts in
  let direct = (Dss.shifted_solve sys s).(0) in
  for i = 0 to Dss.order sys - 1 do
    check_small ~tol:1e-12 "re col" (Mat.get z i 0 -. (2.0 *. direct.(i).Complex.re));
    check_small ~tol:1e-12 "im col" (Mat.get z i 1 -. (2.0 *. direct.(i).Complex.im))
  done

let test_zmat_left_samples () =
  (* for the symmetric RC case, left and right samples span the same space *)
  let sys = Dss.symmetrize_rc (rc_line_sys ()) in
  let pts = Sampling.points (Sampling.Uniform { w_max = rc_line_band }) ~count:4 in
  let zr = Zmat.build sys pts and zl = Zmat.build_left sys pts in
  check_small ~tol:1e-6 "left = right span (symmetric)" (Subspace.max_angle zr zl)

(* ------------------------------------------------------------------ *)
(* PMTBR (Algorithm 1)                                                 *)
(* ------------------------------------------------------------------ *)

let test_pmtbr_accuracy_on_rc_line () =
  let sys = rc_line_sys () in
  let r = Pmtbr.reduce_uniform ~order:10 sys ~w_max:rc_line_band ~count:25 in
  let om = Vec.linspace 0.0 rc_line_band 40 in
  let err = Freq.max_rel_error (Freq.sweep sys om) (Freq.sweep r.Pmtbr.rom om) in
  if err > 1e-8 then Alcotest.failf "PMTBR order-10 error too large: %g" err

let test_pmtbr_order_cap_respected () =
  let sys = rc_line_sys () in
  let r = Pmtbr.reduce_uniform ~order:5 sys ~w_max:rc_line_band ~count:20 in
  Alcotest.(check bool) "order <= 5" true (Dss.order r.Pmtbr.rom <= 5)

let test_pmtbr_singular_values_descending () =
  let sys = rc_line_sys () in
  let r = Pmtbr.reduce_uniform sys ~w_max:rc_line_band ~count:15 in
  let s = r.Pmtbr.singular_values in
  for i = 1 to Array.length s - 1 do
    if s.(i) > s.(i - 1) +. 1e-12 then Alcotest.fail "not descending"
  done

let test_pmtbr_tolerance_controls_order () =
  let sys = rc_line_sys () in
  let loose = Pmtbr.reduce_uniform ~tol:1e-2 sys ~w_max:rc_line_band ~count:25 in
  let tight = Pmtbr.reduce_uniform ~tol:1e-10 sys ~w_max:rc_line_band ~count:25 in
  Alcotest.(check bool) "tighter tol -> larger order" true
    (Dss.order tight.Pmtbr.rom >= Dss.order loose.Pmtbr.rom)

let test_pmtbr_hankel_estimates_converge () =
  (* small symmetric standard system: estimates must converge to eig(X) *)
  let n = 6 in
  let m = Mat.random ~seed:5 n n in
  let mmt = Mat.mul m (Mat.transpose m) in
  let a = Mat.init n n (fun i j -> -.(Mat.get mmt i j) -. if i = j then 1.0 else 0.0) in
  let b = Mat.random ~seed:9 n 1 in
  let sys = Dss.of_standard ~a ~b ~c:(Mat.transpose b) in
  let hsv = Tbr.hankel_singular_values ~a ~b ~c:(Mat.transpose b) () in
  let pts = Sampling.points (Sampling.Gauss { w_max = 2000.0 }) ~count:1500 in
  let est = Pmtbr.hankel_estimates sys pts in
  for i = 0 to 2 do
    let ratio = est.(i) /. hsv.(i) in
    if Float.abs (ratio -. 1.0) > 0.05 then
      Alcotest.failf "hankel estimate %d off: ratio %g" i ratio
  done

let test_pmtbr_subspace_converges () =
  (* the PMTBR basis approaches the dominant Gramian eigenspace *)
  let sys = Dss.symmetrize_rc (Dss.of_netlist (Rc_line.generate ~sections:20 ())) in
  let a, b, c = Dss.to_standard sys in
  ignore c;
  let x = Gramian.controllability ~a ~b () in
  let _, vx = Eig_sym.decompose x in
  let exact4 = Mat.sub_cols vx 0 4 in
  let angle count =
    let pts = Sampling.points (Sampling.Log { w_min = 1e6; w_max = 1e12 }) ~count in
    let r = Pmtbr.reduce ~order:4 sys pts in
    Subspace.max_angle exact4 r.Pmtbr.basis
  in
  let a8 = angle 8 and a64 = angle 64 in
  if a64 > 0.05 then Alcotest.failf "subspace not converged: %g rad" a64;
  if a64 > a8 +. 1e-9 then Alcotest.failf "angle grew with samples: %g -> %g" a8 a64

let test_pmtbr_adaptive_stops_early () =
  let sys = rc_line_sys () in
  let pts = Sampling.points (Sampling.Uniform { w_max = rc_line_band }) ~count:64 in
  let r = Pmtbr.reduce_adaptive ~tol:1e-8 ~batch:8 sys pts in
  Alcotest.(check bool) "used fewer than all samples" true (r.Pmtbr.samples < 64);
  let om = Vec.linspace 0.0 rc_line_band 30 in
  let err = Freq.max_rel_error (Freq.sweep sys om) (Freq.sweep r.Pmtbr.rom om) in
  if err > 1e-5 then Alcotest.failf "adaptive PMTBR inaccurate: %g" err

let test_pmtbr_matches_tbr_subspace_quality () =
  (* PMTBR at the same order should be within a small factor of TBR's
     response error on an RC circuit *)
  let sys = rc_line_sys () in
  let om = Vec.linspace 0.0 rc_line_band 30 in
  let href = Freq.sweep sys om in
  let t = Tbr.reduce_dss ~order:6 sys in
  let p = Pmtbr.reduce_uniform ~order:6 sys ~w_max:rc_line_band ~count:30 in
  let err_tbr = Freq.max_rel_error href (Freq.sweep t.Tbr.rom om) in
  let err_pm = Freq.max_rel_error href (Freq.sweep p.Pmtbr.rom om) in
  (* in-band, PMTBR is typically better; allow a generous factor anyway *)
  if err_pm > 100.0 *. err_tbr +. 1e-12 then
    Alcotest.failf "PMTBR much worse than TBR in band: %g vs %g" err_pm err_tbr

(* ------------------------------------------------------------------ *)
(* Frequency-selective (Algorithm 2)                                   *)
(* ------------------------------------------------------------------ *)

let test_freq_selective_in_band_accuracy () =
  let sys = Dss.of_netlist (Peec.generate ~cells:12 ()) in
  let w_hi = Peec.sample_band () /. 3.0 in
  let bands = [ Freq_selective.band ~lo:0.0 ~hi:w_hi ] in
  let r = Freq_selective.reduce ~order:24 sys ~bands ~count:40 in
  let om_in = Vec.linspace (w_hi /. 50.0) w_hi 40 in
  let err_in = Freq.max_rel_error (Freq.sweep sys om_in) (Freq.sweep r.Pmtbr.rom om_in) in
  if err_in > 1e-3 then Alcotest.failf "in-band error too large: %g" err_in

let test_freq_selective_prefers_band () =
  (* compare in-band error of a band-restricted model against a model of the
     same size sampled over a 3x wider range *)
  let sys = Dss.of_netlist (Peec.generate ~cells:12 ()) in
  let w_hi = Peec.sample_band () /. 4.0 in
  let om_in = Vec.linspace (w_hi /. 50.0) w_hi 30 in
  let href = Freq.sweep sys om_in in
  let banded =
    Freq_selective.reduce ~order:10 sys ~bands:[ Freq_selective.band ~lo:0.0 ~hi:w_hi ] ~count:30
  in
  let wide = Pmtbr.reduce_uniform ~order:10 sys ~w_max:(4.0 *. w_hi) ~count:30 in
  let err_banded = Freq.max_rel_error href (Freq.sweep banded.Pmtbr.rom om_in) in
  let err_wide = Freq.max_rel_error href (Freq.sweep wide.Pmtbr.rom om_in) in
  if err_banded > err_wide *. 2.0 +. 1e-12 then
    Alcotest.failf "band-restricted sampling not better in band: %g vs %g" err_banded err_wide

(* ------------------------------------------------------------------ *)
(* Input-correlated (Algorithm 3)                                      *)
(* ------------------------------------------------------------------ *)

let correlated_inputs ~ports ~seed =
  let rng = Pmtbr_signal.Rng.create seed in
  let waves =
    Pmtbr_signal.Waveform.correlated_ensemble ~rng ~ports
      ~templates:[| (fun t -> sin (1e9 *. t)); (fun t -> Float.max 0.0 (sin (3e8 *. t))) |]
      ~noise:0.001
  in
  Pmtbr_signal.Waveform.sample_matrix waves ~t0:0.0 ~t1:50e-9 ~samples:300

let test_input_correlated_rank_detection () =
  let sys = Dss.of_netlist (Rc_mesh.generate ~rows:5 ~cols:5 ~ports:8 ()) in
  let inputs = correlated_inputs ~ports:8 ~seed:3 in
  let pts = Sampling.points (Sampling.Uniform { w_max = 2e9 }) ~count:10 in
  let r = Input_correlated.reduce ~input_tol:1e-2 sys ~inputs ~points:pts ~draws:20 in
  Alcotest.(check bool) "input rank small" true (r.Input_correlated.input_rank <= 3)

let test_input_correlated_smaller_than_white () =
  (* for strongly correlated inputs, the sampled correlated Gramian decays
     faster than the white-input one at matched sample counts *)
  let sys = Dss.of_netlist (Rc_mesh.generate ~rows:5 ~cols:5 ~ports:8 ()) in
  let inputs = correlated_inputs ~ports:8 ~seed:5 in
  let pts = Sampling.points (Sampling.Uniform { w_max = 2e9 }) ~count:12 in
  let corr = Input_correlated.reduce ~input_tol:1e-2 sys ~inputs ~points:pts ~draws:24 in
  let white = Pmtbr.reduce sys pts in
  let decay s k = if Array.length s > k then s.(k) /. Float.max s.(0) 1e-300 else 0.0 in
  let d_corr = decay corr.Input_correlated.singular_values 10 in
  let d_white = decay white.Pmtbr.singular_values 10 in
  if d_corr > d_white then
    Alcotest.failf "correlated sampling does not decay faster: %g vs %g" d_corr d_white

let test_input_correlated_deterministic_variant () =
  let sys = Dss.of_netlist (Rc_mesh.generate ~rows:4 ~cols:4 ~ports:6 ()) in
  let inputs = correlated_inputs ~ports:6 ~seed:7 in
  let pts = Sampling.points (Sampling.Uniform { w_max = 2e9 }) ~count:8 in
  let r = Input_correlated.reduce_deterministic ~input_tol:1e-2 ~order:6 sys ~inputs ~points:pts in
  Alcotest.(check bool) "order <= 6" true (Dss.order r.Input_correlated.rom <= 6);
  Alcotest.(check bool) "input rank recorded" true (r.Input_correlated.input_rank >= 1)

(* ------------------------------------------------------------------ *)
(* Cross-Gramian                                                       *)
(* ------------------------------------------------------------------ *)

let test_cross_gramian_accuracy () =
  let sys = rc_line_sys () in
  let pts = Sampling.points (Sampling.Uniform { w_max = rc_line_band }) ~count:12 in
  let r = Cross_gramian.reduce ~order:8 sys pts in
  let om = Vec.linspace 0.0 rc_line_band 30 in
  let err = Freq.max_rel_error (Freq.sweep sys om) (Freq.sweep r.Cross_gramian.rom om) in
  if err > 1e-6 then Alcotest.failf "cross-gramian reduction inaccurate: %g" err

let test_cross_gramian_eigenvalues_sorted () =
  let sys = rc_line_sys () in
  let pts = Sampling.points (Sampling.Uniform { w_max = rc_line_band }) ~count:8 in
  let r = Cross_gramian.reduce ~order:4 sys pts in
  let evs = r.Cross_gramian.eigenvalues in
  for i = 1 to Array.length evs - 1 do
    if Complex.norm evs.(i) > Complex.norm evs.(i - 1) +. 1e-12 then
      Alcotest.fail "eigenvalues not sorted by magnitude"
  done

(* ------------------------------------------------------------------ *)
(* Baselines                                                           *)
(* ------------------------------------------------------------------ *)

let test_multipoint_interpolates () =
  (* rational projection reproduces the transfer function at its own sample
     points (moment-matching property of projection with z_k in the basis) *)
  let sys = rc_line_sys () in
  let pts = Sampling.points (Sampling.Uniform { w_max = rc_line_band }) ~count:6 in
  let r = Multipoint.reduce sys pts ~count:6 in
  Array.iter
    (fun p ->
      let h_full = Freq.eval sys p.Sampling.s in
      let h_rom = Freq.eval r.Multipoint.rom p.Sampling.s in
      let scale = Float.max 1e-300 (Cmat.max_abs h_full) in
      if Cmat.max_abs (Cmat.sub h_full h_rom) /. scale > 1e-7 then
        Alcotest.failf "no interpolation at sample point %g" p.Sampling.s.Complex.im)
    pts

let test_pmtbr_more_compact_than_multipoint () =
  (* Fig. 10's methodology: at equal model order q, PMTBR (many samples,
     SVD-truncated to q) is at least as accurate as multipoint projection
     (q/2 points, all columns kept) *)
  let sys = rc_line_sys () in
  let pts = Sampling.points (Sampling.Uniform { w_max = rc_line_band }) ~count:24 in
  let om = Vec.linspace 0.0 rc_line_band 30 in
  let href = Freq.sweep sys om in
  let q = 6 in
  let mp = Multipoint.reduce sys (Sampling.spread_order pts) ~count:(q / 2) in
  let pm = Pmtbr.reduce ~order:q sys pts in
  let err_mp = Freq.max_rel_error href (Freq.sweep mp.Multipoint.rom om) in
  let err_pm = Freq.max_rel_error href (Freq.sweep pm.Pmtbr.rom om) in
  if err_pm > (err_mp *. 1.5) +. 1e-15 then
    Alcotest.failf "PMTBR less accurate at equal order: %g vs %g" err_pm err_mp

let test_prima_matches_at_expansion_point () =
  let sys = rc_line_sys () in
  let s0 = 1e8 in
  let r = Prima.reduce sys ~s0 ~moments:4 in
  let h_full = Freq.eval sys { Complex.re = s0; im = 0.0 } in
  let h_rom = Freq.eval r.Prima.rom { Complex.re = s0; im = 0.0 } in
  let scale = Float.max 1e-300 (Cmat.max_abs h_full) in
  check_small ~tol:1e-7 "match at s0" (Cmat.max_abs (Cmat.sub h_full h_rom) /. scale)

let test_prima_block_structure () =
  let sys = Dss.of_netlist (Rc_mesh.generate ~rows:4 ~cols:4 ~ports:3 ()) in
  let r = Prima.reduce sys ~s0:1e9 ~moments:2 in
  (* order grows in blocks of the port count *)
  Alcotest.(check bool) "order <= moments * ports" true (r.Prima.basis.Mat.cols <= 6);
  Alcotest.(check bool) "order > ports" true (r.Prima.basis.Mat.cols > 3)

let test_prima_convergence_with_moments () =
  let sys = rc_line_sys () in
  let om = Vec.linspace 0.0 rc_line_band 25 in
  let href = Freq.sweep sys om in
  let err m =
    let r = Prima.reduce sys ~s0:(rc_line_band /. 10.0) ~moments:m in
    Freq.max_rel_error href (Freq.sweep r.Prima.rom om)
  in
  let e2 = err 2 and e8 = err 8 in
  if e8 > e2 /. 10.0 then Alcotest.failf "PRIMA not converging: %g -> %g" e2 e8

(* ------------------------------------------------------------------ *)
(* Error estimation                                                    *)
(* ------------------------------------------------------------------ *)

let test_error_est_monotone () =
  let sigma = [| 5.0; 2.0; 0.5; 0.01 |] in
  let curve = Error_est.curve sigma in
  Alcotest.(check int) "length" 5 (Array.length curve);
  for i = 1 to 4 do
    if curve.(i) > curve.(i - 1) then Alcotest.fail "estimate not decreasing"
  done;
  check_small "exact at full order" curve.(4)

let test_error_est_order_for () =
  let sigma = [| 1.0; 0.1; 0.01; 0.001 |] in
  let q, met = Error_est.order_for sigma ~tol:0.02 in
  (* tail after q=2: 2*(0.01+0.001)/2 = 0.011 <= 0.02 *)
  Alcotest.(check int) "order" 2 q;
  Alcotest.(check bool) "met" true met;
  (* an unmeetable tolerance must be flagged instead of silently
     reporting the last order as satisfying it *)
  let q, met = Error_est.order_for sigma ~tol:(-1.0) in
  Alcotest.(check int) "fallback order" 4 q;
  Alcotest.(check bool) "unmet flagged" false met

let test_error_est_predicts_pmtbr_error () =
  (* the singular-value estimate should be within a couple of orders of
     magnitude of the true response error (Fig. 9's "very good" claim, with
     slack for the normalisation differences) *)
  let sys = rc_line_sys () in
  let pts = Sampling.points (Sampling.Uniform { w_max = rc_line_band }) ~count:30 in
  let om = Vec.linspace 0.0 rc_line_band 30 in
  let href = Freq.sweep sys om in
  let all = Pmtbr.reduce ~tol:1e-14 sys pts in
  let sigma = all.Pmtbr.singular_values in
  List.iter
    (fun q ->
      let r = Pmtbr.reduce ~order:q sys pts in
      let err = Freq.max_rel_error href (Freq.sweep r.Pmtbr.rom om) in
      let est = (Error_est.normalized_curve sigma).(q) in
      if err > 1e-12 && est > 1e-16 then begin
        let ratio = err /. est in
        if ratio > 1e3 || ratio < 1e-4 then
          Alcotest.failf "estimate far from error at q=%d: err %g est %g" q err est
      end)
    [ 3; 5; 7 ]

let props =
  [
    QCheck2.Test.make ~name:"PMTBR error shrinks with order" ~count:8
      QCheck2.Gen.(int_range 10 30)
      (fun sections ->
        let sys = Dss.of_netlist (Rc_line.generate ~sections ()) in
        let om = Vec.linspace 0.0 rc_line_band 15 in
        let href = Freq.sweep sys om in
        let err q =
          let r = Pmtbr.reduce_uniform ~order:q sys ~w_max:rc_line_band ~count:20 in
          Freq.max_rel_error href (Freq.sweep r.Pmtbr.rom om)
        in
        err 8 <= (err 3 *. 1.5) +. 1e-15);
    QCheck2.Test.make ~name:"basis is orthonormal" ~count:8
      QCheck2.Gen.(int_range 0 100)
      (fun seed ->
        let sys = Dss.of_netlist (Rc_mesh.generate ~rows:4 ~cols:4 ~ports:2 ()) in
        let count = 5 + (seed mod 8) in
        let r = Pmtbr.reduce_uniform ~order:6 sys ~w_max:1e10 ~count in
        let v = r.Pmtbr.basis in
        let g = Mat.mul (Mat.transpose v) v in
        Mat.frobenius (Mat.sub g (Mat.identity v.Mat.cols)) < 1e-8);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "pmtbr_core"
    [
      ( "sampling",
        [
          Alcotest.test_case "counts" `Quick test_sampling_counts;
          Alcotest.test_case "weights positive" `Quick test_sampling_weights_positive;
          Alcotest.test_case "band restriction" `Quick test_sampling_band_restriction;
          Alcotest.test_case "uniform mass" `Quick test_sampling_uniform_mass;
          Alcotest.test_case "spread is permutation" `Quick test_spread_order_is_permutation;
          Alcotest.test_case "spread prefix coverage" `Quick test_spread_order_prefix_coverage;
          Alcotest.test_case "prefixes" `Quick test_prefixes;
        ] );
      ( "zmat",
        [
          Alcotest.test_case "dims" `Quick test_zmat_dims;
          Alcotest.test_case "matches direct solve" `Quick test_zmat_matches_direct_solve;
          Alcotest.test_case "left samples" `Quick test_zmat_left_samples;
        ] );
      ( "pmtbr",
        [
          Alcotest.test_case "rc line accuracy" `Quick test_pmtbr_accuracy_on_rc_line;
          Alcotest.test_case "order cap" `Quick test_pmtbr_order_cap_respected;
          Alcotest.test_case "singular values descending" `Quick test_pmtbr_singular_values_descending;
          Alcotest.test_case "tolerance controls order" `Quick test_pmtbr_tolerance_controls_order;
          Alcotest.test_case "hankel estimates converge" `Quick test_pmtbr_hankel_estimates_converge;
          Alcotest.test_case "subspace converges" `Quick test_pmtbr_subspace_converges;
          Alcotest.test_case "adaptive stops early" `Quick test_pmtbr_adaptive_stops_early;
          Alcotest.test_case "competitive with TBR" `Quick test_pmtbr_matches_tbr_subspace_quality;
        ] );
      ( "freq_selective",
        [
          Alcotest.test_case "in-band accuracy" `Quick test_freq_selective_in_band_accuracy;
          Alcotest.test_case "prefers band" `Quick test_freq_selective_prefers_band;
        ] );
      ( "input_correlated",
        [
          Alcotest.test_case "rank detection" `Quick test_input_correlated_rank_detection;
          Alcotest.test_case "decays faster than white" `Quick test_input_correlated_smaller_than_white;
          Alcotest.test_case "deterministic variant" `Quick test_input_correlated_deterministic_variant;
        ] );
      ( "cross_gramian",
        [
          Alcotest.test_case "accuracy" `Quick test_cross_gramian_accuracy;
          Alcotest.test_case "eigenvalues sorted" `Quick test_cross_gramian_eigenvalues_sorted;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "multipoint interpolates" `Quick test_multipoint_interpolates;
          Alcotest.test_case "pmtbr more compact" `Quick test_pmtbr_more_compact_than_multipoint;
          Alcotest.test_case "prima matches at s0" `Quick test_prima_matches_at_expansion_point;
          Alcotest.test_case "prima block structure" `Quick test_prima_block_structure;
          Alcotest.test_case "prima converges" `Quick test_prima_convergence_with_moments;
        ] );
      ( "error_est",
        [
          Alcotest.test_case "monotone" `Quick test_error_est_monotone;
          Alcotest.test_case "order_for" `Quick test_error_est_order_for;
          Alcotest.test_case "predicts pmtbr error" `Quick test_error_est_predicts_pmtbr_error;
        ] );
      ("properties", props);
    ]
