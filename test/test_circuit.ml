(* Tests for netlists, MNA stamping, and the circuit generators. *)

open Pmtbr_la
open Pmtbr_sparse
open Pmtbr_circuit

let check_small ?(tol = 1e-9) msg value =
  if Float.abs value > tol then Alcotest.failf "%s: |%.3e| > %g" msg value tol

let approx ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Netlist / MNA basics                                                *)
(* ------------------------------------------------------------------ *)

let test_single_rc () =
  (* one node: R to ground, C to ground, port -> A = -1/R, E = C, B = 1 *)
  let nl = Netlist.create () in
  Netlist.add_r nl 1 0 2.0;
  Netlist.add_c nl 1 0 3.0;
  ignore (Netlist.add_port nl 1);
  let m = Mna.stamp nl in
  Alcotest.(check int) "n" 1 m.Mna.n;
  let e = Triplet.to_dense m.Mna.e and a = Triplet.to_dense m.Mna.a in
  approx "E" 3.0 (Mat.get e 0 0);
  approx "A" (-0.5) (Mat.get a 0 0);
  approx "B" 1.0 (Mat.get m.Mna.b 0 0);
  approx "C" 1.0 (Mat.get m.Mna.c 0 0)

let test_resistor_between_nodes () =
  let nl = Netlist.create () in
  Netlist.add_r nl 1 2 4.0;
  Netlist.add_r nl 2 0 4.0;
  Netlist.add_c nl 1 0 1.0;
  Netlist.add_c nl 2 0 1.0;
  ignore (Netlist.add_port nl 1);
  let m = Mna.stamp nl in
  let a = Triplet.to_dense m.Mna.a in
  approx "A11" (-0.25) (Mat.get a 0 0);
  approx "A12" 0.25 (Mat.get a 0 1);
  approx "A21" 0.25 (Mat.get a 1 0);
  approx "A22" (-0.5) (Mat.get a 1 1)

let test_rc_symmetry () =
  (* any RC netlist: A = A^T <= 0, E diagonal, C = B^T *)
  let nl = Rc_mesh.generate ~rows:4 ~cols:5 ~ports:3 () in
  let m = Mna.stamp nl in
  let a = Triplet.to_dense m.Mna.a in
  if not (Mat.is_symmetric a) then Alcotest.fail "A not symmetric";
  let eigs = Eig_sym.eigenvalues a in
  Array.iter (fun l -> if l > 1e-9 then Alcotest.failf "A has positive eigenvalue %g" l) eigs;
  check_small "C - B^T" (Mat.frobenius (Mat.sub m.Mna.c (Mat.transpose m.Mna.b)))

let test_inductor_stamp () =
  (* port - L - ground with R: check state count and pencil structure *)
  let nl = Netlist.create () in
  Netlist.add_r nl 1 0 1.0;
  Netlist.add_c nl 1 0 1.0;
  ignore (Netlist.add_l nl 1 0 5.0);
  ignore (Netlist.add_port nl 1);
  let m = Mna.stamp nl in
  Alcotest.(check int) "states = node + inductor" 2 m.Mna.n;
  let e = Triplet.to_dense m.Mna.e and a = Triplet.to_dense m.Mna.a in
  approx "L in E" 5.0 (Mat.get e 1 1);
  approx "KCL coupling" (-1.0) (Mat.get a 0 1);
  approx "branch eq" 1.0 (Mat.get a 1 0)

let test_mutual_stamp () =
  let nl = Netlist.create () in
  Netlist.add_c nl 1 0 1.0;
  Netlist.add_c nl 2 0 1.0;
  Netlist.add_r nl 1 0 1.0;
  Netlist.add_r nl 2 0 1.0;
  let l1 = Netlist.add_l nl 1 0 4.0 in
  let l2 = Netlist.add_l nl 2 0 9.0 in
  Netlist.add_mutual nl l1 l2 0.5;
  ignore (Netlist.add_port nl 1);
  let m = Mna.stamp nl in
  let e = Triplet.to_dense m.Mna.e in
  (* M = k sqrt(L1 L2) = 0.5 * 6 = 3 *)
  approx "mutual term" 3.0 (Mat.get e 2 3);
  approx "mutual symmetric" 3.0 (Mat.get e 3 2);
  (* inductance matrix must remain positive definite for |k| < 1 *)
  let lmat = Mat.sub_matrix e ~row:2 ~col:2 ~rows:2 ~cols:2 in
  let eigs = Eig_sym.eigenvalues lmat in
  if eigs.(1) <= 0.0 then Alcotest.fail "L matrix not PD"

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let stable_and_well_formed name nl =
  let m = Mna.stamp nl in
  Alcotest.(check bool) (name ^ " has states") true (m.Mna.n > 0);
  Alcotest.(check bool) (name ^ " has ports") true (Netlist.port_count nl > 0);
  (* E must be symmetric PSD (caps and inductances physical) *)
  let e = Triplet.to_dense m.Mna.e in
  if not (Mat.is_symmetric e) then Alcotest.failf "%s: E not symmetric" name;
  m

let test_rc_line_dc_resistance () =
  let nl = Rc_line.generate ~sections:10 ~r:7.0 ~c:1e-12 ~r_term:30.0 () in
  let m = stable_and_well_formed "rc_line" nl in
  (* DC: v = G^{-1} B u, y = C v; input resistance = y for unit current *)
  let g = Mat.scale (-1.0) (Triplet.to_dense m.Mna.a) in
  let v = Mat.solve g m.Mna.b in
  approx ~tol:1e-6 "dc resistance"
    (Rc_line.dc_resistance ~sections:10 ~r:7.0 ~r_term:30.0 ())
    (Mat.get (Mat.mul m.Mna.c v) 0 0)

let test_rc_mesh_structure () =
  let rows = 5 and cols = 6 in
  let nl = Rc_mesh.generate ~rows ~cols ~ports:4 () in
  let m = stable_and_well_formed "rc_mesh" nl in
  Alcotest.(check int) "states = grid nodes" (rows * cols) m.Mna.n;
  Alcotest.(check int) "ports" 4 (Netlist.port_count nl);
  let r, c, l, k = Netlist.stats nl in
  Alcotest.(check int) "resistors: grid edges + leaks"
    ((rows * (cols - 1)) + (cols * (rows - 1)) + (rows * cols))
    r;
  Alcotest.(check int) "caps" (rows * cols) c;
  Alcotest.(check int) "no inductors" 0 l;
  Alcotest.(check int) "no mutuals" 0 k

let test_rc_mesh_port_growth_nested () =
  (* growing the port count preserves earlier port nodes: needed for the
     Fig. 3 sweep to be a proper nesting *)
  let ports_of n =
    Netlist.ports (Rc_mesh.generate ~rows:8 ~cols:8 ~ports:n ())
  in
  let p4 = ports_of 4 and p8 = ports_of 8 in
  List.iteri
    (fun i nd -> Alcotest.(check int) (Printf.sprintf "port %d stable" i) nd (List.nth p8 i))
    p4

let test_clock_tree_size () =
  let nl = Clock_tree.generate ~levels:5 () in
  let m = stable_and_well_formed "clock_tree" nl in
  (* binary tree: 1 + 2 + 4 + ... + 2^levels = 2^(levels+1) - 1 nodes *)
  Alcotest.(check int) "node count" ((1 lsl 6) - 1) m.Mna.n

let test_spiral_has_inductors_and_coupling () =
  let nl = Spiral.generate ~segments:8 () in
  let _ = stable_and_well_formed "spiral" nl in
  let _, _, l, k = Netlist.stats nl in
  Alcotest.(check bool) "inductors" true (l >= 16);
  (* series + skin *)
  Alcotest.(check bool) "mutual couplings" true (k > 0)

let test_peec_structure () =
  let nl = Peec.generate ~cells:10 () in
  let m = stable_and_well_formed "peec" nl in
  Alcotest.(check bool) "states > cells" true (m.Mna.n > 10)

let test_connector_structure () =
  let nl = Connector.generate ~pins:6 ~sections:3 () in
  let m = stable_and_well_formed "connector" nl in
  Alcotest.(check int) "one port" 1 (Netlist.port_count nl);
  Alcotest.(check bool) "order reasonable" true (m.Mna.n > 40)

let test_substrate_structure () =
  let nl = Substrate.generate ~ports:20 ~internal:10 ~seed:1 () in
  let m = stable_and_well_formed "substrate" nl in
  Alcotest.(check int) "ports" 20 (Netlist.port_count nl);
  Alcotest.(check int) "nodes" 30 m.Mna.n;
  (* connected to ground: -A (the conductance matrix) must be PD *)
  let g = Mat.scale (-1.0) (Triplet.to_dense m.Mna.a) in
  (try ignore (Chol.factor g) with Chol.Not_positive_definite _ -> Alcotest.fail "G not PD")

let test_substrate_deterministic () =
  let n1 = Substrate.generate ~ports:10 ~seed:5 () in
  let n2 = Substrate.generate ~ports:10 ~seed:5 () in
  let m1 = Mna.stamp n1 and m2 = Mna.stamp n2 in
  check_small "same A" (Mat.frobenius (Mat.sub (Triplet.to_dense m1.Mna.a) (Triplet.to_dense m2.Mna.a)))

(* ------------------------------------------------------------------ *)
(* Streaming SPICE reader                                              *)
(* ------------------------------------------------------------------ *)

let stats_of text = Netlist.stats (Spice.netlist (Spice.parse_string text))

let test_spice_continuations_and_comments () =
  (* '+' continuation lines, '*' / ';' / '$' comments (inline and full
     line), and blank lines — all exercised on one netlist *)
  let text =
    "* full-line comment\n\
     R1 1 0\n\
     + 1k ; inline comment after a continuation\n\
     \n\
     C1 1\n\
     + 0\n\
     + 1p $ another inline comment\n\
     $ full-line dollar comment\n\
     .port 1\n\
     .end\n\
     R_ignored_after_end 2 0 1k\n"
  in
  let r, c, l, k = stats_of text in
  Alcotest.(check int) "resistors" 1 r;
  Alcotest.(check int) "capacitors" 1 c;
  Alcotest.(check int) "inductors" 0 l;
  Alcotest.(check int) "mutuals" 0 k

let test_spice_case_insensitive_directives () =
  let text = "r1 n1 GND 1K\nC1 N1 gnd 1P\n.PORT n1\n.End\n" in
  let nl = Spice.netlist (Spice.parse_string text) in
  let r, c, _, _ = Netlist.stats nl in
  Alcotest.(check int) "resistors" 1 r;
  Alcotest.(check int) "capacitors" 1 c;
  Alcotest.(check int) "one port" 1 (Netlist.port_count nl);
  (* n1 and N1 are the same node: one state *)
  Alcotest.(check int) "one node" 1 (Mna.stamp nl).Mna.n

let test_spice_subckt_flattening () =
  (* a two-section ladder instantiated twice, chained through x/y; the
     internal node of each instance is scoped, so 5 distinct nodes *)
  let text =
    ".subckt sec in out\n\
     Rs in mid 1k\n\
     Cs mid 0 1p\n\
     Ro mid out 2k\n\
     .ends\n\
     X1 a b sec\n\
     X2 b c sec\n\
     .port a\n\
     .end\n"
  in
  let parsed = Spice.parse_string text in
  let nl = Spice.netlist parsed in
  let r, c, _, _ = Netlist.stats nl in
  Alcotest.(check int) "resistors" 4 r;
  Alcotest.(check int) "capacitors" 2 c;
  Alcotest.(check int) "nodes" 5 (Mna.stamp nl).Mna.n;
  (* instance-internal nodes carry their scoped names *)
  let names = List.init 5 (fun i -> Spice.node_name parsed (i + 1)) in
  Alcotest.(check bool) "scoped internal node" true (List.mem "x1.mid" names);
  Alcotest.(check bool) "scoped internal node 2" true (List.mem "x2.mid" names)

let test_spice_model_cards () =
  let text =
    ".model rload res 50\n\
     .model cpar c 2p\n\
     R1 1 0 rload\n\
     C1 1 0 cpar\n\
     .port 1\n\
     .end\n"
  in
  let m = Mna.stamp (Spice.netlist (Spice.parse_string text)) in
  approx "A from model R" (-1.0 /. 50.0) (Mat.get (Triplet.to_dense m.Mna.a) 0 0);
  approx ~tol:1e-24 "E from model C" 2e-12 (Mat.get (Triplet.to_dense m.Mna.e) 0 0)

let test_spice_negative_values () =
  (* synthesized ROM netlists carry negative branch elements *)
  let text = "R1 1 2 -3.5\nR2 1 0 2.0\nC1 1 0 1p\nC2 1 2 -4e-13\n.port 1\n.end\n" in
  let r, c, _, _ = stats_of text in
  Alcotest.(check int) "resistors" 2 r;
  Alcotest.(check int) "capacitors" 2 c

let test_spice_line_numbered_errors () =
  let expect_line text want_line =
    match Spice.parse_string text with
    | exception Spice.Parse_error (line, _) ->
        Alcotest.(check int) (Printf.sprintf "error line for %S" text) want_line line
    | _ -> Alcotest.failf "%S must fail to parse" text
  in
  expect_line "R1 1 0 1k\nC1 1 0 0\n" 2 (* zero value *);
  (* a continued card is reported at the line where the card begins *)
  expect_line "R1 1 0 1k\n\nR2 1 0\n+ banana\n" 3;
  expect_line "R1 1 0 1k\n.frobnicate 1\n" 2 (* unknown directive *);
  expect_line "R1 1 0 1k\nK1 L1 L2 0.5\n" 2 (* unknown inductor *);
  expect_line "X1 a b nosuch\n" 1 (* unknown subcircuit *);
  expect_line ".subckt s in out\nR1 in out 1\n" 1 (* unclosed definition *);
  expect_line "R1 1 0 1k\n.ends\n" 2 (* .ends without .subckt *);
  expect_line ".port 0\n" 1 (* port on ground *)

(* property: every generator yields a stamped system whose A is stable
   (eigenvalues of the symmetric part nonpositive) *)
let prop_generators_stable =
  QCheck2.Test.make ~name:"generated RC systems have negative semidefinite A" ~count:10
    QCheck2.Gen.(pair (int_range 2 6) (int_range 2 6))
    (fun (rows, cols) ->
      let m = Mna.stamp (Rc_mesh.generate ~rows ~cols ~ports:1 ()) in
      let eigs = Eig_sym.eigenvalues (Triplet.to_dense m.Mna.a) in
      Array.for_all (fun l -> l <= 1e-9) eigs)

let props = [ QCheck_alcotest.to_alcotest prop_generators_stable ]

let () =
  Alcotest.run "pmtbr_circuit"
    [
      ( "mna",
        [
          Alcotest.test_case "single rc" `Quick test_single_rc;
          Alcotest.test_case "resistor between nodes" `Quick test_resistor_between_nodes;
          Alcotest.test_case "rc symmetry" `Quick test_rc_symmetry;
          Alcotest.test_case "inductor stamp" `Quick test_inductor_stamp;
          Alcotest.test_case "mutual stamp" `Quick test_mutual_stamp;
        ] );
      ( "generators",
        [
          Alcotest.test_case "rc line dc resistance" `Quick test_rc_line_dc_resistance;
          Alcotest.test_case "rc mesh structure" `Quick test_rc_mesh_structure;
          Alcotest.test_case "rc mesh nested ports" `Quick test_rc_mesh_port_growth_nested;
          Alcotest.test_case "clock tree size" `Quick test_clock_tree_size;
          Alcotest.test_case "spiral" `Quick test_spiral_has_inductors_and_coupling;
          Alcotest.test_case "peec" `Quick test_peec_structure;
          Alcotest.test_case "connector" `Quick test_connector_structure;
          Alcotest.test_case "substrate" `Quick test_substrate_structure;
          Alcotest.test_case "substrate deterministic" `Quick test_substrate_deterministic;
        ] );
      ( "spice-reader",
        [
          Alcotest.test_case "continuations and comments" `Quick
            test_spice_continuations_and_comments;
          Alcotest.test_case "case-insensitive directives" `Quick
            test_spice_case_insensitive_directives;
          Alcotest.test_case "subckt flattening" `Quick test_spice_subckt_flattening;
          Alcotest.test_case "model cards" `Quick test_spice_model_cards;
          Alcotest.test_case "negative values" `Quick test_spice_negative_values;
          Alcotest.test_case "line-numbered errors" `Quick test_spice_line_numbered_errors;
        ] );
      ("properties", props);
    ]
