(* Tests for the two-tier frequency-sweep engine (Sweep_engine / Freq):
   the bitwise worker-invariance contract (a sweep is a pure function of
   (plan, grid) — never of the worker count, chunk size or scheduling,
   and equals a serial map of the per-point [eval] through the same
   plan), agreement of the replay tier with the naive fresh-factorisation
   [Freq.eval] to the replay roundoff scale, agreement of the Hessenberg
   ROM tier with the dense-LU reference within 1e-12 relative, streaming
   error folds equal to the array-based metrics, and the invalid_arg
   guards that replaced the release-stripped asserts. *)

open Pmtbr_la
open Pmtbr_circuit
open Pmtbr_lti
open Pmtbr_core

let mesh_system ~rows ~cols ~ports = Dss.of_netlist (Rc_mesh.generate ~rows ~cols ~ports ())

let bitwise_equal (a : Cmat.t) (b : Cmat.t) =
  a.Cmat.rows = b.Cmat.rows && a.Cmat.cols = b.Cmat.cols && a.Cmat.data = b.Cmat.data

let sweeps_bitwise_equal a b =
  Array.length a = Array.length b && Array.for_all2 bitwise_equal a b

(* worst entrywise |a - b| over a sweep, relative to the largest |a| *)
let sweep_rel_diff (a : Cmat.t array) (b : Cmat.t array) =
  let scale =
    Float.max 1e-300 (Array.fold_left (fun acc h -> Float.max acc (Cmat.max_abs h)) 0.0 a)
  in
  Freq.max_abs_error a b /. scale

let grid ~w_max ~npts = Vec.linspace (w_max /. 50.0) w_max npts

(* ------------------------------------------------------------------ *)
(* Determinism: the contract CI relies on                              *)
(* ------------------------------------------------------------------ *)

(* One plan, shared by every run: any worker count and chunk size must
   reproduce the serial sweep bit for bit.  [oversubscribe] forces real
   domain spawns even on a single-core machine. *)
let prop_worker_invariance =
  QCheck2.Test.make ~name:"sweep: parallel == serial (bitwise, sparse tier)" ~count:10
    QCheck2.Gen.(
      tup6 (int_range 3 6) (int_range 3 6) (int_range 1 3) (int_range 3 12) (int_range 2 4)
        (int_range 1 3))
    (fun (rows, cols, ports, npts, workers, chunk) ->
      let sys = mesh_system ~rows ~cols ~ports in
      let om = grid ~w_max:1e10 ~npts in
      let plan = Sweep_engine.prepare ~template:{ Complex.re = 0.0; im = om.(0) } sys in
      let serial = Sweep_engine.sweep ~workers:1 plan om in
      let par = Sweep_engine.sweep ~workers ~oversubscribe:true ~chunk plan om in
      sweeps_bitwise_equal serial par)

(* The engine sweep at any worker count is exactly the serial map of the
   per-point evaluator through the same plan. *)
let prop_sweep_equals_eval_map =
  QCheck2.Test.make ~name:"sweep == Array.map eval (bitwise, any workers)" ~count:10
    QCheck2.Gen.(tup4 (int_range 3 6) (int_range 3 6) (int_range 3 10) (int_range 1 4))
    (fun (rows, cols, npts, workers) ->
      let sys = mesh_system ~rows ~cols ~ports:2 in
      let om = grid ~w_max:1e10 ~npts in
      let plan = Sweep_engine.prepare ~template:{ Complex.re = 0.0; im = om.(0) } sys in
      let swept = Sweep_engine.sweep ~workers ~oversubscribe:true plan om in
      sweeps_bitwise_equal swept (Array.map (Sweep_engine.eval_jw plan) om))

(* Freq.sweep is the engine with the first grid point as template — and
   therefore itself worker-invariant. *)
let prop_freq_sweep_worker_invariant =
  QCheck2.Test.make ~name:"Freq.sweep: worker-invariant (bitwise)" ~count:8
    QCheck2.Gen.(tup3 (int_range 3 5) (int_range 3 5) (int_range 2 4))
    (fun (rows, cols, workers) ->
      let sys = mesh_system ~rows ~cols ~ports:2 in
      let om = grid ~w_max:1e10 ~npts:7 in
      sweeps_bitwise_equal (Freq.sweep ~workers:1 sys om) (Freq.sweep ~workers sys om))

(* The Hessenberg tier must obey the same contract. *)
let prop_worker_invariance_dense =
  QCheck2.Test.make ~name:"sweep: parallel == serial (bitwise, Hessenberg tier)" ~count:10
    QCheck2.Gen.(tup4 (int_range 2 14) (int_range 3 40) (int_range 2 4) (int_range 0 999))
    (fun (n, npts, workers, seed) ->
      let a = Mat.add (Mat.random ~seed n n) (Mat.scale (-3.0) (Mat.identity n)) in
      let b = Mat.random ~seed:(seed + 1) n 2 and c = Mat.random ~seed:(seed + 2) 2 n in
      let sys = Dss.of_standard ~a ~b ~c in
      let om = grid ~w_max:10.0 ~npts in
      let plan = Sweep_engine.prepare sys in
      let serial = Sweep_engine.sweep ~workers:1 plan om in
      let par = Sweep_engine.sweep ~workers ~oversubscribe:true ~chunk:3 plan om in
      sweeps_bitwise_equal serial par)

(* ------------------------------------------------------------------ *)
(* Accuracy: replay vs naive, Hessenberg vs dense LU                   *)
(* ------------------------------------------------------------------ *)

(* Replay tier vs the naive path (a fresh pivoting factorisation at
   every point): same numbers up to replay roundoff at the matrix scale —
   the same 1e-9 contract the sampling engine pins against its one-shot
   legacy path. *)
let prop_engine_matches_naive =
  QCheck2.Test.make ~name:"sparse engine matches naive Freq.eval (<= 1e-9 rel)" ~count:8
    QCheck2.Gen.(tup3 (int_range 3 6) (int_range 3 6) (int_range 3 10))
    (fun (rows, cols, npts) ->
      let sys = mesh_system ~rows ~cols ~ports:2 in
      let om = grid ~w_max:1e10 ~npts in
      sweep_rel_diff (Freq.sweep_naive sys om) (Freq.sweep sys om) < 1e-9)

(* Hessenberg tier vs the dense-LU reference, on random well-conditioned
   descriptor pencils.  The reduction is orthogonal and the per-point
   elimination pivots, so agreement is at roundoff — pinned at 1e-12
   relative as the acceptance contract. *)
let prop_hessenberg_matches_dense =
  QCheck2.Test.make ~name:"Hessenberg ROM sweep matches dense LU (<= 1e-12 rel)" ~count:25
    QCheck2.Gen.(tup3 (int_range 1 16) (int_range 3 30) (int_range 0 999))
    (fun (n, npts, seed) ->
      let a = Mat.add (Mat.random ~seed n n) (Mat.scale (-3.0) (Mat.identity n)) in
      let e = Mat.add (Mat.random ~seed:(seed + 3) n n) (Mat.scale 4.0 (Mat.identity n)) in
      let b = Mat.random ~seed:(seed + 1) n 2 and c = Mat.random ~seed:(seed + 2) 1 n in
      let sys = Dss.of_dense ~e ~a ~b ~c in
      let om = grid ~w_max:10.0 ~npts in
      sweep_rel_diff (Freq.sweep_naive sys om) (Freq.sweep sys om) <= 1e-12)

(* End-to-end on a real reduced model: PMTBR ROM of an RC line, swept by
   both paths. *)
let test_hessenberg_on_pmtbr_rom () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:40 ()) in
  let pts = Sampling.points (Sampling.Uniform { w_max = 3e9 }) ~count:16 in
  let rom = (Pmtbr.reduce ~order:8 sys pts).Pmtbr.rom in
  let om = grid ~w_max:3e9 ~npts:50 in
  let d = sweep_rel_diff (Freq.sweep_naive rom om) (Freq.sweep rom om) in
  if d > 1e-12 then Alcotest.failf "ROM Hessenberg drift %.3e > 1e-12" d;
  match Sweep_engine.tier (Sweep_engine.prepare rom) with
  | Sweep_engine.Hessenberg -> ()
  | Sweep_engine.Replay -> Alcotest.fail "dense ROM should take the Hessenberg tier"

(* A descriptor ROM with singular E (pure algebraic part) must still
   agree: T picks up a zero diagonal entry but the shifted pencil stays
   regular. *)
let test_hessenberg_singular_e () =
  let n = 6 in
  let e = Mat.init n n (fun i j -> if i = j && i < n - 1 then 1.0 else 0.0) in
  let a = Mat.add (Mat.random ~seed:5 n n) (Mat.scale (-4.0) (Mat.identity n)) in
  let b = Mat.random ~seed:6 n 1 and c = Mat.random ~seed:7 1 n in
  let sys = Dss.of_dense ~e ~a ~b ~c in
  let om = grid ~w_max:5.0 ~npts:20 in
  let d = sweep_rel_diff (Freq.sweep_naive sys om) (Freq.sweep sys om) in
  if d > 1e-12 then Alcotest.failf "singular-E Hessenberg drift %.3e > 1e-12" d

(* ------------------------------------------------------------------ *)
(* Streaming metrics == array metrics                                  *)
(* ------------------------------------------------------------------ *)

(* The old array-based implementations, kept verbatim as the reference
   the streaming folds are pinned against. *)
let ref_max_abs_error (h_ref : Cmat.t array) (h_apx : Cmat.t array) =
  let worst = ref 0.0 in
  Array.iteri
    (fun k href ->
      let d = Cmat.sub href h_apx.(k) in
      worst := Float.max !worst (Cmat.max_abs d))
    h_ref;
  !worst

let ref_max_rel_error h_ref h_apx =
  let scale = Array.fold_left (fun acc h -> Float.max acc (Cmat.max_abs h)) 0.0 h_ref in
  if scale = 0.0 then ref_max_abs_error h_ref h_apx else ref_max_abs_error h_ref h_apx /. scale

let ref_rms_error (h_ref : Cmat.t array) (h_apx : Cmat.t array) =
  let acc = ref 0.0 and count = ref 0 in
  Array.iteri
    (fun k href ->
      let d = Cmat.sub href h_apx.(k) in
      Array.iter
        (fun z ->
          let m = Complex.norm z in
          acc := !acc +. (m *. m);
          incr count)
        d.Cmat.data)
    h_ref;
  if !count = 0 then 0.0 else sqrt (!acc /. float_of_int !count)

let ref_max_real_part_error ~i ~j (h_ref : Cmat.t array) (h_apx : Cmat.t array) =
  let worst = ref 0.0 in
  Array.iteri
    (fun k href ->
      let r1 = (Cmat.get href i j).Complex.re and r2 = (Cmat.get h_apx.(k) i j).Complex.re in
      worst := Float.max !worst (Float.abs (r1 -. r2)))
    h_ref;
  !worst

let ref_max_real_part_rel_error ~i ~j h_ref h_apx =
  let scale = ref 0.0 in
  Array.iter (fun h -> scale := Float.max !scale (Float.abs (Cmat.get h i j).Complex.re)) h_ref;
  if !scale = 0.0 then ref_max_real_part_error ~i ~j h_ref h_apx
  else ref_max_real_part_error ~i ~j h_ref h_apx /. !scale

let random_sweep ~seed ~npts ~rows ~cols =
  Array.init npts (fun k ->
      Cmat.init rows cols (fun i j ->
          let t = float_of_int (seed + (k * 37) + (i * 7) + j) in
          { Complex.re = sin t; im = cos (2.0 *. t) }))

let prop_stream_equals_array =
  QCheck2.Test.make ~name:"streaming folds == array metrics (exact)" ~count:30
    QCheck2.Gen.(tup4 (int_range 1 10) (int_range 1 3) (int_range 1 3) (int_range 0 999))
    (fun (npts, rows, cols, seed) ->
      let h_ref = random_sweep ~seed ~npts ~rows ~cols in
      let h_apx = random_sweep ~seed:(seed + 1) ~npts ~rows ~cols in
      let st = Freq.error_stream ~i:(rows - 1) ~j:(cols - 1) () in
      Array.iteri (fun k href -> Freq.stream_add st ~ref_:href ~apx:h_apx.(k)) h_ref;
      Freq.stream_max_abs_error st = ref_max_abs_error h_ref h_apx
      && Freq.stream_max_rel_error st = ref_max_rel_error h_ref h_apx
      && Freq.stream_rms_error st = ref_rms_error h_ref h_apx
      && Freq.stream_max_real_part_error st
         = ref_max_real_part_error ~i:(rows - 1) ~j:(cols - 1) h_ref h_apx
      && Freq.stream_max_real_part_rel_error st
         = ref_max_real_part_rel_error ~i:(rows - 1) ~j:(cols - 1) h_ref h_apx
      && Freq.max_abs_error h_ref h_apx = ref_max_abs_error h_ref h_apx
      && Freq.rms_error h_ref h_apx = ref_rms_error h_ref h_apx
      && Freq.max_rel_error h_ref h_apx = ref_max_rel_error h_ref h_apx)

(* compare_sweep == materialise-then-measure, on a real system pair *)
let test_compare_sweep_matches_arrays () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:30 ()) in
  let pts = Sampling.points (Sampling.Uniform { w_max = 3e9 }) ~count:12 in
  let rom = (Pmtbr.reduce ~order:6 sys pts).Pmtbr.rom in
  let om = grid ~w_max:3e9 ~npts:25 in
  let href = Freq.sweep sys om in
  let hrom = Freq.sweep rom om in
  let st = Freq.compare_sweep rom om ~ref_:href in
  Alcotest.(check (float 0.0))
    "max rel" (Freq.max_rel_error href hrom) (Freq.stream_max_rel_error st);
  Alcotest.(check (float 0.0)) "rms" (Freq.rms_error href hrom) (Freq.stream_rms_error st)

(* ------------------------------------------------------------------ *)
(* Guards and edges                                                    *)
(* ------------------------------------------------------------------ *)

let test_length_mismatch_raises () =
  let h1 = random_sweep ~seed:1 ~npts:3 ~rows:1 ~cols:1 in
  let h2 = random_sweep ~seed:2 ~npts:4 ~rows:1 ~cols:1 in
  let expect_invalid name f =
    match f () with
    | (_ : float) -> Alcotest.failf "%s accepted mismatched lengths" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "max_abs_error" (fun () -> Freq.max_abs_error h1 h2);
  expect_invalid "rms_error" (fun () -> Freq.rms_error h1 h2);
  expect_invalid "max_rel_error" (fun () -> Freq.max_rel_error h1 h2);
  match Freq.compare_sweep (mesh_system ~rows:3 ~cols:3 ~ports:1) [| 1.0; 2.0 |] ~ref_:(Array.sub h1 0 1) with
  | (_ : Freq.error_stream) -> Alcotest.fail "compare_sweep accepted a short reference"
  | exception Invalid_argument _ -> ()

let test_shape_mismatch_raises () =
  let st = Freq.error_stream () in
  match Freq.stream_add st ~ref_:(Cmat.create 2 2) ~apx:(Cmat.create 2 3) with
  | () -> Alcotest.fail "stream_add accepted mismatched shapes"
  | exception Invalid_argument _ -> ()

let test_empty_sweep () =
  let sys = mesh_system ~rows:3 ~cols:3 ~ports:1 in
  Alcotest.(check int) "empty grid" 0 (Array.length (Freq.sweep sys [||]))

let test_sweep_stats_sane () =
  let sys = mesh_system ~rows:4 ~cols:4 ~ports:2 in
  let om = grid ~w_max:1e10 ~npts:9 in
  let plan = Sweep_engine.prepare ~template:{ Complex.re = 0.0; im = om.(0) } sys in
  let _, st = Sweep_engine.sweep_stats ~workers:2 ~oversubscribe:true plan om in
  Alcotest.(check int) "points" 9 st.Sweep_engine.points;
  Alcotest.(check int) "workers" 2 st.Sweep_engine.workers;
  Alcotest.(check int) "busy per worker" 2 (Array.length st.Sweep_engine.busy_s);
  let u = Sweep_engine.utilisation st in
  if u < 0.0 || u > 1.0 then Alcotest.failf "utilisation %g out of [0,1]" u;
  match Sweep_engine.tier plan with
  | Sweep_engine.Replay -> ()
  | Sweep_engine.Hessenberg -> Alcotest.fail "sparse mesh should take the replay tier"

(* fold visits every point exactly once, in grid order, at any worker
   count *)
let test_fold_order () =
  let sys = mesh_system ~rows:3 ~cols:3 ~ports:1 in
  let om = grid ~w_max:1e10 ~npts:150 in
  let plan = Sweep_engine.prepare ~template:{ Complex.re = 0.0; im = om.(0) } sys in
  let seen =
    Sweep_engine.fold ~workers:3 ~oversubscribe:true plan om ~init:[] ~f:(fun acc k _ ->
        k :: acc)
  in
  Alcotest.(check (list int)) "grid order" (List.init 150 (fun i -> 149 - i)) seen

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_worker_invariance;
      prop_sweep_equals_eval_map;
      prop_freq_sweep_worker_invariant;
      prop_worker_invariance_dense;
      prop_engine_matches_naive;
      prop_hessenberg_matches_dense;
      prop_stream_equals_array;
    ]

let () =
  Alcotest.run "pmtbr_sweep"
    [
      ("determinism+accuracy", props);
      ( "hessenberg",
        [
          Alcotest.test_case "pmtbr rom" `Quick test_hessenberg_on_pmtbr_rom;
          Alcotest.test_case "singular E" `Quick test_hessenberg_singular_e;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "compare_sweep == arrays" `Quick test_compare_sweep_matches_arrays;
          Alcotest.test_case "length mismatch raises" `Quick test_length_mismatch_raises;
          Alcotest.test_case "shape mismatch raises" `Quick test_shape_mismatch_raises;
        ] );
      ( "engine",
        [
          Alcotest.test_case "empty sweep" `Quick test_empty_sweep;
          Alcotest.test_case "stats sane" `Quick test_sweep_stats_sane;
          Alcotest.test_case "fold order" `Quick test_fold_order;
        ] );
    ]
