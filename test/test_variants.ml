(* Tests for the unified sample-source pipeline: each cache source
   assembles bitwise-identically to its retained Zmat one-shot reference,
   the cached variants (cross-Gramian, input-correlated, multipoint)
   reproduce their pre-cache pipelines, the adaptive loops are batch- and
   worker-invariant, and regressions for the satellite fixes (Time_sampled
   snapshot selection, Error_est.curve). *)

open Pmtbr_la
open Pmtbr_circuit
open Pmtbr_lti
open Pmtbr_signal
open Pmtbr_core

let mesh_system ~rows ~cols ~ports = Dss.of_netlist (Rc_mesh.generate ~rows ~cols ~ports ())

let bitwise_equal (a : Mat.t) (b : Mat.t) =
  a.Mat.rows = b.Mat.rows && a.Mat.cols = b.Mat.cols && a.Mat.data = b.Mat.data

(* Extend a cache in chunks of [batch] to exercise batch boundaries. *)
let extend_batched cache (pts : Sampling.point array) ~batch =
  let n = Array.length pts in
  let consumed = ref 0 in
  while !consumed < n do
    let k = min batch (n - !consumed) in
    Sample_cache.extend cache (Array.sub pts !consumed k);
    consumed := !consumed + k
  done

let extend_rhs_batched cache (entries : (Sampling.point * Mat.t) array) ~batch =
  let n = Array.length entries in
  let consumed = ref 0 in
  while !consumed < n do
    let k = min batch (n - !consumed) in
    Sample_cache.extend_rhs cache (Array.sub entries !consumed k);
    consumed := !consumed + k
  done

(* A deterministic non-trivial fixed right-hand side for a system. *)
let make_rhs sys ~cols =
  let n = Dss.order sys in
  Mat.init n cols (fun i j -> sin (float_of_int ((i + 1) * (j + 2))) /. float_of_int (n + j + 1))

(* Per-point right-hand sides derived from the rng stream. *)
let make_per_point sys (pts : Sampling.point array) ~seed =
  let rng = Rng.create seed in
  let n = Dss.order sys in
  Array.map
    (fun p ->
      let col = Array.init n (fun _ -> Rng.uniform rng ~lo:(-1.0) ~hi:1.0) in
      (p, Mat.init n 1 (fun i _ -> col.(i))))
    pts

(* ------------------------------------------------------------------ *)
(* Cache sources vs their Zmat one-shot references (bitwise)           *)
(* ------------------------------------------------------------------ *)

let prop_fixed_rhs_matches_zmat =
  QCheck2.Test.make ~name:"Fixed_rhs source == Zmat.build_rhs (bitwise)" ~count:8
    QCheck2.Gen.(tup4 (int_range 3 5) (int_range 3 9) (int_range 1 4) (int_range 1 3))
    (fun (dim, npts, batch, rhs_cols) ->
      let sys = mesh_system ~rows:dim ~cols:dim ~ports:2 in
      let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:npts in
      let rhs = make_rhs sys ~cols:rhs_cols in
      let cache = Sample_cache.create ~workers:1 ~source:(Sample_cache.Fixed_rhs rhs) sys in
      extend_batched cache pts ~batch;
      bitwise_equal (Sample_cache.assemble cache ~scale:1.0) (Zmat.build_rhs ~workers:1 sys ~rhs pts))

let prop_observability_matches_zmat =
  QCheck2.Test.make ~name:"Observability source == Zmat.build_left (bitwise)" ~count:8
    QCheck2.Gen.(tup4 (int_range 3 5) (int_range 3 9) (int_range 1 4) (int_range 1 3))
    (fun (dim, npts, batch, workers) ->
      let sys = mesh_system ~rows:dim ~cols:dim ~ports:2 in
      let pts = Sampling.points (Sampling.Log { w_min = 1e6; w_max = 1e10 }) ~count:npts in
      let cache =
        Sample_cache.create ~workers ~oversubscribe:true ~source:Sample_cache.Observability sys
      in
      extend_batched cache pts ~batch;
      bitwise_equal (Sample_cache.assemble cache ~scale:1.0) (Zmat.build_left ~workers:1 sys pts))

let prop_per_point_matches_zmat =
  QCheck2.Test.make ~name:"Per_point source == Zmat.build_per_point (bitwise)" ~count:8
    QCheck2.Gen.(tup4 (int_range 3 5) (int_range 3 9) (int_range 1 4) (int_range 2 4))
    (fun (dim, npts, batch, workers) ->
      let sys = mesh_system ~rows:dim ~cols:dim ~ports:2 in
      let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:npts in
      let entries = make_per_point sys pts ~seed:(dim + npts) in
      let cache =
        Sample_cache.create ~workers ~oversubscribe:true ~source:Sample_cache.Per_point sys
      in
      extend_rhs_batched cache entries ~batch;
      bitwise_equal
        (Sample_cache.assemble cache ~scale:1.0)
        (Zmat.build_per_point ~workers:1 sys (Array.to_list entries)))

(* ------------------------------------------------------------------ *)
(* Cross-Gramian: compressed pencil vs dense reference                 *)
(* ------------------------------------------------------------------ *)

let leading_mags evs =
  let m = Array.map Complex.norm evs in
  Array.sort (fun a b -> compare b a) m;
  m

let test_cross_compressed_matches_dense () =
  let sys = mesh_system ~rows:7 ~cols:7 ~ports:2 in
  let pts = Sampling.points (Sampling.Uniform { w_max = 2e10 }) ~count:12 in
  let dense = Cross_gramian.reduce ~order:8 ~workers:1 sys pts in
  let cached, st = Cross_gramian.reduce_cached_stats ~order:8 ~workers:1 sys pts in
  Alcotest.(check int) "solves == points" st.Sample_cache.points st.Sample_cache.solves;
  Alcotest.(check int) "one solve per point per side" (2 * Array.length pts)
    st.Sample_cache.solves;
  Alcotest.(check int) "same model order" dense.Cross_gramian.basis.Mat.cols
    cached.Cross_gramian.basis.Mat.cols;
  let md = leading_mags dense.Cross_gramian.eigenvalues in
  let mc = leading_mags cached.Cross_gramian.eigenvalues in
  let magmax = Float.max md.(0) 1e-300 in
  for i = 0 to min 7 (min (Array.length md) (Array.length mc) - 1) do
    if Float.abs (md.(i) -. mc.(i)) /. magmax > 1e-8 then
      Alcotest.failf "pencil eigenvalue %d disagrees: dense %g vs compressed %g" i md.(i) mc.(i)
  done;
  (* the two bases must span the same dominant subspace: projecting one
     onto the other loses (almost) nothing *)
  let d = dense.Cross_gramian.basis and c = cached.Cross_gramian.basis in
  let proj = Mat.mul (Mat.transpose d) c in
  let frob m = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 m.Mat.data) in
  let lost = Float.abs (frob proj -. sqrt (float_of_int c.Mat.cols)) in
  if lost > 1e-6 then Alcotest.failf "bases span different subspaces (defect %g)" lost

let prop_cross_adaptive_invariant =
  QCheck2.Test.make ~name:"adaptive cross-Gramian batch/worker-invariant (bitwise)" ~count:6
    QCheck2.Gen.(tup3 (int_range 3 5) (int_range 2 7) (int_range 2 4))
    (fun (dim, batch, workers) ->
      let sys = mesh_system ~rows:dim ~cols:dim ~ports:2 in
      let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:10 in
      (* converge_tol < 0 never converges, forcing full consumption so
         every batch split ends on the same sample set *)
      let run ~batch ~workers =
        Cross_gramian.reduce_adaptive ~batch ~converge_tol:(-1.0) ~workers sys pts
      in
      let reference = run ~batch:3 ~workers:1 in
      let other = run ~batch ~workers in
      reference.Cross_gramian.samples = other.Cross_gramian.samples
      && bitwise_equal reference.Cross_gramian.basis other.Cross_gramian.basis)

(* ------------------------------------------------------------------ *)
(* Input-correlated: cache pipeline vs inline Zmat reference           *)
(* ------------------------------------------------------------------ *)

let correlated_fixture ~ports ~seed =
  let sys = mesh_system ~rows:5 ~cols:5 ~ports in
  let bank = Waveform.dithered_square_bank ~rng:(Rng.create seed) ~ports ~period:1e-9 ~dither:0.1 in
  let waves = Array.map (fun w t -> 1e-3 *. w t) bank in
  let inputs = Waveform.sample_matrix waves ~t0:0.0 ~t1:4e-9 ~samples:200 in
  let points = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:6 in
  (sys, inputs, points)

(* Replicate the draw sequence of [Input_correlated.reduce] through the
   public signal API and push it through the retained one-shot reference
   path; the cache pipeline must match bitwise. *)
let test_correlated_matches_reference () =
  let sys, inputs, points = correlated_fixture ~ports:4 ~seed:3 in
  let seed = 17 and draws = 15 in
  let r = Input_correlated.reduce ~order:10 ~seed ~workers:1 sys ~inputs ~points ~draws in
  let rng = Rng.create seed in
  let basis = Correlation.truncate ~tol:1e-6 (Correlation.analyse inputs) in
  let b = Dss.b_matrix sys in
  let entries =
    let out = ref [] in
    for k = 0 to draws - 1 do
      let p = points.(k mod Array.length points) in
      let bd = Mat.mv b (Correlation.draw_direction ~rng basis) in
      out := (p, Mat.init (Array.length bd) 1 (fun i _ -> bd.(i))) :: !out
    done;
    List.rev !out
  in
  let zw = Zmat.build_per_point ~workers:1 sys entries in
  let reference = Pmtbr.of_basis sys ~zw ~order:10 ~samples:draws () in
  Alcotest.(check bool) "basis == one-shot reference (bitwise)" true
    (bitwise_equal r.Input_correlated.basis reference.Pmtbr.basis);
  Alcotest.(check bool) "singular values identical" true
    (r.Input_correlated.singular_values = reference.Pmtbr.singular_values)

let test_deterministic_matches_reference () =
  let sys, inputs, points = correlated_fixture ~ports:4 ~seed:9 in
  let r, st =
    Input_correlated.reduce_deterministic_stats ~order:10 ~workers:1 sys ~inputs ~points
  in
  Alcotest.(check int) "solves == points" st.Sample_cache.points st.Sample_cache.solves;
  Alcotest.(check int) "one solve per frequency point" (Array.length points)
    st.Sample_cache.solves;
  let basis = Correlation.truncate ~tol:1e-6 (Correlation.analyse inputs) in
  let dirs = basis.Correlation.directions in
  let rhs =
    Mat.mul (Dss.b_matrix sys)
      (Mat.init dirs.Mat.rows dirs.Mat.cols
         (fun i j -> Mat.get dirs i j *. basis.Correlation.sigmas.(j)))
  in
  let zw = Zmat.build_rhs ~workers:1 sys ~rhs points in
  let reference = Pmtbr.of_basis sys ~zw ~order:10 ~samples:(Array.length points) () in
  Alcotest.(check bool) "basis == one-shot reference (bitwise)" true
    (bitwise_equal r.Input_correlated.basis reference.Pmtbr.basis)

let prop_correlated_adaptive_invariant =
  QCheck2.Test.make ~name:"adaptive input-correlated batch/worker-invariant (bitwise)" ~count:6
    QCheck2.Gen.(tup2 (int_range 2 7) (int_range 2 4))
    (fun (batch, workers) ->
      let sys, inputs, points = correlated_fixture ~ports:4 ~seed:5 in
      let run ~batch ~workers =
        Input_correlated.reduce_adaptive_stats ~seed:23 ~batch ~converge_tol:(-1.0) ~workers sys
          ~inputs ~points ~max_draws:14
      in
      let reference, st_ref = run ~batch:3 ~workers:1 in
      let other, st = run ~batch ~workers in
      st_ref.Sample_cache.solves = st_ref.Sample_cache.points
      && st.Sample_cache.solves = st.Sample_cache.points
      && reference.Input_correlated.samples = other.Input_correlated.samples
      && bitwise_equal reference.Input_correlated.basis other.Input_correlated.basis)

(* ------------------------------------------------------------------ *)
(* Multipoint and plain PMTBR through the cache                         *)
(* ------------------------------------------------------------------ *)

let test_multipoint_stats () =
  let sys = mesh_system ~rows:5 ~cols:5 ~ports:2 in
  let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:8 in
  let r, st = Multipoint.reduce_stats ~workers:1 sys pts ~count:5 in
  Alcotest.(check int) "solves == points" st.Sample_cache.points st.Sample_cache.solves;
  Alcotest.(check int) "count points consumed" 5 st.Sample_cache.points;
  Alcotest.(check int) "samples reported" 5 r.Multipoint.samples;
  Alcotest.check_raises "count out of range"
    (Invalid_argument "Multipoint.reduce: count 9 out of range [1, 8]") (fun () ->
      ignore (Multipoint.reduce ~workers:1 sys pts ~count:9))

let test_pmtbr_stats () =
  let sys = mesh_system ~rows:5 ~cols:5 ~ports:2 in
  let pts = Sampling.points (Sampling.Uniform { w_max = 1e10 }) ~count:10 in
  let direct = Pmtbr.reduce ~order:8 ~workers:1 sys pts in
  let cached, st = Pmtbr.reduce_stats ~order:8 ~workers:1 sys pts in
  Alcotest.(check int) "solves == points" st.Sample_cache.points st.Sample_cache.solves;
  Alcotest.(check int) "all points solved" (Array.length pts) st.Sample_cache.solves;
  Alcotest.(check int) "same model order" (Dss.order direct.Pmtbr.rom)
    (Dss.order cached.Pmtbr.rom);
  (* the state-dimension SVD returns min(n, cols) values, the small-factor
     SVD all cols; the shared prefix must agree *)
  let sd = direct.Pmtbr.singular_values and sc = cached.Pmtbr.singular_values in
  let smax = Float.max sd.(0) 1e-300 in
  for i = 0 to min (Array.length sd) (Array.length sc) - 1 do
    if Float.abs (sd.(i) -. sc.(i)) /. smax > 1e-10 then
      Alcotest.failf "singular value %d drifts: %g vs %g" i sd.(i) sc.(i)
  done

(* ------------------------------------------------------------------ *)
(* Satellite regressions: Error_est.curve and Time_sampled             *)
(* ------------------------------------------------------------------ *)

(* The O(n) reverse cumulative sum must match the old per-order summation
   (to roundoff: the summation order changed). *)
let prop_error_curve_matches_quadratic =
  QCheck2.Test.make ~name:"Error_est.curve == per-order tail sums" ~count:50
    QCheck2.Gen.(list_size (int_range 1 60) (float_range 0.0 10.0))
    (fun values ->
      let sigma = Array.of_list (List.sort (fun a b -> compare b a) values) in
      let n = Array.length sigma in
      let curve = Error_est.curve sigma in
      let ok = ref (Array.length curve = n + 1) in
      for q = 0 to n do
        let tail = ref 0.0 in
        for i = q to n - 1 do
          tail := !tail +. sigma.(i)
        done;
        let expect = 2.0 *. !tail in
        let denom = Float.max (Float.abs expect) 1e-300 in
        if Float.abs (curve.(q) -. expect) /. denom > 1e-12 && expect > 0.0 then ok := false;
        if expect = 0.0 && curve.(q) <> 0.0 then ok := false
      done;
      !ok)

let test_time_sampled_snapshot_count () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:10 ()) in
  let u _ = [| 1e-3 |] in
  let r = Time_sampled.reduce ~order:4 sys ~u ~t1:10e-9 ~dt:0.05e-9 ~snapshots:23 in
  Alcotest.(check int) "keeps exactly the requested count" 23 r.Time_sampled.snapshots;
  (* more snapshots than steps: clamped to the step count *)
  let r = Time_sampled.reduce ~order:4 sys ~u ~t1:0.5e-9 ~dt:0.1e-9 ~snapshots:100 in
  Alcotest.(check bool) "clamped to steps" true (r.Time_sampled.snapshots <= 7)

let test_time_sampled_invalid_args () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:5 ()) in
  let u _ = [| 1e-3 |] in
  Alcotest.check_raises "snapshots < 2"
    (Invalid_argument "Time_sampled.reduce: snapshots must be >= 2") (fun () ->
      ignore (Time_sampled.reduce sys ~u ~t1:1e-9 ~dt:0.1e-9 ~snapshots:1));
  Alcotest.check_raises "dt > t1" (Invalid_argument "Time_sampled.reduce: need 0 < dt <= t1")
    (fun () -> ignore (Time_sampled.reduce sys ~u ~t1:1e-9 ~dt:2e-9 ~snapshots:10));
  Alcotest.check_raises "dt <= 0" (Invalid_argument "Time_sampled.reduce: need 0 < dt <= t1")
    (fun () -> ignore (Time_sampled.reduce sys ~u ~t1:1e-9 ~dt:0.0 ~snapshots:10))

(* ------------------------------------------------------------------ *)

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "pmtbr_variants"
    [
      ( "cache_sources",
        qsuite
          [
            prop_fixed_rhs_matches_zmat;
            prop_observability_matches_zmat;
            prop_per_point_matches_zmat;
          ] );
      ( "cross_gramian",
        Alcotest.test_case "compressed matches dense" `Quick test_cross_compressed_matches_dense
        :: qsuite [ prop_cross_adaptive_invariant ] );
      ( "input_correlated",
        Alcotest.test_case "cache matches one-shot reference" `Quick
          test_correlated_matches_reference
        :: Alcotest.test_case "deterministic matches reference" `Quick
             test_deterministic_matches_reference
        :: qsuite [ prop_correlated_adaptive_invariant ] );
      ( "cache_stats",
        [
          Alcotest.test_case "multipoint counters" `Quick test_multipoint_stats;
          Alcotest.test_case "pmtbr one-shot counters" `Quick test_pmtbr_stats;
        ] );
      ( "satellites",
        Alcotest.test_case "snapshot count" `Quick test_time_sampled_snapshot_count
        :: Alcotest.test_case "snapshot invalid args" `Quick test_time_sampled_invalid_args
        :: qsuite [ prop_error_curve_matches_quadratic ] );
    ]
