.PHONY: all build test check bench bench-adaptive bench-variants bench-dense bench-sweep bench-lyap bench-serve bench-export bench-hier clean

all: build

build:
	dune build @all

test:
	dune runtest

# the full CI gate: build + every suite + determinism re-check
check:
	sh bin/ci.sh

# regenerate BENCH_shift.json (fails if the rc-mesh speedup gate regresses)
bench:
	dune exec bench/shift_bench.exe

# regenerate BENCH_adaptive.json (fails if the incremental adaptive loop
# drops below 3x over the from-scratch baseline, or outputs diverge)
bench-adaptive:
	dune exec bench/adaptive_bench.exe

# regenerate BENCH_variants.json (fails if the cross-Gramian compressed
# pencil drops below 2x over the dense state-dimension QR, the spectra
# disagree, or any cached variant loses batch/worker determinism)
bench-variants:
	dune exec bench/variants_bench.exe

# regenerate BENCH_dense.json (fails if the kernel-layer SVD drops below
# 2x over the serial cyclic Jacobi on the 1089-state sample matrix, any
# dense kernel loses bitwise worker-invariance, or the round-robin
# singular values drift past 1e-12 relative of the cyclic reference)
bench-dense:
	dune exec bench/dense_bench.exe

# regenerate BENCH_sweep.json (fails if the sweep engine drops below 3x
# over the per-point fresh-factorisation path on the 1089-state mesh x
# 200-point grid, the sweep loses bitwise worker-invariance, or the
# Hessenberg ROM tier drifts past 1e-12 relative of the dense-LU
# reference)
bench-sweep:
	dune exec bench/sweep_bench.exe

# regenerate BENCH_lyap.json (fails if low-rank exact TBR drops below 5x
# over the dense Bartels-Stewart baseline on the 1089-state mesh, the
# Hankel values drift past 1e-8 relative of dense, the reduction loses
# bitwise worker-invariance, or more than one symbolic analysis is paid)
bench-lyap:
	dune exec bench/lyap_bench.exe

# regenerate BENCH_serve.json (fails if a warm repeat query through the
# daemon drops below 10x over the cold path, any incremental job misses
# its tier or re-pays solves/symbolic analyses, or a warm-path ROM is
# not bitwise-identical to the cold-path one)
bench-serve:
	dune exec bench/serve_bench.exe

# regenerate BENCH_export.json (fails if the one-Gramian passive
# reduction spends more than 0.55x the two-sided tbr-lr shifted-solve
# RHS columns on the 30-port substrate, the synthesized netlist's
# re-parsed sweep drifts past 1e-9 of the in-memory ROM, the rendering
# is not generation-stable, or the streaming-parse operand shrinks
# below 100k elements)
bench-export:
	dune exec bench/export_bench.exe

# regenerate BENCH_hier.json (fails if flat-vs-hier transfer agreement
# drifts past 1e-6, the over-capacity case misses its factorization
# budget, the recombined ROM is not bitwise worker-invariant, or — on
# hosts with >= 4 real cores — the hierarchical speedup at 4 workers
# drops below 2x; on fewer cores the speedup gate records a documented
# skip)
bench-hier:
	dune exec bench/hier_bench.exe

clean:
	dune clean
