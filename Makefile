.PHONY: all build test check bench bench-adaptive clean

all: build

build:
	dune build @all

test:
	dune runtest

# the full CI gate: build + every suite + determinism re-check
check:
	sh bin/ci.sh

# regenerate BENCH_shift.json (fails if the rc-mesh speedup gate regresses)
bench:
	dune exec bench/shift_bench.exe

# regenerate BENCH_adaptive.json (fails if the incremental adaptive loop
# drops below 3x over the from-scratch baseline, or outputs diverge)
bench-adaptive:
	dune exec bench/adaptive_bench.exe

clean:
	dune clean
