.PHONY: all build test check bench bench-adaptive bench-variants clean

all: build

build:
	dune build @all

test:
	dune runtest

# the full CI gate: build + every suite + determinism re-check
check:
	sh bin/ci.sh

# regenerate BENCH_shift.json (fails if the rc-mesh speedup gate regresses)
bench:
	dune exec bench/shift_bench.exe

# regenerate BENCH_adaptive.json (fails if the incremental adaptive loop
# drops below 3x over the from-scratch baseline, or outputs diverge)
bench-adaptive:
	dune exec bench/adaptive_bench.exe

# regenerate BENCH_variants.json (fails if the cross-Gramian compressed
# pencil drops below 2x over the dense state-dimension QR, the spectra
# disagree, or any cached variant loses batch/worker determinism)
bench-variants:
	dune exec bench/variants_bench.exe

clean:
	dune clean
