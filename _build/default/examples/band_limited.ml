(* Frequency-selective reduction of a multi-pin connector (paper Fig. 11).

     dune exec examples/band_limited.exe

   The connector model has resonances both inside and outside the 0-8 GHz
   band of interest.  Plain TBR spends its states on the largest features
   regardless of where they live; frequency-selective PMTBR samples only the
   band that matters and gets a smaller, more accurate in-band model. *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_core

let ghz w = w /. (2.0 *. Float.pi *. 1e9)

let () =
  let sys = Dss.of_netlist (Pmtbr_circuit.Connector.generate ()) in
  let w_band = Pmtbr_circuit.Connector.band_of_interest in
  Printf.printf "connector model: %d states; band of interest: DC - %.0f GHz\n"
    (Dss.order sys) (ghz w_band);

  (* Frequency-selective PMTBR: all samples inside the band. *)
  let bands = [ Freq_selective.band ~lo:0.0 ~hi:w_band ] in
  let pm = Freq_selective.reduce ~order:18 sys ~bands ~count:40 in
  Printf.printf "band-limited PMTBR model: %d states\n" (Dss.order pm.Pmtbr.rom);

  (* Exact TBR at substantially higher order, for comparison. *)
  let tbr = Tbr.reduce_dss ~order:30 sys in
  Printf.printf "TBR model: %d states\n" (Dss.order tbr.Tbr.rom);

  (* Compare inside the band... *)
  let om_in = Vec.linspace (w_band /. 40.0) w_band 40 in
  let href_in = Freq.sweep sys om_in in
  Printf.printf "in-band error:  PMTBR(18) %.2e   TBR(30) %.2e\n"
    (Freq.max_rel_error href_in (Freq.sweep pm.Pmtbr.rom om_in))
    (Freq.max_rel_error href_in (Freq.sweep tbr.Tbr.rom om_in));

  (* ...and outside it, where the PMTBR model never promised anything. *)
  let om_out = Vec.linspace w_band (2.5 *. w_band) 40 in
  let href_out = Freq.sweep sys om_out in
  Printf.printf "out-of-band error: PMTBR(18) %.2e   TBR(30) %.2e\n"
    (Freq.max_rel_error href_out (Freq.sweep pm.Pmtbr.rom om_out))
    (Freq.max_rel_error href_out (Freq.sweep tbr.Tbr.rom om_out));
  print_endline "(PMTBR trades out-of-band fidelity for in-band accuracy, by construction)"
