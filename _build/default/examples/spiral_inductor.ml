(* Spiral inductor with on-the-fly order control.

     dune exec examples/spiral_inductor.exe

   Shows the error-estimation workflow of paper Section V: run adaptive
   PMTBR until the trailing singular values converge, then compare the
   predicted error-versus-order curve against the measured one, and contrast
   with PRIMA (single-point moment matching), which converges slowly on the
   skin-effect resistance. *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_core

let () =
  let sys = Dss.of_netlist (Pmtbr_circuit.Spiral.generate ()) in
  let w_max = Pmtbr_circuit.Spiral.sample_band () in
  Printf.printf "spiral inductor model: %d states, band to %.2f GHz\n" (Dss.order sys)
    (w_max /. (2.0 *. Float.pi *. 1e9));

  (* Adaptive PMTBR: feed it a generous point budget; it stops early when
     the singular values have converged. *)
  let points = Sampling.points (Sampling.Uniform { w_max }) ~count:64 in
  let r = Pmtbr.reduce_adaptive ~tol:1e-9 ~batch:8 sys points in
  Printf.printf "adaptive PMTBR: used %d of 64 samples, produced %d states\n" r.Pmtbr.samples
    (Dss.order r.Pmtbr.rom);

  (* Error estimates from the singular values, before any validation. *)
  let estimates = Error_est.normalized_curve r.Pmtbr.singular_values in
  print_endline "order  predicted_error  measured_error";
  let omegas = Vec.linspace (w_max /. 100.0) w_max 50 in
  let href = Freq.sweep sys omegas in
  List.iter
    (fun q ->
      let m = Pmtbr.reduce ~order:q sys points in
      let measured = Freq.max_rel_error href (Freq.sweep m.Pmtbr.rom omegas) in
      Printf.printf "%5d  %.3e        %.3e\n" q estimates.(q) measured)
    [ 4; 6; 8; 10; 12 ];

  (* PRIMA needs noticeably higher order for the same resistance accuracy. *)
  let resistance_err rom = Freq.max_real_part_rel_error href (Freq.sweep rom omegas) in
  let pm10 = Pmtbr.reduce ~order:10 sys points in
  Printf.printf "resistance error at order 10: PMTBR %.2e" (resistance_err pm10.Pmtbr.rom);
  let pr10 = Prima.reduce_to_order sys ~s0:(w_max /. 20.0) ~order:10 in
  Printf.printf ", PRIMA %.2e\n" (resistance_err pr10.Prima.rom);
  let rec prima_order_for target q =
    if q > 40 then q
    else
      let p = Prima.reduce_to_order sys ~s0:(w_max /. 20.0) ~order:q in
      if resistance_err p.Prima.rom <= target then q else prima_order_for target (q + 2)
  in
  let target = resistance_err pm10.Pmtbr.rom in
  Printf.printf "PRIMA needs order %d to match PMTBR's order-10 resistance accuracy\n"
    (prima_order_for target 10)
