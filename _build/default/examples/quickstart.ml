(* Quickstart: reduce an RC interconnect model with PMTBR and check the
   result.

     dune exec examples/quickstart.exe

   Walks through the full pipeline: netlist -> MNA descriptor system ->
   PMTBR reduction with automatic order control -> validation against the
   unreduced model in both frequency and time domain. *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_core

let () =
  (* 1. Build a circuit: a 100-section RC line (201 states with its internal
     nodes), driven at one end. *)
  let netlist = Pmtbr_circuit.Rc_line.generate ~sections:100 ~r:5.0 ~c:0.5e-12 ~r_term:75.0 () in
  let sys = Dss.of_netlist netlist in
  Printf.printf "full model: %d states, %d port(s)\n" (Dss.order sys) (Dss.inputs sys);

  (* 2. Reduce with PMTBR: sample the band of interest (here DC to 5 Grad/s)
     and let the singular-value tolerance pick the order. *)
  let w_max = 5e9 in
  let points = Sampling.points (Sampling.Uniform { w_max }) ~count:25 in
  let result = Pmtbr.reduce ~tol:1e-10 sys points in
  Printf.printf "reduced model: %d states (from %d samples)\n"
    (Dss.order result.Pmtbr.rom) result.Pmtbr.samples;

  (* 3. The singular values of the sample matrix estimate the approximation
     error for every order, before any model is built. *)
  print_string "leading singular values: ";
  Array.iteri
    (fun i s -> if i < 8 then Printf.printf "%.2e " s)
    result.Pmtbr.singular_values;
  print_newline ();

  (* 4. Validate in the frequency domain. *)
  let omegas = Vec.linspace 0.0 w_max 50 in
  let err =
    Freq.max_rel_error (Freq.sweep sys omegas) (Freq.sweep result.Pmtbr.rom omegas)
  in
  Printf.printf "worst relative response error over the band: %.2e\n" err;

  (* 5. Validate in the time domain: drive with a 1 mA current step. *)
  let u t = [| (if t >= 0.0 then 1e-3 else 0.0) |] in
  let t1 = 20e-9 and dt = 0.02e-9 in
  let full = Tdsim.simulate sys ~t0:0.0 ~t1 ~dt ~u in
  let reduced = Tdsim.simulate result.Pmtbr.rom ~t0:0.0 ~t1 ~dt ~u in
  Printf.printf "worst transient error: %.2e V (signal peak %.3f V)\n"
    (Tdsim.output_error full reduced)
    (Mat.max_abs full.Tdsim.outputs);
  print_endline "done."
