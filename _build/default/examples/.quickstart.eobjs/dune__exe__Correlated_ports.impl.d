examples/correlated_ports.ml: Array Dss Float Input_correlated Mat Pmtbr_circuit Pmtbr_core Pmtbr_la Pmtbr_lti Pmtbr_signal Printf Rng Sampling Tbr Tdsim Waveform
