examples/spiral_inductor.ml: Array Dss Error_est Float Freq List Pmtbr Pmtbr_circuit Pmtbr_core Pmtbr_la Pmtbr_lti Prima Printf Sampling Vec
