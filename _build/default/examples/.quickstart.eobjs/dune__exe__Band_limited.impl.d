examples/band_limited.ml: Dss Float Freq Freq_selective Pmtbr Pmtbr_circuit Pmtbr_core Pmtbr_la Pmtbr_lti Printf Tbr Vec
