examples/quickstart.mli:
