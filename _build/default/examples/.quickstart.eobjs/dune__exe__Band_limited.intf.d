examples/band_limited.mli:
