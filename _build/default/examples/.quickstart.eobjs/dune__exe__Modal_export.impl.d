examples/modal_export.ml: Array Cmat Complex Dss Float Freq Freq_selective List Modal Moments Pmtbr Pmtbr_circuit Pmtbr_core Pmtbr_la Pmtbr_lti Printf Vec
