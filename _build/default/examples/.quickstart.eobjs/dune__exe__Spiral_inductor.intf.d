examples/spiral_inductor.mli:
