examples/modal_export.mli:
