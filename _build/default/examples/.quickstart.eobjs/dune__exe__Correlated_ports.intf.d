examples/correlated_ports.mli:
