examples/quickstart.ml: Array Dss Freq Mat Pmtbr Pmtbr_circuit Pmtbr_core Pmtbr_la Pmtbr_lti Printf Sampling Tdsim Vec
