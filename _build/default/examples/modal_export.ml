(* Exporting a reduced model in pole-residue form.

     dune exec examples/modal_export.exe

   After reduction, downstream behavioural simulators usually want the
   model as a rational function H(s) = sum R_i / (s - p_i) rather than as
   state-space matrices.  This example reduces the multi-pin connector,
   extracts the modal form, prints the dominant modes, and verifies the
   pole-residue reconstruction against the state-space model. *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_core

let ghz w = w /. (2.0 *. Float.pi *. 1e9)

let () =
  let sys = Dss.of_netlist (Pmtbr_circuit.Connector.generate ()) in
  let w_band = Pmtbr_circuit.Connector.band_of_interest in

  (* band-limited reduction to a compact model *)
  let r =
    Freq_selective.reduce ~order:14 sys
      ~bands:[ Freq_selective.band ~lo:0.0 ~hi:w_band ]
      ~count:36
  in
  Printf.printf "reduced %d -> %d states\n" (Dss.order sys) (Dss.order r.Pmtbr.rom);

  (* modal decomposition of the reduced model *)
  let modal = Modal.decompose r.Pmtbr.rom in
  Printf.printf "%d modes; dominant ones:\n" modal.Modal.order;
  print_endline "  f_res (GHz)   damping (1/ns)   |residue|";
  List.iter
    (fun { Modal.pole; residue } ->
      Printf.printf "  %9.3f   %12.4f   %.3e\n"
        (ghz (Float.abs pole.Complex.im))
        (-.pole.Complex.re /. 1e9)
        (Cmat.max_abs residue))
    (Modal.dominant ~count:6 modal);

  (* verify: the pole-residue sum reproduces the reduced model *)
  let worst = ref 0.0 in
  Array.iter
    (fun w ->
      let s = { Complex.re = 0.0; im = w } in
      let h1 = Cmat.get (Freq.eval r.Pmtbr.rom s) 0 0 in
      let h2 = Cmat.get (Modal.eval modal s) 0 0 in
      worst := Float.max !worst (Complex.norm (Complex.sub h1 h2) /. Complex.norm h1))
    (Vec.linspace (w_band /. 30.0) w_band 30);
  Printf.printf "pole-residue vs state-space worst relative mismatch: %.2e\n" !worst;

  (* sanity: every pole stable *)
  let unstable =
    List.exists (fun { Modal.pole; _ } -> pole.Complex.re > 0.0) modal.Modal.modes
  in
  Printf.printf "all poles stable: %b\n" (not unstable);

  (* moment check at the centre of the band: the reduced model reproduces
     the low-order moments of the full model *)
  let s0 = { Complex.re = w_band /. 10.0; im = 0.0 } in
  Printf.printf "relative mismatch of the first 2 moments at s0: %.2e\n"
    (Moments.mismatch sys r.Pmtbr.rom ~s0 ~count:2)
