(* Input-correlated reduction of a massively coupled parasitic network
   (paper Section VI-C).

     dune exec examples/correlated_ports.exe

   A 32-port RC mesh is driven by square waves that all derive from one
   clock (same period, dithered timing, per-port amplitude).  Exploiting
   that correlation lets a 15-state model do what plain TBR needs ~3x the
   states for - but only while the inputs stay inside the assumed class. *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_signal
open Pmtbr_core

let ports = 32
let period = 2e-9

let make_waves ~rng ~scrambled =
  let bank =
    if scrambled then Waveform.scrambled_square_bank ~rng ~ports ~period ~dither:0.1
    else Waveform.dithered_square_bank ~rng ~ports ~period ~dither:0.1
  in
  (* fixed per-port drive strengths, as signals from one block would have *)
  Array.map (fun w -> fun t -> 1e-3 *. w t) bank

let rms_all full red =
  let p = full.Tdsim.outputs.Mat.rows in
  let acc = ref 0.0 in
  for row = 0 to p - 1 do
    let e = Tdsim.output_rms_error ~row full red in
    acc := !acc +. (e *. e)
  done;
  sqrt (!acc /. float_of_int p)

let () =
  let sys =
    Dss.of_netlist (Pmtbr_circuit.Rc_mesh.generate ~rows:12 ~cols:12 ~ports ~r:100.0 ~r_leak:1e5 ())
  in
  Printf.printf "RC mesh: %d states, %d ports\n" (Dss.order sys) ports;

  (* sample the input class and build the input-correlated model *)
  let waves = make_waves ~rng:(Rng.create 7) ~scrambled:false in
  let inputs = Waveform.sample_matrix waves ~t0:0.0 ~t1:(4.0 *. period) ~samples:400 in
  let points =
    Sampling.points (Sampling.Uniform { w_max = 2.0 *. Float.pi *. 10.0 /. period }) ~count:12
  in
  let ic = Input_correlated.reduce ~order:15 ~input_tol:1e-3 sys ~inputs ~points ~draws:40 in
  Printf.printf "input-correlated PMTBR: %d states (kept %d input directions)\n"
    (Dss.order ic.Input_correlated.rom) ic.Input_correlated.input_rank;
  let tbr = Tbr.reduce_dss ~order:15 sys in

  (* simulate against in-class inputs *)
  let simulate waves s =
    Tdsim.simulate s ~t0:0.0 ~t1:10e-9 ~dt:0.02e-9 ~u:(fun t -> Array.map (fun w -> w t) waves)
  in
  let full = simulate waves sys in
  let scale = Mat.max_abs full.Tdsim.outputs in
  Printf.printf "in-class inputs:     IC-PMTBR(15) err %.2e,  TBR(15) err %.2e\n"
    (rms_all full (simulate waves ic.Input_correlated.rom) /. scale)
    (rms_all full (simulate waves tbr.Tbr.rom) /. scale);

  (* now drive it with inputs *outside* the assumed class *)
  let rogue = make_waves ~rng:(Rng.create 99) ~scrambled:true in
  let full' = simulate rogue sys in
  let scale' = Mat.max_abs full'.Tdsim.outputs in
  Printf.printf "out-of-class inputs: IC-PMTBR(15) err %.2e,  TBR(15) err %.2e\n"
    (rms_all full' (simulate rogue ic.Input_correlated.rom) /. scale')
    (rms_all full' (simulate rogue tbr.Tbr.rom) /. scale');
  print_endline "(the correlation advantage exists only inside the assumed input class)"
