(* Output helpers shared by the figure-regeneration benches. *)

let header fig title =
  Printf.printf "\n== %s: %s ==\n%!" fig title

let note fmt = Printf.ksprintf (fun s -> Printf.printf "# %s\n" s) fmt

let row cells = print_endline (String.concat "\t" cells)

let ghz omega = omega /. (2.0 *. Float.pi *. 1e9)

let fmt_g x = Printf.sprintf "%.4g" x
let fmt_e x = Printf.sprintf "%.3e" x

let time_it f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)
