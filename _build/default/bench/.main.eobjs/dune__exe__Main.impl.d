bench/main.ml: Ablate Array Figures List Micro Option Printf Sys Util
