bench/util.ml: Float Printf String Unix
