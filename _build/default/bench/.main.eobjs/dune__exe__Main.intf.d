bench/main.mli:
