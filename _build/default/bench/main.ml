(* Benchmark harness: regenerates every figure of the paper's evaluation
   (default), runs the Bechamel kernel micro-benchmarks (--micro), and the
   design-choice ablations (--ablate).

     dune exec bench/main.exe                 # all figures
     dune exec bench/main.exe -- --only fig11 # one figure
     dune exec bench/main.exe -- --micro      # kernel timings
     dune exec bench/main.exe -- --ablate     # ablation studies
     dune exec bench/main.exe -- --all        # everything *)

let usage () =
  print_endline "usage: main.exe [--only figN] [--micro] [--ablate] [--all] [--list]";
  print_endline "figures:";
  List.iter (fun (name, _) -> Printf.printf "  %s\n" name) Figures.all

let run_figures only =
  let chosen =
    match only with
    | None -> Figures.all
    | Some name -> List.filter (fun (n, _) -> n = name) Figures.all
  in
  if chosen = [] then begin
    Printf.eprintf "unknown figure %s\n" (Option.value only ~default:"");
    usage ();
    exit 1
  end;
  List.iter
    (fun (name, f) ->
      let (), dt = Util.time_it f in
      Printf.printf "# [%s completed in %.1f s]\n%!" name dt)
    chosen

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] -> run_figures None
  | [ "--list" ] -> usage ()
  | [ "--only"; name ] -> run_figures (Some name)
  | [ "--micro" ] -> Micro.run ()
  | [ "--ablate" ] -> Ablate.all ()
  | [ "--all" ] ->
      run_figures None;
      Ablate.all ();
      Micro.run ()
  | _ ->
      usage ();
      exit 1
