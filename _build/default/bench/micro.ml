(* Bechamel micro-benchmarks of the computational kernels behind the cost
   comparison of paper Section III-C: factorisations, solves, SVD, and the
   end-to-end reduction algorithms (TBR's O(n^3) vs PMTBR's q factorisations
   plus one SVD). *)

open Bechamel
open Toolkit
open Pmtbr_la
open Pmtbr_lti
open Pmtbr_core

let dense_matrix n =
  Mat.add (Mat.random ~seed:3 n n) (Mat.scale (float_of_int n) (Mat.identity n))

let mesh_sys rows cols ports = Dss.of_netlist (Pmtbr_circuit.Rc_mesh.generate ~rows ~cols ~ports ())

let substrate_pencil n =
  let nl = Pmtbr_circuit.Substrate.generate ~ports:n ~seed:5 () in
  let m = Pmtbr_circuit.Mna.stamp nl in
  Pmtbr_sparse.Shifted.pencil ~e:m.Pmtbr_circuit.Mna.e ~a:m.Pmtbr_circuit.Mna.a

let tests () =
  let a120 = dense_matrix 120 in
  let tall = Mat.random ~seed:7 300 60 in
  let sym120 = Mat.symmetrize (Mat.random ~seed:9 120 120) in
  let pencil300 = substrate_pencil 300 in
  let s_sample = { Complex.re = 0.0; im = Pmtbr_circuit.Substrate.corner_frequency () } in
  let mesh = mesh_sys 12 12 4 in
  let w_max = 1e10 in
  [
    Test.make ~name:"dense_lu_120" (Staged.stage (fun () -> ignore (Mat.lu a120)));
    Test.make ~name:"svd_300x60" (Staged.stage (fun () -> ignore (Svd.decompose tall)));
    Test.make ~name:"jacobi_eig_120" (Staged.stage (fun () -> ignore (Eig_sym.decompose sym120)));
    Test.make ~name:"sparse_complex_lu_substrate300"
      (Staged.stage (fun () -> ignore (Pmtbr_sparse.Shifted.factorize pencil300 s_sample)));
    Test.make ~name:"pmtbr_mesh144_20pts"
      (Staged.stage (fun () -> ignore (Pmtbr.reduce_uniform ~order:12 mesh ~w_max ~count:20)));
    Test.make ~name:"tbr_mesh144"
      (Staged.stage (fun () -> ignore (Tbr.reduce_dss ~order:12 mesh)));
    Test.make ~name:"prima_mesh144_3moments"
      (Staged.stage (fun () -> ignore (Prima.reduce mesh ~s0:(w_max /. 10.0) ~moments:3)));
  ]

let run () =
  print_endline "\n== MICRO: kernel and algorithm timings (Bechamel) ==";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) ~kde:None () in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let result = Analyze.one ols Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates result with
            | Some (t :: _) -> t
            | Some [] | None -> Float.nan
          in
          Printf.printf "%-36s %12.3f ms/run\n%!" (Test.Elt.name elt) (ns /. 1e6))
        (Test.elements test))
    (tests ())
