(* Tests for the extension modules: stability/passivity analysis, the
   SPICE-dialect reader/writer, the two-step PRIMA+TBR baseline, the
   time-sampled (POD) variant, RRQR order control, frequency weighting, and
   the extra circuit generators. *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_circuit
open Pmtbr_core

let check_small ?(tol = 1e-9) msg value =
  if Float.abs value > tol then Alcotest.failf "%s: |%.3e| > %g" msg value tol

let approx ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Stability / passivity                                               *)
(* ------------------------------------------------------------------ *)

let test_poles_one_pole () =
  (* single RC node: pole at -1/(RC) *)
  let nl = Netlist.create () in
  Netlist.add_r nl 1 0 2.0;
  Netlist.add_c nl 1 0 0.25;
  ignore (Netlist.add_port nl 1);
  let sys = Dss.of_netlist nl in
  let dense = Dss.of_dense ~e:(Dss.e_dense sys) ~a:(Dss.a_dense sys)
      ~b:(Dss.b_matrix sys) ~c:(Dss.c_matrix sys) in
  let p = Stability.poles dense in
  Alcotest.(check int) "one pole" 1 (Array.length p);
  approx ~tol:1e-9 "pole location" (-2.0) p.(0).Complex.re;
  check_small "pole imaginary" p.(0).Complex.im

let test_reduced_models_stable () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:25 ()) in
  let pm = Pmtbr.reduce_uniform ~order:8 sys ~w_max:3e9 ~count:20 in
  Alcotest.(check bool) "pmtbr rom stable" true (Stability.is_stable ~tol:1e-3 pm.Pmtbr.rom);
  let tbr = Tbr.reduce_dss ~order:8 sys in
  Alcotest.(check bool) "tbr rom stable" true (Stability.is_stable ~tol:1e-3 tbr.Tbr.rom)

let test_congruence_rc_certificate () =
  (* congruence projection of an RC system: E SPD, A NSD certified *)
  let sys = Dss.of_netlist (Rc_mesh.generate ~rows:5 ~cols:5 ~ports:2 ()) in
  let pm = Pmtbr.reduce_uniform ~order:6 sys ~w_max:1e10 ~count:12 in
  (match Stability.rc_structure_certificate pm.Pmtbr.rom with
  | Some true -> ()
  | Some false -> Alcotest.fail "congruence-reduced RC model lost its structure"
  | None -> Alcotest.fail "reduced RC model should be symmetric")

let test_passivity_of_rc_models () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:20 ()) in
  let pm = Pmtbr.reduce_uniform ~order:6 sys ~w_max:3e9 ~count:15 in
  let omegas = Vec.linspace 0.0 1e10 25 in
  let report = Stability.check_passivity pm.Pmtbr.rom ~omegas in
  if not report.Stability.passive then
    Alcotest.failf "RC congruence model not passive: worst %g at %g" report.Stability.worst
      report.Stability.worst_omega

let test_passivity_detects_active_system () =
  (* an artificial model with a negative resistance is not positive-real *)
  let a = Mat.of_arrays [| [| -1.0 |] |] in
  let b = Mat.of_arrays [| [| 1.0 |] |] in
  let c = Mat.of_arrays [| [| -2.0 |] |] in
  (* H(jw) = -2/(jw+1): Re part negative *)
  let sys = Dss.of_standard ~a ~b ~c in
  let report = Stability.check_passivity sys ~omegas:(Vec.linspace 0.0 10.0 11) in
  Alcotest.(check bool) "active flagged" false report.Stability.passive

let test_hermitian_min_eig () =
  (* H = diag(3, -1) is Hermitian; min eig of Hermitian part = -1 *)
  let h =
    Cmat.of_mat (Mat.of_arrays [| [| 3.0; 0.0 |]; [| 0.0; -1.0 |] |])
  in
  approx ~tol:1e-9 "min eig" (-1.0) (Stability.hermitian_part_min_eig h)

(* ------------------------------------------------------------------ *)
(* SPICE reader / writer                                               *)
(* ------------------------------------------------------------------ *)

let test_spice_values () =
  approx "plain" 12.5 (Spice.parse_value ~line:1 "12.5");
  approx "pico" 3e-12 (Spice.parse_value ~line:1 "3p");
  approx "nano" 1.5e-9 (Spice.parse_value ~line:1 "1.5n");
  approx "kilo" 2000.0 (Spice.parse_value ~line:1 "2k");
  approx "meg" 4.7e6 (Spice.parse_value ~line:1 "4.7meg");
  approx "exponent" 2.5e-3 (Spice.parse_value ~line:1 "2.5e-3");
  (try
     ignore (Spice.parse_value ~line:3 "abc");
     Alcotest.fail "expected Parse_error"
   with Spice.Parse_error (3, _) -> ())

let sample_deck =
  "* small RC divider\n\
   R1 in mid 1k\n\
   R2 mid 0 1k\n\
   C1 mid gnd 1p\n\
   .port in\n\
   .end\n"

let test_spice_parse () =
  let t = Spice.parse_string sample_deck in
  let nl = Spice.netlist t in
  let r, c, l, k = Netlist.stats nl in
  Alcotest.(check int) "resistors" 2 r;
  Alcotest.(check int) "caps" 1 c;
  Alcotest.(check int) "inductors" 0 l;
  Alcotest.(check int) "mutuals" 0 k;
  Alcotest.(check int) "ports" 1 (Netlist.port_count nl);
  (* DC input resistance = R1 + R2 = 2k *)
  let sys = Dss.of_netlist nl in
  let h = Freq.eval sys { Complex.re = 1.0; im = 0.0 } in
  approx ~tol:1e-3 "dc resistance" 2000.0 (Cmat.get h 0 0).Complex.re

let test_spice_mutual () =
  let deck = "L1 1 0 1n\nL2 2 0 4n\nK1 L1 L2 0.5\nC1 1 0 1p\nC2 2 0 1p\nR1 1 0 10\nR2 2 0 10\n.port 1\n" in
  let nl = Spice.netlist (Spice.parse_string deck) in
  let _, _, l, k = Netlist.stats nl in
  Alcotest.(check int) "two inductors" 2 l;
  Alcotest.(check int) "one mutual" 1 k

let test_spice_roundtrip () =
  let original = Spiral.generate ~segments:5 () in
  let text = Spice.to_string original in
  let reparsed = Spice.netlist (Spice.parse_string text) in
  (* responses must agree *)
  let s1 = Dss.of_netlist original and s2 = Dss.of_netlist reparsed in
  let om = Vec.linspace 1e8 1e10 9 in
  check_small ~tol:1e-9 "roundtrip response"
    (Freq.max_rel_error (Freq.sweep s1 om) (Freq.sweep s2 om))

let test_spice_errors () =
  let bad_cards = [ "R1 1 0"; "Q1 1 0 2"; ".port 1 2"; "K1 L9 L8 0.5" ] in
  List.iter
    (fun card ->
      try
        ignore (Spice.parse_string (card ^ "\n"));
        Alcotest.failf "expected Parse_error for %s" card
      with Spice.Parse_error _ -> ())
    bad_cards

(* ------------------------------------------------------------------ *)
(* Two-step PRIMA + TBR                                                *)
(* ------------------------------------------------------------------ *)

let test_two_step_accuracy () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:40 ()) in
  let r = Two_step.reduce sys ~s0:3e8 ~intermediate:20 ~order:8 () in
  Alcotest.(check int) "intermediate order" 20 r.Two_step.intermediate_order;
  Alcotest.(check bool) "final order <= 8" true (Dss.order r.Two_step.rom <= 8);
  let om = Vec.linspace 0.0 3e9 25 in
  let err = Freq.max_rel_error (Freq.sweep sys om) (Freq.sweep r.Two_step.rom om) in
  if err > 1e-4 then Alcotest.failf "two-step inaccurate: %g" err

let test_two_step_vs_pmtbr () =
  (* PMTBR in one pass should be at least as accurate as the two-step
     pipeline at equal final order *)
  let sys = Dss.of_netlist (Rc_line.generate ~sections:40 ()) in
  let om = Vec.linspace 0.0 3e9 25 in
  let href = Freq.sweep sys om in
  let two = Two_step.reduce sys ~s0:3e8 ~intermediate:16 ~order:6 () in
  let pm = Pmtbr.reduce_uniform ~order:6 sys ~w_max:3e9 ~count:25 in
  let e_two = Freq.max_rel_error href (Freq.sweep two.Two_step.rom om) in
  let e_pm = Freq.max_rel_error href (Freq.sweep pm.Pmtbr.rom om) in
  if e_pm > 10.0 *. e_two +. 1e-14 then
    Alcotest.failf "PMTBR much worse than two-step: %g vs %g" e_pm e_two

(* ------------------------------------------------------------------ *)
(* Time-sampled (POD)                                                  *)
(* ------------------------------------------------------------------ *)

let test_time_sampled_step_training () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:25 ()) in
  let u _ = [| 1e-3 |] in
  let r = Time_sampled.reduce ~order:8 sys ~u ~t1:20e-9 ~dt:0.02e-9 ~snapshots:100 in
  Alcotest.(check bool) "order <= 8" true (Dss.order r.Time_sampled.rom <= 8);
  (* the reduced model must reproduce the training trajectory *)
  let full = Tdsim.simulate sys ~t0:0.0 ~t1:20e-9 ~dt:0.02e-9 ~u in
  let red = Tdsim.simulate r.Time_sampled.rom ~t0:0.0 ~t1:20e-9 ~dt:0.02e-9 ~u in
  let scale = Mat.max_abs full.Tdsim.outputs in
  if Tdsim.output_error full red > 1e-3 *. scale then Alcotest.fail "POD training error too large"

let test_time_sampled_singular_values_decay () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:25 ()) in
  let u t = [| (if t > 0.0 then 1e-3 else 0.0) |] in
  let r = Time_sampled.reduce ~order:10 sys ~u ~t1:20e-9 ~dt:0.02e-9 ~snapshots:80 in
  let s = r.Time_sampled.singular_values in
  Alcotest.(check bool) "decays fast" true (s.(8) < 1e-4 *. s.(0))

(* ------------------------------------------------------------------ *)
(* RRQR order control and frequency weighting                          *)
(* ------------------------------------------------------------------ *)

let test_rrqr_adaptive () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:30 ()) in
  let pts = Sampling.points (Sampling.Uniform { w_max = 3e9 }) ~count:64 in
  let r = Pmtbr.reduce_adaptive_rrqr ~tol:1e-8 ~batch:8 sys pts in
  Alcotest.(check bool) "stops early" true (r.Pmtbr.samples < 64);
  let om = Vec.linspace 0.0 3e9 25 in
  let err = Freq.max_rel_error (Freq.sweep sys om) (Freq.sweep r.Pmtbr.rom om) in
  if err > 1e-5 then Alcotest.failf "rrqr-adaptive inaccurate: %g" err

let test_reweight_scales_weights () =
  let pts = Sampling.points (Sampling.Uniform { w_max = 10.0 }) ~count:5 in
  let doubled = Sampling.reweight (fun _ -> 2.0) pts in
  approx ~tol:1e-12 "mass doubled" (2.0 *. Sampling.total_weight pts)
    (Sampling.total_weight doubled)

let test_reweight_changes_emphasis () =
  (* weighting towards high frequency should change the leading basis
     direction measurably on a system with distinct frequency regimes *)
  let sys = Dss.of_netlist (Peec.generate ~cells:8 ()) in
  let w_max = Peec.sample_band () /. 2.0 in
  let pts = Sampling.points (Sampling.Uniform { w_max }) ~count:16 in
  let low = Sampling.reweight (fun w -> if w < w_max /. 2.0 then 1.0 else 1e-6) pts in
  let high = Sampling.reweight (fun w -> if w >= w_max /. 2.0 then 1.0 else 1e-6) pts in
  let b1 = (Pmtbr.reduce ~order:4 sys low).Pmtbr.basis in
  let b2 = (Pmtbr.reduce ~order:4 sys high).Pmtbr.basis in
  let angle = Subspace.max_angle b1 b2 in
  Alcotest.(check bool) "different subspaces" true (angle > 0.1)

(* ------------------------------------------------------------------ *)
(* H-infinity norm                                                     *)
(* ------------------------------------------------------------------ *)

let test_hinf_one_pole () =
  (* ||b c/(s + a)||_inf = |b c| / a, peak at omega = 0 *)
  let a = Mat.of_arrays [| [| -4.0 |] |] in
  let b = Mat.of_arrays [| [| 2.0 |] |] in
  let c = Mat.of_arrays [| [| 3.0 |] |] in
  approx ~tol:1e-3 "one pole" 1.5 (Hinf.norm ~a ~b ~c ())

let test_hinf_resonant () =
  (* second-order resonator x'' + 2 zeta w0 x' + w0^2 x = u, y = x:
     peak gain = 1 / (2 zeta w0^2 sqrt(1 - zeta^2)) *)
  let w0 = 3.0 and zeta = 0.05 in
  let a =
    Mat.of_arrays [| [| 0.0; 1.0 |]; [| -.(w0 *. w0); -2.0 *. zeta *. w0 |] |]
  in
  let b = Mat.of_arrays [| [| 0.0 |]; [| 1.0 |] |] in
  let c = Mat.of_arrays [| [| 1.0; 0.0 |] |] in
  let expect = 1.0 /. (2.0 *. zeta *. w0 *. w0 *. sqrt (1.0 -. (zeta *. zeta))) in
  let got = Hinf.norm ~rtol:1e-6 ~a ~b ~c () in
  if Float.abs (got -. expect) > 1e-3 *. expect then
    Alcotest.failf "resonator: %g vs %g" got expect

let test_hinf_unstable_raises () =
  let a = Mat.of_arrays [| [| 1.0 |] |] in
  let b = Mat.of_arrays [| [| 1.0 |] |] in
  let c = Mat.of_arrays [| [| 1.0 |] |] in
  (try
     ignore (Hinf.norm ~a ~b ~c ());
     Alcotest.fail "expected Unstable"
   with Hinf.Unstable -> ())

let test_glover_bound_exact () =
  (* the true H-infinity error of balanced truncation must sit between the
     (q+1)-th Hankel singular value and the Glover bound *)
  let sys = Dss.of_netlist (Rc_line.generate ~sections:25 ()) in
  let t = Tbr.reduce_dss ~order:5 sys in
  let err = Hinf.error_norm ~rtol:1e-5 sys t.Tbr.rom in
  let upper = Tbr.error_bound t.Tbr.hsv 5 in
  let lower = t.Tbr.hsv.(5) in
  if err > upper *. 1.001 then Alcotest.failf "Glover bound violated: %g > %g" err upper;
  if err < lower *. 0.999 then Alcotest.failf "below hsv lower bound: %g < %g" err lower

let test_hinf_matches_grid_peak () =
  (* cross-check the bisection against a dense frequency sweep *)
  let sys = Dss.of_netlist (Rc_line.generate ~sections:15 ()) in
  let a, b, c = Dss.to_standard sys in
  let hinf = Hinf.norm ~rtol:1e-6 ~a ~b ~c () in
  let grid_peak = ref 0.0 in
  Array.iter
    (fun w -> grid_peak := Float.max !grid_peak (Hinf.peak_gain ~a ~b ~c w))
    (Vec.linspace 0.0 1e11 400);
  if !grid_peak > hinf *. 1.001 then Alcotest.failf "grid %g exceeds hinf %g" !grid_peak hinf;
  if hinf > !grid_peak *. 1.1 then Alcotest.failf "hinf %g far above grid %g" hinf !grid_peak

(* ------------------------------------------------------------------ *)
(* Moments and modal form                                              *)
(* ------------------------------------------------------------------ *)

let test_moments_one_pole () =
  (* Z(s) = 1/(G + sC); at s0: m0 = 1/(G + s0 C), and the moment recurrence
     gives m_k = C_cap^k / (G + s0 C)^{k+1} *)
  let g = 0.01 and c = 1e-12 in
  let nl = Netlist.create () in
  Netlist.add_r nl 1 0 (1.0 /. g);
  Netlist.add_c nl 1 0 c;
  ignore (Netlist.add_port nl 1);
  let sys = Dss.of_netlist nl in
  let s0 = { Complex.re = 1e9; im = 0.0 } in
  let ms = Moments.at sys ~s0 ~count:3 in
  let denom = g +. (1e9 *. c) in
  List.iteri
    (fun k m ->
      let expect = (c ** float_of_int k) /. (denom ** float_of_int (k + 1)) in
      let got = (Cmat.get m 0 0).Complex.re in
      if Float.abs (got -. expect) > 1e-6 *. Float.abs expect then
        Alcotest.failf "moment %d: %g vs %g" k got expect)
    ms

let test_prima_matches_moments () =
  (* the defining property: PRIMA with k blocks matches k block moments *)
  let sys = Dss.of_netlist (Rc_line.generate ~sections:30 ()) in
  let s0 = 3e8 in
  let r = Prima.reduce sys ~s0 ~moments:3 in
  let mm = Moments.mismatch sys r.Prima.rom ~s0:{ Complex.re = s0; im = 0.0 } ~count:3 in
  if mm > 1e-7 then Alcotest.failf "PRIMA moment mismatch %g" mm;
  (* on this symmetric (RC, C = B^T) system the Galerkin projection in fact
     matches 2q = 6 moments; the 7th must NOT match, or the test is vacuous *)
  let mm6 = Moments.mismatch sys r.Prima.rom ~s0:{ Complex.re = s0; im = 0.0 } ~count:6 in
  if mm6 > 1e-10 then Alcotest.failf "symmetric system should match 6 moments: %g" mm6;
  let mm7 = Moments.mismatch sys r.Prima.rom ~s0:{ Complex.re = s0; im = 0.0 } ~count:7 in
  Alcotest.(check bool) "7th moment differs" true (mm7 > 1e-6)

let test_multipoint_matches_moment_at_each_point () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:20 ()) in
  let pts = Sampling.points (Sampling.Uniform { w_max = 2e9 }) ~count:4 in
  let r = Multipoint.reduce sys pts ~count:4 in
  Array.iter
    (fun p ->
      let mm = Moments.mismatch sys r.Multipoint.rom ~s0:p.Sampling.s ~count:1 in
      if mm > 1e-6 then Alcotest.failf "multipoint 0th moment mismatch %g" mm)
    pts

let test_modal_reconstructs_response () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:25 ()) in
  let r = Pmtbr.reduce_uniform ~order:8 sys ~w_max:3e9 ~count:20 in
  let modal = Modal.decompose r.Pmtbr.rom in
  Alcotest.(check int) "mode count" (Dss.order r.Pmtbr.rom) modal.Modal.order;
  List.iter
    (fun omega ->
      let s = { Complex.re = 0.0; im = omega } in
      let h_rom = Cmat.get (Freq.eval r.Pmtbr.rom s) 0 0 in
      let h_modal = Cmat.get (Modal.eval modal s) 0 0 in
      let err = Complex.norm (Complex.sub h_rom h_modal) /. Complex.norm h_rom in
      if err > 1e-6 then Alcotest.failf "modal mismatch %g at %g" err omega)
    [ 0.0; 5e8; 1.5e9; 3e9 ]

let test_modal_poles_stable () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:20 ()) in
  let r = Tbr.reduce_dss ~order:6 sys in
  let modal = Modal.decompose r.Tbr.rom in
  List.iter
    (fun { Modal.pole; _ } ->
      if pole.Complex.re > 0.0 then Alcotest.failf "unstable pole %g" pole.Complex.re)
    modal.Modal.modes

let test_modal_dominant () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:20 ()) in
  let r = Tbr.reduce_dss ~order:6 sys in
  let modal = Modal.decompose r.Tbr.rom in
  let top = Modal.dominant ~count:3 modal in
  Alcotest.(check int) "three dominant" 3 (List.length top);
  (* scores must be non-increasing *)
  let score { Modal.pole; residue } =
    Cmat.max_abs residue /. Float.abs pole.Complex.re
  in
  let scores = List.map score top in
  (match scores with
  | [ a; b; c ] ->
      Alcotest.(check bool) "sorted" true (a >= b && b >= c)
  | _ -> Alcotest.fail "unexpected")

(* ------------------------------------------------------------------ *)
(* LQG balanced truncation                                             *)
(* ------------------------------------------------------------------ *)

let test_lqg_characteristic_values () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:15 ()) in
  let a, b, c = Dss.to_standard sys in
  let cv = Lqg.characteristic_values ~a ~b ~c () in
  Array.iteri
    (fun i s ->
      if s < 0.0 then Alcotest.fail "negative characteristic value";
      if i > 0 && s > cv.(i - 1) +. 1e-12 then Alcotest.fail "not descending")
    cv

let test_lqg_exact_at_full_order () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:10 ()) in
  let r = Lqg.reduce_dss ~order:11 sys in
  let om = Vec.linspace 0.0 3e9 15 in
  let err = Freq.max_rel_error (Freq.sweep sys om) (Freq.sweep r.Lqg.rom om) in
  if err > 1e-6 then Alcotest.failf "full-order LQG not exact: %g" err

let test_lqg_reduction_accuracy () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:25 ()) in
  let r = Lqg.reduce_dss ~order:8 sys in
  Alcotest.(check bool) "order" true (Dss.order r.Lqg.rom <= 8);
  Alcotest.(check bool) "stable" true (Stability.is_stable ~tol:1e-3 r.Lqg.rom);
  let om = Vec.linspace 0.0 3e9 20 in
  let err = Freq.max_rel_error (Freq.sweep sys om) (Freq.sweep r.Lqg.rom om) in
  if err > 1e-2 then Alcotest.failf "LQG order-8 error %g" err

(* ------------------------------------------------------------------ *)
(* New generators                                                      *)
(* ------------------------------------------------------------------ *)

let test_coupled_bus_structure () =
  let nl = Coupled_bus.generate ~lines:3 ~sections:10 () in
  let sys = Dss.of_netlist nl in
  Alcotest.(check int) "ports = lines" 3 (Dss.inputs sys);
  Alcotest.(check int) "states" (3 * 11) (Dss.order sys)

let test_coupled_bus_crosstalk () =
  (* injecting on line 0 must produce a response on line 1 (coupling), and
     a larger one on line 0 itself *)
  let sys = Dss.of_netlist (Coupled_bus.generate ()) in
  let w = Coupled_bus.bandwidth () in
  let h = Freq.eval_jw sys (w /. 2.0) in
  let self = Complex.norm (Cmat.get h 0 0) in
  let xtalk = Complex.norm (Cmat.get h 1 0) in
  Alcotest.(check bool) "crosstalk nonzero" true (xtalk > 1e-6 *. self);
  Alcotest.(check bool) "self dominates" true (self > xtalk)

let test_tline_dc_and_delay () =
  let nl = Tline.generate ~cells:20 () in
  let sys = Dss.of_netlist nl in
  (* DC input resistance: series R + termination (leak is ~1 Mohm each) *)
  let h = Freq.eval sys { Complex.re = 10.0; im = 0.0 } in
  let dc = (Cmat.get h 0 0).Complex.re in
  let expect = (20.0 *. 0.5) +. 50.0 in
  if Float.abs (dc -. expect) > 2.0 then Alcotest.failf "dc %.2f vs %.2f" dc expect;
  (* the matched line input impedance is ~z0 in the valid band *)
  let z0 = Tline.z0 () in
  let w = Tline.valid_band () /. 3.0 in
  let zin = Complex.norm (Cmat.get (Freq.eval_jw sys w) 0 0) in
  if Float.abs (zin -. z0) > 0.5 *. z0 then
    Alcotest.failf "matched input impedance %.1f far from z0 %.1f" zin z0

let test_tline_reducible () =
  let sys = Dss.of_netlist (Tline.generate ~cells:25 ()) in
  let w_max = Tline.valid_band () /. 2.0 in
  let r = Pmtbr.reduce_uniform ~order:20 sys ~w_max ~count:30 in
  let om = Vec.linspace (w_max /. 100.0) w_max 40 in
  let err = Freq.max_rel_error (Freq.sweep sys om) (Freq.sweep r.Pmtbr.rom om) in
  if err > 1e-3 then Alcotest.failf "tline order-20 error %g" err

let props =
  [
    QCheck2.Test.make ~name:"spice roundtrip preserves element counts" ~count:20
      QCheck2.Gen.(pair (int_range 2 8) (int_range 0 1000))
      (fun (segments, _seed) ->
        let nl = Spiral.generate ~segments () in
        let nl' = Spice.netlist (Spice.parse_string (Spice.to_string nl)) in
        Netlist.stats nl = Netlist.stats nl');
    QCheck2.Test.make ~name:"congruence-reduced RC meshes keep the certificate" ~count:10
      QCheck2.Gen.(pair (int_range 3 6) (int_range 2 5))
      (fun (n, q) ->
        let sys = Dss.of_netlist (Rc_mesh.generate ~rows:n ~cols:n ~ports:1 ()) in
        let r = Pmtbr.reduce_uniform ~order:q sys ~w_max:1e10 ~count:8 in
        Stability.rc_structure_certificate r.Pmtbr.rom = Some true);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "pmtbr_extensions"
    [
      ( "stability",
        [
          Alcotest.test_case "one-pole poles" `Quick test_poles_one_pole;
          Alcotest.test_case "reduced models stable" `Quick test_reduced_models_stable;
          Alcotest.test_case "rc certificate" `Quick test_congruence_rc_certificate;
          Alcotest.test_case "rc models passive" `Quick test_passivity_of_rc_models;
          Alcotest.test_case "active flagged" `Quick test_passivity_detects_active_system;
          Alcotest.test_case "hermitian min eig" `Quick test_hermitian_min_eig;
        ] );
      ( "spice",
        [
          Alcotest.test_case "values" `Quick test_spice_values;
          Alcotest.test_case "parse" `Quick test_spice_parse;
          Alcotest.test_case "mutual" `Quick test_spice_mutual;
          Alcotest.test_case "roundtrip" `Quick test_spice_roundtrip;
          Alcotest.test_case "errors" `Quick test_spice_errors;
        ] );
      ( "two_step",
        [
          Alcotest.test_case "accuracy" `Quick test_two_step_accuracy;
          Alcotest.test_case "vs pmtbr" `Quick test_two_step_vs_pmtbr;
        ] );
      ( "time_sampled",
        [
          Alcotest.test_case "step training" `Quick test_time_sampled_step_training;
          Alcotest.test_case "singular decay" `Quick test_time_sampled_singular_values_decay;
        ] );
      ( "order_control",
        [
          Alcotest.test_case "rrqr adaptive" `Quick test_rrqr_adaptive;
          Alcotest.test_case "reweight scales" `Quick test_reweight_scales_weights;
          Alcotest.test_case "reweight emphasis" `Quick test_reweight_changes_emphasis;
        ] );
      ( "hinf",
        [
          Alcotest.test_case "one pole" `Quick test_hinf_one_pole;
          Alcotest.test_case "resonator" `Quick test_hinf_resonant;
          Alcotest.test_case "unstable raises" `Quick test_hinf_unstable_raises;
          Alcotest.test_case "glover bound exact" `Quick test_glover_bound_exact;
          Alcotest.test_case "matches grid peak" `Quick test_hinf_matches_grid_peak;
        ] );
      ( "modal",
        [
          Alcotest.test_case "moments one pole" `Quick test_moments_one_pole;
          Alcotest.test_case "prima matches moments" `Quick test_prima_matches_moments;
          Alcotest.test_case "multipoint 0th moments" `Quick test_multipoint_matches_moment_at_each_point;
          Alcotest.test_case "modal reconstructs" `Quick test_modal_reconstructs_response;
          Alcotest.test_case "modal poles stable" `Quick test_modal_poles_stable;
          Alcotest.test_case "modal dominant" `Quick test_modal_dominant;
        ] );
      ( "lqg",
        [
          Alcotest.test_case "characteristic values" `Quick test_lqg_characteristic_values;
          Alcotest.test_case "exact at full order" `Quick test_lqg_exact_at_full_order;
          Alcotest.test_case "reduction accuracy" `Quick test_lqg_reduction_accuracy;
        ] );
      ( "generators",
        [
          Alcotest.test_case "coupled bus structure" `Quick test_coupled_bus_structure;
          Alcotest.test_case "coupled bus crosstalk" `Quick test_coupled_bus_crosstalk;
          Alcotest.test_case "tline dc and z0" `Quick test_tline_dc_and_delay;
          Alcotest.test_case "tline reducible" `Quick test_tline_reducible;
        ] );
      ("properties", props);
    ]
