test/test_signal.mli:
