test/test_sparse.ml: Alcotest Array Cmat Complex Csc Cvec Float List Mat Ordering Pmtbr_la Pmtbr_sparse QCheck2 QCheck_alcotest Shifted Sparse_lu Triplet Vec
