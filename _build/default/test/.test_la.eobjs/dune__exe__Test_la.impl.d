test/test_la.ml: Alcotest Array Chol Cmat Complex Cschur Cvec Eig_sym Float List Lyap Mat Pmtbr_la QCheck2 QCheck_alcotest Qr Riccati Subspace Svd Vec
