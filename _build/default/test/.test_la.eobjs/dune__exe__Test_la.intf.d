test/test_la.mli:
