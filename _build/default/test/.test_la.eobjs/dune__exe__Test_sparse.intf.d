test/test_sparse.mli:
