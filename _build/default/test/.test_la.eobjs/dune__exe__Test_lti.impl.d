test/test_lti.ml: Alcotest Array Cmat Complex Dss Eig_sym Float Freq Gramian List Lyap Mat Netlist Pmtbr_circuit Pmtbr_la Pmtbr_lti QCheck2 QCheck_alcotest Qr Rc_line Rc_mesh Spiral Tbr Tdsim Vec
