test/test_lti.mli:
