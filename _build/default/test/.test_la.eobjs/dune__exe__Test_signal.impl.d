test/test_signal.ml: Alcotest Array Correlation Eig_sym Float List Mat Pmtbr_la Pmtbr_signal QCheck2 QCheck_alcotest Qr Quad Rng Svd Vec Waveform
