(* Tests for the LTI toolkit: descriptor systems, frequency responses,
   Gramians, exact TBR, transient simulation. *)

open Pmtbr_la
open Pmtbr_lti
open Pmtbr_circuit

let check_small ?(tol = 1e-9) msg value =
  if Float.abs value > tol then Alcotest.failf "%s: |%.3e| > %g" msg value tol

let approx ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

(* single-node RC: port current in, R and C to ground: Z(s) = 1/(G + sC) *)
let one_pole ~r ~c =
  let nl = Netlist.create () in
  Netlist.add_r nl 1 0 r;
  Netlist.add_c nl 1 0 c;
  ignore (Netlist.add_port nl 1);
  Dss.of_netlist nl

let random_stable_sys ?(seed = 3) n p =
  let m = Mat.random ~seed n n in
  let mmt = Mat.mul m (Mat.transpose m) in
  let a = Mat.init n n (fun i j -> -.(Mat.get mmt i j /. float_of_int n) -. if i = j then 0.3 else 0.0) in
  let b = Mat.random ~seed:(seed + 1) n p in
  let c = Mat.random ~seed:(seed + 2) p n in
  (a, b, c)

(* ------------------------------------------------------------------ *)
(* Dss / Freq                                                          *)
(* ------------------------------------------------------------------ *)

let test_one_pole_impedance () =
  let r = 100.0 and c = 1e-12 in
  let sys = one_pole ~r ~c in
  List.iter
    (fun omega ->
      let h = Freq.eval_jw sys omega in
      let z = Cmat.get h 0 0 in
      let expect = Complex.div Complex.one { Complex.re = 1.0 /. r; im = omega *. c } in
      check_small ~tol:1e-9 "Z(jw)" (Complex.norm (Complex.sub z expect)))
    [ 0.0; 1e9; 1e10; 1e11 ]

let test_dense_vs_sparse_eval () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:15 ()) in
  let e = Dss.e_dense sys and a = Dss.a_dense sys in
  let dense = Dss.of_dense ~e ~a ~b:(Dss.b_matrix sys) ~c:(Dss.c_matrix sys) in
  List.iter
    (fun omega ->
      let h1 = Freq.eval_jw sys omega and h2 = Freq.eval_jw dense omega in
      check_small ~tol:1e-9 "dense = sparse" (Cmat.max_abs (Cmat.sub h1 h2)))
    [ 0.0; 1e8; 1e10 ]

let test_to_standard_preserves_response () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:12 ()) in
  let a, b, c = Dss.to_standard sys in
  let std = Dss.of_standard ~a ~b ~c in
  let om = Vec.linspace 0.0 1e10 7 in
  check_small ~tol:1e-7 "standard form response"
    (Freq.max_rel_error (Freq.sweep sys om) (Freq.sweep std om))

let test_symmetrize_rc_preserves_response () =
  let sys = Dss.of_netlist (Rc_mesh.generate ~rows:4 ~cols:4 ~ports:2 ()) in
  let ssym = Dss.symmetrize_rc sys in
  let om = Vec.linspace 0.0 1e10 7 in
  check_small ~tol:1e-9 "symmetrized response"
    (Freq.max_rel_error (Freq.sweep sys om) (Freq.sweep ssym om));
  (* and the symmetrized A must be symmetric with C = B^T *)
  let a = Dss.a_dense ssym in
  if not (Mat.is_symmetric a) then Alcotest.fail "A~ not symmetric";
  check_small "C~ = B~^T"
    (Mat.frobenius (Mat.sub (Dss.c_matrix ssym) (Mat.transpose (Dss.b_matrix ssym))))

let test_symmetrize_rejects_rlc () =
  let sys = Dss.of_netlist (Spiral.generate ~segments:4 ()) in
  (try
     ignore (Dss.symmetrize_rc sys);
     Alcotest.fail "expected Not_rc_like"
   with Dss.Not_rc_like -> ())

let test_projection_identity () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:10 ()) in
  let n = Dss.order sys in
  let rom = Dss.project_congruence sys (Mat.identity n) in
  let om = Vec.linspace 0.0 1e10 5 in
  check_small ~tol:1e-8 "identity projection"
    (Freq.max_rel_error (Freq.sweep sys om) (Freq.sweep rom om))

let test_oblique_projection_biorthogonal () =
  (* with W = V the oblique projection equals the congruence one *)
  let sys = Dss.of_netlist (Rc_line.generate ~sections:10 ()) in
  let v = Qr.orth (Mat.random ~seed:5 (Dss.order sys) 4) in
  let r1 = Dss.project_congruence sys v in
  let r2 = Dss.project_oblique sys ~w:v ~v in
  let om = Vec.linspace 0.0 1e10 5 in
  check_small ~tol:1e-9 "oblique = congruence when W = V"
    (Freq.max_abs_error (Freq.sweep r1 om) (Freq.sweep r2 om))

(* ------------------------------------------------------------------ *)
(* Gramians / TBR                                                      *)
(* ------------------------------------------------------------------ *)

let test_gramian_lyapunov_residuals () =
  let a, b, c = random_stable_sys 12 2 in
  let x = Gramian.controllability ~a ~b () in
  check_small ~tol:1e-7 "ctrb residual"
    (Lyap.lyapunov_residual a x (Mat.mul b (Mat.transpose b)));
  let y = Gramian.observability ~a ~c () in
  check_small ~tol:1e-7 "obsv residual"
    (Lyap.lyapunov_residual (Mat.transpose a) y (Mat.mul (Mat.transpose c) c))

let test_gramian_correlated_scales () =
  (* K = 4I quadruples the Gramian *)
  let a, b, _ = random_stable_sys ~seed:7 8 2 in
  let x1 = Gramian.controllability ~a ~b () in
  let k = Mat.scale 4.0 (Mat.identity 2) in
  let x4 = Gramian.controllability ~k ~a ~b () in
  check_small ~tol:1e-8 "K=4I" (Mat.frobenius (Mat.sub x4 (Mat.scale 4.0 x1)))

let test_hsv_descending_positive () =
  let a, b, c = random_stable_sys ~seed:11 10 2 in
  let hsv = Tbr.hankel_singular_values ~a ~b ~c () in
  Array.iteri
    (fun i s ->
      if s < 0.0 then Alcotest.fail "negative hsv";
      if i > 0 && s > hsv.(i - 1) +. 1e-12 then Alcotest.fail "hsv not descending")
    hsv

let test_tbr_exact_at_full_order () =
  let a, b, c = random_stable_sys ~seed:13 8 1 in
  let { Tbr.rom; _ } = Tbr.reduce ~order:8 ~a ~b ~c () in
  let sys = Dss.of_standard ~a ~b ~c in
  let om = Vec.linspace 0.0 5.0 9 in
  check_small ~tol:1e-6 "full order TBR is exact"
    (Freq.max_rel_error (Freq.sweep sys om) (Freq.sweep rom om))

let test_tbr_error_bound_holds () =
  let a, b, c = random_stable_sys ~seed:17 12 1 in
  let sys = Dss.of_standard ~a ~b ~c in
  List.iter
    (fun q ->
      let { Tbr.rom; hsv; _ } = Tbr.reduce ~order:q ~a ~b ~c () in
      let bound = Tbr.error_bound hsv q in
      (* sample |H - Hr| on the jw axis; must stay below the bound *)
      let om = Vec.linspace 0.0 20.0 60 in
      let err = Freq.max_abs_error (Freq.sweep sys om) (Freq.sweep rom om) in
      if err > bound *. (1.0 +. 1e-6) +. 1e-12 then
        Alcotest.failf "Glover bound violated at q=%d: err %g > bound %g" q err bound)
    [ 2; 4; 6 ]

let test_tbr_tol_vs_order () =
  let a, b, c = random_stable_sys ~seed:19 10 1 in
  let hsv = Tbr.hankel_singular_values ~a ~b ~c () in
  let tol = Tbr.error_bound hsv 4 in
  let q = Tbr.order_for_tolerance hsv tol in
  Alcotest.(check bool) "order_for_tolerance <= 4" true (q <= 4)

let test_tbr_balances () =
  (* the reduced model of a balanced truncation is itself balanced:
     its Gramians are diag(hsv_1..q) *)
  let a, b, c = random_stable_sys ~seed:23 9 1 in
  let { Tbr.rom; hsv; order } = Tbr.reduce ~order:4 ~a ~b ~c () in
  let ar, br, cr = Dss.to_standard rom in
  let xr = Gramian.controllability ~a:ar ~b:br () in
  let yr = Gramian.observability ~a:ar ~c:cr () in
  for i = 0 to order - 1 do
    approx ~tol:1e-6 "Xr diagonal = hsv" hsv.(i) (Mat.get xr i i);
    approx ~tol:1e-6 "Yr diagonal = hsv" hsv.(i) (Mat.get yr i i)
  done;
  check_small ~tol:1e-6 "Xr - Yr" (Mat.frobenius (Mat.sub xr yr))

let test_tbr_dss_on_circuit () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:30 ()) in
  let t = Tbr.reduce_dss ~order:8 sys in
  let w_max = 1e10 in
  let om = Vec.linspace 0.0 w_max 25 in
  let err = Freq.max_rel_error (Freq.sweep sys om) (Freq.sweep t.Tbr.rom om) in
  if err > 1e-4 then Alcotest.failf "order-8 TBR of RC line too inaccurate: %g" err

let test_input_correlated_tbr_smaller () =
  (* rank-1 input correlation: the correlated Gramian has (numerically)
     rank <= n but decays much faster than the white-input one *)
  let a, b, _ = random_stable_sys ~seed:29 10 4 in
  let dir = Mat.random ~seed:31 4 1 in
  let k = Mat.mul dir (Mat.transpose dir) in
  let x_white = Gramian.controllability ~a ~b () in
  let x_corr = Gramian.controllability ~k ~a ~b () in
  let e_white = Eig_sym.eigenvalues x_white in
  let e_corr = Eig_sym.eigenvalues x_corr in
  (* normalised 5th eigenvalue must drop much faster under correlation *)
  let r_white = e_white.(4) /. e_white.(0) and r_corr = e_corr.(4) /. e_corr.(0) in
  if r_corr > r_white /. 10.0 then
    Alcotest.failf "correlated Gramian does not decay faster: %g vs %g" r_corr r_white

(* ------------------------------------------------------------------ *)
(* Transient simulation                                                *)
(* ------------------------------------------------------------------ *)

let test_step_response_one_pole () =
  (* v(t) = R I0 (1 - exp(-t/RC)) for a current step I0 *)
  let r = 1000.0 and c = 1e-9 in
  let sys = one_pole ~r ~c in
  let tau = r *. c in
  let i0 = 1e-3 in
  let res = Tdsim.simulate sys ~t0:0.0 ~t1:(5.0 *. tau) ~dt:(tau /. 200.0) ~u:(fun _ -> [| i0 |]) in
  Array.iteri
    (fun k t ->
      let expect = r *. i0 *. (1.0 -. exp (-.t /. tau)) in
      approx ~tol:(2e-4 *. r *. i0) "step response" expect (Mat.get res.Tdsim.outputs 0 k))
    res.Tdsim.times

let test_trapezoidal_second_order () =
  let r = 1000.0 and c = 1e-9 in
  let sys = one_pole ~r ~c in
  let tau = r *. c in
  let err dt =
    let res = Tdsim.simulate sys ~t0:0.0 ~t1:(3.0 *. tau) ~dt ~u:(fun _ -> [| 1e-3 |]) in
    let worst = ref 0.0 in
    Array.iteri
      (fun k t ->
        let expect = r *. 1e-3 *. (1.0 -. exp (-.t /. tau)) in
        worst := Float.max !worst (Float.abs (expect -. Mat.get res.Tdsim.outputs 0 k)))
      res.Tdsim.times;
    !worst
  in
  let e1 = err (tau /. 50.0) and e2 = err (tau /. 100.0) in
  if e2 > e1 /. 3.0 then Alcotest.failf "trapezoidal not ~2nd order: %g -> %g" e1 e2

let test_sim_reduced_matches_full () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:25 ()) in
  let t = Tbr.reduce_dss ~order:10 sys in
  let u t = [| if t > 0.0 then 1e-3 else 0.0 |] in
  let full = Tdsim.simulate sys ~t0:0.0 ~t1:20e-9 ~dt:0.02e-9 ~u in
  let red = Tdsim.simulate t.Tbr.rom ~t0:0.0 ~t1:20e-9 ~dt:0.02e-9 ~u in
  let scale = Mat.max_abs full.Tdsim.outputs in
  if Tdsim.output_error full red > 1e-4 *. scale then Alcotest.fail "reduced transient mismatch"

let test_sim_initial_state () =
  (* zero input, nonzero initial state decays like exp(-t/tau) *)
  let r = 1000.0 and c = 1e-9 in
  let sys = one_pole ~r ~c in
  let tau = r *. c in
  let res =
    Tdsim.simulate ~x0:[| 1.0 |] sys ~t0:0.0 ~t1:(2.0 *. tau) ~dt:(tau /. 100.0)
      ~u:(fun _ -> [| 0.0 |])
  in
  Array.iteri
    (fun k t -> approx ~tol:1e-4 "decay" (exp (-.t /. tau)) (Mat.get res.Tdsim.outputs 0 k))
    res.Tdsim.times

let test_sim_keep_states () =
  let sys = Dss.of_netlist (Rc_line.generate ~sections:5 ()) in
  let res =
    Tdsim.simulate ~keep_states:true sys ~t0:0.0 ~t1:1e-9 ~dt:0.1e-9 ~u:(fun _ -> [| 1e-3 |])
  in
  match res.Tdsim.states with
  | None -> Alcotest.fail "states not kept"
  | Some s -> Alcotest.(check int) "state rows" (Dss.order sys) s.Mat.rows

(* properties *)
let props =
  [
    QCheck2.Test.make ~name:"TBR error decreases with order" ~count:15
      QCheck2.Gen.(int_range 0 1000)
      (fun seed ->
        let a, b, c = random_stable_sys ~seed 10 1 in
        let sys = Dss.of_standard ~a ~b ~c in
        let om = Vec.linspace 0.0 10.0 20 in
        let href = Freq.sweep sys om in
        let err q =
          let { Tbr.rom; _ } = Tbr.reduce ~order:q ~a ~b ~c () in
          Freq.max_abs_error href (Freq.sweep rom om)
        in
        err 6 <= (err 2 *. 1.5) +. 1e-12);
    QCheck2.Test.make ~name:"Glover bound holds on random systems" ~count:15
      QCheck2.Gen.(int_range 0 1000)
      (fun seed ->
        let a, b, c = random_stable_sys ~seed 8 1 in
        let sys = Dss.of_standard ~a ~b ~c in
        let { Tbr.rom; hsv; _ } = Tbr.reduce ~order:3 ~a ~b ~c () in
        let om = Vec.linspace 0.0 30.0 40 in
        let err = Freq.max_abs_error (Freq.sweep sys om) (Freq.sweep rom om) in
        err <= (Tbr.error_bound hsv 3 *. (1.0 +. 1e-6)) +. 1e-12);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "pmtbr_lti"
    [
      ( "freq",
        [
          Alcotest.test_case "one-pole impedance" `Quick test_one_pole_impedance;
          Alcotest.test_case "dense vs sparse" `Quick test_dense_vs_sparse_eval;
          Alcotest.test_case "to_standard" `Quick test_to_standard_preserves_response;
          Alcotest.test_case "symmetrize rc" `Quick test_symmetrize_rc_preserves_response;
          Alcotest.test_case "symmetrize rejects rlc" `Quick test_symmetrize_rejects_rlc;
          Alcotest.test_case "identity projection" `Quick test_projection_identity;
          Alcotest.test_case "oblique w=v" `Quick test_oblique_projection_biorthogonal;
        ] );
      ( "tbr",
        [
          Alcotest.test_case "gramian residuals" `Quick test_gramian_lyapunov_residuals;
          Alcotest.test_case "correlated gramian scales" `Quick test_gramian_correlated_scales;
          Alcotest.test_case "hsv descending" `Quick test_hsv_descending_positive;
          Alcotest.test_case "exact at full order" `Quick test_tbr_exact_at_full_order;
          Alcotest.test_case "error bound holds" `Quick test_tbr_error_bound_holds;
          Alcotest.test_case "tol vs order" `Quick test_tbr_tol_vs_order;
          Alcotest.test_case "reduced model balanced" `Quick test_tbr_balances;
          Alcotest.test_case "descriptor circuit" `Quick test_tbr_dss_on_circuit;
          Alcotest.test_case "input correlation shrinks gramian" `Quick test_input_correlated_tbr_smaller;
        ] );
      ( "tdsim",
        [
          Alcotest.test_case "one-pole step" `Quick test_step_response_one_pole;
          Alcotest.test_case "second order" `Quick test_trapezoidal_second_order;
          Alcotest.test_case "reduced matches full" `Quick test_sim_reduced_matches_full;
          Alcotest.test_case "initial state decay" `Quick test_sim_initial_state;
          Alcotest.test_case "keep states" `Quick test_sim_keep_states;
        ] );
      ("properties", props);
    ]
