(* Tests for the stochastic-input substrate: RNG, quadrature, waveforms,
   correlation estimation. *)

open Pmtbr_la
open Pmtbr_signal

let check_small ?(tol = 1e-9) msg value =
  if Float.abs value > tol then Alcotest.failf "%s: |%.3e| > %g" msg value tol

let approx ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let r1 = Rng.create 42 and r2 = Rng.create 42 in
  for _ = 1 to 100 do
    approx "same stream" (Rng.float r1) (Rng.float r2)
  done

let test_rng_seed_dependence () =
  let r1 = Rng.create 1 and r2 = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.float r1 = Rng.float r2 then incr same
  done;
  if !same > 5 then Alcotest.fail "streams with different seeds coincide"

let test_rng_uniform_range () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.uniform r ~lo:(-2.0) ~hi:3.0 in
    if x < -2.0 || x >= 3.0 then Alcotest.failf "uniform out of range: %g" x
  done

let test_rng_gaussian_moments () =
  let r = Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let g = Rng.gaussian r in
    sum := !sum +. g;
    sumsq := !sumsq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  check_small ~tol:0.03 "gaussian mean" mean;
  approx ~tol:0.05 "gaussian var" 1.0 var

let test_rng_int_range () =
  let r = Rng.create 13 in
  let seen = Array.make 7 false in
  for _ = 1 to 1000 do
    let k = Rng.int r 7 in
    if k < 0 || k >= 7 then Alcotest.failf "int out of range: %d" k;
    seen.(k) <- true
  done;
  Array.iteri (fun i s -> if not s then Alcotest.failf "value %d never drawn" i) seen

(* ------------------------------------------------------------------ *)
(* Quad                                                                *)
(* ------------------------------------------------------------------ *)

let test_gauss_legendre_polynomials () =
  (* n-point Gauss-Legendre is exact for degree 2n-1 *)
  let rule = Quad.gauss_legendre ~lo:(-1.0) ~hi:1.0 5 in
  approx ~tol:1e-12 "int 1" 2.0 (Quad.integrate rule (fun _ -> 1.0));
  approx ~tol:1e-12 "int x^2" (2.0 /. 3.0) (Quad.integrate rule (fun x -> x *. x));
  approx ~tol:1e-12 "int x^8"
    (2.0 /. 9.0)
    (Quad.integrate rule (fun x -> x ** 8.0));
  check_small ~tol:1e-12 "int x^3 (odd)" (Quad.integrate rule (fun x -> x *. x *. x))

let test_gauss_legendre_mapped () =
  let rule = Quad.gauss_legendre ~lo:0.0 ~hi:4.0 8 in
  approx ~tol:1e-10 "int x dx on [0,4]" 8.0 (Quad.integrate rule (fun x -> x))

let test_midpoint_converges () =
  let f x = exp (-.x) in
  let exact = 1.0 -. exp (-.1.0) in
  let e100 = Float.abs (Quad.integrate (Quad.midpoint ~lo:0.0 ~hi:1.0 100) f -. exact) in
  let e400 = Float.abs (Quad.integrate (Quad.midpoint ~lo:0.0 ~hi:1.0 400) f -. exact) in
  if e400 > e100 /. 8.0 then Alcotest.failf "midpoint not O(h^2): %g vs %g" e100 e400

let test_trapezoid_weights_sum () =
  let rule = Quad.trapezoid ~lo:2.0 ~hi:5.0 7 in
  approx ~tol:1e-12 "weights sum to length" 3.0 (Array.fold_left ( +. ) 0.0 rule.Quad.weights)

let test_log_spaced_integrates_one_over_x () =
  (* integral of 1/x over [1, e^2] = 2; log-spaced nodes handle this well *)
  let rule = Quad.log_spaced ~lo:1.0 ~hi:(exp 2.0) 400 in
  approx ~tol:2e-3 "int 1/x" 2.0 (Quad.integrate rule (fun x -> 1.0 /. x))

(* ------------------------------------------------------------------ *)
(* Waveform                                                            *)
(* ------------------------------------------------------------------ *)

let test_square_wave_levels () =
  let rng = Rng.create 3 in
  let w = Waveform.dithered_square ~rng ~period:2.0 ~dither:0.05 () in
  for k = 0 to 200 do
    let v = w (0.037 *. float_of_int k) in
    if v <> 0.0 && v <> 1.0 then Alcotest.failf "square level %g" v
  done

let test_square_wave_duty_cycle () =
  let rng = Rng.create 5 in
  let w = Waveform.dithered_square ~rng ~period:1.0 ~dither:0.05 () in
  let n = 10_000 in
  let high = ref 0 in
  for k = 0 to n - 1 do
    if w (20.0 *. float_of_int k /. float_of_int n) > 0.5 then incr high
  done;
  let duty = float_of_int !high /. float_of_int n in
  approx ~tol:0.08 "duty ~ 0.5" 0.5 duty

let test_sample_matrix_shape () =
  let rng = Rng.create 9 in
  let waves = Waveform.dithered_square_bank ~rng ~ports:4 ~period:1.0 ~dither:0.1 in
  let m = Waveform.sample_matrix waves ~t0:0.0 ~t1:3.0 ~samples:50 in
  Alcotest.(check (pair int int)) "shape" (4, 50) (Mat.dims m)

let test_correlated_ensemble_is_low_rank () =
  let rng = Rng.create 17 in
  let templates =
    [| (fun t -> sin t); (fun t -> sin (3.0 *. t)) |]
  in
  let waves = Waveform.correlated_ensemble ~rng ~ports:10 ~templates ~noise:0.0 in
  let m = Waveform.sample_matrix waves ~t0:0.0 ~t1:10.0 ~samples:200 in
  Alcotest.(check int) "rank 2" 2 (Svd.rank ~tol:1e-9 m)

(* ------------------------------------------------------------------ *)
(* Correlation                                                         *)
(* ------------------------------------------------------------------ *)

let test_correlation_matrix_identity_for_white () =
  (* independent gaussian rows: K ~ I *)
  let rng = Rng.create 23 in
  let u = Mat.init 4 20_000 (fun _ _ -> Rng.gaussian rng) in
  let k = Correlation.correlation_matrix u in
  for i = 0 to 3 do
    for j = 0 to 3 do
      let expect = if i = j then 1.0 else 0.0 in
      approx ~tol:0.05 "K entry" expect (Mat.get k i j)
    done
  done

let test_analyse_matches_correlation_eigs () =
  let u = Mat.random ~seed:31 5 300 in
  let k = Correlation.correlation_matrix u in
  let eigs = Eig_sym.eigenvalues k in
  let { Correlation.sigmas; _ } = Correlation.analyse u in
  Array.iteri
    (fun i s -> approx ~tol:1e-8 "sigma^2 = eig(K)" eigs.(i) (s *. s))
    sigmas

let test_truncate_keeps_dominant () =
  (* rank-2 input ensemble plus nothing: truncation finds rank 2 *)
  let base = Mat.random ~seed:37 6 2 in
  let coeff = Mat.random ~seed:41 2 100 in
  let u = Mat.mul base coeff in
  let t = Correlation.truncate ~tol:1e-8 (Correlation.analyse u) in
  Alcotest.(check int) "2 directions" 2 t.Correlation.directions.Mat.cols

let test_draw_direction_in_span () =
  let base = Mat.random ~seed:43 6 2 in
  let coeff = Mat.random ~seed:47 2 100 in
  let u = Mat.mul base coeff in
  let t = Correlation.truncate ~tol:1e-8 (Correlation.analyse u) in
  let rng = Rng.create 51 in
  let d = Correlation.draw_direction ~rng t in
  (* d must lie in the column span of base *)
  let q = Qr.orth base in
  let proj = Mat.mv q (Mat.mv_transposed q d) in
  check_small ~tol:1e-8 "draw in span" (Vec.max_abs_diff d proj)

let props =
  [
    QCheck2.Test.make ~name:"gauss-legendre weights are positive and sum to length" ~count:30
      QCheck2.Gen.(int_range 1 30)
      (fun n ->
        let rule = Quad.gauss_legendre ~lo:0.0 ~hi:1.0 n in
        Array.for_all (fun w -> w > 0.0) rule.Quad.weights
        && Float.abs (Array.fold_left ( +. ) 0.0 rule.Quad.weights -. 1.0) < 1e-10);
    QCheck2.Test.make ~name:"gauss-legendre nodes inside interval, ascending" ~count:30
      QCheck2.Gen.(int_range 1 30)
      (fun n ->
        let rule = Quad.gauss_legendre ~lo:2.0 ~hi:3.0 n in
        let ok = ref true in
        Array.iteri
          (fun i x ->
            if x <= 2.0 || x >= 3.0 then ok := false;
            if i > 0 && x <= rule.Quad.nodes.(i - 1) then ok := false)
          rule.Quad.nodes;
        !ok);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "pmtbr_signal"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed dependence" `Quick test_rng_seed_dependence;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
        ] );
      ( "quad",
        [
          Alcotest.test_case "gauss-legendre exactness" `Quick test_gauss_legendre_polynomials;
          Alcotest.test_case "mapped interval" `Quick test_gauss_legendre_mapped;
          Alcotest.test_case "midpoint order" `Quick test_midpoint_converges;
          Alcotest.test_case "trapezoid weights" `Quick test_trapezoid_weights_sum;
          Alcotest.test_case "log-spaced 1/x" `Quick test_log_spaced_integrates_one_over_x;
        ] );
      ( "waveform",
        [
          Alcotest.test_case "square levels" `Quick test_square_wave_levels;
          Alcotest.test_case "duty cycle" `Quick test_square_wave_duty_cycle;
          Alcotest.test_case "sample matrix shape" `Quick test_sample_matrix_shape;
          Alcotest.test_case "correlated ensemble rank" `Quick test_correlated_ensemble_is_low_rank;
        ] );
      ( "correlation",
        [
          Alcotest.test_case "white inputs" `Quick test_correlation_matrix_identity_for_white;
          Alcotest.test_case "analyse vs eig(K)" `Quick test_analyse_matches_correlation_eigs;
          Alcotest.test_case "truncate rank" `Quick test_truncate_keeps_dominant;
          Alcotest.test_case "draw in span" `Quick test_draw_direction_in_span;
        ] );
      ("properties", props);
    ]
