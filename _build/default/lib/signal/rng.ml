(* Deterministic, seedable pseudo-random numbers (splitmix64).  All the
   stochastic experiments (input-correlated TBR, substrate generation) seed
   their own generator so every run of the benches is reproducible. *)

type t = { mutable state : int64; mutable spare_gaussian : float option }

let create seed = { state = Int64.of_int seed; spare_gaussian = None }

let next_int64 t =
  t.state <- Int64.add t.state 0x9e3779b97f4a7c15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0, 1). *)
let float t = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) /. 9007199254740992.0

(* Uniform in [lo, hi). *)
let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

(* Uniform integer in [0, bound). *)
let int t bound =
  assert (bound > 0);
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

(* Standard normal via Box-Muller, caching the spare deviate. *)
let gaussian t =
  match t.spare_gaussian with
  | Some g ->
      t.spare_gaussian <- None;
      g
  | None ->
      let rec draw () =
        let u = float t in
        if u <= 1e-300 then draw () else u
      in
      let u1 = draw () and u2 = float t in
      let r = sqrt (-2.0 *. log u1) in
      let theta = 2.0 *. Float.pi *. u2 in
      t.spare_gaussian <- Some (r *. sin theta);
      r *. cos theta

(* Log-uniform in [lo, hi] (both > 0): resistances, conductances. *)
let log_uniform t ~lo ~hi =
  assert (lo > 0.0 && hi > 0.0);
  exp (uniform t ~lo:(log lo) ~hi:(log hi))
