(** Input-correlation estimation (paper Section IV-C): from a [p x N]
    matrix of input samples [U], estimate [K = U U^T / N], or equivalently
    work with the SVD of [U] directly. *)

val correlation_matrix : Pmtbr_la.Mat.t -> Pmtbr_la.Mat.t
(** Sample correlation matrix [K_ij = (1/N) sum_l u_i^l u_j^l]. *)

type input_basis = {
  directions : Pmtbr_la.Mat.t;  (** [V_K]: orthonormal input directions, [p x r] *)
  sigmas : float array;  (** singular values of [U / sqrt N]; their squares are the eigenvalues of [K] *)
}

val analyse : Pmtbr_la.Mat.t -> input_basis
(** SVD of the sample matrix, normalised so that [sigmas.^2] are the
    eigenvalues of the correlation matrix. *)

val truncate : ?tol:float -> input_basis -> input_basis
(** Keep directions with [sigma > tol * sigma_max] (default [1e-8]); always
    keeps at least one. *)

val draw_direction : rng:Rng.t -> input_basis -> float array
(** A random port-space vector [V_K r] with [r ~ N(0, diag sigmas^2)]
    (Algorithm 3, steps 3/5). *)
