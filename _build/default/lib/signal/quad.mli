(** Quadrature rules for approximating the frequency-domain Gramian
    integral (paper eq. 8).  PMTBR treats every (node, weight) pair as one
    sample column. *)

type rule = { nodes : float array; weights : float array }

val gauss_legendre_unit : int -> rule
(** [n]-point Gauss-Legendre rule on [[-1, 1]]. *)

val map_interval : rule -> lo:float -> hi:float -> rule
(** Affine transport of a [[-1, 1]] rule onto [[lo, hi]]. *)

val gauss_legendre : lo:float -> hi:float -> int -> rule
(** Gauss-Legendre rule on [[lo, hi]]; exact for polynomials of degree
    [2n - 1]. *)

val midpoint : lo:float -> hi:float -> int -> rule
(** Composite midpoint rule (the "rectangle rule" of the paper's Fig. 8). *)

val trapezoid : lo:float -> hi:float -> int -> rule
(** Composite trapezoid rule including the endpoints ([n >= 2] points). *)

val log_spaced : lo:float -> hi:float -> int -> rule
(** Log-spaced nodes with midpoint-like weights, for decade-spanning
    sweeps; both bounds must be positive. *)

val integrate : rule -> (float -> float) -> float
(** Apply the rule to a function. *)
