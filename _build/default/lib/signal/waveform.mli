(** Input waveform models for the input-correlated experiments (paper
    Section VI-C): square waves with randomly dithered timing, and
    correlated port-current ensembles standing in for transistor bulk
    currents. *)

type wave = float -> float
(** A scalar waveform of time (seconds). *)

val dithered_square : rng:Rng.t -> period:float -> dither:float -> ?amplitude:float ->
  ?phase:float -> unit -> wave
(** Square wave (low level 0, high level [amplitude], default 1) whose edge
    times are each shifted by a fixed random offset of at most
    [dither * period].  The offsets are drawn once at construction, so the
    result is a proper function of time.  [phase] shifts the pattern. *)

val sample_matrix : wave array -> t0:float -> t1:float -> samples:int -> Pmtbr_la.Mat.t
(** Sample the waveforms on a uniform grid: row [i] holds wave [i], one
    column per time point. *)

val correlated_ensemble : rng:Rng.t -> ports:int -> templates:wave array -> noise:float ->
  wave array
(** [ports] waveforms, each a random (gaussian) mixture of the shared
    [templates] plus white noise of amplitude [noise]: signals that
    originate from a few common functional blocks. *)

val dithered_square_bank : rng:Rng.t -> ports:int -> period:float -> dither:float -> wave array
(** The paper's Fig. 12/13 input class: same-period square waves with
    per-port timing dither and small phase offsets. *)

val scrambled_square_bank : rng:Rng.t -> ports:int -> period:float -> dither:float -> wave array
(** The out-of-class variant for Fig. 14: phases re-randomised across the
    whole period. *)
