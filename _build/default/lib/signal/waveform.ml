(* Input waveform models for the input-correlated experiments (paper
   Section VI-C): square waves with randomly dithered timing, and correlated
   port-current ensembles standing in for transistor bulk currents. *)

open Pmtbr_la

type wave = float -> float

(* Square wave of the given period/amplitude with edges dithered: each
   half-period boundary is shifted by a fixed random offset of at most
   [dither] * period (drawn once, so the wave is a function).  [phase] moves
   the whole pattern. *)
let dithered_square ~rng ~period ~dither ?(amplitude = 1.0) ?(phase = 0.0) () =
  (* Precompute dithers for edges within a long horizon, cyclically. *)
  let n_edges = 256 in
  let offsets =
    Array.init n_edges (fun _ -> Rng.uniform rng ~lo:(-.dither *. period) ~hi:(dither *. period))
  in
  fun t ->
    let t = t +. phase in
    let half = period /. 2.0 in
    let k = int_of_float (Float.floor (t /. half)) in
    let k = if k < 0 then 0 else k in
    let edge = (float_of_int k *. half) +. offsets.(k mod n_edges) in
    let up = if t >= edge then k else k - 1 in
    if (up land 1) = 0 then amplitude else 0.0

(* Sample [waves] on a uniform time grid; returns a p x n matrix of samples
   (one row per wave). *)
let sample_matrix (waves : wave array) ~t0 ~t1 ~samples =
  let p = Array.length waves in
  let dt = (t1 -. t0) /. float_of_int (max 1 (samples - 1)) in
  Mat.init p samples (fun i k -> waves.(i) (t0 +. (dt *. float_of_int k)))

(* Correlated ensemble: [ports] waveforms built from [templates] shared
   base waves mixed with random coefficients plus white noise of relative
   size [noise].  This mimics port signals that originate from a few common
   functional blocks. *)
let correlated_ensemble ~rng ~ports ~templates ~noise =
  let mix = Array.init ports (fun _ -> Array.init (Array.length templates) (fun _ -> Rng.gaussian rng)) in
  Array.init ports (fun i ->
      let coeffs = mix.(i) in
      fun t ->
        let acc = ref 0.0 in
        Array.iteri (fun j (w : wave) -> acc := !acc +. (coeffs.(j) *. w t)) templates;
        !acc +. (noise *. Rng.gaussian rng))

(* The paper's Fig. 12/13 input class: every port carries the same-period
   square wave, each with its own small timing dither and tiny phase
   offset. *)
let dithered_square_bank ~rng ~ports ~period ~dither =
  Array.init ports (fun _ ->
      let phase = Rng.uniform rng ~lo:0.0 ~hi:(0.02 *. period) in
      dithered_square ~rng ~period ~dither ~phase ())

(* The out-of-class variant for Fig. 14: same squares but with phases
   re-randomised across the whole period. *)
let scrambled_square_bank ~rng ~ports ~period ~dither =
  Array.init ports (fun _ ->
      let phase = Rng.uniform rng ~lo:0.0 ~hi:period in
      dithered_square ~rng ~period ~dither ~phase ())
