lib/signal/quad.mli:
