lib/signal/quad.ml: Array Float Pmtbr_la
