lib/signal/rng.ml: Float Int64
