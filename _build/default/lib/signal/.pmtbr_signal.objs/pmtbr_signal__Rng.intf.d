lib/signal/rng.mli:
