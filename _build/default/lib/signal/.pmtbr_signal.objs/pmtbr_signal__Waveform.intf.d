lib/signal/waveform.mli: Pmtbr_la Rng
