lib/signal/waveform.ml: Array Float Mat Pmtbr_la Rng
