lib/signal/correlation.ml: Array Mat Pmtbr_la Rng Svd
