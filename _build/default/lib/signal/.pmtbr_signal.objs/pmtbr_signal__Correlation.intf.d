lib/signal/correlation.mli: Pmtbr_la Rng
