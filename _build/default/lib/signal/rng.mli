(** Deterministic, seedable pseudo-random numbers (splitmix64).  All the
    stochastic experiments seed their own generator, so every run of the
    benches is reproducible. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** Generator seeded with the given integer. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [[0, 1)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [[lo, hi)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]; [bound] must be positive. *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller, spare cached). *)

val log_uniform : t -> lo:float -> hi:float -> float
(** Log-uniform in [[lo, hi]]; both bounds must be positive.  Natural for
    resistances and conductances. *)
