(* Input-correlation estimation (paper Section IV-C): from a p x N matrix of
   input samples U, estimate K = U U^T / N, or equivalently work with the SVD
   of U directly (K = V S^2 V^T / N). *)

open Pmtbr_la

(* Sample correlation matrix K_ij = (1/N) sum_l u_i^l u_j^l. *)
let correlation_matrix (u : Mat.t) =
  let n = u.Mat.cols in
  Mat.scale (1.0 /. float_of_int n) (Mat.mul u (Mat.transpose u))

type input_basis = {
  directions : Mat.t; (* V_K: p x r, orthonormal input directions *)
  sigmas : float array; (* singular values of U / sqrt N, descending *)
}

(* SVD of the sample matrix, normalised so that sigmas^2 are the eigenvalues
   of the correlation matrix. *)
let analyse (u : Mat.t) =
  let n = float_of_int u.Mat.cols in
  let { Svd.u = vk; sigma; _ } = Svd.decompose u in
  { directions = vk; sigmas = Array.map (fun s -> s /. sqrt n) sigma }

(* Keep directions with sigma above tol * sigma_max. *)
let truncate ?(tol = 1e-8) { directions; sigmas } =
  let smax = if Array.length sigmas = 0 then 0.0 else sigmas.(0) in
  let r = ref 0 in
  Array.iter (fun s -> if s > tol *. smax then incr r) sigmas;
  let r = max 1 !r in
  { directions = Mat.sub_cols directions 0 r; sigmas = Array.sub sigmas 0 r }

(* Draw a random port-space vector r ~ N(0, diag(sigmas)^2) mapped through
   the input directions: B_eff = B V_K r (Algorithm 3, steps 3/5). *)
let draw_direction ~rng { directions; sigmas } =
  let r = Array.map (fun s -> s *. Rng.gaussian rng) sigmas in
  Mat.mv directions r
