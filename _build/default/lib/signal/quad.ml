(* Quadrature rules for approximating the frequency-domain Gramian integral
   (paper eq. 8).  Nodes/weights come back as arrays over a target interval;
   PMTBR treats every (node, weight) pair as one sample column. *)

type rule = { nodes : float array; weights : float array }

(* Gauss-Legendre nodes on [-1, 1] by Newton iteration on P_n. *)
let gauss_legendre_unit n =
  assert (n >= 1);
  let nodes = Array.make n 0.0 and weights = Array.make n 0.0 in
  let m = (n + 1) / 2 in
  for i = 0 to m - 1 do
    (* Chebyshev-based initial guess *)
    let x = ref (cos (Float.pi *. (float_of_int i +. 0.75) /. (float_of_int n +. 0.5))) in
    let pp = ref 0.0 in
    for _ = 1 to 100 do
      (* evaluate P_n and P'_n at x by recurrence *)
      let p0 = ref 1.0 and p1 = ref !x in
      if n = 1 then ()
      else
        for k = 2 to n do
          let pk =
            (((2.0 *. float_of_int k) -. 1.0) *. !x *. !p1 -. ((float_of_int k -. 1.0) *. !p0))
            /. float_of_int k
          in
          p0 := !p1;
          p1 := pk
        done;
      let pn = if n = 1 then !p1 else !p1 in
      let dpn =
        if n = 1 then 1.0 else float_of_int n *. ((!x *. !p1) -. !p0) /. ((!x *. !x) -. 1.0)
      in
      pp := dpn;
      let dx = pn /. dpn in
      x := !x -. dx
    done;
    nodes.(i) <- -. !x;
    nodes.(n - 1 - i) <- !x;
    let w = 2.0 /. ((1.0 -. (!x *. !x)) *. !pp *. !pp) in
    weights.(i) <- w;
    weights.(n - 1 - i) <- w
  done;
  { nodes; weights }

(* Map a [-1,1] rule onto [lo, hi]. *)
let map_interval { nodes; weights } ~lo ~hi =
  let half = 0.5 *. (hi -. lo) and mid = 0.5 *. (hi +. lo) in
  {
    nodes = Array.map (fun x -> mid +. (half *. x)) nodes;
    weights = Array.map (fun w -> half *. w) weights;
  }

let gauss_legendre ~lo ~hi n = map_interval (gauss_legendre_unit n) ~lo ~hi

(* Composite midpoint ("rectangle rule" in the paper's Fig. 8 discussion). *)
let midpoint ~lo ~hi n =
  assert (n >= 1);
  let h = (hi -. lo) /. float_of_int n in
  {
    nodes = Array.init n (fun i -> lo +. (h *. (float_of_int i +. 0.5)));
    weights = Array.make n h;
  }

(* Trapezoid rule including the endpoints. *)
let trapezoid ~lo ~hi n =
  assert (n >= 2);
  let h = (hi -. lo) /. float_of_int (n - 1) in
  {
    nodes = Array.init n (fun i -> lo +. (h *. float_of_int i));
    weights = Array.init n (fun i -> if i = 0 || i = n - 1 then 0.5 *. h else h);
  }

(* Log-spaced midpoint-like rule for decade-spanning sweeps. *)
let log_spaced ~lo ~hi n =
  assert (lo > 0.0 && hi > lo && n >= 2);
  let nodes = Pmtbr_la.Vec.logspace lo hi n in
  let weights =
    Array.init n (fun i ->
        let left = if i = 0 then nodes.(0) else nodes.(i - 1) in
        let right = if i = n - 1 then nodes.(n - 1) else nodes.(i + 1) in
        0.5 *. (right -. left))
  in
  { nodes; weights }

let integrate { nodes; weights } f =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (weights.(i) *. f x)) nodes;
  !acc
