(** PRIMA (Odabasioglu-Celik-Pileggi): block-Arnoldi moment matching about
    a single expansion point followed by congruence projection, which
    preserves passivity for RLC-structured systems.  The moment-matching
    baseline of the paper's Fig. 7: model order grows in steps of the port
    count, one block per matched moment. *)

open Pmtbr_la
open Pmtbr_lti

type result = {
  rom : Dss.t;
  basis : Mat.t;
  moments : int;  (** block moments matched *)
}

val reduce : Dss.t -> s0:float -> moments:int -> result
(** Match [moments] block moments at the (real, positive) expansion point
    [s0] rad/s; the reduced order is at most [moments * inputs], less if
    the Krylov blocks deflate. *)

val reduce_to_order : Dss.t -> s0:float -> order:int -> result
(** Match enough blocks to reach [order], truncating the basis to its first
    [order] columns if it overshoots. *)
