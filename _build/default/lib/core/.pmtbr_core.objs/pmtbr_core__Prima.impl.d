lib/core/prima.ml: Array Complex Dss List Mat Pmtbr_la Pmtbr_lti Qr
