lib/core/cross_gramian.mli: Complex Dss Mat Pmtbr_la Pmtbr_lti Sampling
