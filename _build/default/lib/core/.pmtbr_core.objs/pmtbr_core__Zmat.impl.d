lib/core/zmat.ml: Array Complex Dss Float List Mat Pmtbr_la Pmtbr_lti Sampling
