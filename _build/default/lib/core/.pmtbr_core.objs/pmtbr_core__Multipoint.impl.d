lib/core/multipoint.ml: Array Dss Mat Pmtbr_la Pmtbr_lti Qr Sampling Zmat
