lib/core/multipoint.mli: Dss Mat Pmtbr_la Pmtbr_lti Sampling
