lib/core/input_correlated.mli: Dss Mat Pmtbr_la Pmtbr_lti Sampling
