lib/core/sampling.mli: Complex Pmtbr_signal
