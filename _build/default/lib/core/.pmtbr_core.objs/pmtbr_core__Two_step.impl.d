lib/core/two_step.ml: Dss Pmtbr_lti Prima Tbr
